#include "net/no_loss.hpp"

namespace ccd {

void NoLoss::decide_delivery(Round /*round*/, const std::vector<bool>& sent,
                             DeliveryMatrix& out) {
  const std::size_t n = sent.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (!sent[j]) continue;
    for (std::size_t i = 0; i < n; ++i) out.set(i, j, true);
  }
}

}  // namespace ccd
