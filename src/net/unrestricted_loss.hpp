// NoCF adversaries: executions with NO eventual collision freedom
// (Sections 7.4, 8.4, 8.5).  There is never a round after which a lone
// broadcaster is guaranteed to be heard, so algorithms are reduced to
// communicating through silence vs collision notifications.
#pragma once

#include "net/loss_adversary.hpp"
#include "util/rng.hpp"

namespace ccd {

class UnrestrictedLoss final : public LossAdversary {
 public:
  enum class Mode {
    kDropOthers,  ///< worst case: every cross-process message always lost
                  ///< (the beta executions of Theorem 9)
    kRandom,      ///< iid delivery with probability p forever
  };

  struct Options {
    Mode mode = Mode::kDropOthers;
    double p_deliver = 0.3;
    std::uint64_t seed = 5;
  };

  explicit UnrestrictedLoss(Options opts);

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;
  Round r_cf() const override { return kNeverRound; }
  const char* name() const override { return "UnrestrictedLoss"; }

 private:
  Options opts_;
  Rng rng_;
};

}  // namespace ccd
