#include "net/unrestricted_loss.hpp"

namespace ccd {

UnrestrictedLoss::UnrestrictedLoss(Options opts)
    : opts_(opts), rng_(opts.seed) {}

void UnrestrictedLoss::decide_delivery(Round /*round*/,
                                       const std::vector<bool>& sent,
                                       DeliveryMatrix& out) {
  if (opts_.mode == Mode::kDropOthers) return;  // only self-delivery survives
  const std::size_t n = sent.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (!sent[j]) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j || rng_.chance(opts_.p_deliver)) out.set(i, j, true);
    }
  }
}

}  // namespace ccd
