#include "net/loss_adversary.hpp"

namespace ccd {

void DeliveryMatrix::reset(std::size_t n, bool value) {
  n_ = n;
  bits_.assign(n * n, value);
}

}  // namespace ccd
