// The canonical ECF adversary (Property 1).
//
// Before r_cf: unconstrained loss, selectable among several shapes (drop
// everything from others; iid random; capture-like single survivor).
// From r_cf on: if there is exactly one broadcaster, everyone receives its
// message (the ECF obligation); rounds with >= 2 broadcasters remain
// unconstrained and follow the configured contention behaviour.
#pragma once

#include "net/loss_adversary.hpp"
#include "util/rng.hpp"

namespace ccd {

class EcfAdversary final : public LossAdversary {
 public:
  enum class PreMode {
    kDropOthers,   ///< every cross-process message is lost
    kRandom,       ///< iid delivery with probability p_deliver
    kCapture,      ///< each receiver captures one random broadcaster w.p.
                   ///< p_deliver, else hears nothing
  };
  enum class ContentionMode {
    kOwnOnly,      ///< >=2 broadcasters: receivers hear only themselves
    kRandom,       ///< iid per link
    kCapture,      ///< capture effect per receiver
    kDeliverAll,   ///< loss never forced: everyone hears everything
  };

  struct Options {
    Round r_cf = 1;
    PreMode pre = PreMode::kRandom;
    ContentionMode contention = ContentionMode::kCapture;
    double p_deliver = 0.5;
    std::uint64_t seed = 3;
  };

  explicit EcfAdversary(Options opts);

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;
  Round r_cf() const override { return opts_.r_cf; }
  const char* name() const override { return "EcfAdversary"; }

 private:
  void fill_random(const std::vector<bool>& sent, DeliveryMatrix& out);
  void fill_capture(const std::vector<bool>& sent, DeliveryMatrix& out);

  Options opts_;
  Rng rng_;
  std::vector<std::uint32_t> broadcasters_;  // scratch
};

}  // namespace ccd
