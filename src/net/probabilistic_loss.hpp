// Independent per-link loss: message from j reaches i with probability p,
// iid across links and rounds, with an optional ECF point after which a
// lone broadcaster is always heard.  Models the 20-50% loss rates the
// empirical studies in Section 1.1 report, without adversarial structure.
#pragma once

#include "net/loss_adversary.hpp"
#include "util/rng.hpp"

namespace ccd {

class ProbabilisticLoss final : public LossAdversary {
 public:
  struct Options {
    double p_deliver = 0.7;
    Round r_cf = kNeverRound;  ///< kNeverRound = no ECF guarantee
    std::uint64_t seed = 13;
  };

  explicit ProbabilisticLoss(Options opts);

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;
  Round r_cf() const override { return opts_.r_cf; }
  const char* name() const override { return "ProbabilisticLoss"; }

 private:
  Options opts_;
  Rng rng_;
};

}  // namespace ccd
