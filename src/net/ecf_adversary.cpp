#include "net/ecf_adversary.hpp"

namespace ccd {

EcfAdversary::EcfAdversary(Options opts) : opts_(opts), rng_(opts.seed) {}

void EcfAdversary::fill_random(const std::vector<bool>& sent,
                               DeliveryMatrix& out) {
  const std::size_t n = sent.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (!sent[j]) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j || rng_.chance(opts_.p_deliver)) out.set(i, j, true);
    }
  }
}

void EcfAdversary::fill_capture(const std::vector<bool>& sent,
                                DeliveryMatrix& out) {
  broadcasters_.clear();
  for (std::size_t j = 0; j < sent.size(); ++j) {
    if (sent[j]) broadcasters_.push_back(static_cast<std::uint32_t>(j));
  }
  if (broadcasters_.empty()) return;
  // Each receiver independently captures one random transmission with
  // probability p_deliver (the capture effect of Section 1.1 [71]); the
  // rest of the simultaneous transmissions are lost at that receiver.
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (rng_.chance(opts_.p_deliver)) {
      const std::uint32_t j =
          broadcasters_[rng_.below(broadcasters_.size())];
      out.set(i, j, true);
    }
  }
}

void EcfAdversary::decide_delivery(Round round, const std::vector<bool>& sent,
                                   DeliveryMatrix& out) {
  const std::size_t n = sent.size();
  std::uint32_t c = 0;
  for (bool s : sent) c += s ? 1 : 0;
  if (c == 0) return;

  if (round >= opts_.r_cf && c == 1) {
    // ECF obligation: the lone broadcaster is heard by everyone.
    for (std::size_t j = 0; j < n; ++j) {
      if (!sent[j]) continue;
      for (std::size_t i = 0; i < n; ++i) out.set(i, j, true);
    }
    return;
  }

  if (round < opts_.r_cf) {
    switch (opts_.pre) {
      case PreMode::kDropOthers:
        return;  // self-delivery is enforced by the executor
      case PreMode::kRandom:
        fill_random(sent, out);
        return;
      case PreMode::kCapture:
        fill_capture(sent, out);
        return;
    }
    return;
  }

  // round >= r_cf with contention (c >= 2): unconstrained.
  switch (opts_.contention) {
    case ContentionMode::kOwnOnly:
      return;
    case ContentionMode::kRandom:
      fill_random(sent, out);
      return;
    case ContentionMode::kCapture:
      fill_capture(sent, out);
      return;
    case ContentionMode::kDeliverAll:
      for (std::size_t j = 0; j < n; ++j) {
        if (!sent[j]) continue;
        for (std::size_t i = 0; i < n; ++i) out.set(i, j, true);
      }
      return;
  }
}

}  // namespace ccd
