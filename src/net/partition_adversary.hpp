// Two-group partition adversary: the loss pattern at the heart of every
// impossibility/lower-bound construction in Section 8.
//
// Processes [0, split) form group R; [split, n) form group R'.  Through
// round `heal_round - 1` every cross-group message is lost.  Within a
// group, delivery follows the alpha-execution rule (Definition 24 / Lemma
// 23 assumption 2): if exactly ONE member of the group broadcasts, the
// whole group receives its message; if two or more broadcast, each
// broadcaster hears only itself and silent members hear nothing.  From
// `heal_round` on the channel is perfect (needed so Theorem 4's composed
// execution still satisfies ECF); pass kNeverRound to keep the partition
// forever (Theorem 8).
#pragma once

#include "net/loss_adversary.hpp"

namespace ccd {

class PartitionAdversary final : public LossAdversary {
 public:
  struct Options {
    std::uint32_t split = 1;
    Round heal_round = kNeverRound;
  };

  explicit PartitionAdversary(Options opts);

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;

  /// ECF holds iff the partition eventually heals.
  Round r_cf() const override { return opts_.heal_round; }
  const char* name() const override { return "PartitionAdversary"; }

 private:
  void deliver_within_group(std::size_t lo, std::size_t hi,
                            const std::vector<bool>& sent,
                            DeliveryMatrix& out) const;

  Options opts_;
};

}  // namespace ccd
