// Perfectly reliable broadcast: every message reaches every process.
// Trivially satisfies ECF with r_cf = 1.  Baseline for sanity tests and the
// alpha/beta executions' "no message loss" legs (Theorems 4, 8).
#pragma once

#include "net/loss_adversary.hpp"

namespace ccd {

class NoLoss final : public LossAdversary {
 public:
  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;
  Round r_cf() const override { return 1; }
  bool always_delivers() const override { return true; }
  const char* name() const override { return "NoLoss"; }
};

}  // namespace ccd
