#include "net/probabilistic_loss.hpp"

namespace ccd {

ProbabilisticLoss::ProbabilisticLoss(Options opts)
    : opts_(opts), rng_(opts.seed) {}

void ProbabilisticLoss::decide_delivery(Round round,
                                        const std::vector<bool>& sent,
                                        DeliveryMatrix& out) {
  const std::size_t n = sent.size();
  std::uint32_t c = 0;
  for (bool s : sent) c += s ? 1 : 0;
  const bool ecf_now =
      opts_.r_cf != kNeverRound && round >= opts_.r_cf && c == 1;
  for (std::size_t j = 0; j < n; ++j) {
    if (!sent[j]) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j || ecf_now || rng_.chance(opts_.p_deliver)) {
        out.set(i, j, true);
      }
    }
  }
}

}  // namespace ccd
