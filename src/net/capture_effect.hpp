// A physically-motivated loss model reproducing the capture-effect
// behaviour described in Section 1.1 [71]: when multiple nearby radios
// transmit simultaneously, each receiver may still successfully decode ONE
// of the transmissions (non-uniformly across receivers), or nothing.
// Single transmissions succeed per-receiver with probability
// p_single_deliver, rising to certainty after r_cf when ecf is enabled.
//
// Used by robustness tests and the backoff-CM experiment (E11) to exercise
// algorithms under "realistic" loss rather than worst-case loss.
#pragma once

#include "net/loss_adversary.hpp"
#include "util/rng.hpp"

namespace ccd {

class CaptureEffectLoss final : public LossAdversary {
 public:
  struct Options {
    double p_capture = 0.7;        ///< chance a receiver decodes anything
                                   ///< under contention
    double p_single_deliver = 0.8; ///< pre-r_cf lone-broadcast success
    Round r_cf = 1;                ///< ECF point (kNeverRound disables)
    std::uint64_t seed = 11;
  };

  explicit CaptureEffectLoss(Options opts);

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override;
  Round r_cf() const override { return opts_.r_cf; }
  const char* name() const override { return "CaptureEffectLoss"; }

 private:
  Options opts_;
  Rng rng_;
  std::vector<std::uint32_t> broadcasters_;
};

}  // namespace ccd
