#include "net/partition_adversary.hpp"

namespace ccd {

PartitionAdversary::PartitionAdversary(Options opts) : opts_(opts) {}

void PartitionAdversary::deliver_within_group(std::size_t lo, std::size_t hi,
                                              const std::vector<bool>& sent,
                                              DeliveryMatrix& out) const {
  std::size_t broadcasters = 0;
  std::size_t lone = lo;
  for (std::size_t j = lo; j < hi; ++j) {
    if (sent[j]) {
      ++broadcasters;
      lone = j;
    }
  }
  if (broadcasters == 1) {
    for (std::size_t i = lo; i < hi; ++i) out.set(i, lone, true);
  }
  // broadcasters >= 2: only self-delivery (enforced by the executor);
  // broadcasters == 0: nothing to deliver.
}

void PartitionAdversary::decide_delivery(Round round,
                                         const std::vector<bool>& sent,
                                         DeliveryMatrix& out) {
  const std::size_t n = sent.size();
  if (round >= opts_.heal_round) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!sent[j]) continue;
      for (std::size_t i = 0; i < n; ++i) out.set(i, j, true);
    }
    return;
  }
  const std::size_t split = opts_.split < n ? opts_.split : n;
  deliver_within_group(0, split, sent, out);
  deliver_within_group(split, n, sent, out);
}

}  // namespace ccd
