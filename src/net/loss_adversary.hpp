// Message-loss adversaries.
//
// The execution definition (Definition 11, constraints 4-5) places almost
// no limit on loss: any process may lose any subset of the messages sent by
// OTHERS in any round; broadcasters always receive their own message.  The
// only positive property the paper ever assumes is Eventual Collision
// Freedom (Property 1): there is a round r_cf after which a LONE
// broadcaster is heard by everybody.
//
// An adversary fills a delivery matrix each round; the executor enforces
// self-delivery and derives receive multisets and the transmission trace
// from it.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace ccd {

/// Row-major n x n boolean matrix; entry (receiver, sender).
class DeliveryMatrix {
 public:
  void reset(std::size_t n, bool value);
  bool delivered(std::size_t receiver, std::size_t sender) const {
    return bits_[receiver * n_ + sender];
  }
  void set(std::size_t receiver, std::size_t sender, bool value) {
    bits_[receiver * n_ + sender] = value;
  }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::vector<bool> bits_;
};

class LossAdversary {
 public:
  virtual ~LossAdversary() = default;

  /// Decide delivery for round `round`.  `sent[j]` is true iff process j
  /// broadcast (crashed processes never have sent[j] set).  `out` arrives
  /// reset to all-false; set (i, j) for every message of j that i receives.
  /// Self-delivery for senders is enforced by the executor afterwards, so
  /// adversaries need not (but may) set the diagonal.
  virtual void decide_delivery(Round round, const std::vector<bool>& sent,
                               DeliveryMatrix& out) = 0;

  /// The r_cf posited by eventual collision freedom, or kNeverRound if this
  /// adversary offers no such guarantee (NoCF executions).
  virtual Round r_cf() const = 0;

  /// True iff this adversary statically delivers EVERYTHING: every
  /// decide_delivery call fills the full matrix, consumes no randomness, and
  /// mutates no state.  Engines may then skip the call (and the matrix)
  /// entirely without observable effect.  Only NoLoss qualifies; any
  /// adversary with an RNG or history must return false.
  virtual bool always_delivers() const { return false; }

  virtual const char* name() const = 0;
};

}  // namespace ccd
