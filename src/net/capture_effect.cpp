#include "net/capture_effect.hpp"

namespace ccd {

CaptureEffectLoss::CaptureEffectLoss(Options opts)
    : opts_(opts), rng_(opts.seed) {}

void CaptureEffectLoss::decide_delivery(Round round,
                                        const std::vector<bool>& sent,
                                        DeliveryMatrix& out) {
  broadcasters_.clear();
  for (std::size_t j = 0; j < sent.size(); ++j) {
    if (sent[j]) broadcasters_.push_back(static_cast<std::uint32_t>(j));
  }
  if (broadcasters_.empty()) return;

  if (broadcasters_.size() == 1) {
    const std::uint32_t j = broadcasters_.front();
    const bool guaranteed = opts_.r_cf != kNeverRound && round >= opts_.r_cf;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      if (guaranteed || rng_.chance(opts_.p_single_deliver)) {
        out.set(i, j, true);
      }
    }
    return;
  }

  // Contention: each receiver captures at most one transmission.
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (rng_.chance(opts_.p_capture)) {
      out.set(i, broadcasters_[rng_.below(broadcasters_.size())], true);
    }
  }
}

}  // namespace ccd
