// Perf sidecar: the JSON artifact that carries everything telemetry
// measured about a sweep -- per-cell run-time percentiles, engine counter
// totals, per-worker utilization and queue-drain stats -- WITHOUT touching
// the report.  A report plus its sidecar is the full story of a run; the
// report alone is byte-identical to a telemetry-off run.
//
// Sidecars shard and merge exactly like reports do: a worker's sidecar
// names its shard identity and grid fingerprint, cells are partitioned so
// a merge is a disjoint union, and counter totals -- being deterministic
// per run -- sum to exactly the single-process totals.  Only the timing
// NUMBERS differ run to run (wall time is physics, not arithmetic); the
// timing SCHEMA is identical everywhere.
//
// Schema ("ccd-perf-sidecar-v1"):
//   {"format":"ccd-perf-sidecar-v1",
//    "grid_fingerprint":"<16 hex>",
//    "runs":N,
//    "stats_bytes_retained":B,   // aggregator Stats footprint; optional on
//                                // parse (older sidecars predate it)
//    "counters":{"rounds":..,...},            // EngineCounters totals
//    "shards":[{"shard_index":i,"shard_count":K,"wall_ns":..,"drain_ns":..,
//               "threads":T,"runs":N,
//               "workers":[{"worker":w,"busy_ns":..,"runs":..},...]},...],
//    "cells":[{"cell":c,"runs":S,"total_ns":..,"min_ns":..,"max_ns":..,
//              "p50_ns":..,"p95_ns":..},...],
//    "dispatch":{...}}          // ccd_dispatch event totals; optional on
//                               // parse (only dispatcher-merged sidecars
//                               // carry it)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace ccd::obs {

/// One run's span on one worker, relative to the sweep's epoch.  The raw
/// material for the per-cell timing stats and the Chrome trace export.
struct RunSpan {
  std::uint64_t run_index = 0;
  std::uint64_t cell_index = 0;
  std::uint32_t worker = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Everything the sweep runner measures about one pool execution.  Filled
/// only when SweepOptions::perf points here; a null pointer keeps the
/// pool free of span bookkeeping.
struct SweepPerf {
  std::uint64_t wall_ns = 0;   ///< pool start -> last worker joined
  std::uint32_t threads = 0;   ///< workers actually spawned
  std::uint64_t runs = 0;
  /// Straggler tail: wall time elapsed after the EARLIEST worker finished
  /// its last run (the window where the static partition wastes cores --
  /// the number the future work-stealing dispatcher exists to shrink).
  std::uint64_t drain_ns = 0;
  /// Bytes the aggregator's Stats retain after folding every run
  /// (histogram bins vs raw sample buffers; see exp::stats_bytes_retained).
  /// Deterministic, so it survives merges exactly.  The CLI fills it after
  /// aggregation; 0 when the caller never measured it.
  std::uint64_t stats_bytes_retained = 0;
  EngineCounters counters;     ///< deterministic totals over all runs
  std::vector<RunSpan> spans;  ///< one per run, in slot (run) order
};

struct PerfWorker {
  std::uint32_t worker = 0;
  std::uint64_t busy_ns = 0;  ///< sum of this worker's run spans
  std::uint64_t runs = 0;
};

/// One process's execution of (part of) the grid.  A single-process sweep
/// is shard 0 of 1; merged sidecars keep every shard's entry so per-shard
/// wall time stays reportable after the merge.
struct PerfShardExec {
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::uint64_t wall_ns = 0;
  std::uint64_t drain_ns = 0;
  std::uint32_t threads = 0;
  std::uint64_t runs = 0;
  std::vector<PerfWorker> workers;
};

/// Per-cell run-time distribution (nearest-rank percentiles over the
/// cell's seeds).  Cells a resumed worker replayed from a checkpoint were
/// not re-executed and have no entry.
struct PerfCell {
  std::uint64_t cell_index = 0;
  std::uint64_t runs = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
};

/// One dispatcher worker slot's lifetime totals (a slot hosts a sequence
/// of worker processes; a restart reuses the slot).
struct PerfDispatchSlot {
  std::uint32_t slot = 0;
  std::uint64_t batches = 0;        ///< assignments spawned on this slot
  std::uint64_t cells = 0;          ///< completed cells this slot WON
  std::uint64_t busy_ns = 0;        ///< time a process occupied the slot
  std::uint64_t busy_permille = 0;  ///< busy_ns * 1000 / dispatch wall_ns
  std::uint64_t restarts = 0;       ///< nonzero exits charged to the slot
};

/// Work-stealing dispatcher event totals (ccd_dispatch).  Stamped by the
/// dispatcher onto the final merged sidecar only; merge_perf_sidecars
/// DROPS dispatch sections rather than combining them -- a dispatch run
/// has exactly one dispatcher, so "merging" two would fabricate a fleet
/// that never existed.
struct PerfDispatch {
  std::uint64_t workers = 0;          ///< slots (-j)
  std::uint64_t batches = 0;          ///< assignments handed out in total
  std::uint64_t steals = 0;           ///< cells re-queued off stale owners
  std::uint64_t requeues = 0;         ///< cells re-queued off dead workers
  std::uint64_t worker_restarts = 0;  ///< processes that died (exit != 0)
  std::uint64_t duplicate_cells = 0;  ///< second copies discarded on arrival
  std::uint64_t wall_ns = 0;          ///< dispatch start -> all cells done
  std::vector<PerfDispatchSlot> slots;
};

struct PerfSidecar {
  std::uint64_t grid_fingerprint = 0;
  std::uint64_t runs = 0;
  std::uint64_t stats_bytes_retained = 0;  ///< sums exactly across merges
  EngineCounters counters;
  std::vector<PerfShardExec> shards;
  std::vector<PerfCell> cells;  ///< ascending cell index
  std::optional<PerfDispatch> dispatch;  ///< ccd_dispatch runs only

  std::string to_json() const;
  static std::optional<PerfSidecar> from_json(const std::string& json,
                                              std::string* error = nullptr);
};

/// Reduce one pool execution's SweepPerf into a sidecar: group spans by
/// cell for the timing stats, lift the worker table, stamp the identity.
PerfSidecar build_perf_sidecar(std::uint64_t grid_fingerprint,
                               std::uint64_t shard_index,
                               std::uint64_t shard_count,
                               const SweepPerf& perf);

/// Merge K shard sidecars: counters and run counts SUM (exact -- they are
/// deterministic), cell entries union disjointly (duplicate cells are a
/// keyed error naming both owners), shard entries concatenate sorted by
/// (shard_count, shard_index).  Fingerprint mismatches are rejected.
std::optional<PerfSidecar> merge_perf_sidecars(
    const std::vector<PerfSidecar>& sidecars, std::string* error = nullptr);

}  // namespace ccd::obs
