// Chrome trace-event export: render a sweep's per-worker run spans as the
// JSON Object Format that chrome://tracing and Perfetto load directly, so
// "why is this grid slow" becomes a timeline instead of a guess.
//
// Mapping: pid = shard index (one process row per shard when traces from a
// sharded run are concatenated), tid = worker thread, one complete ("X")
// event per run named by its cell, with run/cell/seed indices in args.
// Timestamps are microseconds from the sweep epoch (monotonic clock), so
// spans from the SAME process align exactly; different shards' epochs are
// independent.
#pragma once

#include <cstdint>
#include <string>

#include "obs/perf_sidecar.hpp"

namespace ccd::obs {

/// Trace-event JSON for one pool execution.  `shard_index` becomes the
/// pid; pass 0 for single-process sweeps.  `seeds_per_cell` lets event
/// names carry the seed index (run_index % seeds_per_cell); pass 1 if
/// unknown.
std::string sweep_trace_json(const SweepPerf& perf, std::uint64_t shard_index,
                             std::uint32_t seeds_per_cell);

}  // namespace ccd::obs
