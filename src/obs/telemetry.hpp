// obs::Telemetry -- the observability substrate for the sweep engine.
//
// One hard invariant governs everything in src/obs/: TELEMETRY NEVER
// PERTURBS REPORT BYTES.  Counters and timers are collected beside the
// execution, never inside anything that feeds the Aggregator, so the JSON
// / CSV reports (and their golden FNV-1a hashes, grid fingerprints and
// shard-merge byte-identity) are exactly the same with telemetry fully
// enabled or fully absent.  All timing/counter data lands in a separate
// perf sidecar (see obs/perf_sidecar.hpp).
//
// Three layers:
//
//  * EngineCounters -- a plain struct of uint64 tallies the RoundEngine
//    increments non-atomically in its hot loop (an increment on engine-
//    local state costs nothing measurable next to a round).  Deterministic:
//    a run's counters are a pure function of its spec, so shard-merged
//    counter totals equal the single-process totals exactly.
//
//  * Telemetry -- a process-wide registry of per-thread counter sinks.
//    Each worker thread accumulates into its OWN cache-line-padded block
//    of relaxed atomics (lock-free; the registry mutex is touched only at
//    sink registration), and totals() merges all blocks at read time.
//    Sinks outlive their threads, so counts from joined pool workers are
//    still visible at shutdown.
//
//  * RunTimer -- a monotonic (steady_clock) stopwatch for wall-time spans.
//    wall_clock_ms() is the ONLY wall-clock (system_clock) reading in the
//    subsystem, used solely for checkpoint heartbeat stamps -- never for
//    durations.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ccd::obs {

/// Per-engine tallies, incremented non-atomically by the owning RoundEngine
/// and summed across runs by the sweep runner.  Deterministic per spec.
struct EngineCounters {
  std::uint64_t rounds = 0;            ///< step() calls executed
  std::uint64_t messages_sent = 0;     ///< broadcasts attempted (M_r sends)
  std::uint64_t messages_delivered = 0;  ///< copies landed in receive
                                         ///< multisets (incl. self-delivery)
  std::uint64_t collisions = 0;  ///< kGlobal: rounds with >= 2 broadcasters;
                                 ///< kLocal: (receiver, round) pairs with
                                 ///< local contention c_i >= 2
  std::uint64_t crashes_before_send = 0;  ///< crash point A taken
  std::uint64_t crashes_after_send = 0;   ///< crash point B taken
  std::uint64_t cm_advice_calls = 0;      ///< W_r contention-manager calls
  std::uint64_t cd_advice_calls = 0;  ///< D_r detector calls (kGlobal: one
                                      ///< per round; kLocal: one per alive
                                      ///< process per round)

  void add(const EngineCounters& other);
  friend bool operator==(const EngineCounters&,
                         const EngineCounters&) = default;
};

/// Serializer/parser field table: an EngineCounters member flows through
/// the perf sidecar (and its merge) by having exactly one entry here.
struct EngineCounterField {
  const char* key;
  std::uint64_t EngineCounters::* member;
};
inline constexpr EngineCounterField kEngineCounterFields[] = {
    {"rounds", &EngineCounters::rounds},
    {"messages_sent", &EngineCounters::messages_sent},
    {"messages_delivered", &EngineCounters::messages_delivered},
    {"collisions", &EngineCounters::collisions},
    {"crashes_before_send", &EngineCounters::crashes_before_send},
    {"crashes_after_send", &EngineCounters::crashes_after_send},
    {"cm_advice_calls", &EngineCounters::cm_advice_calls},
    {"cd_advice_calls", &EngineCounters::cd_advice_calls},
};

/// Process-wide counter ids (the registry's slot layout).
enum class Counter : std::uint32_t {
  kRunsExecuted = 0,   ///< scenario runs completed by sweep workers
  kCellsCompleted,     ///< grid cells whose last seed landed
  kRoundsExecuted,     ///< EngineCounters::rounds, accumulated
  kMessagesSent,
  kMessagesDelivered,
  kCollisions,
  kCrashesBeforeSend,
  kCrashesAfterSend,
  kCmAdviceCalls,
  kCdAdviceCalls,
  kCount
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
const char* to_string(Counter c);

class Telemetry {
 public:
  /// One thread's accumulation block.  The owning thread adds with relaxed
  /// atomics (uncontended by construction: every sink has exactly one
  /// writer); totals() readers see a merge of all sinks.  Padded so two
  /// workers never share a cache line.
  class alignas(64) Sink {
   public:
    void add(Counter c, std::uint64_t delta) {
      slots_[static_cast<std::size_t>(c)].fetch_add(
          delta, std::memory_order_relaxed);
    }
    /// Fold a finished run's engine counters into the process totals.
    void add_engine(const EngineCounters& ec);

   private:
    friend class Telemetry;
    std::array<std::atomic<std::uint64_t>, kNumCounters> slots_{};
  };

  /// Register a fresh sink.  Call once per worker thread (the only point
  /// that takes the registry mutex); the returned reference stays valid --
  /// and its counts visible -- after the thread exits.
  Sink& create_sink();

  /// Merge every sink's slots (sum per counter).
  std::array<std::uint64_t, kNumCounters> totals() const;
  std::uint64_t total(Counter c) const;

  /// Zero all registered sinks (bench / test isolation between sections).
  void reset();

  /// The process-wide registry.
  static Telemetry& global();
  /// The calling thread's sink in the global registry, created on first
  /// use and cached thread-locally -- the lock-free fast path sweep
  /// workers use.
  static Sink& thread_sink();

 private:
  mutable std::mutex mu_;  // guards sinks_ (registration and traversal)
  std::vector<std::unique_ptr<Sink>> sinks_;
};

/// Monotonic stopwatch (steady_clock).  Immune to wall-clock steps, so
/// spans and throughput numbers are trustworthy even under NTP slews.
class RunTimer {
 public:
  RunTimer() : start_(now_ns()) {}
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  void restart() { start_ = now_ns(); }
  /// Monotonic nanoseconds since an arbitrary epoch.
  static std::uint64_t now_ns();

 private:
  std::uint64_t start_;
};

/// Wall-clock milliseconds since the Unix epoch -- heartbeat stamps only
/// (checkpoint ts_ms fields); never used for durations.
std::uint64_t wall_clock_ms();

}  // namespace ccd::obs
