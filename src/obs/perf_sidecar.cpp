#include "obs/perf_sidecar.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "util/flat_json.hpp"
#include "util/histogram.hpp"

namespace ccd::obs {

namespace {

namespace jsonu = ccd::jsonu;

// Same 16-hex-digit rendering exp/shard uses for grid fingerprints, kept
// local so obs/ does not depend on the shard layer.
std::string fp_to_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> fp_from_hex(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t fp = 0;
  for (char c : s) {
    fp <<= 4;
    if (c >= '0' && c <= '9') fp |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') fp |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return fp;
}

bool parse_u64(const std::string& raw, std::uint64_t& out) {
  if (raw.empty() || raw[0] == '-') return false;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return end && *end == '\0';
}

/// Fetch member `key` of `flat` as a u64 into `out`; keyed error otherwise.
bool need_u64(const jsonu::FlatJson& flat, const char* key, std::uint64_t& out,
              std::string* error, const char* where) {
  const std::string* raw = flat.find(key);
  if (!raw) {
    if (error) {
      *error = std::string(where) + " missing key '" + key + "'";
    }
    return false;
  }
  if (!parse_u64(*raw, out)) {
    if (error) {
      *error = std::string("bad value '") + *raw + "' for key '" + key +
               "' in " + where;
    }
    return false;
  }
  return true;
}

void append_counters(std::string& out, const EngineCounters& counters) {
  out += "{";
  bool first = true;
  for (const EngineCounterField& f : kEngineCounterFields) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += f.key;
    out += "\":" + std::to_string(counters.*(f.member));
  }
  out += "}";
}

bool parse_counters(const std::string& raw, EngineCounters& counters,
                    std::string* error) {
  auto flat = jsonu::FlatJson::parse(raw);
  if (!flat) {
    if (error) *error = "'counters' is not a flat JSON object";
    return false;
  }
  for (const EngineCounterField& f : kEngineCounterFields) {
    std::uint64_t v = 0;
    if (!need_u64(*flat, f.key, v, error, "'counters'")) return false;
    counters.*(f.member) = v;
  }
  return true;
}

/// Nearest-rank percentile over a duration histogram; p in [0, 100].
/// Identical to the classic sorted-buffer formula (k = ceil(p*n/100),
/// clamped to [1,n], k-th smallest), read out of cumulative bin counts.
std::uint64_t percentile_ns(const ExactHistogram& durations, double p) {
  if (durations.empty()) return 0;
  const std::uint64_t n = durations.total();
  const double rank = p / 100.0 * static_cast<double>(n);
  std::uint64_t k = static_cast<std::uint64_t>(rank);
  if (static_cast<double>(k) < rank) ++k;  // ceil
  if (k == 0) k = 1;
  if (k > n) k = n;
  return static_cast<std::uint64_t>(durations.value_at_rank(k - 1));
}

}  // namespace

std::string PerfSidecar::to_json() const {
  std::string out = "{\"format\":\"ccd-perf-sidecar-v1\"";
  out += ",\"grid_fingerprint\":\"" + fp_to_hex(grid_fingerprint) + "\"";
  out += ",\"runs\":" + std::to_string(runs);
  out += ",\"stats_bytes_retained\":" + std::to_string(stats_bytes_retained);
  out += ",\"counters\":";
  append_counters(out, counters);
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const PerfShardExec& s = shards[i];
    if (i > 0) out += ",";
    out += "{\"shard_index\":" + std::to_string(s.shard_index);
    out += ",\"shard_count\":" + std::to_string(s.shard_count);
    out += ",\"wall_ns\":" + std::to_string(s.wall_ns);
    out += ",\"drain_ns\":" + std::to_string(s.drain_ns);
    out += ",\"threads\":" + std::to_string(s.threads);
    out += ",\"runs\":" + std::to_string(s.runs);
    out += ",\"workers\":[";
    for (std::size_t w = 0; w < s.workers.size(); ++w) {
      if (w > 0) out += ",";
      out += "{\"worker\":" + std::to_string(s.workers[w].worker);
      out += ",\"busy_ns\":" + std::to_string(s.workers[w].busy_ns);
      out += ",\"runs\":" + std::to_string(s.workers[w].runs) + "}";
    }
    out += "]}";
  }
  out += "],\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const PerfCell& c = cells[i];
    if (i > 0) out += ",";
    out += "{\"cell\":" + std::to_string(c.cell_index);
    out += ",\"runs\":" + std::to_string(c.runs);
    out += ",\"total_ns\":" + std::to_string(c.total_ns);
    out += ",\"min_ns\":" + std::to_string(c.min_ns);
    out += ",\"max_ns\":" + std::to_string(c.max_ns);
    out += ",\"p50_ns\":" + std::to_string(c.p50_ns);
    out += ",\"p95_ns\":" + std::to_string(c.p95_ns) + "}";
  }
  out += "]";
  if (dispatch) {
    const PerfDispatch& d = *dispatch;
    out += ",\"dispatch\":{\"workers\":" + std::to_string(d.workers);
    out += ",\"batches\":" + std::to_string(d.batches);
    out += ",\"steals\":" + std::to_string(d.steals);
    out += ",\"requeues\":" + std::to_string(d.requeues);
    out += ",\"worker_restarts\":" + std::to_string(d.worker_restarts);
    out += ",\"duplicate_cells\":" + std::to_string(d.duplicate_cells);
    out += ",\"wall_ns\":" + std::to_string(d.wall_ns);
    out += ",\"slots\":[";
    for (std::size_t i = 0; i < d.slots.size(); ++i) {
      const PerfDispatchSlot& s = d.slots[i];
      if (i > 0) out += ",";
      out += "{\"slot\":" + std::to_string(s.slot);
      out += ",\"batches\":" + std::to_string(s.batches);
      out += ",\"cells\":" + std::to_string(s.cells);
      out += ",\"busy_ns\":" + std::to_string(s.busy_ns);
      out += ",\"busy_permille\":" + std::to_string(s.busy_permille);
      out += ",\"restarts\":" + std::to_string(s.restarts) + "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::optional<PerfSidecar> PerfSidecar::from_json(const std::string& json,
                                                  std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<PerfSidecar> {
    if (error) *error = message;
    return std::nullopt;
  };
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) return fail("perf sidecar is not a flat JSON object");
  const std::string* format = flat->find("format");
  if (!format || *format != "ccd-perf-sidecar-v1") {
    return fail(
        "missing or unknown \"format\" (expected ccd-perf-sidecar-v1)");
  }

  PerfSidecar sidecar;
  const std::string* fp_raw = flat->find("grid_fingerprint");
  if (!fp_raw) return fail("missing key 'grid_fingerprint'");
  auto fp = fp_from_hex(*fp_raw);
  if (!fp) {
    return fail("bad value '" + *fp_raw + "' for key 'grid_fingerprint'");
  }
  sidecar.grid_fingerprint = *fp;
  if (!need_u64(*flat, "runs", sidecar.runs, error, "perf sidecar")) {
    return std::nullopt;
  }
  // Optional: sidecars written before the histogram-stats work lack it.
  if (flat->find("stats_bytes_retained") &&
      !need_u64(*flat, "stats_bytes_retained", sidecar.stats_bytes_retained,
                error, "perf sidecar")) {
    return std::nullopt;
  }
  const std::string* counters_raw = flat->find("counters");
  if (!counters_raw) return fail("missing key 'counters'");
  if (!parse_counters(*counters_raw, sidecar.counters, error)) {
    return std::nullopt;
  }

  const std::string* shards_raw = flat->find("shards");
  if (!shards_raw) return fail("missing key 'shards'");
  auto shard_items = jsonu::parse_array_items(*shards_raw);
  if (!shard_items) return fail("'shards' is not a JSON array");
  for (std::size_t i = 0; i < shard_items->size(); ++i) {
    const std::string where = "shards[" + std::to_string(i) + "]";
    auto sf = jsonu::FlatJson::parse((*shard_items)[i]);
    if (!sf) return fail(where + " is not a flat JSON object");
    PerfShardExec s;
    std::uint64_t threads = 0;
    if (!need_u64(*sf, "shard_index", s.shard_index, error, where.c_str()) ||
        !need_u64(*sf, "shard_count", s.shard_count, error, where.c_str()) ||
        !need_u64(*sf, "wall_ns", s.wall_ns, error, where.c_str()) ||
        !need_u64(*sf, "drain_ns", s.drain_ns, error, where.c_str()) ||
        !need_u64(*sf, "threads", threads, error, where.c_str()) ||
        !need_u64(*sf, "runs", s.runs, error, where.c_str())) {
      return std::nullopt;
    }
    s.threads = static_cast<std::uint32_t>(threads);
    const std::string* workers_raw = sf->find("workers");
    if (!workers_raw) return fail(where + " missing key 'workers'");
    auto worker_items = jsonu::parse_array_items(*workers_raw);
    if (!worker_items) return fail(where + ".workers is not a JSON array");
    for (std::size_t w = 0; w < worker_items->size(); ++w) {
      const std::string wwhere = where + ".workers[" + std::to_string(w) + "]";
      auto wf = jsonu::FlatJson::parse((*worker_items)[w]);
      if (!wf) return fail(wwhere + " is not a flat JSON object");
      PerfWorker pw;
      std::uint64_t id = 0;
      if (!need_u64(*wf, "worker", id, error, wwhere.c_str()) ||
          !need_u64(*wf, "busy_ns", pw.busy_ns, error, wwhere.c_str()) ||
          !need_u64(*wf, "runs", pw.runs, error, wwhere.c_str())) {
        return std::nullopt;
      }
      pw.worker = static_cast<std::uint32_t>(id);
      s.workers.push_back(pw);
    }
    sidecar.shards.push_back(std::move(s));
  }

  const std::string* cells_raw = flat->find("cells");
  if (!cells_raw) return fail("missing key 'cells'");
  auto cell_items = jsonu::parse_array_items(*cells_raw);
  if (!cell_items) return fail("'cells' is not a JSON array");
  for (std::size_t i = 0; i < cell_items->size(); ++i) {
    const std::string where = "cells[" + std::to_string(i) + "]";
    auto cf = jsonu::FlatJson::parse((*cell_items)[i]);
    if (!cf) return fail(where + " is not a flat JSON object");
    PerfCell c;
    if (!need_u64(*cf, "cell", c.cell_index, error, where.c_str()) ||
        !need_u64(*cf, "runs", c.runs, error, where.c_str()) ||
        !need_u64(*cf, "total_ns", c.total_ns, error, where.c_str()) ||
        !need_u64(*cf, "min_ns", c.min_ns, error, where.c_str()) ||
        !need_u64(*cf, "max_ns", c.max_ns, error, where.c_str()) ||
        !need_u64(*cf, "p50_ns", c.p50_ns, error, where.c_str()) ||
        !need_u64(*cf, "p95_ns", c.p95_ns, error, where.c_str())) {
      return std::nullopt;
    }
    sidecar.cells.push_back(c);
  }

  // Optional: only dispatcher-merged sidecars carry dispatch totals.
  if (const std::string* dispatch_raw = flat->find("dispatch")) {
    auto df = jsonu::FlatJson::parse(*dispatch_raw);
    if (!df) return fail("'dispatch' is not a flat JSON object");
    PerfDispatch d;
    if (!need_u64(*df, "workers", d.workers, error, "'dispatch'") ||
        !need_u64(*df, "batches", d.batches, error, "'dispatch'") ||
        !need_u64(*df, "steals", d.steals, error, "'dispatch'") ||
        !need_u64(*df, "requeues", d.requeues, error, "'dispatch'") ||
        !need_u64(*df, "worker_restarts", d.worker_restarts, error,
                  "'dispatch'") ||
        !need_u64(*df, "duplicate_cells", d.duplicate_cells, error,
                  "'dispatch'") ||
        !need_u64(*df, "wall_ns", d.wall_ns, error, "'dispatch'")) {
      return std::nullopt;
    }
    const std::string* slots_raw = df->find("slots");
    if (!slots_raw) return fail("'dispatch' missing key 'slots'");
    auto slot_items = jsonu::parse_array_items(*slots_raw);
    if (!slot_items) return fail("'dispatch'.slots is not a JSON array");
    for (std::size_t i = 0; i < slot_items->size(); ++i) {
      const std::string where = "dispatch.slots[" + std::to_string(i) + "]";
      auto sf = jsonu::FlatJson::parse((*slot_items)[i]);
      if (!sf) return fail(where + " is not a flat JSON object");
      PerfDispatchSlot s;
      std::uint64_t slot_id = 0;
      if (!need_u64(*sf, "slot", slot_id, error, where.c_str()) ||
          !need_u64(*sf, "batches", s.batches, error, where.c_str()) ||
          !need_u64(*sf, "cells", s.cells, error, where.c_str()) ||
          !need_u64(*sf, "busy_ns", s.busy_ns, error, where.c_str()) ||
          !need_u64(*sf, "busy_permille", s.busy_permille, error,
                    where.c_str()) ||
          !need_u64(*sf, "restarts", s.restarts, error, where.c_str())) {
        return std::nullopt;
      }
      s.slot = static_cast<std::uint32_t>(slot_id);
      d.slots.push_back(s);
    }
    sidecar.dispatch = std::move(d);
  }
  return sidecar;
}

PerfSidecar build_perf_sidecar(std::uint64_t grid_fingerprint,
                               std::uint64_t shard_index,
                               std::uint64_t shard_count,
                               const SweepPerf& perf) {
  PerfSidecar sidecar;
  sidecar.grid_fingerprint = grid_fingerprint;
  sidecar.runs = perf.runs;
  sidecar.stats_bytes_retained = perf.stats_bytes_retained;
  sidecar.counters = perf.counters;

  PerfShardExec shard;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  shard.wall_ns = perf.wall_ns;
  shard.drain_ns = perf.drain_ns;
  shard.threads = perf.threads;
  shard.runs = perf.runs;
  std::vector<PerfWorker> workers(perf.threads);
  for (std::uint32_t w = 0; w < perf.threads; ++w) workers[w].worker = w;
  // Durations fold straight into per-cell histograms: ranked percentiles
  // come from cumulative bin counts instead of a sort, and a cell's
  // footprint is its distinct-duration count, not its run count.
  std::map<std::uint64_t, ExactHistogram> by_cell;
  std::map<std::uint64_t, std::uint64_t> total_by_cell;
  for (const RunSpan& span : perf.spans) {
    const std::uint64_t dur =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    if (span.worker < workers.size()) {
      workers[span.worker].busy_ns += dur;
      ++workers[span.worker].runs;
    }
    by_cell[span.cell_index].add(static_cast<std::int64_t>(dur));
    total_by_cell[span.cell_index] += dur;
  }
  shard.workers = std::move(workers);
  sidecar.shards.push_back(std::move(shard));

  for (const auto& [cell_index, durations] : by_cell) {
    PerfCell cell;
    cell.cell_index = cell_index;
    cell.runs = durations.total();
    cell.total_ns = total_by_cell[cell_index];
    cell.min_ns = static_cast<std::uint64_t>(durations.min_key());
    cell.max_ns = static_cast<std::uint64_t>(durations.max_key());
    cell.p50_ns = percentile_ns(durations, 50.0);
    cell.p95_ns = percentile_ns(durations, 95.0);
    sidecar.cells.push_back(cell);
  }
  return sidecar;
}

std::optional<PerfSidecar> merge_perf_sidecars(
    const std::vector<PerfSidecar>& sidecars, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<PerfSidecar> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (sidecars.empty()) return fail("no perf sidecars to merge");

  PerfSidecar merged;
  merged.grid_fingerprint = sidecars.front().grid_fingerprint;
  std::map<std::uint64_t, std::uint64_t> cell_owner;  // cell -> sidecar idx
  for (std::size_t i = 0; i < sidecars.size(); ++i) {
    const PerfSidecar& s = sidecars[i];
    if (s.grid_fingerprint != merged.grid_fingerprint) {
      return fail("grid fingerprint mismatch: sidecar 0 is for grid " +
                  fp_to_hex(merged.grid_fingerprint) + " but sidecar " +
                  std::to_string(i) + " for grid " +
                  fp_to_hex(s.grid_fingerprint) +
                  " (sidecars from different grids cannot merge)");
    }
    merged.runs += s.runs;
    merged.stats_bytes_retained += s.stats_bytes_retained;
    merged.counters.add(s.counters);
    for (const PerfShardExec& shard : s.shards) {
      merged.shards.push_back(shard);
    }
    for (const PerfCell& cell : s.cells) {
      auto [it, inserted] = cell_owner.emplace(cell.cell_index, i);
      if (!inserted) {
        return fail("duplicate cell " + std::to_string(cell.cell_index) +
                    ": timed by both sidecar " + std::to_string(it->second) +
                    " and sidecar " + std::to_string(i));
      }
      merged.cells.push_back(cell);
    }
  }
  std::sort(merged.shards.begin(), merged.shards.end(),
            [](const PerfShardExec& a, const PerfShardExec& b) {
              return a.shard_count != b.shard_count
                         ? a.shard_count < b.shard_count
                         : a.shard_index < b.shard_index;
            });
  std::sort(merged.cells.begin(), merged.cells.end(),
            [](const PerfCell& a, const PerfCell& b) {
              return a.cell_index < b.cell_index;
            });
  // Dispatch sections never merge: a dispatch run has one dispatcher, and
  // it stamps its own totals onto the merged sidecar after this returns.
  merged.dispatch.reset();
  return merged;
}

}  // namespace ccd::obs
