// Report inspection: the library behind the ccd_report CLI.
//
// Loads the JSON artifacts the sweep pipeline emits and turns them into
// human-oriented views and machine-checkable diffs:
//
//   render_report  per-cell distribution view (histogram bars, exact
//                  p50/p90/p99/p99.9, tail mass) of a ccd-dist-v1 file, a
//                  shard report (v1 or v2), an aggregate report, or a
//                  perf sidecar.
//   diff_reports   cell-by-cell, metric-by-metric comparison of two such
//                  artifacts with keyed mismatch output.
//   export_dist    canonicalize a dist/shard artifact into ccd-dist-v1.
//   diff_traces    align two --rerun-cell ExecutionLog dumps
//                  (ccd-cell-trace-v1) round by round: first divergent
//                  round plus per-round view/advice/decision deltas.
//   diff_bench     compare two ccd-bench-v1 files (sweep throughput or
//                  lane bench; single object or the CI's JSON array) and
//                  flag rate regressions past a threshold -- the CI bench
//                  regression gate.
//
// Lives in obs/ (depends only on util/), so the layer DAG stays intact:
// the inspector never needs the engine or the exp layer -- every input is
// a serialized artifact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ccd::obs {

struct InspectOptions {
  int bar_width = 40;            ///< widest histogram bar, in characters
  int max_bins = 24;             ///< coalesce histograms wider than this
  std::optional<double> tail_over;       ///< report tail mass above this
  std::optional<std::uint64_t> only_cell;
  std::string only_metric;       ///< empty = all metrics
};

/// Render a distribution view of any supported report artifact into *out.
/// Returns false with a keyed *error on malformed/unsupported input.
bool render_report(const std::string& json, const InspectOptions& options,
                   std::string* out, std::string* error);

/// Keyed cell-by-cell diff of two report artifacts (same kind on both
/// sides).  *differs is set iff any cell/metric/counter mismatches; the
/// rendered mismatches (or a match summary) land in *out.
bool diff_reports(const std::string& a_json, const std::string& b_json,
                  std::string* out, bool* differs, std::string* error);

/// Re-emit a dist or shard-report artifact as canonical ccd-dist-v1.
bool export_dist(const std::string& json, std::string* out,
                 std::string* error);

/// Round-by-round alignment of two ccd-cell-trace-v1 dumps.  Reports the
/// first divergent round per run pair plus what diverged (broadcasters,
/// receive counts, cd/cm advice, per-process views, decisions, crashes).
bool diff_traces(const std::string& a_json, const std::string& b_json,
                 std::string* out, bool* differs, std::string* error);

/// Compare two ccd-bench-v1 artifacts.  Rate metrics dropping more than
/// max_regress_pct percent from old to new set *regressed (the CI gate
/// exits nonzero on it).  Entries are matched by grid name (sweep
/// throughput) or config+n (lane bench); lane-bench absolute rates are
/// reported but only the machine-relative speedup is gated.
bool diff_bench(const std::string& old_json, const std::string& new_json,
                double max_regress_pct, std::string* out, bool* regressed,
                std::string* error);

}  // namespace ccd::obs
