#include "obs/report_inspect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "util/flat_json.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace ccd::obs {

namespace {

namespace jsonu = ccd::jsonu;

// ---- shared parsing helpers ------------------------------------------------

bool set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

bool parse_u64_text(const std::string& raw, std::uint64_t* out) {
  if (raw.empty() || raw[0] == '-') return false;
  char* end = nullptr;
  *out = std::strtoull(raw.c_str(), &end, 10);
  return end && *end == '\0';
}

bool parse_double_text(const std::string& raw, double* out) {
  if (raw.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  return end && *end == '\0';
}

std::string fmt4(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", d);
  return buf;
}

std::string fmt1(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", d);
  return buf;
}

std::string pct_of(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "0.0%";
  return fmt1(100.0 * static_cast<double>(part) /
              static_cast<double>(whole)) +
         "%";
}

// ---- the unified report model ----------------------------------------------

/// One metric of one cell: either a full distribution (a rebuilt Stats, so
/// any percentile is exact) or the five-number summary an aggregate
/// report retains.
struct MetricView {
  std::string name;
  bool full = false;
  Stats stats;  ///< valid iff full
  std::uint64_t count = 0;
  double min = 0, mean = 0, p50 = 0, p99 = 0, max = 0;
};

struct CellView {
  std::uint64_t cell = 0;
  std::string spec;  ///< raw JSON, "" when the artifact has none
  std::map<std::string, std::uint64_t> counters;
  std::vector<MetricView> metrics;
};

struct ReportView {
  std::string kind;  ///< "dist" | "shard" | "report" | "sidecar"
  std::map<std::string, std::string> header;  ///< pass-through members
  std::map<std::string, std::uint64_t> totals;
  std::vector<CellView> cells;
};

MetricView metric_from_stats(std::string name, Stats stats) {
  MetricView m;
  m.name = std::move(name);
  m.full = true;
  m.count = stats.count();
  if (m.count > 0) {
    m.min = stats.min();
    m.mean = stats.mean();
    m.p50 = stats.percentile(50);
    m.p99 = stats.percentile(99);
    m.max = stats.max();
  }
  m.stats = std::move(stats);
  return m;
}

/// Parse a {"count":..,"min":..,...} summary object (aggregate reports).
bool metric_from_summary(const std::string& name, const std::string& raw,
                         MetricView* out, std::string* error) {
  auto flat = jsonu::FlatJson::parse(raw);
  if (!flat) {
    return set_error(error, "metric '" + name + "' is not a JSON object");
  }
  out->name = name;
  out->full = false;
  const std::string* count_raw = flat->find("count");
  if (!count_raw || !parse_u64_text(*count_raw, &out->count)) {
    return set_error(error, "metric '" + name + "' missing valid 'count'");
  }
  struct Field {
    const char* key;
    double MetricView::* member;
  };
  for (const Field& f : {Field{"min", &MetricView::min},
                         Field{"mean", &MetricView::mean},
                         Field{"p50", &MetricView::p50},
                         Field{"p99", &MetricView::p99},
                         Field{"max", &MetricView::max}}) {
    const std::string* raw_v = flat->find(f.key);
    if (!raw_v || !parse_double_text(*raw_v, &(out->*(f.member)))) {
      return set_error(error, "metric '" + name + "' missing valid '" +
                                  f.key + "'");
    }
  }
  return true;
}

/// Hoist an aggregate report's nested stats block ("mh"/"sync") into
/// prefixed counters and metrics.
bool hoist_summary_block(const std::string& prefix, const std::string& raw,
                         CellView* cell, std::string* error) {
  auto flat = jsonu::FlatJson::parse(raw);
  if (!flat) {
    return set_error(error, "'" + prefix + "' is not a JSON object");
  }
  for (const auto& [key, value] : flat->members) {
    const std::string name = prefix + "." + key;
    if (value == "null") continue;  // empty stats
    if (!value.empty() && value[0] == '{') {
      MetricView m;
      if (!metric_from_summary(name, value, &m, error)) return false;
      cell->metrics.push_back(std::move(m));
      continue;
    }
    std::uint64_t v = 0;
    if (!parse_u64_text(value, &v)) {
      return set_error(error, "bad value for '" + name + "'");
    }
    cell->counters[name] = v;
  }
  return true;
}

bool parse_dist_cells(const std::string& cells_raw, bool shard_layout,
                      ReportView* view, std::string* error) {
  auto items = jsonu::parse_array_items(cells_raw);
  if (!items) return set_error(error, "'cells' is not a JSON array");
  for (std::size_t i = 0; i < items->size(); ++i) {
    const std::string where = "cells[" + std::to_string(i) + "]";
    auto flat = jsonu::FlatJson::parse((*items)[i]);
    if (!flat) return set_error(error, where + " is not a JSON object");
    CellView cell;
    const std::string* cell_raw = flat->find("cell");
    if (!cell_raw || !parse_u64_text(*cell_raw, &cell.cell)) {
      return set_error(error, where + " missing valid 'cell'");
    }
    if (const std::string* spec = flat->find("spec")) cell.spec = *spec;
    if (shard_layout) {
      // Shard cell: every member other than the index is either a counter
      // (plain integer) or a statistic (v2 {"h":..}/{"raw":..} object or a
      // legacy v1 sample array).  Heartbeat keys ride along in
      // checkpoints; they parse as counters, which is fine for display.
      for (const auto& [key, value] : flat->members) {
        if (key == "cell") continue;
        if (!value.empty() && (value[0] == '{' || value[0] == '[')) {
          Stats stats;
          std::string stats_error;
          if (!stats_from_json(value, &stats, &stats_error)) {
            return set_error(error, where + "." + key + ": " + stats_error);
          }
          cell.metrics.push_back(metric_from_stats(key, std::move(stats)));
          continue;
        }
        std::uint64_t v = 0;
        if (!parse_u64_text(value, &v)) {
          return set_error(error, where + ": bad value for '" + key + "'");
        }
        cell.counters[key] = v;
      }
    } else {
      if (const std::string* runs = flat->find("runs")) {
        std::uint64_t v = 0;
        if (parse_u64_text(*runs, &v)) cell.counters["runs"] = v;
      }
      const std::string* metrics_raw = flat->find("metrics");
      if (!metrics_raw) {
        return set_error(error, where + " missing 'metrics'");
      }
      auto metrics = jsonu::FlatJson::parse(*metrics_raw);
      if (!metrics) {
        return set_error(error, where + ".metrics is not a JSON object");
      }
      for (const auto& [key, value] : metrics->members) {
        Stats stats;
        std::string stats_error;
        if (!stats_from_json(value, &stats, &stats_error)) {
          return set_error(error, where + ".metrics." + key + ": " +
                                      stats_error);
        }
        cell.metrics.push_back(metric_from_stats(key, std::move(stats)));
      }
    }
    // Deterministic metric order regardless of source member order.
    std::sort(cell.metrics.begin(), cell.metrics.end(),
              [](const MetricView& a, const MetricView& b) {
                return a.name < b.name;
              });
    view->cells.push_back(std::move(cell));
  }
  std::sort(view->cells.begin(), view->cells.end(),
            [](const CellView& a, const CellView& b) {
              return a.cell < b.cell;
            });
  return true;
}

bool parse_aggregate_cells(const std::string& cells_raw, ReportView* view,
                           std::string* error) {
  auto items = jsonu::parse_array_items(cells_raw);
  if (!items) return set_error(error, "'cells' is not a JSON array");
  for (std::size_t i = 0; i < items->size(); ++i) {
    const std::string where = "cells[" + std::to_string(i) + "]";
    auto flat = jsonu::FlatJson::parse((*items)[i]);
    if (!flat) return set_error(error, where + " is not a JSON object");
    CellView cell;
    const std::string* cell_raw = flat->find("cell");
    if (!cell_raw || !parse_u64_text(*cell_raw, &cell.cell)) {
      return set_error(error, where + " missing valid 'cell'");
    }
    for (const auto& [key, value] : flat->members) {
      if (key == "cell") continue;
      if (key == "spec") {
        cell.spec = value;
        continue;
      }
      if (key == "mh" || key == "sync") {
        if (!hoist_summary_block(key, value, &cell, error)) return false;
        continue;
      }
      if (value == "null") continue;  // empty stats
      if (!value.empty() && value[0] == '{') {
        MetricView m;
        if (!metric_from_summary(key, value, &m, error)) return false;
        cell.metrics.push_back(std::move(m));
        continue;
      }
      std::uint64_t v = 0;
      if (!parse_u64_text(value, &v)) {
        return set_error(error, where + ": bad value for '" + key + "'");
      }
      cell.counters[key] = v;
    }
    std::sort(cell.metrics.begin(), cell.metrics.end(),
              [](const MetricView& a, const MetricView& b) {
                return a.name < b.name;
              });
    view->cells.push_back(std::move(cell));
  }
  return true;
}

bool parse_sidecar_cells(const std::string& cells_raw, ReportView* view,
                         std::string* error) {
  auto items = jsonu::parse_array_items(cells_raw);
  if (!items) return set_error(error, "'cells' is not a JSON array");
  for (std::size_t i = 0; i < items->size(); ++i) {
    const std::string where = "cells[" + std::to_string(i) + "]";
    auto flat = jsonu::FlatJson::parse((*items)[i]);
    if (!flat) return set_error(error, where + " is not a JSON object");
    CellView cell;
    const std::string* cell_raw = flat->find("cell");
    if (!cell_raw || !parse_u64_text(*cell_raw, &cell.cell)) {
      return set_error(error, where + " missing valid 'cell'");
    }
    for (const auto& [key, value] : flat->members) {
      if (key == "cell") continue;
      std::uint64_t v = 0;
      if (!parse_u64_text(value, &v)) {
        return set_error(error, where + ": bad value for '" + key + "'");
      }
      cell.counters[key] = v;
    }
    view->cells.push_back(std::move(cell));
  }
  return true;
}

/// Parse any supported report artifact into the unified view.
bool parse_report(const std::string& json, ReportView* view,
                  std::string* error) {
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) {
    return set_error(error, "input is not a JSON object (report, shard "
                            "report, dist, or perf sidecar expected)");
  }
  const std::string* format = flat->find("format");
  const std::string kind =
      format ? *format
             : (flat->find("grid_seed") && flat->find("cells")
                    ? std::string("aggregate")
                    : std::string());
  for (const char* key :
       {"grid_fingerprint", "grid_seed", "seeds_per_cell", "num_cells",
        "num_runs", "shard_index", "shard_count"}) {
    if (const std::string* v = flat->find(key)) view->header[key] = *v;
  }
  const std::string* cells_raw = flat->find("cells");
  if (!cells_raw) return set_error(error, "missing 'cells'");

  if (kind == "ccd-dist-v1") {
    view->kind = "dist";
    return parse_dist_cells(*cells_raw, /*shard_layout=*/false, view, error);
  }
  if (kind == "ccd-shard-report-v1" || kind == "ccd-shard-report-v2") {
    view->kind = "shard";
    return parse_dist_cells(*cells_raw, /*shard_layout=*/true, view, error);
  }
  if (kind == "aggregate") {
    view->kind = "report";
    return parse_aggregate_cells(*cells_raw, view, error);
  }
  if (kind == "ccd-perf-sidecar-v1") {
    view->kind = "sidecar";
    for (const char* key : {"runs", "stats_bytes_retained"}) {
      if (const std::string* v = flat->find(key)) {
        std::uint64_t n = 0;
        if (parse_u64_text(*v, &n)) view->totals[key] = n;
      }
    }
    return parse_sidecar_cells(*cells_raw, view, error);
  }
  return set_error(error,
                   "unrecognized artifact" +
                       (format ? " format '" + *format + "'"
                               : std::string(" (no 'format' member and not "
                                             "an aggregate report)")));
}

// ---- rendering -------------------------------------------------------------

/// Coalesce a histogram into at most max_bins display rows of contiguous
/// key ranges.
struct DisplayBin {
  std::int64_t lo = 0, hi = 0;
  std::uint64_t count = 0;
};

std::vector<DisplayBin> display_bins(const ExactHistogram& h, int max_bins) {
  std::vector<DisplayBin> rows;
  if (h.empty()) return rows;
  const auto& bins = h.bins();
  if (bins.size() <= static_cast<std::size_t>(max_bins)) {
    for (const auto& [key, cnt] : bins) rows.push_back({key, key, cnt});
    return rows;
  }
  const std::int64_t lo = h.min_key(), hi = h.max_key();
  // ceil span/max_bins without overflow on the full int64 range.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo
  const std::uint64_t width =
      (span + static_cast<std::uint64_t>(max_bins) - 1) /
      static_cast<std::uint64_t>(max_bins);
  for (const auto& [key, cnt] : bins) {
    const std::uint64_t slot = static_cast<std::uint64_t>(key - lo) / width;
    const std::int64_t row_lo =
        lo + static_cast<std::int64_t>(slot * width);
    const std::int64_t row_hi =
        row_lo + static_cast<std::int64_t>(width) - 1;
    if (rows.empty() || rows.back().lo != row_lo) {
      rows.push_back({row_lo, row_hi, 0});
    }
    rows.back().count += cnt;
  }
  return rows;
}

std::uint64_t tail_count_over(const Stats& stats, double threshold) {
  std::uint64_t tail = 0;
  if (stats.histogram_active()) {
    for (const auto& [key, cnt] : stats.histogram().bins()) {
      if (static_cast<double>(key) > threshold) tail += cnt;
    }
  } else {
    for (double x : stats.samples()) {
      if (x > threshold) ++tail;
    }
  }
  return tail;
}

void render_metric(const MetricView& m, const InspectOptions& options,
                   std::string* out) {
  *out += "  " + m.name + "  n=" + std::to_string(m.count);
  if (m.count == 0) {
    *out += "  (empty)\n";
    return;
  }
  *out += "  min=" + fmt4(m.min);
  *out += " p50=" + fmt4(m.p50);
  if (m.full) {
    *out += " p90=" + fmt4(m.stats.percentile(90));
  }
  *out += " p99=" + fmt4(m.p99);
  if (m.full) {
    *out += " p99.9=" + fmt4(m.stats.percentile(99.9));
  }
  *out += " max=" + fmt4(m.max);
  *out += " mean=" + fmt4(m.mean);
  *out += "\n";
  if (!m.full) return;
  if (m.stats.histogram_active()) {
    const ExactHistogram& h = m.stats.histogram();
    std::uint64_t peak = 0;
    const auto rows = display_bins(h, options.max_bins);
    for (const DisplayBin& row : rows) peak = std::max(peak, row.count);
    for (const DisplayBin& row : rows) {
      std::string label = std::to_string(row.lo);
      if (row.hi != row.lo) label += ".." + std::to_string(row.hi);
      const int bar = peak == 0
                          ? 0
                          : static_cast<int>(
                                (row.count * static_cast<std::uint64_t>(
                                                 options.bar_width) +
                                 peak - 1) /
                                peak);
      *out += "    " + std::string(12 > label.size() ? 12 - label.size() : 0,
                                   ' ') +
              label + " |" + std::string(static_cast<std::size_t>(bar), '#') +
              std::string(
                  static_cast<std::size_t>(options.bar_width - bar), ' ') +
              "| " + std::to_string(row.count) + "\n";
    }
  }
  if (options.tail_over) {
    const std::uint64_t tail = tail_count_over(m.stats, *options.tail_over);
    *out += "    tail > " + jsonu::format_double(*options.tail_over) + ": " +
            std::to_string(tail) + " (" + pct_of(tail, m.count) + ")\n";
  }
}

void render_cell(const ReportView& view, const CellView& cell,
                 const InspectOptions& options, std::string* out) {
  *out += "cell " + std::to_string(cell.cell);
  if (!cell.spec.empty()) *out += "  " + cell.spec;
  *out += "\n";
  if (view.kind == "sidecar") {
    auto get = [&](const char* key) -> std::string {
      auto it = cell.counters.find(key);
      return it == cell.counters.end() ? std::string("-")
                                       : std::to_string(it->second);
    };
    *out += "  runs=" + get("runs") + " total_ns=" + get("total_ns") +
            " min_ns=" + get("min_ns") + " p50_ns=" + get("p50_ns") +
            " p95_ns=" + get("p95_ns") + " max_ns=" + get("max_ns") + "\n";
    return;
  }
  if (!cell.counters.empty()) {
    *out += " ";
    for (const auto& [key, value] : cell.counters) {
      *out += " " + key + "=" + std::to_string(value);
    }
    *out += "\n";
  }
  for (const MetricView& m : cell.metrics) {
    if (!options.only_metric.empty() && m.name != options.only_metric) {
      continue;
    }
    render_metric(m, options, out);
  }
}

// ---- diffing ---------------------------------------------------------------

const MetricView* find_metric(const CellView& cell, const std::string& name) {
  for (const MetricView& m : cell.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// Keyed per-metric comparison; appends mismatch lines, returns whether
/// the metric pair differs.
bool diff_metric(std::uint64_t cell, const MetricView& a, const MetricView& b,
                 std::string* out) {
  bool differs = false;
  const std::string key =
      "cell " + std::to_string(cell) + " " + a.name + ".";
  if (a.count != b.count) {
    *out += key + "count: " + std::to_string(a.count) + " -> " +
            std::to_string(b.count) + "\n";
    differs = true;
  }
  struct Field {
    const char* name;
    double MetricView::* member;
  };
  for (const Field& f : {Field{"min", &MetricView::min},
                         Field{"mean", &MetricView::mean},
                         Field{"p50", &MetricView::p50},
                         Field{"p99", &MetricView::p99},
                         Field{"max", &MetricView::max}}) {
    const double av = a.*(f.member), bv = b.*(f.member);
    if (a.count == 0 || b.count == 0) break;
    if (av != bv) {
      *out += key + f.name + ": " + fmt4(av) + " -> " + fmt4(bv) +
              " (delta " + fmt4(bv - av) + ")\n";
      differs = true;
    }
  }
  // Full distributions additionally diff per key: the part a five-number
  // summary can never see.
  if (a.full && b.full && a.stats.histogram_active() &&
      b.stats.histogram_active()) {
    std::map<std::int64_t, std::int64_t> delta;
    for (const auto& [k, c] : a.stats.histogram().bins()) {
      delta[k] -= static_cast<std::int64_t>(c);
    }
    for (const auto& [k, c] : b.stats.histogram().bins()) {
      delta[k] += static_cast<std::int64_t>(c);
    }
    int shown = 0;
    int changed = 0;
    for (const auto& [k, d] : delta) {
      if (d == 0) continue;
      ++changed;
      if (shown < 16) {
        *out += key + "bin[" + std::to_string(k) +
                "]: " + (d > 0 ? "+" : "") + std::to_string(d) + "\n";
        ++shown;
      }
      differs = true;
    }
    if (changed > shown) {
      *out += key + "... " + std::to_string(changed - shown) +
              " more changed bins\n";
    }
  }
  return differs;
}

// ---- trace model -----------------------------------------------------------

struct TraceRound {
  std::uint64_t round = 0;
  std::string broadcasters, receive_counts, cd, cm, views;
};

struct TraceRun {
  std::uint64_t run_index = 0, seed = 0;
  std::string solved;
  std::string decisions, crashes;  ///< raw array text
  std::vector<TraceRound> rounds;
  bool has_log = false;
};

struct TraceDoc {
  std::uint64_t cell = 0;
  std::vector<TraceRun> runs;
};

bool parse_trace(const std::string& json, const char* label, TraceDoc* doc,
                 std::string* error) {
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) {
    return set_error(error, std::string(label) + ": not a JSON object");
  }
  const std::string* format = flat->find("format");
  if (!format || *format != "ccd-cell-trace-v1") {
    return set_error(error, std::string(label) +
                                ": expected format ccd-cell-trace-v1 (a "
                                "ccd_sweep --rerun-cell dump)");
  }
  if (const std::string* cell = flat->find("cell")) {
    parse_u64_text(*cell, &doc->cell);
  }
  const std::string* runs_raw = flat->find("runs");
  if (!runs_raw) return set_error(error, std::string(label) + ": no 'runs'");
  auto items = jsonu::parse_array_items(*runs_raw);
  if (!items) {
    return set_error(error, std::string(label) + ": 'runs' is not an array");
  }
  for (std::size_t i = 0; i < items->size(); ++i) {
    const std::string where =
        std::string(label) + ".runs[" + std::to_string(i) + "]";
    auto rf = jsonu::FlatJson::parse((*items)[i]);
    if (!rf) return set_error(error, where + " is not a JSON object");
    TraceRun run;
    if (const std::string* v = rf->find("run_index")) {
      parse_u64_text(*v, &run.run_index);
    }
    if (const std::string* v = rf->find("seed")) {
      parse_u64_text(*v, &run.seed);
    }
    if (const std::string* v = rf->find("solved")) run.solved = *v;
    if (const std::string* log_raw = rf->find("log")) {
      run.has_log = true;
      auto lf = jsonu::FlatJson::parse(*log_raw);
      if (!lf) return set_error(error, where + ".log is not a JSON object");
      if (const std::string* v = lf->find("decisions")) run.decisions = *v;
      if (const std::string* v = lf->find("crashes")) run.crashes = *v;
      const std::string* rounds_raw = lf->find("rounds");
      if (!rounds_raw) {
        return set_error(error, where + ".log missing 'rounds'");
      }
      auto round_items = jsonu::parse_array_items(*rounds_raw);
      if (!round_items) {
        return set_error(error, where + ".log.rounds is not an array");
      }
      for (const std::string& round_raw : *round_items) {
        auto rr = jsonu::FlatJson::parse(round_raw);
        if (!rr) {
          return set_error(error, where + ".log.rounds element is not an "
                                          "object");
        }
        TraceRound round;
        if (const std::string* v = rr->find("round")) {
          parse_u64_text(*v, &round.round);
        }
        if (const std::string* v = rr->find("broadcasters")) {
          round.broadcasters = *v;
        }
        if (const std::string* v = rr->find("receive_counts")) {
          round.receive_counts = *v;
        }
        if (const std::string* v = rr->find("cd")) round.cd = *v;
        if (const std::string* v = rr->find("cm")) round.cm = *v;
        if (const std::string* v = rr->find("views")) round.views = *v;
        run.rounds.push_back(std::move(round));
      }
    }
    doc->runs.push_back(std::move(run));
  }
  return true;
}

/// "p2=v1@r5, p0=v1@r6" rendering of a decisions/crashes array.
std::string render_events(const std::string& raw) {
  auto items = jsonu::parse_array_items(raw);
  if (!items) return raw;
  if (items->empty()) return "(none)";
  std::string out;
  for (const std::string& item : *items) {
    auto flat = jsonu::FlatJson::parse(item);
    if (!flat) return raw;
    if (!out.empty()) out += ", ";
    if (const std::string* p = flat->find("process")) out += "p" + *p;
    if (const std::string* v = flat->find("value")) out += "=v" + *v;
    if (const std::string* r = flat->find("round")) out += "@r" + *r;
  }
  return out;
}

/// First process whose per-round view differs; -1 when equal or opaque.
int first_view_divergence(const std::string& a, const std::string& b) {
  auto av = jsonu::parse_array_items(a);
  auto bv = jsonu::parse_array_items(b);
  if (!av || !bv) return -1;
  const std::size_t n = std::min(av->size(), bv->size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((*av)[i] != (*bv)[i]) return static_cast<int>(i);
  }
  if (av->size() != bv->size()) return static_cast<int>(n);
  return -1;
}

}  // namespace

// ---- public API ------------------------------------------------------------

bool render_report(const std::string& json, const InspectOptions& options,
                   std::string* out, std::string* error) {
  ReportView view;
  if (!parse_report(json, &view, error)) return false;
  *out += view.kind;
  for (const char* key : {"grid_fingerprint", "grid_seed", "seeds_per_cell",
                          "num_cells", "shard_index", "shard_count"}) {
    auto it = view.header.find(key);
    if (it != view.header.end()) {
      *out += std::string("  ") + key + "=" + it->second;
    }
  }
  *out += "  cells_listed=" + std::to_string(view.cells.size());
  *out += "\n";
  for (const auto& [key, value] : view.totals) {
    *out += key + "=" + std::to_string(value) + "\n";
  }
  for (const CellView& cell : view.cells) {
    if (options.only_cell && cell.cell != *options.only_cell) continue;
    render_cell(view, cell, options, out);
  }
  return true;
}

bool diff_reports(const std::string& a_json, const std::string& b_json,
                  std::string* out, bool* differs, std::string* error) {
  ReportView a, b;
  if (!parse_report(a_json, &a, error)) return false;
  if (!parse_report(b_json, &b, error)) return false;
  *differs = false;
  if (a.kind != b.kind) {
    return set_error(error, "cannot diff a " + a.kind + " against a " +
                                b.kind + " artifact");
  }
  // Identity first: two artifacts from different grids can still have
  // coinciding cell contents, and that coincidence should not read as
  // "identical".
  std::set<std::string> header_keys;
  for (const auto& [key, value] : a.header) header_keys.insert(key);
  for (const auto& [key, value] : b.header) header_keys.insert(key);
  for (const std::string& key : header_keys) {
    auto av = a.header.find(key);
    auto bv = b.header.find(key);
    const std::string a_text =
        av == a.header.end() ? "(absent)" : av->second;
    const std::string b_text =
        bv == b.header.end() ? "(absent)" : bv->second;
    if (a_text != b_text) {
      *out += key + ": " + a_text + " -> " + b_text + "\n";
      *differs = true;
    }
  }
  std::map<std::uint64_t, const CellView*> b_cells;
  for (const CellView& cell : b.cells) b_cells[cell.cell] = &cell;
  std::set<std::uint64_t> seen;
  for (const CellView& ac : a.cells) {
    seen.insert(ac.cell);
    auto it = b_cells.find(ac.cell);
    if (it == b_cells.end()) {
      *out += "cell " + std::to_string(ac.cell) + ": only in A\n";
      *differs = true;
      continue;
    }
    const CellView& bc = *it->second;
    // Counters: union of keys, keyed mismatches.
    std::set<std::string> counter_keys;
    for (const auto& [key, value] : ac.counters) counter_keys.insert(key);
    for (const auto& [key, value] : bc.counters) counter_keys.insert(key);
    for (const std::string& key : counter_keys) {
      auto av = ac.counters.find(key);
      auto bv = bc.counters.find(key);
      const std::string a_text = av == ac.counters.end()
                                     ? "(absent)"
                                     : std::to_string(av->second);
      const std::string b_text = bv == bc.counters.end()
                                     ? "(absent)"
                                     : std::to_string(bv->second);
      if (a_text != b_text) {
        *out += "cell " + std::to_string(ac.cell) + " " + key + ": " +
                a_text + " -> " + b_text + "\n";
        *differs = true;
      }
    }
    std::set<std::string> metric_names;
    for (const MetricView& m : ac.metrics) metric_names.insert(m.name);
    for (const MetricView& m : bc.metrics) metric_names.insert(m.name);
    for (const std::string& name : metric_names) {
      const MetricView* am = find_metric(ac, name);
      const MetricView* bm = find_metric(bc, name);
      if (!am || !bm) {
        *out += "cell " + std::to_string(ac.cell) + " " + name +
                ": only in " + (am ? "A" : "B") + "\n";
        *differs = true;
        continue;
      }
      if (diff_metric(ac.cell, *am, *bm, out)) *differs = true;
    }
  }
  for (const CellView& bc : b.cells) {
    if (!seen.count(bc.cell)) {
      *out += "cell " + std::to_string(bc.cell) + ": only in B\n";
      *differs = true;
    }
  }
  if (!*differs) {
    *out += "identical: " + std::to_string(a.cells.size()) + " cells match\n";
  }
  return true;
}

bool export_dist(const std::string& json, std::string* out,
                 std::string* error) {
  ReportView view;
  if (!parse_report(json, &view, error)) return false;
  if (view.kind != "dist" && view.kind != "shard") {
    return set_error(error,
                     "export needs full distributions (a ccd-dist-v1 or "
                     "shard-report input); a " +
                         view.kind + " artifact only has summaries");
  }
  *out = "{\"format\":\"ccd-dist-v1\"";
  for (const char* key :
       {"grid_fingerprint", "grid_seed", "seeds_per_cell", "num_cells"}) {
    auto it = view.header.find(key);
    if (it == view.header.end()) continue;
    *out += ",\"" + std::string(key) + "\":";
    *out += key == std::string("grid_fingerprint")
                ? "\"" + it->second + "\""
                : it->second;
  }
  *out += ",\"cells\":[";
  for (std::size_t i = 0; i < view.cells.size(); ++i) {
    const CellView& cell = view.cells[i];
    if (i > 0) *out += ",";
    *out += "{\"cell\":" + std::to_string(cell.cell);
    if (!cell.spec.empty()) *out += ",\"spec\":" + cell.spec;
    auto runs = cell.counters.find("runs");
    if (runs != cell.counters.end()) {
      *out += ",\"runs\":" + std::to_string(runs->second);
    }
    *out += ",\"metrics\":{";
    bool first = true;
    for (const MetricView& m : cell.metrics) {
      if (m.count == 0) continue;
      if (!first) *out += ",";
      first = false;
      *out += "\"" + m.name + "\":" + stats_to_json(m.stats);
    }
    *out += "}}";
  }
  *out += "]}";
  return true;
}

bool diff_traces(const std::string& a_json, const std::string& b_json,
                 std::string* out, bool* differs, std::string* error) {
  TraceDoc a, b;
  if (!parse_trace(a_json, "A", &a, error)) return false;
  if (!parse_trace(b_json, "B", &b, error)) return false;
  *differs = false;
  *out += "A: cell " + std::to_string(a.cell) + ", " +
          std::to_string(a.runs.size()) + " runs; B: cell " +
          std::to_string(b.cell) + ", " + std::to_string(b.runs.size()) +
          " runs\n";
  const std::size_t n = std::min(a.runs.size(), b.runs.size());
  if (a.runs.size() != b.runs.size()) {
    *out += "run count differs: " + std::to_string(a.runs.size()) + " vs " +
            std::to_string(b.runs.size()) + " (comparing first " +
            std::to_string(n) + ")\n";
    *differs = true;
  }
  std::size_t identical = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRun& ar = a.runs[i];
    const TraceRun& br = b.runs[i];
    const std::string head =
        "run " + std::to_string(i) + " (A run_index=" +
        std::to_string(ar.run_index) + " seed=" + std::to_string(ar.seed) +
        " / B run_index=" + std::to_string(br.run_index) +
        " seed=" + std::to_string(br.seed) + ")";
    // Locate the first divergent round.
    const std::size_t rounds = std::min(ar.rounds.size(), br.rounds.size());
    std::size_t div = rounds;
    for (std::size_t r = 0; r < rounds; ++r) {
      const TraceRound& x = ar.rounds[r];
      const TraceRound& y = br.rounds[r];
      if (x.broadcasters != y.broadcasters ||
          x.receive_counts != y.receive_counts || x.cd != y.cd ||
          x.cm != y.cm || x.views != y.views) {
        div = r;
        break;
      }
    }
    const bool len_differs = ar.rounds.size() != br.rounds.size();
    const bool events_differ =
        ar.decisions != br.decisions || ar.crashes != br.crashes;
    if (div == rounds && !len_differs && !events_differ) {
      ++identical;
      continue;
    }
    *differs = true;
    *out += head + ":\n";
    if (div < rounds) {
      const TraceRound& x = ar.rounds[div];
      const TraceRound& y = br.rounds[div];
      *out += "  first divergent round: " + std::to_string(x.round) + "\n";
      if (x.broadcasters != y.broadcasters) {
        *out += "    broadcasters: " + x.broadcasters + " vs " +
                y.broadcasters + "\n";
      }
      if (x.receive_counts != y.receive_counts) {
        *out += "    receive_counts: " + x.receive_counts + " vs " +
                y.receive_counts + "\n";
      }
      if (x.cd != y.cd) {
        *out += "    cd advice: " + x.cd + " vs " + y.cd + "\n";
      }
      if (x.cm != y.cm) {
        *out += "    cm advice: " + x.cm + " vs " + y.cm + "\n";
      }
      if (x.views != y.views) {
        const int p = first_view_divergence(x.views, y.views);
        *out += "    views diverge";
        if (p >= 0) *out += " first at p" + std::to_string(p);
        *out += "\n";
      }
    } else if (len_differs) {
      *out += "  aligned rounds identical; length differs: " +
              std::to_string(ar.rounds.size()) + " vs " +
              std::to_string(br.rounds.size()) + " rounds\n";
    }
    if (ar.decisions != br.decisions) {
      *out += "  decisions: " + render_events(ar.decisions) + "  vs  " +
              render_events(br.decisions) + "\n";
    }
    if (ar.crashes != br.crashes) {
      *out += "  crashes: " + render_events(ar.crashes) + "  vs  " +
              render_events(br.crashes) + "\n";
    }
    if (ar.solved != br.solved) {
      *out += "  solved: " + ar.solved + " vs " + br.solved + "\n";
    }
  }
  *out += std::to_string(identical) + "/" + std::to_string(n) +
          " aligned runs identical\n";
  return true;
}

// ---- bench diff ------------------------------------------------------------

namespace {

struct BenchEntry {
  std::map<std::string, double> metrics;
  std::set<std::string> gated;  ///< metrics the regression gate applies to
};

bool parse_bench_object(const std::string& raw,
                        std::map<std::string, BenchEntry>* entries,
                        std::string* error) {
  auto flat = jsonu::FlatJson::parse(raw);
  if (!flat) return set_error(error, "bench artifact is not a JSON object");
  const std::string* format = flat->find("format");
  if (!format || *format != "ccd-bench-v1") {
    return set_error(error, "expected format ccd-bench-v1");
  }
  const std::string* bench = flat->find("bench");
  if (!bench) return set_error(error, "missing 'bench'");
  if (*bench == "sweep_throughput") {
    const std::string* grid = flat->find("grid");
    if (!grid) return set_error(error, "sweep_throughput missing 'grid'");
    BenchEntry entry;
    for (const char* key : {"runs_per_sec", "rounds_per_sec"}) {
      const std::string* v = flat->find(key);
      double value = 0;
      if (!v || !parse_double_text(*v, &value)) {
        return set_error(error,
                         std::string("sweep_throughput missing '") + key +
                             "'");
      }
      entry.metrics[key] = value;
      entry.gated.insert(key);
    }
    (*entries)["sweep:" + *grid] = std::move(entry);
    return true;
  }
  if (*bench == "engine_lanes") {
    const std::string* items_raw = flat->find("entries");
    if (!items_raw) return set_error(error, "engine_lanes missing 'entries'");
    auto items = jsonu::parse_array_items(*items_raw);
    if (!items) return set_error(error, "'entries' is not a JSON array");
    for (const std::string& item : *items) {
      auto ef = jsonu::FlatJson::parse(item);
      if (!ef) {
        return set_error(error, "engine_lanes entry is not a JSON object");
      }
      const std::string* config = ef->find("config");
      const std::string* n = ef->find("n");
      if (!config || !n) {
        return set_error(error, "engine_lanes entry missing config/n");
      }
      BenchEntry entry;
      for (const char* key :
           {"scalar_rounds_per_sec", "lane_rounds_per_sec", "speedup"}) {
        const std::string* v = ef->find(key);
        double value = 0;
        if (!v || !parse_double_text(*v, &value)) {
          return set_error(error,
                           std::string("engine_lanes entry missing '") +
                               key + "'");
        }
        entry.metrics[key] = value;
      }
      // Absolute rates are machine physics; the scalar-vs-lane speedup is
      // machine-relative and is what the gate watches.
      entry.gated.insert("speedup");
      (*entries)["lanes:" + *config + "/n" + *n] = std::move(entry);
    }
    return true;
  }
  if (*bench == "dispatch_steal") {
    const std::string* grid = flat->find("grid");
    const std::string* workers = flat->find("workers");
    if (!grid || !workers) {
      return set_error(error, "dispatch_steal missing 'grid'/'workers'");
    }
    BenchEntry entry;
    for (const char* key :
         {"static_wall_ns", "dynamic_wall_ns", "speedup", "steals"}) {
      const std::string* v = flat->find(key);
      double value = 0;
      if (!v || !parse_double_text(*v, &value)) {
        return set_error(error,
                         std::string("dispatch_steal missing '") + key + "'");
      }
      entry.metrics[key] = value;
    }
    // Absolute walls are machine physics; the dynamic-vs-static speedup is
    // machine-relative and is what the gate watches.
    entry.gated.insert("speedup");
    (*entries)["dispatch:" + *grid + "/w" + *workers] = std::move(entry);
    return true;
  }
  return set_error(error, "unknown bench kind '" + *bench + "'");
}

/// A bench artifact is a single ccd-bench-v1 object or a JSON array of
/// them (the CI's BENCH_sweep_throughput.json).
bool parse_bench_file(const std::string& json,
                      std::map<std::string, BenchEntry>* entries,
                      std::string* error) {
  const std::size_t start = json.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) {
    return set_error(error, "empty bench artifact");
  }
  if (json[start] == '[') {
    auto items = jsonu::parse_array_items(json.substr(start));
    if (!items) {
      return set_error(error, "bench artifact array is malformed");
    }
    for (const std::string& item : *items) {
      if (!parse_bench_object(item, entries, error)) return false;
    }
    return true;
  }
  return parse_bench_object(json.substr(start), entries, error);
}

}  // namespace

bool diff_bench(const std::string& old_json, const std::string& new_json,
                double max_regress_pct, std::string* out, bool* regressed,
                std::string* error) {
  std::map<std::string, BenchEntry> old_entries, new_entries;
  if (!parse_bench_file(old_json, &old_entries, error)) {
    if (error) *error = "old: " + *error;
    return false;
  }
  if (!parse_bench_file(new_json, &new_entries, error)) {
    if (error) *error = "new: " + *error;
    return false;
  }
  *regressed = false;
  for (const auto& [key, old_entry] : old_entries) {
    auto it = new_entries.find(key);
    if (it == new_entries.end()) {
      *out += key + ": missing from new artifact (REGRESSION: benchmark "
              "disappeared)\n";
      *regressed = true;
      continue;
    }
    for (const auto& [metric, old_value] : old_entry.metrics) {
      auto mv = it->second.metrics.find(metric);
      if (mv == it->second.metrics.end()) continue;
      const double new_value = mv->second;
      const double change_pct =
          old_value != 0.0
              ? (new_value - old_value) / old_value * 100.0
              : 0.0;
      const bool gate = old_entry.gated.count(metric) > 0;
      const bool regression = gate && change_pct < -max_regress_pct;
      *out += key + " " + metric + ": " + fmt1(old_value) + " -> " +
              fmt1(new_value) + " (" + (change_pct >= 0 ? "+" : "") +
              fmt1(change_pct) + "%)";
      if (!gate) *out += " [not gated]";
      if (regression) {
        *out += "  REGRESSION (worse than -" + fmt1(max_regress_pct) + "%)";
        *regressed = true;
      }
      *out += "\n";
    }
  }
  for (const auto& [key, entry] : new_entries) {
    if (!old_entries.count(key)) *out += key + ": new benchmark\n";
  }
  return true;
}

}  // namespace ccd::obs
