#include "obs/telemetry.hpp"

#include <chrono>

namespace ccd::obs {

void EngineCounters::add(const EngineCounters& other) {
  for (const EngineCounterField& f : kEngineCounterFields) {
    this->*(f.member) += other.*(f.member);
  }
}

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kRunsExecuted: return "runs_executed";
    case Counter::kCellsCompleted: return "cells_completed";
    case Counter::kRoundsExecuted: return "rounds_executed";
    case Counter::kMessagesSent: return "messages_sent";
    case Counter::kMessagesDelivered: return "messages_delivered";
    case Counter::kCollisions: return "collisions";
    case Counter::kCrashesBeforeSend: return "crashes_before_send";
    case Counter::kCrashesAfterSend: return "crashes_after_send";
    case Counter::kCmAdviceCalls: return "cm_advice_calls";
    case Counter::kCdAdviceCalls: return "cd_advice_calls";
    case Counter::kCount: break;
  }
  return "unknown";
}

void Telemetry::Sink::add_engine(const EngineCounters& ec) {
  add(Counter::kRoundsExecuted, ec.rounds);
  add(Counter::kMessagesSent, ec.messages_sent);
  add(Counter::kMessagesDelivered, ec.messages_delivered);
  add(Counter::kCollisions, ec.collisions);
  add(Counter::kCrashesBeforeSend, ec.crashes_before_send);
  add(Counter::kCrashesAfterSend, ec.crashes_after_send);
  add(Counter::kCmAdviceCalls, ec.cm_advice_calls);
  add(Counter::kCdAdviceCalls, ec.cd_advice_calls);
}

Telemetry::Sink& Telemetry::create_sink() {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::make_unique<Sink>());
  return *sinks_.back();
}

std::array<std::uint64_t, kNumCounters> Telemetry::totals() const {
  std::array<std::uint64_t, kNumCounters> out{};
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      out[i] += sink->slots_[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Telemetry::total(Counter c) const {
  return totals()[static_cast<std::size_t>(c)];
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) {
    for (auto& slot : sink->slots_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

Telemetry::Sink& Telemetry::thread_sink() {
  thread_local Sink* sink = &global().create_sink();
  return *sink;
}

std::uint64_t RunTimer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_clock_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace ccd::obs
