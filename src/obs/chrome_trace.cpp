#include "obs/chrome_trace.hpp"

namespace ccd::obs {

std::string sweep_trace_json(const SweepPerf& perf, std::uint64_t shard_index,
                             std::uint32_t seeds_per_cell) {
  if (seeds_per_cell == 0) seeds_per_cell = 1;
  const std::string pid = std::to_string(shard_index);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata: name the process row after the shard and each tid after its
  // worker slot, so the viewer reads "shard 2 / worker 5", not raw ids.
  out += "{\"ph\":\"M\",\"pid\":" + pid +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"shard " +
         pid + "\"}}";
  first = false;
  for (std::uint32_t w = 0; w < perf.threads; ++w) {
    out += ",{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + std::to_string(w) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " +
           std::to_string(w) + "\"}}";
  }
  for (const RunSpan& span : perf.spans) {
    const std::uint64_t dur_ns =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"cat\":\"run\",\"pid\":" + pid;
    out += ",\"tid\":" + std::to_string(span.worker);
    out += ",\"ts\":" + std::to_string(span.start_ns / 1000);
    out += ",\"dur\":" + std::to_string(dur_ns / 1000);
    out += ",\"name\":\"cell " + std::to_string(span.cell_index) + " seed " +
           std::to_string(span.run_index % seeds_per_cell) + "\"";
    out += ",\"args\":{\"run_index\":" + std::to_string(span.run_index);
    out += ",\"cell\":" + std::to_string(span.cell_index) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace ccd::obs
