#include "exp/sweep_grid.hpp"

#include <algorithm>
#include <cstdlib>
#include <type_traits>

#include "util/flat_json.hpp"
#include "util/rng.hpp"

namespace ccd::exp {

namespace {

template <typename T>
std::size_t radix(const std::vector<T>& axis) {
  return axis.empty() ? 1 : axis.size();
}

/// Peel one mixed-radix digit off `index` and apply the axis value (if the
/// axis is non-empty) to `field`.
template <typename T, typename F>
void apply_axis(std::size_t& index, const std::vector<T>& axis, F& field) {
  const std::size_t r = radix(axis);
  const std::size_t digit = index % r;
  index /= r;
  if (!axis.empty()) field = static_cast<F>(axis[digit]);
}

}  // namespace

std::size_t SweepGrid::num_cells() const {
  return radix(algs) * radix(detectors) * radix(policies) * radix(cms) *
         radix(losses) * radix(faults) * radix(ns) * radix(value_spaces) *
         radix(csts) * radix(topologies) * radix(densities) *
         radix(workloads) * radix(crash_schedules);
}

ScenarioSpec SweepGrid::spec_for_cell(std::size_t cell_index) const {
  ScenarioSpec spec = base;
  std::size_t index = cell_index;
  // Innermost axis first; the order here fixes the enumeration order and is
  // part of the on-disk cell numbering, so do not reorder casually.  (The
  // multihop axes sit innermost of the new digits / outermost overall so
  // that grids without them keep their PR-1 cell numbering: an empty axis
  // has radix 1 and peels nothing.)
  apply_axis(index, csts, spec.cst_target);
  apply_axis(index, value_spaces, spec.num_values);
  apply_axis(index, ns, spec.n);
  apply_axis(index, faults, spec.fault);
  apply_axis(index, losses, spec.loss);
  apply_axis(index, cms, spec.cm);
  apply_axis(index, policies, spec.policy);
  apply_axis(index, detectors, spec.detector);
  apply_axis(index, algs, spec.alg);
  apply_axis(index, densities, spec.density);
  apply_axis(index, topologies, spec.topology);
  apply_axis(index, workloads, spec.workload);
  apply_axis(index, crash_schedules, spec.crash_schedule_name);
  spec.seed = 0;
  return spec;
}

std::uint64_t SweepGrid::seed_for_run(std::size_t run_index) const {
  return hash_mix(hash_mix(grid_seed) ^ static_cast<std::uint64_t>(run_index));
}

ScenarioSpec SweepGrid::spec_for_run(std::size_t run_index) const {
  ScenarioSpec spec = spec_for_cell(cell_of_run(run_index));
  spec.seed = seed_for_run(run_index);
  return spec;
}

std::optional<std::string> SweepGrid::validate() const {
  // Consensus x non-singlehop topology was rejected here before the
  // RoundEngine unification; it is now a first-class combination (the
  // engine drives the same loss/cm/detector/fault stack over any graph
  // with per-neighborhood collision semantics), so no topology constraint
  // remains.

  // Scheduled-crash cells must have a schedule to run, and every named
  // generator -- swept or set on the base -- must exist.
  const auto known = crash_schedule_names();
  auto known_name = [&](const std::string& name) {
    return std::find(known.begin(), known.end(), name) != known.end();
  };
  std::string known_list;
  for (const std::string& name : known) {
    if (!known_list.empty()) known_list += ", ";
    known_list += name;
  }
  for (const std::string& name : crash_schedules) {
    if (!known_name(name)) {
      return "bad value '" + name +
             "' for axis 'crash_schedules' (known generators: " + known_list +
             ")";
    }
  }
  if (!base.crash_schedule_name.empty() &&
      !known_name(base.crash_schedule_name)) {
    return "bad value '" + base.crash_schedule_name +
           "' for key 'crash_schedule_name' (known generators: " +
           known_list + ")";
  }
  const bool any_scheduled =
      faults.empty() ? base.fault == FaultKind::kScheduled
                     : std::find(faults.begin(), faults.end(),
                                 FaultKind::kScheduled) != faults.end();
  const bool have_schedule = !crash_schedules.empty() ||
                             !base.crash_schedule_name.empty() ||
                             !base.crash_schedule.empty();
  if (any_scheduled && !have_schedule) {
    return "fault=scheduled cells need a crash schedule: set a "
           "crash_schedules axis, base.crash_schedule_name, or an explicit "
           "base.crash_schedule";
  }
  return std::nullopt;
}

std::optional<SweepGrid> SweepGrid::named(const std::string& name) {
  SweepGrid grid;
  if (name == "smoke") {
    // Fast sanity product: every algorithm in its friendliest world.
    grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg4};
    grid.detectors = {DetectorKind::kMajOAC};
    grid.cms = {CmKind::kWakeup};
    grid.losses = {LossKind::kEcf};
    grid.ns = {4, 8};
    grid.base.num_values = 16;
    grid.base.cst_target = 5;
    grid.seeds_per_cell = 3;
    return grid;
  }
  if (name == "default") {
    // The broad robustness product: 5 algs x 5 detector classes x 2 CMs x
    // 3 loss adversaries = 150 cells.  Cells pairing an algorithm with a
    // detector class weaker than its theorem requires are informative,
    // not errors: the aggregator counts their property failures.
    grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg3,
                 AlgKind::kAlg4, AlgKind::kNaive};
    grid.detectors = {DetectorKind::kAC, DetectorKind::kMajOAC,
                      DetectorKind::kZeroOAC, DetectorKind::kZeroAC,
                      DetectorKind::kNoCd};
    grid.cms = {CmKind::kWakeup, CmKind::kBackoff};
    grid.losses = {LossKind::kEcf, LossKind::kProbabilistic,
                   LossKind::kNoLoss};
    grid.base.n = 8;
    grid.base.num_values = 16;
    grid.base.cst_target = 8;
    grid.base.p_deliver = 0.6;
    grid.seeds_per_cell = 2;
    return grid;
  }
  if (name == "policies") {
    // Detector-behaviour ablation (the bench_policy_ablation shape):
    // behaviour inside a class envelope vs the class itself.
    grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2};
    grid.detectors = {DetectorKind::kOAC, DetectorKind::kMajOAC,
                      DetectorKind::kHalfOAC, DetectorKind::kZeroOAC};
    grid.policies = {PolicyKind::kTruthful, PolicyKind::kPreferNull,
                     PolicyKind::kPreferCollision, PolicyKind::kSpurious,
                     PolicyKind::kFlakyMajority};
    grid.cms = {CmKind::kWakeup};
    grid.losses = {LossKind::kEcf};
    grid.base.n = 8;
    grid.base.num_values = 256;
    grid.base.cst_target = 10;
    grid.seeds_per_cell = 4;
    return grid;
  }
  if (name == "crash") {
    // Crash-failure sweep across algorithms and process counts.
    grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg4};
    grid.detectors = {DetectorKind::kMajOAC, DetectorKind::kZeroOAC};
    grid.cms = {CmKind::kWakeup};
    grid.losses = {LossKind::kEcf};
    grid.faults = {FaultKind::kNone, FaultKind::kRandomCrash,
                   FaultKind::kScheduled};
    grid.ns = {4, 8, 16, 32};
    grid.base.num_values = 64;
    grid.base.cst_target = 12;
    grid.base.crash_p = 0.05;
    grid.base.crash_schedule_name = "leaf-then-die";
    grid.base.chaos = ChaosKind::kChaotic;
    grid.seeds_per_cell = 4;
    return grid;
  }
  if (name == "mhloss") {
    // The unification's acceptance grid: the paper's CONSENSUS stack --
    // loss adversaries (including loss != none), contention managers and
    // detector envelopes -- composed with non-clique topologies through
    // the one RoundEngine path.  Per-neighborhood collision detection over
    // sparse graphs starves the anonymous protocols of global information,
    // so failure rows here are data (how far does single-hop consensus
    // degrade beyond one hop?), not errors.
    grid.topologies = {TopologyKind::kLine, TopologyKind::kRing,
                       TopologyKind::kGrid, TopologyKind::kRandomGeometric};
    grid.losses = {LossKind::kEcf, LossKind::kProbabilistic,
                   LossKind::kUnrestricted};
    grid.cms = {CmKind::kNoCm, CmKind::kWakeup};
    grid.ns = {8, 16};
    grid.base.alg = AlgKind::kAlg2;
    grid.base.detector = DetectorKind::kZeroAC;
    grid.base.num_values = 16;
    grid.base.cst_target = 5;
    grid.base.p_deliver = 0.6;
    grid.seeds_per_cell = 2;
    return grid;
  }
  if (name == "multihop") {
    // The conclusion's extension as a grid: every multihop workload over
    // every topology shape, friendly and capture-effect link physics, and
    // two RGG densities (the density axis is inert for non-rgg cells).
    // A zero-complete accurate detector is the carrier-sense-grade local
    // detection the deployment story assumes; sweep --detectors nocd to
    // ablate the collision feedback away.
    grid.workloads = {WorkloadKind::kFlood, WorkloadKind::kMis,
                      WorkloadKind::kMisThenConsensus};
    grid.topologies = {TopologyKind::kLine, TopologyKind::kRing,
                       TopologyKind::kGrid, TopologyKind::kRandomGeometric};
    grid.densities = {2.0, 3.0};
    grid.losses = {LossKind::kNoLoss, LossKind::kEcf};
    grid.ns = {8, 16, 32};
    // Crash axis: failure-free, iid crashes through CST, and Theorem 3's
    // worst-case leaf-then-die schedule (sweep --crash-schedules to try
    // other generators, e.g. source-dies).
    grid.faults = {FaultKind::kNone, FaultKind::kRandomCrash,
                   FaultKind::kScheduled};
    grid.crash_schedules = {"leaf-then-die"};
    grid.base.detector = DetectorKind::kZeroAC;
    grid.base.num_values = 16;
    grid.base.cst_target = 5;
    grid.base.crash_p = 0.05;
    grid.seeds_per_cell = 3;
    return grid;
  }
  return std::nullopt;
}

std::vector<std::string> SweepGrid::grid_names() {
  return {"smoke", "default", "policies", "crash", "multihop", "mhloss"};
}

namespace {

template <typename T>
void append_enum_axis(std::string& out, const char* key,
                      const std::vector<T>& axis) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += to_string(axis[i]);
    out += "\"";
  }
  out += "],";
}

void append_string_axis(std::string& out, const char* key,
                        const std::vector<std::string>& axis) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i > 0) out += ",";
    out += jsonu::quote(axis[i]);
  }
  out += "],";
}

template <typename T>
void append_uint_axis(std::string& out, const char* key,
                      const std::vector<T>& axis) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(axis[i]);
  }
  out += "],";
}

}  // namespace

std::string SweepGrid::to_json() const {
  // Fixed key order; every axis present even when empty.  This exact byte
  // sequence is the fingerprint() preimage, so the order is part of the
  // shard-compatibility contract -- do not reorder.
  std::string out = "{";
  out += "\"grid_seed\":" + std::to_string(grid_seed);
  out += ",\"seeds_per_cell\":" + std::to_string(seeds_per_cell);
  out += ",\"base\":" + base.to_json();
  out += ",";
  append_enum_axis(out, "algs", algs);
  append_enum_axis(out, "detectors", detectors);
  append_enum_axis(out, "policies", policies);
  append_enum_axis(out, "cms", cms);
  append_enum_axis(out, "losses", losses);
  append_enum_axis(out, "faults", faults);
  append_uint_axis(out, "ns", ns);
  append_uint_axis(out, "value_spaces", value_spaces);
  append_uint_axis(out, "csts", csts);
  append_enum_axis(out, "topologies", topologies);
  out += "\"densities\":[";
  for (std::size_t i = 0; i < densities.size(); ++i) {
    if (i > 0) out += ",";
    out += jsonu::format_double(densities[i]);
  }
  out += "],";
  append_enum_axis(out, "workloads", workloads);
  append_string_axis(out, "crash_schedules", crash_schedules);
  out.back() = '}';
  return out;
}

std::optional<SweepGrid> SweepGrid::from_json(const std::string& json,
                                              std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<SweepGrid> {
    if (error) *error = message;
    return std::nullopt;
  };
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) return fail("grid is not a flat JSON object");

  SweepGrid grid;
  bool ok = true;
  std::string first_error;
  auto report = [&](const std::string& message) {
    if (ok) first_error = message;
    ok = false;
  };
  auto read_enum_axis = [&](const char* key, auto parse_fn, auto& axis) {
    const std::string* raw = flat->find(key);
    if (!raw) return;  // absent axis stays empty
    auto items = jsonu::parse_array_items(*raw);
    if (!items) {
      report(std::string("axis '") + key + "' is not a JSON array");
      return;
    }
    axis.clear();
    for (const std::string& item : *items) {
      auto parsed = parse_fn(item);
      if (!parsed) {
        report("bad value '" + item + "' for axis '" + key + "'");
        return;
      }
      axis.push_back(*parsed);
    }
  };
  auto read_uint_axis = [&](const char* key, auto& axis) {
    const std::string* raw = flat->find(key);
    if (!raw) return;
    auto items = jsonu::parse_u64_array(*raw);
    if (!items) {
      report(std::string("axis '") + key +
             "' must be an array of unsigned integers");
      return;
    }
    axis.clear();
    for (std::uint64_t v : *items) {
      axis.push_back(
          static_cast<typename std::remove_reference_t<
              decltype(axis)>::value_type>(v));
    }
  };

  static const char* const known_keys[] = {
      "grid_seed", "seeds_per_cell", "base",       "algs",
      "detectors", "policies",       "cms",        "losses",
      "faults",    "ns",             "value_spaces", "csts",
      "topologies", "densities",     "workloads",  "crash_schedules"};
  for (const auto& [key, value] : flat->members) {
    (void)value;
    bool known = false;
    for (const char* k : known_keys) known = known || key == k;
    // A typo'd axis name must not silently sweep nothing.
    if (!known) return fail("unknown key '" + key + "' in grid JSON");
  }

  if (const std::string* raw = flat->find("base")) {
    std::string base_error;
    auto base = ScenarioSpec::from_json(*raw, &base_error);
    if (base) {
      grid.base = *base;
    } else {
      report("base: " + base_error);
    }
  }
  if (const std::string* raw = flat->find("grid_seed")) {
    char* end = nullptr;
    grid.grid_seed = std::strtoull(raw->c_str(), &end, 10);
    if (!end || *end != '\0' || raw->empty() || (*raw)[0] == '-') {
      report("bad value '" + *raw + "' for key 'grid_seed'");
    }
  }
  if (const std::string* raw = flat->find("seeds_per_cell")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(raw->c_str(), &end, 10);
    if (!end || *end != '\0' || raw->empty() || (*raw)[0] == '-' ||
        v > ~0u) {
      report("bad value '" + *raw + "' for key 'seeds_per_cell'");
    } else {
      grid.seeds_per_cell = static_cast<std::uint32_t>(v);
    }
  }
  read_enum_axis("algs", parse_alg, grid.algs);
  read_enum_axis("detectors", parse_detector, grid.detectors);
  read_enum_axis("policies", parse_policy, grid.policies);
  read_enum_axis("cms", parse_cm, grid.cms);
  read_enum_axis("losses", parse_loss, grid.losses);
  read_enum_axis("faults", parse_fault, grid.faults);
  read_uint_axis("ns", grid.ns);
  read_uint_axis("value_spaces", grid.value_spaces);
  read_uint_axis("csts", grid.csts);
  read_enum_axis("topologies", parse_topology, grid.topologies);
  if (const std::string* raw = flat->find("densities")) {
    auto items = jsonu::parse_double_array(*raw);
    if (items) {
      grid.densities = *items;
    } else {
      report("axis 'densities' must be an array of numbers");
    }
  }
  read_enum_axis("workloads", parse_workload, grid.workloads);
  if (const std::string* raw = flat->find("crash_schedules")) {
    auto items = jsonu::parse_array_items(*raw);
    if (items) {
      grid.crash_schedules = *items;  // names validated by validate()
    } else {
      report("axis 'crash_schedules' is not a JSON array");
    }
  }

  if (!ok) return fail(first_error);
  return grid;
}

std::uint64_t SweepGrid::fingerprint() const {
  // FNV-1a 64 over the canonical JSON.
  const std::string canon = to_json();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : canon) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ccd::exp
