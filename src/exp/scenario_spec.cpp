#include "exp/scenario_spec.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace ccd::exp {

namespace {

template <typename E>
std::optional<E> parse_enum(const std::string& s,
                            std::initializer_list<E> all) {
  for (E e : all) {
    if (s == to_string(e)) return e;
  }
  return std::nullopt;
}

// Shortest %g form that strtod parses back to the same double: try
// increasing precision until the round trip is exact.  Keeps the JSON both
// readable ("0.5", not "0.50000000000000000") and lossless.
std::string format_double(double d) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

// --- minimal flat-JSON scanner ---------------------------------------------
// Accepts one object of string/number members; no nesting, no arrays.  That
// is all a ScenarioSpec ever serializes to, and keeping the parser tiny
// beats pulling in a JSON dependency the container may not have.
struct FlatJson {
  std::map<std::string, std::string> members;  // raw value text (unquoted)

  static std::optional<FlatJson> parse(const std::string& text) {
    FlatJson out;
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    };
    auto parse_string = [&]() -> std::optional<std::string> {
      if (i >= text.size() || text[i] != '"') return std::nullopt;
      ++i;
      std::string s;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;  // unescape
        s += text[i++];
      }
      if (i >= text.size()) return std::nullopt;
      ++i;  // closing quote
      return s;
    };
    skip_ws();
    if (i >= text.size() || text[i] != '{') return std::nullopt;
    ++i;
    // Reject trailing content after the object: a concatenated or
    // corrupted record must not silently half-parse.
    auto finish = [&]() -> std::optional<FlatJson> {
      ++i;  // consume '}'
      skip_ws();
      if (i != text.size()) return std::nullopt;
      return out;
    };
    skip_ws();
    if (i < text.size() && text[i] == '}') return finish();  // empty object
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return std::nullopt;
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        auto value = parse_string();
        if (!value) return std::nullopt;
        out.members[*key] = *value;
      } else {
        std::size_t start = i;
        while (i < text.size() && text[i] != ',' && text[i] != '}' &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
          ++i;
        }
        if (i == start) return std::nullopt;
        out.members[*key] = text.substr(start, i - start);
      }
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') return finish();
      return std::nullopt;
    }
  }

  const std::string* find(const char* key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

}  // namespace

const char* to_string(AlgKind k) {
  switch (k) {
    case AlgKind::kAlg1: return "alg1";
    case AlgKind::kAlg2: return "alg2";
    case AlgKind::kAlg3: return "alg3";
    case AlgKind::kAlg4: return "alg4";
    case AlgKind::kNaive: return "naive";
  }
  return "?";
}

const char* to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kAC: return "ac";
    case DetectorKind::kMajAC: return "maj-ac";
    case DetectorKind::kHalfAC: return "half-ac";
    case DetectorKind::kZeroAC: return "zero-ac";
    case DetectorKind::kOAC: return "oac";
    case DetectorKind::kMajOAC: return "maj-oac";
    case DetectorKind::kHalfOAC: return "half-oac";
    case DetectorKind::kZeroOAC: return "zero-oac";
    case DetectorKind::kNoCd: return "nocd";
    case DetectorKind::kNoAcc: return "noacc";
  }
  return "?";
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kTruthful: return "truthful";
    case PolicyKind::kPreferNull: return "prefer-null";
    case PolicyKind::kPreferCollision: return "prefer-collision";
    case PolicyKind::kSpurious: return "spurious";
    case PolicyKind::kFlakyMajority: return "flaky-majority";
    case PolicyKind::kRandomLegal: return "random-legal";
  }
  return "?";
}

const char* to_string(CmKind k) {
  switch (k) {
    case CmKind::kNoCm: return "nocm";
    case CmKind::kWakeup: return "wakeup";
    case CmKind::kLeader: return "leader";
    case CmKind::kBackoff: return "backoff";
  }
  return "?";
}

const char* to_string(LossKind k) {
  switch (k) {
    case LossKind::kNoLoss: return "noloss";
    case LossKind::kEcf: return "ecf";
    case LossKind::kProbabilistic: return "prob";
    case LossKind::kUnrestricted: return "unrestricted";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRandomCrash: return "random-crash";
  }
  return "?";
}

const char* to_string(InitKind k) {
  switch (k) {
    case InitKind::kRandom: return "random";
    case InitKind::kSplit: return "split";
    case InitKind::kAllSame: return "same";
  }
  return "?";
}

const char* to_string(ChaosKind k) {
  switch (k) {
    case ChaosKind::kCalm: return "calm";
    case ChaosKind::kChaotic: return "chaotic";
  }
  return "?";
}

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kSingleHop: return "singlehop";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kRandomGeometric: return "rgg";
  }
  return "?";
}

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kConsensus: return "consensus";
    case WorkloadKind::kFlood: return "flood";
    case WorkloadKind::kMis: return "mis";
    case WorkloadKind::kMisThenConsensus: return "mis-then-consensus";
  }
  return "?";
}

std::optional<AlgKind> parse_alg(const std::string& s) {
  return parse_enum(s, {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg3,
                        AlgKind::kAlg4, AlgKind::kNaive});
}

std::optional<DetectorKind> parse_detector(const std::string& s) {
  return parse_enum(
      s, {DetectorKind::kAC, DetectorKind::kMajAC, DetectorKind::kHalfAC,
          DetectorKind::kZeroAC, DetectorKind::kOAC, DetectorKind::kMajOAC,
          DetectorKind::kHalfOAC, DetectorKind::kZeroOAC, DetectorKind::kNoCd,
          DetectorKind::kNoAcc});
}

std::optional<PolicyKind> parse_policy(const std::string& s) {
  return parse_enum(s, {PolicyKind::kTruthful, PolicyKind::kPreferNull,
                        PolicyKind::kPreferCollision, PolicyKind::kSpurious,
                        PolicyKind::kFlakyMajority, PolicyKind::kRandomLegal});
}

std::optional<CmKind> parse_cm(const std::string& s) {
  return parse_enum(
      s, {CmKind::kNoCm, CmKind::kWakeup, CmKind::kLeader, CmKind::kBackoff});
}

std::optional<LossKind> parse_loss(const std::string& s) {
  return parse_enum(s, {LossKind::kNoLoss, LossKind::kEcf,
                        LossKind::kProbabilistic, LossKind::kUnrestricted});
}

std::optional<FaultKind> parse_fault(const std::string& s) {
  return parse_enum(s, {FaultKind::kNone, FaultKind::kRandomCrash});
}

std::optional<InitKind> parse_init(const std::string& s) {
  return parse_enum(s, {InitKind::kRandom, InitKind::kSplit,
                        InitKind::kAllSame});
}

std::optional<ChaosKind> parse_chaos(const std::string& s) {
  return parse_enum(s, {ChaosKind::kCalm, ChaosKind::kChaotic});
}

std::optional<TopologyKind> parse_topology(const std::string& s) {
  return parse_enum(s, {TopologyKind::kSingleHop, TopologyKind::kLine,
                        TopologyKind::kRing, TopologyKind::kGrid,
                        TopologyKind::kRandomGeometric});
}

std::optional<WorkloadKind> parse_workload(const std::string& s) {
  return parse_enum(s, {WorkloadKind::kConsensus, WorkloadKind::kFlood,
                        WorkloadKind::kMis, WorkloadKind::kMisThenConsensus});
}

std::string ScenarioSpec::to_json() const {
  std::string out = "{";
  auto str = [&](const char* key, const char* value) {
    out += "\"";
    out += key;
    out += "\":\"";
    out += value;
    out += "\",";
  };
  auto num = [&](const char* key, const std::string& value) {
    out += "\"";
    out += key;
    out += "\":";
    out += value;
    out += ",";
  };
  str("alg", to_string(alg));
  str("detector", to_string(detector));
  str("policy", to_string(policy));
  str("cm", to_string(cm));
  str("loss", to_string(loss));
  str("fault", to_string(fault));
  str("init", to_string(init));
  str("chaos", to_string(chaos));
  str("topology", to_string(topology));
  str("workload", to_string(workload));
  num("n", std::to_string(n));
  num("num_values", std::to_string(num_values));
  num("cst_target", std::to_string(cst_target));
  num("p_deliver", format_double(p_deliver));
  num("spurious_p", format_double(spurious_p));
  num("crash_p", format_double(crash_p));
  num("density", format_double(density));
  num("max_rounds", std::to_string(max_rounds));
  num("seed", std::to_string(seed));
  out.back() = '}';
  return out;
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(const std::string& json) {
  return from_json(json, nullptr);
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(const std::string& json,
                                                    std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ScenarioSpec> {
    if (error) *error = message;
    return std::nullopt;
  };

  auto flat = FlatJson::parse(json);
  if (!flat) return fail("not a flat JSON object");

  ScenarioSpec spec;
  bool ok = true;
  // First failure wins: report the offending key AND the rejected value so
  // a hand-written spec file is debuggable from the message alone.
  auto report = [&](const char* key, const std::string& raw,
                    const char* expected) {
    if (ok && error) {
      *error = std::string("bad value '") + raw + "' for key '" + key +
               "' (expected " + expected + ")";
    }
    ok = false;
  };
  auto read_enum = [&](const char* key, auto parse_fn, auto& field,
                       const char* expected) {
    const std::string* raw = flat->find(key);
    if (!raw) return;  // absent members keep their default
    auto parsed = parse_fn(*raw);
    if (parsed) {
      field = *parsed;
    } else {
      report(key, *raw, expected);
    }
  };
  auto read_u64 = [&](const char* key, auto& field) {
    const std::string* raw = flat->find(key);
    if (!raw) return;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(raw->c_str(), &end, 10);
    if (end && *end == '\0') {
      field = static_cast<std::remove_reference_t<decltype(field)>>(v);
    } else {
      report(key, *raw, "an unsigned integer");
    }
  };
  auto read_double = [&](const char* key, double& field) {
    const std::string* raw = flat->find(key);
    if (!raw) return;
    char* end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (end && *end == '\0') {
      field = v;
    } else {
      report(key, *raw, "a number");
    }
  };

  read_enum("alg", parse_alg, spec.alg, "one of alg1..alg4, naive");
  read_enum("detector", parse_detector, spec.detector,
            "a Figure 1 class, nocd or noacc");
  read_enum("policy", parse_policy, spec.policy, "an advice policy");
  read_enum("cm", parse_cm, spec.cm, "nocm, wakeup, leader or backoff");
  read_enum("loss", parse_loss, spec.loss,
            "noloss, ecf, prob or unrestricted");
  read_enum("fault", parse_fault, spec.fault, "none or random-crash");
  read_enum("init", parse_init, spec.init, "random, split or same");
  read_enum("chaos", parse_chaos, spec.chaos, "calm or chaotic");
  read_enum("topology", parse_topology, spec.topology,
            "singlehop, line, ring, grid or rgg");
  read_enum("workload", parse_workload, spec.workload,
            "consensus, flood, mis or mis-then-consensus");
  read_u64("n", spec.n);
  read_u64("num_values", spec.num_values);
  read_u64("cst_target", spec.cst_target);
  read_double("p_deliver", spec.p_deliver);
  read_double("spurious_p", spec.spurious_p);
  read_double("crash_p", spec.crash_p);
  read_double("density", spec.density);
  read_u64("max_rounds", spec.max_rounds);
  read_u64("seed", spec.seed);

  if (!ok) return std::nullopt;
  return spec;
}

std::string ScenarioSpec::cell_key() const {
  ScenarioSpec normalized = *this;
  normalized.seed = 0;
  return normalized.to_json();
}

}  // namespace ccd::exp
