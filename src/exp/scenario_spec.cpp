#include "exp/scenario_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>

#include "util/flat_json.hpp"
#include "exp/world_factory.hpp"
#include "multihop/topology.hpp"
#include "util/bitcodec.hpp"

namespace ccd::exp {

namespace {

using jsonu::FlatJson;
using jsonu::format_double;
using jsonu::skip_quoted;

template <typename E>
std::optional<E> parse_enum(const std::string& s,
                            std::initializer_list<E> all) {
  for (E e : all) {
    if (s == to_string(e)) return e;
  }
  return std::nullopt;
}

// Parse the raw text of a "crash_schedule" array member:
//   [{"round":3,"process":0,"point":"before-send"}, ...]
// Every failure is keyed down to the offending entry: unknown keys are
// rejected (a typo like "proces" must not silently yield process 0), and
// round/process are required.
std::optional<std::vector<CrashEvent>> parse_crash_schedule(
    const std::string& raw, std::string* error) {
  auto fail = [&](const std::string& message)
      -> std::optional<std::vector<CrashEvent>> {
    if (error) *error = message;
    return std::nullopt;
  };
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= raw.size() || raw[i] != '[') {
    return fail("crash_schedule must be a JSON array");
  }
  ++i;
  std::vector<CrashEvent> events;
  skip_ws();
  if (i < raw.size() && raw[i] == ']') return events;  // empty schedule
  while (true) {
    skip_ws();
    const std::size_t entry = events.size();
    auto entry_tag = [&] {
      return "crash_schedule[" + std::to_string(entry) + "]";
    };
    if (i >= raw.size() || raw[i] != '{') {
      return fail(entry_tag() + " must be an object");
    }
    // Events hold no nested structure, so the entry ends at the next '}'
    // outside a string.
    std::size_t end = i;
    while (end < raw.size() && raw[end] != '}') {
      if (raw[end] == '"') {
        if (!skip_quoted(raw, end)) {
          return fail(entry_tag() + " is malformed");
        }
        continue;
      }
      ++end;
    }
    if (end >= raw.size()) return fail(entry_tag() + " is malformed");
    auto flat = FlatJson::parse(raw.substr(i, end - i + 1));
    if (!flat) return fail(entry_tag() + " is malformed");
    i = end + 1;

    CrashEvent event;
    bool have_round = false, have_process = false;
    for (const auto& [key, value] : flat->members) {
      if (key == "round" || key == "process") {
        char* num_end = nullptr;
        const std::uint64_t v = std::strtoull(value.c_str(), &num_end, 10);
        if (!num_end || *num_end != '\0' || value.empty() ||
            v > std::numeric_limits<std::uint32_t>::max()) {
          return fail("bad value '" + value + "' for key '" + key + "' in " +
                      entry_tag() + " (expected an unsigned 32-bit integer)");
        }
        if (key == "round") {
          event.round = static_cast<Round>(v);
          have_round = true;
        } else {
          event.process = static_cast<ProcessId>(v);
          have_process = true;
        }
      } else if (key == "point") {
        auto point = parse_crash_point(value);
        if (!point) {
          return fail("bad value '" + value + "' for key 'point' in " +
                      entry_tag() + " (expected before-send or after-send)");
        }
        event.point = *point;
      } else {
        return fail("unknown key '" + key + "' in " + entry_tag() +
                    " (expected round, process, point)");
      }
    }
    if (!have_round) return fail(entry_tag() + " missing key 'round'");
    if (!have_process) return fail(entry_tag() + " missing key 'process'");
    events.push_back(event);

    skip_ws();
    if (i < raw.size() && raw[i] == ',') {
      ++i;
      continue;
    }
    if (i < raw.size() && raw[i] == ']') {
      ++i;
      skip_ws();
      if (i != raw.size()) break;  // trailing junk
      return events;
    }
    break;
  }
  return fail("crash_schedule array is malformed");
}

/// Shared shape of the topology-cut generators: every vertex in `victims`
/// dies after its round-2 send (the same opener as source-dies -- the
/// workload has just started spreading).
std::vector<CrashEvent> kill_after_round2(
    const std::vector<std::uint32_t>& victims) {
  std::vector<CrashEvent> events;
  events.reserve(victims.size());
  for (std::uint32_t v : victims) {
    CrashEvent e;
    e.round = 2;
    e.process = v;
    e.point = CrashPoint::kAfterSend;
    events.push_back(e);
  }
  return events;
}

}  // namespace

const char* to_string(CrashPoint p) {
  switch (p) {
    case CrashPoint::kBeforeSend: return "before-send";
    case CrashPoint::kAfterSend: return "after-send";
  }
  return "?";
}

std::optional<CrashPoint> parse_crash_point(const std::string& s) {
  return parse_enum(s, {CrashPoint::kBeforeSend, CrashPoint::kAfterSend});
}

const char* to_string(AlgKind k) {
  switch (k) {
    case AlgKind::kAlg1: return "alg1";
    case AlgKind::kAlg2: return "alg2";
    case AlgKind::kAlg3: return "alg3";
    case AlgKind::kAlg4: return "alg4";
    case AlgKind::kNaive: return "naive";
  }
  return "?";
}

const char* to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kAC: return "ac";
    case DetectorKind::kMajAC: return "maj-ac";
    case DetectorKind::kHalfAC: return "half-ac";
    case DetectorKind::kZeroAC: return "zero-ac";
    case DetectorKind::kOAC: return "oac";
    case DetectorKind::kMajOAC: return "maj-oac";
    case DetectorKind::kHalfOAC: return "half-oac";
    case DetectorKind::kZeroOAC: return "zero-oac";
    case DetectorKind::kNoCd: return "nocd";
    case DetectorKind::kNoAcc: return "noacc";
  }
  return "?";
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kTruthful: return "truthful";
    case PolicyKind::kPreferNull: return "prefer-null";
    case PolicyKind::kPreferCollision: return "prefer-collision";
    case PolicyKind::kSpurious: return "spurious";
    case PolicyKind::kFlakyMajority: return "flaky-majority";
    case PolicyKind::kRandomLegal: return "random-legal";
  }
  return "?";
}

const char* to_string(CmKind k) {
  switch (k) {
    case CmKind::kNoCm: return "nocm";
    case CmKind::kWakeup: return "wakeup";
    case CmKind::kLeader: return "leader";
    case CmKind::kBackoff: return "backoff";
  }
  return "?";
}

const char* to_string(LossKind k) {
  switch (k) {
    case LossKind::kNoLoss: return "noloss";
    case LossKind::kEcf: return "ecf";
    case LossKind::kProbabilistic: return "prob";
    case LossKind::kUnrestricted: return "unrestricted";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRandomCrash: return "random-crash";
    case FaultKind::kScheduled: return "scheduled";
  }
  return "?";
}

const char* to_string(InitKind k) {
  switch (k) {
    case InitKind::kRandom: return "random";
    case InitKind::kSplit: return "split";
    case InitKind::kAllSame: return "same";
  }
  return "?";
}

const char* to_string(ChaosKind k) {
  switch (k) {
    case ChaosKind::kCalm: return "calm";
    case ChaosKind::kChaotic: return "chaotic";
  }
  return "?";
}

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kSingleHop: return "singlehop";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kRandomGeometric: return "rgg";
  }
  return "?";
}

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kConsensus: return "consensus";
    case WorkloadKind::kFlood: return "flood";
    case WorkloadKind::kMis: return "mis";
    case WorkloadKind::kMisThenConsensus: return "mis-then-consensus";
    case WorkloadKind::kRoundSync: return "round-sync";
  }
  return "?";
}

std::optional<AlgKind> parse_alg(const std::string& s) {
  return parse_enum(s, {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg3,
                        AlgKind::kAlg4, AlgKind::kNaive});
}

std::optional<DetectorKind> parse_detector(const std::string& s) {
  return parse_enum(
      s, {DetectorKind::kAC, DetectorKind::kMajAC, DetectorKind::kHalfAC,
          DetectorKind::kZeroAC, DetectorKind::kOAC, DetectorKind::kMajOAC,
          DetectorKind::kHalfOAC, DetectorKind::kZeroOAC, DetectorKind::kNoCd,
          DetectorKind::kNoAcc});
}

std::optional<PolicyKind> parse_policy(const std::string& s) {
  return parse_enum(s, {PolicyKind::kTruthful, PolicyKind::kPreferNull,
                        PolicyKind::kPreferCollision, PolicyKind::kSpurious,
                        PolicyKind::kFlakyMajority, PolicyKind::kRandomLegal});
}

std::optional<CmKind> parse_cm(const std::string& s) {
  return parse_enum(
      s, {CmKind::kNoCm, CmKind::kWakeup, CmKind::kLeader, CmKind::kBackoff});
}

std::optional<LossKind> parse_loss(const std::string& s) {
  return parse_enum(s, {LossKind::kNoLoss, LossKind::kEcf,
                        LossKind::kProbabilistic, LossKind::kUnrestricted});
}

std::optional<FaultKind> parse_fault(const std::string& s) {
  return parse_enum(s, {FaultKind::kNone, FaultKind::kRandomCrash,
                        FaultKind::kScheduled});
}

std::optional<InitKind> parse_init(const std::string& s) {
  return parse_enum(s, {InitKind::kRandom, InitKind::kSplit,
                        InitKind::kAllSame});
}

std::optional<ChaosKind> parse_chaos(const std::string& s) {
  return parse_enum(s, {ChaosKind::kCalm, ChaosKind::kChaotic});
}

std::optional<TopologyKind> parse_topology(const std::string& s) {
  return parse_enum(s, {TopologyKind::kSingleHop, TopologyKind::kLine,
                        TopologyKind::kRing, TopologyKind::kGrid,
                        TopologyKind::kRandomGeometric});
}

std::optional<WorkloadKind> parse_workload(const std::string& s) {
  return parse_enum(s, {WorkloadKind::kConsensus, WorkloadKind::kFlood,
                        WorkloadKind::kMis, WorkloadKind::kMisThenConsensus,
                        WorkloadKind::kRoundSync});
}

std::string ScenarioSpec::to_json() const {
  std::string out = "{";
  auto str = [&](const char* key, const char* value) {
    out += "\"";
    out += key;
    out += "\":\"";
    out += value;
    out += "\",";
  };
  auto num = [&](const char* key, const std::string& value) {
    out += "\"";
    out += key;
    out += "\":";
    out += value;
    out += ",";
  };
  str("alg", to_string(alg));
  str("detector", to_string(detector));
  str("policy", to_string(policy));
  str("cm", to_string(cm));
  str("loss", to_string(loss));
  str("fault", to_string(fault));
  // The schedule members are omitted when empty so pre-existing specs (and
  // their cell keys) keep their exact bytes.
  if (!crash_schedule.empty()) {
    out += "\"crash_schedule\":[";
    for (const CrashEvent& e : crash_schedule) {
      out += "{\"round\":" + std::to_string(e.round);
      out += ",\"process\":" + std::to_string(e.process);
      out += ",\"point\":\"";
      out += to_string(e.point);
      out += "\"},";
    }
    out.back() = ']';
    out += ",";
  }
  if (!crash_schedule_name.empty()) {
    str("crash_schedule_name", crash_schedule_name.c_str());
  }
  str("init", to_string(init));
  str("chaos", to_string(chaos));
  str("topology", to_string(topology));
  str("workload", to_string(workload));
  num("n", std::to_string(n));
  num("num_values", std::to_string(num_values));
  num("cst_target", std::to_string(cst_target));
  num("p_deliver", format_double(p_deliver));
  num("spurious_p", format_double(spurious_p));
  num("crash_p", format_double(crash_p));
  num("density", format_double(density));
  // Later-PR knobs are omitted at their defaults so pre-existing specs
  // (and their cell keys) keep their exact bytes -- the same contract as
  // the crash-schedule members above.
  if (id_space != 0) num("id_space", std::to_string(id_space));
  {
    const ScenarioSpec defaults;
    if (sync_rho != defaults.sync_rho) {
      num("sync_rho", format_double(sync_rho));
    }
    if (sync_round_length != defaults.sync_round_length) {
      num("sync_round_length", format_double(sync_round_length));
    }
  }
  num("max_rounds", std::to_string(max_rounds));
  num("seed", std::to_string(seed));
  out.back() = '}';
  return out;
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(const std::string& json) {
  return from_json(json, nullptr);
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(const std::string& json,
                                                    std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ScenarioSpec> {
    if (error) *error = message;
    return std::nullopt;
  };

  auto flat = FlatJson::parse(json);
  if (!flat) return fail("not a flat JSON object");

  ScenarioSpec spec;
  bool ok = true;
  // First failure wins: report the offending key AND the rejected value so
  // a hand-written spec file is debuggable from the message alone.
  auto report = [&](const char* key, const std::string& raw,
                    const char* expected) {
    if (ok && error) {
      *error = std::string("bad value '") + raw + "' for key '" + key +
               "' (expected " + expected + ")";
    }
    ok = false;
  };
  auto read_enum = [&](const char* key, auto parse_fn, auto& field,
                       const char* expected) {
    const std::string* raw = flat->find(key);
    if (!raw) return;  // absent members keep their default
    auto parsed = parse_fn(*raw);
    if (parsed) {
      field = *parsed;
    } else {
      report(key, *raw, expected);
    }
  };
  auto read_u64 = [&](const char* key, auto& field) {
    const std::string* raw = flat->find(key);
    if (!raw) return;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(raw->c_str(), &end, 10);
    if (end && *end == '\0') {
      field = static_cast<std::remove_reference_t<decltype(field)>>(v);
    } else {
      report(key, *raw, "an unsigned integer");
    }
  };
  auto read_double = [&](const char* key, double& field) {
    const std::string* raw = flat->find(key);
    if (!raw) return;
    char* end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (end && *end == '\0') {
      field = v;
    } else {
      report(key, *raw, "a number");
    }
  };

  read_enum("alg", parse_alg, spec.alg, "one of alg1..alg4, naive");
  read_enum("detector", parse_detector, spec.detector,
            "a Figure 1 class, nocd or noacc");
  read_enum("policy", parse_policy, spec.policy, "an advice policy");
  read_enum("cm", parse_cm, spec.cm, "nocm, wakeup, leader or backoff");
  read_enum("loss", parse_loss, spec.loss,
            "noloss, ecf, prob or unrestricted");
  read_enum("fault", parse_fault, spec.fault,
            "none, random-crash or scheduled");
  if (const std::string* raw = flat->find("crash_schedule")) {
    std::string schedule_error;
    auto events = parse_crash_schedule(*raw, &schedule_error);
    if (events) {
      spec.crash_schedule = std::move(*events);
    } else {
      if (ok && error) *error = schedule_error;
      ok = false;
    }
  }
  if (const std::string* raw = flat->find("crash_schedule_name")) {
    // A typo'd generator name must not silently expand to an empty
    // schedule (a failure-free run masquerading as a faulted one).
    const auto known = crash_schedule_names();
    if (std::find(known.begin(), known.end(), *raw) != known.end()) {
      spec.crash_schedule_name = *raw;
    } else {
      std::string expected = "a known generator:";
      for (const std::string& name : known) {
        expected += " " + name + (name == known.back() ? "" : ",");
      }
      report("crash_schedule_name", *raw, expected.c_str());
    }
  }
  read_enum("init", parse_init, spec.init, "random, split or same");
  read_enum("chaos", parse_chaos, spec.chaos, "calm or chaotic");
  read_enum("topology", parse_topology, spec.topology,
            "singlehop, line, ring, grid or rgg");
  read_enum("workload", parse_workload, spec.workload,
            "consensus, flood, mis or mis-then-consensus");
  read_u64("n", spec.n);
  read_u64("num_values", spec.num_values);
  read_u64("cst_target", spec.cst_target);
  read_double("p_deliver", spec.p_deliver);
  read_double("spurious_p", spec.spurious_p);
  read_double("crash_p", spec.crash_p);
  read_double("density", spec.density);
  read_u64("id_space", spec.id_space);
  read_double("sync_rho", spec.sync_rho);
  read_double("sync_round_length", spec.sync_round_length);
  read_u64("max_rounds", spec.max_rounds);
  read_u64("seed", spec.seed);

  if (!ok) return std::nullopt;
  return spec;
}

std::string ScenarioSpec::cell_key() const {
  ScenarioSpec normalized = *this;
  normalized.seed = 0;
  return normalized.to_json();
}

std::vector<std::string> crash_schedule_names() {
  return {"leaf-then-die", "source-dies", "articulation-point",
          "all-cut-vertices", "min-vertex-cut"};
}

std::optional<std::vector<CrashEvent>> generate_crash_schedule(
    const std::string& name, const ScenarioSpec& spec) {
  if (name == "leaf-then-die") {
    // Theorem 3's worst case: the adversary lets each doomed process
    // participate for one full "lead everyone to a leaf" window of the
    // value BST -- ceil(lg|V|)+1 rounds -- then the process broadcasts
    // once more and dies (kAfterSend, the literal Definition 11 crash).
    // Highest ids die first; process 0 is the guaranteed survivor.
    std::vector<CrashEvent> events;
    if (spec.n < 2) return events;
    const Round gap =
        ceil_log2(std::max<std::uint64_t>(spec.num_values, 2)) + 1;
    for (std::uint32_t k = 0; k + 1 < spec.n; ++k) {
      CrashEvent e;
      e.round = (static_cast<Round>(k) + 1) * gap;
      e.process = spec.n - 1 - k;
      e.point = CrashPoint::kAfterSend;
      events.push_back(e);
    }
    return events;
  }
  if (name == "source-dies") {
    // The adversarial broadcast opener: node 0 (the flood source) speaks
    // in rounds 1 and 2, then crashes after its round-2 send -- whatever
    // it managed to seed must carry the workload.
    std::vector<CrashEvent> events;
    if (spec.n == 0) return events;
    CrashEvent e;
    e.round = 2;
    e.process = 0;
    e.point = CrashPoint::kAfterSend;
    events.push_back(e);
    return events;
  }
  if (name == "articulation-point") {
    // The partition worst case, declaratively: materialize the spec's
    // topology and kill its most damaging cut vertex just as the workload
    // starts spreading (round 2, after-send -- the same opener shape as
    // source-dies).  "Most damaging" = the articulation point whose removal
    // minimizes the largest surviving component (the most balanced split),
    // lowest id on ties.  Topologies without a cut vertex (ring, clique,
    // dense rgg) expand to the empty, failure-free schedule.
    //
    // The topology is built once more here on top of run_multihop's own
    // construction -- a deliberate trade: generators stay (name, spec) ->
    // events with no executor coupling, and make_topology is deterministic
    // in the spec, so the two materializations agree by construction.
    std::vector<CrashEvent> events;
    if (spec.n < 3) return events;
    const Topology topo = WorldFactory::make_topology(spec);
    const std::vector<std::uint32_t> cuts = topo.articulation_points();
    if (cuts.empty()) return events;
    std::uint32_t best = cuts.front();
    std::size_t best_worst = topo.size();
    for (std::uint32_t v : cuts) {
      const std::size_t worst = topo.largest_component_without(v);
      if (worst < best_worst) {
        best_worst = worst;
        best = v;
      }
    }
    CrashEvent e;
    e.round = 2;
    e.process = best;
    e.point = CrashPoint::kAfterSend;
    events.push_back(e);
    return events;
  }
  if (name == "all-cut-vertices") {
    // Multi-kill escalation of articulation-point: EVERY cut vertex dies
    // after its round-2 send, shattering the graph into its biconnected
    // leaves simultaneously (a line keeps only its two endpoints).  Like
    // the single-cut generator this expands to the empty schedule on
    // 2-connected shapes -- min-vertex-cut is the generator that reaches
    // those.
    if (spec.n < 3) return std::vector<CrashEvent>{};
    const Topology topo = WorldFactory::make_topology(spec);
    return kill_after_round2(topo.articulation_points());
  }
  if (name == "min-vertex-cut") {
    // A minimum vertex cut of the materialized topology (size capped at 3),
    // all killed after their round-2 sends.  On graphs with an articulation
    // point this degenerates to the single worst cut vertex; on 2-connected
    // graphs it is the size->=2 separator the articulation-point generator
    // cannot find (a ring loses two nodes, a grid a small column).  Cliques
    // have no vertex cut at all and stay failure-free.
    if (spec.n < 3) return std::vector<CrashEvent>{};
    const Topology topo = WorldFactory::make_topology(spec);
    return kill_after_round2(topo.min_vertex_cut());
  }
  return std::nullopt;
}

std::vector<CrashEvent> resolved_crash_schedule(const ScenarioSpec& spec) {
  if (!spec.crash_schedule_name.empty()) {
    if (auto events = generate_crash_schedule(spec.crash_schedule_name, spec)) {
      return *events;
    }
    // Unknown name: rejected upstream by both ScenarioSpec::from_json and
    // SweepGrid::validate, so this is only reachable from hand-built specs.
    return {};
  }
  return spec.crash_schedule;
}

}  // namespace ccd::exp
