#include "exp/world_factory.hpp"

#include <algorithm>
#include <cmath>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/leader_election.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "consensus/naive_no_cd.hpp"
#include "multihop/flood.hpp"
#include "multihop/mis.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"
#include "sync/round_synchronizer.hpp"
#include "util/bitcodec.hpp"
#include "util/rng.hpp"

namespace ccd::exp {

namespace {

// Per-component sub-seed streams.  Distinct salts keep the streams
// independent; hash_mix makes neighbouring run seeds uncorrelated.
constexpr std::uint64_t kCmSalt = 0x636d5f73656564ULL;      // "cm_seed"
constexpr std::uint64_t kCdSalt = 0x63645f73656564ULL;      // "cd_seed"
constexpr std::uint64_t kLossSalt = 0x6c6f73735f73ULL;      // "loss_s"
constexpr std::uint64_t kFaultSalt = 0x6661756c745fULL;     // "fault_"
constexpr std::uint64_t kInitSalt = 0x696e69745f73ULL;      // "init_s"
constexpr std::uint64_t kTopoSalt = 0x746f706f5f73ULL;      // "topo_s"
constexpr std::uint64_t kMhProcSalt = 0x6d685f70726fULL;    // "mh_pro"
constexpr std::uint64_t kMhLinkSalt = 0x6d685f6c6e6bULL;    // "mh_lnk"
constexpr std::uint64_t kPhase2Salt = 0x7068617365325fULL;  // "phase2_"
constexpr std::uint64_t kSyncSalt = 0x73796e635f73ULL;      // "sync_s"

std::uint64_t sub_seed(const ScenarioSpec& spec, std::uint64_t salt) {
  return hash_mix(spec.seed ^ salt);
}

DetectorSpec detector_spec(const ScenarioSpec& spec) {
  const Round r_acc = std::max<Round>(spec.cst_target, 1);
  switch (spec.detector) {
    case DetectorKind::kAC: return DetectorSpec::AC();
    case DetectorKind::kMajAC: return DetectorSpec::MajAC();
    case DetectorKind::kHalfAC: return DetectorSpec::HalfAC();
    case DetectorKind::kZeroAC: return DetectorSpec::ZeroAC();
    case DetectorKind::kOAC: return DetectorSpec::OAC(r_acc);
    case DetectorKind::kMajOAC: return DetectorSpec::MajOAC(r_acc);
    case DetectorKind::kHalfOAC: return DetectorSpec::HalfOAC(r_acc);
    case DetectorKind::kZeroOAC: return DetectorSpec::ZeroOAC(r_acc);
    case DetectorKind::kNoCd: return DetectorSpec::NoCD();
    case DetectorKind::kNoAcc: return DetectorSpec::NoAcc();
  }
  return DetectorSpec::AC();
}

std::unique_ptr<AdvicePolicy> make_policy(const ScenarioSpec& spec) {
  const std::uint64_t seed = sub_seed(spec, kCdSalt);
  switch (spec.policy) {
    case PolicyKind::kTruthful:
      return make_truthful_policy();
    case PolicyKind::kPreferNull:
      return make_prefer_null_policy();
    case PolicyKind::kPreferCollision:
      return make_prefer_collision_policy();
    case PolicyKind::kSpurious:
      return std::make_unique<SpuriousPolicy>(
          spec.spurious_p, std::max<Round>(spec.cst_target, 1), seed);
    case PolicyKind::kFlakyMajority:
      return std::make_unique<FlakyMajorityPolicy>(spec.spurious_p, seed);
    case PolicyKind::kRandomLegal:
      return std::make_unique<RandomLegalPolicy>(seed);
  }
  return make_truthful_policy();
}

}  // namespace

std::unique_ptr<ConsensusAlgorithm> WorldFactory::make_algorithm(
    const ScenarioSpec& spec) {
  switch (spec.alg) {
    case AlgKind::kAlg1:
      return std::make_unique<Alg1Algorithm>();
    case AlgKind::kAlg2:
      return std::make_unique<Alg2Algorithm>(spec.num_values);
    case AlgKind::kAlg3:
      return std::make_unique<Alg3Algorithm>(spec.num_values);
    case AlgKind::kAlg4:
      // An explicit id_space sweeps |I| (the Section 7.3 crossover bench);
      // 0 keeps the legacy roomy default.
      return std::make_unique<Alg4Algorithm>(
          spec.num_values,
          /*id_space_size=*/spec.id_space != 0
              ? spec.id_space
              : std::max<std::uint64_t>(64, 2 * spec.n));
    case AlgKind::kNaive:
      return std::make_unique<NaiveNoCdAlgorithm>(
          /*patience=*/spec.cst_target + 8);
  }
  return std::make_unique<Alg1Algorithm>();
}

std::unique_ptr<ContentionManager> WorldFactory::make_cm(
    const ScenarioSpec& spec) {
  switch (spec.cm) {
    case CmKind::kNoCm:
      return std::make_unique<NoCm>();
    case CmKind::kWakeup: {
      WakeupService::Options ws;
      ws.r_wake = std::max<Round>(spec.cst_target, 1);
      ws.seed = sub_seed(spec, kCmSalt);
      if (spec.chaos == ChaosKind::kChaotic) {
        ws.pre = WakeupService::PreStabilization::kRandomSubset;
        ws.post = WakeupService::PostStabilization::kRotateAlive;
      }
      return std::make_unique<WakeupService>(ws);
    }
    case CmKind::kLeader: {
      LeaderElectionService::Options ls;
      ls.r_lead = std::max<Round>(spec.cst_target, 1);
      return std::make_unique<LeaderElectionService>(ls);
    }
    case CmKind::kBackoff: {
      BackoffCm::Options bo;
      bo.seed = sub_seed(spec, kCmSalt);
      return std::make_unique<BackoffCm>(bo);
    }
  }
  return std::make_unique<NoCm>();
}

std::unique_ptr<OracleDetector> WorldFactory::make_detector(
    const ScenarioSpec& spec) {
  return std::make_unique<OracleDetector>(detector_spec(spec),
                                          make_policy(spec));
}

std::unique_ptr<LossAdversary> WorldFactory::make_loss(
    const ScenarioSpec& spec) {
  const std::uint64_t seed = sub_seed(spec, kLossSalt);
  switch (spec.loss) {
    case LossKind::kNoLoss:
      return std::make_unique<NoLoss>();
    case LossKind::kEcf: {
      EcfAdversary::Options ecf;
      ecf.r_cf = std::max<Round>(spec.cst_target, 1);
      ecf.p_deliver = spec.p_deliver;
      ecf.seed = seed;
      if (spec.chaos == ChaosKind::kChaotic) {
        ecf.pre = EcfAdversary::PreMode::kCapture;
        ecf.contention = EcfAdversary::ContentionMode::kCapture;
      } else {
        ecf.pre = EcfAdversary::PreMode::kRandom;
        ecf.contention = EcfAdversary::ContentionMode::kDeliverAll;
      }
      return std::make_unique<EcfAdversary>(ecf);
    }
    case LossKind::kProbabilistic: {
      ProbabilisticLoss::Options opts;
      opts.p_deliver = spec.p_deliver;
      opts.r_cf = kNeverRound;
      opts.seed = seed;
      return std::make_unique<ProbabilisticLoss>(opts);
    }
    case LossKind::kUnrestricted: {
      UnrestrictedLoss::Options opts;
      opts.seed = seed;
      return std::make_unique<UnrestrictedLoss>(opts);
    }
  }
  return std::make_unique<NoLoss>();
}

std::unique_ptr<FailureAdversary> WorldFactory::make_fault(
    const ScenarioSpec& spec) {
  switch (spec.fault) {
    case FaultKind::kNone:
      return std::make_unique<NoFailures>();
    case FaultKind::kRandomCrash: {
      RandomCrash::Options opts;
      opts.p = spec.crash_p;
      opts.stop_after = spec.cst_target;
      // Never crash everyone: keep at least one survivor so termination
      // remains observable.
      opts.max_crashes = spec.n > 0 ? spec.n - 1 : 0;
      opts.seed = sub_seed(spec, kFaultSalt);
      return std::make_unique<RandomCrash>(opts);
    }
    case FaultKind::kScheduled:
      return std::make_unique<ScheduledCrash>(resolved_crash_schedule(spec));
  }
  return std::make_unique<NoFailures>();
}

std::vector<Value> WorldFactory::make_initial_values(
    const ScenarioSpec& spec) {
  switch (spec.init) {
    case InitKind::kRandom:
      return random_initial_values(spec.n, spec.num_values,
                                   sub_seed(spec, kInitSalt));
    case InitKind::kSplit:
      return split_initial_values(spec.n, 0,
                                  spec.num_values > 1 ? spec.num_values - 1
                                                      : 0);
    case InitKind::kAllSame:
      return std::vector<Value>(spec.n,
                                spec.num_values > 1 ? spec.num_values - 1 : 0);
  }
  return std::vector<Value>(spec.n, 0);
}

Round WorldFactory::max_rounds(const ScenarioSpec& spec) {
  if (spec.max_rounds > 0) return spec.max_rounds;
  // Every upper bound in the paper is CST + O(lg|V|); Algorithm 3 needs
  // O(lg|V|) per crash on top.  A 40x slack absorbs chaotic pre-CST phases
  // and keeps never-terminating cells (NoCD, naive) cheap to simulate.
  const Round lg = ceil_log2(std::max<std::uint64_t>(spec.num_values, 2));
  return spec.cst_target + 100 + 40 * (lg + 1);
}

World WorldFactory::make(const ScenarioSpec& spec) {
  auto algorithm = make_algorithm(spec);
  return ccd::make_world(*algorithm, make_initial_values(spec), make_cm(spec),
                         make_detector(spec), make_loss(spec),
                         make_fault(spec));
}

// --- multihop path ---------------------------------------------------------

Topology WorldFactory::make_topology(const ScenarioSpec& spec) {
  const std::size_t n = spec.n;
  switch (spec.topology) {
    case TopologyKind::kSingleHop:
      return Topology::clique(n);
    case TopologyKind::kLine:
      return Topology::line(n);
    case TopologyKind::kRing:
      return Topology::ring(n);
    case TopologyKind::kGrid:
      return Topology::grid_n(n);
    case TopologyKind::kRandomGeometric: {
      const std::uint64_t base = sub_seed(spec, kTopoSalt);
      if (n < 2) return Topology::random_geometric(n, 0.0, base);
      // radius^2 * pi = density * ln(n) / n: density 1.0 is the asymptotic
      // connectivity threshold of the unit-disk model; the spec documents
      // a floor of 2.0.  Bounded retries on derived seeds make connected
      // instances deterministic in practice at the floor.
      const double radius =
          std::sqrt(std::max(0.0, spec.density) *
                    std::log(static_cast<double>(n)) /
                    (3.14159265358979323846 * static_cast<double>(n)));
      Topology topo = Topology::random_geometric(n, radius, base);
      for (std::uint64_t attempt = 1; attempt < 32 && !topo.connected();
           ++attempt) {
        topo = Topology::random_geometric(n, radius, hash_mix(base + attempt));
      }
      return topo;
    }
  }
  return Topology::clique(n);
}

MhLinkModel WorldFactory::make_link(const ScenarioSpec& spec) {
  switch (spec.loss) {
    case LossKind::kNoLoss: return {1.0, 1.0};
    case LossKind::kEcf: return {0.95, 0.05};
    case LossKind::kProbabilistic:
      return {spec.p_deliver, 0.5 * spec.p_deliver};
    case LossKind::kUnrestricted: return {0.5, 0.0};
  }
  return {1.0, 1.0};
}

Round WorldFactory::multihop_max_rounds(const ScenarioSpec& spec) {
  if (spec.max_rounds > 0) return spec.max_rounds;
  // Flood needs Omega(diameter) <= n hops, each a lone-broadcast lottery;
  // MIS settles in O(lg n) phases.  Linear slack covers both.
  return 200 + 40 * static_cast<Round>(spec.n);
}

std::uint64_t WorldFactory::mh_proc_seed(const ScenarioSpec& spec) {
  return sub_seed(spec, kMhProcSalt);
}

std::uint64_t WorldFactory::mh_link_seed(const ScenarioSpec& spec) {
  return sub_seed(spec, kMhLinkSalt);
}

ScenarioSpec WorldFactory::phase2_spec(const ScenarioSpec& spec,
                                       std::uint32_t k) {
  ScenarioSpec sub = spec;
  sub.topology = TopologyKind::kSingleHop;
  sub.workload = WorkloadKind::kConsensus;
  sub.n = k;
  sub.seed = sub_seed(spec, kPhase2Salt);
  if (sub.fault == FaultKind::kScheduled) {
    sub.fault = FaultKind::kNone;
    sub.crash_schedule.clear();
    sub.crash_schedule_name.clear();
  }
  return sub;
}

namespace {

/// Shared engine assembly for the capture-channel (flood / MIS) workloads:
/// byte-identical to the pre-unification MultihopExecutor wiring -- same
/// component construction order, same kMhLinkSalt RNG stream.
RoundEngine make_capture_engine(const ScenarioSpec& spec, Topology topo,
                                std::vector<std::unique_ptr<Process>> procs,
                                std::unique_ptr<FailureAdversary> fault,
                                const RunScenarioOptions& options) {
  EngineWorld ew;
  ew.world.processes = std::move(procs);
  ew.world.cd = std::make_unique<OracleDetector>(detector_spec(spec),
                                                 make_policy(spec));
  ew.world.fault = std::move(fault);
  ew.topology = std::move(topo);
  ew.channel = ChannelModel::kCapture;
  ew.scope = CollisionScope::kLocal;
  ew.link = WorldFactory::make_link(spec);
  ew.link_seed = sub_seed(spec, kMhLinkSalt);
  EngineOptions eo;
  eo.record_views = options.record_views;
  eo.record_rounds = options.capture_log;
  eo.stop_when_all_decided = false;
  return RoundEngine(std::move(ew), eo);
}

void finish_common(MultihopSummary& out, const RoundEngine& ex) {
  out.rounds_executed = ex.current_round();
  out.broadcasts = ex.total_broadcasts();
  out.messages_per_node =
      ex.size() > 0 ? static_cast<double>(ex.total_broadcasts()) /
                          static_cast<double>(ex.size())
                    : 0.0;
  out.crashes_applied = ex.crashes_applied();
  out.survivors = ex.num_alive();
}

MultihopSummary run_flood(const ScenarioSpec& spec, Topology topo,
                          const RunScenarioOptions& options,
                          std::optional<ExecutionLog>* log_out,
                          obs::EngineCounters* counters_out) {
  MultihopSummary out;
  out.ran = true;
  const std::size_t n = topo.size();
  const std::uint32_t diam = topo.diameter();
  out.connected = diam != Topology::kUnreachable;
  out.diameter = out.connected ? diam : 0;
  if (n == 0) return out;

  const Round budget = WorldFactory::multihop_max_rounds(spec);
  const std::uint64_t proc_base = sub_seed(spec, kMhProcSalt);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FloodProcess::Options o;
    o.is_source = i == 0;
    // Always the CD-backoff policy: under a NoCD detector it degenerates
    // to fixed-probability flooding, so the detector axis itself carries
    // the with/without-collision-feedback contrast.
    o.policy = FloodPolicy::kCdBackoff;
    o.fresh_rounds = budget;
    o.seed = hash_mix(proc_base ^ static_cast<std::uint64_t>(i));
    procs.push_back(std::make_unique<FloodProcess>(o));
  }
  auto fault = WorldFactory::make_fault(spec);
  // Theorem 3 accounting: success criteria are judged against the survivor
  // set AFTER failures cease, so completion cannot be declared while the
  // adversary still has crashes pending.
  const Round quiesce = fault->last_crash_round();
  RoundEngine ex = make_capture_engine(spec, std::move(topo),
                                       std::move(procs), std::move(fault),
                                       options);
  for (Round r = 1; r <= budget; ++r) {
    ex.step();
    // Coverage is over survivors: a copy of the message held only by dead
    // nodes cannot serve anyone.
    std::size_t covered = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ex.alive(i) &&
          static_cast<FloodProcess&>(ex.process(i)).has_message()) {
        ++covered;
      }
    }
    out.covered = covered;
    if (ex.num_alive() > 0 && covered == ex.num_alive() && r >= quiesce) {
      out.full_coverage_round = r;
      break;
    }
  }
  finish_common(out, ex);
  if (log_out) *log_out = ex.log();
  if (counters_out) counters_out->add(ex.counters());
  return out;
}

MultihopSummary run_mis_phase(const ScenarioSpec& spec, Topology topo,
                              std::vector<bool>* heads_out,
                              const RunScenarioOptions& options,
                              std::optional<ExecutionLog>* log_out,
                              obs::EngineCounters* counters_out) {
  MultihopSummary out;
  out.ran = true;
  const std::size_t n = topo.size();
  const std::uint32_t diam = topo.diameter();
  out.connected = diam != Topology::kUnreachable;
  out.diameter = out.connected ? diam : 0;
  if (n == 0) return out;

  const Round budget = WorldFactory::multihop_max_rounds(spec);
  const std::uint64_t proc_base = sub_seed(spec, kMhProcSalt);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MisProcess::Options o;
    o.seed = hash_mix(proc_base ^ static_cast<std::uint64_t>(i));
    procs.push_back(std::make_unique<MisProcess>(o));
  }
  auto fault = WorldFactory::make_fault(spec);
  const Round quiesce = fault->last_crash_round();
  RoundEngine ex = make_capture_engine(spec, std::move(topo),
                                       std::move(procs), std::move(fault),
                                       options);
  for (Round r = 1; r <= budget; ++r) {
    ex.step();
    // Settlement is judged over survivors, and -- as in Theorem 3's bound
    // -- only after failures cease: a crash can un-dominate a node, so an
    // early all-settled snapshot would overstate the clustering.
    bool all_settled = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ex.alive(i) &&
          !static_cast<MisProcess&>(ex.process(i)).settled()) {
        all_settled = false;
        break;
      }
    }
    if (all_settled && r >= quiesce) {
      out.mis_settle_round = r;
      break;
    }
  }

  // Heads and the independence/maximality verdicts are conditioned on the
  // surviving subgraph: dead heads elect nobody and dominate nobody.
  std::vector<bool> heads(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    heads[i] = ex.alive(i) &&
               static_cast<MisProcess&>(ex.process(i)).state() ==
                   MisProcess::State::kHead;
    if (heads[i]) ++out.mis_size;
  }
  const Topology& graph = ex.topology();
  for (std::size_t i = 0; i < n; ++i) {
    if (!ex.alive(i)) continue;
    if (heads[i]) {
      for (std::uint32_t j : graph.neighbors(i)) {
        if (heads[j]) out.mis_independent = false;
      }
    } else {
      bool dominated = false;
      for (std::uint32_t j : graph.neighbors(i)) {
        if (heads[j]) dominated = true;
      }
      if (!dominated) out.mis_maximal = false;
    }
  }
  finish_common(out, ex);
  if (heads_out) *heads_out = std::move(heads);
  if (log_out) *log_out = ex.log();
  if (counters_out) counters_out->add(ex.counters());
  return out;
}

/// Consensus over a non-clique topology: the composition the RoundEngine
/// unification buys.  The SAME component stack the single-hop path builds
/// (WorldFactory::make: algorithm, cm, detector, loss, fault, initial
/// values -- same salts, same streams) is driven over the spec's graph
/// with per-neighborhood collision semantics and an adjacency-masked loss
/// adversary.
void run_consensus_on_topology(const ScenarioSpec& spec,
                               const RunScenarioOptions& options,
                               ScenarioOutcome& out) {
  Topology topo = WorldFactory::make_topology(spec);
  out.mh.ran = true;
  const std::uint32_t diam = topo.diameter();
  out.mh.connected = diam != Topology::kUnreachable;
  out.mh.diameter = out.mh.connected ? diam : 0;

  EngineWorld ew;
  ew.world = WorldFactory::make(spec);
  ew.topology = std::move(topo);
  ew.channel = ChannelModel::kMatrix;
  ew.scope = CollisionScope::kLocal;
  EngineOptions eo;
  eo.record_views = options.record_views;
  eo.record_rounds = true;  // the consensus checker reads the log
  RoundEngine engine(std::move(ew), eo);

  out.summary.cst = engine.world().cst();
  out.summary.result = engine.run(WorldFactory::max_rounds(spec));
  out.summary.verdict =
      check_consensus(engine.log(), engine.world().initial_values);
  if (out.summary.cst != kNeverRound &&
      out.summary.verdict.last_decision_round > out.summary.cst) {
    out.summary.rounds_after_cst =
        out.summary.verdict.last_decision_round - out.summary.cst;
  }
  out.mh.rounds_executed = engine.current_round();
  out.mh.broadcasts = engine.total_broadcasts();
  out.mh.messages_per_node =
      spec.n > 0 ? static_cast<double>(engine.total_broadcasts()) /
                       static_cast<double>(spec.n)
                 : 0.0;
  out.mh.crashes_applied = engine.crashes_applied();
  out.mh.survivors = engine.num_alive();
  out.counters.add(engine.counters());
  if (options.capture_log) out.log = engine.log();
}

/// The E13 substrate workload: below the round abstraction entirely, so it
/// bypasses the engine and asks the reference-broadcast synchronizer
/// whether synchronized rounds exist at all under this drift/loss regime.
SyncSummary run_round_sync(const ScenarioSpec& spec) {
  SyncSummary s;
  s.ran = true;
  if (spec.n == 0) return s;
  RoundSynchronizer::Options o;
  o.n = spec.n;
  o.rho = spec.sync_rho;
  o.epoch = 1.0;
  o.jitter = 1e-5;
  o.beacon_loss = std::clamp(1.0 - spec.p_deliver, 0.0, 1.0);
  o.round_length = spec.sync_round_length;
  o.horizon = 60.0;
  o.seed = sub_seed(spec, kSyncSalt);
  RoundSynchronizer sync(o);
  s.max_skew = sync.measured_max_skew(500);
  s.skew_bound = sync.skew_bound();
  s.round_agreement = sync.round_agreement_fraction(500);
  s.within_bound = s.max_skew <= s.skew_bound;
  return s;
}

}  // namespace

ScenarioOutcome WorldFactory::run_scenario(const ScenarioSpec& spec,
                                           const RunScenarioOptions& options) {
  ScenarioOutcome out;
  switch (spec.workload) {
    case WorkloadKind::kConsensus: {
      if (spec.topology == TopologyKind::kSingleHop) {
        ExecutorOptions eo;
        eo.record_views = options.record_views;
        if (options.capture_log) {
          ExecutionLog log(0, false);
          out.summary = run_consensus(make(spec), max_rounds(spec), eo, &log,
                                      &out.counters);
          out.log = std::move(log);
        } else {
          out.summary = run_consensus(make(spec), max_rounds(spec), eo,
                                      nullptr, &out.counters);
        }
      } else {
        run_consensus_on_topology(spec, options, out);
      }
      return out;
    }
    case WorkloadKind::kFlood: {
      out.mh = run_flood(spec, make_topology(spec), options,
                         options.capture_log ? &out.log : nullptr,
                         &out.counters);
      return out;
    }
    case WorkloadKind::kMis: {
      out.mh = run_mis_phase(spec, make_topology(spec), nullptr, options,
                             options.capture_log ? &out.log : nullptr,
                             &out.counters);
      return out;
    }
    case WorkloadKind::kMisThenConsensus: {
      std::vector<bool> heads;  // surviving heads only (dead heads are out)
      out.mh = run_mis_phase(spec, make_topology(spec), &heads, options,
                             options.capture_log ? &out.log : nullptr,
                             &out.counters);
      std::size_t k = 0;
      for (bool h : heads) k += h;
      if (k > 0) {
        // Phase 2: the surviving clusterheads form the single-hop
        // backbone; run the spec's consensus stack among them with a
        // derived seed (see phase2_spec for the fault-axis carry rules).
        ScenarioSpec sub = phase2_spec(spec, static_cast<std::uint32_t>(k));
        ExecutorOptions eo;
        eo.record_views = options.record_views;
        if (options.capture_log) {
          ExecutionLog log(0, false);
          out.mh.consensus = run_consensus(make(sub), max_rounds(sub), eo,
                                           &log, &out.counters);
          out.phase2_log = std::move(log);
        } else {
          out.mh.consensus = run_consensus(make(sub), max_rounds(sub), eo,
                                           nullptr, &out.counters);
        }
        out.summary = *out.mh.consensus;
      } else {
        out.mh.phase2_skipped = true;
      }
      return out;
    }
    case WorkloadKind::kRoundSync: {
      out.sync = run_round_sync(spec);
      return out;
    }
  }
  return out;
}

MultihopSummary WorldFactory::run_multihop(const ScenarioSpec& spec) {
  // Not multihop workloads: refuse loudly -- an indistinguishable empty
  // summary would masquerade as a real run.  run_scenario routes these
  // correctly (consensus now executes over ANY topology via the unified
  // engine; round-sync sits below the round abstraction).
  if (spec.workload == WorkloadKind::kConsensus) {
    MultihopSummary out;
    out.error = std::string("workload consensus invalid for topology ") +
                to_string(spec.topology) +
                " (use run_scenario, which executes consensus over any "
                "topology through the unified RoundEngine)";
    return out;
  }
  if (spec.workload == WorkloadKind::kRoundSync) {
    MultihopSummary out;
    out.error =
        "workload round-sync has no multihop phase (use run_scenario; the "
        "synchronizer sits below the round abstraction)";
    return out;
  }
  return run_scenario(spec).mh;
}

}  // namespace ccd::exp
