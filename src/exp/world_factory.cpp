#include "exp/world_factory.hpp"

#include <algorithm>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/leader_election.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "consensus/naive_no_cd.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"
#include "util/bitcodec.hpp"
#include "util/rng.hpp"

namespace ccd::exp {

namespace {

// Per-component sub-seed streams.  Distinct salts keep the streams
// independent; hash_mix makes neighbouring run seeds uncorrelated.
constexpr std::uint64_t kCmSalt = 0x636d5f73656564ULL;      // "cm_seed"
constexpr std::uint64_t kCdSalt = 0x63645f73656564ULL;      // "cd_seed"
constexpr std::uint64_t kLossSalt = 0x6c6f73735f73ULL;      // "loss_s"
constexpr std::uint64_t kFaultSalt = 0x6661756c745fULL;     // "fault_"
constexpr std::uint64_t kInitSalt = 0x696e69745f73ULL;      // "init_s"

std::uint64_t sub_seed(const ScenarioSpec& spec, std::uint64_t salt) {
  return hash_mix(spec.seed ^ salt);
}

DetectorSpec detector_spec(const ScenarioSpec& spec) {
  const Round r_acc = std::max<Round>(spec.cst_target, 1);
  switch (spec.detector) {
    case DetectorKind::kAC: return DetectorSpec::AC();
    case DetectorKind::kMajAC: return DetectorSpec::MajAC();
    case DetectorKind::kHalfAC: return DetectorSpec::HalfAC();
    case DetectorKind::kZeroAC: return DetectorSpec::ZeroAC();
    case DetectorKind::kOAC: return DetectorSpec::OAC(r_acc);
    case DetectorKind::kMajOAC: return DetectorSpec::MajOAC(r_acc);
    case DetectorKind::kHalfOAC: return DetectorSpec::HalfOAC(r_acc);
    case DetectorKind::kZeroOAC: return DetectorSpec::ZeroOAC(r_acc);
    case DetectorKind::kNoCd: return DetectorSpec::NoCD();
    case DetectorKind::kNoAcc: return DetectorSpec::NoAcc();
  }
  return DetectorSpec::AC();
}

std::unique_ptr<AdvicePolicy> make_policy(const ScenarioSpec& spec) {
  const std::uint64_t seed = sub_seed(spec, kCdSalt);
  switch (spec.policy) {
    case PolicyKind::kTruthful:
      return make_truthful_policy();
    case PolicyKind::kPreferNull:
      return make_prefer_null_policy();
    case PolicyKind::kPreferCollision:
      return make_prefer_collision_policy();
    case PolicyKind::kSpurious:
      return std::make_unique<SpuriousPolicy>(
          spec.spurious_p, std::max<Round>(spec.cst_target, 1), seed);
    case PolicyKind::kFlakyMajority:
      return std::make_unique<FlakyMajorityPolicy>(spec.spurious_p, seed);
    case PolicyKind::kRandomLegal:
      return std::make_unique<RandomLegalPolicy>(seed);
  }
  return make_truthful_policy();
}

}  // namespace

std::unique_ptr<ConsensusAlgorithm> WorldFactory::make_algorithm(
    const ScenarioSpec& spec) {
  switch (spec.alg) {
    case AlgKind::kAlg1:
      return std::make_unique<Alg1Algorithm>();
    case AlgKind::kAlg2:
      return std::make_unique<Alg2Algorithm>(spec.num_values);
    case AlgKind::kAlg3:
      return std::make_unique<Alg3Algorithm>(spec.num_values);
    case AlgKind::kAlg4:
      return std::make_unique<Alg4Algorithm>(
          spec.num_values,
          /*id_space_size=*/std::max<std::uint64_t>(64, 2 * spec.n));
    case AlgKind::kNaive:
      return std::make_unique<NaiveNoCdAlgorithm>(
          /*patience=*/spec.cst_target + 8);
  }
  return std::make_unique<Alg1Algorithm>();
}

std::unique_ptr<ContentionManager> WorldFactory::make_cm(
    const ScenarioSpec& spec) {
  switch (spec.cm) {
    case CmKind::kNoCm:
      return std::make_unique<NoCm>();
    case CmKind::kWakeup: {
      WakeupService::Options ws;
      ws.r_wake = std::max<Round>(spec.cst_target, 1);
      ws.seed = sub_seed(spec, kCmSalt);
      if (spec.chaos == ChaosKind::kChaotic) {
        ws.pre = WakeupService::PreStabilization::kRandomSubset;
        ws.post = WakeupService::PostStabilization::kRotateAlive;
      }
      return std::make_unique<WakeupService>(ws);
    }
    case CmKind::kLeader: {
      LeaderElectionService::Options ls;
      ls.r_lead = std::max<Round>(spec.cst_target, 1);
      return std::make_unique<LeaderElectionService>(ls);
    }
    case CmKind::kBackoff: {
      BackoffCm::Options bo;
      bo.seed = sub_seed(spec, kCmSalt);
      return std::make_unique<BackoffCm>(bo);
    }
  }
  return std::make_unique<NoCm>();
}

std::unique_ptr<OracleDetector> WorldFactory::make_detector(
    const ScenarioSpec& spec) {
  return std::make_unique<OracleDetector>(detector_spec(spec),
                                          make_policy(spec));
}

std::unique_ptr<LossAdversary> WorldFactory::make_loss(
    const ScenarioSpec& spec) {
  const std::uint64_t seed = sub_seed(spec, kLossSalt);
  switch (spec.loss) {
    case LossKind::kNoLoss:
      return std::make_unique<NoLoss>();
    case LossKind::kEcf: {
      EcfAdversary::Options ecf;
      ecf.r_cf = std::max<Round>(spec.cst_target, 1);
      ecf.p_deliver = spec.p_deliver;
      ecf.seed = seed;
      if (spec.chaos == ChaosKind::kChaotic) {
        ecf.pre = EcfAdversary::PreMode::kCapture;
        ecf.contention = EcfAdversary::ContentionMode::kCapture;
      } else {
        ecf.pre = EcfAdversary::PreMode::kRandom;
        ecf.contention = EcfAdversary::ContentionMode::kDeliverAll;
      }
      return std::make_unique<EcfAdversary>(ecf);
    }
    case LossKind::kProbabilistic: {
      ProbabilisticLoss::Options opts;
      opts.p_deliver = spec.p_deliver;
      opts.r_cf = kNeverRound;
      opts.seed = seed;
      return std::make_unique<ProbabilisticLoss>(opts);
    }
    case LossKind::kUnrestricted: {
      UnrestrictedLoss::Options opts;
      opts.seed = seed;
      return std::make_unique<UnrestrictedLoss>(opts);
    }
  }
  return std::make_unique<NoLoss>();
}

std::unique_ptr<FailureAdversary> WorldFactory::make_fault(
    const ScenarioSpec& spec) {
  switch (spec.fault) {
    case FaultKind::kNone:
      return std::make_unique<NoFailures>();
    case FaultKind::kRandomCrash: {
      RandomCrash::Options opts;
      opts.p = spec.crash_p;
      opts.stop_after = spec.cst_target;
      // Never crash everyone: keep at least one survivor so termination
      // remains observable.
      opts.max_crashes = spec.n > 0 ? spec.n - 1 : 0;
      opts.seed = sub_seed(spec, kFaultSalt);
      return std::make_unique<RandomCrash>(opts);
    }
  }
  return std::make_unique<NoFailures>();
}

std::vector<Value> WorldFactory::make_initial_values(
    const ScenarioSpec& spec) {
  switch (spec.init) {
    case InitKind::kRandom:
      return random_initial_values(spec.n, spec.num_values,
                                   sub_seed(spec, kInitSalt));
    case InitKind::kSplit:
      return split_initial_values(spec.n, 0,
                                  spec.num_values > 1 ? spec.num_values - 1
                                                      : 0);
    case InitKind::kAllSame:
      return std::vector<Value>(spec.n,
                                spec.num_values > 1 ? spec.num_values - 1 : 0);
  }
  return std::vector<Value>(spec.n, 0);
}

Round WorldFactory::max_rounds(const ScenarioSpec& spec) {
  if (spec.max_rounds > 0) return spec.max_rounds;
  // Every upper bound in the paper is CST + O(lg|V|); Algorithm 3 needs
  // O(lg|V|) per crash on top.  A 40x slack absorbs chaotic pre-CST phases
  // and keeps never-terminating cells (NoCD, naive) cheap to simulate.
  const Round lg = ceil_log2(std::max<std::uint64_t>(spec.num_values, 2));
  return spec.cst_target + 100 + 40 * (lg + 1);
}

World WorldFactory::make(const ScenarioSpec& spec) {
  auto algorithm = make_algorithm(spec);
  return ccd::make_world(*algorithm, make_initial_values(spec), make_cm(spec),
                         make_detector(spec), make_loss(spec),
                         make_fault(spec));
}

}  // namespace ccd::exp
