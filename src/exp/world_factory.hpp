// WorldFactory: materialize a World (Definition 10's "system") from a
// ScenarioSpec.  This is the single place where algorithm / detector /
// contention-manager / adversary objects are constructed for experiments;
// the benches and examples used to each hand-roll this wiring.
//
// Determinism contract: everything stochastic in the produced World derives
// from spec.seed through fixed per-component streams (hash_mix with
// distinct salts), so the same spec always yields the same execution --
// independent of which thread of a sweep builds and runs it.
#pragma once

#include <memory>

#include "exp/scenario_spec.hpp"
#include "model/process.hpp"
#include "sim/world.hpp"

namespace ccd::exp {

class WorldFactory {
 public:
  /// Build the full system for a spec.
  static World make(const ScenarioSpec& spec);

  /// The individual component factories, exposed so callers can assemble
  /// hybrid worlds (e.g. a bench substituting its own adversary).
  static std::unique_ptr<ConsensusAlgorithm> make_algorithm(
      const ScenarioSpec& spec);
  static std::unique_ptr<ContentionManager> make_cm(const ScenarioSpec& spec);
  static std::unique_ptr<OracleDetector> make_detector(
      const ScenarioSpec& spec);
  static std::unique_ptr<LossAdversary> make_loss(const ScenarioSpec& spec);
  static std::unique_ptr<FailureAdversary> make_fault(
      const ScenarioSpec& spec);
  static std::vector<Value> make_initial_values(const ScenarioSpec& spec);

  /// Round budget for a run: spec.max_rounds when set, otherwise a bound
  /// generous enough for every algorithm at this |V| and CST.
  static Round max_rounds(const ScenarioSpec& spec);
};

}  // namespace ccd::exp
