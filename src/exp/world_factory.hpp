// WorldFactory: materialize and execute a scenario (Definition 10's
// "system") from a ScenarioSpec.  This is the single place where algorithm
// / detector / contention-manager / adversary objects are constructed for
// experiments, and -- since the RoundEngine unification -- the single
// place where a spec is turned into an execution: run_scenario() maps
// every workload onto one topology-aware engine.
//
//   workload   topology    channel            scope     engine world
//   ---------  ----------  -----------------  --------  -------------------
//   consensus  singlehop   kMatrix (loss adv) kGlobal   clique(n), the
//                                                       paper's model proper
//   consensus  any other   kMatrix (loss adv) kLocal    the SAME loss/cm/
//                                                       detector/fault stack
//                                                       over the graph
//   flood/mis/ any         kCapture (link     kLocal    Section 1.1 radio
//   mis-then-              physics)                     physics per
//   consensus                                           neighborhood
//   round-sync (none)      --                 --        below the round
//                                                       abstraction: the
//                                                       RBS synchronizer
//
// Determinism contract: everything stochastic in a produced engine derives
// from spec.seed through ONE hash_mix(seed ^ salt) stream discipline with
// fixed per-component salts (cm/cd/loss/fault/init/topo/proc/link/phase2/
// sync), so the same spec always yields the same execution -- independent
// of which thread of a sweep builds and runs it, and identical across the
// single-hop and multihop branches.
#pragma once

#include <memory>
#include <optional>

#include "consensus/harness.hpp"
#include "engine/round_engine.hpp"
#include "exp/scenario_spec.hpp"
#include "model/process.hpp"
#include "sim/world.hpp"

namespace ccd::exp {

/// Result of one multihop workload run (flood / mis / mis-then-consensus,
/// plus topology-level metrics for consensus-over-a-graph runs).
struct MultihopSummary {
  bool ran = false;        ///< false for single-hop consensus records
  bool connected = false;
  std::uint32_t diameter = 0;  ///< hop diameter; valid iff connected
  Round rounds_executed = 0;   ///< multihop rounds (excludes phase 2)
  std::uint64_t broadcasts = 0;
  double messages_per_node = 0.0;

  // Crash-failure accounting (spec.fault over the multihop phase).
  std::uint64_t crashes_applied = 0;  ///< crashes the adversary landed
  std::size_t survivors = 0;          ///< processes alive at the end

  // Flood workload.  Coverage is conditioned on survivors: a message held
  // only by the dead does not count.
  std::size_t covered = 0;  ///< SURVIVING processes holding the message
  Round full_coverage_round = kNeverRound;  ///< all survivors covered

  // MIS workloads, conditioned on the surviving subgraph: heads are
  // surviving heads, independence is among survivors, and maximality asks
  // every surviving non-head for a surviving head neighbor.
  std::size_t mis_size = 0;
  Round mis_settle_round = kNeverRound;  ///< first round all survivors settled
  bool mis_independent = true;  ///< no two adjacent surviving heads
  bool mis_maximal = true;      ///< every survivor is a head or dominated

  /// mis-then-consensus only: the single-hop consensus phase among the
  /// SURVIVING clusterheads.
  std::optional<RunSummary> consensus;
  /// mis-then-consensus: true when zero heads survived the MIS phase, so
  /// phase 2 never ran (distinguishes a skipped phase from a real
  /// zero-round consensus).
  bool phase2_skipped = false;

  /// Non-empty when the spec could not be executed on the multihop path.
  std::string error;
};

/// Result of one round-sync workload run (the E13 substrate validation):
/// does the reference-broadcast synchronizer hold the round abstraction
/// together at this drift rate / beacon loss / round length?
struct SyncSummary {
  bool ran = false;
  double max_skew = 0.0;         ///< measured max pairwise skew (seconds)
  double skew_bound = 0.0;       ///< analytic bound (seconds)
  double round_agreement = 0.0;  ///< guarded round-number agreement fraction
  bool within_bound = false;     ///< max_skew <= skew_bound
};

struct RunScenarioOptions {
  /// Record per-process views (only observable through capture_log).
  bool record_views = false;
  /// Keep the full ExecutionLog(s) in the outcome -- the --rerun-cell
  /// trace-capture path.  Off for sweeps: the engine then skips round
  /// recording entirely on non-consensus workloads.
  bool capture_log = false;
};

/// The unified result of run_scenario: exactly one of the three groups is
/// primary, but mis-then-consensus fills both summary (its phase 2) and mh.
struct ScenarioOutcome {
  /// Engine telemetry tallies summed over every phase the scenario ran
  /// (mis-then-consensus: MIS phase + phase-2 consensus).  Deterministic
  /// per spec; round-sync (below the round abstraction) leaves it zero.
  /// Observation only -- nothing here feeds the Aggregator.
  obs::EngineCounters counters;
  /// Consensus verdict: the run itself for consensus workloads, phase 2
  /// for mis-then-consensus, default otherwise.
  RunSummary summary;
  /// Multihop metrics; mh.ran is false for single-hop consensus/round-sync.
  MultihopSummary mh;
  /// Round-sync metrics; sync.ran is false for every other workload.
  SyncSummary sync;
  /// capture_log only: the primary phase's full log (consensus / flood /
  /// mis / MIS phase of mis-then-consensus)...
  std::optional<ExecutionLog> log;
  /// ...and the phase-2 consensus log of mis-then-consensus.
  std::optional<ExecutionLog> phase2_log;
};

class WorldFactory {
 public:
  /// Build the full single-hop system for a spec.
  static World make(const ScenarioSpec& spec);

  /// The individual component factories, exposed so callers can assemble
  /// hybrid worlds (e.g. a bench substituting its own adversary).
  static std::unique_ptr<ConsensusAlgorithm> make_algorithm(
      const ScenarioSpec& spec);
  static std::unique_ptr<ContentionManager> make_cm(const ScenarioSpec& spec);
  static std::unique_ptr<OracleDetector> make_detector(
      const ScenarioSpec& spec);
  static std::unique_ptr<LossAdversary> make_loss(const ScenarioSpec& spec);
  static std::unique_ptr<FailureAdversary> make_fault(
      const ScenarioSpec& spec);
  static std::vector<Value> make_initial_values(const ScenarioSpec& spec);

  /// Round budget for a run: spec.max_rounds when set, otherwise a bound
  /// generous enough for every algorithm at this |V| and CST.
  static Round max_rounds(const ScenarioSpec& spec);

  // --- topology-aware path ------------------------------------------------

  /// Materialize the communication graph.  Deterministic in the spec: the
  /// random-geometric generator seeds from spec.seed, and retries derived
  /// seeds (bounded) until the graph is connected, so at the documented
  /// density floor (>= 2.0) sweeps never waste cells on unreachable nodes.
  static Topology make_topology(const ScenarioSpec& spec);

  /// Map the spec's loss adversary onto multihop link physics:
  ///   noloss       -> {1.0, 1.0}   perfect channel, capture always resolves
  ///   ecf          -> {0.95, 0.05} harsh capture-effect regime (E14)
  ///   prob         -> {p_deliver, p_deliver/2}
  ///   unrestricted -> {0.5, 0.0}   lossy, contention never resolves
  static MhLinkModel make_link(const ScenarioSpec& spec);

  /// Round budget for a multihop run: spec.max_rounds when set, else a
  /// bound linear in n (flood progress is Omega(diameter) <= n rounds).
  static Round multihop_max_rounds(const ScenarioSpec& spec);

  /// Per-process RNG base for multihop workload processes (flood / MIS):
  /// process i seeds from hash_mix(mh_proc_seed(spec) ^ i).
  static std::uint64_t mh_proc_seed(const ScenarioSpec& spec);

  /// The kCapture channel's link RNG stream seed for this spec.
  static std::uint64_t mh_link_seed(const ScenarioSpec& spec);

  /// The derived single-hop spec for mis-then-consensus phase 2 among k
  /// surviving clusterheads: same axes, n = k, the kPhase2Salt seed stream,
  /// and scheduled crash patterns dropped (their process ids name phase-1
  /// topology nodes, not head indices); random-crash carries over.
  static ScenarioSpec phase2_spec(const ScenarioSpec& spec, std::uint32_t k);

  /// Execute a spec, whatever its workload/topology, through the one
  /// RoundEngine path.  THE entry point; run_one and --rerun-cell both
  /// land here.
  static ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                                      const RunScenarioOptions& options = {});

  /// Legacy multihop entry point: run_scenario's mh slice.  Requires
  /// spec.workload to be a multihop workload (flood / mis /
  /// mis-then-consensus); consensus and round-sync yield a keyed error.
  static MultihopSummary run_multihop(const ScenarioSpec& spec);
};

}  // namespace ccd::exp
