// WorldFactory: materialize a World (Definition 10's "system") from a
// ScenarioSpec.  This is the single place where algorithm / detector /
// contention-manager / adversary objects are constructed for experiments;
// the benches and examples used to each hand-roll this wiring.  Multihop
// specs (workload != consensus) are materialized into a Topology +
// MultihopExecutor instead and executed by run_multihop.
//
// Determinism contract: everything stochastic in the produced World derives
// from spec.seed through fixed per-component streams (hash_mix with
// distinct salts), so the same spec always yields the same execution --
// independent of which thread of a sweep builds and runs it.  The multihop
// path obeys the same contract: topology generation, the link model and
// every process RNG derive from spec.seed.
#pragma once

#include <memory>
#include <optional>

#include "consensus/harness.hpp"
#include "exp/scenario_spec.hpp"
#include "model/process.hpp"
#include "multihop/mh_executor.hpp"
#include "sim/world.hpp"

namespace ccd::exp {

/// Result of one multihop workload run (flood / mis / mis-then-consensus).
struct MultihopSummary {
  bool ran = false;        ///< false for consensus-workload records
  bool connected = false;
  std::uint32_t diameter = 0;  ///< hop diameter; valid iff connected
  Round rounds_executed = 0;   ///< multihop rounds (excludes phase 2)
  std::uint64_t broadcasts = 0;
  double messages_per_node = 0.0;

  // Crash-failure accounting (spec.fault over the multihop phase).
  std::uint64_t crashes_applied = 0;  ///< crashes the adversary landed
  std::size_t survivors = 0;          ///< processes alive at the end

  // Flood workload.  Coverage is conditioned on survivors: a message held
  // only by the dead does not count.
  std::size_t covered = 0;  ///< SURVIVING processes holding the message
  Round full_coverage_round = kNeverRound;  ///< all survivors covered

  // MIS workloads, conditioned on the surviving subgraph: heads are
  // surviving heads, independence is among survivors, and maximality asks
  // every surviving non-head for a surviving head neighbor.
  std::size_t mis_size = 0;
  Round mis_settle_round = kNeverRound;  ///< first round all survivors settled
  bool mis_independent = true;  ///< no two adjacent surviving heads
  bool mis_maximal = true;      ///< every survivor is a head or dominated

  /// mis-then-consensus only: the single-hop consensus phase among the
  /// SURVIVING clusterheads.
  std::optional<RunSummary> consensus;
  /// mis-then-consensus: true when zero heads survived the MIS phase, so
  /// phase 2 never ran (distinguishes a skipped phase from a real
  /// zero-round consensus).
  bool phase2_skipped = false;

  /// Non-empty when the spec could not be executed on the multihop path
  /// (e.g. workload consensus, which belongs to the single-hop World).
  std::string error;
};

class WorldFactory {
 public:
  /// Build the full system for a spec.
  static World make(const ScenarioSpec& spec);

  /// The individual component factories, exposed so callers can assemble
  /// hybrid worlds (e.g. a bench substituting its own adversary).
  static std::unique_ptr<ConsensusAlgorithm> make_algorithm(
      const ScenarioSpec& spec);
  static std::unique_ptr<ContentionManager> make_cm(const ScenarioSpec& spec);
  static std::unique_ptr<OracleDetector> make_detector(
      const ScenarioSpec& spec);
  static std::unique_ptr<LossAdversary> make_loss(const ScenarioSpec& spec);
  static std::unique_ptr<FailureAdversary> make_fault(
      const ScenarioSpec& spec);
  static std::vector<Value> make_initial_values(const ScenarioSpec& spec);

  /// Round budget for a run: spec.max_rounds when set, otherwise a bound
  /// generous enough for every algorithm at this |V| and CST.
  static Round max_rounds(const ScenarioSpec& spec);

  // --- multihop path ------------------------------------------------------

  /// Materialize the communication graph.  Deterministic in the spec: the
  /// random-geometric generator seeds from spec.seed, and retries derived
  /// seeds (bounded) until the graph is connected, so at the documented
  /// density floor (>= 2.0) sweeps never waste cells on unreachable nodes.
  static Topology make_topology(const ScenarioSpec& spec);

  /// Map the spec's loss adversary onto multihop link physics:
  ///   noloss       -> {1.0, 1.0}   perfect channel, capture always resolves
  ///   ecf          -> {0.95, 0.05} harsh capture-effect regime (E14)
  ///   prob         -> {p_deliver, p_deliver/2}
  ///   unrestricted -> {0.5, 0.0}   lossy, contention never resolves
  static MhLinkModel make_link(const ScenarioSpec& spec);

  /// Round budget for a multihop run: spec.max_rounds when set, else a
  /// bound linear in n (flood progress is Omega(diameter) <= n rounds).
  static Round multihop_max_rounds(const ScenarioSpec& spec);

  /// Execute the spec's multihop workload to completion (or budget).
  /// Requires spec.workload != kConsensus.
  static MultihopSummary run_multihop(const ScenarioSpec& spec);
};

}  // namespace ccd::exp
