// ScenarioSpec: a declarative, serializable description of ONE simulation
// run -- which algorithm, which detector class and advice policy, which
// contention manager, loss and failure adversaries, how many processes,
// which value space, where the stabilization point falls, and the run seed.
// Multihop runs additionally carry a topology kind (with a density knob for
// random-geometric graphs) and a workload selector.
//
// Specs are plain data: the cross-product machinery (SweepGrid) enumerates
// them, the WorldFactory materializes them into a World (single-hop) or a
// MultihopExecutor workload, and reports carry them as the row identity.
// Every spec round-trips through a flat JSON object so grids and results
// are self-describing on disk.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/failure_adversary.hpp"
#include "model/types.hpp"

namespace ccd::exp {

/// Which protocol a consensus run executes (Section 7's upper bounds plus
/// the no-detector foil the impossibility results rule out).
enum class AlgKind : std::uint8_t {
  kAlg1,   ///< Algorithm 1 (Section 7.1): constant rounds after CST with a
           ///< majority-complete detector (Theorem 1).
  kAlg2,   ///< Algorithm 2 (Section 7.2): O(lg|V|) rounds after CST with
           ///< any zero-complete detector (Theorem 2), matching Theorem 6.
  kAlg3,   ///< Algorithm 3 (Section 7.4): no eventual collision freedom;
           ///< O(lg|V|) rounds after failures cease (Theorem 3).
  kAlg4,   ///< The non-anonymous protocol of Section 7.3: unique IDs buy a
           ///< leader-based fast path on top of an embedded Algorithm 2.
  kNaive,  ///< Timeout-only no-CD foil: the protocol shape Theorems 4/5/8
           ///< prove cannot solve consensus; kept as the negative control.
};

/// The eight Figure 1 detector classes plus the special classes of
/// Section 5.3.  Completeness (rows) fixes which collisions MUST be
/// reported; accuracy (columns) fixes whether false reports are allowed,
/// eventually ("<>") or always.
enum class DetectorKind : std::uint8_t {
  kAC,       ///< AC (Figure 1): complete + accurate from round 1.
  kMajAC,    ///< maj-AC: majority-complete + accurate; the weakest class
             ///< supporting Algorithm 1's constant bound (Theorem 1).
  kHalfAC,   ///< half-AC: misses just under half the messages; the boundary
             ///< class Theorem 6's Omega(lg|V|) bound exploits.
  kZeroAC,   ///< 0-AC: zero-complete (only total loss need be reported) +
             ///< accurate; Algorithm 3's class (Theorem 3).
  kOAC,      ///< <>AC: complete, eventually accurate (false reports allowed
             ///< before CST).
  kMajOAC,   ///< maj-<>AC: Algorithm 1's class as stated (Theorem 1).
  kHalfOAC,  ///< half-<>AC: eventually-accurate half-completeness; subject
             ///< to the Theorem 6 lower bound.
  kZeroOAC,  ///< 0-<>AC: the weakest useful Figure 1 class; Algorithm 2
             ///< solves consensus in it (Theorem 2).
  kNoCd,     ///< NoCD (Section 5.3): the always-null detector; consensus is
             ///< impossible with it under message loss (Theorem 4).
  kNoAcc,    ///< No-accuracy detector (Section 5.3): complete but free to
             ///< lie forever; Theorem 5's impossibility class.
};

/// Behaviour INSIDE a detector-class envelope: where the class (DetectorKind)
/// bounds what advice is legal, the policy picks the actual advice.  The
/// policy ablation (bench_policy_ablation, "policies" grid) separates what
/// the class guarantees from what a particular detector happens to do.
enum class PolicyKind : std::uint8_t {
  kTruthful,         ///< report exactly the ground truth (the strongest
                     ///< member of every class).
  kPreferNull,       ///< stay silent whenever the envelope allows: the
                     ///< weakest-completeness member, the adversarial choice
                     ///< in the Theorem 6 construction.
  kPreferCollision,  ///< report +- whenever legal: maximal noise while
                     ///< keeping the class's accuracy promise.
  kSpurious,         ///< false positives with probability spurious_p before
                     ///< CST (legal in eventually-accurate classes only).
  kFlakyMajority,    ///< drop each report with probability spurious_p while
                     ///< staying majority-complete.
  kRandomLegal,      ///< uniform choice among the envelope-legal advices.
};

/// Contention manager (Section 4): the service that tells processes when to
/// be active; upper bounds assume a wake-up service (Section 4.1).
enum class CmKind : std::uint8_t {
  kNoCm,     ///< NOCM_P (Section 4.2): everyone always active.
  kWakeup,   ///< Wake-up service (Section 4.1): eventually exactly one
             ///< active process at a time.
  kLeader,   ///< Leader-election service (Section 4.2): eventually one
             ///< FIXED active process.
  kBackoff,  ///< Randomized-backoff implementation of a wake-up service
             ///< (the Section 1.3 practical realization).
};

/// Message-loss adversary (Section 3.2's environment channel).
enum class LossKind : std::uint8_t {
  kNoLoss,         ///< Perfect channel: the "no message loss" legs of the
                   ///< Theorem 4/8 alpha executions.
  kEcf,            ///< Eventual collision freedom (Property 1): lone
                   ///< broadcasts are delivered after round r_cf.
  kProbabilistic,  ///< iid delivery with probability p_deliver, no
                   ///< adversarial structure (the Section 1.1 empirics).
  kUnrestricted,   ///< No ECF ever (Sections 7.4, 8.4, 8.5): the channel
                   ///< Algorithm 3 must and Theorem 8 cannot beat.
};

/// Crash-failure adversary (Section 3.3).
enum class FaultKind : std::uint8_t {
  kNone,         ///< Failure-free runs.
  kRandomCrash,  ///< iid per-round crashes with probability crash_p up to
                 ///< CST, at least one survivor (Theorem 3's "failures
                 ///< eventually cease" regime).
  kScheduled,    ///< Deterministic ScheduledCrash driven by the spec's
                 ///< crash_schedule / crash_schedule_name (the worst-case
                 ///< shapes of Theorem 3, e.g. leaf-then-die).
};

/// Initial value assignment (the init_i(v) states of Definition 2).
enum class InitKind : std::uint8_t {
  kRandom,   ///< iid uniform over V.
  kSplit,    ///< Half low / half high: the divergent assignment the
             ///< lower-bound executions start from.
  kAllSame,  ///< Unanimous: exercises uniform validity (Section 6).
};

/// Pre-CST environment shaping.  kCalm is the friendly setting (maximal
/// contention advice, iid loss, all-deliver under contention); kChaotic is
/// the adversarial setting the theorem benches use (random wake subsets,
/// rotating post-CST activity, capture-effect loss).
enum class ChaosKind : std::uint8_t { kCalm, kChaotic };

/// Communication graph of a run (the multihop extension the paper's
/// conclusion announces).  kSingleHop is the paper's model proper -- a
/// clique driven by the Definition 11 executor; everything else runs on
/// the MultihopExecutor with per-neighbourhood collision detection.
enum class TopologyKind : std::uint8_t {
  kSingleHop,        ///< The paper's single-hop model (Section 3).
  kLine,             ///< Path graph: diameter n-1, the Omega(D) worst case
                     ///< of the Section 1.1 broadcast bounds.
  kRing,             ///< Cycle: diameter floor(n/2), no articulation point.
  kGrid,             ///< ceil(sqrt(n))-wide rectangular grid over exactly n
                     ///< nodes (partial last row).
  kRandomGeometric,  ///< Unit-disk graph: n uniform points, radius set by
                     ///< `density` (see ScenarioSpec::density).
};

/// What a run executes.  kConsensus is the paper's problem (Section 6) on
/// the single-hop World; the rest are the multihop sensor-network workloads
/// (Section 1.1's broadcast / local-coordination categories) the detector
/// taxonomy is exercised against beyond one hop.
enum class WorkloadKind : std::uint8_t {
  kConsensus,        ///< Consensus via WorldFactory::make + run_consensus.
                     ///< Requires topology == kSingleHop.
  kFlood,            ///< CD-assisted flooding from node 0 until full
                     ///< coverage (bench_multihop_broadcast's E14 shape).
  kMis,              ///< Clusterhead election as a maximal independent set
                     ///< (Luby-style, detector-certified independence).
  kMisThenConsensus, ///< The deployment story end to end: elect
                     ///< clusterheads on the topology, then run single-hop
                     ///< consensus among the heads.
  kRoundSync,        ///< Substrate validation (E13): the reference-broadcast
                     ///< round synchronizer that turns drifting clocks into
                     ///< the synchronized rounds every other workload
                     ///< presupposes (Section 1.3).  Below the round
                     ///< abstraction, so it ignores topology/detector/cm
                     ///< axes; knobs: n, p_deliver (beacon delivery),
                     ///< sync_rho, sync_round_length.
};

const char* to_string(CrashPoint p);  ///< "before-send" / "after-send"
std::optional<CrashPoint> parse_crash_point(const std::string& s);

const char* to_string(AlgKind k);
const char* to_string(DetectorKind k);
const char* to_string(PolicyKind k);
const char* to_string(CmKind k);
const char* to_string(LossKind k);
const char* to_string(FaultKind k);
const char* to_string(InitKind k);
const char* to_string(ChaosKind k);
const char* to_string(TopologyKind k);
const char* to_string(WorkloadKind k);

std::optional<AlgKind> parse_alg(const std::string& s);
std::optional<DetectorKind> parse_detector(const std::string& s);
std::optional<PolicyKind> parse_policy(const std::string& s);
std::optional<CmKind> parse_cm(const std::string& s);
std::optional<LossKind> parse_loss(const std::string& s);
std::optional<FaultKind> parse_fault(const std::string& s);
std::optional<InitKind> parse_init(const std::string& s);
std::optional<ChaosKind> parse_chaos(const std::string& s);
std::optional<TopologyKind> parse_topology(const std::string& s);
std::optional<WorkloadKind> parse_workload(const std::string& s);

struct ScenarioSpec {
  AlgKind alg = AlgKind::kAlg1;
  DetectorKind detector = DetectorKind::kMajOAC;
  PolicyKind policy = PolicyKind::kTruthful;
  CmKind cm = CmKind::kWakeup;
  LossKind loss = LossKind::kEcf;
  FaultKind fault = FaultKind::kNone;
  InitKind init = InitKind::kRandom;
  ChaosKind chaos = ChaosKind::kCalm;
  TopologyKind topology = TopologyKind::kSingleHop;
  WorkloadKind workload = WorkloadKind::kConsensus;

  std::uint32_t n = 8;             ///< process count
  std::uint64_t num_values = 16;   ///< |V|
  Round cst_target = 5;            ///< drives r_wake, r_cf and r_acc alike
  double p_deliver = 0.5;          ///< delivery probability knob
  double spurious_p = 0.4;         ///< false-positive rate (spurious/flaky)
  double crash_p = 0.02;           ///< per-round crash probability
  /// Random-geometric radius as a multiple of the connectivity-threshold
  /// area: radius = sqrt(density * ln(n) / (pi * n)).  density 1.0 is the
  /// asymptotic threshold; the factory retries derived seeds until the
  /// graph is connected, and >= 2.0 (the documented floor) makes retries
  /// rare.  Ignored by every other topology.
  double density = 2.5;
  /// Non-anonymous identifier-space size |I| for alg4 (Section 7.3 pays
  /// CST + O(min{lg|V|, lg|I|})); 0 derives the legacy default
  /// max(64, 2n).  Serialized only when nonzero, so pre-existing specs
  /// (and their cell keys) keep their exact bytes.
  std::uint64_t id_space = 0;
  /// Round-sync workload knobs (workload == kRoundSync): max hardware
  /// clock rate deviation rho and round length L in seconds.  Beacon loss
  /// is 1 - p_deliver; epoch, jitter and horizon are fixed at the E13
  /// bench constants (1s, 10us, 60s).  Serialized only at non-default
  /// values (same byte-stability contract as id_space).
  double sync_rho = 1e-4;
  double sync_round_length = 0.05;
  Round max_rounds = 0;            ///< 0 = derive from algorithm + cst
  std::uint64_t seed = 1;          ///< run seed; all component RNG streams
                                   ///< derive from it

  /// Explicit deterministic crash schedule (fault == kScheduled).
  /// Serialized as a "crash_schedule" JSON array of
  /// {"round":R,"process":P,"point":"before-send"|"after-send"} objects.
  std::vector<CrashEvent> crash_schedule;
  /// Named schedule generator (see crash_schedule_names()); when set it
  /// takes precedence over the explicit list and is expanded
  /// deterministically from this spec's n / num_values at factory time,
  /// so a cell stays reproducible from its JSON alone.
  std::string crash_schedule_name;

  /// Flat JSON object, stable key order; parse() inverts it exactly.
  std::string to_json() const;
  static std::optional<ScenarioSpec> from_json(const std::string& json);
  /// As above; on failure, if `error` is non-null it receives a one-line
  /// message naming the offending key and value (hand-written spec files
  /// should be debuggable from the message alone).
  static std::optional<ScenarioSpec> from_json(const std::string& json,
                                               std::string* error);

  /// Identity of the grid CELL this run belongs to: the spec with the seed
  /// normalized out.  Equal cell keys = same parameter combination.
  std::string cell_key() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Named worst-case crash-schedule generators, sweepable as a grid axis:
///   "leaf-then-die" -- Theorem 3's shape: each crasher participates for
///       one "lead everyone to a BST leaf" window (ceil(lg|V|)+1 rounds),
///       broadcasts once more, then dies (kAfterSend); processes n-1 down
///       to 1 crash in turn, process 0 survives.
///   "source-dies"   -- node 0 (the flood source) speaks in rounds 1-2 and
///       dies after its round-2 send: the adversarial broadcast opener.
///   "articulation-point" -- the partition worst case: materialize the
///       spec's topology and kill its most damaging cut vertex (the one
///       whose removal minimizes the largest surviving component; lowest id
///       on ties) after its round-2 send.  Expands to the empty schedule on
///       topologies without a cut vertex (ring, clique, dense rgg).
///   "all-cut-vertices" -- the multi-kill escalation: kill EVERY
///       articulation point after its round-2 send, shattering the graph
///       into its biconnected leaves at once (a line loses all interior
///       nodes).  Empty on 2-connected shapes, like articulation-point.
///   "min-vertex-cut" -- a minimum vertex cut (size up to 3, so size > 1
///       on 2-connected graphs: a ring loses two opposite-ish nodes, a
///       grid a column pair), all killed after their round-2 sends.  This
///       is the generator that stops 2-connected topologies from running
///       failure-free under the single-cut generators.  Empty on cliques
///       (no vertex cut at all).
std::vector<std::string> crash_schedule_names();

/// Expand a named generator against a spec's n / num_values; nullopt for
/// unknown names.  Deterministic: same (name, spec) -> same events.
std::optional<std::vector<CrashEvent>> generate_crash_schedule(
    const std::string& name, const ScenarioSpec& spec);

/// The schedule a kScheduled fault actually runs: the named generator when
/// crash_schedule_name is set, else the explicit crash_schedule list.
std::vector<CrashEvent> resolved_crash_schedule(const ScenarioSpec& spec);

}  // namespace ccd::exp
