// ScenarioSpec: a declarative, serializable description of ONE simulation
// run -- which algorithm, which detector class and advice policy, which
// contention manager, loss and failure adversaries, how many processes,
// which value space, where the stabilization point falls, and the run seed.
//
// Specs are plain data: the cross-product machinery (SweepGrid) enumerates
// them, the WorldFactory materializes them into a World, and reports carry
// them as the row identity.  Every spec round-trips through a flat JSON
// object so grids and results are self-describing on disk.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "model/types.hpp"

namespace ccd::exp {

enum class AlgKind : std::uint8_t { kAlg1, kAlg2, kAlg3, kAlg4, kNaive };

/// The eight Figure 1 classes plus the special classes (Section 5.3).
enum class DetectorKind : std::uint8_t {
  kAC, kMajAC, kHalfAC, kZeroAC,
  kOAC, kMajOAC, kHalfOAC, kZeroOAC,
  kNoCd, kNoAcc,
};

enum class PolicyKind : std::uint8_t {
  kTruthful, kPreferNull, kPreferCollision, kSpurious, kFlakyMajority,
  kRandomLegal,
};

enum class CmKind : std::uint8_t { kNoCm, kWakeup, kLeader, kBackoff };

enum class LossKind : std::uint8_t {
  kNoLoss, kEcf, kProbabilistic, kUnrestricted,
};

enum class FaultKind : std::uint8_t { kNone, kRandomCrash };

enum class InitKind : std::uint8_t { kRandom, kSplit, kAllSame };

/// Pre-CST environment shaping.  kCalm is the friendly setting (maximal
/// contention advice, iid loss, all-deliver under contention); kChaotic is
/// the adversarial setting the theorem benches use (random wake subsets,
/// rotating post-CST activity, capture-effect loss).
enum class ChaosKind : std::uint8_t { kCalm, kChaotic };

const char* to_string(AlgKind k);
const char* to_string(DetectorKind k);
const char* to_string(PolicyKind k);
const char* to_string(CmKind k);
const char* to_string(LossKind k);
const char* to_string(FaultKind k);
const char* to_string(InitKind k);
const char* to_string(ChaosKind k);

std::optional<AlgKind> parse_alg(const std::string& s);
std::optional<DetectorKind> parse_detector(const std::string& s);
std::optional<PolicyKind> parse_policy(const std::string& s);
std::optional<CmKind> parse_cm(const std::string& s);
std::optional<LossKind> parse_loss(const std::string& s);
std::optional<FaultKind> parse_fault(const std::string& s);
std::optional<InitKind> parse_init(const std::string& s);
std::optional<ChaosKind> parse_chaos(const std::string& s);

struct ScenarioSpec {
  AlgKind alg = AlgKind::kAlg1;
  DetectorKind detector = DetectorKind::kMajOAC;
  PolicyKind policy = PolicyKind::kTruthful;
  CmKind cm = CmKind::kWakeup;
  LossKind loss = LossKind::kEcf;
  FaultKind fault = FaultKind::kNone;
  InitKind init = InitKind::kRandom;
  ChaosKind chaos = ChaosKind::kCalm;

  std::uint32_t n = 8;             ///< process count
  std::uint64_t num_values = 16;   ///< |V|
  Round cst_target = 5;            ///< drives r_wake, r_cf and r_acc alike
  double p_deliver = 0.5;          ///< delivery probability knob
  double spurious_p = 0.4;         ///< false-positive rate (spurious/flaky)
  double crash_p = 0.02;           ///< per-round crash probability
  Round max_rounds = 0;            ///< 0 = derive from algorithm + cst
  std::uint64_t seed = 1;          ///< run seed; all component RNG streams
                                   ///< derive from it

  /// Flat JSON object, stable key order; parse() inverts it exactly.
  std::string to_json() const;
  static std::optional<ScenarioSpec> from_json(const std::string& json);

  /// Identity of the grid CELL this run belongs to: the spec with the seed
  /// normalized out.  Equal cell keys = same parameter combination.
  std::string cell_key() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

}  // namespace ccd::exp
