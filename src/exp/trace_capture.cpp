#include "exp/trace_capture.hpp"

#include "util/flat_json.hpp"

namespace ccd::exp {

namespace {

void append_u32_array(std::string& out,
                      const std::vector<std::uint32_t>& xs) {
  out += "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(xs[i]);
  }
  out += "]";
}

std::string advice_string(const std::vector<CdAdvice>& advice) {
  std::string s;
  s.reserve(advice.size());
  for (CdAdvice a : advice) s += a == CdAdvice::kCollision ? '+' : '.';
  return s;
}

std::string advice_string(const std::vector<CmAdvice>& advice) {
  std::string s;
  s.reserve(advice.size());
  for (CmAdvice a : advice) s += a == CmAdvice::kActive ? 'A' : '.';
  return s;
}

}  // namespace

std::string execution_log_to_json(const ExecutionLog& log) {
  std::string out = "{";
  out += "\"num_processes\":" + std::to_string(log.num_processes());
  out += ",\"num_rounds\":" + std::to_string(log.num_rounds());
  out += ",\"views_recorded\":";
  out += log.views_recorded() ? "true" : "false";

  out += ",\"decisions\":[";
  for (std::size_t i = 0; i < log.decisions().size(); ++i) {
    const DecisionRecord& d = log.decisions()[i];
    if (i > 0) out += ",";
    out += "{\"process\":" + std::to_string(d.process);
    out += ",\"round\":" + std::to_string(d.round);
    out += ",\"value\":" + std::to_string(d.value) + "}";
  }
  out += "],\"crashes\":[";
  for (std::size_t i = 0; i < log.crashes().size(); ++i) {
    const CrashRecord& c = log.crashes()[i];
    if (i > 0) out += ",";
    out += "{\"process\":" + std::to_string(c.process);
    out += ",\"round\":" + std::to_string(c.round) + "}";
  }
  out += "]";

  if (log.views_recorded()) {
    out += ",\"initial_values\":[";
    for (std::size_t i = 0; i < log.num_processes(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(log.view(static_cast<ProcessId>(i)).initial_value);
    }
    out += "]";
  }

  out += ",\"rounds\":[";
  for (Round r = 1; r <= log.num_rounds(); ++r) {
    const TransmissionRound& tr = log.transmission().at(r);
    if (r > 1) out += ",";
    out += "{\"round\":" + std::to_string(r);
    out += ",\"broadcasters\":" + std::to_string(tr.broadcaster_count);
    out += ",\"receive_counts\":";
    append_u32_array(out, tr.receive_count);
    out += ",\"cd\":" + jsonu::quote(advice_string(log.cd_trace().at(r)));
    out += ",\"cm\":" + jsonu::quote(advice_string(log.cm_trace().at(r)));
    if (log.views_recorded()) {
      out += ",\"views\":[";
      for (std::size_t i = 0; i < log.num_processes(); ++i) {
        const RoundView& v =
            log.view(static_cast<ProcessId>(i)).rounds.at(r - 1);
        if (i > 0) out += ",";
        out += "{\"sent\":";
        out += v.sent ? jsonu::quote(to_string(*v.sent)) : "null";
        out += ",\"received\":[";
        for (std::size_t m = 0; m < v.received.size(); ++m) {
          if (m > 0) out += ",";
          out += jsonu::quote(to_string(v.received[m]));
        }
        out += "],\"crashed\":";
        out += v.crashed ? "true" : "false";
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<TracedRun> rerun_cell(const SweepGrid& grid,
                                  std::size_t cell_index) {
  std::vector<TracedRun> runs;
  runs.reserve(grid.seeds_per_cell);
  RunScenarioOptions options;
  options.record_views = true;
  options.capture_log = true;
  for (std::uint32_t s = 0; s < grid.seeds_per_cell; ++s) {
    TracedRun traced;
    traced.run_index = cell_index * grid.seeds_per_cell + s;
    traced.spec = grid.spec_for_run(traced.run_index);
    ScenarioOutcome outcome = WorldFactory::run_scenario(traced.spec, options);
    traced.summary = std::move(outcome.summary);
    traced.mh = std::move(outcome.mh);
    traced.sync = outcome.sync;
    traced.log = std::move(outcome.log);
    traced.phase2_log = std::move(outcome.phase2_log);
    runs.push_back(std::move(traced));
  }
  return runs;
}

std::string traced_runs_to_json(const SweepGrid& grid, std::size_t cell_index,
                                const std::vector<TracedRun>& runs) {
  std::string out = "{\"format\":\"ccd-cell-trace-v1\"";
  out += ",\"cell\":" + std::to_string(cell_index);
  out += ",\"spec\":" + grid.spec_for_cell(cell_index).to_json();
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TracedRun& run = runs[i];
    if (i > 0) out += ",";
    out += "{\"run_index\":" + std::to_string(run.run_index);
    out += ",\"seed\":" + std::to_string(run.spec.seed);
    const ConsensusVerdict& v = run.summary.verdict;
    out += ",\"solved\":";
    out += v.solved() ? "true" : "false";
    out += ",\"rounds_executed\":" +
           std::to_string(run.summary.result.rounds_executed);
    if (run.mh.ran) {
      out += ",\"mh_rounds\":" + std::to_string(run.mh.rounds_executed);
      out += ",\"survivors\":" + std::to_string(run.mh.survivors);
    }
    if (run.sync.ran) {
      out += ",\"sync_skew_us\":" +
             jsonu::format_double(run.sync.max_skew * 1e6);
      out += ",\"sync_agreement\":" +
             jsonu::format_double(run.sync.round_agreement);
    }
    if (run.log) {
      out += ",\"log\":" + execution_log_to_json(*run.log);
    }
    if (run.phase2_log) {
      out += ",\"phase2_log\":" + execution_log_to_json(*run.phase2_log);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ccd::exp
