#include "exp/sweep_runner.hpp"

#include <thread>

#include "exp/world_factory.hpp"

namespace ccd::exp {

RunRecord run_one(const SweepGrid& grid, std::size_t run_index,
                  bool record_views) {
  RunRecord record;
  record.run_index = run_index;
  record.cell_index = grid.cell_of_run(run_index);
  record.spec = grid.spec_for_run(run_index);
  RunScenarioOptions options;
  options.record_views = record_views;
  ScenarioOutcome outcome =
      WorldFactory::run_scenario(record.spec, options);
  record.summary = std::move(outcome.summary);
  record.mh = std::move(outcome.mh);
  record.sync = outcome.sync;
  return record;
}

namespace {

/// Shared pool core: workers claim slot j and execute run index_of(j).
/// Results land in the slot owned by j, so the returned vector's order is
/// the caller's index order regardless of scheduling.
template <typename IndexOf>
std::vector<RunRecord> run_pool(const SweepGrid& grid, std::size_t total,
                                const SweepOptions& options,
                                IndexOf index_of) {
  std::vector<RunRecord> records(total);
  if (total == 0) return records;

  unsigned threads = options.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, total));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  auto worker = [&] {
    while (true) {
      const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
      if (j >= total) return;
      records[j] = run_one(grid, index_of(j), options.record_views);
      if (options.on_record) options.on_record(records[j]);
      const std::size_t finished =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.progress) options.progress(finished, total);
    }
  };

  if (threads == 1) {
    worker();
    return records;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return records;
}

}  // namespace

std::vector<RunRecord> run_sweep(const SweepGrid& grid,
                                 const SweepOptions& options) {
  return run_pool(grid, grid.num_runs(), options,
                  [](std::size_t j) { return j; });
}

std::vector<RunRecord> run_subset(const SweepGrid& grid,
                                  const std::vector<std::size_t>& run_indices,
                                  const SweepOptions& options) {
  return run_pool(grid, run_indices.size(), options,
                  [&](std::size_t j) { return run_indices[j]; });
}

}  // namespace ccd::exp
