#include "exp/sweep_runner.hpp"

#include <algorithm>
#include <thread>

#include "engine/lane_engine.hpp"
#include "exp/lane_executor.hpp"
#include "exp/world_factory.hpp"
#include "obs/telemetry.hpp"

namespace ccd::exp {

RunRecord run_one(const SweepGrid& grid, std::size_t run_index,
                  bool record_views) {
  RunRecord record;
  record.run_index = run_index;
  record.cell_index = grid.cell_of_run(run_index);
  record.spec = grid.spec_for_run(run_index);
  RunScenarioOptions options;
  options.record_views = record_views;
  obs::RunTimer timer;
  ScenarioOutcome outcome =
      WorldFactory::run_scenario(record.spec, options);
  record.perf.wall_ns = timer.elapsed_ns();
  record.perf.engine = outcome.counters;
  record.summary = std::move(outcome.summary);
  record.mh = std::move(outcome.mh);
  record.sync = outcome.sync;
  return record;
}

namespace {

/// Shared pool core: workers claim BLOCKS of slots and execute run
/// index_of(j) for each slot j in the block.  Results land in the slot
/// owned by j, so the returned vector's order is the caller's index order
/// regardless of scheduling.
///
/// With options.lanes, a block is a maximal run of consecutive slots whose
/// GLOBAL run indices are consecutive within one lane-eligible cell (up to
/// kLaneWidth of them) -- those execute in lockstep through the
/// LaneExecutor.  Everything else (ineligible specs, strided shard index
/// sets, the S mod 64 cell remainder when it lands alone) is a 1-run block
/// on the scalar run_one path.  The partition only affects scheduling
/// granularity; record CONTENT is byte-identical either way.
template <typename IndexOf>
std::vector<RunRecord> run_pool(const SweepGrid& grid, std::size_t total,
                                const SweepOptions& options,
                                IndexOf index_of) {
  std::vector<RunRecord> records(total);
  if (total == 0) {
    if (options.perf) *options.perf = obs::SweepPerf{};
    return records;
  }

  RunScenarioOptions scenario_options;
  scenario_options.record_views = options.record_views;

  struct Block {
    std::size_t first = 0;
    std::size_t count = 1;
  };
  std::vector<Block> blocks;
  blocks.reserve(options.lanes ? total / kLaneWidth + 1 : total);
  for (std::size_t j = 0; j < total;) {
    const std::size_t idx = index_of(j);
    std::size_t count = 1;
    if (options.lanes &&
        LaneExecutor::eligible(grid.spec_for_run(idx), scenario_options)) {
      const std::size_t cell = grid.cell_of_run(idx);
      while (count < kLaneWidth && j + count < total &&
             index_of(j + count) == idx + count &&
             grid.cell_of_run(idx + count) == cell) {
        ++count;
      }
    }
    blocks.push_back({j, count});
    j += count;
  }

  unsigned threads = options.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, blocks.size()));

  // One epoch for the whole pool; spans and finish times are offsets into
  // it, so a Chrome trace of the spans lines workers up on a shared axis.
  obs::RunTimer epoch;
  if (options.perf) {
    *options.perf = obs::SweepPerf{};
    options.perf->spans.resize(total);
  }
  std::vector<std::uint64_t> worker_finish(threads, 0);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  auto worker = [&](unsigned worker_id) {
    obs::Telemetry::Sink& sink = obs::Telemetry::thread_sink();
    while (true) {
      const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks.size()) break;
      const Block& blk = blocks[b];
      const std::uint64_t start_ns =
          options.perf ? epoch.elapsed_ns() : 0;
      if (blk.count == 1) {
        records[blk.first] =
            run_one(grid, index_of(blk.first), options.record_views);
      } else {
        std::vector<ScenarioSpec> specs(blk.count);
        for (std::size_t k = 0; k < blk.count; ++k) {
          RunRecord& rec = records[blk.first + k];
          rec.run_index = index_of(blk.first + k);
          rec.cell_index = grid.cell_of_run(rec.run_index);
          rec.spec = grid.spec_for_run(rec.run_index);
          specs[k] = rec.spec;
        }
        obs::RunTimer timer;
        std::vector<ScenarioOutcome> outcomes =
            LaneExecutor::run_block(specs, scenario_options);
        // Per-run wall time is observational only (sidecar percentiles);
        // the honest per-run figure for a lockstep block is the amortized
        // cost.
        const std::uint64_t wall_each = timer.elapsed_ns() / blk.count;
        for (std::size_t k = 0; k < blk.count; ++k) {
          RunRecord& rec = records[blk.first + k];
          rec.summary = std::move(outcomes[k].summary);
          rec.mh = std::move(outcomes[k].mh);
          rec.sync = outcomes[k].sync;
          rec.perf.engine = outcomes[k].counters;
          rec.perf.wall_ns = wall_each;
        }
      }
      const std::uint64_t end_ns = options.perf ? epoch.elapsed_ns() : 0;
      for (std::size_t k = 0; k < blk.count; ++k) {
        RunRecord& rec = records[blk.first + k];
        rec.perf.worker = worker_id;
        sink.add_engine(rec.perf.engine);
        sink.add(obs::Counter::kRunsExecuted, 1);
        if (options.perf) {
          obs::RunSpan& span = options.perf->spans[blk.first + k];
          span.run_index = rec.run_index;
          span.cell_index = rec.cell_index;
          span.worker = worker_id;
          span.start_ns = start_ns;
          span.end_ns = end_ns;
        }
        if (options.on_record) options.on_record(rec);
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.progress) options.progress(finished, total);
      }
    }
    worker_finish[worker_id] = epoch.elapsed_ns();
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  if (options.perf) {
    obs::SweepPerf& perf = *options.perf;
    perf.wall_ns = epoch.elapsed_ns();
    perf.threads = threads;
    perf.runs = total;
    const std::uint64_t earliest =
        *std::min_element(worker_finish.begin(), worker_finish.end());
    perf.drain_ns = perf.wall_ns > earliest ? perf.wall_ns - earliest : 0;
    // Slot order makes the counter sum independent of scheduling; the
    // totals equal any shard partition's totals summed (they are a pure
    // function of the specs executed).
    for (const RunRecord& record : records)
      perf.counters.add(record.perf.engine);
  }
  return records;
}

}  // namespace

std::vector<RunRecord> run_sweep(const SweepGrid& grid,
                                 const SweepOptions& options) {
  return run_pool(grid, grid.num_runs(), options,
                  [](std::size_t j) { return j; });
}

std::vector<RunRecord> run_subset(const SweepGrid& grid,
                                  const std::vector<std::size_t>& run_indices,
                                  const SweepOptions& options) {
  return run_pool(grid, run_indices.size(), options,
                  [&](std::size_t j) { return run_indices[j]; });
}

}  // namespace ccd::exp
