#include "exp/sweep_runner.hpp"

#include <thread>

#include "exp/world_factory.hpp"

namespace ccd::exp {

RunRecord run_one(const SweepGrid& grid, std::size_t run_index,
                  bool record_views) {
  RunRecord record;
  record.run_index = run_index;
  record.cell_index = grid.cell_of_run(run_index);
  record.spec = grid.spec_for_run(run_index);
  if (record.spec.workload == WorkloadKind::kConsensus) {
    ExecutorOptions options;
    options.record_views = record_views;
    record.summary = run_consensus(WorldFactory::make(record.spec),
                                   WorldFactory::max_rounds(record.spec),
                                   options);
  } else {
    record.mh = WorldFactory::run_multihop(record.spec);
    if (record.mh.consensus) record.summary = *record.mh.consensus;
  }
  return record;
}

std::vector<RunRecord> run_sweep(const SweepGrid& grid,
                                 const SweepOptions& options) {
  const std::size_t total = grid.num_runs();
  std::vector<RunRecord> records(total);
  if (total == 0) return records;

  unsigned threads = options.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, total));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      records[i] = run_one(grid, i, options.record_views);
      const std::size_t finished =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.progress) options.progress(finished, total);
    }
  };

  if (threads == 1) {
    worker();
    return records;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return records;
}

}  // namespace ccd::exp
