// SweepRunner: execute every run of a SweepGrid across a pool of worker
// threads.
//
// Scheduling is a shared atomic work counter (each worker claims the next
// unclaimed run index), which is work-stealing in effect: fast runs drain
// more indices, a slow cell never stalls the pool.  Determinism does not
// depend on scheduling at all -- each run's World derives every RNG stream
// from hash(grid_seed, run_index), and results land in a pre-sized vector
// slot owned by the run index -- so the full result vector is bit-identical
// at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "consensus/harness.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/world_factory.hpp"
#include "obs/perf_sidecar.hpp"
#include "obs/telemetry.hpp"

namespace ccd::exp {

/// Telemetry measured ABOUT a run -- engine tallies and wall time.  Pure
/// observation: nothing here reaches the Aggregator or any report writer,
/// so report bytes are identical whether or not anyone reads it.
struct RunPerf {
  obs::EngineCounters engine;  ///< deterministic per spec
  std::uint64_t wall_ns = 0;   ///< run_one wall time (steady clock)
  std::uint32_t worker = 0;    ///< pool worker that executed the run
};

struct RunRecord {
  std::size_t run_index = 0;
  std::size_t cell_index = 0;
  ScenarioSpec spec;
  /// Consensus verdict.  Populated for consensus workloads and for the
  /// phase-2 consensus of mis-then-consensus; default otherwise.
  RunSummary summary;
  /// Multihop metrics; mh.ran is false for single-hop consensus and
  /// round-sync workloads.
  MultihopSummary mh;
  /// Round-sync metrics; sync.ran is false for every other workload.
  SyncSummary sync;
  /// Observation sidecar for this run; excluded from all report bytes.
  RunPerf perf;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 1;
  /// Skip per-round view recording (the checker only needs decisions and
  /// crashes); large sweeps run several times faster without views.
  bool record_views = false;
  /// Batch eligible runs through the 64-wide LaneEngine: workers claim
  /// BLOCKS of consecutive run indices within one cell (up to 64 seeds in
  /// lockstep) instead of single runs.  Records are byte-identical either
  /// way -- LaneExecutor::run_block reproduces run_one's outcome exactly
  /// per lane -- so this is purely a throughput switch (`--no-lanes` in
  /// ccd_sweep is the escape hatch).  Ineligible specs (random-geometric
  /// topologies, round-sync, n = 0, view recording) and non-consecutive
  /// index sets (strided shards) degrade to 1-run blocks on the scalar
  /// path.
  bool lanes = true;
  /// Invoked after each completed run with the number finished so far.
  /// Called from worker threads; must be thread-safe.  May be empty.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Invoked after each completed run with its record, before `progress`.
  /// Called from worker threads; must be thread-safe.  May be empty.  The
  /// shard runner uses this for per-cell checkpoint markers.
  std::function<void(const RunRecord& record)> on_record;
  /// When non-null, the pool fills it with per-run spans (slot order),
  /// per-worker finish times, wall/drain time, and summed engine counters.
  /// Null keeps the pool free of span bookkeeping.  Never read by any
  /// report writer -- reports are byte-identical either way.
  obs::SweepPerf* perf = nullptr;
};

/// Run the whole grid; returns one record per run, ordered by run_index.
std::vector<RunRecord> run_sweep(const SweepGrid& grid,
                                 const SweepOptions& options = {});

/// Run an explicit subset of the grid's run indices (the shard worker
/// path).  Records are returned in the order of `run_indices`; each run is
/// seeded by its GLOBAL run index, so a shard executes bit-identically to
/// the same indices inside a full-grid run.
std::vector<RunRecord> run_subset(const SweepGrid& grid,
                                  const std::vector<std::size_t>& run_indices,
                                  const SweepOptions& options = {});

/// Execute a single run of the grid (what each worker does per index).
RunRecord run_one(const SweepGrid& grid, std::size_t run_index,
                  bool record_views = false);

}  // namespace ccd::exp
