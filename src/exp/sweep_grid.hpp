// SweepGrid: a declarative cross-product of scenario axes.
//
// A grid is a base ScenarioSpec plus one vector per sweepable axis; an
// empty axis means "keep the base value".  Cells are enumerated in a fixed
// mixed-radix order, each cell is run `seeds_per_cell` times, and every
// run's seed derives deterministically from (grid_seed, run_index) -- so a
// grid is a pure function from index to execution, independent of how the
// runs are scheduled across threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario_spec.hpp"

namespace ccd::exp {

struct SweepGrid {
  /// Non-axis fields (init kind, chaos, probabilities, max_rounds) are
  /// taken from here for every cell.
  ScenarioSpec base;

  std::vector<AlgKind> algs;
  std::vector<DetectorKind> detectors;
  std::vector<PolicyKind> policies;
  std::vector<CmKind> cms;
  std::vector<LossKind> losses;
  std::vector<FaultKind> faults;
  std::vector<std::uint32_t> ns;
  std::vector<std::uint64_t> value_spaces;
  std::vector<Round> csts;
  std::vector<TopologyKind> topologies;
  /// RGG density axis; inert for non-rgg topology cells (the cells are
  /// still enumerated, so keep this axis short unless sweeping rgg only).
  std::vector<double> densities;
  std::vector<WorkloadKind> workloads;
  /// Named crash-schedule generators (see crash_schedule_names()), applied
  /// to ScenarioSpec::crash_schedule_name; only cells whose fault is
  /// `scheduled` act on it (inert otherwise, like densities for non-rgg).
  std::vector<std::string> crash_schedules;

  std::uint32_t seeds_per_cell = 1;
  std::uint64_t grid_seed = 1;

  std::size_t num_cells() const;
  std::size_t num_runs() const { return num_cells() * seeds_per_cell; }

  /// The fully materialized spec for one run (run_index < num_runs()).
  ScenarioSpec spec_for_run(std::size_t run_index) const;

  /// The spec for a cell with the seed left at 0 (the cell identity).
  ScenarioSpec spec_for_cell(std::size_t cell_index) const;

  std::size_t cell_of_run(std::size_t run_index) const {
    return run_index / seeds_per_cell;
  }

  /// Deterministic per-run seed: hash(grid_seed, run_index).
  std::uint64_t seed_for_run(std::size_t run_index) const;

  /// Structural sanity: nullopt if the grid is well-formed, else a
  /// human-readable reason.  Catches the silent footguns: a `scheduled`
  /// fault cell with no schedule to run, and unknown crash-schedule
  /// generator names.  (Consensus x non-singlehop topology, rejected here
  /// before the RoundEngine unification, is now a first-class cell.)
  std::optional<std::string> validate() const;

  /// Built-in grids: "smoke" (fast sanity), "default" (the broad
  /// alg x detector x cm x loss robustness product, 150 cells),
  /// "policies" (detector-behaviour ablation), "crash" (failure sweep),
  /// "multihop" (workload x topology x density x loss x n over the
  /// capture-channel engine), "mhloss" (consensus with loss/cm axes over
  /// non-clique topologies -- the unified-engine composition).
  static std::optional<SweepGrid> named(const std::string& name);
  static std::vector<std::string> grid_names();

  /// Canonical self-describing JSON: the base spec plus every axis (empty
  /// axes included), seeds_per_cell and grid_seed, in a fixed key order.
  /// from_json inverts it exactly; shard specs and shard reports embed this
  /// so a shard file is runnable and mergeable on its own.
  std::string to_json() const;
  static std::optional<SweepGrid> from_json(const std::string& json,
                                            std::string* error = nullptr);

  /// FNV-1a over the canonical JSON: the shard-compatibility fingerprint.
  /// Two shard artifacts recombine only if their fingerprints agree --
  /// any change to an axis, the base spec, the seed discipline or the
  /// serialization itself makes stale shards unmergeable by construction.
  std::uint64_t fingerprint() const;

  friend bool operator==(const SweepGrid&, const SweepGrid&) = default;
};

}  // namespace ccd::exp
