// Aggregator: reduce per-run RunSummaries into per-cell statistics and
// render them as JSON, CSV, or an ASCII summary table.
//
// Aggregation is a serial fold over records in run-index order, so its
// output is a pure function of the grid and grid seed: byte-identical no
// matter how many threads produced the records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep_runner.hpp"
#include "util/stats.hpp"

namespace ccd::exp {

struct CellAggregate {
  std::size_t cell_index = 0;
  ScenarioSpec spec;  ///< cell identity (seed = 0)

  std::size_t runs = 0;
  std::size_t solved = 0;  ///< verdict.solved(): safe + live
  std::size_t agreement_failures = 0;
  std::size_t validity_failures = 0;   ///< strong or uniform validity broken
  std::size_t termination_failures = 0;
  std::size_t crashed_processes = 0;   ///< total over runs

  Stats decision_round;    ///< last decision round, solved runs only
  Stats rounds_after_cst;  ///< solved runs in worlds with a finite CST
  Stats rounds_executed;   ///< all runs
};

std::vector<CellAggregate> aggregate(const SweepGrid& grid,
                                     const std::vector<RunRecord>& records);

/// Deterministic JSON report: grid metadata + one object per cell.
std::string aggregates_to_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells);

/// Flat CSV, one row per cell; header first.
std::string aggregates_to_csv(const std::vector<CellAggregate>& cells);

/// Human-oriented summary (AsciiTable) of the worst cells plus totals.
void print_summary(std::ostream& os, const SweepGrid& grid,
                   const std::vector<CellAggregate>& cells);

}  // namespace ccd::exp
