// Aggregator: reduce per-run RunSummaries into per-cell statistics and
// render them as JSON, CSV, or an ASCII summary table.
//
// Aggregation is a serial fold over records in run-index order, so its
// output is a pure function of the grid and grid seed: byte-identical no
// matter how many threads produced the records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep_runner.hpp"
#include "util/stats.hpp"

namespace ccd::exp {

struct CellAggregate {
  std::size_t cell_index = 0;
  ScenarioSpec spec;  ///< cell identity (seed = 0)

  std::size_t runs = 0;
  std::size_t solved = 0;  ///< verdict.solved(): safe + live
  std::size_t agreement_failures = 0;
  std::size_t validity_failures = 0;   ///< strong or uniform validity broken
  std::size_t termination_failures = 0;
  std::size_t crashed_processes = 0;   ///< total over runs

  Stats decision_round;    ///< last decision round, solved runs only
  Stats rounds_after_cst;  ///< solved runs in worlds with a finite CST
  Stats rounds_executed;   ///< all runs

  // Multihop workloads (flood / mis / mis-then-consensus).  The consensus
  // counters above stay zero for flood/mis cells; mis-then-consensus cells
  // populate BOTH groups (phase 2 is a real consensus run among the heads).
  std::size_t mh_runs = 0;         ///< records with a multihop phase
  std::size_t disconnected = 0;    ///< topology not connected (rgg only)
  std::size_t full_coverage = 0;   ///< flood runs covering every survivor
  std::size_t mis_violations = 0;  ///< independence or maximality broken

  // Crash metrics over the multihop phase (spec.fault != none).  Coverage
  // and MIS statistics above are already conditioned on survivors.
  // Genuinely real-valued metrics (fractions, ratios, microseconds) opt
  // into raw-sample retention; everything else is integer-valued and uses
  // the default sparse-histogram storage (memory bounded by distinct
  // values, not run count -- see util/stats.hpp).
  std::size_t mh_crashes_applied = 0;  ///< crashes landed, total over runs
  std::size_t phase2_skipped = 0;      ///< mis-then-consensus: no surviving
                                       ///< head, so phase 2 never ran
  Stats surviving_fraction{Stats::Mode::kRawSamples};  ///< alive at end / n

  Stats coverage_rounds;     ///< flood: rounds to full coverage (when reached)
  Stats coverage_fraction{Stats::Mode::kRawSamples};  ///< reached / n
  Stats mis_size;            ///< surviving heads elected
  Stats mis_settle_round;    ///< first all-settled round (when settled)
  Stats messages_per_node{Stats::Mode::kRawSamples};  ///< broadcasts / n
  Stats diameter;            ///< hop diameter, connected runs only

  // Round-sync workload (the E13 substrate validation).  Rendered as a
  // "sync" JSON block when present; the CSV column set is frozen (the
  // byte-stability contract of the named grids), so sync metrics live in
  // the JSON report only.
  std::size_t sync_runs = 0;
  std::size_t sync_bound_violations = 0;  ///< measured skew over the bound
  Stats sync_skew_us{Stats::Mode::kRawSamples};    ///< max pairwise skew (us)
  Stats sync_bound_us{Stats::Mode::kRawSamples};   ///< analytic bound (us)
  Stats sync_agreement{Stats::Mode::kRawSamples};  ///< agreement fraction
};

/// Fixed (name, member) table over CellAggregate's 13 Stats members, in
/// serialization order.  Shared by the shard-report codec and the dist
/// export so the two can never drift.
struct CellStatsField {
  const char* name;
  Stats CellAggregate::* member;
};
const std::vector<CellStatsField>& cell_stats_fields();

std::vector<CellAggregate> aggregate(const SweepGrid& grid,
                                     const std::vector<RunRecord>& records);

/// A zero-run aggregate carrying cell `cell_index`'s identity -- the unit
/// both aggregate() and the shard runner fold runs into.
CellAggregate empty_cell_aggregate(const SweepGrid& grid,
                                   std::size_t cell_index);

/// Fold one run record into its cell.  The deterministic-report guarantee
/// requires folding a cell's records in run-index order (the fold order is
/// observable through the floating-point sums).
void accumulate_run(CellAggregate& cell, const RunRecord& record);

/// Exact merge for shard recombination: counters add, statistics merge via
/// Stats::merge_from.  `dst` and `src` must describe the same cell; when
/// one side is empty (the only case a cell-partitioned shard plan ever
/// produces) the result is bit-identical to the populated side, and in
/// general it equals folding src's runs after dst's.
void merge_cell_aggregate(CellAggregate& dst, const CellAggregate& src);

/// Deterministic JSON report: grid metadata + one object per cell.
std::string aggregates_to_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells);

/// Deterministic bytes retained by all Stats across `cells` (histogram
/// bins vs raw sample buffers).  This is the perf sidecar's
/// stats_bytes_retained counter: at 1e6 runs/cell it stays bounded by the
/// number of distinct metric values, which is the memory-wall win.
std::uint64_t stats_bytes_retained(const std::vector<CellAggregate>& cells);

/// Full per-cell distribution export ("ccd-dist-v1"): every non-empty
/// Stats member serialized losslessly (histogram bins or raw samples) --
/// the distribution detail the five-number summary report discards.
/// `cells` may be a shard subset; each entry carries its cell index.
std::string cells_to_dist_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells);

/// Flat CSV, one row per cell; header first.
std::string aggregates_to_csv(const std::vector<CellAggregate>& cells);

/// Human-oriented summary (AsciiTable) of the worst cells plus totals.
void print_summary(std::ostream& os, const SweepGrid& grid,
                   const std::vector<CellAggregate>& cells);

}  // namespace ccd::exp
