#include "exp/aggregator.hpp"

#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace ccd::exp {

namespace {

// One fixed numeric format everywhere so reports are diffable and the
// thread-invariance guarantee extends to the rendered bytes.
std::string fmt(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", d);
  return buf;
}

void append_stats_json(std::string& out, const char* key, const Stats& s) {
  out += "\"";
  out += key;
  out += "\":";
  if (s.empty()) {
    out += "null";
    return;
  }
  out += "{\"count\":" + std::to_string(s.count());
  out += ",\"min\":" + fmt(s.min());
  out += ",\"mean\":" + fmt(s.mean());
  out += ",\"p50\":" + fmt(s.percentile(50));
  out += ",\"p99\":" + fmt(s.percentile(99));
  out += ",\"max\":" + fmt(s.max());
  out += "}";
}

// (append-style throughout: chained std::string operator+ trips a GCC 12
// -Wrestrict false positive in optimized builds)
void append_stats_csv(std::string& out, const Stats& s) {
  if (s.empty()) {
    out += ",,,,";  // min,mean,p50,p99,max all empty
    return;
  }
  out += fmt(s.min());
  out += ",";
  out += fmt(s.mean());
  out += ",";
  out += fmt(s.percentile(50));
  out += ",";
  out += fmt(s.percentile(99));
  out += ",";
  out += fmt(s.max());
}

// Same 16-hex-digit rendering exp/shard uses for grid fingerprints.
std::string fp_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

const std::vector<CellStatsField>& cell_stats_fields() {
  static const std::vector<CellStatsField> kFields = {
      {"decision_round", &CellAggregate::decision_round},
      {"rounds_after_cst", &CellAggregate::rounds_after_cst},
      {"rounds_executed", &CellAggregate::rounds_executed},
      {"surviving_fraction", &CellAggregate::surviving_fraction},
      {"coverage_rounds", &CellAggregate::coverage_rounds},
      {"coverage_fraction", &CellAggregate::coverage_fraction},
      {"mis_size", &CellAggregate::mis_size},
      {"mis_settle_round", &CellAggregate::mis_settle_round},
      {"messages_per_node", &CellAggregate::messages_per_node},
      {"diameter", &CellAggregate::diameter},
      {"sync_skew_us", &CellAggregate::sync_skew_us},
      {"sync_bound_us", &CellAggregate::sync_bound_us},
      {"sync_agreement", &CellAggregate::sync_agreement},
  };
  return kFields;
}

std::uint64_t stats_bytes_retained(const std::vector<CellAggregate>& cells) {
  std::uint64_t bytes = 0;
  for (const CellAggregate& cell : cells) {
    for (const CellStatsField& f : cell_stats_fields()) {
      bytes += (cell.*(f.member)).bytes_retained();
    }
  }
  return bytes;
}

std::string cells_to_dist_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells) {
  std::string out = "{\"format\":\"ccd-dist-v1\"";
  out += ",\"grid_fingerprint\":\"" + fp_hex(grid.fingerprint()) + "\"";
  out += ",\"grid_seed\":" + std::to_string(grid.grid_seed);
  out += ",\"seeds_per_cell\":" + std::to_string(grid.seeds_per_cell);
  out += ",\"num_cells\":" + std::to_string(grid.num_cells());
  out += ",\"cells\":[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellAggregate& cell = cells[c];
    if (c > 0) out += ",";
    out += "{\"cell\":" + std::to_string(cell.cell_index);
    out += ",\"spec\":" + cell.spec.cell_key();
    out += ",\"runs\":" + std::to_string(cell.runs);
    out += ",\"metrics\":{";
    bool first = true;
    for (const CellStatsField& f : cell_stats_fields()) {
      const Stats& s = cell.*(f.member);
      if (s.empty()) continue;
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += f.name;
      out += "\":";
      out += stats_to_json(s);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

CellAggregate empty_cell_aggregate(const SweepGrid& grid,
                                   std::size_t cell_index) {
  CellAggregate cell;
  cell.cell_index = cell_index;
  cell.spec = grid.spec_for_cell(cell_index);
  return cell;
}

void accumulate_run(CellAggregate& cell, const RunRecord& r) {
  ++cell.runs;

  // Consensus properties: meaningful for consensus workloads and for the
  // phase-2 consensus of mis-then-consensus (where a head-less MIS phase
  // honestly counts as a termination failure).
  const bool has_consensus_phase =
      r.spec.workload == WorkloadKind::kConsensus ||
      r.spec.workload == WorkloadKind::kMisThenConsensus;
  if (has_consensus_phase) {
    const ConsensusVerdict& v = r.summary.verdict;
    if (v.solved()) ++cell.solved;
    if (!v.agreement) ++cell.agreement_failures;
    if (!v.strong_validity || !v.uniform_validity) ++cell.validity_failures;
    if (!v.termination) ++cell.termination_failures;
    cell.crashed_processes += r.summary.result.num_crashed;
    cell.rounds_executed.add(
        static_cast<double>(r.summary.result.rounds_executed));
    if (v.solved()) {
      cell.decision_round.add(static_cast<double>(v.last_decision_round));
      if (r.summary.cst != kNeverRound) {
        cell.rounds_after_cst.add(
            static_cast<double>(r.summary.rounds_after_cst));
      }
    }
  }

  if (r.mh.ran) {
    ++cell.mh_runs;
    if (!r.mh.connected) ++cell.disconnected;
    if (r.mh.connected) cell.diameter.add(r.mh.diameter);
    cell.messages_per_node.add(r.mh.messages_per_node);
    cell.mh_crashes_applied += r.mh.crashes_applied;
    if (r.mh.phase2_skipped) ++cell.phase2_skipped;
    cell.surviving_fraction.add(
        r.spec.n > 0 ? static_cast<double>(r.mh.survivors) /
                           static_cast<double>(r.spec.n)
                     : 0.0);
    if (r.spec.workload == WorkloadKind::kFlood) {
      if (r.mh.full_coverage_round != kNeverRound) {
        ++cell.full_coverage;
        cell.coverage_rounds.add(
            static_cast<double>(r.mh.full_coverage_round));
      }
      cell.coverage_fraction.add(
          r.spec.n > 0 ? static_cast<double>(r.mh.covered) /
                             static_cast<double>(r.spec.n)
                       : 0.0);
    } else if (r.spec.workload == WorkloadKind::kMis ||
               r.spec.workload == WorkloadKind::kMisThenConsensus) {
      if (!r.mh.mis_independent || !r.mh.mis_maximal) ++cell.mis_violations;
      cell.mis_size.add(static_cast<double>(r.mh.mis_size));
      if (r.mh.mis_settle_round != kNeverRound) {
        cell.mis_settle_round.add(
            static_cast<double>(r.mh.mis_settle_round));
      }
    }
    // Consensus-over-a-topology runs carry only the shared metrics above
    // (connectivity, diameter, message cost, crash accounting); their
    // verdicts are in the consensus group.
  }

  if (r.sync.ran) {
    ++cell.sync_runs;
    if (!r.sync.within_bound) ++cell.sync_bound_violations;
    cell.sync_skew_us.add(r.sync.max_skew * 1e6);
    cell.sync_bound_us.add(r.sync.skew_bound * 1e6);
    cell.sync_agreement.add(r.sync.round_agreement);
  }
}

void merge_cell_aggregate(CellAggregate& dst, const CellAggregate& src) {
  dst.runs += src.runs;
  dst.solved += src.solved;
  dst.agreement_failures += src.agreement_failures;
  dst.validity_failures += src.validity_failures;
  dst.termination_failures += src.termination_failures;
  dst.crashed_processes += src.crashed_processes;
  dst.mh_runs += src.mh_runs;
  dst.disconnected += src.disconnected;
  dst.full_coverage += src.full_coverage;
  dst.mis_violations += src.mis_violations;
  dst.mh_crashes_applied += src.mh_crashes_applied;
  dst.phase2_skipped += src.phase2_skipped;
  dst.decision_round.merge_from(src.decision_round);
  dst.rounds_after_cst.merge_from(src.rounds_after_cst);
  dst.rounds_executed.merge_from(src.rounds_executed);
  dst.surviving_fraction.merge_from(src.surviving_fraction);
  dst.coverage_rounds.merge_from(src.coverage_rounds);
  dst.coverage_fraction.merge_from(src.coverage_fraction);
  dst.mis_size.merge_from(src.mis_size);
  dst.mis_settle_round.merge_from(src.mis_settle_round);
  dst.messages_per_node.merge_from(src.messages_per_node);
  dst.diameter.merge_from(src.diameter);
  dst.sync_runs += src.sync_runs;
  dst.sync_bound_violations += src.sync_bound_violations;
  dst.sync_skew_us.merge_from(src.sync_skew_us);
  dst.sync_bound_us.merge_from(src.sync_bound_us);
  dst.sync_agreement.merge_from(src.sync_agreement);
}

std::vector<CellAggregate> aggregate(const SweepGrid& grid,
                                     const std::vector<RunRecord>& records) {
  std::vector<CellAggregate> cells;
  cells.reserve(grid.num_cells());
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    cells.push_back(empty_cell_aggregate(grid, c));
  }
  for (const RunRecord& r : records) accumulate_run(cells.at(r.cell_index), r);
  return cells;
}

std::string aggregates_to_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells) {
  std::string out = "{";
  out += "\"grid_seed\":" + std::to_string(grid.grid_seed);
  out += ",\"seeds_per_cell\":" + std::to_string(grid.seeds_per_cell);
  out += ",\"num_cells\":" + std::to_string(grid.num_cells());
  out += ",\"num_runs\":" + std::to_string(grid.num_runs());
  out += ",\"cells\":[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellAggregate& cell = cells[c];
    if (c > 0) out += ",";
    out += "{\"cell\":" + std::to_string(cell.cell_index);
    out += ",\"spec\":" + cell.spec.cell_key();
    out += ",\"runs\":" + std::to_string(cell.runs);
    out += ",\"solved\":" + std::to_string(cell.solved);
    out += ",\"agreement_failures\":" +
           std::to_string(cell.agreement_failures);
    out += ",\"validity_failures\":" + std::to_string(cell.validity_failures);
    out += ",\"termination_failures\":" +
           std::to_string(cell.termination_failures);
    out += ",\"crashed_processes\":" + std::to_string(cell.crashed_processes);
    out += ",";
    append_stats_json(out, "decision_round", cell.decision_round);
    out += ",";
    append_stats_json(out, "rounds_after_cst", cell.rounds_after_cst);
    out += ",";
    append_stats_json(out, "rounds_executed", cell.rounds_executed);
    if (cell.mh_runs > 0) {
      out += ",\"mh\":{\"runs\":" + std::to_string(cell.mh_runs);
      out += ",\"disconnected\":" + std::to_string(cell.disconnected);
      out += ",\"full_coverage\":" + std::to_string(cell.full_coverage);
      out += ",\"mis_violations\":" + std::to_string(cell.mis_violations);
      out += ",\"crashes_applied\":" +
             std::to_string(cell.mh_crashes_applied);
      out += ",\"phase2_skipped\":" + std::to_string(cell.phase2_skipped);
      out += ",";
      append_stats_json(out, "surviving_fraction", cell.surviving_fraction);
      out += ",";
      append_stats_json(out, "coverage_rounds", cell.coverage_rounds);
      out += ",";
      append_stats_json(out, "coverage_fraction", cell.coverage_fraction);
      out += ",";
      append_stats_json(out, "mis_size", cell.mis_size);
      out += ",";
      append_stats_json(out, "mis_settle_round", cell.mis_settle_round);
      out += ",";
      append_stats_json(out, "messages_per_node", cell.messages_per_node);
      out += ",";
      append_stats_json(out, "diameter", cell.diameter);
      out += "}";
    }
    if (cell.sync_runs > 0) {
      out += ",\"sync\":{\"runs\":" + std::to_string(cell.sync_runs);
      out += ",\"bound_violations\":" +
             std::to_string(cell.sync_bound_violations);
      out += ",";
      append_stats_json(out, "skew_us", cell.sync_skew_us);
      out += ",";
      append_stats_json(out, "bound_us", cell.sync_bound_us);
      out += ",";
      append_stats_json(out, "agreement", cell.sync_agreement);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string aggregates_to_csv(const std::vector<CellAggregate>& cells) {
  std::string out =
      "cell,alg,detector,policy,cm,loss,fault,workload,topology,density,"
      "n,num_values,cst_target,"
      "runs,solved,agreement_failures,validity_failures,"
      "termination_failures,crashed_processes,"
      "decision_min,decision_mean,decision_p50,decision_p99,decision_max,"
      "after_cst_min,after_cst_mean,after_cst_p50,after_cst_p99,"
      "after_cst_max,"
      "mh_runs,disconnected,full_coverage,mis_violations,"
      "mh_crashes_applied,phase2_skipped,"
      "coverage_mean,coverage_fraction_mean,mis_size_mean,"
      "mis_settle_mean,messages_per_node_mean,diameter_mean,"
      "surviving_fraction_mean\n";
  for (const CellAggregate& cell : cells) {
    const ScenarioSpec& s = cell.spec;
    out += std::to_string(cell.cell_index);
    out += ",";
    out += to_string(s.alg);
    out += ",";
    out += to_string(s.detector);
    out += ",";
    out += to_string(s.policy);
    out += ",";
    out += to_string(s.cm);
    out += ",";
    out += to_string(s.loss);
    out += ",";
    out += to_string(s.fault);
    out += ",";
    out += to_string(s.workload);
    out += ",";
    out += to_string(s.topology);
    out += ",";
    out += fmt(s.density);
    for (std::uint64_t v :
         {static_cast<std::uint64_t>(s.n), s.num_values,
          static_cast<std::uint64_t>(s.cst_target),
          static_cast<std::uint64_t>(cell.runs),
          static_cast<std::uint64_t>(cell.solved),
          static_cast<std::uint64_t>(cell.agreement_failures),
          static_cast<std::uint64_t>(cell.validity_failures),
          static_cast<std::uint64_t>(cell.termination_failures),
          static_cast<std::uint64_t>(cell.crashed_processes)}) {
      out += ",";
      out += std::to_string(v);
    }
    out += ",";
    append_stats_csv(out, cell.decision_round);
    out += ",";
    append_stats_csv(out, cell.rounds_after_cst);
    for (std::uint64_t v :
         {static_cast<std::uint64_t>(cell.mh_runs),
          static_cast<std::uint64_t>(cell.disconnected),
          static_cast<std::uint64_t>(cell.full_coverage),
          static_cast<std::uint64_t>(cell.mis_violations),
          static_cast<std::uint64_t>(cell.mh_crashes_applied),
          static_cast<std::uint64_t>(cell.phase2_skipped)}) {
      out += ",";
      out += std::to_string(v);
    }
    for (const Stats* st :
         {&cell.coverage_rounds, &cell.coverage_fraction, &cell.mis_size,
          &cell.mis_settle_round, &cell.messages_per_node, &cell.diameter,
          &cell.surviving_fraction}) {
      out += ",";
      if (!st->empty()) out += fmt(st->mean());
    }
    out += "\n";
  }
  return out;
}

void print_summary(std::ostream& os, const SweepGrid& grid,
                   const std::vector<CellAggregate>& cells) {
  auto consensus_phase = [](const CellAggregate& cell) {
    return cell.spec.workload == WorkloadKind::kConsensus ||
           cell.spec.workload == WorkloadKind::kMisThenConsensus;
  };
  std::size_t runs = 0, consensus_runs = 0, solved = 0, agreement = 0,
              validity = 0, termination = 0;
  std::size_t mh_runs = 0, flood_runs = 0, full_coverage = 0,
              mis_violations = 0, disconnected = 0, crashes = 0,
              phase2_skipped = 0;
  std::size_t sync_runs = 0, sync_violations = 0;
  for (const CellAggregate& cell : cells) {
    runs += cell.runs;
    sync_runs += cell.sync_runs;
    sync_violations += cell.sync_bound_violations;
    if (consensus_phase(cell)) {
      consensus_runs += cell.runs;
      solved += cell.solved;
      agreement += cell.agreement_failures;
      validity += cell.validity_failures;
      termination += cell.termination_failures;
    }
    mh_runs += cell.mh_runs;
    if (cell.spec.workload == WorkloadKind::kFlood) {
      flood_runs += cell.mh_runs;
      full_coverage += cell.full_coverage;
    }
    mis_violations += cell.mis_violations;
    disconnected += cell.disconnected;
    crashes += cell.mh_crashes_applied;
    phase2_skipped += cell.phase2_skipped;
  }
  os << "grid: " << cells.size() << " cells x " << grid.seeds_per_cell
     << " seeds = " << runs << " runs (grid_seed " << grid.grid_seed
     << ")\n";
  if (consensus_runs > 0) {
    os << "solved " << solved << "/" << consensus_runs
       << "; failures: agreement " << agreement << ", validity " << validity
       << ", termination " << termination << "\n";
  }
  if (mh_runs > 0) {
    os << "multihop: " << mh_runs << " runs";
    if (flood_runs > 0) {
      os << ", full coverage " << full_coverage << "/" << flood_runs;
    }
    os << ", MIS violations " << mis_violations << ", disconnected "
       << disconnected;
    if (crashes > 0) os << ", crashes applied " << crashes;
    if (phase2_skipped > 0) os << ", phase-2 skipped " << phase2_skipped;
    os << "\n";
  }
  if (sync_runs > 0) {
    os << "round-sync: " << sync_runs << " runs, skew-bound violations "
       << sync_violations << "\n";
  }
  os << "\n";

  // A cell is "perfect" when its workload's own success criterion held in
  // every run; big grids print only the imperfect ones.
  auto perfect = [&](const CellAggregate& cell) {
    if (cell.disconnected > 0) return false;
    if (consensus_phase(cell) &&
        (cell.solved != cell.runs || cell.agreement_failures != 0)) {
      return false;
    }
    if (cell.spec.workload == WorkloadKind::kFlood &&
        cell.full_coverage != cell.mh_runs) {
      return false;
    }
    return cell.mis_violations == 0;
  };

  if (consensus_runs > 0) {
    AsciiTable table({"cell", "alg", "detector", "cm", "loss", "n", "solved",
                      "agree-fail", "decide-mean", "after-CST max"});
    for (const CellAggregate& cell : cells) {
      if (!consensus_phase(cell)) continue;
      if (cells.size() > 24 && perfect(cell)) continue;
      table.add(cell.cell_index, to_string(cell.spec.alg),
                to_string(cell.spec.detector), to_string(cell.spec.cm),
                to_string(cell.spec.loss), cell.spec.n,
                std::to_string(cell.solved) + "/" + std::to_string(cell.runs),
                cell.agreement_failures,
                cell.decision_round.empty()
                    ? std::string("-")
                    : fmt(cell.decision_round.mean()),
                cell.rounds_after_cst.empty()
                    ? std::string("-")
                    : fmt(cell.rounds_after_cst.max()));
    }
    table.print(os);
  }

  if (mh_runs > 0) {
    AsciiTable table({"cell", "workload", "topology", "loss", "fault", "n",
                      "density", "covered", "cover-mean", "MIS-mean",
                      "msgs/node", "surv-mean", "diam-mean"});
    for (const CellAggregate& cell : cells) {
      if (cell.mh_runs == 0) continue;
      if (cells.size() > 24 && perfect(cell)) continue;
      const bool flood = cell.spec.workload == WorkloadKind::kFlood;
      table.add(
          cell.cell_index, to_string(cell.spec.workload),
          to_string(cell.spec.topology), to_string(cell.spec.loss),
          to_string(cell.spec.fault), cell.spec.n, fmt(cell.spec.density),
          flood ? std::to_string(cell.full_coverage) + "/" +
                      std::to_string(cell.mh_runs)
                : std::string("-"),
          cell.coverage_rounds.empty() ? std::string("-")
                                       : fmt(cell.coverage_rounds.mean()),
          cell.mis_size.empty() ? std::string("-")
                                : fmt(cell.mis_size.mean()),
          cell.messages_per_node.empty()
              ? std::string("-")
              : fmt(cell.messages_per_node.mean()),
          cell.surviving_fraction.empty()
              ? std::string("-")
              : fmt(cell.surviving_fraction.mean()),
          cell.diameter.empty() ? std::string("-")
                                : fmt(cell.diameter.mean()));
    }
    table.print(os);
  }

  if (sync_runs > 0) {
    AsciiTable table({"cell", "n", "rho", "round-len(s)", "skew-max(us)",
                      "bound(us)", "agreement", "violations"});
    for (const CellAggregate& cell : cells) {
      if (cell.sync_runs == 0) continue;
      table.add(cell.cell_index, cell.spec.n, cell.spec.sync_rho,
                fmt(cell.spec.sync_round_length),
                cell.sync_skew_us.empty() ? std::string("-")
                                          : fmt(cell.sync_skew_us.max()),
                cell.sync_bound_us.empty() ? std::string("-")
                                           : fmt(cell.sync_bound_us.max()),
                cell.sync_agreement.empty()
                    ? std::string("-")
                    : fmt(cell.sync_agreement.min()),
                cell.sync_bound_violations);
    }
    table.print(os);
  }
}

}  // namespace ccd::exp
