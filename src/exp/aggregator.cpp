#include "exp/aggregator.hpp"

#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace ccd::exp {

namespace {

// One fixed numeric format everywhere so reports are diffable and the
// thread-invariance guarantee extends to the rendered bytes.
std::string fmt(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", d);
  return buf;
}

void append_stats_json(std::string& out, const char* key, const Stats& s) {
  out += "\"";
  out += key;
  out += "\":";
  if (s.empty()) {
    out += "null";
    return;
  }
  out += "{\"count\":" + std::to_string(s.count());
  out += ",\"min\":" + fmt(s.min());
  out += ",\"mean\":" + fmt(s.mean());
  out += ",\"p50\":" + fmt(s.percentile(50));
  out += ",\"p99\":" + fmt(s.percentile(99));
  out += ",\"max\":" + fmt(s.max());
  out += "}";
}

// (append-style throughout: chained std::string operator+ trips a GCC 12
// -Wrestrict false positive in optimized builds)
void append_stats_csv(std::string& out, const Stats& s) {
  if (s.empty()) {
    out += ",,,,";  // min,mean,p50,p99,max all empty
    return;
  }
  out += fmt(s.min());
  out += ",";
  out += fmt(s.mean());
  out += ",";
  out += fmt(s.percentile(50));
  out += ",";
  out += fmt(s.percentile(99));
  out += ",";
  out += fmt(s.max());
}

}  // namespace

std::vector<CellAggregate> aggregate(const SweepGrid& grid,
                                     const std::vector<RunRecord>& records) {
  std::vector<CellAggregate> cells(grid.num_cells());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].cell_index = c;
    cells[c].spec = grid.spec_for_cell(c);
  }
  for (const RunRecord& r : records) {
    CellAggregate& cell = cells.at(r.cell_index);
    const ConsensusVerdict& v = r.summary.verdict;
    ++cell.runs;
    if (v.solved()) ++cell.solved;
    if (!v.agreement) ++cell.agreement_failures;
    if (!v.strong_validity || !v.uniform_validity) ++cell.validity_failures;
    if (!v.termination) ++cell.termination_failures;
    cell.crashed_processes += r.summary.result.num_crashed;
    cell.rounds_executed.add(
        static_cast<double>(r.summary.result.rounds_executed));
    if (v.solved()) {
      cell.decision_round.add(static_cast<double>(v.last_decision_round));
      if (r.summary.cst != kNeverRound) {
        cell.rounds_after_cst.add(
            static_cast<double>(r.summary.rounds_after_cst));
      }
    }
  }
  return cells;
}

std::string aggregates_to_json(const SweepGrid& grid,
                               const std::vector<CellAggregate>& cells) {
  std::string out = "{";
  out += "\"grid_seed\":" + std::to_string(grid.grid_seed);
  out += ",\"seeds_per_cell\":" + std::to_string(grid.seeds_per_cell);
  out += ",\"num_cells\":" + std::to_string(grid.num_cells());
  out += ",\"num_runs\":" + std::to_string(grid.num_runs());
  out += ",\"cells\":[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellAggregate& cell = cells[c];
    if (c > 0) out += ",";
    out += "{\"cell\":" + std::to_string(cell.cell_index);
    out += ",\"spec\":" + cell.spec.cell_key();
    out += ",\"runs\":" + std::to_string(cell.runs);
    out += ",\"solved\":" + std::to_string(cell.solved);
    out += ",\"agreement_failures\":" +
           std::to_string(cell.agreement_failures);
    out += ",\"validity_failures\":" + std::to_string(cell.validity_failures);
    out += ",\"termination_failures\":" +
           std::to_string(cell.termination_failures);
    out += ",\"crashed_processes\":" + std::to_string(cell.crashed_processes);
    out += ",";
    append_stats_json(out, "decision_round", cell.decision_round);
    out += ",";
    append_stats_json(out, "rounds_after_cst", cell.rounds_after_cst);
    out += ",";
    append_stats_json(out, "rounds_executed", cell.rounds_executed);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string aggregates_to_csv(const std::vector<CellAggregate>& cells) {
  std::string out =
      "cell,alg,detector,policy,cm,loss,fault,n,num_values,cst_target,"
      "runs,solved,agreement_failures,validity_failures,"
      "termination_failures,crashed_processes,"
      "decision_min,decision_mean,decision_p50,decision_p99,decision_max,"
      "after_cst_min,after_cst_mean,after_cst_p50,after_cst_p99,"
      "after_cst_max\n";
  for (const CellAggregate& cell : cells) {
    const ScenarioSpec& s = cell.spec;
    out += std::to_string(cell.cell_index);
    out += ",";
    out += to_string(s.alg);
    out += ",";
    out += to_string(s.detector);
    out += ",";
    out += to_string(s.policy);
    out += ",";
    out += to_string(s.cm);
    out += ",";
    out += to_string(s.loss);
    out += ",";
    out += to_string(s.fault);
    for (std::uint64_t v :
         {static_cast<std::uint64_t>(s.n), s.num_values,
          static_cast<std::uint64_t>(s.cst_target),
          static_cast<std::uint64_t>(cell.runs),
          static_cast<std::uint64_t>(cell.solved),
          static_cast<std::uint64_t>(cell.agreement_failures),
          static_cast<std::uint64_t>(cell.validity_failures),
          static_cast<std::uint64_t>(cell.termination_failures),
          static_cast<std::uint64_t>(cell.crashed_processes)}) {
      out += ",";
      out += std::to_string(v);
    }
    out += ",";
    append_stats_csv(out, cell.decision_round);
    out += ",";
    append_stats_csv(out, cell.rounds_after_cst);
    out += "\n";
  }
  return out;
}

void print_summary(std::ostream& os, const SweepGrid& grid,
                   const std::vector<CellAggregate>& cells) {
  std::size_t runs = 0, solved = 0, agreement = 0, validity = 0,
              termination = 0;
  for (const CellAggregate& cell : cells) {
    runs += cell.runs;
    solved += cell.solved;
    agreement += cell.agreement_failures;
    validity += cell.validity_failures;
    termination += cell.termination_failures;
  }
  os << "grid: " << cells.size() << " cells x " << grid.seeds_per_cell
     << " seeds = " << runs << " runs (grid_seed " << grid.grid_seed
     << ")\n";
  os << "solved " << solved << "/" << runs << "; failures: agreement "
     << agreement << ", validity " << validity << ", termination "
     << termination << "\n\n";

  AsciiTable table({"cell", "alg", "detector", "cm", "loss", "n", "solved",
                    "agree-fail", "decide-mean", "after-CST max"});
  for (const CellAggregate& cell : cells) {
    // Keep the table scannable for big grids: print only imperfect cells
    // unless the grid is small.
    const bool perfect =
        cell.solved == cell.runs && cell.agreement_failures == 0;
    if (cells.size() > 24 && perfect) continue;
    table.add(cell.cell_index, to_string(cell.spec.alg),
              to_string(cell.spec.detector), to_string(cell.spec.cm),
              to_string(cell.spec.loss), cell.spec.n,
              std::to_string(cell.solved) + "/" + std::to_string(cell.runs),
              cell.agreement_failures,
              cell.decision_round.empty() ? std::string("-")
                                          : fmt(cell.decision_round.mean()),
              cell.rounds_after_cst.empty()
                  ? std::string("-")
                  : fmt(cell.rounds_after_cst.max()));
  }
  table.print(os);
}

}  // namespace ccd::exp
