#include "exp/dispatch/worker_transport.hpp"

#include <csignal>
#include <cstdlib>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace ccd::exp {

LocalProcessTransport::~LocalProcessTransport() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    kill_worker(static_cast<int>(i));
  }
}

int LocalProcessTransport::spawn(const std::vector<std::string>& argv,
                                 const std::vector<std::string>& env) {
  if (argv.empty()) return -1;
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    c_argv.push_back(const_cast<char*>(a.c_str()));
  }
  c_argv.push_back(nullptr);

  // Inherited environment plus the dispatcher's additions.  Built before
  // fork so the child only execs -- no allocation between fork and exec.
  std::vector<std::string> env_storage;
  for (char** e = environ; *e; ++e) env_storage.push_back(*e);
  for (const std::string& kv : env) env_storage.push_back(kv);
  std::vector<char*> c_env;
  c_env.reserve(env_storage.size() + 1);
  for (const std::string& kv : env_storage) {
    c_env.push_back(const_cast<char*>(kv.c_str()));
  }
  c_env.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execve(c_argv[0], c_argv.data(), c_env.data());
    _exit(127);  // exec failed; 127 = "command not found" convention
  }
  Child child;
  child.pid = pid;
  child.running = true;
  children_.push_back(child);
  return static_cast<int>(children_.size() - 1);
}

WorkerStatus LocalProcessTransport::poll(int handle) {
  if (handle < 0 || static_cast<std::size_t>(handle) >= children_.size()) {
    return WorkerStatus{false, 127};
  }
  Child& child = children_[static_cast<std::size_t>(handle)];
  if (!child.running) return child.last;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(child.pid), &status, WNOHANG);
  if (r == 0) return WorkerStatus{true, 0};
  child.running = false;
  child.last.running = false;
  if (r < 0) {
    child.last.exit_code = 127;  // already reaped?  treat as failure
  } else if (WIFEXITED(status)) {
    child.last.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    child.last.exit_code = 128 + WTERMSIG(status);
  } else {
    child.last.exit_code = 127;
  }
  return child.last;
}

void LocalProcessTransport::kill_worker(int handle) {
  if (handle < 0 || static_cast<std::size_t>(handle) >= children_.size()) {
    return;
  }
  Child& child = children_[static_cast<std::size_t>(handle)];
  if (!child.running) return;
  ::kill(static_cast<pid_t>(child.pid), SIGKILL);
  int status = 0;
  ::waitpid(static_cast<pid_t>(child.pid), &status, 0);  // reap, no zombies
  child.running = false;
  child.last = WorkerStatus{false, 128 + SIGKILL};
}

}  // namespace ccd::exp
