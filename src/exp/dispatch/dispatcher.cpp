#include "exp/dispatch/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "exp/shard/checkpoint.hpp"
#include "obs/telemetry.hpp"

namespace ccd::exp {

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// One spec handed to one worker process.  Retired when the process exits;
/// a steal re-queues cells but the assignment (and its worker) lives on --
/// first completed copy wins.
struct Assignment {
  std::size_t id = 0;
  std::vector<std::size_t> cells;
  std::string spec_path, report_path, ckpt_path, perf_path;
  ShardSpec spec;
  std::uint64_t spawn_wall_ms = 0;  ///< heartbeat floor before first write
  std::uint64_t start_ns = 0;       ///< dispatcher-clock spawn instant
  std::size_t done_per_tail = 0;    ///< cells completed per last tail
  bool stolen = false;              ///< at most one steal per assignment
};

struct Slot {
  int handle = -1;  ///< transport handle, -1 = idle
  std::optional<Assignment> batch;
  std::uint64_t busy_ns = 0;
  std::uint64_t batches = 0;
  std::uint64_t cells_won = 0;
  std::uint64_t restarts = 0;
  bool stale_display = false;
};

}  // namespace

std::size_t next_batch_size(std::size_t pending, std::size_t workers) {
  if (workers == 0) workers = 1;
  const std::size_t size = pending / (2 * workers);
  return size > 0 ? size : 1;
}

std::string ledger_to_json(const std::vector<DispatchLedgerEntry>& ledger) {
  std::string out = "{\"format\":\"ccd-dispatch-ledger-v1\",\"cells\":[";
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"cell\":" + std::to_string(ledger[i].cell);
    out += ",\"batch\":" + std::to_string(ledger[i].batch_id);
    out += ",\"slot\":" + std::to_string(ledger[i].slot) + "}";
  }
  out += "]}";
  return out;
}

std::optional<DispatchResult> run_dispatch(const SweepGrid& grid,
                                           const DispatchOptions& options,
                                           std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<DispatchResult> {
    if (error) *error = message;
    return std::nullopt;
  };
  const std::size_t n = grid.num_cells();
  if (n == 0) return fail("grid has no cells to dispatch");
  if (grid.seeds_per_cell == 0) {
    return fail("grid has seeds_per_cell 0: no runs to execute");
  }
  if (options.workers == 0) return fail("need at least one worker slot");
  if (options.worker_bin.empty()) return fail("no worker binary configured");
  if (options.work_dir.empty()) return fail("no work directory configured");

  LocalProcessTransport local_transport;
  WorkerTransport* transport =
      options.transport ? options.transport : &local_transport;

  // Queue + cell bookkeeping.  A cell can be queued AND assigned at once
  // (that is what a steal is); `queued` and `live` keep the two states
  // separate so a cell is never queued twice.
  std::deque<std::size_t> pending;
  for (std::size_t c = 0; c < n; ++c) pending.push_back(c);
  std::vector<std::uint8_t> queued(n, 1), done(n, 0);
  std::vector<std::size_t> live(n, 0), assigned_times(n, 0);
  std::map<std::size_t, CellAggregate> won_cells;
  std::vector<DispatchLedgerEntry> ledger(n);

  std::vector<Slot> slots(options.workers);
  obs::PerfDispatch stats;
  stats.workers = options.workers;
  std::size_t completed = 0;
  std::size_t next_batch_id = 0;
  std::vector<std::string> perf_path_by_batch;
  obs::RunTimer timer;
  const auto stale_ms =
      static_cast<std::uint64_t>(options.stale_after_secs * 1000.0);

  auto cleanup = [&]() {
    for (Slot& slot : slots) {
      if (slot.handle != -1) transport->kill_worker(slot.handle);
    }
  };
  auto requeue_cell = [&](std::size_t c) {
    if (done[c] || queued[c]) return false;
    pending.push_front(c);
    queued[c] = 1;
    return true;
  };
  auto adopt = [&](std::size_t c, CellAggregate cell, std::size_t batch_id,
                   std::uint32_t slot_index) {
    if (done[c]) {
      ++stats.duplicate_cells;  // a stolen copy finished second: discard
      return;
    }
    done[c] = 1;
    ++completed;
    won_cells[c] = std::move(cell);
    ledger[c] = DispatchLedgerEntry{c, batch_id, slot_index};
    ++slots[slot_index].cells_won;
  };

  while (completed < n) {
    bool worked = false;

    // 1. Hand out batches to idle slots.  Size decays with the queue so
    // the tail is fine-grained where stealing matters.
    for (std::uint32_t si = 0; si < slots.size(); ++si) {
      if (pending.empty()) break;
      Slot& slot = slots[si];
      if (slot.handle != -1) continue;
      std::vector<std::size_t> cells;
      const std::size_t want = next_batch_size(pending.size(), slots.size());
      while (cells.size() < want && !pending.empty()) {
        const std::size_t c = pending.front();
        pending.pop_front();
        queued[c] = 0;
        if (done[c]) continue;  // stale owner finished it while queued
        if (++assigned_times[c] > options.max_assignments_per_cell) {
          cleanup();
          return fail("cell " + std::to_string(c) + " was assigned " +
                      std::to_string(options.max_assignments_per_cell) +
                      " times without completing (worker binary failing "
                      "deterministically on it?)");
        }
        cells.push_back(c);
      }
      if (cells.empty()) continue;
      std::sort(cells.begin(), cells.end());  // requeues arrive unsorted

      Assignment a;
      a.id = next_batch_id++;
      a.cells = cells;
      const std::string base =
          options.work_dir + "/batch-" + std::to_string(a.id);
      a.spec_path = base + ".spec.json";
      a.report_path = base + ".report.json";
      a.ckpt_path = base + ".ckpt.jsonl";
      a.spec = ShardPlanner::plan_cells(grid, cells, a.id);
      if (!write_file(a.spec_path, a.spec.to_json() + "\n")) {
        cleanup();
        return fail("cannot write shard spec " + a.spec_path);
      }
      std::vector<std::string> argv = {
          options.worker_bin, "--shard-file", a.spec_path,
          "--json",           a.report_path, "--checkpoint",
          a.ckpt_path,        "--quiet"};
      if (options.worker_perf) {
        a.perf_path = base + ".perf.json";
        argv.push_back("--perf-out");
        argv.push_back(a.perf_path);
      }
      perf_path_by_batch.push_back(a.perf_path);
      for (const std::string& arg : options.worker_args) argv.push_back(arg);
      std::vector<std::string> env = {"CCD_DISPATCH_WORKER=" +
                                      std::to_string(si)};
      if (si < options.worker_env.size()) {
        for (const std::string& kv : options.worker_env[si]) {
          env.push_back(kv);
        }
      }
      for (std::size_t c : a.cells) ++live[c];
      a.spawn_wall_ms = obs::wall_clock_ms();
      a.start_ns = timer.elapsed_ns();
      const int handle = transport->spawn(argv, env);
      if (handle < 0) {
        cleanup();
        return fail("cannot spawn worker '" + options.worker_bin +
                    "' for batch " + std::to_string(a.id));
      }
      slot.handle = handle;
      slot.batch = std::move(a);
      ++slot.batches;
      ++stats.batches;
      worked = true;
    }

    // 2. Poll running workers: adopt finished batches, harvest + requeue
    // dead ones, steal from stale ones.
    for (std::uint32_t si = 0; si < slots.size(); ++si) {
      Slot& slot = slots[si];
      if (slot.handle == -1) continue;
      Assignment& a = *slot.batch;
      const WorkerStatus status = transport->poll(slot.handle);

      if (status.running) {
        std::vector<std::size_t> tail_cells;
        std::uint64_t hb = 0;
        tail_checkpoint(a.ckpt_path, &tail_cells, &hb);
        a.done_per_tail = tail_cells.size();
        const std::uint64_t last = std::max(hb, a.spawn_wall_ms);
        const std::uint64_t now = obs::wall_clock_ms();
        if (!a.stolen && now > last && now - last > stale_ms) {
          // Steal: re-queue the unfinished cells but leave the laggard
          // running -- it may still win some of them.
          a.stolen = true;
          slot.stale_display = true;
          const std::set<std::size_t> fresh(tail_cells.begin(),
                                            tail_cells.end());
          std::size_t stolen_cells = 0;
          for (auto it = a.cells.rbegin(); it != a.cells.rend(); ++it) {
            if (fresh.count(*it)) continue;
            if (requeue_cell(*it)) ++stolen_cells;
          }
          stats.steals += stolen_cells;
          worked = worked || stolen_cells > 0;
        }
        continue;
      }

      // Worker exited.
      slot.busy_ns += timer.elapsed_ns() - a.start_ns;
      bool adopted_report = false;
      if (status.exit_code == 0) {
        std::string text, parse_error;
        if (read_file(a.report_path, text)) {
          if (auto report = ShardReport::from_json(text, &parse_error)) {
            for (CellAggregate& cell : report->cells) {
              const std::size_t c = cell.cell_index;
              adopt(c, std::move(cell), a.id, si);
            }
            adopted_report = true;
          }
        }
      }
      if (!adopted_report) {
        // Crash (or a clean exit with an unusable report, which is treated
        // the same).  Harvest the checkpoint -- torn-tail amnesty included
        // -- so completed cells survive; an invalid checkpoint forfeits
        // its progress and every cell re-queues.
        CheckpointContents contents;
        std::string ckpt_error;
        if (load_checkpoint(a.spec, a.ckpt_path, &contents, &ckpt_error)) {
          for (auto& [c, cell] : contents.cells) {
            adopt(c, std::move(cell), a.id, si);
          }
        }
        ++slot.restarts;
        ++stats.worker_restarts;
      }
      std::size_t requeued = 0;
      for (std::size_t c : a.cells) --live[c];
      for (auto it = a.cells.rbegin(); it != a.cells.rend(); ++it) {
        const std::size_t c = *it;
        if (live[c] > 0) continue;  // another (stolen) copy is in flight
        if (requeue_cell(c)) ++requeued;
      }
      stats.requeues += requeued;
      slot.handle = -1;
      slot.batch.reset();
      slot.stale_display = false;
      worked = true;
    }

    // Every cell must be somewhere: queued, in flight, or done.  Anything
    // else is a scheduler bug -- fail loudly instead of spinning forever.
    if (!worked && pending.empty() && completed < n) {
      bool any_busy = false;
      for (const Slot& slot : slots) any_busy = any_busy || slot.handle != -1;
      if (!any_busy) {
        cleanup();
        return fail("dispatch stalled with " +
                    std::to_string(n - completed) +
                    " cells unaccounted for (scheduler invariant broken)");
      }
    }

    if (options.on_progress) {
      DispatchProgress p;
      p.total_cells = n;
      p.completed_cells = completed;
      p.queued_cells = pending.size();
      p.steals = stats.steals;
      p.requeues = stats.requeues;
      p.worker_restarts = stats.worker_restarts;
      p.elapsed_ns = timer.elapsed_ns();
      for (const Slot& slot : slots) {
        DispatchSlotView view;
        if (slot.handle != -1) {
          view.state = slot.stale_display ? DispatchSlotView::State::kStale
                                          : DispatchSlotView::State::kBusy;
          view.batch_cells = slot.batch->cells.size();
          view.batch_done = slot.batch->done_per_tail;
          p.inflight_cells +=
              slot.batch->cells.size() -
              std::min(slot.batch->done_per_tail, slot.batch->cells.size());
        }
        view.cells_won = slot.cells_won;
        view.restarts = slot.restarts;
        p.slots.push_back(view);
      }
      options.on_progress(p);
    }

    if (!worked && completed < n) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.poll_ms));
    }
  }

  // Stolen stragglers may still be running: their cells are all won, so
  // hard-kill them (charging the busy time they consumed).
  for (Slot& slot : slots) {
    if (slot.handle == -1) continue;
    slot.busy_ns += timer.elapsed_ns() - slot.batch->start_ns;
    transport->kill_worker(slot.handle);
    slot.handle = -1;
    slot.batch.reset();
  }
  stats.wall_ns = timer.elapsed_ns();
  for (std::uint32_t si = 0; si < slots.size(); ++si) {
    obs::PerfDispatchSlot view;
    view.slot = si;
    view.batches = slots[si].batches;
    view.cells = slots[si].cells_won;
    view.busy_ns = slots[si].busy_ns;
    view.busy_permille =
        stats.wall_ns > 0 ? slots[si].busy_ns * 1000 / stats.wall_ns : 0;
    view.restarts = slots[si].restarts;
    stats.slots.push_back(view);
  }

  // Ledger-pruned merge: one synthetic report per winning assignment, so
  // merge_shard_reports' exactly-once validation sees each cell once --
  // and would catch any ledger bug as a hard error.
  std::map<std::size_t, std::pair<std::uint32_t, std::vector<std::size_t>>>
      by_batch;  // batch id -> (slot, won cells ascending)
  for (std::size_t c = 0; c < n; ++c) {
    auto& entry = by_batch[ledger[c].batch_id];
    entry.first = ledger[c].slot;
    entry.second.push_back(c);
  }
  std::vector<ShardReport> reports;
  reports.reserve(by_batch.size());
  for (auto& [batch_id, entry] : by_batch) {
    ShardReport report;
    report.shard = ShardPlanner::plan_cells(grid, entry.second, batch_id);
    report.cells.reserve(entry.second.size());
    for (std::size_t c : entry.second) {
      report.cells.push_back(std::move(won_cells.at(c)));
    }
    reports.push_back(std::move(report));
  }
  std::string merge_error;
  auto merged = merge_shard_reports(reports, &merge_error);
  if (!merged) {
    return fail("ledger-pruned merge failed: " + merge_error);
  }

  DispatchResult result;
  result.merged = std::move(*merged);
  result.ledger = std::move(ledger);

  // Worker perf sidecars: prune each batch's cells to its ledger winners
  // (duplicate executions stay in the counter totals -- they really ran --
  // but a cell is timed once), then merge.  Observability must never fail
  // the dispatch: unreadable sidecars (crashed workers never write one)
  // are skipped.
  if (options.worker_perf) {
    std::vector<obs::PerfSidecar> sidecars;
    for (std::size_t id = 0; id < perf_path_by_batch.size(); ++id) {
      const std::string& path = perf_path_by_batch[id];
      if (path.empty()) continue;
      std::string text;
      if (!read_file(path, text)) continue;
      auto sidecar = obs::PerfSidecar::from_json(text);
      if (!sidecar) continue;
      std::vector<obs::PerfCell> kept;
      for (const obs::PerfCell& cell : sidecar->cells) {
        if (cell.cell_index < n &&
            result.ledger[cell.cell_index].batch_id == id) {
          kept.push_back(cell);
        }
      }
      sidecar->cells = std::move(kept);
      sidecars.push_back(std::move(*sidecar));
    }
    if (!sidecars.empty()) {
      if (auto perf = obs::merge_perf_sidecars(sidecars)) {
        perf->dispatch = stats;
        result.perf = std::move(*perf);
      }
    }
  }

  result.stats = std::move(stats);
  return result;
}

}  // namespace ccd::exp
