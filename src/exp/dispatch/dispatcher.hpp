// Work-stealing dispatcher: turns a grid's cell list into a dynamic queue
// served by N worker processes, so fleet wall-clock tracks TOTAL work
// instead of the worst static shard.
//
// The scheduler composes machinery that already exists instead of growing
// a second execution path:
//
//   * assignments are explicit-cell shard specs (ShardMode::kExplicit), so
//     workers are plain `ccd_sweep --shard-file` invocations -- checkpoint
//     writing, resume validation and report emission all unchanged;
//   * liveness is read from the workers' own checkpoint JSONL heartbeats
//     (tail_checkpoint each poll tick); a batch whose heartbeat goes stale
//     past stale_after has its unfinished cells re-queued (STOLEN) while
//     the laggard keeps running -- first completed copy wins;
//   * a worker that exits nonzero has its checkpoint harvested (torn-tail
//     amnesty included) so finished cells survive the crash, and the rest
//     re-queued;
//   * the cell -> winning-assignment ledger prunes every duplicate before
//     merging, so merge_shard_reports' exactly-once validation holds and
//     the merged report is byte-identical to a single-process run --
//     seeding is hash(grid_seed, run_index), independent of which worker
//     executes a cell.
//
// Batch size decays as the queue drains (pending / 2N, floor 1): coarse
// batches amortize process spawns early, fine batches keep the tail
// stealable where it matters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/dispatch/worker_transport.hpp"
#include "exp/shard/shard_report.hpp"
#include "obs/perf_sidecar.hpp"

namespace ccd::exp {

/// Live view of one worker slot for the progress table.
struct DispatchSlotView {
  enum class State : std::uint8_t { kIdle, kBusy, kStale };
  State state = State::kIdle;
  std::size_t batch_cells = 0;   ///< cells in the current assignment
  std::size_t batch_done = 0;    ///< of those, completed per the checkpoint
  std::uint64_t cells_won = 0;   ///< lifetime cells this slot won
  std::uint64_t restarts = 0;    ///< lifetime nonzero exits on this slot
};

/// Snapshot handed to on_progress once per poll iteration.
struct DispatchProgress {
  std::size_t total_cells = 0;
  std::size_t completed_cells = 0;
  std::size_t queued_cells = 0;    ///< waiting in the dispatcher's queue
  std::size_t inflight_cells = 0;  ///< assigned to at least one live worker
  std::uint64_t steals = 0;
  std::uint64_t requeues = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t elapsed_ns = 0;
  std::vector<DispatchSlotView> slots;
};

struct DispatchOptions {
  std::size_t workers = 4;
  /// Heartbeat age (seconds) past which a batch's unfinished cells are
  /// stolen.  Age is measured from the newest checkpoint ts_ms (or the
  /// spawn time before the worker's first write).
  double stale_after_secs = 30.0;
  std::uint64_t poll_ms = 50;
  /// A cell assigned this many times without completing aborts the
  /// dispatch (deterministic failure instead of an infinite requeue loop
  /// when e.g. the worker binary crashes on that cell every time).
  std::size_t max_assignments_per_cell = 10;
  /// Directory for spec/report/checkpoint files; must exist.
  std::string work_dir;
  /// Worker binary (a ccd_sweep build).
  std::string worker_bin;
  /// Extra argv appended to every worker invocation (e.g. "--threads",
  /// "2", "--no-lanes").
  std::vector<std::string> worker_args;
  /// Per-slot extra environment (KEY=VALUE), indexed by slot; slots past
  /// the vector get none.  Every worker additionally gets
  /// CCD_DISPATCH_WORKER=<slot>.
  std::vector<std::vector<std::string>> worker_env;
  /// Ask workers for per-batch perf sidecars and merge them (pruned to
  /// ledger winners) into DispatchResult::perf.
  bool worker_perf = false;
  /// Process launcher; nullptr = a LocalProcessTransport owned by the
  /// call.  Tests inject failure-wrapping transports here.
  WorkerTransport* transport = nullptr;
  std::function<void(const DispatchProgress&)> on_progress;
};

/// Which assignment won each cell -- the exactly-once ledger.
struct DispatchLedgerEntry {
  std::size_t cell = 0;
  std::size_t batch_id = 0;
  std::uint32_t slot = 0;
};

struct DispatchResult {
  /// Full-grid aggregates, validated by merge_shard_reports -- renders
  /// byte-identical to a single-process run.
  MergeResult merged;
  /// Dispatcher event totals (the perf sidecar "dispatch" section).
  obs::PerfDispatch stats;
  /// Merged worker sidecars with stats.* stamped in; only when
  /// options.worker_perf.
  std::optional<obs::PerfSidecar> perf;
  /// One entry per cell, ascending.
  std::vector<DispatchLedgerEntry> ledger;
};

/// Run the full dispatch: queue -> workers -> steal/requeue -> merge.
/// nullopt with a keyed *error on spawn failure, a cell exceeding
/// max_assignments_per_cell, or unusable worker output.
std::optional<DispatchResult> run_dispatch(const SweepGrid& grid,
                                           const DispatchOptions& options,
                                           std::string* error = nullptr);

/// Decaying batch size: max(1, pending / (2 * workers)).  Exposed for the
/// unit test that pins the decay shape.
std::size_t next_batch_size(std::size_t pending, std::size_t workers);

/// Ledger JSON ("ccd-dispatch-ledger-v1"): cell -> winning assignment.
std::string ledger_to_json(const std::vector<DispatchLedgerEntry>& ledger);

}  // namespace ccd::exp
