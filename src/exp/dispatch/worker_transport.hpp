// WorkerTransport: how the dispatcher starts, watches and kills worker
// processes.  The dispatcher itself never executes a single run in-process
// -- it only writes shard files and supervises workers through this
// interface -- so swapping local fork/exec for ssh or a cluster launcher
// is a transport change, not a scheduler change.
//
// The contract is deliberately minimal (spawn / poll / kill on an opaque
// handle) because that is all work stealing needs: liveness comes from the
// workers' checkpoint heartbeats, not from the transport, so a remote
// transport does not need to stream anything back.
#pragma once

#include <string>
#include <vector>

namespace ccd::exp {

/// Result of polling a spawned worker.
struct WorkerStatus {
  bool running = true;
  /// Meaningful once !running: the process exit code, or 128+signal when
  /// the worker died to a signal (the shell convention, so a SIGKILLed
  /// worker reads as 137 everywhere).
  int exit_code = 0;
};

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Launch argv (argv[0] = binary path) with `env` KEY=VALUE pairs added
  /// to the inherited environment.  Returns an opaque handle >= 0, or -1
  /// if the process could not be started.
  virtual int spawn(const std::vector<std::string>& argv,
                    const std::vector<std::string>& env) = 0;

  /// Non-blocking status check.  Once a handle reports !running its status
  /// is latched and poll may be called again freely.
  virtual WorkerStatus poll(int handle) = 0;

  /// Hard-kill the worker (idempotent; no-op once it exited).
  virtual void kill_worker(int handle) = 0;
};

/// Local machine transport: fork/exec, waitpid(WNOHANG), SIGKILL.  The
/// destructor hard-kills and reaps anything still running so a dispatcher
/// that errors out never leaks worker processes.
class LocalProcessTransport : public WorkerTransport {
 public:
  ~LocalProcessTransport() override;

  int spawn(const std::vector<std::string>& argv,
            const std::vector<std::string>& env) override;
  WorkerStatus poll(int handle) override;
  void kill_worker(int handle) override;

 private:
  struct Child {
    long pid = -1;
    bool running = false;
    WorkerStatus last;
  };
  std::vector<Child> children_;
};

}  // namespace ccd::exp
