// Trace capture: the "re-run this interesting cell" path from a sweep
// report back to fully instrumented executions (the ROADMAP item ccd_sweep
// --rerun-cell exposes).
//
// Sweeps run with record_views = false and no round recording for speed;
// when a report cell looks interesting (an agreement failure, a coverage
// stall, a surprising crash count), rerun_cell() re-executes every run of
// that cell single-threaded with full ExecutionLogs.  Determinism makes
// this exact: a run's entire behaviour derives from hash(grid_seed,
// run_index), so the re-executed runs are THE runs the report aggregated,
// now with their complete Definition 11 round structure (M_r, N_r, D_r,
// W_r, decisions, crashes) captured for inspection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/sweep_grid.hpp"
#include "exp/world_factory.hpp"
#include "sim/execution_log.hpp"

namespace ccd::exp {

struct TracedRun {
  std::size_t run_index = 0;
  ScenarioSpec spec;
  RunSummary summary;
  MultihopSummary mh;
  SyncSummary sync;
  /// Primary phase log (consensus / flood / mis / the MIS phase of
  /// mis-then-consensus).  Absent only for round-sync, which has no
  /// round structure to record.
  std::optional<ExecutionLog> log;
  /// Phase-2 consensus log of mis-then-consensus (when phase 2 ran).
  std::optional<ExecutionLog> phase2_log;
};

/// Re-execute every run of one cell with record_views = true and full
/// round recording.  Single-threaded by construction (the runs of one
/// cell are a handful; determinism does not depend on scheduling anyway).
std::vector<TracedRun> rerun_cell(const SweepGrid& grid,
                                  std::size_t cell_index);

/// Full JSON dump of an ExecutionLog: per-round transmission data, advice
/// traces rendered as strings ("+" collision / "." null, "A" active / "."
/// passive), per-process views with rendered messages, decisions, crashes.
std::string execution_log_to_json(const ExecutionLog& log);

/// The --rerun-cell report: cell identity + every traced run.
std::string traced_runs_to_json(const SweepGrid& grid, std::size_t cell_index,
                                const std::vector<TracedRun>& runs);

}  // namespace ccd::exp
