// LaneExecutor: WorldFactory::run_scenario for a BLOCK of specs that differ
// only in seed, executed through the batched LaneEngine (up to kLaneWidth
// seeds in lockstep) instead of one RoundEngine per run.
//
// The contract mirrors the scalar path exactly: run_block(specs)[k] is
// byte-for-byte the ScenarioOutcome that run_scenario(specs[k]) produces --
// same component construction (same factories, same hash_mix(seed ^ salt)
// streams), same per-workload measurement loops (flood coverage / MIS
// settlement judged per round over survivors, quiesce gating, phase-2
// consensus among surviving heads), same counters.  SweepRunner relies on
// this to keep reports, perf-sidecar counter totals, and golden hashes
// identical with lanes on or off.
//
// Routing (the scalar tail):
//
//   laned            consensus/singlehop (kMatrix x kGlobal), consensus on
//                    line/ring/grid (kMatrix x kLocal), flood and mis
//                    (kCapture x kLocal), and the MIS phase of
//                    mis-then-consensus (its phase-2 consensus runs per
//                    lane through the scalar harness: the head count k --
//                    and with it n -- is seed-dependent)
//
//   scalar fallback  random-geometric topologies (the graph itself is
//                    seed-dependent, so lanes would not share adjacency),
//                    round-sync (below the round abstraction), n = 0, and
//                    any run capturing logs or views (trace capture wants
//                    the engine's round recording)
//
// eligible() is the routing predicate; callers (SweepRunner) form blocks
// only from eligible specs within one grid cell, so every spec in a block
// shares all axes but the seed.  The S mod 64 remainder of a cell simply
// arrives as a smaller block.
#pragma once

#include <vector>

#include "exp/scenario_spec.hpp"
#include "exp/world_factory.hpp"

namespace ccd::exp {

class LaneExecutor {
 public:
  /// Can this spec run through the lane path under these options?
  static bool eligible(const ScenarioSpec& spec,
                       const RunScenarioOptions& options = {});

  /// Execute a block of 1..kLaneWidth specs (all eligible, identical up to
  /// seed) in lockstep; outcome k corresponds to specs[k] and equals
  /// WorldFactory::run_scenario(specs[k], options).
  static std::vector<ScenarioOutcome> run_block(
      const std::vector<ScenarioSpec>& specs,
      const RunScenarioOptions& options = {});
};

}  // namespace ccd::exp
