#include "exp/lane_executor.hpp"

#include <cassert>

#include "consensus/checker.hpp"
#include "consensus/harness.hpp"
#include "engine/lane_engine.hpp"
#include "multihop/flood.hpp"
#include "multihop/mis.hpp"
#include "util/rng.hpp"

namespace ccd::exp {

namespace {

/// Every spec in a block must agree on the axes that fix the execution
/// structure (one shared topology, one round budget, one lockstep loop).
[[maybe_unused]] bool block_is_uniform(const std::vector<ScenarioSpec>& s) {
  for (std::size_t k = 1; k < s.size(); ++k) {
    if (s[k].workload != s[0].workload || s[k].topology != s[0].topology ||
        s[k].n != s[0].n) {
      return false;
    }
  }
  return true;
}

/// The RunSummary epilogue shared by every consensus-shaped lane: verdict
/// from the lane's log, CST surplus accounting -- the exact arithmetic of
/// run_consensus / run_consensus_on_topology.
void finish_summary(RunSummary& s, const LaneEngine& eng, std::size_t l) {
  s.result = eng.result(l);
  s.verdict = check_consensus(eng.log(l), eng.world(l).initial_values);
  if (s.cst != kNeverRound && s.verdict.last_decision_round > s.cst) {
    s.rounds_after_cst = s.verdict.last_decision_round - s.cst;
  }
}

void run_consensus_block(const std::vector<ScenarioSpec>& specs,
                         std::vector<ScenarioOutcome>& outs) {
  const ScenarioSpec& head = specs[0];
  const bool singlehop = head.topology == TopologyKind::kSingleHop;
  Topology topo = WorldFactory::make_topology(head);
  std::uint32_t diam = 0;
  bool connected = false;
  if (!singlehop) {
    const std::uint32_t d = topo.diameter();
    connected = d != Topology::kUnreachable;
    diam = connected ? d : 0;
  }

  std::vector<EngineWorld> worlds;
  worlds.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    EngineWorld ew;
    ew.world = WorldFactory::make(spec);
    ew.topology = topo;
    ew.channel = ChannelModel::kMatrix;
    ew.scope = singlehop ? CollisionScope::kGlobal : CollisionScope::kLocal;
    worlds.push_back(std::move(ew));
  }
  LaneEngine eng(std::move(worlds), LaneOptions{true});
  // CST is read after construction so it reflects substituted neutral
  // components (same reason run_consensus reads it off the Executor).
  for (std::size_t l = 0; l < specs.size(); ++l) {
    outs[l].summary.cst = eng.world(l).cst();
  }
  eng.run(WorldFactory::max_rounds(head));
  for (std::size_t l = 0; l < specs.size(); ++l) {
    ScenarioOutcome& out = outs[l];
    finish_summary(out.summary, eng, l);
    out.counters.add(eng.counters(l));
    if (!singlehop) {
      out.mh.ran = true;
      out.mh.connected = connected;
      out.mh.diameter = diam;
      out.mh.rounds_executed = eng.result(l).rounds_executed;
      out.mh.broadcasts = eng.total_broadcasts(l);
      out.mh.messages_per_node =
          head.n > 0 ? static_cast<double>(eng.total_broadcasts(l)) /
                           static_cast<double>(head.n)
                     : 0.0;
      out.mh.crashes_applied = eng.crashes_applied(l);
      out.mh.survivors = eng.num_alive(l);
    }
  }
}

/// Shared capture-channel assembly, the lane twin of make_capture_engine:
/// same component construction order per lane, same kMhLinkSalt stream.
LaneEngine make_capture_lanes(const std::vector<ScenarioSpec>& specs,
                              const Topology& topo,
                              std::vector<Round>& quiesce, bool mis) {
  const Round budget = WorldFactory::multihop_max_rounds(specs[0]);
  std::vector<EngineWorld> worlds;
  worlds.reserve(specs.size());
  quiesce.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    const std::size_t n = topo.size();
    const std::uint64_t proc_base = WorldFactory::mh_proc_seed(spec);
    EngineWorld ew;
    ew.world.processes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seed =
          hash_mix(proc_base ^ static_cast<std::uint64_t>(i));
      if (mis) {
        MisProcess::Options o;
        o.seed = seed;
        ew.world.processes.push_back(std::make_unique<MisProcess>(o));
      } else {
        FloodProcess::Options o;
        o.is_source = i == 0;
        o.policy = FloodPolicy::kCdBackoff;
        o.fresh_rounds = budget;
        o.seed = seed;
        ew.world.processes.push_back(std::make_unique<FloodProcess>(o));
      }
    }
    ew.world.cd = WorldFactory::make_detector(spec);
    ew.world.fault = WorldFactory::make_fault(spec);
    // Theorem 3 accounting: completion is only declared once the adversary
    // has no crashes pending.
    quiesce.push_back(ew.world.fault->last_crash_round());
    ew.topology = topo;
    ew.channel = ChannelModel::kCapture;
    ew.scope = CollisionScope::kLocal;
    ew.link = WorldFactory::make_link(spec);
    ew.link_seed = WorldFactory::mh_link_seed(spec);
    worlds.push_back(std::move(ew));
  }
  return LaneEngine(std::move(worlds), LaneOptions{false});
}

void finish_mh(MultihopSummary& out, const LaneEngine& eng, std::size_t l) {
  out.rounds_executed = eng.result(l).rounds_executed;
  out.broadcasts = eng.total_broadcasts(l);
  out.messages_per_node =
      eng.size() > 0 ? static_cast<double>(eng.total_broadcasts(l)) /
                           static_cast<double>(eng.size())
                     : 0.0;
  out.crashes_applied = eng.crashes_applied(l);
  out.survivors = eng.num_alive(l);
}

void run_flood_block(const std::vector<ScenarioSpec>& specs,
                     std::vector<ScenarioOutcome>& outs) {
  const Topology topo = WorldFactory::make_topology(specs[0]);
  const std::size_t n = topo.size();
  const std::uint32_t diam = topo.diameter();
  const Round budget = WorldFactory::multihop_max_rounds(specs[0]);
  for (ScenarioOutcome& out : outs) {
    out.mh.ran = true;
    out.mh.connected = diam != Topology::kUnreachable;
    out.mh.diameter = out.mh.connected ? diam : 0;
  }

  std::vector<Round> quiesce;
  LaneEngine eng = make_capture_lanes(specs, topo, quiesce, /*mis=*/false);
  for (Round r = 1; r <= budget && eng.active_mask(); ++r) {
    eng.step();
    for (std::size_t l = 0; l < specs.size(); ++l) {
      if (!eng.lane_active(l)) continue;
      // Coverage is over survivors: a copy held only by the dead serves
      // nobody.
      std::size_t covered = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (eng.alive(l, i) &&
            static_cast<FloodProcess&>(eng.process(l, i)).has_message()) {
          ++covered;
        }
      }
      outs[l].mh.covered = covered;
      if (eng.num_alive(l) > 0 && covered == eng.num_alive(l) &&
          r >= quiesce[l]) {
        outs[l].mh.full_coverage_round = r;
        eng.retire(l);
      }
    }
  }
  for (std::size_t l = 0; l < specs.size(); ++l) {
    if (eng.lane_active(l)) eng.retire(l);
    finish_mh(outs[l].mh, eng, l);
    outs[l].counters.add(eng.counters(l));
  }
}

void run_mis_block(const std::vector<ScenarioSpec>& specs,
                   std::vector<ScenarioOutcome>& outs,
                   std::vector<std::vector<bool>>* heads_out) {
  const Topology topo = WorldFactory::make_topology(specs[0]);
  const std::size_t n = topo.size();
  const std::uint32_t diam = topo.diameter();
  const Round budget = WorldFactory::multihop_max_rounds(specs[0]);
  for (ScenarioOutcome& out : outs) {
    out.mh.ran = true;
    out.mh.connected = diam != Topology::kUnreachable;
    out.mh.diameter = out.mh.connected ? diam : 0;
  }

  std::vector<Round> quiesce;
  LaneEngine eng = make_capture_lanes(specs, topo, quiesce, /*mis=*/true);
  for (Round r = 1; r <= budget && eng.active_mask(); ++r) {
    eng.step();
    for (std::size_t l = 0; l < specs.size(); ++l) {
      if (!eng.lane_active(l)) continue;
      // Settlement over survivors, only after failures cease: a crash can
      // un-dominate a node.
      bool all_settled = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (eng.alive(l, i) &&
            !static_cast<MisProcess&>(eng.process(l, i)).settled()) {
          all_settled = false;
          break;
        }
      }
      if (all_settled && r >= quiesce[l]) {
        outs[l].mh.mis_settle_round = r;
        eng.retire(l);
      }
    }
  }
  if (heads_out) heads_out->resize(specs.size());
  for (std::size_t l = 0; l < specs.size(); ++l) {
    if (eng.lane_active(l)) eng.retire(l);
    MultihopSummary& out = outs[l].mh;
    // Heads and the independence/maximality verdicts are conditioned on
    // the surviving subgraph.
    std::vector<bool> heads(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      heads[i] = eng.alive(l, i) &&
                 static_cast<MisProcess&>(eng.process(l, i)).state() ==
                     MisProcess::State::kHead;
      if (heads[i]) ++out.mis_size;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!eng.alive(l, i)) continue;
      if (heads[i]) {
        for (std::uint32_t j : topo.neighbors(i)) {
          if (heads[j]) out.mis_independent = false;
        }
      } else {
        bool dominated = false;
        for (std::uint32_t j : topo.neighbors(i)) {
          if (heads[j]) dominated = true;
        }
        if (!dominated) out.mis_maximal = false;
      }
    }
    finish_mh(out, eng, l);
    outs[l].counters.add(eng.counters(l));
    if (heads_out) (*heads_out)[l] = std::move(heads);
  }
}

}  // namespace

bool LaneExecutor::eligible(const ScenarioSpec& spec,
                            const RunScenarioOptions& options) {
  // Trace capture wants the engine's per-round recording; the lane engine
  // deliberately records none (reports never read it).
  if (options.capture_log || options.record_views) return false;
  if (spec.n == 0) return false;
  // Round-sync sits below the round abstraction entirely.
  if (spec.workload == WorkloadKind::kRoundSync) return false;
  // A random-geometric graph is seed-dependent; lanes share one topology.
  if (spec.topology == TopologyKind::kRandomGeometric) return false;
  return true;
}

std::vector<ScenarioOutcome> LaneExecutor::run_block(
    const std::vector<ScenarioSpec>& specs,
    const RunScenarioOptions& options) {
  assert(!specs.empty() && specs.size() <= kLaneWidth);
  assert(block_is_uniform(specs));
  for ([[maybe_unused]] const ScenarioSpec& spec : specs) {
    assert(eligible(spec, options));
  }
  std::vector<ScenarioOutcome> outs(specs.size());
  switch (specs[0].workload) {
    case WorkloadKind::kConsensus:
      run_consensus_block(specs, outs);
      break;
    case WorkloadKind::kFlood:
      run_flood_block(specs, outs);
      break;
    case WorkloadKind::kMis:
      run_mis_block(specs, outs, nullptr);
      break;
    case WorkloadKind::kMisThenConsensus: {
      std::vector<std::vector<bool>> heads;
      run_mis_block(specs, outs, &heads);
      // Phase 2 per lane through the scalar harness: the surviving head
      // count k fixes n, and k is seed-dependent, so lanes cannot stay in
      // lockstep past phase 1.
      for (std::size_t l = 0; l < specs.size(); ++l) {
        std::size_t k = 0;
        for (bool h : heads[l]) k += h;
        if (k > 0) {
          const ScenarioSpec sub = WorldFactory::phase2_spec(
              specs[l], static_cast<std::uint32_t>(k));
          ExecutorOptions eo;
          eo.record_views = options.record_views;
          outs[l].mh.consensus =
              run_consensus(WorldFactory::make(sub),
                            WorldFactory::max_rounds(sub), eo, nullptr,
                            &outs[l].counters);
          outs[l].summary = *outs[l].mh.consensus;
        } else {
          outs[l].mh.phase2_skipped = true;
        }
      }
      break;
    }
    case WorkloadKind::kRoundSync:
      break;  // excluded by eligible(); unreachable from SweepRunner
  }
  return outs;
}

}  // namespace ccd::exp
