#include "exp/shard/shard_runner.hpp"

#include <fstream>
#include <map>
#include <mutex>

#include "util/flat_json.hpp"
#include "obs/telemetry.hpp"

namespace ccd::exp {

namespace {

std::string checkpoint_header(const ShardSpec& shard) {
  std::string out = "{\"format\":\"ccd-shard-checkpoint-v1\"";
  out += ",\"grid_fingerprint\":\"" +
         fingerprint_to_hex(shard.grid_fingerprint);
  out += "\",\"shard_index\":" + std::to_string(shard.shard_index);
  out += ",\"shard_count\":" + std::to_string(shard.shard_count);
  out += ",\"ts_ms\":" + std::to_string(obs::wall_clock_ms());
  out += "}";
  return out;
}

/// Splice heartbeat fields (wall-clock stamp, completing worker) into a
/// cell marker before its closing brace.  Pure observability: the reader
/// looks up known keys only, so resume ignores them -- and old checkpoints
/// without them load the same way.  Replayed cells (rewritten on resume,
/// not re-executed) carry no worker.
std::string with_heartbeat(std::string marker, const std::uint32_t* worker) {
  marker.pop_back();  // cell_aggregate_to_json yields one flat object
  marker += ",\"ts_ms\":" + std::to_string(obs::wall_clock_ms());
  if (worker) marker += ",\"worker\":" + std::to_string(*worker);
  marker += "}";
  return marker;
}

/// Parse an existing checkpoint file into completed cell aggregates.
/// Trailing partial lines (the crash case: the process died mid-write) are
/// tolerated and dropped; anything else malformed is an error.
bool load_checkpoint(const ShardSpec& shard, const std::string& path,
                     std::map<std::size_t, CellAggregate>& completed,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;  // no file yet: nothing completed
  std::string line;
  if (!std::getline(in, line)) return true;  // empty file
  {
    auto flat = jsonu::FlatJson::parse(line);
    const std::string* format = flat ? flat->find("format") : nullptr;
    if (!format || *format != "ccd-shard-checkpoint-v1") {
      if (error) {
        *error = "checkpoint " + path +
                 ": missing or unknown header (expected "
                 "ccd-shard-checkpoint-v1)";
      }
      return false;
    }
    const std::string* fp = flat->find("grid_fingerprint");
    if (!fp || *fp != fingerprint_to_hex(shard.grid_fingerprint)) {
      if (error) {
        *error = "checkpoint " + path + ": grid fingerprint " +
                 (fp ? *fp : std::string("<missing>")) +
                 " does not match this shard's grid " +
                 fingerprint_to_hex(shard.grid_fingerprint) +
                 " (stale checkpoint from another grid?)";
      }
      return false;
    }
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string cell_error;
    auto cell = cell_aggregate_from_json(shard.grid, line, &cell_error);
    if (!cell) {
      // A final partial line is the expected crash artifact; only the LAST
      // line gets that amnesty.
      if (in.peek() == std::ifstream::traits_type::eof()) break;
      if (error) {
        *error = "checkpoint " + path + " line " + std::to_string(line_no) +
                 ": " + cell_error;
      }
      return false;
    }
    if (!shard.owns_cell(cell->cell_index)) {
      if (error) {
        *error = "checkpoint " + path + " line " + std::to_string(line_no) +
                 ": cell " + std::to_string(cell->cell_index) +
                 " is not owned by shard " +
                 std::to_string(shard.shard_index) + "/" +
                 std::to_string(shard.shard_count);
      }
      return false;
    }
    completed[cell->cell_index] = std::move(*cell);
  }
  return true;
}

}  // namespace

std::optional<ShardReport> run_shard(const ShardSpec& shard,
                                     const ShardRunOptions& options,
                                     std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ShardReport> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (shard.grid.seeds_per_cell == 0) {
    return fail("shard grid has seeds_per_cell 0: no runs to execute");
  }

  const std::vector<std::size_t> owned = shard.cell_indices();
  std::map<std::size_t, CellAggregate> completed;
  if (options.resume && !options.checkpoint_path.empty()) {
    if (!load_checkpoint(shard, options.checkpoint_path, completed, error)) {
      return std::nullopt;
    }
  }

  // Remaining cells and their run indices.  Runs are enumerated in global
  // run-index order, so the per-cell fold order matches a full-grid run.
  const std::uint32_t spc = shard.grid.seeds_per_cell;
  std::vector<std::size_t> remaining;
  std::vector<std::size_t> run_indices;
  for (std::size_t c : owned) {
    if (completed.count(c)) continue;
    remaining.push_back(c);
    for (std::uint32_t s = 0; s < spc; ++s) {
      run_indices.push_back(c * spc + s);
    }
  }

  // The checkpoint is rewritten whole on open (header + every completed
  // cell), not appended to: a torn final line from a crash would otherwise
  // glue onto the next marker and poison the file for the resume after
  // this one.  Rewriting also heals the torn line itself.
  std::ofstream checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint.open(options.checkpoint_path,
                    std::ios::binary | std::ios::trunc);
    if (!checkpoint) {
      return fail("cannot write checkpoint " + options.checkpoint_path);
    }
    checkpoint << checkpoint_header(shard) << "\n";
    for (const auto& [c, cell] : completed) {
      (void)c;
      checkpoint << with_heartbeat(cell_aggregate_to_json(cell), nullptr)
                 << "\n";
    }
    checkpoint << std::flush;
  }

  // Per-cell completion tracking: when a cell's last seed lands, fold its
  // records (slot order = run order, so the fold is deterministic) and
  // emit the checkpoint marker.  The mutex serializes marker writes; cell
  // ORDER in the file is completion order, which is fine -- resume keys by
  // cell index, and the report sorts below.
  std::map<std::size_t, std::vector<const RunRecord*>> slots;
  std::map<std::size_t, std::uint32_t> pending;
  for (std::size_t c : remaining) {
    slots[c].assign(spc, nullptr);
    pending[c] = spc;
  }
  std::mutex mu;
  std::map<std::size_t, CellAggregate> fresh_cells;
  SweepOptions sweep = options.sweep;
  sweep.on_record = [&](const RunRecord& record) {
    if (options.sweep.on_record) options.sweep.on_record(record);
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t c = record.cell_index;
    slots[c][record.run_index - c * spc] = &record;
    if (--pending[c] > 0) return;
    CellAggregate cell = empty_cell_aggregate(shard.grid, c);
    for (const RunRecord* r : slots[c]) accumulate_run(cell, *r);
    obs::Telemetry::thread_sink().add(obs::Counter::kCellsCompleted, 1);
    if (checkpoint.is_open()) {
      checkpoint << with_heartbeat(cell_aggregate_to_json(cell),
                                   &record.perf.worker)
                 << "\n"
                 << std::flush;
    }
    fresh_cells[c] = std::move(cell);
  };

  // The records vector outlives the pool (slots hold pointers into it).
  run_subset(shard.grid, run_indices, sweep);

  ShardReport report;
  report.shard = shard;
  report.cells.reserve(owned.size());
  for (std::size_t c : owned) {
    auto it = completed.find(c);
    if (it != completed.end()) {
      report.cells.push_back(std::move(it->second));
    } else {
      report.cells.push_back(std::move(fresh_cells.at(c)));
    }
  }
  // Stamp the memory-wall metric into the sidecar-to-be: how many bytes
  // the aggregator actually retained for this shard's cells.
  if (sweep.perf) {
    sweep.perf->stats_bytes_retained = stats_bytes_retained(report.cells);
  }
  return report;
}

}  // namespace ccd::exp
