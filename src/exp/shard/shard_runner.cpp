#include "exp/shard/shard_runner.hpp"

#include <fstream>
#include <map>
#include <mutex>

#include "exp/shard/checkpoint.hpp"
#include "obs/telemetry.hpp"

namespace ccd::exp {

std::optional<ShardReport> run_shard(const ShardSpec& shard,
                                     const ShardRunOptions& options,
                                     std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ShardReport> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (shard.grid.seeds_per_cell == 0) {
    return fail("shard grid has seeds_per_cell 0: no runs to execute");
  }

  const std::vector<std::size_t> owned = shard.cell_indices();
  std::map<std::size_t, CellAggregate> completed;
  if (options.resume && !options.checkpoint_path.empty()) {
    CheckpointContents contents;
    if (!load_checkpoint(shard, options.checkpoint_path, &contents, error)) {
      return std::nullopt;
    }
    completed = std::move(contents.cells);
  }

  // Remaining cells and their run indices.  Runs are enumerated in global
  // run-index order, so the per-cell fold order matches a full-grid run.
  const std::uint32_t spc = shard.grid.seeds_per_cell;
  std::vector<std::size_t> remaining;
  std::vector<std::size_t> run_indices;
  for (std::size_t c : owned) {
    if (completed.count(c)) continue;
    remaining.push_back(c);
    for (std::uint32_t s = 0; s < spc; ++s) {
      run_indices.push_back(c * spc + s);
    }
  }

  // The checkpoint is rewritten whole on open (header + every completed
  // cell), not appended to: a torn final line from a crash would otherwise
  // glue onto the next marker and poison the file for the resume after
  // this one.  Rewriting also heals the torn line itself.
  std::ofstream checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint.open(options.checkpoint_path,
                    std::ios::binary | std::ios::trunc);
    if (!checkpoint) {
      return fail("cannot write checkpoint " + options.checkpoint_path);
    }
    checkpoint << checkpoint_header(shard) << "\n";
    for (const auto& [c, cell] : completed) {
      (void)c;
      checkpoint << checkpoint_cell_marker(cell, nullptr) << "\n";
    }
    checkpoint << std::flush;
  }

  // Per-cell completion tracking: when a cell's last seed lands, fold its
  // records (slot order = run order, so the fold is deterministic) and
  // emit the checkpoint marker.  The mutex serializes marker writes; cell
  // ORDER in the file is completion order, which is fine -- resume keys by
  // cell index, and the report sorts below.
  std::map<std::size_t, std::vector<const RunRecord*>> slots;
  std::map<std::size_t, std::uint32_t> pending;
  for (std::size_t c : remaining) {
    slots[c].assign(spc, nullptr);
    pending[c] = spc;
  }
  std::mutex mu;
  std::map<std::size_t, CellAggregate> fresh_cells;
  SweepOptions sweep = options.sweep;
  sweep.on_record = [&](const RunRecord& record) {
    if (options.sweep.on_record) options.sweep.on_record(record);
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t c = record.cell_index;
    slots[c][record.run_index - c * spc] = &record;
    if (--pending[c] > 0) return;
    CellAggregate cell = empty_cell_aggregate(shard.grid, c);
    for (const RunRecord* r : slots[c]) accumulate_run(cell, *r);
    obs::Telemetry::thread_sink().add(obs::Counter::kCellsCompleted, 1);
    if (checkpoint.is_open()) {
      checkpoint << checkpoint_cell_marker(cell, &record.perf.worker) << "\n"
                 << std::flush;
    }
    fresh_cells[c] = std::move(cell);
  };

  // The records vector outlives the pool (slots hold pointers into it).
  run_subset(shard.grid, run_indices, sweep);

  ShardReport report;
  report.shard = shard;
  report.cells.reserve(owned.size());
  for (std::size_t c : owned) {
    auto it = completed.find(c);
    if (it != completed.end()) {
      report.cells.push_back(std::move(it->second));
    } else {
      report.cells.push_back(std::move(fresh_cells.at(c)));
    }
  }
  // Stamp the memory-wall metric into the sidecar-to-be: how many bytes
  // the aggregator actually retained for this shard's cells.
  if (sweep.perf) {
    sweep.perf->stats_bytes_retained = stats_bytes_retained(report.cells);
  }
  return report;
}

}  // namespace ccd::exp
