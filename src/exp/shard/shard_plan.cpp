#include "exp/shard/shard_plan.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/flat_json.hpp"

namespace ccd::exp {

const char* to_string(ShardMode m) {
  switch (m) {
    case ShardMode::kContiguous: return "contiguous";
    case ShardMode::kStrided: return "strided";
    case ShardMode::kExplicit: return "explicit";
  }
  return "?";
}

std::optional<ShardMode> parse_shard_mode(const std::string& s) {
  if (s == "contiguous") return ShardMode::kContiguous;
  if (s == "strided") return ShardMode::kStrided;
  if (s == "explicit") return ShardMode::kExplicit;
  return std::nullopt;
}

std::string fingerprint_to_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> fingerprint_from_hex(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t fp = 0;
  for (char c : s) {
    fp <<= 4;
    if (c >= '0' && c <= '9') {
      fp |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      fp |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return fp;
}

std::vector<std::size_t> ShardSpec::cell_indices() const {
  if (mode == ShardMode::kExplicit) return cells;
  std::vector<std::size_t> owned;
  const std::size_t n = grid.num_cells();
  if (shard_count == 0) return owned;
  if (mode == ShardMode::kContiguous) {
    const std::size_t begin = shard_index * n / shard_count;
    const std::size_t end = (shard_index + 1) * n / shard_count;
    owned.reserve(end - begin);
    for (std::size_t c = begin; c < end; ++c) owned.push_back(c);
  } else {
    for (std::size_t c = shard_index; c < n; c += shard_count) {
      owned.push_back(c);
    }
  }
  return owned;
}

bool ShardSpec::owns_cell(std::size_t cell) const {
  const std::size_t n = grid.num_cells();
  if (cell >= n) return false;
  if (mode == ShardMode::kExplicit) {
    return std::binary_search(cells.begin(), cells.end(), cell);
  }
  if (shard_count == 0) return false;
  if (mode == ShardMode::kStrided) return cell % shard_count == shard_index;
  return cell >= shard_index * n / shard_count &&
         cell < (shard_index + 1) * n / shard_count;
}

std::string ShardSpec::to_json() const {
  std::string out = "{\"format\":\"ccd-shard-spec-v1\"";
  out += ",\"shard_index\":" + std::to_string(shard_index);
  out += ",\"shard_count\":" + std::to_string(shard_count);
  out += ",\"mode\":\"";
  out += to_string(mode);
  out += "\",\"grid_fingerprint\":\"" + fingerprint_to_hex(grid_fingerprint);
  out += "\",\"grid\":" + grid.to_json();
  if (mode == ShardMode::kExplicit) {
    out += ",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(cells[i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::optional<ShardSpec> ShardSpec::from_json(const std::string& json,
                                              std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ShardSpec> {
    if (error) *error = message;
    return std::nullopt;
  };
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) return fail("shard spec is not a flat JSON object");

  const std::string* format = flat->find("format");
  if (!format || *format != "ccd-shard-spec-v1") {
    return fail("missing or unknown \"format\" (expected ccd-shard-spec-v1)");
  }

  ShardSpec spec;
  auto read_size = [&](const char* key, std::size_t& field) {
    const std::string* raw = flat->find(key);
    if (!raw) return std::string("missing key '") + key + "'";
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw->c_str(), &end, 10);
    if (!end || *end != '\0' || raw->empty() || (*raw)[0] == '-') {
      return "bad value '" + *raw + "' for key '" + key + "'";
    }
    field = static_cast<std::size_t>(v);
    return std::string();
  };
  if (auto e = read_size("shard_index", spec.shard_index); !e.empty()) {
    return fail(e);
  }
  if (auto e = read_size("shard_count", spec.shard_count); !e.empty()) {
    return fail(e);
  }
  if (spec.shard_count == 0) return fail("shard_count must be >= 1");
  if (const std::string* raw = flat->find("mode")) {
    auto mode = parse_shard_mode(*raw);
    if (!mode) {
      return fail("bad value '" + *raw +
                  "' for key 'mode' (expected contiguous, strided or "
                  "explicit)");
    }
    spec.mode = *mode;
  } else {
    return fail("missing key 'mode'");
  }
  // Derived modes partition by index arithmetic, so the index must name a
  // real shard.  For explicit specs shard_index is a free-form batch id.
  if (spec.mode != ShardMode::kExplicit &&
      spec.shard_index >= spec.shard_count) {
    return fail("shard_index " + std::to_string(spec.shard_index) +
                " out of range for shard_count " +
                std::to_string(spec.shard_count));
  }

  const std::string* fp_raw = flat->find("grid_fingerprint");
  if (!fp_raw) return fail("missing key 'grid_fingerprint'");
  auto fp = fingerprint_from_hex(*fp_raw);
  if (!fp) {
    return fail("bad value '" + *fp_raw +
                "' for key 'grid_fingerprint' (expected 16 hex digits)");
  }
  spec.grid_fingerprint = *fp;

  const std::string* grid_raw = flat->find("grid");
  if (!grid_raw) return fail("missing key 'grid'");
  std::string grid_error;
  auto grid = SweepGrid::from_json(*grid_raw, &grid_error);
  if (!grid) return fail("grid: " + grid_error);
  spec.grid = *grid;

  // Stale-shard rejection: the embedded fingerprint must match the grid it
  // travels with.  A spec whose grid was edited after planning (or planned
  // by an incompatible build) is refused here, before any cell runs.
  if (spec.grid.fingerprint() != spec.grid_fingerprint) {
    return fail("grid fingerprint mismatch: file says " + *fp_raw +
                " but the embedded grid hashes to " +
                fingerprint_to_hex(spec.grid.fingerprint()) +
                " (stale or hand-edited shard spec?)");
  }

  const std::string* cells_raw = flat->find("cells");
  if (spec.mode == ShardMode::kExplicit) {
    if (!cells_raw) return fail("mode explicit needs a 'cells' array");
    auto items = jsonu::parse_array_items(*cells_raw);
    if (!items) return fail("'cells' is not a JSON array");
    spec.cells.reserve(items->size());
    for (const std::string& item : *items) {
      char* end = nullptr;
      const unsigned long long c = std::strtoull(item.c_str(), &end, 10);
      if (!end || *end != '\0' || item.empty() || item[0] == '-') {
        return fail("bad cell '" + item + "' in 'cells'");
      }
      if (c >= spec.grid.num_cells()) {
        return fail("cell " + item + " out of range (grid has " +
                    std::to_string(spec.grid.num_cells()) + " cells)");
      }
      if (!spec.cells.empty() && spec.cells.back() >= c) {
        return fail("'cells' must be strictly ascending (saw " +
                    std::to_string(spec.cells.back()) + " then " + item +
                    ")");
      }
      spec.cells.push_back(static_cast<std::size_t>(c));
    }
  } else if (cells_raw) {
    return fail("'cells' is only valid with mode explicit");
  }
  return spec;
}

std::vector<ShardSpec> ShardPlanner::plan(const SweepGrid& grid,
                                          std::size_t count, ShardMode mode) {
  if (count == 0) count = 1;
  std::vector<ShardSpec> shards;
  shards.reserve(count);
  const std::uint64_t fp = grid.fingerprint();
  for (std::size_t i = 0; i < count; ++i) {
    ShardSpec spec;
    spec.shard_index = i;
    spec.shard_count = count;
    spec.mode = mode;
    spec.grid_fingerprint = fp;
    spec.grid = grid;
    shards.push_back(std::move(spec));
  }
  return shards;
}

ShardSpec ShardPlanner::plan_cells(const SweepGrid& grid,
                                   std::vector<std::size_t> cells,
                                   std::size_t batch_id) {
  ShardSpec spec;
  spec.shard_index = batch_id;
  spec.shard_count = 1;
  spec.mode = ShardMode::kExplicit;
  spec.grid_fingerprint = grid.fingerprint();
  spec.grid = grid;
  spec.cells = std::move(cells);
  return spec;
}

}  // namespace ccd::exp
