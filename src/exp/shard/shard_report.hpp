// Shard reports: the partial result a shard worker emits, and the merge
// that recombines K of them into the exact full-grid aggregates.
//
// A report serializes each owned cell's CellAggregate with its statistics
// in full -- sparse histogram bins for integer-valued metrics, raw sample
// buffers (lossless shortest-round-trip doubles) for the real-valued
// opt-ins -- not as pre-rendered summaries.  ccd_merge rebuilds every
// Stats exactly (bin addition / add() replay) and hands the merged cells
// to the same aggregates_to_json / aggregates_to_csv renderers ccd_sweep
// uses.  The merged report is byte-identical to a single-process
// full-grid run; a ctest target and a CI smoke step both enforce this.
//
// Format history: "ccd-shard-report-v2" (current) encodes each statistic
// as {"h":[key,count,...]} or {"raw":[...]}; the legacy v1 format
// (bare sample arrays) is still read back exactly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/shard/shard_plan.hpp"

namespace ccd::exp {

struct ShardReport {
  /// Identity: which shard of which plan produced this, over which grid.
  ShardSpec shard;
  /// Aggregates for exactly the cells the shard owns, ascending cell index.
  std::vector<CellAggregate> cells;

  /// "ccd-shard-report-v2" JSON.
  std::string to_json() const;
  /// Accepts v2 and the legacy v1 format.
  static std::optional<ShardReport> from_json(const std::string& json,
                                              std::string* error = nullptr);
};

/// One cell's aggregate as a flat JSON object (counters + per-statistic
/// histogram/raw encodings).  Exposed for the checkpoint file, which is a
/// JSONL stream of these.
std::string cell_aggregate_to_json(const CellAggregate& cell);
/// Inverse; the spec member is NOT serialized (cell identity is derived
/// from the grid at merge time), so `grid` supplies it.
std::optional<CellAggregate> cell_aggregate_from_json(const SweepGrid& grid,
                                                      const std::string& json,
                                                      std::string* error);

struct MergeResult {
  SweepGrid grid;
  std::vector<CellAggregate> cells;  ///< all cells, ascending, exact
};

/// Validate and merge shard reports into full-grid aggregates.  Every
/// failure is a keyed, human-debuggable error: fingerprint mismatches name
/// both prints and the offending shard, coverage failures list the missing
/// cell ranges, duplicate cells name both owners.  Reports may arrive in
/// any order; shards from DIFFERENT plans of the same grid (e.g. a 3-way
/// and a 4-way split) merge fine as long as the union covers every cell
/// exactly once.
std::optional<MergeResult> merge_shard_reports(
    const std::vector<ShardReport>& reports, std::string* error = nullptr);

}  // namespace ccd::exp
