#include "exp/shard/checkpoint.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/telemetry.hpp"
#include "util/flat_json.hpp"

namespace ccd::exp {

namespace {

/// ts_ms from an already-parsed checkpoint line, 0 if absent/bad.
std::uint64_t heartbeat_of(const jsonu::FlatJson& flat) {
  const std::string* ts = flat.find("ts_ms");
  if (!ts) return 0;
  char* end = nullptr;
  const std::uint64_t ts_ms = std::strtoull(ts->c_str(), &end, 10);
  return (end && *end == '\0') ? ts_ms : 0;
}

}  // namespace

std::string checkpoint_header(const ShardSpec& shard) {
  std::string out = "{\"format\":\"ccd-shard-checkpoint-v1\"";
  out += ",\"grid_fingerprint\":\"" +
         fingerprint_to_hex(shard.grid_fingerprint);
  out += "\",\"shard_index\":" + std::to_string(shard.shard_index);
  out += ",\"shard_count\":" + std::to_string(shard.shard_count);
  out += ",\"ts_ms\":" + std::to_string(obs::wall_clock_ms());
  out += "}";
  return out;
}

std::string checkpoint_cell_marker(const CellAggregate& cell,
                                   const std::uint32_t* worker) {
  std::string marker = cell_aggregate_to_json(cell);
  marker.pop_back();  // cell_aggregate_to_json yields one flat object
  marker += ",\"ts_ms\":" + std::to_string(obs::wall_clock_ms());
  if (worker) marker += ",\"worker\":" + std::to_string(*worker);
  marker += "}";
  return marker;
}

bool load_checkpoint(const ShardSpec& shard, const std::string& path,
                     CheckpointContents* out, std::string* error) {
  *out = CheckpointContents{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->missing = true;
    return true;  // no file yet: nothing completed
  }
  std::string line;
  if (!std::getline(in, line)) return true;  // empty file
  {
    auto flat = jsonu::FlatJson::parse(line);
    if (!flat) {
      // A header torn mid-write is the first-write crash artifact; it gets
      // the same amnesty as a torn marker -- but only when it really is
      // the file's final line.  Anything after it means the file was never
      // a checkpoint.
      if (in.peek() == std::ifstream::traits_type::eof()) {
        out->torn_tail = true;
        return true;
      }
      if (error) {
        *error = "checkpoint " + path +
                 ": unparseable header with content after it (not a "
                 "checkpoint file?)";
      }
      return false;
    }
    const std::string* format = flat->find("format");
    if (!format || *format != "ccd-shard-checkpoint-v1") {
      if (error) {
        *error = "checkpoint " + path +
                 ": missing or unknown header (expected "
                 "ccd-shard-checkpoint-v1)";
      }
      return false;
    }
    const std::string* fp = flat->find("grid_fingerprint");
    if (!fp || *fp != fingerprint_to_hex(shard.grid_fingerprint)) {
      if (error) {
        *error = "checkpoint " + path + ": grid fingerprint " +
                 (fp ? *fp : std::string("<missing>")) +
                 " does not match this shard's grid " +
                 fingerprint_to_hex(shard.grid_fingerprint) +
                 " (stale checkpoint from another grid?)";
      }
      return false;
    }
    out->last_ts_ms = std::max(out->last_ts_ms, heartbeat_of(*flat));
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string cell_error;
    auto cell = cell_aggregate_from_json(shard.grid, line, &cell_error);
    if (!cell) {
      // A final partial line is the expected crash artifact; only the LAST
      // line gets that amnesty.
      if (in.peek() == std::ifstream::traits_type::eof()) {
        out->torn_tail = true;
        break;
      }
      if (error) {
        *error = "checkpoint " + path + " line " + std::to_string(line_no) +
                 ": " + cell_error;
      }
      return false;
    }
    if (!shard.owns_cell(cell->cell_index)) {
      if (error) {
        *error = "checkpoint " + path + " line " + std::to_string(line_no) +
                 ": cell " + std::to_string(cell->cell_index) +
                 " is not owned by shard " +
                 std::to_string(shard.shard_index) + "/" +
                 std::to_string(shard.shard_count);
      }
      return false;
    }
    if (auto flat = jsonu::FlatJson::parse(line)) {
      out->last_ts_ms = std::max(out->last_ts_ms, heartbeat_of(*flat));
    }
    out->cells[cell->cell_index] = std::move(*cell);
  }
  return true;
}

bool tail_checkpoint(const std::string& path,
                     std::vector<std::size_t>* cells_done,
                     std::uint64_t* last_ts_ms) {
  if (cells_done) cells_done->clear();
  if (last_ts_ms) *last_ts_ms = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto flat = jsonu::FlatJson::parse(line);
    if (!flat) continue;  // mid-append torn line: skip, it will heal
    if (last_ts_ms) *last_ts_ms = std::max(*last_ts_ms, heartbeat_of(*flat));
    const std::string* cell_raw = flat->find("cell");
    if (!cell_raw || !cells_done) continue;
    char* end = nullptr;
    const unsigned long long c = std::strtoull(cell_raw->c_str(), &end, 10);
    if (end && *end == '\0' && !cell_raw->empty()) {
      cells_done->push_back(static_cast<std::size_t>(c));
    }
  }
  return true;
}

}  // namespace ccd::exp
