// Shard checkpoint files: the JSONL stream a worker writes as cells
// complete, read back by resume, by `ccd_merge --checkpoint` heartbeat
// inspection, and by the dispatcher when it harvests a dead worker's
// partial progress before re-queueing the rest of its batch.
//
// Layout: one header line ("ccd-shard-checkpoint-v1", grid fingerprint,
// shard identity, wall-clock stamp) then one cell-aggregate line per
// COMPLETED cell, each carrying a ts_ms heartbeat and the completing
// worker thread.  The file is rewritten whole at worker start and appended
// per cell after that, so the only malformed content a crash can produce
// is a torn FINAL line -- possibly the header itself when the worker died
// inside its very first write.  Loading forgives exactly that: a torn tail
// (including a torn lone header) drops silently; malformed content
// anywhere else is a hard, keyed error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/shard/shard_report.hpp"

namespace ccd::exp {

/// Header line for `shard`'s checkpoint, stamped with the current wall
/// clock (the first heartbeat: a worker that never completes a cell still
/// proves liveness at start).
std::string checkpoint_header(const ShardSpec& shard);

/// One completed cell as a checkpoint line: the cell aggregate with
/// heartbeat fields (ts_ms, completing worker) spliced in before the
/// closing brace.  Pure observability -- the reader looks up known keys
/// only, so replayed cells (worker == nullptr) load identically.
std::string checkpoint_cell_marker(const CellAggregate& cell,
                                   const std::uint32_t* worker);

/// What a checkpoint file held when loaded.
struct CheckpointContents {
  /// Completed cells, keyed by cell index; bit-identical to the worker's
  /// accumulator state at write time.
  std::map<std::size_t, CellAggregate> cells;
  /// Newest ts_ms across the header and every marker (0 if none parsed).
  std::uint64_t last_ts_ms = 0;
  /// A torn final line (crash artifact) was dropped.
  bool torn_tail = false;
  /// No file existed at `path` -- nothing completed, not an error.
  bool missing = false;
};

/// Load `path`, validating the header against `shard` (format + grid
/// fingerprint) and every marker's cell against shard ownership.  Torn
/// final lines -- including a header torn mid-write -- are forgiven and
/// reported via torn_tail; every other malformation fails with a keyed
/// message in *error.  A missing file is success with missing = true.
bool load_checkpoint(const ShardSpec& shard, const std::string& path,
                     CheckpointContents* out, std::string* error);

/// Lenient progress probe for live tailing: which cells have markers, and
/// the newest heartbeat seen.  Unparseable lines are skipped (the file is
/// mid-append), no ownership or fingerprint validation happens, and the
/// aggregates are not reconstructed -- this is cheap enough to call every
/// dispatcher poll tick.  False only if the file exists but cannot be
/// opened.
bool tail_checkpoint(const std::string& path,
                     std::vector<std::size_t>* cells_done,
                     std::uint64_t* last_ts_ms);

}  // namespace ccd::exp
