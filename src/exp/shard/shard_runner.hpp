// Shard worker execution: run exactly one shard's cells under the global
// hash(grid_seed, run_index) seed stream and produce its ShardReport, with
// optional per-cell checkpoint markers for resume-after-crash.
//
// The checkpoint file is append-only JSONL: a header line naming the grid
// fingerprint and shard identity, then one cell-aggregate line per
// COMPLETED cell, written the moment the cell's last seed finishes.  A
// worker killed mid-shard restarts with resume = true, replays the
// completed cells from the file (bit-identical -- samples are serialized
// losslessly in fold order), and runs only the remainder.
#pragma once

#include <optional>
#include <string>

#include "exp/shard/shard_report.hpp"
#include "exp/sweep_runner.hpp"

namespace ccd::exp {

struct ShardRunOptions {
  SweepOptions sweep;           ///< threads / record_views / progress
  std::string checkpoint_path;  ///< empty = no checkpointing
  bool resume = false;          ///< load completed cells from the file first
};

/// Execute the shard and return its report (cells ascending).  nullopt on
/// checkpoint I/O or validation failure (stale fingerprint, malformed
/// lines) with a keyed message in *error; execution itself cannot fail.
std::optional<ShardReport> run_shard(const ShardSpec& shard,
                                     const ShardRunOptions& options = {},
                                     std::string* error = nullptr);

}  // namespace ccd::exp
