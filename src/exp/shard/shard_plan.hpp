// ShardPlanner: deterministically partition a SweepGrid's cells into K
// self-contained shard specs for multi-process / multi-host execution.
//
// A shard spec carries everything a worker needs -- the full grid (so the
// hash(grid_seed, run_index) seed stream is reproduced exactly), the cell
// subset it owns, and the grid fingerprint that makes stale shard files
// unmergeable by construction.  Cells, not runs, are the partition unit:
// every cell's seeds stay together, so per-cell aggregates computed by a
// shard are bit-identical to the same cells inside a full-grid run and the
// merged report needs no cross-shard statistics arithmetic beyond the
// exact Stats/Aggregate merge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/sweep_grid.hpp"

namespace ccd::exp {

/// How cells map to shards.  kContiguous gives shard i the balanced range
/// [floor(i*N/K), floor((i+1)*N/K)) -- cache-friendly and trivially
/// describable; kStrided gives it {c : c mod K == i} -- load-balancing
/// when cell cost varies systematically along the enumeration order.
/// kExplicit carries the owned cells verbatim: the dispatcher's dynamic
/// batches are specs like any other, so workers, checkpoints and the merge
/// validation need no second code path.
enum class ShardMode : std::uint8_t { kContiguous, kStrided, kExplicit };

const char* to_string(ShardMode m);
std::optional<ShardMode> parse_shard_mode(const std::string& s);

struct ShardSpec {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  ShardMode mode = ShardMode::kContiguous;
  /// Fingerprint of `grid` at planning time; from_json re-derives the
  /// grid's fingerprint and rejects the file on mismatch (a hand-edited or
  /// stale shard must not run, let alone merge).
  std::uint64_t grid_fingerprint = 0;
  SweepGrid grid;
  /// kExplicit only: the owned cells, strictly ascending.  For the derived
  /// modes this stays empty and ownership is pure index arithmetic.  For
  /// explicit specs shard_index is a batch/assignment id (unique per spec
  /// the dispatcher hands out) and shard_count is not meaningful.
  std::vector<std::size_t> cells;

  /// The cells this shard owns, ascending.  May be empty (K > num_cells):
  /// an empty shard runs nothing and contributes nothing at merge time,
  /// which is still an exact merge.
  std::vector<std::size_t> cell_indices() const;
  bool owns_cell(std::size_t cell) const;

  /// Self-contained shard JSON ("ccd-shard-spec-v1").
  std::string to_json() const;
  static std::optional<ShardSpec> from_json(const std::string& json,
                                            std::string* error = nullptr);
};

class ShardPlanner {
 public:
  /// Partition `grid` into `count` shards (count >= 1) covering every cell
  /// exactly once.  Deterministic: same (grid, count, mode) -> same specs.
  static std::vector<ShardSpec> plan(const SweepGrid& grid, std::size_t count,
                                     ShardMode mode = ShardMode::kContiguous);

  /// One explicit-cell spec owning exactly `cells` (must be strictly
  /// ascending and in range).  `batch_id` lands in shard_index so every
  /// assignment the dispatcher writes is distinguishable in checkpoints
  /// and error messages.
  static ShardSpec plan_cells(const SweepGrid& grid,
                              std::vector<std::size_t> cells,
                              std::size_t batch_id);
};

/// 16-hex-digit rendering used for fingerprints in shard JSON (readable in
/// error messages, greppable across shard files).
std::string fingerprint_to_hex(std::uint64_t fp);
std::optional<std::uint64_t> fingerprint_from_hex(const std::string& s);

}  // namespace ccd::exp
