#include "exp/shard/shard_report.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/flat_json.hpp"

namespace ccd::exp {

namespace {

// Field tables keep the serializer and parser in lockstep: a counter or
// statistic added to CellAggregate only needs one entry here to flow
// through shard reports, checkpoints and the merge.
struct CounterField {
  const char* key;
  std::size_t CellAggregate::* member;
};
constexpr CounterField kCounters[] = {
    {"runs", &CellAggregate::runs},
    {"solved", &CellAggregate::solved},
    {"agreement_failures", &CellAggregate::agreement_failures},
    {"validity_failures", &CellAggregate::validity_failures},
    {"termination_failures", &CellAggregate::termination_failures},
    {"crashed_processes", &CellAggregate::crashed_processes},
    {"mh_runs", &CellAggregate::mh_runs},
    {"disconnected", &CellAggregate::disconnected},
    {"full_coverage", &CellAggregate::full_coverage},
    {"mis_violations", &CellAggregate::mis_violations},
    {"mh_crashes_applied", &CellAggregate::mh_crashes_applied},
    {"phase2_skipped", &CellAggregate::phase2_skipped},
    {"sync_runs", &CellAggregate::sync_runs},
    {"sync_bound_violations", &CellAggregate::sync_bound_violations},
};

// (The Stats members use the shared cell_stats_fields() table from
// aggregator.hpp, so the dist export and this codec can never drift.)

/// "12" or "3..17" (inclusive) range rendering for coverage errors.
std::string render_ranges(const std::vector<std::size_t>& cells) {
  std::string out;
  std::size_t i = 0;
  while (i < cells.size()) {
    std::size_t j = i;
    while (j + 1 < cells.size() && cells[j + 1] == cells[j] + 1) ++j;
    if (!out.empty()) out += ", ";
    out += std::to_string(cells[i]);
    if (j > i) out += ".." + std::to_string(cells[j]);
    i = j + 1;
  }
  return out;
}

}  // namespace

std::string cell_aggregate_to_json(const CellAggregate& cell) {
  std::string out = "{\"cell\":" + std::to_string(cell.cell_index);
  for (const CounterField& f : kCounters) {
    out += ",\"";
    out += f.key;
    out += "\":" + std::to_string(cell.*(f.member));
  }
  for (const CellStatsField& f : cell_stats_fields()) {
    out += ",\"";
    out += f.name;
    out += "\":";
    // v2 encoding: {"h":[key,count,...]} for histogram-mode statistics
    // (the common case -- every count-like metric), {"raw":[...]} for the
    // real-valued opt-ins.  Both are exact.
    out += stats_to_json(cell.*(f.member));
  }
  out += "}";
  return out;
}

std::optional<CellAggregate> cell_aggregate_from_json(const SweepGrid& grid,
                                                      const std::string& json,
                                                      std::string* error) {
  auto fail = [&](const std::string& message)
      -> std::optional<CellAggregate> {
    if (error) *error = message;
    return std::nullopt;
  };
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) return fail("cell aggregate is not a flat JSON object");

  const std::string* cell_raw = flat->find("cell");
  if (!cell_raw) return fail("cell aggregate missing key 'cell'");
  char* end = nullptr;
  const unsigned long long c = std::strtoull(cell_raw->c_str(), &end, 10);
  if (!end || *end != '\0' || cell_raw->empty() ||
      (*cell_raw)[0] == '-') {  // strtoull would silently wrap negatives
    return fail("bad value '" + *cell_raw + "' for key 'cell'");
  }
  if (c >= grid.num_cells()) {
    return fail("cell " + std::to_string(c) + " out of range (grid has " +
                std::to_string(grid.num_cells()) + " cells)");
  }

  CellAggregate cell = empty_cell_aggregate(grid, static_cast<std::size_t>(c));
  for (const CounterField& f : kCounters) {
    const std::string* raw = flat->find(f.key);
    if (!raw) return fail(std::string("cell aggregate missing key '") +
                          f.key + "'");
    char* num_end = nullptr;
    const unsigned long long v = std::strtoull(raw->c_str(), &num_end, 10);
    if (!num_end || *num_end != '\0' || raw->empty() || (*raw)[0] == '-') {
      return fail("bad value '" + *raw + "' for key '" + f.key + "'");
    }
    cell.*(f.member) = static_cast<std::size_t>(v);
  }
  for (const CellStatsField& f : cell_stats_fields()) {
    const std::string* raw = flat->find(f.name);
    if (!raw) return fail(std::string("cell aggregate missing key '") +
                          f.name + "'");
    // Histogram bins install by count addition; raw buffers (and legacy
    // v1 bare sample arrays) replay via add() in insertion order.  Either
    // way the worker's accumulator state is reproduced exactly.
    std::string stats_error;
    if (!stats_from_json(*raw, &(cell.*(f.member)), &stats_error)) {
      return fail(std::string("key '") + f.name + "': " + stats_error);
    }
  }
  return cell;
}

std::string ShardReport::to_json() const {
  std::string out = "{\"format\":\"ccd-shard-report-v2\"";
  out += ",\"shard_index\":" + std::to_string(shard.shard_index);
  out += ",\"shard_count\":" + std::to_string(shard.shard_count);
  out += ",\"mode\":\"";
  out += to_string(shard.mode);
  out += "\",\"grid_fingerprint\":\"" +
         fingerprint_to_hex(shard.grid_fingerprint);
  out += "\",\"grid\":" + shard.grid.to_json();
  // Explicit (dispatcher-batch) specs name their owned cells outright;
  // "cell_list" because "cells" already carries the aggregates below.
  if (shard.mode == ShardMode::kExplicit) {
    out += ",\"cell_list\":[";
    for (std::size_t i = 0; i < shard.cells.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(shard.cells[i]);
    }
    out += "]";
  }
  out += ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ",";
    out += cell_aggregate_to_json(cells[i]);
  }
  out += "]}";
  return out;
}

std::optional<ShardReport> ShardReport::from_json(const std::string& json,
                                                  std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ShardReport> {
    if (error) *error = message;
    return std::nullopt;
  };
  auto flat = jsonu::FlatJson::parse(json);
  if (!flat) return fail("shard report is not a flat JSON object");
  // v2 encodes statistics as histograms/raw-buffer objects; v1 (the
  // legacy format) as bare sample arrays.  The per-stats decoder accepts
  // both, so old shard reports keep merging.
  const std::string* format = flat->find("format");
  if (!format || (*format != "ccd-shard-report-v2" &&
                  *format != "ccd-shard-report-v1")) {
    return fail(
        "missing or unknown \"format\" (expected ccd-shard-report-v2 or the "
        "legacy ccd-shard-report-v1)");
  }

  // The report header doubles as a shard spec; reuse its parser (and its
  // fingerprint-vs-grid consistency check) by re-wrapping the members.
  std::string spec_json = "{\"format\":\"ccd-shard-spec-v1\"";
  for (const char* key :
       {"shard_index", "shard_count", "mode", "grid_fingerprint"}) {
    const std::string* raw = flat->find(key);
    if (!raw) return fail(std::string("missing key '") + key + "'");
    spec_json += ",\"";
    spec_json += key;
    spec_json += "\":";
    spec_json += (key == std::string("shard_index") ||
                  key == std::string("shard_count"))
                     ? *raw
                     : jsonu::quote(*raw);
  }
  const std::string* grid_raw = flat->find("grid");
  if (!grid_raw) return fail("missing key 'grid'");
  spec_json += ",\"grid\":" + *grid_raw;
  if (const std::string* cell_list = flat->find("cell_list")) {
    spec_json += ",\"cells\":" + *cell_list;
  }
  spec_json += "}";

  ShardReport report;
  std::string spec_error;
  auto spec = ShardSpec::from_json(spec_json, &spec_error);
  if (!spec) return fail(spec_error);
  report.shard = std::move(*spec);

  const std::string* cells_raw = flat->find("cells");
  if (!cells_raw) return fail("missing key 'cells'");
  auto items = jsonu::parse_array_items(*cells_raw);
  if (!items) return fail("'cells' is not a JSON array");
  report.cells.reserve(items->size());
  for (std::size_t i = 0; i < items->size(); ++i) {
    std::string cell_error;
    auto cell =
        cell_aggregate_from_json(report.shard.grid, (*items)[i], &cell_error);
    if (!cell) {
      return fail("cells[" + std::to_string(i) + "]: " + cell_error);
    }
    report.cells.push_back(std::move(*cell));
  }
  return report;
}

std::optional<MergeResult> merge_shard_reports(
    const std::vector<ShardReport>& reports, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<MergeResult> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (reports.empty()) return fail("no shard reports to merge");

  const std::uint64_t fp = reports.front().shard.grid_fingerprint;
  for (const ShardReport& r : reports) {
    if (r.shard.grid_fingerprint != fp) {
      return fail("grid fingerprint mismatch: shard " +
                  std::to_string(reports.front().shard.shard_index) +
                  " was planned over grid " + fingerprint_to_hex(fp) +
                  " but shard " + std::to_string(r.shard.shard_index) +
                  " over grid " + fingerprint_to_hex(r.shard.grid_fingerprint) +
                  " (shards from different grids cannot merge)");
    }
  }

  MergeResult result;
  result.grid = reports.front().shard.grid;
  const std::size_t n = result.grid.num_cells();
  result.cells.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    result.cells.push_back(empty_cell_aggregate(result.grid, c));
  }

  // Exactly-once coverage: every cell merged from precisely one report.
  // (Duplicate detection is per CELL, not per shard range, so overlapping
  // splits -- say a 3-way and a 4-way plan mixed together -- are caught.)
  std::vector<std::size_t> owner(n, ~std::size_t{0});
  for (std::size_t r = 0; r < reports.size(); ++r) {
    for (const CellAggregate& cell : reports[r].cells) {
      if (owner[cell.cell_index] != ~std::size_t{0}) {
        return fail(
            "duplicate cell " + std::to_string(cell.cell_index) +
            ": reported by both shard " +
            std::to_string(reports[owner[cell.cell_index]].shard.shard_index) +
            " and shard " + std::to_string(reports[r].shard.shard_index));
      }
      owner[cell.cell_index] = r;
      merge_cell_aggregate(result.cells[cell.cell_index], cell);
    }
  }
  std::vector<std::size_t> missing;
  for (std::size_t c = 0; c < n; ++c) {
    if (owner[c] == ~std::size_t{0}) missing.push_back(c);
  }
  if (!missing.empty()) {
    return fail("missing cells: " + render_ranges(missing) + " (" +
                std::to_string(missing.size()) + " of " + std::to_string(n) +
                "; is a shard report absent or truncated?)");
  }
  return result;
}

}  // namespace ccd::exp
