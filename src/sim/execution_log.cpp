#include "sim/execution_log.hpp"

#include <cassert>

namespace ccd {

ExecutionLog::ExecutionLog(std::size_t num_processes, bool record_views)
    : num_processes_(num_processes), record_views_(record_views) {
  if (record_views_) views_.resize(num_processes);
}

void ExecutionLog::set_initial_value(ProcessId i, Value v) {
  if (record_views_) views_.at(i).initial_value = v;
}

void ExecutionLog::push_round(TransmissionRound tr, std::vector<CdAdvice> cd,
                              std::vector<CmAdvice> cm,
                              std::vector<RoundView> views) {
  assert(tr.receive_count.size() == num_processes_);
  transmission_.push(std::move(tr));
  cd_.push(std::move(cd));
  cm_.push(std::move(cm));
  if (record_views_) {
    assert(views.size() == num_processes_);
    for (std::size_t i = 0; i < num_processes_; ++i) {
      views_[i].rounds.push_back(std::move(views[i]));
    }
  }
}

void ExecutionLog::record_decision(ProcessId i, Round r, Value v) {
  decisions_.push_back({i, r, v});
}

void ExecutionLog::record_crash(ProcessId i, Round r) {
  crashes_.push_back({i, r});
}

}  // namespace ccd
