#include "sim/world.hpp"

#include <algorithm>

namespace ccd {

Round World::cst() const {
  Round r_cf = loss ? loss->r_cf() : kNeverRound;
  Round r_wake = cm ? cm->stabilization_round() : kNeverRound;
  Round r_acc = kNeverRound;
  if (cd) {
    switch (cd->spec().accuracy) {
      case Accuracy::kAccurate:
        r_acc = 1;
        break;
      case Accuracy::kEventual:
        r_acc = cd->spec().r_acc;
        break;
      case Accuracy::kNone:
        r_acc = kNeverRound;
        break;
    }
  }
  if (r_cf == kNeverRound || r_wake == kNeverRound || r_acc == kNeverRound) {
    return kNeverRound;
  }
  return std::max({r_cf, r_wake, r_acc});
}

}  // namespace ccd
