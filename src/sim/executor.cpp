#include "sim/executor.hpp"

#include <algorithm>
#include <cassert>

#include "cm/no_cm.hpp"
#include "net/no_loss.hpp"

namespace ccd {

Executor::Executor(World world, ExecutorOptions options)
    : world_(std::move(world)),
      options_(options),
      log_(world_.size(), options.record_views) {
  const std::size_t n = world_.size();
  assert(world_.initial_values.size() == n);
  // Degenerate-world robustness: a caller-assembled World may omit
  // components.  Substitute the neutral element for each rather than
  // dereferencing null mid-round: NoCM (everyone active), the NoCD
  // detector (no information), a perfect channel, no failures.
  if (!world_.cm) world_.cm = std::make_unique<NoCm>();
  if (!world_.cd) {
    world_.cd = std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                                 make_truthful_policy());
  }
  if (!world_.loss) world_.loss = std::make_unique<NoLoss>();
  if (!world_.fault) world_.fault = std::make_unique<NoFailures>();
  alive_.assign(n, true);
  decided_value_.assign(n, kNoValue);
  for (std::size_t i = 0; i < n; ++i) {
    log_.set_initial_value(static_cast<ProcessId>(i),
                           world_.initial_values[i]);
  }
}

bool Executor::all_correct_decided() const {
  for (std::size_t i = 0; i < world_.size(); ++i) {
    if (alive_[i] && decided_value_[i] == kNoValue) return false;
  }
  return true;
}

void Executor::step() {
  const std::size_t n = world_.size();
  const Round r = ++round_;

  // Participation mask for the contention manager: crashed and halted
  // processes are out of the protocol.
  participating_.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    participating_[i] = alive_[i] && !world_.processes[i]->halted();
  }

  // W_r: contention advice.
  world_.cm->advise(r, participating_, cm_advice_);
  cm_advice_.resize(n, CmAdvice::kPassive);

  // Crashes before sends.
  crash_mask_.assign(n, false);
  world_.fault->crash_before_send(r, alive_, crash_mask_);
  for (std::size_t i = 0; i < n; ++i) {
    if (crash_mask_[i] && alive_[i]) {
      alive_[i] = false;
      participating_[i] = false;
      log_.record_crash(static_cast<ProcessId>(i), r);
    }
  }

  // M_r: message assignments.
  sent_flag_.assign(n, false);
  sent_msg_.assign(n, std::nullopt);
  std::uint32_t broadcaster_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!participating_[i]) continue;
    sent_msg_[i] = world_.processes[i]->on_send(r, cm_advice_[i]);
    if (sent_msg_[i].has_value()) {
      sent_flag_[i] = true;
      ++broadcaster_count;
    }
  }

  // Crashes after sends: the round-r message is out, the transition is not
  // taken (Definition 11, constraint 2's fail branch).
  crash_mask_.assign(n, false);
  world_.fault->crash_after_send(r, alive_, crash_mask_);

  // N_r: delivery decided by the loss adversary; integrity/no-duplication
  // hold by construction (a receiver gets at most one copy of each sent
  // message), self-delivery is enforced here (constraint 5).
  delivery_.reset(n, false);
  world_.loss->decide_delivery(r, sent_flag_, delivery_);
  for (std::size_t j = 0; j < n; ++j) {
    if (sent_flag_[j]) delivery_.set(j, j, true);
  }

  recv_.resize(n);
  recv_count_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    recv_[i].clear();
    if (!participating_[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (sent_flag_[j] && delivery_.delivered(i, j)) {
        recv_[i].push_back(*sent_msg_[j]);
      }
    }
    // Receive sets are multisets; sort for a canonical representation so
    // views compare structurally (Definition 12).
    std::sort(recv_[i].begin(), recv_[i].end());
    recv_count_[i] = static_cast<std::uint32_t>(recv_[i].size());
  }

  // D_r: collision detector advice within the class envelope.
  world_.cd->advise(r, broadcaster_count, recv_count_, cd_advice_);
  world_.cm->observe(r, broadcaster_count);

  // C_r: transitions (skipped for processes crashing this round).
  for (std::size_t i = 0; i < n; ++i) {
    if (!participating_[i] || crash_mask_[i]) continue;
    world_.processes[i]->on_receive(r, recv_[i], cd_advice_[i],
                                    cm_advice_[i]);
    if (decided_value_[i] == kNoValue && world_.processes[i]->decided()) {
      decided_value_[i] = world_.processes[i]->decision();
      log_.record_decision(static_cast<ProcessId>(i), r, decided_value_[i]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (crash_mask_[i] && alive_[i]) {
      alive_[i] = false;
      log_.record_crash(static_cast<ProcessId>(i), r);
    }
  }

  // Record the round.
  TransmissionRound tr;
  tr.broadcaster_count = broadcaster_count;
  tr.receive_count = recv_count_;
  std::vector<RoundView> views;
  if (log_.views_recorded()) {
    views.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      views[i].sent = sent_msg_[i];
      views[i].received = recv_[i];
      views[i].cd = cd_advice_[i];
      views[i].cm = cm_advice_[i];
      views[i].crashed = !alive_[i];
    }
  }
  log_.push_round(std::move(tr), cd_advice_, cm_advice_, std::move(views));
}

RunResult Executor::run(Round max_rounds) {
  RunResult result;
  // n = 0: no process can ever send, decide or crash; every consensus
  // property holds vacuously.  Return instead of spinning max_rounds empty
  // rounds (which callers with stop_when_all_decided = false would hit).
  if (world_.size() == 0) {
    result.all_correct_decided = true;
    return result;
  }
  while (round_ < max_rounds) {
    if (options_.stop_when_all_decided && all_correct_decided()) break;
    step();
  }
  result.rounds_executed = round_;
  result.all_correct_decided = all_correct_decided();
  for (const DecisionRecord& d : log_.decisions()) {
    if (alive_[d.process] && d.round > result.last_decision_round) {
      result.last_decision_round = d.round;
    }
  }
  for (bool a : alive_) {
    if (!a) ++result.num_crashed;
  }
  return result;
}

}  // namespace ccd
