#include "sim/executor.hpp"

namespace ccd {

Executor::Executor(World world, ExecutorOptions options)
    : engine_(
          [&] {
            EngineWorld ew;
            const std::size_t n = world.processes.size();
            ew.world = std::move(world);
            ew.topology = Topology::clique(n);
            ew.channel = ChannelModel::kMatrix;
            ew.scope = CollisionScope::kGlobal;
            return ew;
          }(),
          EngineOptions{options.record_views, /*record_rounds=*/true,
                        options.stop_when_all_decided}) {}

}  // namespace ccd
