// World: one environment + algorithm instantiation (a "system" in the
// paper's Definition 10), ready to be driven by the Executor.
#pragma once

#include <memory>
#include <vector>

#include "cd/oracle_detector.hpp"
#include "cm/contention_manager.hpp"
#include "fault/failure_adversary.hpp"
#include "model/process.hpp"
#include "net/loss_adversary.hpp"

namespace ccd {

struct World {
  std::vector<std::unique_ptr<Process>> processes;
  std::vector<Value> initial_values;  ///< parallel to processes
  std::unique_ptr<ContentionManager> cm;
  std::unique_ptr<OracleDetector> cd;
  std::unique_ptr<LossAdversary> loss;
  std::unique_ptr<FailureAdversary> fault;

  std::size_t size() const { return processes.size(); }

  /// Communication stabilization time (Definition 20):
  /// max{r_cf, r_acc, r_wake} over the components that define one.
  /// Components with no guarantee (NoCM, NoCF loss, no-accuracy detector)
  /// contribute kNeverRound, which propagates: a world without all three
  /// guarantees has no finite CST.
  Round cst() const;
};

}  // namespace ccd
