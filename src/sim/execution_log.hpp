// Execution recording: the C0, M_r, N_r, D_r, W_r sequence of Definition 11
// projected into the three trace objects plus per-process views.
#pragma once

#include <cstdint>
#include <vector>

#include "model/traces.hpp"
#include "model/types.hpp"

namespace ccd {

struct DecisionRecord {
  ProcessId process = 0;
  Round round = 0;
  Value value = kNoValue;
};

struct CrashRecord {
  ProcessId process = 0;
  Round round = 0;
};

class ExecutionLog {
 public:
  explicit ExecutionLog(std::size_t num_processes, bool record_views = true);

  void set_initial_value(ProcessId i, Value v);

  /// Append one completed round.
  void push_round(TransmissionRound tr, std::vector<CdAdvice> cd,
                  std::vector<CmAdvice> cm,
                  std::vector<RoundView> views);  // views empty when disabled

  void record_decision(ProcessId i, Round r, Value v);
  void record_crash(ProcessId i, Round r);

  std::size_t num_processes() const { return num_processes_; }
  std::size_t num_rounds() const { return transmission_.num_rounds(); }
  bool views_recorded() const { return record_views_; }

  const TransmissionTrace& transmission() const { return transmission_; }
  const CdTrace& cd_trace() const { return cd_; }
  const CmTrace& cm_trace() const { return cm_; }
  const ProcessView& view(ProcessId i) const { return views_.at(i); }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  const std::vector<CrashRecord>& crashes() const { return crashes_; }

 private:
  std::size_t num_processes_;
  bool record_views_;
  TransmissionTrace transmission_;
  CdTrace cd_;
  CmTrace cm_;
  std::vector<ProcessView> views_;
  std::vector<DecisionRecord> decisions_;
  std::vector<CrashRecord> crashes_;
};

}  // namespace ccd
