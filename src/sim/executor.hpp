// Synchronous round executor implementing Definition 11's semantics:
//
//   W_r  contention advice        (constraint 7: from the manager)
//   M_r  message assignment       (constraint 3: the msg function)
//   N_r  receive multisets        (constraints 4-5: loss adversary +
//                                  enforced self-delivery / integrity /
//                                  no-duplication)
//   D_r  collision advice         (constraint 6: detector envelope)
//   C_r  state transitions        (constraint 2: trans function, or the
//                                  absorbing fail state chosen by the
//                                  failure adversary)
//
// Crash semantics: a kAfterSend crash in round r lets the round-r message
// out but skips the transition -- exactly the formal model's "C_r[i] =
// fail" branch.  A kBeforeSend crash silences the process from round r on.
//
// Halted processes (decided-and-halted, Algorithms 1-3) are correct but no
// longer participate: they stop broadcasting and transitioning.  The alive
// mask passed to practical contention managers excludes them, mirroring a
// real wake-up service that stops scheduling devices which left the
// protocol.
#pragma once

#include <vector>

#include "sim/execution_log.hpp"
#include "sim/world.hpp"

namespace ccd {

struct ExecutorOptions {
  bool record_views = true;
  /// Stop run() as soon as every non-crashed process has decided.
  bool stop_when_all_decided = true;
};

struct RunResult {
  bool all_correct_decided = false;
  Round last_decision_round = 0;  ///< max decision round among correct procs
  Round rounds_executed = 0;
  std::uint32_t num_crashed = 0;
};

class Executor {
 public:
  Executor(World world, ExecutorOptions options = {});

  /// Execute exactly one round.
  void step();

  /// Execute until all non-crashed processes decide (if enabled) or
  /// max_rounds elapse.
  RunResult run(Round max_rounds);

  Round current_round() const { return round_; }
  const ExecutionLog& log() const { return log_; }
  const World& world() const { return world_; }

  bool alive(ProcessId i) const { return alive_[i]; }
  bool decided(ProcessId i) const { return decided_value_[i] != kNoValue; }
  Value decision(ProcessId i) const { return decided_value_[i]; }

  /// True iff every non-crashed process has decided.
  bool all_correct_decided() const;

 private:
  World world_;
  ExecutorOptions options_;
  ExecutionLog log_;
  Round round_ = 0;

  std::vector<bool> alive_;
  std::vector<bool> participating_;  // alive and not halted; scratch
  std::vector<Value> decided_value_;

  // Per-round scratch buffers (reused to avoid churn).
  std::vector<CmAdvice> cm_advice_;
  std::vector<CdAdvice> cd_advice_;
  std::vector<bool> crash_mask_;
  std::vector<bool> sent_flag_;
  std::vector<std::optional<Message>> sent_msg_;
  std::vector<std::vector<Message>> recv_;
  std::vector<std::uint32_t> recv_count_;
  DeliveryMatrix delivery_;
};

}  // namespace ccd
