// Synchronous single-hop round executor: the paper's Definition 11 model
// proper, as a thin adapter over the topology-aware RoundEngine with
//
//   topology = Topology::clique(n)   (single hop: everyone hears everyone)
//   channel  = ChannelModel::kMatrix (the Section 3.2 loss adversary)
//   scope    = CollisionScope::kGlobal (one oracle, global broadcaster
//                                       count)
//
// which the engine executes as:
//
//   W_r  contention advice        (constraint 7: from the manager)
//   M_r  message assignment       (constraint 3: the msg function)
//   N_r  receive multisets        (constraints 4-5: loss adversary +
//                                  enforced self-delivery / integrity /
//                                  no-duplication)
//   D_r  collision advice         (constraint 6: detector envelope)
//   C_r  state transitions        (constraint 2: trans function, or the
//                                  absorbing fail state chosen by the
//                                  failure adversary)
//
// Crash semantics: a kAfterSend crash in round r lets the round-r message
// out but skips the transition -- exactly the formal model's "C_r[i] =
// fail" branch.  A kBeforeSend crash silences the process from round r on.
//
// Halted processes (decided-and-halted, Algorithms 1-3) are correct but no
// longer participate: they stop broadcasting and transitioning.  The alive
// mask passed to practical contention managers excludes them, mirroring a
// real wake-up service that stops scheduling devices which left the
// protocol.
#pragma once

#include "engine/round_engine.hpp"
#include "sim/execution_log.hpp"
#include "sim/world.hpp"

namespace ccd {

struct ExecutorOptions {
  bool record_views = true;
  /// Stop run() as soon as every non-crashed process has decided.
  bool stop_when_all_decided = true;
};

class Executor {
 public:
  Executor(World world, ExecutorOptions options = {});

  /// Execute exactly one round.
  void step() { engine_.step(); }

  /// Execute until all non-crashed processes decide (if enabled) or
  /// max_rounds elapse.
  RunResult run(Round max_rounds) { return engine_.run(max_rounds); }

  Round current_round() const { return engine_.current_round(); }
  const ExecutionLog& log() const { return engine_.log(); }
  const World& world() const { return engine_.world(); }

  bool alive(ProcessId i) const { return engine_.alive(i); }
  bool decided(ProcessId i) const { return engine_.decided(i); }
  Value decision(ProcessId i) const { return engine_.decision(i); }

  /// True iff every non-crashed process has decided.
  bool all_correct_decided() const { return engine_.all_correct_decided(); }

  /// The underlying engine (trace capture moves the log out through this).
  RoundEngine& engine() { return engine_; }

 private:
  RoundEngine engine_;
};

}  // namespace ccd
