#include "consensus/consensus_process.hpp"

// Header-only base; this TU anchors the vtable.
namespace ccd {}
