#include "consensus/naive_no_cd.hpp"

namespace ccd {

NaiveNoCdProcess::NaiveNoCdProcess(Value initial_value, Round patience)
    : ConsensusProcess(initial_value),
      estimate_(initial_value),
      patience_(patience) {}

std::optional<Message> NaiveNoCdProcess::on_send(Round /*round*/,
                                                 CmAdvice cm) {
  if (cm == CmAdvice::kActive) {
    return Message{Message::Kind::kEstimate, estimate_, 0};
  }
  return std::nullopt;
}

void NaiveNoCdProcess::on_receive(Round /*round*/,
                                  std::span<const Message> received,
                                  CdAdvice /*cd -- deliberately ignored*/,
                                  CmAdvice /*cm*/) {
  const std::vector<Value> estimates =
      unique_values(received, Message::Kind::kEstimate);
  if (!estimates.empty()) {
    estimate_ = estimates.front();
    decide(estimate_);
    halt();
    return;
  }
  if (++silent_rounds_ >= patience_) {
    decide(estimate_);
    halt();
  }
}

std::unique_ptr<Process> NaiveNoCdAlgorithm::make_process(
    const ProcessIdentity& /*identity*/, Value initial_value) const {
  return std::make_unique<NaiveNoCdProcess>(initial_value, patience_);
}

}  // namespace ccd
