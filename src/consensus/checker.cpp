#include "consensus/checker.hpp"

#include <algorithm>

namespace ccd {

ConsensusVerdict check_consensus(const ExecutionLog& log,
                                 const std::vector<Value>& initial_values) {
  ConsensusVerdict verdict;
  const std::size_t n = log.num_processes();

  std::vector<bool> crashed(n, false);
  for (const CrashRecord& c : log.crashes()) crashed[c.process] = true;

  std::vector<Value> decision(n, kNoValue);
  for (const DecisionRecord& d : log.decisions()) {
    decision[d.process] = d.value;
    if (d.round < verdict.first_decision_round) {
      verdict.first_decision_round = d.round;
    }
    if (!crashed[d.process] && d.round > verdict.last_decision_round) {
      verdict.last_decision_round = d.round;
    }
  }

  // Agreement & validity consider every decider, crashed or not: a process
  // that decided before crashing still counts (the paper's agreement is
  // over all decisions, uniform or not).
  for (std::size_t i = 0; i < n; ++i) {
    if (decision[i] == kNoValue) continue;
    verdict.decided_values.push_back(decision[i]);
    if (std::find(initial_values.begin(), initial_values.end(),
                  decision[i]) == initial_values.end()) {
      verdict.strong_validity = false;
    }
  }
  std::sort(verdict.decided_values.begin(), verdict.decided_values.end());
  verdict.decided_values.erase(
      std::unique(verdict.decided_values.begin(), verdict.decided_values.end()),
      verdict.decided_values.end());
  verdict.agreement = verdict.decided_values.size() <= 1;

  const bool all_same_initial =
      std::adjacent_find(initial_values.begin(), initial_values.end(),
                         std::not_equal_to<>()) == initial_values.end();
  if (all_same_initial && !initial_values.empty()) {
    for (Value v : verdict.decided_values) {
      if (v != initial_values.front()) verdict.uniform_validity = false;
    }
  }

  verdict.termination = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!crashed[i] && decision[i] == kNoValue) verdict.termination = false;
  }

  return verdict;
}

}  // namespace ccd
