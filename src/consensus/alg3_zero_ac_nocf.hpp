// Algorithm 3 (Section 7.4): anonymous consensus WITHOUT eventual collision
// freedom, with a collision detector in 0-AC (zero-complete, always
// accurate) and no contention manager.  Terminates within 8 * lg|V| rounds
// after failures cease (Theorem 3), matching the lg|V| - 1 lower bound of
// Theorem 9.
//
// The protocol never relies on a message being delivered: with accuracy in
// EVERY round, silence at any process proves nobody broadcast (Lemma 14),
// so the channel becomes a reliable 1-bit-per-round medium (collision /
// silence).  Processes jointly walk a balanced BST over V in lockstep,
// four rounds per tree node:
//   vote-val   : broadcast iff my initial value IS the current node's value
//   vote-left  : broadcast iff my initial value lies in the left subtree
//   vote-right : broadcast iff my initial value lies in the right subtree
//   recurse    : (silent) decide current value if vote-val registered;
//                else descend toward a registered vote (left preferred);
//                else ascend to the parent (everyone relevant crashed).
//
// The recurse phase needs no communication and could be folded into
// vote-right (reducing 8*lg|V| to 6*lg|V|); the paper keeps it as its own
// round for clarity and so do we, with the fold available as an option for
// the ablation bench.
#pragma once

#include "consensus/consensus_process.hpp"
#include "util/value_bst.hpp"

namespace ccd {

class Alg3Process final : public ConsensusProcess {
 public:
  Alg3Process(std::uint64_t num_values, Value initial_value,
              bool fold_recurse_round = false);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  const ValueBstCursor& cursor() const { return curr_; }

 private:
  enum class Phase : std::uint8_t {
    kVoteVal = 0,
    kVoteLeft = 1,
    kVoteRight = 2,
    kRecurse = 3,
  };

  void recurse();

  ValueBstCursor curr_;
  Phase phase_ = Phase::kVoteVal;
  bool vote_heard_[3] = {false, false, false};  ///< msgs(j) or CD(j) = +-
  bool fold_recurse_round_;
};

class Alg3Algorithm final : public ConsensusAlgorithm {
 public:
  explicit Alg3Algorithm(std::uint64_t num_values,
                         bool fold_recurse_round = false)
      : num_values_(num_values), fold_recurse_round_(fold_recurse_round) {}

  std::unique_ptr<Process> make_process(const ProcessIdentity& identity,
                                        Value initial_value) const override;
  bool anonymous() const override { return true; }
  const char* name() const override { return "Alg3(0-AC,NoCM,NOCF)"; }

  /// Theorem 3's bound: 8 * lg|V| rounds after failures cease (6 * lg|V|
  /// with the recurse round folded).
  Round round_bound_after_failures(std::uint64_t) const;

 private:
  std::uint64_t num_values_;
  bool fold_recurse_round_;
};

}  // namespace ccd
