// Base class for consensus protocol automata (Section 6).
//
// A consensus process starts with an initial value from V (one start state
// per value), eventually enters a decide state for some value, and -- in
// all three of the paper's algorithms -- halts after deciding.
#pragma once

#include "model/process.hpp"

namespace ccd {

class ConsensusProcess : public Process {
 public:
  explicit ConsensusProcess(Value initial_value)
      : initial_value_(initial_value) {}

  bool decided() const final { return decided_; }
  Value decision() const final { return decision_; }
  bool halted() const final { return halted_; }

  Value initial_value() const { return initial_value_; }

 protected:
  /// Enter the decide state for v (idempotent; first decision wins, which
  /// matches the automaton formalization where decide states absorb).
  void decide(Value v) {
    if (!decided_) {
      decided_ = true;
      decision_ = v;
    }
  }

  void halt() { halted_ = true; }

 private:
  Value initial_value_;
  bool decided_ = false;
  bool halted_ = false;
  Value decision_ = kNoValue;
};

}  // namespace ccd
