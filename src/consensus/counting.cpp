#include "consensus/counting.hpp"

namespace ccd {

std::optional<Message> CountingProcess::on_send(Round /*round*/,
                                                CmAdvice cm) {
  if (cm == CmAdvice::kActive && !announced_) {
    announced_ = true;
    return Message{Message::Kind::kPayload, /*value=*/1, /*tag=*/0};
  }
  return std::nullopt;
}

void CountingProcess::on_receive(Round /*round*/,
                                 std::span<const Message> received,
                                 CdAdvice cd, CmAdvice /*cm*/) {
  // Count only CLEAN solo announcements: exactly one message, no collision
  // report.  Noisy rounds (pre-stabilization contention, spurious reports)
  // are ignored -- the k-wake-up rotation guarantees each process a clean
  // window after CST, and announced_ makes each process contribute at most
  // one window, so the counter converges to exactly n.
  if (received.size() == 1 && cd != CdAdvice::kCollision) {
    ++count_;
  }
}

}  // namespace ccd
