#include "consensus/alg4_non_anonymous.hpp"

#include <cassert>

namespace ccd {

namespace {
// Tags distinguish the embedded election traffic from value announcements;
// both ride the same rounds-of-three schedule so no cross-talk is possible
// by slot, but the tag keeps message logs self-describing.
constexpr std::uint64_t kElectionTag = 1;
}  // namespace

Alg4Process::Alg4Process(std::uint64_t num_values, std::uint64_t id_space_size,
                         std::uint64_t my_id, Value initial_value,
                         Alg4DecisionRule rule)
    : ConsensusProcess(initial_value),
      direct_mode_(num_values <= id_space_size),
      value_core_(num_values, initial_value),
      election_core_(id_space_size, my_id, Message::Kind::kEstimate,
                     kElectionTag),
      my_id_(my_id),
      rule_(rule),
      announce_(initial_value) {
  assert(my_id < id_space_size);
}

std::optional<Message> Alg4Process::send_election(CmAdvice cm) {
  // Cycle-boundary reset: a process that detected the leader's failure
  // rejoins contention with its own ID.  Resets happen only at prepare so
  // every process's embedded core stays in phase lockstep.
  if (pending_reset_ && election_core_.in_prepare()) {
    election_core_.reset(my_id_);
    election_decided_ = false;
    am_leader_ = false;
    heard_current_ = false;
    pending_reset_ = false;
  }
  if (election_decided_) {
    // Election settled from this process's perspective: it stops
    // contending.  (Its silence cannot strand others: the decision round
    // was a silent accept round, which certifies everyone already shares
    // the decided estimate.)
    return std::nullopt;
  }
  // The paper's recovery gate: while a process still believes a leader
  // exists it must not broadcast in prepare.  In our state machine that is
  // automatic -- believing a leader implies election_decided_ -- so the
  // mute flag is only needed for the window between detection and the
  // cycle-boundary reset, where we are un-decided but must stay quiet.
  const bool muted = pending_reset_;
  return election_core_.step_send(cm, muted);
}

void Alg4Process::receive_election(std::span<const Message> received,
                                   CdAdvice cd) {
  if (election_decided_) return;
  election_core_.step_receive(received, cd);
  if (election_core_.decided()) {
    election_decided_ = true;
    leader_id_ = election_core_.decision();
    am_leader_ = leader_id_ == my_id_;
    // The leader trivially "hears" its own announcement.
    heard_current_ = am_leader_;
  }
}

std::optional<Message> Alg4Process::on_send(Round round, CmAdvice cm) {
  if (direct_mode_) return value_core_.step_send(cm);

  switch (slot_of(round)) {
    case Slot::kElection:
      return send_election(cm);
    case Slot::kAnnounce:
      announced_this_cycle_ = false;
      if (am_leader_) {
        announced_this_cycle_ = true;
        return Message{Message::Kind::kLeaderValue, announce_, 0};
      }
      return std::nullopt;
    case Slot::kVeto:
      if (!heard_current_) return Message{Message::Kind::kVeto, 0, 0};
      return std::nullopt;
  }
  return std::nullopt;
}

void Alg4Process::receive_announce(std::span<const Message> received,
                                   CdAdvice cd) {
  const std::vector<Value> announced =
      unique_values(received, Message::Kind::kLeaderValue);

  // Clean reception: exactly one announced value and no collision.
  if (announced.size() == 1 && cd != CdAdvice::kCollision) {
    heard_current_ = true;
    if (rule_ == Alg4DecisionRule::kHardened) {
      announce_ = announced.front();  // adopt: a re-elected leader must
                                      // re-broadcast a possibly-decided value
    } else if (!am_leader_) {
      // Literal Section 7.3 text: decide on first receipt.  UNSAFE -- see
      // header comment; kept to let tests/benches exhibit the violation.
      decide(announced.front());
      halt();
    }
    return;
  }

  const bool silent = received.empty() && cd != CdAdvice::kCollision;

  if (rule_ == Alg4DecisionRule::kHardened) {
    // Any announcement round this process did NOT cleanly hear (silence,
    // collision, or ambiguity) invalidates heard_current_: a newer
    // announcement may have been missed, so the process must veto until it
    // cleanly hears again.  This keeps "heard" synchronized to the LATEST
    // announcement round, which is what makes a silent phase 3 certify
    // that everyone adopted the same value.
    heard_current_ = false;
  }

  // Leader-failure detection: after an election has decided, a silent
  // phase-2 round (nothing received, no collision) proves -- by Corollary 1
  // for zero-complete detectors -- that no process broadcast, i.e. the
  // leader did not announce.  It must have crashed or halted.
  if (silent && election_decided_ && !am_leader_) {
    pending_reset_ = true;
  }
}

void Alg4Process::receive_veto(std::span<const Message> received,
                               CdAdvice cd) {
  const bool silent = received.empty() && cd != CdAdvice::kCollision;
  if (!silent) return;
  switch (rule_) {
    case Alg4DecisionRule::kHardened:
      // Silence proves no process vetoed, hence every alive process has
      // cleanly heard (and adopted) the current announcement -- including
      // this one.
      if (heard_current_) {
        decide(announce_);
        halt();
      }
      return;
    case Alg4DecisionRule::kLiteral:
      // Only the leader decides here: its own value, after a silent veto
      // round following a round in which it announced.
      if (am_leader_ && announced_this_cycle_) {
        decide(announce_);
        halt();
      }
      return;
  }
}

void Alg4Process::on_receive(Round round, std::span<const Message> received,
                             CdAdvice cd, CmAdvice /*cm*/) {
  if (direct_mode_) {
    value_core_.step_receive(received, cd);
    if (value_core_.decided()) {
      decide(value_core_.decision());
      halt();
    }
    return;
  }

  switch (slot_of(round)) {
    case Slot::kElection:
      receive_election(received, cd);
      return;
    case Slot::kAnnounce:
      receive_announce(received, cd);
      return;
    case Slot::kVeto:
      receive_veto(received, cd);
      return;
  }
}

std::unique_ptr<Process> Alg4Algorithm::make_process(
    const ProcessIdentity& identity, Value initial_value) const {
  assert(identity.has_unique_id);
  return std::make_unique<Alg4Process>(num_values_, id_space_, identity.id,
                                       initial_value, rule_);
}

}  // namespace ccd
