// A deliberately naive protocol that tries to solve consensus WITHOUT
// consulting its collision detector -- the foil for Theorem 4's
// impossibility result (and Theorem 5's, via Lemma 1).
//
// Behaviour: active processes broadcast their estimate; a process decides
// the minimum estimate it ever receives; a process that hears nothing for
// `patience` consecutive rounds gives up waiting and decides its own value
// (some timeout is forced: without collision detection, silence and total
// loss are indistinguishable, so waiting forever sacrifices termination).
//
// The bench bench_impossibility_nocd shows the dichotomy the theorem
// formalizes: under a partitioned-then-healed execution (legal under ECF +
// a leader election service) this protocol violates agreement, while the
// paper's real algorithms, stripped of detector information (NoCD), simply
// never terminate.  No protocol can win: the adversary composes two
// decided executions into one.
#pragma once

#include "consensus/consensus_process.hpp"

namespace ccd {

class NaiveNoCdProcess final : public ConsensusProcess {
 public:
  NaiveNoCdProcess(Value initial_value, Round patience);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

 private:
  Value estimate_;
  Round patience_;
  Round silent_rounds_ = 0;
};

class NaiveNoCdAlgorithm final : public ConsensusAlgorithm {
 public:
  explicit NaiveNoCdAlgorithm(Round patience) : patience_(patience) {}

  std::unique_ptr<Process> make_process(const ProcessIdentity& identity,
                                        Value initial_value) const override;
  bool anonymous() const override { return true; }
  const char* name() const override { return "NaiveNoCd"; }

 private:
  Round patience_;
};

}  // namespace ccd
