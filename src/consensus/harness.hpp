// Convenience layer for assembling a system (environment + algorithm,
// Definition 10), running it, and checking the consensus properties.  The
// tests, benches and examples all build on these helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "consensus/checker.hpp"
#include "model/process.hpp"
#include "sim/executor.hpp"
#include "sim/world.hpp"

namespace ccd {

/// Uniformly random initial value assignment from V = {0..num_values-1}.
std::vector<Value> random_initial_values(std::size_t n,
                                         std::uint64_t num_values,
                                         std::uint64_t seed);

/// Half the processes get `low`, the other half `high` -- the split
/// assignment the lower-bound scenarios like.
std::vector<Value> split_initial_values(std::size_t n, Value low, Value high);

/// Instantiate `algorithm` for n = initial_values.size() processes.
/// Identifiers are id_base, id_base+1, ... (unique); anonymous algorithms
/// never see them.
std::vector<std::unique_ptr<Process>> instantiate(
    const ConsensusAlgorithm& algorithm,
    const std::vector<Value>& initial_values, std::uint64_t id_base = 0);

/// Assemble a World (the paper's "system").  All components are required.
World make_world(const ConsensusAlgorithm& algorithm,
                 std::vector<Value> initial_values,
                 std::unique_ptr<ContentionManager> cm,
                 std::unique_ptr<OracleDetector> cd,
                 std::unique_ptr<LossAdversary> loss,
                 std::unique_ptr<FailureAdversary> fault,
                 std::uint64_t id_base = 0);

struct RunSummary {
  RunResult result;
  ConsensusVerdict verdict;
  Round cst = kNeverRound;
  /// Rounds needed beyond CST: last correct decision round minus CST,
  /// clamped at 0 (decisions before CST count as 0); meaningless when the
  /// world has no finite CST.
  Round rounds_after_cst = 0;
};

/// Run to completion (or max_rounds) and verify.  `log_out`, when non-null,
/// receives a copy of the full ExecutionLog (the --rerun-cell trace-capture
/// path); sweeps leave it null.  `counters_out`, when non-null, receives
/// the engine's telemetry tallies ADDED onto whatever it already holds
/// (multi-phase callers accumulate across phases); pure observation --
/// the run itself is unchanged.
RunSummary run_consensus(World world, Round max_rounds,
                         ExecutorOptions options = {},
                         ExecutionLog* log_out = nullptr,
                         obs::EngineCounters* counters_out = nullptr);

}  // namespace ccd
