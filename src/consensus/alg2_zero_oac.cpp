#include "consensus/alg2_zero_oac.hpp"

namespace ccd {

Alg2Core::Alg2Core(std::uint64_t num_values, Value initial_value,
                   Message::Kind estimate_kind, std::uint64_t message_tag)
    : codec_(num_values),
      estimate_kind_(estimate_kind),
      tag_(message_tag),
      estimate_(initial_value) {}

void Alg2Core::reset(Value initial_value) {
  estimate_ = initial_value;
  phase_ = Phase::kPrepare;
  decide_flag_ = true;
  bit_ = 1;
  sent_this_round_ = false;
  decided_ = false;
  decision_ = kNoValue;
}

std::optional<Message> Alg2Core::step_send(CmAdvice cm, bool muted) {
  sent_this_round_ = false;
  switch (phase_) {
    case Phase::kPrepare:
      if (cm == CmAdvice::kActive && !muted) {
        sent_this_round_ = true;
        return Message{estimate_kind_, estimate_, tag_};
      }
      return std::nullopt;
    case Phase::kPropose:
      if (codec_.bit(estimate_, bit_)) {
        sent_this_round_ = true;
        return Message{Message::Kind::kVeto, 0, tag_};
      }
      return std::nullopt;
    case Phase::kAccept:
      if (!decide_flag_) {
        sent_this_round_ = true;
        return Message{Message::Kind::kVeto, 0, tag_};
      }
      return std::nullopt;
  }
  return std::nullopt;
}

void Alg2Core::step_receive(std::span<const Message> received, CdAdvice cd) {
  switch (phase_) {
    case Phase::kPrepare: {
      const std::vector<Value> messages = unique_values(received, estimate_kind_);
      if (cd != CdAdvice::kCollision && !messages.empty()) {
        estimate_ = messages.front();  // min (line 12)
      }
      decide_flag_ = true;
      bit_ = 1;
      phase_ = Phase::kPropose;
      return;
    }
    case Phase::kPropose: {
      const bool heard = !received.empty() || cd == CdAdvice::kCollision;
      if (heard && !codec_.bit(estimate_, bit_)) {
        decide_flag_ = false;  // someone's estimate differs in this bit
      }
      ++bit_;
      if (bit_ > codec_.width()) phase_ = Phase::kAccept;
      return;
    }
    case Phase::kAccept: {
      // A broadcaster receives its own veto, so |received| == 0 already
      // implies this process did not complain (line 31).
      if (received.empty() && cd != CdAdvice::kCollision) {
        decided_ = true;
        decision_ = estimate_;
      }
      phase_ = Phase::kPrepare;
      return;
    }
  }
}

Alg2Process::Alg2Process(std::uint64_t num_values, Value initial_value)
    : ConsensusProcess(initial_value), core_(num_values, initial_value) {}

std::optional<Message> Alg2Process::on_send(Round /*round*/, CmAdvice cm) {
  return core_.step_send(cm);
}

void Alg2Process::on_receive(Round /*round*/,
                             std::span<const Message> received, CdAdvice cd,
                             CmAdvice /*cm*/) {
  core_.step_receive(received, cd);
  if (core_.decided()) {
    decide(core_.decision());
    halt();
  }
}

std::unique_ptr<Process> Alg2Algorithm::make_process(
    const ProcessIdentity& /*identity*/, Value initial_value) const {
  return std::make_unique<Alg2Process>(num_values_, initial_value);
}

Round Alg2Algorithm::round_bound_after_cst(std::uint64_t num_values) {
  const std::uint32_t size = BitCodec(num_values).width();
  return 2 * (size + 1);
}

}  // namespace ccd
