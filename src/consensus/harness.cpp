#include "consensus/harness.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace ccd {

std::vector<Value> random_initial_values(std::size_t n,
                                         std::uint64_t num_values,
                                         std::uint64_t seed) {
  Rng rng(seed);
  // |V| = 0 is meaningless; treat it as the singleton value set rather
  // than handing Rng::below an empty range.
  if (num_values == 0) num_values = 1;
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.below(num_values);
  return values;
}

std::vector<Value> split_initial_values(std::size_t n, Value low, Value high) {
  std::vector<Value> values(n, low);
  for (std::size_t i = n / 2; i < n; ++i) values[i] = high;
  return values;
}

std::vector<std::unique_ptr<Process>> instantiate(
    const ConsensusAlgorithm& algorithm,
    const std::vector<Value>& initial_values, std::uint64_t id_base) {
  std::vector<std::unique_ptr<Process>> processes;
  processes.reserve(initial_values.size());
  for (std::size_t i = 0; i < initial_values.size(); ++i) {
    ProcessIdentity identity;
    identity.index = static_cast<ProcessId>(i);
    identity.id = id_base + i;
    identity.has_unique_id = !algorithm.anonymous();
    processes.push_back(
        algorithm.make_process(identity, initial_values[i]));
  }
  return processes;
}

World make_world(const ConsensusAlgorithm& algorithm,
                 std::vector<Value> initial_values,
                 std::unique_ptr<ContentionManager> cm,
                 std::unique_ptr<OracleDetector> cd,
                 std::unique_ptr<LossAdversary> loss,
                 std::unique_ptr<FailureAdversary> fault,
                 std::uint64_t id_base) {
  World world;
  world.processes = instantiate(algorithm, initial_values, id_base);
  world.initial_values = std::move(initial_values);
  world.cm = std::move(cm);
  world.cd = std::move(cd);
  world.loss = std::move(loss);
  world.fault = std::move(fault);
  return world;
}

RunSummary run_consensus(World world, Round max_rounds,
                         ExecutorOptions options, ExecutionLog* log_out,
                         obs::EngineCounters* counters_out) {
  RunSummary summary;
  // Degenerate worlds (n = 0, missing components, everyone crashed in the
  // opening round) are legal inputs: the Executor substitutes neutral
  // components and exits empty worlds immediately, and the checker treats
  // a world with no correct process as vacuously terminated.  CST is read
  // AFTER construction so it reflects the substituted components (NoLoss
  // has r_cf = 1; a null loss slot would otherwise read as "never").
  Executor executor(std::move(world), options);
  summary.cst = executor.world().cst();
  summary.result = executor.run(max_rounds);
  summary.verdict =
      check_consensus(executor.log(), executor.world().initial_values);
  if (summary.cst != kNeverRound &&
      summary.verdict.last_decision_round > summary.cst) {
    summary.rounds_after_cst = summary.verdict.last_decision_round -
                               summary.cst;
  }
  if (log_out) *log_out = executor.log();
  if (counters_out) counters_out->add(executor.engine().counters());
  return summary;
}

}  // namespace ccd
