// The non-anonymous protocol of Section 7.3: consensus with ECF and a
// 0-<>AC collision detector in CST + O(min{lg|V|, lg|I|}) rounds, where I
// is the identifier space.
//
//  * If |V| <= |I| the protocol is exactly Algorithm 2 on the values.
//  * Otherwise rounds are grouped in threes:
//      phase 1: one step of an embedded Algorithm 2 instance over the ID
//               space, electing a leader (everyone's initial estimate is
//               its own ID);
//      phase 2: the elected leader broadcasts a value announcement;
//      phase 3: processes that have not yet (cleanly) heard the current
//               leader's announcement broadcast a veto.
//
// Leader-failure recovery (the paper sketches it informally): a silent
// phase-2 round after an election has decided proves -- via zero
// completeness and Corollary 1 -- that the leader did not broadcast, i.e.
// it crashed or halted.  Detecting processes re-enter contention: at the
// next election-cycle boundary they reset the embedded instance to their
// own ID and, per the paper's rule, processes do not broadcast in prepare
// while they still believe a leader exists, so a re-election cannot
// complete before every survivor has detected the failure.
//
// HARDENING (documented deviation).  The paper's literal decision rule --
// "non-leaders decide the value in the first phase-2 message they receive,
// then halt" -- is unsafe under a crash pattern the sketch does not
// consider: a leader that delivers its announcement to SOME processes
// (which then decide and halt) and crashes before reaching the rest; the
// survivors detect a silent phase 2, elect a new leader, and decide that
// leader's different value.  tests/consensus/alg4_test.cpp reproduces the
// violation against the literal rule (DecisionRule::kLiteral).  Our default
// rule (kHardened) restores safety at no asymptotic cost:
//   1. hearing an announcement ADOPTS it (announce := v), so a re-elected
//      leader re-broadcasts the possibly-decided value, and
//   2. every process (leader included) decides only after a SILENT phase-3
//      round, which -- silence again being trustworthy -- proves every
//      alive process has heard and adopted the same announcement.
#pragma once

#include "consensus/alg2_zero_oac.hpp"
#include "consensus/consensus_process.hpp"

namespace ccd {

enum class Alg4DecisionRule : std::uint8_t {
  kHardened,  ///< safe completion of the sketch (default)
  kLiteral,   ///< the paper's literal text; unsafe, kept for the demo
};

class Alg4Process final : public ConsensusProcess {
 public:
  Alg4Process(std::uint64_t num_values, std::uint64_t id_space_size,
              std::uint64_t my_id, Value initial_value, Alg4DecisionRule rule);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  bool believes_leader() const { return election_decided_; }
  std::uint64_t leader_id() const { return leader_id_; }

 private:
  enum class Slot : std::uint8_t { kElection = 0, kAnnounce = 1, kVeto = 2 };
  static Slot slot_of(Round r) { return static_cast<Slot>((r - 1) % 3); }

  std::optional<Message> send_election(CmAdvice cm);
  void receive_election(std::span<const Message> received, CdAdvice cd);
  void receive_announce(std::span<const Message> received, CdAdvice cd);
  void receive_veto(std::span<const Message> received, CdAdvice cd);

  // Direct mode (|V| <= |I|): plain Algorithm 2 over V.
  bool direct_mode_;
  Alg2Core value_core_;

  // Leader-based mode.
  Alg2Core election_core_;
  std::uint64_t my_id_;
  Alg4DecisionRule rule_;
  bool election_decided_ = false;
  std::uint64_t leader_id_ = 0;
  bool am_leader_ = false;
  bool heard_current_ = false;   ///< cleanly heard current leader's announce
  Value announce_;               ///< value I would announce if elected
  bool pending_reset_ = false;   ///< failure detected; reset at cycle start
  bool announced_this_cycle_ = false;  ///< leader broadcast in last phase 2
};

class Alg4Algorithm final : public ConsensusAlgorithm {
 public:
  Alg4Algorithm(std::uint64_t num_values, std::uint64_t id_space_size,
                Alg4DecisionRule rule = Alg4DecisionRule::kHardened)
      : num_values_(num_values), id_space_(id_space_size), rule_(rule) {}

  std::unique_ptr<Process> make_process(const ProcessIdentity& identity,
                                        Value initial_value) const override;
  bool anonymous() const override { return false; }
  const char* name() const override { return "Alg4(non-anon,0-<>AC,WS,ECF)"; }

  std::uint64_t id_space() const { return id_space_; }

 private:
  std::uint64_t num_values_;
  std::uint64_t id_space_;
  Alg4DecisionRule rule_;
};

}  // namespace ccd
