// Algorithm 2 (Section 7.2): anonymous consensus with ECF and a collision
// detector in 0-<>AC (zero-complete, eventually accurate), using any
// wake-up service.  Terminates by CST + 2*(ceil(lg|V|) + 1) (Theorem 2),
// matching the Omega(lg|V|) lower bound for half-complete-or-weaker
// detectors (Theorem 6).
//
// Structure: cycles of prepare (1 round) / propose (ceil(lg|V|) rounds) /
// accept (1 round):
//   prepare: active processes broadcast their estimate; processes hearing
//     at least one estimate and no collision adopt the minimum.
//   propose: one round per bit of the estimate's binary representation.
//     A process broadcasts a mark in rounds where its estimate has a 1 bit
//     and listens otherwise; hearing anything (message or collision) while
//     listening on a 0 bit reveals divergent estimates and clears the
//     process's decide flag.  This is the "spell your value out, one bit
//     per round" channel-as-binary-communication mechanism, and the reason
//     the protocol costs Theta(lg|V|) rounds.
//   accept: processes whose decide flag was cleared broadcast a veto; a
//     process hearing a silent accept round decides its estimate and halts
//     (zero completeness + Corollary 1: silence proves nobody vetoed).
//
// The protocol logic is factored into Alg2Core so the non-anonymous
// Section 7.3 protocol can embed an instance running on the ID space.
#pragma once

#include "consensus/consensus_process.hpp"
#include "util/bitcodec.hpp"

namespace ccd {

/// The phase machine of Algorithm 2, decoupled from the Process interface.
/// One step = one round: call step_send() then step_receive().
class Alg2Core {
 public:
  Alg2Core(std::uint64_t num_values, Value initial_value,
           Message::Kind estimate_kind = Message::Kind::kEstimate,
           std::uint64_t message_tag = 0);

  /// Message for this round.  `muted` suppresses the prepare-phase
  /// broadcast (used by the Section 7.3 leader-failure recovery rule, where
  /// later election instances stay quiet until the leader is detected
  /// failed); propose/accept broadcasts are never muted, so safety is
  /// unaffected.
  std::optional<Message> step_send(CmAdvice cm, bool muted = false);

  void step_receive(std::span<const Message> received, CdAdvice cd);

  bool decided() const { return decided_; }
  Value decision() const { return decision_; }
  Value estimate() const { return estimate_; }

  /// Restart the protocol with a fresh estimate (next election instance).
  void reset(Value initial_value);

  /// True at a cycle boundary (prepare phase about to run).  The Section
  /// 7.3 protocol applies election resets only here so that every
  /// process's embedded core stays in phase lockstep.
  bool in_prepare() const { return phase_ == Phase::kPrepare; }

 private:
  enum class Phase { kPrepare, kPropose, kAccept };

  BitCodec codec_;
  Message::Kind estimate_kind_;
  std::uint64_t tag_;

  Value estimate_;
  Phase phase_ = Phase::kPrepare;
  bool decide_flag_ = true;
  std::uint32_t bit_ = 1;
  bool sent_this_round_ = false;
  bool decided_ = false;
  Value decision_ = kNoValue;
};

class Alg2Process final : public ConsensusProcess {
 public:
  Alg2Process(std::uint64_t num_values, Value initial_value);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  Value estimate() const { return core_.estimate(); }

 private:
  Alg2Core core_;
};

class Alg2Algorithm final : public ConsensusAlgorithm {
 public:
  explicit Alg2Algorithm(std::uint64_t num_values)
      : num_values_(num_values) {}

  std::unique_ptr<Process> make_process(const ProcessIdentity& identity,
                                        Value initial_value) const override;
  bool anonymous() const override { return true; }
  const char* name() const override { return "Alg2(0-<>AC,WS,ECF)"; }

  /// Worst-case rounds after CST (Theorem 2): 2 * (ceil(lg|V|) + 1) plus
  /// the partial cycle in progress at CST.
  static Round round_bound_after_cst(std::uint64_t num_values);

 private:
  std::uint64_t num_values_;
};

}  // namespace ccd
