#include "consensus/alg3_zero_ac_nocf.hpp"

#include "util/bitcodec.hpp"

namespace ccd {

Alg3Process::Alg3Process(std::uint64_t num_values, Value initial_value,
                         bool fold_recurse_round)
    : ConsensusProcess(initial_value),
      curr_(num_values),
      fold_recurse_round_(fold_recurse_round) {}

std::optional<Message> Alg3Process::on_send(Round /*round*/,
                                            CmAdvice /*cm*/) {
  // Algorithm 3 ignores contention manager advice: it is designed for
  // executions with no delivery guarantee, where solo channel access buys
  // nothing (Section 7.4).
  bool vote = false;
  switch (phase_) {
    case Phase::kVoteVal:
      vote = initial_value() == curr_.value();
      break;
    case Phase::kVoteLeft:
      vote = curr_.left_contains(initial_value());
      break;
    case Phase::kVoteRight:
      vote = curr_.right_contains(initial_value());
      break;
    case Phase::kRecurse:
      break;
  }
  if (vote) return Message{Message::Kind::kVote, 0, 0};
  return std::nullopt;
}

void Alg3Process::recurse() {
  if (vote_heard_[0]) {
    decide(curr_.value());
    halt();
    return;
  }
  if (vote_heard_[1]) {
    // Accuracy guarantees the vote was real, so the left child exists.
    curr_.descend_left();
  } else if (vote_heard_[2]) {
    curr_.descend_right();
  } else {
    curr_.ascend();  // all voters for this subtree crashed; back up
  }
  phase_ = Phase::kVoteVal;
}

void Alg3Process::on_receive(Round /*round*/,
                             std::span<const Message> received, CdAdvice cd,
                             CmAdvice /*cm*/) {
  switch (phase_) {
    case Phase::kVoteVal:
      vote_heard_[0] = !received.empty() || cd == CdAdvice::kCollision;
      phase_ = Phase::kVoteLeft;
      return;
    case Phase::kVoteLeft:
      vote_heard_[1] = !received.empty() || cd == CdAdvice::kCollision;
      phase_ = Phase::kVoteRight;
      return;
    case Phase::kVoteRight:
      vote_heard_[2] = !received.empty() || cd == CdAdvice::kCollision;
      if (fold_recurse_round_) {
        recurse();  // fold the local computation into this round
      } else {
        phase_ = Phase::kRecurse;
      }
      return;
    case Phase::kRecurse:
      // Dedicated silent round: nothing is broadcast and the receive set is
      // ignored; only the local navigation decision happens.
      recurse();
      return;
  }
}

std::unique_ptr<Process> Alg3Algorithm::make_process(
    const ProcessIdentity& /*identity*/, Value initial_value) const {
  return std::make_unique<Alg3Process>(num_values_, initial_value,
                                       fold_recurse_round_);
}

Round Alg3Algorithm::round_bound_after_failures(
    std::uint64_t num_values) const {
  const std::uint32_t lg = ceil_log2(num_values) == 0
                               ? 1
                               : ceil_log2(num_values);
  const Round per_move = fold_recurse_round_ ? 3 : 4;
  return 2 * per_move * lg + per_move;  // up + down, plus the final decide
}

}  // namespace ccd
