// Post-hoc verification of the consensus properties (Section 6) against a
// recorded execution:
//   Agreement        - no two processes decide different values.
//   Strong validity  - every decision is some process's initial value.
//   Uniform validity - if all initial values are equal, that value is the
//                      only possible decision (the weaker variant the lower
//                      bounds assume).
//   Termination      - every correct (never-crashed) process decided.
#pragma once

#include <vector>

#include "sim/execution_log.hpp"

namespace ccd {

struct ConsensusVerdict {
  bool agreement = true;
  bool strong_validity = true;
  bool uniform_validity = true;
  bool termination = false;

  Round first_decision_round = kNeverRound;
  Round last_decision_round = 0;  ///< over correct processes
  std::vector<Value> decided_values;  ///< distinct values decided

  bool safe() const { return agreement && strong_validity; }
  bool solved() const { return safe() && uniform_validity && termination; }
};

ConsensusVerdict check_consensus(const ExecutionLog& log,
                                 const std::vector<Value>& initial_values);

}  // namespace ccd
