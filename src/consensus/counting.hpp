// Anonymous counting (Section 4.1): determine how many anonymous processes
// are in the system.  The paper remarks this is "easily shown to be
// solvable with a k-wake-up service, but impossible with a leader election
// service": a leader election service may never schedule anyone but the
// leader, so a second process is indistinguishable from none -- whereas a
// k-wake-up service hands every process a private window in which its lone
// announcement (or the collision report it forces) is witnessed by all.
//
// Protocol (anonymous; assumes the rotation runs from round 1, collision
// freedom from round 1 and an accurate detector -- the clean setting of
// the paper's remark): a process that is advised active and has not yet
// announced broadcasts a single "here" mark.  Every process counts the
// rounds in which it received exactly one mark cleanly; each process's
// first solo window contributes exactly one such round (ECF delivers the
// lone mark to everyone), so every counter converges to n once the
// rotation has served all processes.  (Counting is a convergent task: with
// n unknown and windows unbounded, no process can ever halt -- the count
// is simply correct from rotation-completion onward.)
#pragma once

#include "model/process.hpp"

namespace ccd {

class CountingProcess final : public Process {
 public:
  CountingProcess() = default;

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  /// Current estimate of the number of processes.
  std::uint64_t count() const { return count_; }
  bool announced() const { return announced_; }

 private:
  bool announced_ = false;
  std::uint64_t count_ = 0;
};

}  // namespace ccd
