// Algorithm 1 (Section 7.1): anonymous consensus with ECF and a collision
// detector in maj-<>AC, using any wake-up service.  Terminates by CST + 2
// (Theorem 1), tolerating any number of crash failures.
//
// Structure: alternating proposal / veto phases.
//   proposal round: processes advised active broadcast their estimate; a
//     process that hears no collision and at least one estimate adopts the
//     minimum estimate received.
//   veto round: a process that saw a collision or more than one distinct
//     estimate in the preceding proposal round broadcasts a veto; a process
//     that received exactly one distinct estimate, hears no veto and no
//     collision, decides its estimate and halts.
//
// Safety leans on majority completeness: a silent veto round certifies that
// every process received a strict majority of the proposal-round messages,
// and majority sets intersect, so everyone received the SAME single value
// (Lemma 5).  With only half completeness the intersection argument dies --
// exactly the boundary Theorem 6 exploits (see bench_halfac_lowerbound).
#pragma once

#include "consensus/consensus_process.hpp"

namespace ccd {

class Alg1Process final : public ConsensusProcess {
 public:
  explicit Alg1Process(Value initial_value);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  Value estimate() const { return estimate_; }

 private:
  enum class Phase { kProposal, kVeto };

  Value estimate_;
  Phase phase_ = Phase::kProposal;
  // Carried from the latest proposal round into the veto round:
  std::size_t proposal_unique_values_ = 0;  ///< |messages_i| = |SET(recv)|
  CdAdvice proposal_cd_ = CdAdvice::kNull;
};

class Alg1Algorithm final : public ConsensusAlgorithm {
 public:
  std::unique_ptr<Process> make_process(const ProcessIdentity& identity,
                                        Value initial_value) const override;
  bool anonymous() const override { return true; }
  const char* name() const override { return "Alg1(maj-<>AC,WS,ECF)"; }
};

}  // namespace ccd
