#include "consensus/alg1_maj_oac.hpp"

namespace ccd {

Alg1Process::Alg1Process(Value initial_value)
    : ConsensusProcess(initial_value), estimate_(initial_value) {}

std::optional<Message> Alg1Process::on_send(Round /*round*/, CmAdvice cm) {
  if (phase_ == Phase::kProposal) {
    if (cm == CmAdvice::kActive) {
      return Message{Message::Kind::kEstimate, estimate_, 0};
    }
    return std::nullopt;
  }
  // Veto phase: complain iff the proposal round looked inconsistent
  // (pseudocode line 14).
  if (proposal_cd_ == CdAdvice::kCollision || proposal_unique_values_ > 1) {
    return Message{Message::Kind::kVeto, 0, 0};
  }
  return std::nullopt;
}

void Alg1Process::on_receive(Round /*round*/,
                             std::span<const Message> received, CdAdvice cd,
                             CmAdvice /*cm*/) {
  if (phase_ == Phase::kProposal) {
    const std::vector<Value> messages =
        unique_values(received, Message::Kind::kEstimate);
    if (cd != CdAdvice::kCollision && !messages.empty()) {
      estimate_ = messages.front();  // min{messages_i} (line 11)
    }
    proposal_unique_values_ = messages.size();
    proposal_cd_ = cd;
    phase_ = Phase::kVeto;
    return;
  }

  // Veto phase (lines 16-20).  Only vetoes are broadcast in this round, so
  // any received message is a veto; a broadcaster hears its own veto and
  // therefore never decides in the same round it complains.
  const bool silent_veto_round = received.empty() && cd != CdAdvice::kCollision;
  if (silent_veto_round && proposal_unique_values_ == 1) {
    decide(estimate_);
    halt();
  }
  phase_ = Phase::kProposal;
}

std::unique_ptr<Process> Alg1Algorithm::make_process(
    const ProcessIdentity& /*identity*/, Value initial_value) const {
  return std::make_unique<Alg1Process>(initial_value);
}

}  // namespace ccd
