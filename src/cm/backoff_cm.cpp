#include "cm/backoff_cm.hpp"

namespace ccd {

BackoffCm::BackoffCm(Options opts) : opts_(opts), rng_(opts.seed) {}

void BackoffCm::advise(Round round, const std::vector<bool>& alive,
                       std::vector<CmAdvice>& out) {
  const auto n = alive.size();
  out.assign(n, CmAdvice::kPassive);
  if (window_.size() < n) {
    window_.resize(n, opts_.initial_window);
  }
  last_active_.assign(n, false);

  if (locked_process_ != kNoLock) {
    if (locked_process_ < n && alive[locked_process_]) {
      out[locked_process_] = CmAdvice::kActive;
      last_active_[locked_process_] = true;
      return;
    }
    // Locked leader crashed; resume contention.
    locked_process_ = kNoLock;
  }

  std::uint32_t active_count = 0;
  std::uint32_t last = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    if (rng_.below(window_[i]) == 0) {
      out[i] = CmAdvice::kActive;
      last_active_[i] = true;
      ++active_count;
      last = static_cast<std::uint32_t>(i);
    }
  }

  if (active_count == 1) {
    locked_process_ = last;
    if (locked_round_ == kNeverRound) locked_round_ = round;
  } else if (active_count >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      if (last_active_[i] && window_[i] < opts_.max_window) {
        window_[i] *= 2;
      }
    }
  } else {
    // Silence: speed everyone back up a little so the channel is not idle.
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && window_[i] > 1) window_[i] -= 1;
    }
  }
}

void BackoffCm::observe(Round /*round*/, std::uint32_t /*broadcasters*/) {
  // Advice-count based locking is handled in advise(); channel feedback is
  // not needed for this variant but the hook is kept for extensions.
}

}  // namespace ccd
