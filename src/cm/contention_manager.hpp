// Contention managers (Section 4).
//
// A P-contention manager (Definition 8) is a set of P-CM traces: per round
// it advises each process active or passive.  The paper's classes:
//
//   * NoCM  - the trivial manager: everyone active, every round (Def of
//             NOCM_P, Section 4.2).
//   * WS    - wake-up service (Property 2): there is a round r_wake after
//             which exactly ONE process is advised active each round (not
//             necessarily the same one).
//   * LS    - leader election service (Property 3): after r_lead the SAME
//             single process is advised active; LS is a subset of WS.
//
// The formal definition deliberately decouples the manager from the
// execution ("oblivious" traces); concrete implementations such as backoff
// protocols monitor the channel.  We support both: advise() receives the
// alive mask and managers may use observe() feedback, while scripted
// adversarial managers ignore them.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace ccd {

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  /// Produce advice for round r (out is resized to the process count by the
  /// executor).  `alive[i]` is false once i has crashed; practical services
  /// adapt, formal adversarial ones may ignore it.
  virtual void advise(Round round, const std::vector<bool>& alive,
                      std::vector<CmAdvice>& out) = 0;

  /// Channel feedback after the round's broadcasts: how many processes
  /// actually transmitted.  Concrete managers (backoff) use this; the
  /// default ignores it.
  virtual void observe(Round round, std::uint32_t broadcasters) {
    (void)round;
    (void)broadcasters;
  }

  /// The stabilization round r_wake / r_lead this manager guarantees, used
  /// by the harness to compute CST (Definition 20).  kNeverRound when the
  /// manager offers no such guarantee a priori (NoCM) or when stabilization
  /// is emergent (backoff: see stabilized_at()).
  virtual Round stabilization_round() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace ccd
