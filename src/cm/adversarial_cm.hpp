// Adversarial contention managers used by the lower-bound constructions.
//
// MAXLS_P (Definition 14) is the maximal leader election service: the set
// of ALL advice traces satisfying the LS property.  A lower-bound adversary
// is free to pick any trace in that set.  Two shapes recur in the proofs:
//
//  * ScriptedCm      - fully scripted per-round advice (e.g. the executions
//                      built in Theorems 4 and 8, where for the first k
//                      rounds two group-minima are active and afterwards a
//                      single one is).
//  * TwoGroupMaxLs   - the composition-friendly trace of Lemma 23: for the
//                      first k rounds min(R) and min(R') are both active;
//                      from round k+1 only min(R) is.  This is a legal LS
//                      trace because stabilization occurs at k+1.
#pragma once

#include <vector>

#include "cm/contention_manager.hpp"

namespace ccd {

class ScriptedCm final : public ContentionManager {
 public:
  /// `script[r-1]` is the advice vector for round r; rounds beyond the
  /// script replay the final entry.
  ScriptedCm(std::vector<std::vector<CmAdvice>> script, Round stabilization);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return stabilization_; }
  const char* name() const override { return "ScriptedCm"; }

 private:
  std::vector<std::vector<CmAdvice>> script_;
  Round stabilization_;
};

class TwoGroupMaxLs final : public ContentionManager {
 public:
  /// Processes [0, split) form group R, [split, n) form group R'.  Through
  /// round k both group minima (0 and split) are active; afterwards only 0.
  TwoGroupMaxLs(std::uint32_t split, Round k);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return k_ + 1; }
  const char* name() const override { return "TwoGroupMaxLs"; }

 private:
  std::uint32_t split_;
  Round k_;
};

}  // namespace ccd
