// k-wake-up service (Section 4.1's closing remark): a contention manager
// that guarantees every process k rounds of being the ONLY active process.
// Strictly stronger than a wake-up service and incomparable to a leader
// election service: the paper notes there are simple problems -- counting
// the number of anonymous processes -- solvable with a k-wake-up service
// but impossible with a leader election service (which may never schedule
// anyone but the leader).  consensus/counting.hpp exercises exactly that.
#pragma once

#include "cm/contention_manager.hpp"

namespace ccd {

class KWakeupService final : public ContentionManager {
 public:
  struct Options {
    Round r_wake = 1;       ///< rotation begins here; everyone active before
    std::uint32_t k = 1;    ///< consecutive solo rounds per process
    bool repeat = true;     ///< keep cycling after every process was served
  };

  explicit KWakeupService(Options options);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return options_.r_wake; }
  const char* name() const override { return "KWakeupService"; }

  /// First round by which every one of n processes has completed its k
  /// solo rounds (assuming no crashes).
  Round rotation_complete(std::size_t n) const {
    return options_.r_wake + static_cast<Round>(n) * options_.k - 1;
  }

 private:
  Options options_;
};

}  // namespace ccd
