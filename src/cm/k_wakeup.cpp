#include "cm/k_wakeup.hpp"

namespace ccd {

KWakeupService::KWakeupService(Options options) : options_(options) {}

void KWakeupService::advise(Round round, const std::vector<bool>& alive,
                            std::vector<CmAdvice>& out) {
  const std::size_t n = alive.size();
  out.assign(n, CmAdvice::kPassive);
  if (round < options_.r_wake) {
    out.assign(n, CmAdvice::kActive);
    return;
  }
  if (n == 0) return;
  std::uint64_t slot = (round - options_.r_wake) / options_.k;
  if (!options_.repeat && slot >= n) return;  // rotation done; all passive
  // The schedule is defined over process INDICES (it is a formal trace and
  // may name crashed processes; Property-style contention managers are
  // oblivious).  Crashed holders simply waste their window.
  out[slot % n] = CmAdvice::kActive;
}

}  // namespace ccd
