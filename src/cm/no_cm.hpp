// The trivial contention manager NOCM_P (Section 4.2): every process is
// advised active in every round.  Algorithm 3 runs under this class because
// without eventual collision freedom there is nothing a single broadcaster
// gains from solo access to the channel.
#pragma once

#include "cm/contention_manager.hpp"

namespace ccd {

class NoCm final : public ContentionManager {
 public:
  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return kNeverRound; }
  const char* name() const override { return "NoCM"; }
};

}  // namespace ccd
