#include "cm/wakeup_service.hpp"

namespace ccd {

WakeupService::WakeupService(Options opts) : opts_(opts), rng_(opts.seed) {}

void WakeupService::advise(Round round, const std::vector<bool>& alive,
                           std::vector<CmAdvice>& out) {
  const auto n = alive.size();
  out.assign(n, CmAdvice::kPassive);

  if (round < opts_.r_wake) {
    switch (opts_.pre) {
      case PreStabilization::kAllActive:
        out.assign(n, CmAdvice::kActive);
        break;
      case PreStabilization::kAllPassive:
        break;
      case PreStabilization::kRandomSubset:
        for (std::size_t i = 0; i < n; ++i) {
          if (rng_.chance(0.5)) out[i] = CmAdvice::kActive;
        }
        break;
      case PreStabilization::kAlternating:
        if (round % 2 == 1) out.assign(n, CmAdvice::kActive);
        break;
    }
    return;
  }

  // Stabilized: exactly one process is advised active.
  switch (opts_.post) {
    case PostStabilization::kMinAlive: {
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i]) {
          out[i] = CmAdvice::kActive;
          return;
        }
      }
      break;  // all crashed: advising nobody is vacuously fine
    }
    case PostStabilization::kRotateAlive: {
      std::uint32_t alive_count = 0;
      for (bool a : alive) alive_count += a ? 1 : 0;
      if (alive_count == 0) break;
      std::uint32_t skip = rotate_cursor_ % alive_count;
      ++rotate_cursor_;
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        if (skip == 0) {
          out[i] = CmAdvice::kActive;
          return;
        }
        --skip;
      }
      break;
    }
    case PostStabilization::kFixedMin: {
      if (n > 0) out[0] = CmAdvice::kActive;
      break;
    }
  }
}

}  // namespace ccd
