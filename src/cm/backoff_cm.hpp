// A concrete randomized backoff contention manager.
//
// Section 1.3: "One could imagine ... such a service being implemented in a
// real system by a backoff protocol."  This class realizes a wake-up
// service with high probability: each contending process is advised active
// with probability 1/window; on rounds where two or more were active all
// actives double their window (up to a cap); once a round has EXACTLY one
// active process the service locks onto it and advises only it from then on
// (re-electing if it crashes).  Locking makes the WS property hold from the
// lock round onward, so the harness can measure an *emergent* r_wake.
//
// This gives the paper's safety/liveness separation: algorithms that use
// the manager only for liveness stay safe even before stabilization.
#pragma once

#include "cm/contention_manager.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace ccd {

class BackoffCm final : public ContentionManager {
 public:
  struct Options {
    std::uint64_t seed = 7;
    std::uint32_t initial_window = 1;
    std::uint32_t max_window = 1u << 16;
  };

  explicit BackoffCm(Options opts);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  void observe(Round round, std::uint32_t broadcasters) override;

  /// No a-priori bound; stabilization is emergent.
  Round stabilization_round() const override { return kNeverRound; }

  /// First round from which exactly one process has been advised active in
  /// every round so far; kNeverRound until the lock happens.
  Round stabilized_at() const { return locked_round_; }

  const char* name() const override { return "BackoffCm"; }

 private:
  Options opts_;
  Rng rng_;
  std::vector<std::uint32_t> window_;
  std::vector<bool> last_active_;
  std::uint32_t locked_process_ = kNoLock;
  Round locked_round_ = kNeverRound;

  static constexpr std::uint32_t kNoLock = ~0u;
};

}  // namespace ccd
