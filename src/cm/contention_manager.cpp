#include "cm/contention_manager.hpp"

// Interface-only translation unit: anchors the vtable.
namespace ccd {}
