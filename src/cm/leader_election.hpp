// Leader election service (Property 3): after an unknown round r_lead the
// SAME single process is advised active in every round.  Every leader
// election service is also a wake-up service.  The paper uses LS (in its
// maximal form, Definition 14) when proving lower bounds and WS when
// proving the matching upper bounds, to make both as strong as possible.
//
// The formal property pins one process forever; if that process crashes the
// formal service may keep advising it (killing liveness).  Practical
// services re-elect, so we provide `adapt_on_crash` (default true) and keep
// the strict behaviour available for adversarial tests.
#pragma once

#include "cm/contention_manager.hpp"
#include "util/rng.hpp"

namespace ccd {

class LeaderElectionService final : public ContentionManager {
 public:
  struct Options {
    Round r_lead = 1;
    /// Pre-stabilization: everyone active (maximal contention) if true,
    /// everyone passive otherwise.
    bool pre_all_active = true;
    /// Re-elect (lowest alive index) if the stabilized leader crashes.
    bool adapt_on_crash = true;
    /// Fixed leader index; kNoLeader selects the lowest alive index at
    /// stabilization time.
    static constexpr std::uint32_t kNoLeader = ~0u;
    std::uint32_t leader = kNoLeader;
  };

  explicit LeaderElectionService(Options opts);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return opts_.r_lead; }
  const char* name() const override { return "LeaderElectionService"; }

  /// The currently pinned leader (valid once stabilized).
  std::uint32_t current_leader() const { return leader_; }

 private:
  Options opts_;
  std::uint32_t leader_ = Options::kNoLeader;
};

}  // namespace ccd
