#include "cm/leader_election.hpp"

namespace ccd {

namespace {
std::uint32_t lowest_alive(const std::vector<bool>& alive) {
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (alive[i]) return static_cast<std::uint32_t>(i);
  }
  return LeaderElectionService::Options::kNoLeader;
}
}  // namespace

LeaderElectionService::LeaderElectionService(Options opts) : opts_(opts) {
  leader_ = opts_.leader;
}

void LeaderElectionService::advise(Round round, const std::vector<bool>& alive,
                                   std::vector<CmAdvice>& out) {
  const auto n = alive.size();
  out.assign(n, CmAdvice::kPassive);

  if (round < opts_.r_lead) {
    if (opts_.pre_all_active) out.assign(n, CmAdvice::kActive);
    return;
  }

  if (leader_ == Options::kNoLeader) leader_ = lowest_alive(alive);
  if (leader_ != Options::kNoLeader && leader_ < n && !alive[leader_] &&
      opts_.adapt_on_crash) {
    leader_ = lowest_alive(alive);
  }
  if (leader_ != Options::kNoLeader && leader_ < n) {
    out[leader_] = CmAdvice::kActive;
  }
}

}  // namespace ccd
