#include "cm/no_cm.hpp"

namespace ccd {

void NoCm::advise(Round /*round*/, const std::vector<bool>& alive,
                  std::vector<CmAdvice>& out) {
  out.assign(alive.size(), CmAdvice::kActive);
}

}  // namespace ccd
