#include "cm/adversarial_cm.hpp"

#include <cassert>

namespace ccd {

ScriptedCm::ScriptedCm(std::vector<std::vector<CmAdvice>> script,
                       Round stabilization)
    : script_(std::move(script)), stabilization_(stabilization) {
  assert(!script_.empty());
}

void ScriptedCm::advise(Round round, const std::vector<bool>& alive,
                        std::vector<CmAdvice>& out) {
  const std::size_t idx =
      round - 1 < script_.size() ? round - 1 : script_.size() - 1;
  out = script_[idx];
  out.resize(alive.size(), CmAdvice::kPassive);
}

TwoGroupMaxLs::TwoGroupMaxLs(std::uint32_t split, Round k)
    : split_(split), k_(k) {}

void TwoGroupMaxLs::advise(Round round, const std::vector<bool>& alive,
                           std::vector<CmAdvice>& out) {
  const auto n = alive.size();
  out.assign(n, CmAdvice::kPassive);
  if (n == 0) return;
  out[0] = CmAdvice::kActive;
  if (round <= k_ && split_ < n) out[split_] = CmAdvice::kActive;
}

}  // namespace ccd
