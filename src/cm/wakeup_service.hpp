// Wake-up service (Property 2): after an unknown round r_wake, exactly one
// process is advised active per round.  Unlike a leader election service the
// active process may CHANGE between rounds; the upper bounds in Section 7
// only assume WS, so our default post-stabilization behaviour can rotate.
//
// Before r_wake the service's behaviour is unconstrained; we expose several
// adversarial pre-stabilization schedules so tests can stress algorithms
// against the full envelope.
#pragma once

#include "cm/contention_manager.hpp"
#include "util/rng.hpp"

namespace ccd {

class WakeupService final : public ContentionManager {
 public:
  enum class PreStabilization {
    kAllActive,     ///< everyone told active (maximal contention)
    kAllPassive,    ///< nobody told active (starvation until r_wake)
    kRandomSubset,  ///< iid coin per process per round
    kAlternating,   ///< all-active / all-passive alternating rounds
  };
  enum class PostStabilization {
    kMinAlive,      ///< lowest-index non-crashed process (adapts to crashes)
    kRotateAlive,   ///< round-robin over non-crashed processes (WS, not LS)
    kFixedMin,      ///< lowest index of the full set even if crashed
                    ///< (legal per the formal definition; kills liveness --
                    ///<  used by adversarial tests)
  };

  struct Options {
    Round r_wake = 1;
    PreStabilization pre = PreStabilization::kAllActive;
    PostStabilization post = PostStabilization::kMinAlive;
    std::uint64_t seed = 1;
  };

  explicit WakeupService(Options opts);

  void advise(Round round, const std::vector<bool>& alive,
              std::vector<CmAdvice>& out) override;
  Round stabilization_round() const override { return opts_.r_wake; }
  const char* name() const override { return "WakeupService"; }

 private:
  Options opts_;
  Rng rng_;
  std::uint32_t rotate_cursor_ = 0;
};

}  // namespace ccd
