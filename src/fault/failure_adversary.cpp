#include "fault/failure_adversary.hpp"

namespace ccd {

ScheduledCrash::ScheduledCrash(std::vector<CrashEvent> events)
    : events_(std::move(events)) {
  for (const CrashEvent& e : events_) {
    if (e.round > last_round_) last_round_ = e.round;
  }
}

void ScheduledCrash::crash_before_send(Round round,
                                       const std::vector<bool>& alive,
                                       std::vector<bool>& out) {
  for (const CrashEvent& e : events_) {
    if (e.round == round && e.point == CrashPoint::kBeforeSend &&
        e.process < alive.size() && alive[e.process]) {
      out[e.process] = true;
    }
  }
}

void ScheduledCrash::crash_after_send(Round round,
                                      const std::vector<bool>& alive,
                                      std::vector<bool>& out) {
  for (const CrashEvent& e : events_) {
    if (e.round == round && e.point == CrashPoint::kAfterSend &&
        e.process < alive.size() && alive[e.process]) {
      out[e.process] = true;
    }
  }
}

RandomCrash::RandomCrash(Options opts) : opts_(opts), rng_(opts.seed) {}

void RandomCrash::crash_before_send(Round round,
                                    const std::vector<bool>& alive,
                                    std::vector<bool>& out) {
  if (round > opts_.stop_after) return;
  std::uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (!alive[i] || alive_count <= 1 || crashes_ >= opts_.max_crashes) {
      continue;
    }
    if (rng_.chance(opts_.p)) {
      out[i] = true;
      ++crashes_;
      --alive_count;
    }
  }
}

}  // namespace ccd
