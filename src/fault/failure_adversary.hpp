// Crash-failure adversaries (Section 3.3).
//
// In the formal model any process may non-deterministically enter its
// absorbing fail state in any round.  Constraint 3 of Definition 11 derives
// round-r messages from the state AFTER round r-1, so a process crashing in
// round r still broadcasts in r (it fails to take its round-r transition).
// We expose both crash points:
//   kBeforeSend - equivalent to crashing in round r-1 after its transition:
//                 the process is silent from round r on;
//   kAfterSend  - the literal Definition 11 semantics: the round-r message
//                 goes out, the transition is skipped.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"
#include "util/rng.hpp"

namespace ccd {

enum class CrashPoint : std::uint8_t { kBeforeSend, kAfterSend };

struct CrashEvent {
  Round round = 0;
  ProcessId process = 0;
  CrashPoint point = CrashPoint::kBeforeSend;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

class FailureAdversary {
 public:
  virtual ~FailureAdversary() = default;

  /// Mark processes to crash before round `round`'s sends.  `out` arrives
  /// all-false with one slot per process; only currently-alive slots are
  /// honoured.
  virtual void crash_before_send(Round round, const std::vector<bool>& alive,
                                 std::vector<bool>& out) {
    (void)round;
    (void)alive;
    (void)out;
  }

  /// Mark processes to crash after round `round`'s sends (their message is
  /// delivered, their transition is skipped).
  virtual void crash_after_send(Round round, const std::vector<bool>& alive,
                                std::vector<bool>& out) {
    (void)round;
    (void)alive;
    (void)out;
  }

  /// Upper bound on the last round in which this adversary crashes anyone;
  /// 0 when failure-free.  Used for "after failures cease" accounting
  /// (Theorem 3's termination bound).
  virtual Round last_crash_round() const { return 0; }

  /// True iff this adversary statically never crashes anyone: both crash
  /// hooks are stateless, RNG-free no-ops.  Engines may then skip both
  /// crash points entirely without observable effect.  Only NoFailures
  /// qualifies.
  virtual bool never_crashes() const { return false; }

  virtual const char* name() const = 0;
};

class NoFailures final : public FailureAdversary {
 public:
  bool never_crashes() const override { return true; }
  const char* name() const override { return "NoFailures"; }
};

/// Deterministic crash schedule; the workhorse for worst-case scenarios
/// such as Theorem 3's "lead everyone to a leaf, then die".
class ScheduledCrash final : public FailureAdversary {
 public:
  explicit ScheduledCrash(std::vector<CrashEvent> events);

  void crash_before_send(Round round, const std::vector<bool>& alive,
                         std::vector<bool>& out) override;
  void crash_after_send(Round round, const std::vector<bool>& alive,
                        std::vector<bool>& out) override;
  Round last_crash_round() const override { return last_round_; }
  const char* name() const override { return "ScheduledCrash"; }

 private:
  std::vector<CrashEvent> events_;
  Round last_round_ = 0;
};

/// Crashes each alive process independently with probability p per round
/// through round `stop_after`, never crashing the final survivor and never
/// exceeding `max_crashes` total.
class RandomCrash final : public FailureAdversary {
 public:
  struct Options {
    double p = 0.02;
    Round stop_after = 50;
    std::uint32_t max_crashes = ~0u;
    std::uint64_t seed = 17;
  };

  explicit RandomCrash(Options opts);

  void crash_before_send(Round round, const std::vector<bool>& alive,
                         std::vector<bool>& out) override;
  Round last_crash_round() const override { return opts_.stop_after; }
  const char* name() const override { return "RandomCrash"; }

 private:
  Options opts_;
  Rng rng_;
  std::uint32_t crashes_ = 0;
};

}  // namespace ccd
