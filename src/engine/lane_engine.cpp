#include "engine/lane_engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cm/no_cm.hpp"
#include "net/no_loss.hpp"

namespace ccd {

namespace {

[[maybe_unused]] bool is_clique(const Topology& topo) {
  for (std::size_t i = 0; i < topo.size(); ++i) {
    if (topo.degree(i) + 1 != topo.size()) return false;
  }
  return true;
}

/// Iterate the set bits of `word` (ascending), calling fn(bit_index).
template <typename Fn>
inline void for_each_bit(std::uint64_t word, std::size_t base, Fn&& fn) {
  while (word) {
    fn(base + static_cast<std::size_t>(std::countr_zero(word)));
    word &= word - 1;
  }
}

}  // namespace

LaneEngine::LaneEngine(std::vector<EngineWorld> worlds, LaneOptions options)
    : lanes_(worlds.size()), options_(options), worlds_(std::move(worlds)) {
  assert(lanes_ >= 1 && lanes_ <= kLaneWidth);
  n_ = worlds_[0].world.processes.size();
  assert(n_ >= 1);  // n = 0 never enters the lane path (scalar tail)
  words_ = (n_ + 63) / 64;
  for ([[maybe_unused]] const EngineWorld& ew : worlds_) {
    assert(ew.world.processes.size() == n_);
    assert(ew.topology.size() == n_);
    assert(ew.channel == worlds_[0].channel);
    assert(ew.scope == worlds_[0].scope);
    assert(ew.scope == CollisionScope::kLocal || is_clique(ew.topology));
    assert(ew.world.initial_values.empty() ||
           ew.world.initial_values.size() == n_);
  }

  // Shared adjacency bit rows (all lanes run the same graph; lane 0's
  // topology is the canonical copy).
  adj_.assign(n_ * words_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::uint32_t j : worlds_[0].topology.neighbors(i)) {
      adj_[i * words_ + j / 64] |= std::uint64_t{1} << (j % 64);
    }
  }

  active_ = lanes_ == kLaneWidth ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << lanes_) - 1;
  const std::uint64_t all_lanes = active_;

  alive_pw_.assign(lanes_ * words_, 0);
  halted_pw_.assign(lanes_ * words_, 0);
  participating_pw_.assign(lanes_ * words_, 0);
  sent_pw_.assign(lanes_ * words_, 0);
  alive_lw_.assign(n_, all_lanes);
  decided_lw_.assign(n_, 0);

  alive_vb_.resize(lanes_);
  participating_vb_.resize(lanes_);
  sent_vb_.resize(lanes_);
  crash_mask_vb_.resize(lanes_);
  cm_advice_.resize(lanes_);
  cd_advice_.resize(lanes_);
  recv_count_.resize(lanes_);
  local_c_.resize(lanes_);
  sent_msg_.resize(lanes_);
  recv_.resize(lanes_);
  counters_.resize(lanes_);
  decided_value_.resize(lanes_);
  total_broadcasts_.assign(lanes_, 0);
  crashes_applied_.assign(lanes_, 0);
  num_alive_.assign(lanes_, n_);
  broadcaster_count_.assign(lanes_, 0);
  results_.resize(lanes_);
  logs_.reserve(lanes_);
  link_rng_.reserve(lanes_);
  broadcasting_neighbors_.reserve(worlds_[0].topology.max_degree());

  for (std::size_t l = 0; l < lanes_; ++l) {
    World& w = worlds_[l].world;
    // Same neutral-element substitution as the scalar engine: a caller-
    // assembled world may omit components.
    if (!w.cm) w.cm = std::make_unique<NoCm>();
    if (!w.cd) {
      w.cd = std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                              make_truthful_policy());
    }
    if (!w.loss) w.loss = std::make_unique<NoLoss>();
    if (!w.fault) w.fault = std::make_unique<NoFailures>();

    link_rng_.emplace_back(worlds_[l].link_seed);
    logs_.emplace_back(n_, /*record_views=*/false);
    for (std::size_t i = 0; i < w.initial_values.size(); ++i) {
      logs_[l].set_initial_value(static_cast<ProcessId>(i),
                                 w.initial_values[i]);
    }

    alive_vb_[l].assign(n_, true);
    participating_vb_[l].assign(n_, false);
    sent_vb_[l].assign(n_, false);
    crash_mask_vb_[l].assign(n_, false);
    cd_advice_[l].assign(n_, CdAdvice::kNull);
    cm_advice_[l].reserve(n_);
    recv_count_[l].assign(n_, 0);
    local_c_[l].assign(n_, 0);
    sent_msg_[l].resize(n_);
    recv_[l].resize(n_);
    decided_value_[l].assign(n_, kNoValue);

    std::uint64_t* alive = &alive_pw_[lane_base(l)];
    std::uint64_t* halted = &halted_pw_[lane_base(l)];
    for (std::size_t i = 0; i < n_; ++i) {
      alive[i / 64] |= std::uint64_t{1} << (i % 64);
      const bool h = w.processes[i]->halted();
      if (h) halted[i / 64] |= std::uint64_t{1} << (i % 64);
      participating_vb_[l][i] = !h;
    }
  }
  if (worlds_[0].channel == ChannelModel::kMatrix) delivery_.reset(n_, false);
}

bool LaneEngine::all_correct_decided(std::size_t l) const {
  const std::uint64_t bit = std::uint64_t{1} << l;
  for (std::size_t i = 0; i < n_; ++i) {
    if ((alive_lw_[i] & ~decided_lw_[i]) & bit) return false;
  }
  return true;
}

void LaneEngine::note_halt_state(std::size_t l, std::size_t i) {
  const bool h = worlds_[l].world.processes[i]->halted();
  std::uint64_t& word = halted_pw_[lane_base(l) + i / 64];
  const std::uint64_t bit = std::uint64_t{1} << (i % 64);
  if (h) {
    word |= bit;
    participating_vb_[l][i] = false;
  } else {
    word &= ~bit;
    participating_vb_[l][i] = alive_vb_[l][i];
  }
}

void LaneEngine::commit_crashes(std::size_t l, Round r) {
  const std::vector<bool>& mask = crash_mask_vb_[l];
  const std::uint64_t lane_bit = std::uint64_t{1} << l;
  std::uint64_t* alive = &alive_pw_[lane_base(l)];
  std::uint64_t* part = &participating_pw_[lane_base(l)];
  for (std::size_t i = 0; i < n_; ++i) {
    if (mask[i] && alive_vb_[l][i]) {
      const std::uint64_t bit = std::uint64_t{1} << (i % 64);
      alive[i / 64] &= ~bit;
      part[i / 64] &= ~bit;
      alive_lw_[i] &= ~lane_bit;
      alive_vb_[l][i] = false;
      participating_vb_[l][i] = false;
      --num_alive_[l];
      ++crashes_applied_[l];
      logs_[l].record_crash(static_cast<ProcessId>(i), r);
    }
  }
}

void LaneEngine::deliver_matrix_global(std::size_t l, Round r) {
  World& w = worlds_[l].world;
  const std::uint64_t* sent = &sent_pw_[lane_base(l)];
  const std::uint64_t* part = &participating_pw_[lane_base(l)];
  std::vector<std::uint32_t>& rc = recv_count_[l];
  std::fill(rc.begin(), rc.end(), 0);

  const bool all = w.loss->always_delivers();
  if (all) {
    // Loss-free clique: every participating receiver observes the SAME
    // multiset -- every broadcast, self-delivery included -- so build and
    // sort it once and let C_r hand each receiver the shared view.  The
    // scalar engine assembles and sorts this per receiver; the bytes it
    // produces are identical.
    shared_recv_.clear();
    for (std::size_t sw = 0; sw < words_; ++sw) {
      for_each_bit(sent[sw], sw * 64, [&](std::size_t j) {
        shared_recv_.push_back(sent_msg_[l][j]);
      });
    }
    std::sort(shared_recv_.begin(), shared_recv_.end());
    recv_shared_ = true;
    const auto count = static_cast<std::uint32_t>(shared_recv_.size());
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      for_each_bit(part[wdx], wdx * 64, [&](std::size_t i) {
        rc[i] = count;
        counters_[l].messages_delivered += count;
      });
    }
    return;
  }

  // The adversary contract: a reset matrix in, delivery decisions out,
  // self-delivery enforced afterwards (Definition 11, constraint 5).
  {
    std::vector<bool>& sv = sent_vb_[l];
    sv.assign(n_, false);
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      for_each_bit(sent[wdx], wdx * 64, [&](std::size_t j) { sv[j] = true; });
    }
    delivery_.reset(n_, false);
    w.loss->decide_delivery(r, sv, delivery_);
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      for_each_bit(sent[wdx], wdx * 64,
                   [&](std::size_t j) { delivery_.set(j, j, true); });
    }
  }

  // Clique: the receiver set is the participation mask, and only set bits
  // of the sent words are ever visited (the scalar engine scans all n
  // senders per receiver).
  for (std::size_t wdx = 0; wdx < words_; ++wdx) {
    for_each_bit(part[wdx], wdx * 64, [&](std::size_t i) {
      std::vector<Message>& in = recv_[l][i];
      in.clear();
      for (std::size_t sw = 0; sw < words_; ++sw) {
        for_each_bit(sent[sw], sw * 64, [&](std::size_t j) {
          if (delivery_.delivered(i, j)) {
            in.push_back(sent_msg_[l][j]);
          }
        });
      }
      std::sort(in.begin(), in.end());
      rc[i] = static_cast<std::uint32_t>(in.size());
      counters_[l].messages_delivered += rc[i];
    });
  }
}

void LaneEngine::deliver_matrix_local(std::size_t l, Round r) {
  World& w = worlds_[l].world;
  const std::uint64_t* sent = &sent_pw_[lane_base(l)];
  const std::uint64_t* alive = &alive_pw_[lane_base(l)];
  std::vector<std::uint32_t>& rc = recv_count_[l];
  std::vector<std::uint32_t>& lc = local_c_[l];
  std::fill(rc.begin(), rc.end(), 0);
  std::fill(lc.begin(), lc.end(), 0);

  const bool all = w.loss->always_delivers();
  if (!all) {
    std::vector<bool>& sv = sent_vb_[l];
    sv.assign(n_, false);
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      for_each_bit(sent[wdx], wdx * 64, [&](std::size_t j) { sv[j] = true; });
    }
    delivery_.reset(n_, false);
    w.loss->decide_delivery(r, sv, delivery_);
  }

  // Ground-truth contention c_i is counted over the neighborhood whether or
  // not anything was delivered; the adversary's matrix is masked by
  // adjacency.  Neighbor lists are sorted ascending, so set-bit order is
  // exactly the scalar engine's iteration order.
  for (std::size_t wdx = 0; wdx < words_; ++wdx) {
    for_each_bit(alive[wdx], wdx * 64, [&](std::size_t i) {
      std::vector<Message>& in = recv_[l][i];
      in.clear();
      std::uint32_t c = 0;
      if ((sent[i / 64] >> (i % 64)) & 1u) {
        ++c;                              // own broadcast counts toward c_i
        in.push_back(sent_msg_[l][i]);    // and is always self-delivered
      }
      const std::uint64_t* adj = &adj_[i * words_];
      for (std::size_t sw = 0; sw < words_; ++sw) {
        for_each_bit(sent[sw] & adj[sw], sw * 64, [&](std::size_t j) {
          ++c;
          if (all || delivery_.delivered(i, j)) {
            in.push_back(sent_msg_[l][j]);
          }
        });
      }
      std::sort(in.begin(), in.end());
      rc[i] = static_cast<std::uint32_t>(in.size());
      counters_[l].messages_delivered += rc[i];
      lc[i] = c;
    });
  }
}

void LaneEngine::deliver_capture(std::size_t l) {
  const std::uint64_t* sent = &sent_pw_[lane_base(l)];
  const std::uint64_t* alive = &alive_pw_[lane_base(l)];
  const MhLinkModel& link = worlds_[l].link;
  Rng& rng = link_rng_[l];
  std::vector<std::uint32_t>& rc = recv_count_[l];
  std::vector<std::uint32_t>& lc = local_c_[l];
  std::fill(rc.begin(), rc.end(), 0);
  std::fill(lc.begin(), lc.end(), 0);

  // Receivers ascending, dead skipped WITHOUT consuming randomness -- the
  // per-lane RNG stream must advance exactly as the scalar engine's.
  for (std::size_t wdx = 0; wdx < words_; ++wdx) {
    for_each_bit(alive[wdx], wdx * 64, [&](std::size_t i) {
      std::vector<Message>& in = recv_[l][i];
      in.clear();
      broadcasting_neighbors_.clear();
      const std::uint64_t* adj = &adj_[i * words_];
      for (std::size_t sw = 0; sw < words_; ++sw) {
        for_each_bit(sent[sw] & adj[sw], sw * 64, [&](std::size_t j) {
          broadcasting_neighbors_.push_back(static_cast<std::uint32_t>(j));
        });
      }
      std::uint32_t c =
          static_cast<std::uint32_t>(broadcasting_neighbors_.size());
      if ((sent[i / 64] >> (i % 64)) & 1u) {
        ++c;
        in.push_back(sent_msg_[l][i]);
      }
      if (broadcasting_neighbors_.size() == 1) {
        if (rng.chance(link.p_single)) {
          in.push_back(sent_msg_[l][broadcasting_neighbors_.front()]);
        }
      } else if (broadcasting_neighbors_.size() > 1) {
        if (rng.chance(link.p_capture)) {
          const std::uint32_t j = broadcasting_neighbors_[rng.below(
              broadcasting_neighbors_.size())];
          in.push_back(sent_msg_[l][j]);
        }
      }
      std::sort(in.begin(), in.end());
      rc[i] = static_cast<std::uint32_t>(in.size());
      counters_[l].messages_delivered += rc[i];
      lc[i] = c;
    });
  }
}

void LaneEngine::lane_round(std::size_t l, Round r) {
  World& w = worlds_[l].world;
  const bool local = worlds_[0].scope == CollisionScope::kLocal;
  obs::EngineCounters& ctr = counters_[l];
  ++ctr.rounds;

  // Participation snapshot for this round: alive and not halted.  Both
  // flags are event-maintained (crash commits, halt memoization), so the
  // snapshot is W word ops instead of n virtual halted() probes.
  std::uint64_t* part = &participating_pw_[lane_base(l)];
  {
    const std::uint64_t* alive = &alive_pw_[lane_base(l)];
    const std::uint64_t* halted = &halted_pw_[lane_base(l)];
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      part[wdx] = alive[wdx] & ~halted[wdx];
    }
  }

  // W_r: contention advice.
  w.cm->advise(r, participating_vb_[l], cm_advice_[l]);
  cm_advice_[l].resize(n_, CmAdvice::kPassive);
  ++ctr.cm_advice_calls;

  const bool faults = !w.fault->never_crashes();

  // Crash point A (kBeforeSend): marked processes are silent from round r
  // on.
  if (faults) {
    crash_mask_vb_[l].assign(n_, false);
    w.fault->crash_before_send(r, alive_vb_[l], crash_mask_vb_[l]);
    const std::uint64_t pre = crashes_applied_[l];
    commit_crashes(l, r);
    ctr.crashes_before_send += crashes_applied_[l] - pre;
  }

  // M_r: message assignments.  Senders land as set bits; the message slot
  // is valid iff the bit is (no per-round optional churn).
  std::uint64_t* sent = &sent_pw_[lane_base(l)];
  std::fill(sent, sent + words_, 0);
  std::uint32_t& bc = broadcaster_count_[l];
  bc = 0;
  for (std::size_t wdx = 0; wdx < words_; ++wdx) {
    for_each_bit(part[wdx], wdx * 64, [&](std::size_t i) {
      std::optional<Message> m = w.processes[i]->on_send(r, cm_advice_[l][i]);
      if (m.has_value()) {
        sent_msg_[l][i] = *m;
        sent[wdx] |= std::uint64_t{1} << (i % 64);
        ++bc;
        ++total_broadcasts_[l];
      }
      note_halt_state(l, i);
    });
  }

  // Crash point B (kAfterSend): the round-r message is out, the transition
  // is not taken.  kLocal commits immediately; kGlobal defers so the
  // crasher's round-r view still forms.
  const std::uint64_t pre_b = crashes_applied_[l];
  if (faults) {
    crash_mask_vb_[l].assign(n_, false);
    w.fault->crash_after_send(r, alive_vb_[l], crash_mask_vb_[l]);
    if (local) commit_crashes(l, r);
  }

  // N_r: receive multisets.
  recv_shared_ = false;
  if (worlds_[0].channel == ChannelModel::kMatrix) {
    if (local) {
      deliver_matrix_local(l, r);
    } else {
      deliver_matrix_global(l, r);
    }
  } else {
    deliver_capture(l);
  }

  ctr.messages_sent += bc;

  // D_r: collision detector advice -- one global oracle call on a clique,
  // per-neighborhood (c_i, t_i) otherwise.
  if (!local) {
    w.cd->advise(r, bc, recv_count_[l], cd_advice_[l]);
    ++ctr.cd_advice_calls;
    if (bc >= 2) ++ctr.collisions;
  } else {
    const std::uint64_t* alive = &alive_pw_[lane_base(l)];
    for (std::size_t wdx = 0; wdx < words_; ++wdx) {
      for_each_bit(alive[wdx], wdx * 64, [&](std::size_t i) {
        cd_advice_[l][i] = w.cd->advise_local(r, static_cast<ProcessId>(i),
                                              local_c_[l][i],
                                              recv_count_[l][i]);
        ++ctr.cd_advice_calls;
        if (local_c_[l][i] >= 2) ++ctr.collisions;
      });
    }
  }
  w.cm->observe(r, bc);

  // C_r: transitions (skipped for processes crashing this round).  kLocal
  // consults the LIVE halted flag (a process that halted inside its own
  // on_send takes no transition); kGlobal uses the round-start snapshot
  // minus this round's after-send crashers.
  const std::uint64_t lane_bit = std::uint64_t{1} << l;
  for (std::size_t wdx = 0; wdx < words_; ++wdx) {
    std::uint64_t takers;
    if (local) {
      takers = alive_pw_[lane_base(l) + wdx] &
               ~halted_pw_[lane_base(l) + wdx];
    } else {
      std::uint64_t crash_b = 0;
      if (faults) {
        const std::vector<bool>& mask = crash_mask_vb_[l];
        const std::size_t hi = std::min(n_, (wdx + 1) * 64);
        for (std::size_t i = wdx * 64; i < hi; ++i) {
          if (mask[i]) crash_b |= std::uint64_t{1} << (i % 64);
        }
      }
      takers = part[wdx] & ~crash_b;
    }
    for_each_bit(takers, wdx * 64, [&](std::size_t i) {
      w.processes[i]->on_receive(
          r, recv_shared_ ? shared_recv_ : recv_[l][i], cd_advice_[l][i],
          cm_advice_[l][i]);
      note_halt_state(l, i);
      if (decided_value_[l][i] == kNoValue && w.processes[i]->decided()) {
        decided_value_[l][i] = w.processes[i]->decision();
        decided_lw_[i] |= lane_bit;
        logs_[l].record_decision(static_cast<ProcessId>(i), r,
                                 decided_value_[l][i]);
      }
    });
  }
  if (!local && faults) commit_crashes(l, r);
  ctr.crashes_after_send += crashes_applied_[l] - pre_b;
}

void LaneEngine::step() {
  const Round r = ++round_;
  for_each_bit(active_, 0, [&](std::size_t l) { lane_round(l, r); });
}

void LaneEngine::retire(std::size_t l) {
  assert(lane_active(l));
  RunResult& result = results_[l];
  result.rounds_executed = round_;
  result.all_correct_decided = all_correct_decided(l);
  result.last_decision_round = 0;
  for (const DecisionRecord& d : logs_[l].decisions()) {
    if (alive(l, d.process) && d.round > result.last_decision_round) {
      result.last_decision_round = d.round;
    }
  }
  result.num_crashed = static_cast<std::uint32_t>(n_ - num_alive_[l]);
  active_ &= ~(std::uint64_t{1} << l);
}

void LaneEngine::run(Round max_rounds) {
  while (active_) {
    if (options_.stop_when_all_decided) {
      // Which lanes still hold an undecided correct process: one AND-NOT
      // per process covers all 64 seeds at once.
      std::uint64_t undecided = 0;
      for (std::size_t i = 0; i < n_; ++i) {
        undecided |= alive_lw_[i] & ~decided_lw_[i];
      }
      for_each_bit(active_ & ~undecided, 0,
                   [&](std::size_t l) { retire(l); });
      if (!active_) return;
    }
    if (round_ >= max_rounds) break;
    step();
  }
  for_each_bit(active_, 0, [&](std::size_t l) { retire(l); });
}

}  // namespace ccd
