// LaneEngine: the RoundEngine's batched sibling -- up to 64 structurally
// identical worlds ("lanes", one per seed of a sweep cell) advance through
// Definition 11's W/M/N/D/C round structure in lockstep, sharing one round
// counter, one topology, and one set of adjacency bitmask rows.
//
// Layout is struct-of-arrays in BOTH directions:
//
//  * process words -- per lane, the alive / halted / participating / sent
//    flags over processes are packed ceil(n/64) `uint64_t`s wide.  The
//    delivery loops iterate SET BITS of `sent & adjacency_row(i)` instead
//    of scanning all n senders per receiver, which collapses the scalar
//    engine's O(n^2) clique delivery masking to O(broadcasters * n / 64)
//    word operations -- the SIMD-in-a-register fast path PR 5 deferred.
//
//  * lane words -- per process, one `uint64_t` whose bit l mirrors lane
//    l's alive / decided flag.  Cross-lane sweeps (which lanes still have
//    an undecided correct process?) are one AND-NOT per process for all 64
//    seeds at once, so per-lane termination divergence costs O(n) words
//    per round, not O(n * lanes) flag tests.
//
// EQUIVALENCE CONTRACT (the whole point -- see
// tests/engine/lane_differential_test.cpp): a lane's observable execution
// is byte-for-byte the scalar RoundEngine's.  Each lane owns its OWN
// component objects (cm / cd / loss / fault / processes / link RNG), built
// exactly as the scalar path builds them, and the engine performs the SAME
// component calls with the SAME arguments in the SAME order as
// RoundEngine::step() would per lane -- so every RNG stream advances
// identically and reports, golden FNV-1a hashes, and per-run EngineCounters
// are exact.  The speedup comes only from engine-owned bookkeeping:
//
//  * bitmask words replace vector<bool> scans (masks, termination);
//  * senders are iterated as set bits, never scanned;
//  * per-round traces are not recorded (reports never read them; the
//    scalar consensus adapter records them unconditionally);
//  * halted() is memoized -- it can only change inside that process's own
//    on_send/on_receive, so the cache is re-queried exactly there and the
//    per-round n virtual participation probes disappear;
//  * statically neutral components short-circuit: NoLoss
//    (LossAdversary::always_delivers) skips the delivery matrix entirely,
//    NoFailures (FailureAdversary::never_crashes) skips both crash points.
//    Both are stateless and RNG-free, so skipping the calls is
//    unobservable.
//
// Divergence rule: lanes share the round counter but not a fate.  A lane
// that terminates (all correct processes decided, or the caller retires it)
// drops out of the active mask and is never stepped again; the remaining
// lanes keep advancing.  Worlds whose structure itself diverges per seed
// (random-geometric topologies, phase-2 consensus among a seed-dependent
// head count, n = 0) do not enter the lane path at all -- exp::LaneExecutor
// routes them to the scalar engine (the "scalar tail", which also absorbs
// the S mod 64 remainder of a cell's seeds).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/round_engine.hpp"
#include "multihop/topology.hpp"
#include "obs/telemetry.hpp"
#include "sim/execution_log.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace ccd {

/// Max lanes per engine: one bit of a uint64_t lane word per seed.
inline constexpr std::size_t kLaneWidth = 64;

struct LaneOptions {
  /// run(): retire a lane as soon as every non-crashed process decided
  /// (the scalar engine's stop_when_all_decided).  Callers driving step()
  /// directly (flood / MIS budget loops) retire lanes themselves.
  bool stop_when_all_decided = true;
};

class LaneEngine {
 public:
  /// All worlds must agree on process count, topology (adjacency is shared
  /// from worlds[0]), channel, scope, and link model; each keeps its own
  /// components and link_seed.  1 <= worlds.size() <= kLaneWidth, n >= 1.
  explicit LaneEngine(std::vector<EngineWorld> worlds, LaneOptions options = {});

  std::size_t lanes() const { return lanes_; }
  std::size_t size() const { return n_; }
  Round current_round() const { return round_; }
  const Topology& topology() const { return worlds_[0].topology; }

  /// Advance every active lane exactly one round (lockstep).
  void step();

  /// Consensus driving: mirror RoundEngine::run(max_rounds) per lane --
  /// the stop condition is evaluated before each step, lanes retire
  /// individually, and results() afterwards equal the scalar engine's
  /// RunResult per lane.
  void run(Round max_rounds);

  /// Lanes still being stepped (bit l = lane l).
  std::uint64_t active_mask() const { return active_; }
  bool lane_active(std::size_t l) const { return (active_ >> l) & 1u; }

  /// Stop stepping a lane and snapshot its RunResult (budget loops call
  /// this when a lane meets its workload-specific completion condition).
  void retire(std::size_t l);

  /// Valid after the lane retired (or run() returned).
  const RunResult& result(std::size_t l) const { return results_[l]; }

  const World& world(std::size_t l) const { return worlds_[l].world; }
  Process& process(std::size_t l, std::size_t i) {
    return *worlds_[l].world.processes[i];
  }
  bool alive(std::size_t l, std::size_t i) const {
    return (alive_lw_[i] >> l) & 1u;
  }
  std::size_t num_alive(std::size_t l) const { return num_alive_[l]; }
  std::uint64_t crashes_applied(std::size_t l) const {
    return crashes_applied_[l];
  }
  std::uint64_t total_broadcasts(std::size_t l) const {
    return total_broadcasts_[l];
  }
  bool all_correct_decided(std::size_t l) const;
  const ExecutionLog& log(std::size_t l) const { return logs_[l]; }
  const obs::EngineCounters& counters(std::size_t l) const {
    return counters_[l];
  }

 private:
  std::size_t lane_base(std::size_t l) const { return l * words_; }
  std::uint64_t adj_word(std::size_t i, std::size_t w) const {
    return adj_[i * words_ + w];
  }
  void commit_crashes(std::size_t l, Round r);
  void lane_round(std::size_t l, Round r);
  void deliver_matrix_global(std::size_t l, Round r);
  void deliver_matrix_local(std::size_t l, Round r);
  void deliver_capture(std::size_t l);
  void note_halt_state(std::size_t l, std::size_t i);

  std::size_t lanes_ = 0;
  std::size_t n_ = 0;
  std::size_t words_ = 0;  ///< process words per lane row: ceil(n/64)
  LaneOptions options_;
  Round round_ = 0;
  std::uint64_t active_ = 0;

  std::vector<EngineWorld> worlds_;
  std::vector<Rng> link_rng_;

  // Shared across lanes: adjacency bit rows (row i = neighbors of i).
  std::vector<std::uint64_t> adj_;  // [n][words_]

  // Process words, per lane ([lanes][words_], flattened).
  std::vector<std::uint64_t> alive_pw_;
  std::vector<std::uint64_t> halted_pw_;
  std::vector<std::uint64_t> participating_pw_;  // round-start snapshot
  std::vector<std::uint64_t> sent_pw_;

  // Lane words, per process (bit l = lane l).
  std::vector<std::uint64_t> alive_lw_;
  std::vector<std::uint64_t> decided_lw_;

  // Per-lane mirrors handed to components (identical values to the scalar
  // engine's vectors; alive/participating are event-maintained, not
  // rebuilt per round).
  std::vector<std::vector<bool>> alive_vb_;
  std::vector<std::vector<bool>> participating_vb_;
  std::vector<std::vector<bool>> sent_vb_;
  std::vector<std::vector<bool>> crash_mask_vb_;
  std::vector<std::vector<CmAdvice>> cm_advice_;
  std::vector<std::vector<CdAdvice>> cd_advice_;
  std::vector<std::vector<std::uint32_t>> recv_count_;
  std::vector<std::vector<std::uint32_t>> local_c_;
  std::vector<std::vector<Message>> sent_msg_;          // [l][i], sent bit = valid
  std::vector<std::vector<std::vector<Message>>> recv_;  // [l][i] multisets

  // Per-lane tallies.
  std::vector<obs::EngineCounters> counters_;
  std::vector<ExecutionLog> logs_;
  std::vector<std::vector<Value>> decided_value_;
  std::vector<std::uint64_t> total_broadcasts_;
  std::vector<std::uint64_t> crashes_applied_;
  std::vector<std::size_t> num_alive_;
  std::vector<std::uint32_t> broadcaster_count_;
  std::vector<RunResult> results_;

  // Shared scratch (consumed within one lane's delivery phase).
  DeliveryMatrix delivery_;
  std::vector<std::uint32_t> broadcasting_neighbors_;
  /// Loss-free clique fast path: with a statically-all-delivering loss
  /// model every participating receiver observes the SAME multiset, so
  /// deliver_matrix_global builds it once here and C_r hands every
  /// on_receive this shared view instead of a per-receiver copy.  Valid
  /// only within the lane_round that set recv_shared_.
  std::vector<Message> shared_recv_;
  bool recv_shared_ = false;
};

}  // namespace ccd
