#include "engine/round_engine.hpp"

#include <algorithm>
#include <cassert>

#include "cm/no_cm.hpp"
#include "net/no_loss.hpp"

namespace ccd {

namespace {

[[maybe_unused]] bool is_clique(const Topology& topo) {
  for (std::size_t i = 0; i < topo.size(); ++i) {
    if (topo.degree(i) + 1 != topo.size()) return false;
  }
  return true;
}

}  // namespace

RoundEngine::RoundEngine(EngineWorld world, EngineOptions options)
    : world_(std::move(world)),
      options_(options),
      log_(world_.world.processes.size(),
           options.record_views && options.record_rounds),
      link_rng_(world_.link_seed) {
  const std::size_t n = world_.world.processes.size();
  assert(world_.topology.size() == n);
  // The global oracle is only meaningful where every broadcaster is a
  // neighbor of every receiver; non-clique graphs must use kLocal.
  assert(world_.scope == CollisionScope::kLocal || is_clique(world_.topology));
  assert(world_.world.initial_values.empty() ||
         world_.world.initial_values.size() == n);
  // Degenerate-world robustness: a caller-assembled World may omit
  // components.  Substitute the neutral element for each rather than
  // dereferencing null mid-round: NoCM (everyone active), the NoCD
  // detector (no information), a perfect channel, no failures.
  if (!world_.world.cm) world_.world.cm = std::make_unique<NoCm>();
  if (!world_.world.cd) {
    world_.world.cd = std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                                       make_truthful_policy());
  }
  if (!world_.world.loss) world_.world.loss = std::make_unique<NoLoss>();
  if (!world_.world.fault) world_.world.fault = std::make_unique<NoFailures>();

  num_alive_ = n;
  alive_.assign(n, true);
  participating_.assign(n, false);
  decided_value_.assign(n, kNoValue);
  crash_mask_.assign(n, false);
  sent_flag_.assign(n, false);
  sent_msg_.resize(n);
  recv_.resize(n);
  recv_count_.assign(n, 0);
  local_c_.assign(n, 0);
  cm_advice_.reserve(n);
  cd_advice_.assign(n, CdAdvice::kNull);
  broadcasting_neighbors_.reserve(n > 0 ? world_.topology.max_degree() : 0);
  if (world_.channel == ChannelModel::kMatrix) delivery_.reset(n, false);
  for (std::size_t i = 0; i < world_.world.initial_values.size(); ++i) {
    log_.set_initial_value(static_cast<ProcessId>(i),
                           world_.world.initial_values[i]);
  }
}

bool RoundEngine::all_correct_decided() const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (alive_[i] && decided_value_[i] == kNoValue) return false;
  }
  return true;
}

void RoundEngine::commit_crashes(Round r) {
  for (std::size_t i = 0; i < crash_mask_.size(); ++i) {
    if (crash_mask_[i] && alive_[i]) {
      alive_[i] = false;
      participating_[i] = false;
      --num_alive_;
      ++crashes_applied_;
      log_.record_crash(static_cast<ProcessId>(i), r);
    }
  }
}

void RoundEngine::deliver_matrix(Round r) {
  const std::size_t n = size();
  // N_r: delivery decided by the loss adversary; integrity/no-duplication
  // hold by construction (a receiver gets at most one copy of each sent
  // message), self-delivery is enforced here (Definition 11, constraint 5).
  delivery_.reset(n, false);
  world_.world.loss->decide_delivery(r, sent_flag_, delivery_);
  for (std::size_t j = 0; j < n; ++j) {
    if (sent_flag_[j]) delivery_.set(j, j, true);
  }
  if (world_.scope == CollisionScope::kGlobal) {
    // Clique: every sender is adjacent to every receiver, so the adjacency
    // mask is the identity and the receiver set is the participation mask.
    for (std::size_t i = 0; i < n; ++i) {
      recv_[i].clear();
      recv_count_[i] = 0;
      local_c_[i] = broadcaster_count_;
      if (!participating_[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (sent_flag_[j] && delivery_.delivered(i, j)) {
          recv_[i].push_back(*sent_msg_[j]);
        }
      }
      // Receive sets are multisets; sort for a canonical representation so
      // views compare structurally (Definition 12).
      std::sort(recv_[i].begin(), recv_[i].end());
      recv_count_[i] = static_cast<std::uint32_t>(recv_[i].size());
      counters_.messages_delivered += recv_count_[i];
    }
  } else {
    // Arbitrary graph: the adversary's matrix is masked by adjacency, and
    // the ground-truth contention c_i is counted over the neighborhood
    // whether or not anything was delivered.
    for (std::size_t i = 0; i < n; ++i) {
      recv_[i].clear();
      if (!alive_[i]) {
        recv_count_[i] = 0;
        local_c_[i] = 0;
        continue;
      }
      std::uint32_t c = 0;
      if (sent_flag_[i]) {
        ++c;                              // own broadcast counts toward c_i
        recv_[i].push_back(*sent_msg_[i]);  // and is always self-delivered
      }
      for (std::uint32_t j : world_.topology.neighbors(i)) {
        if (!sent_flag_[j]) continue;
        ++c;
        if (delivery_.delivered(i, j)) recv_[i].push_back(*sent_msg_[j]);
      }
      std::sort(recv_[i].begin(), recv_[i].end());
      recv_count_[i] = static_cast<std::uint32_t>(recv_[i].size());
      counters_.messages_delivered += recv_count_[i];
      local_c_[i] = c;
    }
  }
}

void RoundEngine::deliver_capture() {
  const std::size_t n = size();
  // Capture-effect physics, per live receiver over its broadcasting
  // neighbors.  Dead processes receive nothing; long-dead processes never
  // appear in any c_i because they no longer broadcast.
  for (std::size_t i = 0; i < n; ++i) {
    recv_[i].clear();
    if (!alive_[i]) {
      recv_count_[i] = 0;
      local_c_[i] = 0;
      continue;
    }
    broadcasting_neighbors_.clear();
    for (std::uint32_t j : world_.topology.neighbors(i)) {
      if (sent_msg_[j].has_value()) broadcasting_neighbors_.push_back(j);
    }
    std::uint32_t local_c =
        static_cast<std::uint32_t>(broadcasting_neighbors_.size());
    if (sent_msg_[i].has_value()) {
      ++local_c;                          // own broadcast counts toward c_i
      recv_[i].push_back(*sent_msg_[i]);  // and is always self-delivered
    }
    if (broadcasting_neighbors_.size() == 1) {
      if (link_rng_.chance(world_.link.p_single)) {
        recv_[i].push_back(*sent_msg_[broadcasting_neighbors_.front()]);
      }
    } else if (broadcasting_neighbors_.size() > 1) {
      if (link_rng_.chance(world_.link.p_capture)) {
        const std::uint32_t j = broadcasting_neighbors_[link_rng_.below(
            broadcasting_neighbors_.size())];
        recv_[i].push_back(*sent_msg_[j]);
      }
    }
    std::sort(recv_[i].begin(), recv_[i].end());
    recv_count_[i] = static_cast<std::uint32_t>(recv_[i].size());
    counters_.messages_delivered += recv_count_[i];
    local_c_[i] = local_c;
  }
}

void RoundEngine::step() {
  const std::size_t n = size();
  const Round r = ++round_;
  const bool local = world_.scope == CollisionScope::kLocal;
  ++counters_.rounds;

  // Participation mask for the contention manager: crashed and halted
  // processes are out of the protocol.
  for (std::size_t i = 0; i < n; ++i) {
    participating_[i] = alive_[i] && !world_.world.processes[i]->halted();
  }

  // W_r: contention advice.
  world_.world.cm->advise(r, participating_, cm_advice_);
  cm_advice_.resize(n, CmAdvice::kPassive);
  ++counters_.cm_advice_calls;

  // Crash point A (kBeforeSend): marked processes are silent from round r
  // on.
  crash_mask_.assign(n, false);
  world_.world.fault->crash_before_send(r, alive_, crash_mask_);
  const std::uint64_t crashes_pre_a = crashes_applied_;
  commit_crashes(r);
  counters_.crashes_before_send += crashes_applied_ - crashes_pre_a;

  // M_r: message assignments.
  sent_flag_.assign(n, false);
  sent_msg_.assign(n, std::nullopt);
  broadcaster_count_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!participating_[i]) continue;
    sent_msg_[i] = world_.world.processes[i]->on_send(r, cm_advice_[i]);
    if (sent_msg_[i].has_value()) {
      sent_flag_[i] = true;
      ++broadcaster_count_;
      ++total_broadcasts_;
    }
  }

  // Crash point B (kAfterSend): the round-r message is out, the transition
  // is not taken (Definition 11, constraint 2's fail branch).  kLocal
  // commits immediately -- a dead radio leaves the channel before
  // delivery; kGlobal defers so the crasher's round-r view still forms.
  crash_mask_.assign(n, false);
  world_.world.fault->crash_after_send(r, alive_, crash_mask_);
  const std::uint64_t crashes_pre_b = crashes_applied_;
  if (local) commit_crashes(r);

  // N_r: receive multisets.
  if (world_.channel == ChannelModel::kMatrix) {
    deliver_matrix(r);
  } else {
    deliver_capture();
  }

  counters_.messages_sent += broadcaster_count_;

  // D_r: collision detector advice within the class envelope -- one global
  // oracle call on a clique, per-neighborhood (c_i, T(i)) otherwise.
  if (!local) {
    world_.world.cd->advise(r, broadcaster_count_, recv_count_, cd_advice_);
    ++counters_.cd_advice_calls;
    if (broadcaster_count_ >= 2) ++counters_.collisions;
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (alive_[i]) {
        cd_advice_[i] = world_.world.cd->advise_local(
            r, static_cast<ProcessId>(i), local_c_[i], recv_count_[i]);
        ++counters_.cd_advice_calls;
        if (local_c_[i] >= 2) ++counters_.collisions;
      } else {
        cd_advice_[i] = CdAdvice::kNull;
      }
    }
  }
  world_.world.cm->observe(r, broadcaster_count_);

  // C_r: transitions (skipped for processes crashing this round).
  for (std::size_t i = 0; i < n; ++i) {
    if (local) {
      if (!alive_[i] || world_.world.processes[i]->halted()) continue;
    } else {
      if (!participating_[i] || crash_mask_[i]) continue;
    }
    world_.world.processes[i]->on_receive(r, recv_[i], cd_advice_[i],
                                          cm_advice_[i]);
    if (decided_value_[i] == kNoValue && world_.world.processes[i]->decided()) {
      decided_value_[i] = world_.world.processes[i]->decision();
      log_.record_decision(static_cast<ProcessId>(i), r, decided_value_[i]);
    }
  }
  if (!local) commit_crashes(r);
  counters_.crashes_after_send += crashes_applied_ - crashes_pre_b;

  // Record the round.
  if (options_.record_rounds) {
    TransmissionRound tr;
    tr.broadcaster_count = broadcaster_count_;
    tr.receive_count = recv_count_;
    std::vector<RoundView> views;
    if (log_.views_recorded()) {
      views.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        views[i].sent = sent_msg_[i];
        views[i].received = recv_[i];
        views[i].cd = cd_advice_[i];
        views[i].cm = cm_advice_[i];
        views[i].crashed = !alive_[i];
      }
    }
    log_.push_round(std::move(tr), cd_advice_, cm_advice_, std::move(views));
  }
}

RunResult RoundEngine::run(Round max_rounds) {
  RunResult result;
  // n = 0: no process can ever send, decide or crash; every consensus
  // property holds vacuously.  Return instead of spinning max_rounds empty
  // rounds (which callers with stop_when_all_decided = false would hit).
  if (size() == 0) {
    result.all_correct_decided = true;
    return result;
  }
  while (round_ < max_rounds) {
    if (options_.stop_when_all_decided && all_correct_decided()) break;
    step();
  }
  result.rounds_executed = round_;
  result.all_correct_decided = all_correct_decided();
  for (const DecisionRecord& d : log_.decisions()) {
    if (alive_[d.process] && d.round > result.last_decision_round) {
      result.last_decision_round = d.round;
    }
  }
  for (bool a : alive_) {
    if (!a) ++result.num_crashed;
  }
  return result;
}

}  // namespace ccd
