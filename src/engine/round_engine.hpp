// RoundEngine: THE round executor.  One engine drives Definition 11's
// round structure -- W_r contention advice, M_r message assignment, N_r
// receive multisets, D_r collision-detector advice, C_r transitions, with
// the Section 3.3 crash adversary at both crash points -- over an
// arbitrary Topology.  The paper's single-hop model is the clique special
// case; the multihop extension its conclusion announces is every other
// graph.  sim::Executor and MultihopExecutor are thin adapters over this
// class, so there is exactly one implementation of the round semantics
// (PR 3 existed because there were two).
//
// Two orthogonal configuration axes cover both legacy semantics and their
// new compositions:
//
//  * ChannelModel -- who decides message loss.
//      kMatrix:  a LossAdversary fills an (receiver, sender) delivery
//                matrix (the paper's Section 3.2 environment); the engine
//                additionally masks delivery by topology adjacency, which
//                on a clique is a no-op (the exact single-hop semantics)
//                and on any other graph composes the adversary with the
//                neighborhood structure.
//      kCapture: per-neighborhood capture-effect physics (MhLinkModel): a
//                lone broadcasting neighbor arrives with p_single; under
//                contention each receiver independently captures at most
//                one neighbor with p_capture.  The legacy multihop link.
//
//  * CollisionScope -- what a collision detector sees.
//      kGlobal: the single-hop Definition 6 oracle: one global broadcaster
//               count c, advice for every process from OracleDetector::
//               advise (clique topologies only -- on a clique the local
//               count degenerates to c, so this is not a loss of
//               generality, just the byte-exact legacy call sequence).
//      kLocal:  per-neighborhood counts c_i = |{j broadcasting : j == i or
//               j ~ i}| with advice from the same DetectorSpec envelope
//               evaluated per receiver (OracleDetector::advise_local).
//
// Crash-point visibility follows the scope: kGlobal keeps the literal
// Definition 11 reading (an after-send crasher's round-r view N_r[i] still
// forms -- it feeds the detector's t vector -- only its transition is
// skipped), while kLocal removes the crasher from the channel immediately
// (the legacy multihop reading: a dead radio neither receives nor shows up
// in later neighborhoods).  Both are faithful to "C_r[i] = fail"; the
// difference is only where the corpse is still observable, and each
// adapter pins the reading its tests and golden reports were built on.
//
// Hot loop: every per-round buffer (send flags, receive multisets, advice
// vectors, the delivery matrix, alive/participating bitmasks -- packed
// std::vector<bool>) is preallocated at construction and reused; after the
// first round a step() performs no heap allocation unless round traces or
// per-process views are being recorded (bench_sim_micro's BM_EngineRound
// pins the steady state).
#pragma once

#include <memory>
#include <vector>

#include "multihop/topology.hpp"
#include "obs/telemetry.hpp"
#include "sim/execution_log.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace ccd {

/// Capture-effect link physics for ChannelModel::kCapture (the Section 1.1
/// radio regime): p_single is the lone-neighbor delivery probability (1.0
/// models collision freedom), p_capture the chance a receiver captures one
/// of several broadcasting neighbors.
struct MhLinkModel {
  double p_single = 1.0;
  double p_capture = 0.5;
};

enum class ChannelModel : std::uint8_t { kMatrix, kCapture };
enum class CollisionScope : std::uint8_t { kGlobal, kLocal };

/// Everything a RoundEngine drives: the paper's "system" (World) plus the
/// communication graph and the channel/detector-scope configuration.
struct EngineWorld {
  World world;          ///< processes + cm/cd/loss/fault (null = neutral)
  /// Communication graph; Topology::clique(n) recovers single-hop.
  Topology topology = Topology::clique(0);
  ChannelModel channel = ChannelModel::kMatrix;
  CollisionScope scope = CollisionScope::kGlobal;
  MhLinkModel link;     ///< kCapture physics; ignored by kMatrix
  std::uint64_t link_seed = 0;  ///< kCapture RNG stream seed
};

struct EngineOptions {
  /// Record per-process views in the log (needs record_rounds).
  bool record_views = true;
  /// Record per-round traces (transmission/cd/cm) in the log.  Decisions
  /// and crashes are always recorded.  Off = the allocation-free mode
  /// sweeps run in.
  bool record_rounds = true;
  /// Stop run() as soon as every non-crashed process has decided.
  bool stop_when_all_decided = true;
};

struct RunResult {
  bool all_correct_decided = false;
  Round last_decision_round = 0;  ///< max decision round among correct procs
  Round rounds_executed = 0;
  std::uint32_t num_crashed = 0;
};

class RoundEngine {
 public:
  RoundEngine(EngineWorld world, EngineOptions options = {});

  /// Execute exactly one round.
  void step();

  /// Execute until all non-crashed processes decide (if enabled) or
  /// max_rounds elapse.
  RunResult run(Round max_rounds);

  Round current_round() const { return round_; }
  const ExecutionLog& log() const { return log_; }
  const World& world() const { return world_.world; }
  const Topology& topology() const { return world_.topology; }
  Process& process(std::size_t i) { return *world_.world.processes[i]; }
  std::size_t size() const { return world_.world.processes.size(); }

  bool alive(std::size_t i) const { return alive_[i]; }
  std::size_t num_alive() const { return num_alive_; }
  /// Crashes the failure adversary actually landed (alive targets only).
  std::uint64_t crashes_applied() const { return crashes_applied_; }

  bool decided(std::size_t i) const { return decided_value_[i] != kNoValue; }
  Value decision(std::size_t i) const { return decided_value_[i]; }
  /// True iff every non-crashed process has decided.
  bool all_correct_decided() const;

  /// Broadcasts attempted over all executed rounds (the per-node energy
  /// budget of the Section 1.1 literature).
  std::uint64_t total_broadcasts() const { return total_broadcasts_; }

  /// Telemetry tallies for this engine's execution so far.  Plain
  /// engine-local increments (no atomics in the hot loop) and -- like the
  /// execution itself -- a pure function of the EngineWorld, so counter
  /// totals are deterministic and shard merges sum them exactly.  Never
  /// feeds the Aggregator: reports stay byte-identical with telemetry on
  /// or off.
  const obs::EngineCounters& counters() const { return counters_; }

  /// Last executed round's per-process observations (kLocal diagnostics).
  std::uint32_t last_receive_count(std::size_t i) const {
    return recv_count_[i];
  }
  std::uint32_t last_local_broadcasters(std::size_t i) const {
    return local_c_[i];
  }
  CdAdvice last_cd(std::size_t i) const { return cd_advice_[i]; }

 private:
  void deliver_matrix(Round r);
  void deliver_capture();
  void commit_crashes(Round r);

  EngineWorld world_;
  EngineOptions options_;
  obs::EngineCounters counters_;
  ExecutionLog log_;
  Rng link_rng_;
  Round round_ = 0;
  std::uint64_t total_broadcasts_ = 0;
  std::uint64_t crashes_applied_ = 0;
  std::size_t num_alive_ = 0;
  std::uint32_t broadcaster_count_ = 0;

  std::vector<bool> alive_;
  std::vector<bool> participating_;  // alive and not halted; scratch
  std::vector<Value> decided_value_;

  // Per-round scratch buffers (preallocated; reused every round).
  std::vector<CmAdvice> cm_advice_;
  std::vector<CdAdvice> cd_advice_;
  std::vector<bool> crash_mask_;
  std::vector<bool> sent_flag_;
  std::vector<std::optional<Message>> sent_msg_;
  std::vector<std::vector<Message>> recv_;
  std::vector<std::uint32_t> recv_count_;
  std::vector<std::uint32_t> local_c_;
  std::vector<std::uint32_t> broadcasting_neighbors_;  // per-receiver scratch
  DeliveryMatrix delivery_;
};

}  // namespace ccd
