#include "multihop/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace ccd {

void Topology::add_edge(std::size_t a, std::size_t b) {
  assert(a != b && a < size() && b < size());
  adjacency_[a].push_back(static_cast<std::uint32_t>(b));
  adjacency_[b].push_back(static_cast<std::uint32_t>(a));
}

Topology Topology::clique(std::size_t n) {
  Topology t(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) t.add_edge(a, b);
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::line(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  return t;
}

Topology Topology::ring(std::size_t n) {
  if (n < 3) return line(n);
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  t.add_edge(n - 1, 0);
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::grid_n(std::size_t n) {
  Topology t(n);
  std::size_t width = 1;
  while (width * width < n) ++width;  // ceil(sqrt(n))
  for (std::size_t i = 0; i < n; ++i) {
    const bool row_end = (i % width) + 1 == width;
    if (!row_end && i + 1 < n) t.add_edge(i, i + 1);
    if (i + width < n) t.add_edge(i, i + width);
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::grid(std::size_t width, std::size_t height) {
  Topology t(width * height);
  auto id = [width](std::size_t x, std::size_t y) { return y * width + x; };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) t.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) t.add_edge(id(x, y), id(x, y + 1));
    }
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::random_geometric(std::size_t n, double radius,
                                    std::uint64_t seed) {
  Topology t(n);
  Rng rng(seed);
  std::vector<std::pair<double, double>> points(n);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};
  const double r2 = radius * radius;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dx = points[a].first - points[b].first;
      const double dy = points[a].second - points[b].second;
      if (dx * dx + dy * dy <= r2) t.add_edge(a, b);
    }
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

bool Topology::adjacent(std::size_t a, std::size_t b) const {
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::uint32_t>(b));
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

std::vector<std::uint32_t> Topology::bfs(std::size_t from) const {
  std::vector<std::uint32_t> dist(size(), kUnreachable);
  std::deque<std::uint32_t> queue;
  dist[from] = 0;
  queue.push_back(static_cast<std::uint32_t>(from));
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : adjacency_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t Topology::distance(std::size_t from, std::size_t to) const {
  return bfs(from)[to];
}

bool Topology::connected() const {
  if (size() == 0) return true;
  const auto dist = bfs(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::uint32_t Topology::eccentricity(std::size_t from) const {
  const auto dist = bfs(from);
  std::uint32_t worst = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    worst = std::max(worst, d);
  }
  return worst;
}

std::vector<std::uint32_t> Topology::articulation_points() const {
  const std::size_t n = size();
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<bool> is_cut(n, false);
  std::uint32_t timer = 0;

  // Iterative Tarjan DFS (an explicit stack keeps 1e5-node rgg sweeps off
  // the call stack).  Each frame remembers which neighbor index it resumes
  // at; low-link values propagate when a child frame retires.
  struct Frame {
    std::uint32_t node;
    std::uint32_t parent;
    std::size_t next_edge = 0;
    std::uint32_t children = 0;  // DFS-tree children (root cut rule)
  };
  std::vector<Frame> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    stack.push_back({static_cast<std::uint32_t>(root), kUnreachable});
    disc[root] = low[root] = ++timer;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_edge < adjacency_[f.node].size()) {
        const std::uint32_t to = adjacency_[f.node][f.next_edge++];
        if (to == f.parent) continue;
        if (disc[to] != 0) {
          low[f.node] = std::min(low[f.node], disc[to]);
        } else {
          ++f.children;
          disc[to] = low[to] = ++timer;
          stack.push_back({to, f.node});
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (done.parent == kUnreachable) {
          // Root rule: a DFS root is a cut vertex iff it has > 1 children.
          if (done.children > 1) is_cut[done.node] = true;
        } else {
          Frame& up = stack.back();
          low[up.node] = std::min(low[up.node], low[done.node]);
          // Non-root rule: no back edge from `done`'s subtree climbs above
          // `up`, so removing `up` severs that subtree.
          if (low[done.node] >= disc[up.node] &&
              up.parent != kUnreachable) {
            is_cut[up.node] = true;
          }
        }
      }
    }
  }
  std::vector<std::uint32_t> cuts;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_cut[i]) cuts.push_back(static_cast<std::uint32_t>(i));
  }
  return cuts;
}

std::size_t Topology::largest_component_without(std::size_t v) const {
  const std::size_t n = size();
  std::vector<bool> seen(n, false);
  seen[v] = true;  // removed
  std::size_t largest = 0;
  std::deque<std::uint32_t> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::size_t count = 0;
    seen[s] = true;
    queue.push_back(static_cast<std::uint32_t>(s));
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      ++count;
      for (std::uint32_t w : adjacency_[u]) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    largest = std::max(largest, count);
  }
  return largest;
}

std::vector<std::uint32_t> Topology::min_vertex_cut(
    std::size_t max_size) const {
  const std::size_t n = size();
  if (n < 3) return {};
  if (n > 64) max_size = std::min<std::size_t>(max_size, 1);

  // Largest surviving component with the candidate set removed, or n when
  // the removal does NOT separate the survivors (not a cut).
  std::vector<bool> removed(n, false);
  std::vector<bool> seen(n, false);
  std::deque<std::uint32_t> queue;
  auto damage = [&](const std::vector<std::uint32_t>& cut) -> std::size_t {
    std::fill(removed.begin(), removed.end(), false);
    for (std::uint32_t v : cut) removed[v] = true;
    std::fill(seen.begin(), seen.end(), false);
    std::size_t components = 0, survivors = 0, largest = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (removed[s] || seen[s]) continue;
      ++components;
      std::size_t count = 0;
      seen[s] = true;
      queue.push_back(static_cast<std::uint32_t>(s));
      while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        ++count;
        for (std::uint32_t w : adjacency_[u]) {
          if (!removed[w] && !seen[w]) {
            seen[w] = true;
            queue.push_back(w);
          }
        }
      }
      survivors += count;
      largest = std::max(largest, count);
    }
    if (components < 2 || survivors < 2) return n;  // not a separator
    return largest;
  };

  // Smallest k first; within a k, lexicographic enumeration means the
  // first set achieving the best damage is the lexicographically-first
  // such set.
  std::vector<std::uint32_t> best;
  for (std::size_t k = 1; k <= max_size && k + 2 <= n; ++k) {
    std::size_t best_damage = n;
    std::vector<std::uint32_t> pick(k);
    // Odometer over ascending index combinations.
    for (std::size_t i = 0; i < k; ++i) {
      pick[i] = static_cast<std::uint32_t>(i);
    }
    while (true) {
      const std::size_t d = damage(pick);
      if (d < best_damage) {
        best_damage = d;
        best = pick;
      }
      // Advance the combination.
      bool advanced = false;
      for (std::size_t i = k; i-- > 0;) {
        if (pick[i] + (k - i) < n) {
          ++pick[i];
          for (std::size_t j = i + 1; j < k; ++j) {
            pick[j] = pick[j - 1] + 1;
          }
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
    if (!best.empty()) return best;
  }
  return best;
}

std::uint32_t Topology::diameter() const {
  std::uint32_t worst = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    const std::uint32_t e = eccentricity(i);
    if (e == kUnreachable) return kUnreachable;
    worst = std::max(worst, e);
  }
  return worst;
}

}  // namespace ccd
