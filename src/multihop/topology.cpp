#include "multihop/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace ccd {

void Topology::add_edge(std::size_t a, std::size_t b) {
  assert(a != b && a < size() && b < size());
  adjacency_[a].push_back(static_cast<std::uint32_t>(b));
  adjacency_[b].push_back(static_cast<std::uint32_t>(a));
}

Topology Topology::clique(std::size_t n) {
  Topology t(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) t.add_edge(a, b);
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::line(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  return t;
}

Topology Topology::ring(std::size_t n) {
  if (n < 3) return line(n);
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  t.add_edge(n - 1, 0);
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::grid_n(std::size_t n) {
  Topology t(n);
  std::size_t width = 1;
  while (width * width < n) ++width;  // ceil(sqrt(n))
  for (std::size_t i = 0; i < n; ++i) {
    const bool row_end = (i % width) + 1 == width;
    if (!row_end && i + 1 < n) t.add_edge(i, i + 1);
    if (i + width < n) t.add_edge(i, i + width);
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::grid(std::size_t width, std::size_t height) {
  Topology t(width * height);
  auto id = [width](std::size_t x, std::size_t y) { return y * width + x; };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) t.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) t.add_edge(id(x, y), id(x, y + 1));
    }
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

Topology Topology::random_geometric(std::size_t n, double radius,
                                    std::uint64_t seed) {
  Topology t(n);
  Rng rng(seed);
  std::vector<std::pair<double, double>> points(n);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};
  const double r2 = radius * radius;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dx = points[a].first - points[b].first;
      const double dy = points[a].second - points[b].second;
      if (dx * dx + dy * dy <= r2) t.add_edge(a, b);
    }
  }
  for (auto& adj : t.adjacency_) std::sort(adj.begin(), adj.end());
  return t;
}

bool Topology::adjacent(std::size_t a, std::size_t b) const {
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::uint32_t>(b));
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

std::vector<std::uint32_t> Topology::bfs(std::size_t from) const {
  std::vector<std::uint32_t> dist(size(), kUnreachable);
  std::deque<std::uint32_t> queue;
  dist[from] = 0;
  queue.push_back(static_cast<std::uint32_t>(from));
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : adjacency_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t Topology::distance(std::size_t from, std::size_t to) const {
  return bfs(from)[to];
}

bool Topology::connected() const {
  if (size() == 0) return true;
  const auto dist = bfs(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::uint32_t Topology::eccentricity(std::size_t from) const {
  const auto dist = bfs(from);
  std::uint32_t worst = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    worst = std::max(worst, d);
  }
  return worst;
}

std::vector<std::uint32_t> Topology::articulation_points() const {
  const std::size_t n = size();
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<bool> is_cut(n, false);
  std::uint32_t timer = 0;

  // Iterative Tarjan DFS (an explicit stack keeps 1e5-node rgg sweeps off
  // the call stack).  Each frame remembers which neighbor index it resumes
  // at; low-link values propagate when a child frame retires.
  struct Frame {
    std::uint32_t node;
    std::uint32_t parent;
    std::size_t next_edge = 0;
    std::uint32_t children = 0;  // DFS-tree children (root cut rule)
  };
  std::vector<Frame> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    stack.push_back({static_cast<std::uint32_t>(root), kUnreachable});
    disc[root] = low[root] = ++timer;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_edge < adjacency_[f.node].size()) {
        const std::uint32_t to = adjacency_[f.node][f.next_edge++];
        if (to == f.parent) continue;
        if (disc[to] != 0) {
          low[f.node] = std::min(low[f.node], disc[to]);
        } else {
          ++f.children;
          disc[to] = low[to] = ++timer;
          stack.push_back({to, f.node});
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (done.parent == kUnreachable) {
          // Root rule: a DFS root is a cut vertex iff it has > 1 children.
          if (done.children > 1) is_cut[done.node] = true;
        } else {
          Frame& up = stack.back();
          low[up.node] = std::min(low[up.node], low[done.node]);
          // Non-root rule: no back edge from `done`'s subtree climbs above
          // `up`, so removing `up` severs that subtree.
          if (low[done.node] >= disc[up.node] &&
              up.parent != kUnreachable) {
            is_cut[up.node] = true;
          }
        }
      }
    }
  }
  std::vector<std::uint32_t> cuts;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_cut[i]) cuts.push_back(static_cast<std::uint32_t>(i));
  }
  return cuts;
}

std::size_t Topology::largest_component_without(std::size_t v) const {
  const std::size_t n = size();
  std::vector<bool> seen(n, false);
  seen[v] = true;  // removed
  std::size_t largest = 0;
  std::deque<std::uint32_t> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::size_t count = 0;
    seen[s] = true;
    queue.push_back(static_cast<std::uint32_t>(s));
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      ++count;
      for (std::uint32_t w : adjacency_[u]) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    largest = std::max(largest, count);
  }
  return largest;
}

namespace {

/// Unit-capacity flow network for vertex connectivity (Even's split-vertex
/// construction): node v becomes v_in (2v) -> v_out (2v+1) with capacity 1,
/// every undirected edge (u, v) becomes u_out -> v_in and v_out -> u_in
/// with effectively infinite capacity.  A max flow from s_out to t_in then
/// equals the minimum number of vertices (s, t excluded) whose removal
/// separates t from s, and the saturated split edges on the residual
/// frontier ARE that vertex cut.
class SplitVertexFlow {
 public:
  explicit SplitVertexFlow(
      const std::vector<std::vector<std::uint32_t>>& adjacency) {
    const std::size_t n = adjacency.size();
    graph_.resize(2 * n);
    for (std::uint32_t v = 0; v < n; ++v) {
      add_edge(2 * v, 2 * v + 1, 1);
      for (std::uint32_t w : adjacency[v]) {
        add_edge(2 * v + 1, 2 * w, kInf);
      }
    }
  }

  /// Max flow s_out -> t_in by BFS augmentation (each augmenting path adds
  /// exactly 1), stopping early once `bound` is reached -- callers only
  /// care whether a cut smaller than `bound` exists.
  std::uint32_t max_flow(std::uint32_t s, std::uint32_t t,
                         std::uint32_t bound) {
    for (Edge& e : edges_) e.flow = 0;
    const std::uint32_t source = 2 * s + 1, sink = 2 * t;
    std::uint32_t flow = 0;
    std::vector<std::int32_t> via(graph_.size());
    std::deque<std::uint32_t> queue;
    while (flow < bound) {
      std::fill(via.begin(), via.end(), -1);
      via[source] = -2;
      queue.clear();
      queue.push_back(source);
      while (!queue.empty() && via[sink] == -1) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (std::int32_t id : graph_[u]) {
          const Edge& e = edges_[static_cast<std::size_t>(id)];
          if (via[e.to] == -1 && e.flow < e.cap) {
            via[e.to] = id;
            queue.push_back(e.to);
          }
        }
      }
      if (via[sink] == -1) break;
      for (std::uint32_t u = sink; u != source;) {
        Edge& e = edges_[static_cast<std::size_t>(via[u])];
        e.flow += 1;
        edges_[static_cast<std::size_t>(via[u]) ^ 1].flow -= 1;
        u = edges_[static_cast<std::size_t>(via[u]) ^ 1].to;
      }
      ++flow;
    }
    return flow;
  }

  /// The vertex cut certified by the last max_flow call: vertices whose
  /// split edge is saturated with v_in residual-reachable from the source
  /// and v_out not.  Only meaningful when that flow hit its min cut (was
  /// not stopped early by `bound`).  Ascending.
  std::vector<std::uint32_t> cut_vertices(std::uint32_t s) {
    std::vector<bool> reach(graph_.size(), false);
    std::deque<std::uint32_t> queue;
    reach[2 * s + 1] = true;
    queue.push_back(2 * s + 1);
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      for (std::int32_t id : graph_[u]) {
        const Edge& e = edges_[static_cast<std::size_t>(id)];
        if (!reach[e.to] && e.flow < e.cap) {
          reach[e.to] = true;
          queue.push_back(e.to);
        }
      }
    }
    std::vector<std::uint32_t> cut;
    for (std::uint32_t v = 0; 2 * v + 1 < graph_.size(); ++v) {
      if (reach[2 * v] && !reach[2 * v + 1]) cut.push_back(v);
    }
    return cut;
  }

 private:
  static constexpr std::int32_t kInf = 1 << 29;
  struct Edge {
    std::uint32_t to;
    std::int32_t cap;
    std::int32_t flow = 0;
  };

  void add_edge(std::uint32_t from, std::uint32_t to, std::int32_t cap) {
    graph_[from].push_back(static_cast<std::int32_t>(edges_.size()));
    edges_.push_back({to, cap});
    graph_[to].push_back(static_cast<std::int32_t>(edges_.size()));
    edges_.push_back({from, 0});  // residual twin at id ^ 1
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<std::int32_t>> graph_;
};

}  // namespace

std::vector<std::uint32_t> Topology::min_vertex_cut(
    std::size_t max_size) const {
  const std::size_t n = size();
  if (n < 3 || max_size == 0) return {};

  // Largest surviving component with the candidate set removed, or n when
  // the removal does NOT separate the survivors (not a cut).
  std::vector<bool> removed(n, false);
  std::vector<bool> seen(n, false);
  std::deque<std::uint32_t> queue;
  auto damage = [&](const std::vector<std::uint32_t>& cut) -> std::size_t {
    std::fill(removed.begin(), removed.end(), false);
    for (std::uint32_t v : cut) removed[v] = true;
    std::fill(seen.begin(), seen.end(), false);
    std::size_t components = 0, survivors = 0, largest = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (removed[s] || seen[s]) continue;
      ++components;
      std::size_t count = 0;
      seen[s] = true;
      queue.push_back(static_cast<std::uint32_t>(s));
      while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        ++count;
        for (std::uint32_t w : adjacency_[u]) {
          if (!removed[w] && !seen[w]) {
            seen[w] = true;
            queue.push_back(w);
          }
        }
      }
      survivors += count;
      largest = std::max(largest, count);
    }
    if (components < 2 || survivors < 2) return n;  // not a separator
    return largest;
  };

  // Damage-ranked sweep over all size-k combinations: the selection rule
  // of record (most damaging, lexicographically-first on ties).
  auto best_of_size = [&](std::size_t k) -> std::vector<std::uint32_t> {
    std::vector<std::uint32_t> best;
    std::size_t best_damage = n;
    std::vector<std::uint32_t> pick(k);
    for (std::size_t i = 0; i < k; ++i) {
      pick[i] = static_cast<std::uint32_t>(i);
    }
    while (true) {
      const std::size_t d = damage(pick);
      if (d < best_damage) {
        best_damage = d;
        best = pick;
      }
      // Advance the ascending-combination odometer.
      bool advanced = false;
      for (std::size_t i = k; i-- > 0;) {
        if (pick[i] + (k - i) < n) {
          ++pick[i];
          for (std::size_t j = i + 1; j < k; ++j) {
            pick[j] = pick[j - 1] + 1;
          }
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
    return best;
  };

  // Disconnected graph: any vertex whose removal still leaves >= 2 nodes
  // in >= 2 components is a size-1 "cut" (and one always exists at n >= 3),
  // so the damage-ranked single-vertex sweep is both exact and cheap.
  if (!connected()) return best_of_size(1);

  // Vertex connectivity kappa by max flow over the split-vertex graph.
  // Any cut S of size < bound misses at least one of the first |S| + 1
  // vertices, and that survivor is non-adjacent to everything S separates
  // it from -- so scanning sources s = 0 .. kappa (dynamically shrunk) over
  // all non-adjacent sinks visits a certifying pair.  Flows are capped at
  // bound = max_size + 1: a graph more connected than the budget returns
  // empty without ever running a deeper flow.
  const std::uint32_t bound =
      static_cast<std::uint32_t>(std::min(max_size + 1, n - 2));
  SplitVertexFlow flow(adjacency_);
  std::uint32_t kappa = bound;
  std::vector<std::vector<std::uint32_t>> certified;  // min cuts seen
  for (std::uint32_t s = 0; s <= kappa && s < n; ++s) {
    for (std::uint32_t t = 0; t < n; ++t) {
      if (t == s || adjacent(s, t)) continue;
      const std::uint32_t f = flow.max_flow(s, t, kappa + 1);
      if (f > kappa) continue;  // stopped early: cut here is >= ours
      if (f < kappa) {
        kappa = f;
        certified.clear();
      }
      certified.push_back(flow.cut_vertices(s));
    }
  }
  if (kappa > max_size || certified.empty()) return {};

  // Selection among size-kappa cuts.  Under a combinatorial budget the
  // full enumeration reproduces the historical ranking exactly; beyond it
  // (big graphs with kappa >= 2, where C(n, kappa) explodes) the flow
  // certificates stand in as the candidate pool, ranked the same way.
  constexpr std::size_t kEnumBudget = 200'000;
  std::size_t combinations = 1;
  for (std::size_t i = 0; i < kappa && combinations <= kEnumBudget; ++i) {
    combinations = combinations * (n - i) / (i + 1);
  }
  if (combinations <= kEnumBudget) return best_of_size(kappa);

  std::vector<std::uint32_t> best;
  std::size_t best_damage = n;
  std::sort(certified.begin(), certified.end());
  certified.erase(std::unique(certified.begin(), certified.end()),
                  certified.end());
  for (const std::vector<std::uint32_t>& cut : certified) {
    const std::size_t d = damage(cut);
    if (d < best_damage) {
      best_damage = d;
      best = cut;
    }
  }
  return best;
}

std::uint32_t Topology::diameter() const {
  std::uint32_t worst = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    const std::uint32_t e = eccentricity(i);
    if (e == kUnreachable) return kUnreachable;
    worst = std::max(worst, e);
  }
  return worst;
}

}  // namespace ccd
