#include "multihop/mis.hpp"

#include <algorithm>

namespace ccd {

namespace {
constexpr std::uint64_t kCandidacyTag = 1;
constexpr std::uint64_t kHeadTag = 2;
}  // namespace

MisProcess::MisProcess(Options options)
    : options_(options),
      rng_(options.seed),
      p_current_(options.p_candidate) {}

std::optional<Message> MisProcess::on_send(Round round, CmAdvice /*cm*/) {
  if (is_candidacy_round(round)) {
    candidate_this_phase_ = false;
    if (state_ == State::kUndecided && rng_.chance(p_current_)) {
      candidate_this_phase_ = true;
      return Message{Message::Kind::kVote, 0, kCandidacyTag};
    }
    return std::nullopt;
  }
  // Announce round: heads (old and new) mark their neighbourhoods, every
  // phase, so late deciders still get dominated.
  if (state_ == State::kHead) {
    return Message{Message::Kind::kLeaderValue, 0, kHeadTag};
  }
  return std::nullopt;
}

void MisProcess::on_receive(Round round, std::span<const Message> received,
                            CdAdvice cd, CmAdvice /*cm*/) {
  if (is_candidacy_round(round)) {
    // Count candidacy marks from OTHERS (a broadcaster always hears its
    // own mark back).
    std::size_t marks = 0;
    for (const Message& m : received) {
      if (m.tag == kCandidacyTag) ++marks;
    }
    const std::size_t own = candidate_this_phase_ ? 1 : 0;
    const bool heard_rival = marks > own || cd == CdAdvice::kCollision;
    if (state_ == State::kUndecided && candidate_this_phase_ &&
        !heard_rival) {
      // Silence (trustworthy, given accuracy) certifies that no
      // neighbouring candidate broadcast: safe to become head.
      state_ = State::kHead;
    }
    if (heard_rival) {
      // Congestion: back off so a lone candidate can emerge.
      p_current_ = std::max(options_.p_min, p_current_ * 0.5);
    } else {
      p_current_ = std::min(options_.p_candidate, p_current_ * 1.2);
    }
    return;
  }

  // Announce round.
  if (state_ != State::kUndecided) return;
  const bool head_mark =
      std::any_of(received.begin(), received.end(),
                  [](const Message& m) { return m.tag == kHeadTag; });
  // With an accurate detector, a collision report in an announce round
  // proves a broadcasting neighbour -- which can only be a head.
  if (head_mark || cd == CdAdvice::kCollision) {
    state_ = State::kDominated;
  }
}

}  // namespace ccd
