// Collision-detector-assisted flooding over a multihop network: the
// broadcast problem of Section 1.1's literature discussion, implemented on
// the extended model so the detector taxonomy can be exercised beyond a
// single hop.
//
// Each process that holds the message broadcasts it probabilistically
// (decay-style flooding, cf. Bar-Yehuda et al. [7]).  Two policies:
//   * kFixed    - broadcast with a constant probability while fresh;
//   * kCdBackoff- additionally HALVE the broadcast probability after any
//                 round in which the local detector reported a collision
//                 (local congestion), and recover slowly on quiet rounds.
// The zero-complete detector also serves as a progress hint for receivers:
// a node that hears +- but no message knows the message is circulating
// nearby and keeps listening attentively (tracked as a statistic).
//
// bench_multihop_broadcast compares the two policies: under dense
// topologies the collision feedback cuts completion time, reproducing the
// paper's thesis -- receiver-side collision detection is a cheap, powerful
// coordination primitive -- in the multihop setting it targets next.
#pragma once

#include "model/process.hpp"
#include "util/rng.hpp"

namespace ccd {

enum class FloodPolicy : std::uint8_t { kFixed, kCdBackoff };

class FloodProcess final : public Process {
 public:
  struct Options {
    bool is_source = false;
    FloodPolicy policy = FloodPolicy::kFixed;
    double p_broadcast = 0.4;  ///< initial/fixed broadcast probability
    double p_min = 0.02;       ///< floor for the backoff policy
    Round fresh_rounds = 40;   ///< how long a holder keeps flooding
    std::uint64_t seed = 1;
  };

  explicit FloodProcess(Options options);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  bool has_message() const { return has_message_; }
  Round received_at() const { return received_at_; }
  /// Rounds in which the detector reported +- while this node had nothing:
  /// the "message is near" hint.
  std::uint32_t proximity_hints() const { return proximity_hints_; }

 private:
  Options options_;
  Rng rng_;
  bool has_message_;
  Round received_at_;
  Round holding_since_ = 0;
  double p_current_;
  std::uint32_t proximity_hints_ = 0;
};

}  // namespace ccd
