// Multihop network topologies -- the extension the paper's conclusion
// announces ("In the near future, we plan to extend our formal model to
// describe a multihop network").
//
// A topology is a fixed undirected graph over process indices; local radio
// broadcast reaches exactly the neighbors.  Generators cover the standard
// shapes of the broadcast literature discussed in Section 1.1: cliques
// (which recover the single-hop model), lines and grids (diameter-bound
// experiments, cf. the Omega(D log(N/D)) broadcast bound [46]), and random
// geometric graphs (unit-disk radio models).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ccd {

class Topology {
 public:
  static Topology clique(std::size_t n);
  static Topology line(std::size_t n);
  /// Cycle over n nodes (degenerates to line(n) for n < 3).
  static Topology ring(std::size_t n);
  static Topology grid(std::size_t width, std::size_t height);
  /// Row-major grid over EXACTLY n nodes with ceil(sqrt(n)) columns; the
  /// last row may be partial.  This is the spec-driven form (the sweep
  /// engine's n axis does not factor nicely into width x height).
  static Topology grid_n(std::size_t n);
  /// n points uniform in the unit square, edge iff distance <= radius.
  static Topology random_geometric(std::size_t n, double radius,
                                   std::uint64_t seed);

  std::size_t size() const { return adjacency_.size(); }

  /// Neighbors of i (excluding i), sorted ascending.
  const std::vector<std::uint32_t>& neighbors(std::size_t i) const {
    return adjacency_[i];
  }

  bool adjacent(std::size_t a, std::size_t b) const;

  std::size_t degree(std::size_t i) const { return adjacency_[i].size(); }
  std::size_t max_degree() const;

  /// BFS hop distance; kUnreachable if disconnected.
  static constexpr std::uint32_t kUnreachable = ~0u;
  std::uint32_t distance(std::size_t from, std::size_t to) const;

  bool connected() const;

  /// Max over pairs of the hop distance (kUnreachable if disconnected).
  std::uint32_t diameter() const;

  /// Eccentricity of one node: max hop distance to any other node.
  std::uint32_t eccentricity(std::size_t from) const;

  /// Cut vertices (Tarjan low-link), ascending.  A node is an articulation
  /// point iff removing it disconnects its connected component -- every
  /// interior node of a line, no node of a ring or clique.  The
  /// "articulation-point" crash-schedule generator targets these.
  std::vector<std::uint32_t> articulation_points() const;

  /// Size of the largest connected component of the graph with node `v`
  /// removed (0 for a graph of one node).  Ranks articulation points by
  /// damage: smaller is a more balanced, worse partition.
  std::size_t largest_component_without(std::size_t v) const;

  /// A minimum vertex cut of size at most `max_size`: the smallest set S
  /// whose removal leaves >= 2 nodes in >= 2 components.  Among same-size
  /// cuts the most damaging wins (smallest largest surviving component),
  /// lexicographically-first on ties.  Empty when no such cut exists
  /// (cliques, graphs with < 3 nodes, min cut > max_size).
  ///
  /// The cut size is found by BFS max-flow over the split-vertex graph
  /// (Even's construction: v_in -> v_out at capacity 1), with every flow
  /// capped at max_size + 1 -- so the cost is O(max_size * n * edges) at
  /// ANY n, with no small-graph size cap.  The damage ranking then runs
  /// over all C(n, kappa) size-kappa sets while that count is modest
  /// (every graph the old brute force could handle, pinned equal by test);
  /// past ~200k combinations the flow's own min-cut certificates become
  /// the candidate pool, ranked by the same (damage, lex) rule.
  std::vector<std::uint32_t> min_vertex_cut(std::size_t max_size = 3) const;

 private:
  explicit Topology(std::size_t n) : adjacency_(n) {}
  void add_edge(std::size_t a, std::size_t b);
  std::vector<std::uint32_t> bfs(std::size_t from) const;

  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace ccd
