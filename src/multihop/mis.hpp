// Clusterhead election as a maximal independent set (Section 1.1's local
// coordination category, cf. Moscibroda-Wattenhofer [56]), built on the
// multihop model -- and on collision detection.
//
// Luby-style randomized protocol in two-round phases:
//   candidacy round: every undecided node broadcasts a candidacy mark with
//     probability p (adaptive: halved after hearing a collision, the
//     channel's congestion signal; restored slowly).
//   announce round: freshly and previously elected heads broadcast a head
//     mark; an undecided node that receives a head mark -- or a collision
//     report, which with an ACCURATE detector proves a broadcasting (i.e.
//     head) neighbour exists -- becomes dominated and exits.
//
// The paper's thesis in miniature: with a COMPLETE and accurate detector a
// candidate becomes head only if it heard nothing in its candidacy round,
// which certifies no neighbouring candidate broadcast -- so two adjacent
// heads are impossible and independence is DETERMINISTIC, not
// probabilistic.  Weaken the detector to zero-complete with a prefer-null
// policy and adjacent candidates can both hear silence (each lost exactly
// the other's mark): independence breaks.  mis_test.cpp demonstrates both
// directions; the detector's completeness level is doing the safety work.
#pragma once

#include "model/process.hpp"
#include "util/rng.hpp"

namespace ccd {

class MisProcess final : public Process {
 public:
  enum class State : std::uint8_t { kUndecided, kHead, kDominated };

  struct Options {
    double p_candidate = 0.5;
    double p_min = 0.05;
    std::uint64_t seed = 1;
  };

  explicit MisProcess(Options options);

  std::optional<Message> on_send(Round round, CmAdvice cm) override;
  void on_receive(Round round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice cm) override;

  State state() const { return state_; }
  bool settled() const { return state_ != State::kUndecided; }

 private:
  static bool is_candidacy_round(Round r) { return r % 2 == 1; }

  Options options_;
  Rng rng_;
  State state_ = State::kUndecided;
  double p_current_;
  bool candidate_this_phase_ = false;
};

}  // namespace ccd
