// Multihop round executor: Definition 11 generalized from a clique to an
// arbitrary topology, exactly the extension the paper's conclusion plans.
// A thin adapter over the RoundEngine with
//
//   channel = ChannelModel::kCapture (Section 1.1 capture-effect physics)
//   scope   = CollisionScope::kLocal (per-neighborhood detector counts)
//
// Per round, for each receiver i the relevant broadcaster count is LOCAL:
//   c_i = |{ j : j broadcast and (j == i or j adjacent to i) }|
// and T(i) counts the messages i actually received (self-delivery always
// holds for broadcasters).  Collision detector advice is produced from the
// same DetectorSpec envelope as in the single-hop model, evaluated on
// (c_i, T(i)) -- on a clique this degenerates to the single-hop semantics
// (mh_executor_test pins that equivalence down).
//
// The link model mirrors the capture-effect physics of Section 1.1: a lone
// broadcasting neighbor is received with probability p_single (1.0 models
// collision freedom); under contention each receiver independently
// captures at most one of its broadcasting neighbors with probability
// p_capture.
//
// Crash failures follow the Section 3.3 adversary at the Definition 11
// points: a kBeforeSend crash in round r silences the process from round r
// on; a kAfterSend crash lets the round-r message go out (and count toward
// its neighbors' c_i) but skips the round-r transition.  Dead processes
// never broadcast again -- so they drop out of every later c_i -- and are
// excluded from delivery and detector advice.
#pragma once

#include <memory>
#include <vector>

#include "cd/oracle_detector.hpp"
#include "engine/round_engine.hpp"
#include "fault/failure_adversary.hpp"
#include "model/process.hpp"
#include "multihop/topology.hpp"

namespace ccd {

class MultihopExecutor {
 public:
  /// `fault` may be null (equivalent to NoFailures).
  MultihopExecutor(Topology topology,
                   std::vector<std::unique_ptr<Process>> processes,
                   DetectorSpec spec, std::unique_ptr<AdvicePolicy> policy,
                   MhLinkModel link, std::uint64_t seed,
                   std::unique_ptr<FailureAdversary> fault = nullptr);

  void step() { engine_.step(); }
  Round current_round() const { return engine_.current_round(); }

  const Topology& topology() const { return engine_.topology(); }
  Process& process(std::size_t i) { return engine_.process(i); }
  std::size_t size() const { return engine_.size(); }

  /// False once the failure adversary crashed process i.
  bool alive(std::size_t i) const { return engine_.alive(i); }
  std::size_t num_alive() const { return engine_.num_alive(); }
  /// Crashes the adversary actually applied so far (alive targets only).
  std::uint64_t crashes_applied() const { return engine_.crashes_applied(); }

  /// Receive count of process i in the last executed round.
  std::uint32_t last_receive_count(std::size_t i) const {
    return engine_.last_receive_count(i);
  }
  /// Local broadcaster count c_i in the last executed round.
  std::uint32_t last_local_broadcasters(std::size_t i) const {
    return engine_.last_local_broadcasters(i);
  }
  CdAdvice last_cd(std::size_t i) const { return engine_.last_cd(i); }

  /// Broadcasts attempted over all executed rounds (the energy/message
  /// cost the Section 1.1 literature budgets per node).
  std::uint64_t total_broadcasts() const { return engine_.total_broadcasts(); }

  /// The underlying engine.
  RoundEngine& engine() { return engine_; }

 private:
  RoundEngine engine_;
};

}  // namespace ccd
