#include "multihop/flood.hpp"

#include <algorithm>

namespace ccd {

FloodProcess::FloodProcess(Options options)
    : options_(options),
      rng_(options.seed),
      has_message_(options.is_source),
      received_at_(options.is_source ? 0 : kNeverRound),
      p_current_(options.p_broadcast) {}

std::optional<Message> FloodProcess::on_send(Round round, CmAdvice /*cm*/) {
  if (!has_message_) return std::nullopt;
  if (round > holding_since_ + options_.fresh_rounds) return std::nullopt;
  if (rng_.chance(p_current_)) {
    return Message{Message::Kind::kPayload, /*value=*/1, /*tag=*/0};
  }
  return std::nullopt;
}

void FloodProcess::on_receive(Round round, std::span<const Message> received,
                              CdAdvice cd, CmAdvice /*cm*/) {
  if (!has_message_) {
    // The payload scan is only needed while we are still listening for the
    // message; holders take this branch never again, keeping their
    // per-round receive cost independent of the multiset size.
    if (count_kind(received, Message::Kind::kPayload) > 0) {
      has_message_ = true;
      received_at_ = round;
      holding_since_ = round;
    } else if (cd == CdAdvice::kCollision) {
      ++proximity_hints_;
    }
    return;
  }

  if (options_.policy == FloodPolicy::kCdBackoff) {
    if (cd == CdAdvice::kCollision) {
      // Local congestion: other holders nearby are flooding too; back off
      // so lone broadcasts (which the channel delivers best) can form.
      p_current_ = std::max(options_.p_min, p_current_ * 0.5);
    } else {
      // Quiet neighbourhood: speed back up gently.
      p_current_ = std::min(options_.p_broadcast, p_current_ * 1.1);
    }
  }
}

}  // namespace ccd
