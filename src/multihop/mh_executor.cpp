#include "multihop/mh_executor.hpp"

namespace ccd {

MultihopExecutor::MultihopExecutor(
    Topology topology, std::vector<std::unique_ptr<Process>> processes,
    DetectorSpec spec, std::unique_ptr<AdvicePolicy> policy, MhLinkModel link,
    std::uint64_t seed, std::unique_ptr<FailureAdversary> fault)
    : engine_(
          [&] {
            EngineWorld ew;
            ew.world.processes = std::move(processes);
            ew.world.cd =
                std::make_unique<OracleDetector>(spec, std::move(policy));
            ew.world.fault = std::move(fault);  // null -> NoFailures
            ew.topology = std::move(topology);
            ew.channel = ChannelModel::kCapture;
            ew.scope = CollisionScope::kLocal;
            ew.link = link;
            ew.link_seed = seed;
            return ew;
          }(),
          EngineOptions{/*record_views=*/false, /*record_rounds=*/false,
                        /*stop_when_all_decided=*/false}) {}

}  // namespace ccd
