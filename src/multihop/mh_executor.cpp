#include "multihop/mh_executor.hpp"

#include <algorithm>
#include <cassert>

namespace ccd {

MultihopExecutor::MultihopExecutor(
    Topology topology, std::vector<std::unique_ptr<Process>> processes,
    DetectorSpec spec, std::unique_ptr<AdvicePolicy> policy, MhLinkModel link,
    std::uint64_t seed, std::unique_ptr<FailureAdversary> fault)
    : topology_(std::move(topology)),
      processes_(std::move(processes)),
      spec_(spec),
      policy_(std::move(policy)),
      link_(link),
      rng_(seed),
      fault_(std::move(fault)) {
  assert(topology_.size() == processes_.size());
  const std::size_t n = processes_.size();
  num_alive_ = n;
  alive_.assign(n, true);
  crash_mask_.assign(n, false);
  sent_.resize(n);
  recv_.resize(n);
  last_receive_count_.assign(n, 0);
  last_local_c_.assign(n, 0);
  last_cd_.assign(n, CdAdvice::kNull);
}

void MultihopExecutor::apply_crashes(Round round, CrashPoint point) {
  crash_mask_.assign(crash_mask_.size(), false);
  if (point == CrashPoint::kBeforeSend) {
    fault_->crash_before_send(round, alive_, crash_mask_);
  } else {
    fault_->crash_after_send(round, alive_, crash_mask_);
  }
  for (std::size_t i = 0; i < crash_mask_.size(); ++i) {
    if (crash_mask_[i] && alive_[i]) {
      alive_[i] = false;
      --num_alive_;
      ++crashes_applied_;
    }
  }
}

void MultihopExecutor::step() {
  const std::size_t n = processes_.size();
  const Round r = ++round_;

  // Crash point A (Definition 11, kBeforeSend): marked processes are
  // silent from this round on.
  if (fault_) apply_crashes(r, CrashPoint::kBeforeSend);

  // Sends.  Multihop protocols manage their own contention (no global
  // contention manager can exist without global coordination), so every
  // live process is advised active.
  for (std::size_t i = 0; i < n; ++i) {
    sent_[i] = (!alive_[i] || processes_[i]->halted())
                   ? std::nullopt
                   : processes_[i]->on_send(r, CmAdvice::kActive);
    if (sent_[i].has_value()) ++total_broadcasts_;
  }

  // Crash point B (kAfterSend, the literal Definition 11 semantics): the
  // round-r message above stays in sent_ -- it is delivered and counts
  // toward its neighbors' c_i -- but the sender takes no round-r
  // transition and is dead from here on.
  if (fault_) apply_crashes(r, CrashPoint::kAfterSend);

  // Delivery: per live receiver, over its broadcasting neighbors.  Dead
  // processes receive nothing; long-dead processes never appear in any
  // c_i because they no longer broadcast.
  for (std::size_t i = 0; i < n; ++i) {
    recv_[i].clear();
    if (!alive_[i]) {
      last_receive_count_[i] = 0;
      last_local_c_[i] = 0;
      continue;
    }
    broadcasting_neighbors_.clear();
    for (std::uint32_t j : topology_.neighbors(i)) {
      if (sent_[j].has_value()) broadcasting_neighbors_.push_back(j);
    }
    std::uint32_t local_c =
        static_cast<std::uint32_t>(broadcasting_neighbors_.size());
    if (sent_[i].has_value()) {
      ++local_c;                       // own broadcast counts toward c_i
      recv_[i].push_back(*sent_[i]);   // and is always self-delivered
    }
    if (broadcasting_neighbors_.size() == 1) {
      if (rng_.chance(link_.p_single)) {
        recv_[i].push_back(*sent_[broadcasting_neighbors_.front()]);
      }
    } else if (broadcasting_neighbors_.size() > 1) {
      if (rng_.chance(link_.p_capture)) {
        const std::uint32_t j = broadcasting_neighbors_[rng_.below(
            broadcasting_neighbors_.size())];
        recv_[i].push_back(*sent_[j]);
      }
    }
    std::sort(recv_[i].begin(), recv_[i].end());
    last_receive_count_[i] = static_cast<std::uint32_t>(recv_[i].size());
    last_local_c_[i] = local_c;
  }

  // Collision detector advice from the per-receiver local counts (live
  // receivers only; a dead process sees no further advice).
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i]) {
      last_cd_[i] = CdAdvice::kNull;
      continue;
    }
    const std::uint32_t c = last_local_c_[i];
    const std::uint32_t t = last_receive_count_[i];
    CdAdvice advice;
    if (spec_.collision_forced(c, t)) {
      advice = CdAdvice::kCollision;
    } else if (spec_.null_forced(r, c, t)) {
      advice = CdAdvice::kNull;
    } else {
      advice = policy_->choose(r, static_cast<ProcessId>(i), c, t);
    }
    assert(spec_.advice_legal(r, c, t, advice));
    last_cd_[i] = advice;
  }

  // Transitions (live processes only -- an after-send crasher skips its
  // round-r transition, which is what distinguishes the two crash points).
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i] || processes_[i]->halted()) continue;
    processes_[i]->on_receive(r, recv_[i], last_cd_[i], CmAdvice::kActive);
  }
}

}  // namespace ccd
