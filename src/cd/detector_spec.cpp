#include "cd/detector_spec.hpp"

namespace ccd {

const char* to_string(Completeness c) {
  switch (c) {
    case Completeness::kComplete:
      return "complete";
    case Completeness::kMajority:
      return "maj-complete";
    case Completeness::kHalf:
      return "half-complete";
    case Completeness::kZero:
      return "0-complete";
    case Completeness::kNone:
      return "none";
  }
  return "?";
}

const char* to_string(Accuracy a) {
  switch (a) {
    case Accuracy::kAccurate:
      return "accurate";
    case Accuracy::kEventual:
      return "eventually-accurate";
    case Accuracy::kNone:
      return "none";
  }
  return "?";
}

DetectorSpec DetectorSpec::AC() {
  return {Completeness::kComplete, Accuracy::kAccurate, 1, false};
}
DetectorSpec DetectorSpec::MajAC() {
  return {Completeness::kMajority, Accuracy::kAccurate, 1, false};
}
DetectorSpec DetectorSpec::HalfAC() {
  return {Completeness::kHalf, Accuracy::kAccurate, 1, false};
}
DetectorSpec DetectorSpec::ZeroAC() {
  return {Completeness::kZero, Accuracy::kAccurate, 1, false};
}
DetectorSpec DetectorSpec::OAC(Round r_acc) {
  return {Completeness::kComplete, Accuracy::kEventual, r_acc, false};
}
DetectorSpec DetectorSpec::MajOAC(Round r_acc) {
  return {Completeness::kMajority, Accuracy::kEventual, r_acc, false};
}
DetectorSpec DetectorSpec::HalfOAC(Round r_acc) {
  return {Completeness::kHalf, Accuracy::kEventual, r_acc, false};
}
DetectorSpec DetectorSpec::ZeroOAC(Round r_acc) {
  return {Completeness::kZero, Accuracy::kEventual, r_acc, false};
}
DetectorSpec DetectorSpec::NoCD() {
  return {Completeness::kComplete, Accuracy::kNone, 1, true};
}
DetectorSpec DetectorSpec::NoAcc() {
  return {Completeness::kComplete, Accuracy::kNone, 1, false};
}

bool DetectorSpec::collision_forced(std::uint32_t c, std::uint32_t t) const {
  if (always_collision) return true;
  switch (completeness) {
    case Completeness::kComplete:
      return t < c;
    case Completeness::kMajority:
      return c > 0 && 2ull * t <= c;
    case Completeness::kHalf:
      return c > 0 && 2ull * t < c;
    case Completeness::kZero:
      return c > 0 && t == 0;
    case Completeness::kNone:
      return false;
  }
  return false;
}

bool DetectorSpec::null_forced(Round r, std::uint32_t c,
                               std::uint32_t t) const {
  if (always_collision) return false;
  if (t != c) return false;  // accuracy only constrains loss-free processes
  switch (accuracy) {
    case Accuracy::kAccurate:
      return true;
    case Accuracy::kEventual:
      return r >= r_acc;
    case Accuracy::kNone:
      return false;
  }
  return false;
}

bool DetectorSpec::advice_legal(Round r, std::uint32_t c, std::uint32_t t,
                                CdAdvice advice) const {
  if (advice == CdAdvice::kCollision) return !null_forced(r, c, t);
  return !collision_forced(c, t);
}

namespace {
/// Strength rank: higher forces collision reports in more situations.
int completeness_rank(Completeness c) {
  switch (c) {
    case Completeness::kComplete:
      return 4;
    case Completeness::kMajority:
      return 3;
    case Completeness::kHalf:
      return 2;
    case Completeness::kZero:
      return 1;
    case Completeness::kNone:
      return 0;
  }
  return 0;
}
int accuracy_rank(Accuracy a) {
  switch (a) {
    case Accuracy::kAccurate:
      return 2;
    case Accuracy::kEventual:
      return 1;
    case Accuracy::kNone:
      return 0;
  }
  return 0;
}
}  // namespace

bool DetectorSpec::subclass_of(const DetectorSpec& other) const {
  // NoCD's single detector trivially satisfies every completeness property
  // (it always reports) but violates both accuracy properties.
  if (always_collision) {
    return accuracy_rank(other.accuracy) == 0;
  }
  if (other.always_collision) return false;
  return completeness_rank(completeness) >=
             completeness_rank(other.completeness) &&
         accuracy_rank(accuracy) >= accuracy_rank(other.accuracy);
}

std::string DetectorSpec::class_name() const {
  if (always_collision) return "NoCD";
  std::string prefix;
  switch (completeness) {
    case Completeness::kComplete:
      prefix = "";
      break;
    case Completeness::kMajority:
      prefix = "maj-";
      break;
    case Completeness::kHalf:
      prefix = "half-";
      break;
    case Completeness::kZero:
      prefix = "0-";
      break;
    case Completeness::kNone:
      prefix = "nc-";
      break;
  }
  switch (accuracy) {
    case Accuracy::kAccurate:
      return prefix + "AC";
    case Accuracy::kEventual:
      return prefix + "<>AC";
    case Accuracy::kNone:
      return completeness == Completeness::kComplete ? std::string("NoACC")
                                                     : prefix + "noacc";
  }
  return prefix + "?";
}

}  // namespace ccd
