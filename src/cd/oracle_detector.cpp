#include "cd/oracle_detector.hpp"

#include <cassert>

namespace ccd {

OracleDetector::OracleDetector(DetectorSpec spec,
                               std::unique_ptr<AdvicePolicy> policy)
    : spec_(spec), policy_(std::move(policy)) {
  assert(policy_ != nullptr);
}

CdAdvice OracleDetector::advise_local(Round round, ProcessId i,
                                      std::uint32_t c, std::uint32_t t) {
  const bool pm_forced = spec_.collision_forced(c, t);
  const bool null_forced = spec_.null_forced(round, c, t);
  // The two forced sets are disjoint: completeness only forces when t < c
  // (or NoCD, which has no accuracy), accuracy only when t == c.
  assert(!(pm_forced && null_forced));
  CdAdvice advice;
  if (pm_forced) {
    advice = CdAdvice::kCollision;
  } else if (null_forced) {
    advice = CdAdvice::kNull;
  } else {
    advice = policy_->choose(round, i, c, t);
  }
  assert(spec_.advice_legal(round, c, t, advice));
  return advice;
}

void OracleDetector::advise(Round round, std::uint32_t c,
                            const std::vector<std::uint32_t>& t,
                            std::vector<CdAdvice>& out) {
  // One envelope resolution for both scopes: the global oracle is the
  // per-process resolution applied with the same c everywhere.
  out.resize(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = advise_local(round, static_cast<ProcessId>(i), c, t[i]);
  }
}

bool cd_trace_legal(const DetectorSpec& spec, const TransmissionTrace& tt,
                    const CdTrace& cd) {
  const std::size_t rounds =
      tt.num_rounds() < cd.num_rounds() ? tt.num_rounds() : cd.num_rounds();
  for (Round r = 1; r <= rounds; ++r) {
    const TransmissionRound& tr = tt.at(r);
    const std::vector<CdAdvice>& advice = cd.at(r);
    if (advice.size() != tr.receive_count.size()) return false;
    for (std::size_t i = 0; i < advice.size(); ++i) {
      if (!spec.advice_legal(r, tr.broadcaster_count, tr.receive_count[i],
                             advice[i])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ccd
