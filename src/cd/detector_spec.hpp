// Collision detector classification (Section 5, Figure 1).
//
// A detector class is characterized by a completeness property (when a
// collision report "+-" is FORCED) and an accuracy property (when a "null"
// report is FORCED):
//
//   Completeness (Properties 4-7), for a round with c broadcasters where
//   process i received t messages:
//     kComplete : t < c                  -> +- forced   (any loss)
//     kMajority : c > 0 and 2t <= c      -> +- forced   (no strict majority)
//     kHalf     : c > 0 and 2t <  c      -> +- forced   (less than half)
//     kZero     : c > 0 and t == 0       -> +- forced   (lost everything)
//     kNone     : never forced
//
//   Accuracy (Properties 8-9):
//     kAccurate : t == c                 -> null forced  (no false positives)
//     kEventual : t == c and r >= r_acc  -> null forced
//     kNone     : never forced
//
// The half/majority distinction is exactly one message (2t == c): majority
// completeness forces a report when exactly half the messages were lost,
// half completeness does not.  That one message is what separates constant
// round consensus (Theorem 1) from the Omega(lg|V|) lower bound (Theorem 6).
//
// The special class NoCD (Section 5.3) contains the single detector that
// reports +- to everyone in every round; it vacuously satisfies every
// completeness property and no accuracy property, hence NoCD is a subset of
// NoACC (Lemma 1).
#pragma once

#include <cstdint>
#include <string>

#include "model/types.hpp"

namespace ccd {

enum class Completeness : std::uint8_t {
  kComplete,
  kMajority,
  kHalf,
  kZero,
  kNone,
};

enum class Accuracy : std::uint8_t {
  kAccurate,
  kEventual,
  kNone,
};

const char* to_string(Completeness c);
const char* to_string(Accuracy a);

struct DetectorSpec {
  Completeness completeness = Completeness::kComplete;
  Accuracy accuracy = Accuracy::kAccurate;
  /// Round from which an eventually-accurate detector must be accurate
  /// (Property 9's r_acc); ignored unless accuracy == kEventual.
  Round r_acc = 1;
  /// NoCD: the trivial detector that returns +- always.
  bool always_collision = false;

  // --- The eight classes of Figure 1 -----------------------------------
  static DetectorSpec AC();                     ///< complete, accurate
  static DetectorSpec MajAC();                  ///< maj-complete, accurate
  static DetectorSpec HalfAC();                 ///< half-complete, accurate
  static DetectorSpec ZeroAC();                 ///< 0-complete, accurate
  static DetectorSpec OAC(Round r_acc);         ///< complete, ev-accurate
  static DetectorSpec MajOAC(Round r_acc);      ///< maj-complete, ev-accurate
  static DetectorSpec HalfOAC(Round r_acc);     ///< half-complete, ev-accurate
  static DetectorSpec ZeroOAC(Round r_acc);     ///< 0-complete, ev-accurate
  // --- Special classes (Section 5.3) ------------------------------------
  static DetectorSpec NoCD();                   ///< always +-
  static DetectorSpec NoAcc();                  ///< complete, no accuracy

  /// Is a "+-" report forced for a process that received t of c messages?
  bool collision_forced(std::uint32_t c, std::uint32_t t) const;

  /// Is a "null" report forced in round r for a process that received t of
  /// c messages?
  bool null_forced(Round r, std::uint32_t c, std::uint32_t t) const;

  /// Is `advice` a legal report for this spec in round r with counts (c,t)?
  bool advice_legal(Round r, std::uint32_t c, std::uint32_t t,
                    CdAdvice advice) const;

  /// Class containment: every detector satisfying *this also satisfies
  /// `other` (e.g. AC().subclass_of(MajOAC(r)) for any r).  Compares
  /// property strength, treating eventual accuracy class-wise (any r_acc).
  bool subclass_of(const DetectorSpec& other) const;

  /// Figure 1 name, e.g. "maj-<>AC".
  std::string class_name() const;

  friend bool operator==(const DetectorSpec&, const DetectorSpec&) = default;
};

}  // namespace ccd
