// OracleDetector: the single collision-detector implementation, driven by a
// DetectorSpec (which reports are forced) and an AdvicePolicy (free
// choices).  It enforces the class envelope: the emitted advice is legal by
// construction, and legality is re-checked with assertions so a buggy
// policy can never silently violate a completeness or accuracy property.
//
// This realizes the paper's Definition 6 operationally: given the round's
// transmission data (c, T), the detector emits one element of the legal
// P-CD trace set for its class; MAXCD (Definition 15) behaviours are
// reached by choosing adversarial policies.
#pragma once

#include <memory>
#include <vector>

#include "cd/detector_spec.hpp"
#include "cd/policies.hpp"
#include "model/traces.hpp"
#include "model/types.hpp"

namespace ccd {

class OracleDetector {
 public:
  OracleDetector(DetectorSpec spec, std::unique_ptr<AdvicePolicy> policy);

  /// Advice for every process in one round.  `c` is the number of
  /// broadcasters, `t[i]` the number of messages process i received.
  void advise(Round round, std::uint32_t c, const std::vector<std::uint32_t>& t,
              std::vector<CdAdvice>& out);

  /// Advice for ONE process from its local neighborhood counts: the same
  /// forced-report/free-choice resolution as advise(), evaluated on
  /// (c_i, t_i).  This is how the RoundEngine's per-neighborhood scope
  /// (CollisionScope::kLocal) consults the detector -- the class envelope
  /// is identical, only the scope of c changes.
  CdAdvice advise_local(Round round, ProcessId i, std::uint32_t c,
                        std::uint32_t t);

  const DetectorSpec& spec() const { return spec_; }
  const AdvicePolicy& policy() const { return *policy_; }

 private:
  DetectorSpec spec_;
  std::unique_ptr<AdvicePolicy> policy_;
};

/// Check an entire (transmission trace, CD trace) pair against a spec --
/// the pairwise condition in Properties 4..9.  Used by tests and by the
/// Figure 1 class-table bench.
bool cd_trace_legal(const DetectorSpec& spec, const TransmissionTrace& tt,
                    const CdTrace& cd);

}  // namespace ccd
