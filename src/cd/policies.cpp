#include "cd/policies.hpp"

namespace ccd {

CdAdvice TruthfulPolicy::choose(Round /*round*/, ProcessId /*i*/,
                                std::uint32_t c, std::uint32_t t) {
  return t < c ? CdAdvice::kCollision : CdAdvice::kNull;
}

CdAdvice PreferNullPolicy::choose(Round /*round*/, ProcessId /*i*/,
                                  std::uint32_t /*c*/, std::uint32_t /*t*/) {
  return CdAdvice::kNull;
}

CdAdvice PreferCollisionPolicy::choose(Round /*round*/, ProcessId /*i*/,
                                       std::uint32_t /*c*/,
                                       std::uint32_t /*t*/) {
  return CdAdvice::kCollision;
}

SpuriousPolicy::SpuriousPolicy(double p, Round spurious_until,
                               std::uint64_t seed)
    : p_(p), spurious_until_(spurious_until), rng_(seed) {}

CdAdvice SpuriousPolicy::choose(Round round, ProcessId /*i*/, std::uint32_t c,
                                std::uint32_t t) {
  if (t < c) return CdAdvice::kCollision;  // truthful on real loss
  if (round < spurious_until_ && rng_.chance(p_)) return CdAdvice::kCollision;
  return CdAdvice::kNull;
}

FlakyMajorityPolicy::FlakyMajorityPolicy(double q, std::uint64_t seed)
    : q_(q), rng_(seed) {}

CdAdvice FlakyMajorityPolicy::choose(Round /*round*/, ProcessId /*i*/,
                                     std::uint32_t c, std::uint32_t t) {
  const bool majority_lost = c > 0 && 2ull * t <= c;
  if (majority_lost) {
    return rng_.chance(q_) ? CdAdvice::kCollision : CdAdvice::kNull;
  }
  // Sub-majority loss: practical carrier-sense detectors usually miss it.
  return CdAdvice::kNull;
}

RandomLegalPolicy::RandomLegalPolicy(std::uint64_t seed) : rng_(seed) {}

CdAdvice RandomLegalPolicy::choose(Round /*round*/, ProcessId /*i*/,
                                   std::uint32_t /*c*/, std::uint32_t /*t*/) {
  return rng_.chance(0.5) ? CdAdvice::kCollision : CdAdvice::kNull;
}

std::unique_ptr<AdvicePolicy> make_truthful_policy() {
  return std::make_unique<TruthfulPolicy>();
}
std::unique_ptr<AdvicePolicy> make_prefer_null_policy() {
  return std::make_unique<PreferNullPolicy>();
}
std::unique_ptr<AdvicePolicy> make_prefer_collision_policy() {
  return std::make_unique<PreferCollisionPolicy>();
}

}  // namespace ccd
