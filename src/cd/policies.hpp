// Advice policies: how a detector behaves INSIDE its legal envelope.
//
// A detector class only constrains behaviour (forced "+-" by completeness,
// forced "null" by accuracy); everything else is a free choice.  Upper
// bounds must work for ANY choice; lower bounds get to PICK the choice
// (maximal detectors, Definition 15).  The OracleDetector consults a policy
// exactly when both reports are legal.
#pragma once

#include <cstdint>
#include <memory>

#include "model/types.hpp"
#include "util/rng.hpp"

namespace ccd {

class AdvicePolicy {
 public:
  virtual ~AdvicePolicy() = default;

  /// Called only when both kNull and kCollision are legal for (r, c, t).
  virtual CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                          std::uint32_t t) = 0;

  virtual const char* name() const = 0;
};

/// Report "+-" exactly when messages were lost (t < c).  This is the
/// canonical complete-and-accurate detector projected into any class's
/// envelope; with spec AC it is the perfect detector.
class TruthfulPolicy final : public AdvicePolicy {
 public:
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "truthful"; }
};

/// Suppress every report that is not forced.  Against zero/half-complete
/// specs this hides as much loss as the class allows; it is the adversary
/// used by the half-AC lower bound composition (Lemma 23), where the
/// "exactly half received" rounds legally pass unreported.
class PreferNullPolicy final : public AdvicePolicy {
 public:
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "prefer-null"; }
};

/// Report "+-" whenever legal: a maximally noisy (but class-legal)
/// detector.  With an eventually-accurate spec this yields false positives
/// in every round before r_acc -- the behaviour Theorems 4/8 exploit.
class PreferCollisionPolicy final : public AdvicePolicy {
 public:
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "prefer-collision"; }
};

/// Truthful, plus independent false positives with probability p in rounds
/// before `spurious_until` (when legal).  Models a practical eventually
/// accurate detector experiencing environmental noise early on.
class SpuriousPolicy final : public AdvicePolicy {
 public:
  SpuriousPolicy(double p, Round spurious_until, std::uint64_t seed);
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "spurious"; }

 private:
  double p_;
  Round spurious_until_;
  Rng rng_;
};

/// Models the detectors measured in Section 1.3: zero completeness holds in
/// 100% of rounds (that part is enforced by the spec's envelope), and
/// *majority* losses are additionally reported with probability q per
/// process-round.  Pair with DetectorSpec::ZeroOAC / ZeroAC.
class FlakyMajorityPolicy final : public AdvicePolicy {
 public:
  FlakyMajorityPolicy(double q, std::uint64_t seed);
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "flaky-majority"; }

 private:
  double q_;
  Rng rng_;
};

/// Uniformly random legal advice; a fuzzing policy for robustness tests.
class RandomLegalPolicy final : public AdvicePolicy {
 public:
  explicit RandomLegalPolicy(std::uint64_t seed);
  CdAdvice choose(Round round, ProcessId i, std::uint32_t c,
                  std::uint32_t t) override;
  const char* name() const override { return "random-legal"; }

 private:
  Rng rng_;
};

std::unique_ptr<AdvicePolicy> make_truthful_policy();
std::unique_ptr<AdvicePolicy> make_prefer_null_policy();
std::unique_ptr<AdvicePolicy> make_prefer_collision_policy();

}  // namespace ccd
