#include "model/indistinguishability.hpp"

#include <algorithm>

namespace ccd {

Round indistinguishable_prefix(const ProcessView& a, const ProcessView& b) {
  if (a.initial_value != b.initial_value) return 0;
  const std::size_t limit = std::min(a.rounds.size(), b.rounds.size());
  std::size_t r = 0;
  while (r < limit && a.rounds[r] == b.rounds[r]) ++r;
  return static_cast<Round>(r);
}

bool indistinguishable_through(const ProcessView& a, const ProcessView& b,
                               Round r) {
  if (a.rounds.size() < r || b.rounds.size() < r) return false;
  return indistinguishable_prefix(a, b) >= r;
}

}  // namespace ccd
