// Core strong types shared by every module.
//
// The paper (Section 3.1) models a synchronous single-hop broadcast network:
// a finite index set I of processes, a fixed message alphabet M, and
// round-numbered executions.  We mirror those objects here.
#pragma once

#include <cstdint>
#include <limits>

namespace ccd {

/// Index of a process within the environment's index set P (Definition 9).
/// Indices are dense 0..n-1 inside a simulation; the *identifier* a
/// non-anonymous algorithm sees may be a different, sparse value (see
/// ProcessIdentity below).
using ProcessId = std::uint32_t;

/// Round number.  Rounds are 1-based as in the paper; round 0 denotes the
/// initial configuration C0.
using Round = std::uint32_t;

/// An element of the consensus value set V.  Values are canonically the
/// integers 0..|V|-1; the binary representation V^{0,1} used by Algorithm 2
/// is produced by util/bitcodec.
using Value = std::uint64_t;

/// Sentinel meaning "no value decided yet".
inline constexpr Value kNoValue = std::numeric_limits<Value>::max();

/// Sentinel for "no such round" / "never".
inline constexpr Round kNeverRound = std::numeric_limits<Round>::max();

/// Advice returned by a collision detector each round (Section 1.3):
/// kNull roughly means "you did not lose messages this round";
/// kCollision (the paper's "±") roughly means "you lost a message".
enum class CdAdvice : std::uint8_t { kNull = 0, kCollision = 1 };

/// Advice returned by a contention manager each round (Section 4):
/// kActive suggests the process may broadcast, kPassive that it stay silent.
enum class CmAdvice : std::uint8_t { kPassive = 0, kActive = 1 };

/// Identity information made available to a process.  Anonymous algorithms
/// (Definition 3) must ignore `id`; the harness enforces this by running
/// anonymity self-checks in tests (identical behaviour under relabeling).
struct ProcessIdentity {
  ProcessId index = 0;   ///< dense simulation index (never shown to anon algs)
  std::uint64_t id = 0;  ///< element of the identifier space I
  bool has_unique_id = false;
};

inline const char* to_string(CdAdvice a) {
  return a == CdAdvice::kCollision ? "+-" : "null";
}
inline const char* to_string(CmAdvice a) {
  return a == CmAdvice::kActive ? "active" : "passive";
}

}  // namespace ccd
