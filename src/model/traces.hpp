// Trace objects of Section 3.1 (Definitions 4, 5, 7) plus the per-process
// execution view used for indistinguishability arguments (Definition 12).
//
// A P-transmission trace records, per round, the broadcaster count c and
// the per-process receive count T(i).  A P-CD trace records the collision
// detector advice per round; a P-CM trace the contention manager advice.
// These are exactly the objects the detector/manager definitions and the
// lower-bound constructions quantify over.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/message.hpp"
#include "model/types.hpp"

namespace ccd {

/// One round of a P-transmission trace: (c, T).
struct TransmissionRound {
  std::uint32_t broadcaster_count = 0;       ///< c
  std::vector<std::uint32_t> receive_count;  ///< T : P -> [0, c]
};

/// Basic broadcast count (Definition 22): 0, 1, or 2+ broadcasters.
enum class BroadcastCount : std::uint8_t { kZero = 0, kOne = 1, kTwoPlus = 2 };

class TransmissionTrace {
 public:
  void push(TransmissionRound round) { rounds_.push_back(std::move(round)); }
  std::size_t num_rounds() const { return rounds_.size(); }
  /// Round r, 1-based as in the paper.
  const TransmissionRound& at(Round r) const { return rounds_.at(r - 1); }

  BroadcastCount broadcast_count(Round r) const;

  /// Basic broadcast count sequence over the first k rounds (Definition 22).
  std::vector<BroadcastCount> basic_broadcast_sequence(std::size_t k) const;

 private:
  std::vector<TransmissionRound> rounds_;
};

class CdTrace {
 public:
  void push(std::vector<CdAdvice> round) { rounds_.push_back(std::move(round)); }
  std::size_t num_rounds() const { return rounds_.size(); }
  const std::vector<CdAdvice>& at(Round r) const { return rounds_.at(r - 1); }

 private:
  std::vector<std::vector<CdAdvice>> rounds_;
};

class CmTrace {
 public:
  void push(std::vector<CmAdvice> round) { rounds_.push_back(std::move(round)); }
  std::size_t num_rounds() const { return rounds_.size(); }
  const std::vector<CmAdvice>& at(Round r) const { return rounds_.at(r - 1); }

  /// Number of processes advised active in round r.
  std::uint32_t active_count(Round r) const;

 private:
  std::vector<std::vector<CmAdvice>> rounds_;
};

/// Everything process i observes in one round (its slice of M_r, N_r, D_r,
/// W_r in Definition 11).  Two executions are indistinguishable to i through
/// round r iff these views (plus the initial state) coincide for rounds 1..r.
struct RoundView {
  std::optional<Message> sent;     ///< M_r[i]
  std::vector<Message> received;   ///< N_r[i] (multiset; stored sorted)
  CdAdvice cd = CdAdvice::kNull;   ///< D_r[i]
  CmAdvice cm = CmAdvice::kPassive;  ///< W_r[i]
  bool crashed = false;            ///< entered fail state by end of round

  friend bool operator==(const RoundView&, const RoundView&) = default;
};

/// Full per-process view of an execution.
struct ProcessView {
  Value initial_value = kNoValue;
  std::vector<RoundView> rounds;  ///< index 0 is round 1
};

}  // namespace ccd
