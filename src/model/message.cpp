#include "model/message.hpp"

#include <algorithm>

namespace ccd {

std::vector<Value> unique_values(std::span<const Message> received,
                                 Message::Kind kind) {
  std::vector<Value> out;
  out.reserve(received.size());
  for (const Message& m : received) {
    if (m.kind == kind) out.push_back(m.value);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t count_kind(std::span<const Message> received, Message::Kind kind) {
  std::size_t n = 0;
  for (const Message& m : received) {
    if (m.kind == kind) ++n;
  }
  return n;
}

std::string to_string(const Message& m) {
  switch (m.kind) {
    case Message::Kind::kEstimate:
      return "est(" + std::to_string(m.value) + ")";
    case Message::Kind::kVeto:
      return "veto";
    case Message::Kind::kVote:
      return "vote";
    case Message::Kind::kLeaderValue:
      return "leader(" + std::to_string(m.value) + ")";
    case Message::Kind::kPayload:
      return "payload(" + std::to_string(m.value) + ")";
  }
  return "?";
}

}  // namespace ccd
