// The process automaton (Definition 1) as a C++ interface.
//
// A process is a state machine with a message-generation function
// msg: states x {active, passive} -> M u {null} and a transition function
// trans: states x Multi(M) x {+-, null} x {active, passive} -> states.
// The simulator drives each round as: on_send (msg function), then message
// delivery by the loss adversary, then on_receive (transition function).
//
// Crash failures are modelled by the *simulator* (fault adversary), not by
// the process: once crashed, the executor never calls the process again,
// which is observationally identical to the paper's absorbing fail state.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "model/message.hpp"
#include "model/types.hpp"

namespace ccd {

class Process {
 public:
  virtual ~Process() = default;

  /// The msg function: what (if anything) to broadcast this round, given
  /// the contention manager's advice.  Returning nullopt is the paper's
  /// "null" (no broadcast).  Must be a pure function of internal state +
  /// advice; the round number is supplied for convenience/logging only.
  virtual std::optional<Message> on_send(Round round, CmAdvice cm) = 0;

  /// The trans function: consume the receive multiset, the collision
  /// detector advice and the contention manager advice for this round.
  virtual void on_receive(Round round, std::span<const Message> received,
                          CdAdvice cd, CmAdvice cm) = 0;

  /// Decision/halting observation hooks (the paper models deciding as
  /// entering decide states; we expose them as queries).
  virtual bool decided() const { return false; }
  virtual Value decision() const { return kNoValue; }

  /// A halted process stays silent forever (Algorithms 1-3 "halt" after
  /// deciding).  The executor stops invoking a halted process.
  virtual bool halted() const { return false; }
};

/// An algorithm (Definition 2) maps process indices to processes.  For
/// consensus, the factory also receives the initial value (the initial
/// state init_i(v)) and the identity (anonymous algorithms must ignore
/// identity.id; Definition 3).
class ConsensusAlgorithm {
 public:
  virtual ~ConsensusAlgorithm() = default;

  virtual std::unique_ptr<Process> make_process(
      const ProcessIdentity& identity, Value initial_value) const = 0;

  /// True iff the algorithm is anonymous: A(i) = A(j) for all i, j.
  virtual bool anonymous() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace ccd
