// The fixed message alphabet M (Section 3.1).
//
// The algorithms in the paper only ever broadcast a handful of message
// shapes: a value estimate, a one-bit "veto" mark, a one-bit "vote" mark,
// and (for the non-anonymous Section 7.3 protocol) a leader announcement
// carrying a value.  We encode them in one POD struct so receive sets are
// cheap flat vectors (a receive set is a *multiset* over M; Definition 11,
// constraint 4).
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace ccd {

struct Message {
  enum class Kind : std::uint8_t {
    kEstimate = 0,     ///< Algorithm 1/2 prepare|proposal broadcast of estimate
    kVeto = 1,         ///< negative acknowledgement mark
    kVote = 2,         ///< Algorithm 3 BST vote mark
    kLeaderValue = 3,  ///< Section 7.3 phase-2 leader value announcement
    kPayload = 4,      ///< generic application payload (examples)
  };

  Kind kind = Kind::kPayload;
  Value value = 0;          ///< meaningful for kEstimate/kLeaderValue/kPayload
  std::uint64_t tag = 0;    ///< algorithm-specific discriminator (e.g. epoch)

  friend auto operator<=>(const Message&, const Message&) = default;
};

/// SET(M) of the paper's preliminaries: the distinct values appearing in a
/// receive multiset, restricted to messages of the given kind.  Sorted
/// ascending, so front() is the min{} the algorithms take.
std::vector<Value> unique_values(std::span<const Message> received,
                                 Message::Kind kind);

/// Count messages of a given kind in a receive multiset.
std::size_t count_kind(std::span<const Message> received, Message::Kind kind);

std::string to_string(const Message& m);

}  // namespace ccd
