// Indistinguishability (Definition 12): two executions a, a' of the same
// algorithm are indistinguishable with respect to process i through round r
// iff i has the same initial state and the same per-round sequence of state,
// outgoing message, receive multiset, CD advice and CM advice in both.
//
// Since our processes are deterministic automata, equality of (initial
// value, per-round inputs) implies equality of states; we therefore compare
// ProcessViews, which is exactly the information the lower-bound proofs
// manipulate (Lemmas 20, 23; Theorems 4, 8).
#pragma once

#include <cstddef>

#include "model/traces.hpp"

namespace ccd {

/// Largest r such that `a` and `b` agree on the initial value and on every
/// round view 1..r.  Returns 0 if even the initial values differ.
Round indistinguishable_prefix(const ProcessView& a, const ProcessView& b);

/// True iff indistinguishable through round r (requires both views to cover
/// at least r rounds).
bool indistinguishable_through(const ProcessView& a, const ProcessView& b,
                               Round r);

}  // namespace ccd
