#include "model/traces.hpp"

namespace ccd {

BroadcastCount TransmissionTrace::broadcast_count(Round r) const {
  const std::uint32_t c = at(r).broadcaster_count;
  if (c == 0) return BroadcastCount::kZero;
  if (c == 1) return BroadcastCount::kOne;
  return BroadcastCount::kTwoPlus;
}

std::vector<BroadcastCount> TransmissionTrace::basic_broadcast_sequence(
    std::size_t k) const {
  std::vector<BroadcastCount> seq;
  const std::size_t limit = k < rounds_.size() ? k : rounds_.size();
  seq.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    seq.push_back(broadcast_count(static_cast<Round>(i + 1)));
  }
  return seq;
}

std::uint32_t CmTrace::active_count(Round r) const {
  std::uint32_t n = 0;
  for (CmAdvice a : at(r)) {
    if (a == CmAdvice::kActive) ++n;
  }
  return n;
}

}  // namespace ccd
