// Minimal JSON machinery shared by the exp/ serialization code
// (ScenarioSpec, SweepGrid, shard specs and shard reports) and the obs/
// perf sidecars.  Lives in util/ -- the bottom of the layer DAG -- so
// obs/ can parse/emit sidecars without an include edge into exp/.
//
// This is NOT a general JSON library: it accepts exactly the shapes our
// own writers emit -- one object of string / number members plus
// bracket-balanced array members and brace-balanced object members
// captured as raw text for the caller to re-parse.  Keeping the scanner
// tiny beats pulling in a JSON dependency the container may not have.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccd::jsonu {

/// Shortest %g form that strtod parses back to the same double: try
/// increasing precision until the round trip is exact.  Keeps emitted JSON
/// both readable ("0.5", not "0.50000000000000000") and lossless -- the
/// byte-identical merge guarantee leans on this exactness.
std::string format_double(double d);

/// Advance `i` past a double-quoted JSON string (`i` must point at the
/// opening quote, escapes are honoured); false on unterminated input.
bool skip_quoted(const std::string& text, std::size_t& i);

/// One flat JSON object.  String members are unescaped; array members are
/// captured as raw bracket-balanced text (including the brackets); object
/// members as raw brace-balanced text (including the braces).  Trailing
/// content after the object is rejected: a concatenated or corrupted
/// record must not silently half-parse.
struct FlatJson {
  std::map<std::string, std::string> members;  // raw value text (unquoted)

  static std::optional<FlatJson> parse(const std::string& text);

  const std::string* find(const char* key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

/// Parse the raw text of an array member into element raw texts: strings
/// are unescaped, numbers kept verbatim, nested objects/arrays captured
/// balanced.  nullopt on malformed input (including trailing junk).
std::optional<std::vector<std::string>> parse_array_items(
    const std::string& raw);

/// Array of unquoted numbers -> doubles; nullopt if any element is not a
/// number.
std::optional<std::vector<double>> parse_double_array(const std::string& raw);

/// Array of unquoted non-negative integers; nullopt on anything else.
std::optional<std::vector<std::uint64_t>> parse_u64_array(
    const std::string& raw);

/// Append `[a,b,...]` rendering doubles via format_double.
void append_double_array(std::string& out, const std::vector<double>& xs);

/// JSON string escaping for the few places we emit caller-supplied text
/// (file paths never go through here; schedule names and enum tokens are
/// already escape-free, but defend anyway).
std::string quote(const std::string& s);

}  // namespace ccd::jsonu
