// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the simulator (loss adversaries, backoff
// contention managers, random crash schedules, random-legal detector
// policies) flows through Rng so that every execution is reproducible from a
// single 64-bit seed.  We use xoshiro256** seeded via splitmix64, which is
// fast, high quality, and has no global state.
#pragma once

#include <array>
#include <cstdint>

namespace ccd {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix (useful to derive independent stream seeds).
std::uint64_t hash_mix(std::uint64_t x);

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xc0ffee123456789ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Derive an independent child generator (for per-process streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ccd
