#include "util/bitcodec.hpp"

#include <cassert>

namespace ccd {

std::uint32_t ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  std::uint32_t bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < x) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

BitCodec::BitCodec(std::uint64_t num_values)
    : num_values_(num_values), width_(ceil_log2(num_values)) {
  assert(num_values >= 1);
  if (width_ == 0) width_ = 1;
}

bool BitCodec::bit(Value v, std::uint32_t b) const {
  assert(b >= 1 && b <= width_);
  assert(v < num_values_ || num_values_ == 1);
  const std::uint32_t shift = width_ - b;  // b=1 -> MSB
  return ((v >> shift) & 1ULL) != 0;
}

Value BitCodec::from_bits(const bool* bits) const {
  Value v = 0;
  for (std::uint32_t b = 0; b < width_; ++b) {
    v = (v << 1) | (bits[b] ? 1ULL : 0ULL);
  }
  return v;
}

}  // namespace ccd
