#include "util/value_bst.hpp"

#include <cassert>

namespace ccd {

ValueBstCursor::ValueBstCursor(std::uint64_t num_values)
    : num_values_(num_values) {
  assert(num_values >= 1);
}

ValueBstCursor::Range ValueBstCursor::current() const {
  Range r{0, num_values_};
  for (bool went_right : path_) {
    const std::uint64_t mid = r.mid();
    if (went_right) {
      r.lo = mid + 1;
    } else {
      r.hi = mid;
    }
  }
  return r;
}

Value ValueBstCursor::value() const {
  const Range r = current();
  assert(r.lo < r.hi);
  return r.mid();
}

bool ValueBstCursor::has_left() const {
  const Range r = current();
  return r.mid() > r.lo;
}

bool ValueBstCursor::has_right() const {
  const Range r = current();
  return r.mid() + 1 < r.hi;
}

bool ValueBstCursor::left_contains(Value v) const {
  const Range r = current();
  return v >= r.lo && v < r.mid();
}

bool ValueBstCursor::right_contains(Value v) const {
  const Range r = current();
  return v > r.mid() && v < r.hi;
}

bool ValueBstCursor::is_root() const { return path_.empty(); }

void ValueBstCursor::descend_left() {
  assert(has_left());
  path_.push_back(false);
}

void ValueBstCursor::descend_right() {
  assert(has_right());
  path_.push_back(true);
}

void ValueBstCursor::ascend() {
  if (!path_.empty()) path_.pop_back();
}

std::uint32_t ValueBstCursor::tree_height() const {
  // Height of the implicit tree over m values: the deepest chain follows the
  // larger half each time.
  std::uint32_t h = 0;
  std::uint64_t m = num_values_;
  while (m > 1) {
    const std::uint64_t left = (m - 1) / 2;         // size of left subtree
    const std::uint64_t right = m - 1 - left;       // size of right subtree
    m = left > right ? left : right;
    ++h;
  }
  return h;
}

}  // namespace ccd
