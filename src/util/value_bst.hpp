// Implicit balanced binary search tree over the value set V = {0..|V|-1},
// used by Algorithm 3 (Section 7.4).
//
// The paper's Algorithm 3 walks "a balanced binary search tree
// representation of V" with a curr pointer supporting val[curr],
// left[curr], right[curr] and parent[curr].  We represent nodes implicitly
// as half-open ranges [lo, hi): the node's value is the midpoint, the left
// child is [lo, mid) and the right child is [mid+1, hi).  The tree over
// |V| = m values then has height exactly ceil(lg(m+1)) - 1 <= ceil(lg m)
// (for m >= 2), matching the lg|V| height the 8*lg|V| termination bound of
// Theorem 3 counts against.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace ccd {

/// A cursor into the implicit BST.  Copyable, comparable; parent pointers
/// are reconstructed from the root on demand (the path is O(height)).
class ValueBstCursor {
 public:
  /// Cursor at the root of the tree over {0..num_values-1}.
  explicit ValueBstCursor(std::uint64_t num_values);

  /// val[curr]
  Value value() const;

  /// Does the left (resp. right) subtree exist and contain v?
  bool left_contains(Value v) const;
  bool right_contains(Value v) const;

  bool has_left() const;
  bool has_right() const;
  bool is_root() const;
  bool is_leaf() const { return !has_left() && !has_right(); }

  /// Descend; precondition: the child exists.
  void descend_left();
  void descend_right();

  /// Ascend to parent[curr]; at the root this is a no-op (the paper's
  /// executions never ascend from the root because some correct process
  /// always votes there, but we keep the operation total for safety).
  void ascend();

  /// Depth of the current node (root = 0).
  std::uint32_t depth() const { return static_cast<std::uint32_t>(path_.size()); }

  /// Height of the whole tree (edges on the longest root-leaf path).
  std::uint32_t tree_height() const;

  bool operator==(const ValueBstCursor&) const = default;

 private:
  struct Range {
    std::uint64_t lo;
    std::uint64_t hi;  // half-open
    std::uint64_t mid() const { return lo + (hi - lo) / 2; }
  };
  Range current() const;

  std::uint64_t num_values_;
  // Path of left/right choices from the root; current range is derived.
  std::vector<bool> path_;  // false = went left, true = went right
};

}  // namespace ccd
