#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ccd {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_cell(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", d);
  return buf;
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string AsciiTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace ccd
