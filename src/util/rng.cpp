#include "util/rng.hpp"

namespace ccd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  if (bound == 0) return 0;
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace ccd
