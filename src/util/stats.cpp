#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/flat_json.hpp"

namespace ccd {
namespace {

// 2^53: the edge of the window where every integer is exactly one double.
constexpr double kMaxExactInt = 9007199254740992.0;

// True iff x is an integer the histogram can hold losslessly; -0.0 is
// excluded so a raw-mode min() of -0.0 cannot silently become +0.0.
bool integral_key(double x, std::int64_t* key) {
  if (!(x >= -kMaxExactInt && x <= kMaxExactInt)) return false;  // NaN/inf too
  if (x != std::trunc(x)) return false;
  if (x == 0.0 && std::signbit(x)) return false;
  *key = static_cast<std::int64_t>(x);
  return true;
}

// Exact integer moments of the histogram multiset.  __int128 keeps the
// accumulation integer-exact; the single conversion to double at the end
// rounds exactly once, matching what the sequential double fold produces
// while the running sum stays inside the 2^53 window.
double exact_sum(const ExactHistogram& h) {
  __int128 sum = 0;
  for (const auto& [key, cnt] : h.bins()) {
    sum += static_cast<__int128>(key) * static_cast<__int128>(cnt);
  }
  return static_cast<double>(sum);
}

double exact_sum_sq(const ExactHistogram& h) {
  __int128 sum = 0;
  for (const auto& [key, cnt] : h.bins()) {
    sum += static_cast<__int128>(key) * key * static_cast<__int128>(cnt);
  }
  return static_cast<double>(sum);
}

}  // namespace

void Stats::raw_add(double x) {
  if (samples_.empty() || x < min_) min_ = x;
  if (samples_.empty() || x > max_) max_ = x;
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  sorted_valid_ = false;
}

void Stats::demote_to_raw() {
  // Materialize the multiset in ascending key order and replay it through
  // the raw accumulators.  For the integer-only prefix the histogram held,
  // the ascending-order double sum equals the arrival-order sum exactly
  // (integer sums in the 2^53 window are order-free), so the demoted
  // accumulator is bit-identical to one that had been raw all along.
  hist_active_ = false;
  samples_.reserve(hist_.total());
  for (const auto& [key, cnt] : hist_.bins()) {
    const double x = static_cast<double>(key);
    for (std::uint64_t i = 0; i < cnt; ++i) raw_add(x);
  }
  hist_.clear();
}

void Stats::add(double x) {
  if (hist_active_) {
    std::int64_t key = 0;
    if (integral_key(x, &key)) {
      hist_.add(key, 1);
      return;
    }
    demote_to_raw();
  }
  raw_add(x);
}

void Stats::add_bin(std::int64_t key, std::uint64_t count) {
  if (hist_active_) {
    hist_.add(key, count);
    return;
  }
  const double x = static_cast<double>(key);
  samples_.reserve(samples_.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) raw_add(x);
}

void Stats::merge_from(const Stats& other) {
  if (hist_active_ && other.hist_active_) {
    hist_.merge_from(other.hist_);  // alias-safe
    return;
  }
  if (!other.hist_active_) {
    // Replay other's buffer in its insertion order, exactly as the
    // equivalent add() calls would (this may demote us mid-loop).  `other`
    // may alias `this`: snapshot the count first (samples_ may reallocate
    // mid-loop).
    const std::size_t n = other.samples_.size();
    if (!hist_active_) samples_.reserve(samples_.size() + n);
    for (std::size_t i = 0; i < n; ++i) add(other.samples_[i]);
    return;
  }
  // this raw, other histogram (modes differ, so no aliasing): append
  // other's multiset in ascending key order.
  samples_.reserve(samples_.size() + other.hist_.total());
  for (const auto& [key, cnt] : other.hist_.bins()) {
    const double x = static_cast<double>(key);
    for (std::uint64_t i = 0; i < cnt; ++i) raw_add(x);
  }
}

const ExactHistogram& Stats::histogram() const {
  assert(hist_active_);
  return hist_;
}

const std::vector<double>& Stats::samples() const {
  assert(!hist_active_);
  return samples_;
}

std::size_t Stats::count() const {
  return hist_active_ ? static_cast<std::size_t>(hist_.total())
                      : samples_.size();
}

std::size_t Stats::bytes_retained() const {
  return hist_active_ ? hist_.bytes_retained()
                      : samples_.size() * sizeof(double);
}

void Stats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Stats::min() const {
  assert(!empty());
  return hist_active_ ? static_cast<double>(hist_.min_key()) : min_;
}

double Stats::max() const {
  assert(!empty());
  return hist_active_ ? static_cast<double>(hist_.max_key()) : max_;
}

double Stats::mean() const {
  assert(!empty());
  const double sum = hist_active_ ? exact_sum(hist_) : sum_;
  return sum / static_cast<double>(count());
}

double Stats::stddev() const {
  assert(!empty());
  const double n = static_cast<double>(count());
  const double m = mean();
  const double sq = hist_active_ ? exact_sum_sq(hist_) : sum_sq_;
  const double var = sq / n - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Stats::percentile(double p) const {
  assert(!empty());
  if (hist_active_) {
    // Same linear-interpolation formula as the raw path below, reading
    // ranked values out of the cumulative bin counts; integer-valued
    // doubles make the arithmetic bit-identical across modes.
    if (p <= 0) return static_cast<double>(hist_.min_key());
    if (p >= 100) return static_cast<double>(hist_.max_key());
    const std::uint64_t n = hist_.total();
    const double rank = p / 100.0 * static_cast<double>(n - 1);
    const auto lo = static_cast<std::uint64_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    const double at_lo = static_cast<double>(hist_.value_at_rank(lo));
    if (lo + 1 >= n) return at_lo;
    const double at_hi = static_cast<double>(hist_.value_at_rank(lo + 1));
    return at_lo * (1.0 - frac) + at_hi * frac;
  }
  ensure_sorted();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

// ---- serialization ---------------------------------------------------------

std::string stats_to_json(const Stats& s) {
  std::string out;
  if (s.histogram_active()) {
    out += "{\"h\":[";
    bool first = true;
    for (const auto& [key, cnt] : s.histogram().bins()) {
      if (!first) out += ',';
      first = false;
      out += std::to_string(key);
      out += ',';
      out += std::to_string(cnt);
    }
    out += "]}";
  } else {
    out += "{\"raw\":";
    jsonu::append_double_array(out, s.samples());
    out += '}';
  }
  return out;
}

namespace {

bool parse_i64(const std::string& text, std::int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool fail(std::string* error, const char* what) {
  if (error) *error = what;
  return false;
}

}  // namespace

bool stats_from_json(std::string_view raw, Stats* into, std::string* error) {
  std::size_t start = raw.find_first_not_of(" \t\r\n");
  if (start == std::string_view::npos) return fail(error, "stats: empty");
  const std::string text(raw.substr(start));
  if (text[0] == '[') {
    // Legacy shard-v1 encoding: bare sample array, replayed via add() in
    // serialized (= insertion) order.
    auto xs = jsonu::parse_double_array(text);
    if (!xs) return fail(error, "stats: bad legacy sample array");
    for (double x : *xs) into->add(x);
    return true;
  }
  auto obj = jsonu::FlatJson::parse(text);
  if (!obj) return fail(error, "stats: not an object or array");
  if (const std::string* h = obj->find("h")) {
    auto items = jsonu::parse_array_items(*h);
    if (!items || items->size() % 2 != 0) {
      return fail(error, "stats: bad histogram array");
    }
    for (std::size_t i = 0; i < items->size(); i += 2) {
      std::int64_t key = 0;
      std::uint64_t cnt = 0;
      if (!parse_i64((*items)[i], &key) || !parse_u64((*items)[i + 1], &cnt)) {
        return fail(error, "stats: bad histogram bin");
      }
      into->add_bin(key, cnt);
    }
    return true;
  }
  if (const std::string* r = obj->find("raw")) {
    auto xs = jsonu::parse_double_array(*r);
    if (!xs) return fail(error, "stats: bad raw sample array");
    for (double x : *xs) into->add(x);
    return true;
  }
  return fail(error, "stats: missing h/raw member");
}

}  // namespace ccd
