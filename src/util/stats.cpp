#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccd {

void Stats::add(double x) {
  if (samples_.empty() || x < min_) min_ = x;
  if (samples_.empty() || x > max_) max_ = x;
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  sorted_valid_ = false;
}

void Stats::merge_from(const Stats& other) {
  // Replaying add() (rather than summing the accumulators) keeps the
  // floating-point fold order identical to a single-pass accumulation, so
  // sum_/sum_sq_ are exact, not merely close.  `other` may alias `this`:
  // snapshot the count first (samples_ may reallocate mid-loop).
  const std::size_t count = other.samples_.size();
  samples_.reserve(samples_.size() + count);
  for (std::size_t i = 0; i < count; ++i) add(other.samples_[i]);
}

void Stats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Stats::min() const {
  assert(!samples_.empty());
  return min_;
}

double Stats::max() const {
  assert(!samples_.empty());
  return max_;
}

double Stats::mean() const {
  assert(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  assert(!samples_.empty());
  const double n = static_cast<double>(samples_.size());
  const double m = mean();
  const double var = sum_sq_ / n - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Stats::percentile(double p) const {
  assert(!samples_.empty());
  ensure_sorted();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

}  // namespace ccd
