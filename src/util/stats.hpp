// Small online statistics accumulator used by the bench harness and the
// exp/ Aggregator to report min / max / mean / percentiles of round counts
// over many seeded runs.
//
// Cost model (the Aggregator asks every cell for p50 AND p99, plus min,
// mean and max): min / max / mean / stddev are O(1) from online
// accumulators; percentile sorts a cached copy once and reuses it until
// the next add() invalidates it, so a burst of percentile queries costs a
// single sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccd {

class Stats {
 public:
  void add(double x);

  /// Exact merge: folds `other`'s samples into this accumulator in their
  /// insertion order, exactly as the equivalent sequence of add() calls
  /// would -- count/sum/min/max and the percentile buffer all end up
  /// bit-identical to a single-pass accumulation of this's samples
  /// followed by other's.  This is what makes shard reports recombinable
  /// into byte-identical full reports (see exp/shard/).
  void merge_from(const Stats& other);

  /// Insertion-order sample buffer (the percentile buffer's source of
  /// truth).  Exposed so shard reports can serialize a Stats and rebuild
  /// it exactly via add() replay.
  const std::vector<double>& samples() const { return samples_; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;  ///< online; valid iff !empty()
  double max_ = 0.0;  ///< online; valid iff !empty()
};

}  // namespace ccd
