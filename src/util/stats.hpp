// Small online statistics accumulator used by the bench harness to report
// min / max / mean / percentiles of round counts over many seeded runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccd {

class Stats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace ccd
