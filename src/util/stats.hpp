// Statistics accumulator used by the bench harness and the exp/ Aggregator
// to report min / max / mean / percentiles of per-run metrics over many
// seeded runs.
//
// Two storage modes:
//
// - Mode::kExactHistogram (the default): samples fold into a sparse
//   integer-keyed counting histogram (util/histogram.hpp).  Lossless for
//   integer-valued samples, memory bounded by the number of DISTINCT
//   values rather than the run count, and merge_from is per-key count
//   addition -- order-free, so shard merges are byte-identical by
//   construction.  If a non-integral (or out-of-exact-range, or -0.0)
//   sample ever arrives, the accumulator transparently demotes itself to
//   raw-sample storage by materializing the multiset in ascending key
//   order; all queries keep answering across the transition.
//
// - Mode::kRawSamples: the insertion-order sample buffer, exactly the
//   pre-histogram behavior.  Opt-in for genuinely real-valued metrics
//   (fractions, microsecond skews) where binning would be lossy.
//
// Exactness contract (why the histogram path is bit-identical, not merely
// close): for integer-valued samples with |x| <= 2^53 and running sums
// inside the 2^53 exact-integer window -- true for every count-like
// metric we record -- the sequential double sum IS the integer sum, so
// recomputing mean from the histogram's exact integer accumulators yields
// the same IEEE double.  min/max/percentile depend only on the sorted
// multiset, which both modes agree on (percentile uses the same
// linear-interpolation formula over ranked values).  stddev additionally
// needs x*x inside the window; it is not rendered into reports.
//
// Cost model (the Aggregator asks every cell for p50 AND p99, plus min,
// mean and max): histogram queries are O(#bins); raw-mode percentile
// sorts a cached copy once and reuses it until the next add().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace ccd {

class Stats {
 public:
  enum class Mode : std::uint8_t {
    kExactHistogram,  ///< sparse integer histogram, auto-demotes on reals
    kRawSamples,      ///< insertion-order sample buffer
  };

  Stats() = default;
  explicit Stats(Mode mode) : hist_active_(mode == Mode::kExactHistogram) {}

  void add(double x);

  /// Exact merge.  Histogram+histogram merges by count addition (order
  /// free); any raw operand falls back to add() replay in the operand's
  /// storage order, exactly as the equivalent sequence of add() calls
  /// would.  Either way the merged accumulator answers every query
  /// bit-identically to a single-pass accumulation, which is what makes
  /// shard reports recombinable into byte-identical full reports (see
  /// exp/shard/).  `other` may alias `this`.
  void merge_from(const Stats& other);

  /// Storage currently in effect (a kExactHistogram accumulator that saw
  /// a non-integral sample reports kRawSamples from then on).
  Mode mode() const {
    return hist_active_ ? Mode::kExactHistogram : Mode::kRawSamples;
  }
  bool histogram_active() const { return hist_active_; }

  /// The sparse histogram.  Requires histogram_active().
  const ExactHistogram& histogram() const;

  /// Insertion-order sample buffer (the percentile buffer's source of
  /// truth in raw mode).  Requires !histogram_active().  Exposed so shard
  /// reports can serialize a raw-mode Stats and rebuild it exactly via
  /// add() replay.
  const std::vector<double>& samples() const;

  /// Bulk add of `count` copies of `key`.  Used by the shard-report
  /// decoder; in raw mode this appends count copies of double(key).
  void add_bin(std::int64_t key, std::uint64_t count);

  std::size_t count() const;
  bool empty() const { return count() == 0; }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// p in [0,100]; linear interpolation between the two nearest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Deterministic footprint of retained state: histogram bins * 16 or
  /// raw samples * 8.  The sidecar's stats_bytes_retained sums this.
  std::size_t bytes_retained() const;

 private:
  void raw_add(double x);
  void demote_to_raw();
  void ensure_sorted() const;

  bool hist_active_ = true;
  ExactHistogram hist_;               ///< valid iff hist_active_
  std::vector<double> samples_;       ///< valid iff !hist_active_
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;     ///< raw mode: sequential fold in add() order
  double sum_sq_ = 0.0;  ///< raw mode: sequential fold in add() order
  double min_ = 0.0;     ///< raw mode online; valid iff !empty()
  double max_ = 0.0;     ///< raw mode online; valid iff !empty()
};

/// Serializes retained state: {"h":[k0,c0,k1,c1,...]} for histogram mode
/// (bins ascending, counts > 0) or {"raw":[x0,x1,...]} for raw mode
/// (insertion order, shortest round-trip doubles).
std::string stats_to_json(const Stats& s);

/// Rebuilds a Stats serialized by stats_to_json, plus the legacy
/// shard-v1 encoding (a bare sample array "[x0,x1,...]", replayed via
/// add()).  Folds into `*into` (normally freshly constructed).  Returns
/// false and sets *error (if non-null) on malformed input.
bool stats_from_json(std::string_view raw, Stats* into, std::string* error);

}  // namespace ccd
