#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace ccd {

void ExactHistogram::add(std::int64_t key, std::uint64_t count) {
  if (count == 0) return;
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), key,
      [](const Bin& bin, std::int64_t k) { return bin.first < k; });
  if (it != bins_.end() && it->first == key) {
    it->second += count;
  } else {
    bins_.insert(it, Bin{key, count});
  }
  total_ += count;
}

void ExactHistogram::merge_from(const ExactHistogram& other) {
  if (&other == this) {
    // Self-merge doubles every count.
    for (Bin& bin : bins_) bin.second += bin.second;
    total_ += total_;
    return;
  }
  if (other.bins_.empty()) return;
  std::vector<Bin> merged;
  merged.reserve(bins_.size() + other.bins_.size());
  auto a = bins_.begin();
  auto b = other.bins_.begin();
  while (a != bins_.end() && b != other.bins_.end()) {
    if (a->first < b->first) {
      merged.push_back(*a++);
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, bins_.end());
  merged.insert(merged.end(), b, other.bins_.end());
  bins_ = std::move(merged);
  total_ += other.total_;
}

void ExactHistogram::clear() {
  bins_.clear();
  total_ = 0;
}

std::int64_t ExactHistogram::min_key() const {
  assert(!bins_.empty());
  return bins_.front().first;
}

std::int64_t ExactHistogram::max_key() const {
  assert(!bins_.empty());
  return bins_.back().first;
}

std::int64_t ExactHistogram::value_at_rank(std::uint64_t rank) const {
  assert(rank < total_);
  std::uint64_t seen = 0;
  for (const Bin& bin : bins_) {
    seen += bin.second;
    if (rank < seen) return bin.first;
  }
  return bins_.back().first;  // unreachable when rank < total_
}

}  // namespace ccd
