// Binary representation V^{0,1} of a value set (Section 7, pseudocode
// conventions): every value in V = {0..|V|-1} is encoded as a unique binary
// string of length ceil(lg |V|).  Algorithm 2 spells estimates out one bit
// per round using this encoding; the lower bounds count rounds against
// lg |V| using the same quantity.
#pragma once

#include <cstdint>

#include "model/types.hpp"

namespace ccd {

/// ceil(log2(x)) for x >= 1; width 0 is promoted to 1 so that a singleton
/// value set still has a one-bit (degenerate) encoding.
std::uint32_t ceil_log2(std::uint64_t x);

/// Fixed-width binary codec over V = {0..num_values-1}.
class BitCodec {
 public:
  explicit BitCodec(std::uint64_t num_values);

  std::uint64_t num_values() const { return num_values_; }

  /// Number of bits per codeword: max(1, ceil(lg |V|)).
  std::uint32_t width() const { return width_; }

  /// The paper's estimate[b] with b in [1, width()]: bit b of the codeword,
  /// most-significant bit first (b=1 is the MSB).
  bool bit(Value v, std::uint32_t b) const;

  /// Inverse: assemble a value from width() bits (MSB first).
  Value from_bits(const bool* bits) const;

 private:
  std::uint64_t num_values_;
  std::uint32_t width_;
};

}  // namespace ccd
