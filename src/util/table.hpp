// Minimal ASCII table printer so every bench binary can render the paper's
// tables/series in a uniform, diffable format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccd {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double d);
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccd
