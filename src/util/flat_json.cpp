#include "util/flat_json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ccd::jsonu {

std::string format_double(double d) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

bool skip_quoted(const std::string& text, std::size_t& i) {
  ++i;
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) ++i;
    ++i;
  }
  if (i >= text.size()) return false;
  ++i;  // closing quote
  return true;
}

namespace {

/// Capture balanced `open`...`close` raw text starting at `i` (which must
/// point at `open`); strings inside are skipped whole.  Returns the raw
/// text including the delimiters and advances `i` past the closer, or
/// nullopt on unbalanced input.
std::optional<std::string> capture_balanced(const std::string& text,
                                            std::size_t& i, char open,
                                            char close) {
  const std::size_t start = i;
  int depth = 0;
  while (i < text.size()) {
    if (text[i] == '"') {
      if (!skip_quoted(text, i)) return std::nullopt;
      continue;
    }
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      if (--depth == 0) {
        ++i;  // consume the closer
        return text.substr(start, i - start);
      }
    }
    ++i;
  }
  return std::nullopt;  // unbalanced
}

}  // namespace

std::optional<FlatJson> FlatJson::parse(const std::string& text) {
  FlatJson out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  auto parse_string = [&]() -> std::optional<std::string> {
    if (i >= text.size() || text[i] != '"') return std::nullopt;
    ++i;
    std::string s;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;  // unescape
      s += text[i++];
    }
    if (i >= text.size()) return std::nullopt;
    ++i;  // closing quote
    return s;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  auto finish = [&]() -> std::optional<FlatJson> {
    ++i;  // consume '}'
    skip_ws();
    if (i != text.size()) return std::nullopt;  // trailing junk
    return out;
  };
  skip_ws();
  if (i < text.size() && text[i] == '}') return finish();  // empty object
  while (true) {
    skip_ws();
    auto key = parse_string();
    if (!key) return std::nullopt;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    if (i < text.size() && text[i] == '"') {
      auto value = parse_string();
      if (!value) return std::nullopt;
      out.members[*key] = *value;
    } else if (i < text.size() && text[i] == '[') {
      auto raw = capture_balanced(text, i, '[', ']');
      if (!raw) return std::nullopt;
      out.members[*key] = *raw;
    } else if (i < text.size() && text[i] == '{') {
      auto raw = capture_balanced(text, i, '{', '}');
      if (!raw) return std::nullopt;
      out.members[*key] = *raw;
    } else {
      std::size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      if (i == start) return std::nullopt;
      out.members[*key] = text.substr(start, i - start);
    }
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return finish();
    return std::nullopt;
  }
}

std::optional<std::vector<std::string>> parse_array_items(
    const std::string& raw) {
  std::vector<std::string> items;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= raw.size() || raw[i] != '[') return std::nullopt;
  ++i;
  skip_ws();
  if (i < raw.size() && raw[i] == ']') {
    ++i;
    skip_ws();
    if (i != raw.size()) return std::nullopt;  // trailing junk
    return items;
  }
  while (true) {
    skip_ws();
    if (i >= raw.size()) return std::nullopt;
    if (raw[i] == '"') {
      std::string s;
      ++i;
      while (i < raw.size() && raw[i] != '"') {
        if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
        s += raw[i++];
      }
      if (i >= raw.size()) return std::nullopt;
      ++i;
      items.push_back(std::move(s));
    } else if (raw[i] == '{') {
      auto obj = capture_balanced(raw, i, '{', '}');
      if (!obj) return std::nullopt;
      items.push_back(std::move(*obj));
    } else if (raw[i] == '[') {
      auto arr = capture_balanced(raw, i, '[', ']');
      if (!arr) return std::nullopt;
      items.push_back(std::move(*arr));
    } else {
      const std::size_t start = i;
      while (i < raw.size() && raw[i] != ',' && raw[i] != ']' &&
             !std::isspace(static_cast<unsigned char>(raw[i]))) {
        ++i;
      }
      if (i == start) return std::nullopt;
      items.push_back(raw.substr(start, i - start));
    }
    skip_ws();
    if (i < raw.size() && raw[i] == ',') {
      ++i;
      continue;
    }
    if (i < raw.size() && raw[i] == ']') {
      ++i;
      skip_ws();
      if (i != raw.size()) return std::nullopt;  // trailing junk
      return items;
    }
    return std::nullopt;
  }
}

std::optional<std::vector<double>> parse_double_array(const std::string& raw) {
  auto items = parse_array_items(raw);
  if (!items) return std::nullopt;
  std::vector<double> out;
  out.reserve(items->size());
  for (const std::string& item : *items) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (!end || *end != '\0' || item.empty()) return std::nullopt;
    out.push_back(v);
  }
  return out;
}

std::optional<std::vector<std::uint64_t>> parse_u64_array(
    const std::string& raw) {
  auto items = parse_array_items(raw);
  if (!items) return std::nullopt;
  std::vector<std::uint64_t> out;
  out.reserve(items->size());
  for (const std::string& item : *items) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(item.c_str(), &end, 10);
    if (!end || *end != '\0' || item.empty() || item[0] == '-') {
      return std::nullopt;
    }
    out.push_back(v);
  }
  return out;
}

void append_double_array(std::string& out, const std::vector<double>& xs) {
  out += "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += format_double(xs[i]);
  }
  out += "]";
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

}  // namespace ccd::jsonu
