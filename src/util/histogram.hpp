// Exact sparse counting histogram over integer keys.
//
// This is the storage engine behind Stats' default mode: every metric the
// aggregator records per run is a small integer (rounds, messages, MIS
// size), so a sorted (key, count) vector is lossless, its memory is
// bounded by the number of DISTINCT values rather than the sample count,
// and two histograms merge by adding counts -- no floating-point fold
// order to preserve, which is what makes shard merges byte-identical by
// construction instead of by careful replay.
//
// Ranked access (value_at_rank) walks the cumulative counts, so exact
// percentiles over millions of samples cost O(#bins), not O(n log n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccd {

class ExactHistogram {
 public:
  /// (key, count); counts are always > 0 and keys strictly ascending.
  using Bin = std::pair<std::int64_t, std::uint64_t>;

  void add(std::int64_t key, std::uint64_t count = 1);

  /// Additive merge: per-key count sums.  Order-free and associative, so
  /// any shard split recombines to the same histogram.  `other` may alias
  /// `this`.
  void merge_from(const ExactHistogram& other);

  void clear();

  const std::vector<Bin>& bins() const { return bins_; }
  std::uint64_t total() const { return total_; }
  bool empty() const { return bins_.empty(); }
  std::int64_t min_key() const;
  std::int64_t max_key() const;

  /// rank in [0, total()): the rank-th smallest element of the multiset
  /// (0-based).  rank 0 is min_key(), rank total()-1 is max_key().
  std::int64_t value_at_rank(std::uint64_t rank) const;

  /// Bytes held by the sparse bin storage: distinct keys * sizeof(Bin).
  /// Deterministic (uses size, not capacity) so it can live in reports.
  std::size_t bytes_retained() const { return bins_.size() * sizeof(Bin); }

 private:
  std::vector<Bin> bins_;  ///< sorted by key
  std::uint64_t total_ = 0;
};

}  // namespace ccd
