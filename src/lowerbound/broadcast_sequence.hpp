// Pigeonhole searches over broadcast-count sequences (Lemmas 21/22 and the
// counting argument of Theorem 9).
//
// Lemma 21: among the |V| alpha executions of an anonymous algorithm, at
// most 3^k distinct basic broadcast count sequences of length k exist, so
// for k = (lg|V|)/2 - 1 two values must collide.  Theorem 9 plays the same
// game with the 2^k binary broadcast sequences of beta executions.  These
// helpers FIND such colliding pairs constructively, which the composition
// experiments then weld into agreement-violating executions.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "lowerbound/alpha_execution.hpp"

namespace ccd {

struct CollidingPair {
  Value v1 = 0;
  Value v2 = 0;
  Round prefix_length = 0;  ///< sequences agree through this many rounds
};

/// Search values 0..num_values-1 (stopping at max_candidates executions)
/// for two whose alpha executions share a basic broadcast count sequence
/// prefix of length k.  By the pigeonhole bound a collision is guaranteed
/// once more than 3^k candidates are tried.
std::optional<CollidingPair> find_alpha_collision(
    const ConsensusAlgorithm& algorithm, std::size_t n,
    std::uint64_t num_values, Round k, std::uint64_t max_candidates);

/// Same search over beta executions and binary broadcast sequences
/// (collision guaranteed past 2^k candidates).
std::optional<CollidingPair> find_beta_collision(
    const ConsensusAlgorithm& algorithm, std::size_t n,
    std::uint64_t num_values, Round k, std::uint64_t max_candidates);

}  // namespace ccd
