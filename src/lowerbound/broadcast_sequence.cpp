#include "lowerbound/broadcast_sequence.hpp"

#include <map>

namespace ccd {

std::optional<CollidingPair> find_alpha_collision(
    const ConsensusAlgorithm& algorithm, std::size_t n,
    std::uint64_t num_values, Round k, std::uint64_t max_candidates) {
  std::map<std::vector<BroadcastCount>, Value> seen;
  const std::uint64_t limit =
      max_candidates < num_values ? max_candidates : num_values;
  for (Value v = 0; v < limit; ++v) {
    AlphaResult result = run_alpha(algorithm, n, v, k);
    auto [it, inserted] = seen.emplace(std::move(result.bbc), v);
    if (!inserted) {
      return CollidingPair{it->second, v, k};
    }
  }
  return std::nullopt;
}

std::optional<CollidingPair> find_beta_collision(
    const ConsensusAlgorithm& algorithm, std::size_t n,
    std::uint64_t num_values, Round k, std::uint64_t max_candidates) {
  std::map<std::vector<bool>, Value> seen;
  const std::uint64_t limit =
      max_candidates < num_values ? max_candidates : num_values;
  for (Value v = 0; v < limit; ++v) {
    BetaResult result = run_beta(algorithm, n, v, k);
    auto [it, inserted] = seen.emplace(std::move(result.binary_broadcast), v);
    if (!inserted) {
      return CollidingPair{it->second, v, k};
    }
  }
  return std::nullopt;
}

}  // namespace ccd
