// Alpha and beta executions -- the building blocks of the Section 8 lower
// bounds.
//
// An alpha execution alpha_P(v) (Definition 24) runs an algorithm with
// every process starting at value v, a maximal leader election service
// fixed on min(P) from round 1, a complete-and-accurate detector, no
// failures, and the canonical loss rule: a lone broadcaster is heard by
// all; under contention every broadcaster hears only itself.
//
// A beta execution beta(v) (Theorem 9) runs an anonymous algorithm with
// every process at value v, NO contention manager, a perfect detector, and
// total loss: nobody ever hears anyone but themselves.  All processes act
// identically, so each round is summarized by one bit: broadcast/silence.
#pragma once

#include <optional>
#include <vector>

#include "model/process.hpp"
#include "model/traces.hpp"
#include "sim/executor.hpp"

namespace ccd {

struct AlphaResult {
  std::vector<BroadcastCount> bbc;  ///< basic broadcast count sequence
  Round last_decision_round = 0;    ///< 0 if nobody decided
  bool all_decided = false;
  Value decided_value = kNoValue;
};

/// Run alpha_P(v) for `rounds` rounds with |P| = n.
AlphaResult run_alpha(const ConsensusAlgorithm& algorithm, std::size_t n,
                      Value v, Round rounds, std::uint64_t id_base = 0);

struct BetaResult {
  std::vector<bool> binary_broadcast;  ///< bit r-1: did round r broadcast?
  Round last_decision_round = 0;
  bool all_decided = false;
  Value decided_value = kNoValue;
};

/// Run beta(v) for `rounds` rounds with n processes.
BetaResult run_beta(const ConsensusAlgorithm& algorithm, std::size_t n,
                    Value v, Round rounds);

}  // namespace ccd
