#include "lowerbound/alpha_execution.hpp"

#include "cd/oracle_detector.hpp"
#include "cm/leader_election.hpp"
#include "cm/no_cm.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/partition_adversary.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {

AlphaResult run_alpha(const ConsensusAlgorithm& algorithm, std::size_t n,
                      Value v, Round rounds, std::uint64_t id_base) {
  // The alpha loss rule coincides with a one-group PartitionAdversary:
  // lone in-group broadcaster heard by all, contention leaves only
  // self-delivery.
  PartitionAdversary::Options loss_opts;
  loss_opts.split = static_cast<std::uint32_t>(n);
  loss_opts.heal_round = kNeverRound;

  LeaderElectionService::Options cm_opts;
  cm_opts.r_lead = 1;
  cm_opts.leader = 0;  // min(P)
  cm_opts.adapt_on_crash = false;

  World world = make_world(
      algorithm, std::vector<Value>(n, v),
      std::make_unique<LeaderElectionService>(cm_opts),
      std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                       make_truthful_policy()),
      std::make_unique<PartitionAdversary>(loss_opts),
      std::make_unique<NoFailures>(), id_base);

  ExecutorOptions options;
  options.record_views = false;
  options.stop_when_all_decided = false;  // keep the full bbc prefix
  Executor executor(std::move(world), options);
  for (Round r = 0; r < rounds; ++r) executor.step();

  AlphaResult result;
  result.bbc = executor.log().transmission().basic_broadcast_sequence(rounds);
  result.all_decided = true;
  for (ProcessId i = 0; i < n; ++i) {
    if (!executor.decided(i)) {
      result.all_decided = false;
    } else {
      result.decided_value = executor.decision(i);
    }
  }
  for (const DecisionRecord& d : executor.log().decisions()) {
    if (d.round > result.last_decision_round) {
      result.last_decision_round = d.round;
    }
  }
  return result;
}

BetaResult run_beta(const ConsensusAlgorithm& algorithm, std::size_t n,
                    Value v, Round rounds) {
  UnrestrictedLoss::Options loss_opts;
  loss_opts.mode = UnrestrictedLoss::Mode::kDropOthers;

  World world = make_world(
      algorithm, std::vector<Value>(n, v), std::make_unique<NoCm>(),
      std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                       make_truthful_policy()),
      std::make_unique<UnrestrictedLoss>(loss_opts),
      std::make_unique<NoFailures>());

  ExecutorOptions options;
  options.record_views = false;
  options.stop_when_all_decided = false;
  Executor executor(std::move(world), options);
  for (Round r = 0; r < rounds; ++r) executor.step();

  BetaResult result;
  result.binary_broadcast.reserve(rounds);
  for (Round r = 1; r <= rounds; ++r) {
    result.binary_broadcast.push_back(
        executor.log().transmission().at(r).broadcaster_count > 0);
  }
  result.all_decided = true;
  for (ProcessId i = 0; i < n; ++i) {
    if (!executor.decided(i)) {
      result.all_decided = false;
    } else {
      result.decided_value = executor.decision(i);
    }
  }
  for (const DecisionRecord& d : executor.log().decisions()) {
    if (d.round > result.last_decision_round) {
      result.last_decision_round = d.round;
    }
  }
  return result;
}

}  // namespace ccd
