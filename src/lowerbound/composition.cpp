#include "lowerbound/composition.hpp"

#include "cd/oracle_detector.hpp"
#include "cm/adversarial_cm.hpp"
#include "fault/failure_adversary.hpp"
#include "net/partition_adversary.hpp"
#include "sim/executor.hpp"

namespace ccd {

CompositionOutcome run_composition(const ConsensusAlgorithm& algorithm,
                                   const CompositionConfig& config) {
  const std::size_t n = config.group_size;
  std::vector<Value> initial_values(2 * n, config.value_a);
  for (std::size_t i = n; i < 2 * n; ++i) initial_values[i] = config.value_b;

  PartitionAdversary::Options loss_opts;
  loss_opts.split = static_cast<std::uint32_t>(n);
  loss_opts.heal_round = config.heal ? config.k + 1 : kNeverRound;

  World world = make_world(
      algorithm, std::move(initial_values),
      std::make_unique<TwoGroupMaxLs>(static_cast<std::uint32_t>(n),
                                      config.k),
      std::make_unique<OracleDetector>(config.spec,
                                       make_prefer_null_policy()),
      std::make_unique<PartitionAdversary>(loss_opts),
      std::make_unique<NoFailures>(), config.id_base);

  CompositionOutcome outcome;
  outcome.summary.cst = world.cst();

  ExecutorOptions options;
  options.record_views = false;
  Executor executor(std::move(world), options);
  outcome.summary.result = executor.run(config.max_rounds);
  outcome.summary.verdict =
      check_consensus(executor.log(), executor.world().initial_values);
  if (outcome.summary.cst != kNeverRound &&
      outcome.summary.verdict.last_decision_round > outcome.summary.cst) {
    outcome.summary.rounds_after_cst =
        outcome.summary.verdict.last_decision_round - outcome.summary.cst;
  }

  for (const DecisionRecord& d : executor.log().decisions()) {
    if (d.process < n) {
      outcome.group_a_value = d.value;
      if (d.round > outcome.group_a_last_decision) {
        outcome.group_a_last_decision = d.round;
      }
    } else {
      outcome.group_b_value = d.value;
      if (d.round > outcome.group_b_last_decision) {
        outcome.group_b_last_decision = d.round;
      }
    }
  }
  outcome.groups_disagree = outcome.group_a_value != kNoValue &&
                            outcome.group_b_value != kNoValue &&
                            outcome.group_a_value != outcome.group_b_value;
  return outcome;
}

}  // namespace ccd
