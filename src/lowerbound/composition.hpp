// Composed (gamma) executions: two groups run "their own" execution inside
// one system, cross-group messages are lost, and the detector/manager
// behaviours stay inside their class envelopes -- the construction of
// Lemma 23 and of the Theorem 4 / Theorem 8 impossibility proofs.
//
// The key observation that makes these executables rather than just
// proofs: under a PartitionAdversary, the *forced* part of a half-complete
// detector's envelope plus a prefer-null policy produces EXACTLY the
// advice Lemma 23 needs --
//   * one broadcaster per group: c = 2, each receiver got 1 of 2 messages,
//     exactly half, so half-completeness forces nothing and prefer-null
//     reports null;
//   * two-plus broadcasters per group: every receiver misses more than
//     half, so a report is forced at everyone;
//   * silence: accuracy forces null.
// Each group is therefore indistinguishable from its solo alpha execution
// while the basic broadcast count sequences agree -- and if both alpha
// executions decided within the shared prefix, the composition violates
// agreement.  (A majority-complete detector would be FORCED to report in
// the one-per-group case, which is precisely how Algorithm 1 escapes.)
#pragma once

#include <memory>

#include "cd/detector_spec.hpp"
#include "cd/policies.hpp"
#include "consensus/harness.hpp"

namespace ccd {

struct CompositionOutcome {
  RunSummary summary;
  /// Distinct values decided inside group A / group B (kNoValue if none).
  Value group_a_value = kNoValue;
  Value group_b_value = kNoValue;
  Round group_a_last_decision = 0;
  Round group_b_last_decision = 0;
  bool groups_disagree = false;
};

struct CompositionConfig {
  std::size_t group_size = 4;
  Value value_a = 0;
  Value value_b = 1;
  /// Partition (and double-leader advice) persists through round k;
  /// round k+1 heals the channel and stabilizes the leader service.
  Round k = 8;
  /// kNeverRound keeps the partition forever (Theorem 8-style NoCF runs).
  bool heal = true;
  DetectorSpec spec = DetectorSpec::HalfAC();
  Round max_rounds = 1000;
  std::uint64_t id_base = 0;
};

/// Run the composed execution of `algorithm` under `config`, with a
/// prefer-null maximal detector for the given spec.
CompositionOutcome run_composition(const ConsensusAlgorithm& algorithm,
                                   const CompositionConfig& config);

}  // namespace ccd
