// Drifting hardware clocks (Section 1.1: "local clocks can operate at
// varying rates depending on temporal environmental effects").
//
// A device's hardware clock advances at a fixed (but unknown to the
// device) rate within [1 - rho, 1 + rho] of real time, from an arbitrary
// initial offset.  The round synchronizer (round_synchronizer.hpp) builds
// the synchronized-round abstraction the consensus model presupposes on
// top of these clocks.
#pragma once

#include <cstdint>

namespace ccd {

class DriftingClock {
 public:
  /// rate must be positive; typically within [1 - rho, 1 + rho].
  DriftingClock(double rate, double offset) : rate_(rate), offset_(offset) {}

  /// Hardware (local) time as a function of real time.
  double local_time(double real_time) const {
    return rate_ * real_time + offset_;
  }

  /// Inverse: the real time at which the clock shows `local`.
  double real_time(double local) const { return (local - offset_) / rate_; }

  /// Elapsed local time across a real interval.
  double local_elapsed(double real_duration) const {
    return rate_ * real_duration;
  }

  double rate() const { return rate_; }
  double offset() const { return offset_; }

 private:
  double rate_;
  double offset_;
};

}  // namespace ccd
