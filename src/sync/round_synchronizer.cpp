#include "sync/round_synchronizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccd {

RoundSynchronizer::RoundSynchronizer(Options options)
    : options_(options) {
  assert(options_.n >= 1);
  assert(options_.epoch > 0 && options_.round_length > 0);
  Rng rng(options_.seed);

  clocks_.reserve(options_.n);
  for (std::size_t i = 0; i < options_.n; ++i) {
    const double rate =
        1.0 + options_.rho * (2.0 * rng.uniform() - 1.0);
    const double offset = 10.0 * (rng.uniform() - 0.5);
    clocks_.emplace_back(rate, offset);
  }

  receptions_.resize(options_.n);
  std::vector<int> loss_run(options_.n, 0);
  const int beacons =
      static_cast<int>(std::floor(options_.horizon / options_.epoch));
  for (int k = 1; k <= beacons; ++k) {
    const double nominal = k * options_.epoch;
    for (std::size_t i = 0; i < options_.n; ++i) {
      // Bootstrap beacon (k == 1) is always heard so every device joins;
      // afterwards losses are iid.
      if (k > 1 && rng.chance(options_.beacon_loss)) {
        ++loss_run[i];
        longest_loss_run_ = std::max(longest_loss_run_, loss_run[i]);
        continue;
      }
      loss_run[i] = 0;
      const double jitter = options_.jitter * (2.0 * rng.uniform() - 1.0);
      receptions_[i].push_back({nominal + jitter, nominal});
    }
  }
  for (std::size_t i = 0; i < options_.n; ++i) {
    assert(!receptions_[i].empty());
    bootstrap_time_ =
        std::max(bootstrap_time_, receptions_[i].front().real_time);
  }
}

const RoundSynchronizer::Reception* RoundSynchronizer::latest_reception(
    std::size_t device, double real_time) const {
  const auto& rs = receptions_[device];
  // Binary search for the last reception with real_time <= t.
  auto it = std::upper_bound(
      rs.begin(), rs.end(), real_time,
      [](double t, const Reception& r) { return t < r.real_time; });
  if (it == rs.begin()) return nullptr;
  return &*(it - 1);
}

double RoundSynchronizer::adjusted_time(std::size_t device,
                                        double real_time) const {
  const DriftingClock& clock = clocks_[device];
  const Reception* anchor = latest_reception(device, real_time);
  if (anchor == nullptr) {
    // Pre-bootstrap: free-running hardware clock (arbitrary).
    return clock.local_time(real_time);
  }
  const double local_now = clock.local_time(real_time);
  const double local_at_anchor = clock.local_time(anchor->real_time);
  return anchor->nominal_time + (local_now - local_at_anchor);
}

std::int64_t RoundSynchronizer::round_at(std::size_t device,
                                         double real_time) const {
  return static_cast<std::int64_t>(
      std::floor(adjusted_time(device, real_time) / options_.round_length));
}

double RoundSynchronizer::skew_at(double real_time) const {
  double lo = adjusted_time(0, real_time);
  double hi = lo;
  for (std::size_t i = 1; i < options_.n; ++i) {
    const double a = adjusted_time(i, real_time);
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  return hi - lo;
}

double RoundSynchronizer::measured_max_skew(int samples) const {
  const double start = bootstrap_time_ + 1e-9;
  const double span = options_.horizon - start;
  double worst = 0.0;
  for (int s = 0; s < samples; ++s) {
    const double t = start + span * (s + 0.5) / samples;
    worst = std::max(worst, skew_at(t));
  }
  return worst;
}

double RoundSynchronizer::skew_bound() const {
  // Each device's anchor beacon is at most (G+1) epochs old, so local
  // elapsed-time error is at most rho * (G+1) * E per device, plus the
  // reception jitter on each side.
  return 2.0 * (options_.jitter +
                options_.rho * (longest_loss_run_ + 1) * options_.epoch);
}

double RoundSynchronizer::round_agreement_fraction(int samples) const {
  const double start = bootstrap_time_ + 1e-9;
  const double span = options_.horizon - start;
  const double guard = skew_bound();
  int eligible = 0;
  int agreeing = 0;
  for (int s = 0; s < samples; ++s) {
    const double t = start + span * (s + 0.5) / samples;
    // Skip sample instants within the guard window of a round boundary
    // (in any device's adjusted time); agreement is only promised outside.
    bool in_guard = false;
    for (std::size_t i = 0; i < options_.n && !in_guard; ++i) {
      const double a = adjusted_time(i, t);
      const double phase = a - std::floor(a / options_.round_length) *
                                   options_.round_length;
      if (phase < guard || options_.round_length - phase < guard) {
        in_guard = true;
      }
    }
    if (in_guard) continue;
    ++eligible;
    const std::int64_t r0 = round_at(0, t);
    bool same = true;
    for (std::size_t i = 1; i < options_.n; ++i) {
      if (round_at(i, t) != r0) same = false;
    }
    if (same) ++agreeing;
  }
  return eligible == 0 ? 1.0
                       : static_cast<double>(agreeing) /
                             static_cast<double>(eligible);
}

}  // namespace ccd
