// Reference-broadcast round synchronization: the substrate that turns
// drifting hardware clocks into the synchronized rounds the consensus
// model assumes (Section 1.3 points to RBS [25] and to the synchronizer of
// [14]; this is a faithful, self-contained equivalent).
//
// Mechanism.  A beacon fires at real times E, 2E, 3E, ... (in a real
// deployment: a designated broadcaster or any anchor; reception is what
// matters -- reference-broadcast style, sender-side delays cancel).  Device
// i receives beacon k at real time kE + j_{i,k} (reception jitter
// |j| <= J), possibly not at all (iid loss).  On reception the device
// latches its hardware clock and thereafter estimates
//
//    adjusted_i(t) = kE + (h_i(t) - h_i(kE + j_{i,k}))
//
// i.e. the beacon's nominal time plus locally-elapsed time.  Between two
// devices synced to beacons k and k' the skew is bounded by
//
//    |adjusted_i(t) - adjusted_j(t)| <= 2J + rho*(t - kE) + rho*(t - k'E),
//
// so with resynchronization every (few) epochs the skew stays ~2(J + rho*
// G*E) where G is the largest run of consecutively-missed beacons.  Rounds
// of length L are then defined as round(t) = floor(adjusted(t) / L); as
// long as L exceeds the skew bound by a guard factor, all devices agree on
// the round number except within a guard window around each boundary --
// which is exactly the paper's "rounds are large relative to the time
// required to send a single packet" regime (Section 1.2).
#pragma once

#include <cstdint>
#include <vector>

#include "sync/drifting_clock.hpp"
#include "util/rng.hpp"

namespace ccd {

class RoundSynchronizer {
 public:
  struct Options {
    std::size_t n = 8;            ///< number of devices
    double rho = 1e-4;            ///< max clock rate deviation from 1
    double epoch = 1.0;           ///< beacon period (real seconds)
    double jitter = 1e-5;         ///< reception jitter bound J (seconds)
    double beacon_loss = 0.1;     ///< iid per-device beacon loss probability
    double round_length = 0.05;   ///< L (seconds of adjusted time per round)
    double horizon = 120.0;       ///< simulated real-time span
    std::uint64_t seed = 1;
  };

  explicit RoundSynchronizer(Options options);

  std::size_t num_devices() const { return options_.n; }
  const Options& options() const { return options_; }

  /// Device i's software-adjusted time estimate at real time t (t within
  /// [first reception, horizon]).  Before a device's first beacon it free
  /// runs from its (arbitrary) hardware clock; callers should sample after
  /// bootstrap() time.
  double adjusted_time(std::size_t device, double real_time) const;

  /// Round number device i believes it is in at real time t.
  std::int64_t round_at(std::size_t device, double real_time) const;

  /// Earliest real time by which every device has received at least one
  /// beacon (synchronization bootstrap complete).
  double bootstrap_time() const { return bootstrap_time_; }

  /// Max pairwise |adjusted_i - adjusted_j| at real time t.
  double skew_at(double real_time) const;

  /// Max skew sampled uniformly over (bootstrap, horizon).
  double measured_max_skew(int samples = 2000) const;

  /// Analytic bound: 2*(J + rho * (G+1) * E) where G is the longest
  /// observed run of consecutive beacon losses at any single device.
  double skew_bound() const;

  /// Fraction of sample instants (outside a +-guard window around round
  /// boundaries in adjusted time) at which ALL devices agree on the round
  /// number.  The guard is the skew bound.  1.0 = the synchronized-round
  /// abstraction holds.
  double round_agreement_fraction(int samples = 2000) const;

 private:
  struct Reception {
    double real_time;    ///< when the beacon actually arrived
    double nominal_time; ///< the beacon's nominal time k*E
  };

  /// Latest reception at or before real_time (index into receptions_[i]).
  const Reception* latest_reception(std::size_t device,
                                    double real_time) const;

  Options options_;
  std::vector<DriftingClock> clocks_;
  std::vector<std::vector<Reception>> receptions_;  ///< per device, sorted
  double bootstrap_time_ = 0.0;
  int longest_loss_run_ = 0;
};

}  // namespace ccd
