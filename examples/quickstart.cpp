// Quickstart: solve consensus among 8 anonymous wireless devices on a
// lossy single-hop channel, with a majority-complete eventually-accurate
// collision detector and a wake-up service.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "cd/oracle_detector.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"

int main() {
  using namespace ccd;

  // 1. Pick an algorithm.  Algorithm 1 needs a detector from maj-<>AC and
  //    terminates two rounds after the network stabilizes (Theorem 1).
  Alg1Algorithm algorithm;

  // 2. Describe the environment: 8 devices whose radio loses arbitrary
  //    subsets of messages until round 12, a wake-up service that settles
  //    on a single broadcaster by round 12, and a collision detector that
  //    may emit false positives until round 12.
  const Round stabilization = 12;

  WakeupService::Options ws;
  ws.r_wake = stabilization;

  EcfAdversary::Options radio;
  radio.r_cf = stabilization;
  radio.pre = EcfAdversary::PreMode::kCapture;  // capture-effect loss
  radio.seed = 2024;

  World world = make_world(
      algorithm,
      /*initial_values=*/{3, 7, 7, 1, 9, 3, 7, 5},
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          DetectorSpec::MajOAC(stabilization),
          std::make_unique<SpuriousPolicy>(0.3, stabilization, 7)),
      std::make_unique<EcfAdversary>(radio),
      std::make_unique<NoFailures>());

  // 3. Run to decision and verify the consensus properties.
  const RunSummary summary = run_consensus(std::move(world), 200);

  std::cout << "decided:          "
            << (summary.verdict.termination ? "yes" : "no") << "\n"
            << "decision value:   " << summary.verdict.decided_values.front()
            << "\n"
            << "decision round:   " << summary.verdict.last_decision_round
            << " (CST = " << summary.cst << ", bound = CST + 2)\n"
            << "agreement:        "
            << (summary.verdict.agreement ? "ok" : "VIOLATED") << "\n"
            << "strong validity:  "
            << (summary.verdict.strong_validity ? "ok" : "VIOLATED") << "\n";
  return summary.verdict.solved() ? 0 : 1;
}
