// Drive a multihop sweep from code: diameter/density as first-class grid
// axes, exactly like `ccd_sweep --grid multihop` but programmatic.
//
// The example sweeps CD-assisted flooding over random-geometric graphs at
// three densities, prints the per-cell aggregates, and demonstrates the
// determinism contract by re-running the grid and comparing reports.
#include <iostream>

#include "exp/aggregator.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

int main() {
  using namespace ccd::exp;

  SweepGrid grid;
  grid.base.workload = WorkloadKind::kFlood;
  grid.base.detector = DetectorKind::kZeroAC;  // local carrier-sense
  grid.base.loss = LossKind::kEcf;             // capture-effect physics
  grid.topologies = {TopologyKind::kRandomGeometric};
  grid.densities = {2.0, 3.0, 4.5};
  grid.ns = {16, 32};
  grid.seeds_per_cell = 10;
  grid.grid_seed = 2026;

  SweepOptions options;
  options.threads = 0;  // all cores
  const auto records = run_sweep(grid, options);
  const auto cells = aggregate(grid, records);
  print_summary(std::cout, grid, cells);

  std::cout << "\nper-cell detail (denser graphs: shorter diameter, faster "
               "coverage, more contention):\n";
  for (const CellAggregate& cell : cells) {
    std::cout << "  n=" << cell.spec.n << " density=" << cell.spec.density
              << "  diameter " << cell.diameter.mean() << "  coverage "
              << cell.full_coverage << "/" << cell.mh_runs << " (mean "
              << (cell.coverage_rounds.empty() ? 0.0
                                               : cell.coverage_rounds.mean())
              << " rounds)  msgs/node " << cell.messages_per_node.mean()
              << "\n";
  }

  // The determinism contract: a grid is a pure function of its seed.
  const auto again = aggregates_to_json(grid, aggregate(grid, run_sweep(grid, options)));
  std::cout << "\nre-run byte-identical: "
            << (again == aggregates_to_json(grid, cells) ? "yes" : "NO")
            << "\n";
  return 0;
}
