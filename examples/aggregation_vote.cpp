// Aggregation voting (the paper's third motivating scenario, Section 1.4,
// after Kumar [44]): the children of each spanning-tree parent run
// consensus on the summary value to pass upward, so unreliable links
// cannot silently drop a child's contribution from the aggregate.
//
// This example also exercises the NoCF regime: one cluster sits at the
// noisy edge of the deployment where collision freedom NEVER arrives, so
// it runs Algorithm 3 (0-AC, no contention manager) -- the only algorithm
// that works there (Theorems 3 and 8).  Interior clusters enjoy ECF and
// use Algorithm 2.
#include <iostream>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "net/unrestricted_loss.hpp"
#include "util/table.hpp"

namespace {

using namespace ccd;

constexpr std::uint64_t kReadingSpace = 1 << 12;  // 12-bit sensor readings

struct ClusterResult {
  bool solved = false;
  Value agreed = kNoValue;
  Round rounds = 0;
};

ClusterResult run_interior_cluster(std::vector<Value> readings,
                                   std::uint64_t seed) {
  Alg2Algorithm algorithm(kReadingSpace);
  WakeupService::Options ws;
  ws.r_wake = 10;
  ws.seed = seed;
  EcfAdversary::Options radio;
  radio.r_cf = 10;
  radio.p_deliver = 0.5;
  radio.seed = seed * 3;
  World world = make_world(
      algorithm, std::move(readings), std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(10),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(radio), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 2000);
  return {s.verdict.solved(), s.verdict.decided_values.empty()
                                  ? kNoValue
                                  : s.verdict.decided_values[0],
          s.verdict.last_decision_round};
}

ClusterResult run_edge_cluster(std::vector<Value> readings,
                               std::uint64_t seed) {
  // The edge cluster gets constant interference from a neighbouring
  // region: no ECF, ever.  Algorithm 3 with an accurate carrier-sense
  // detector still decides.
  Alg3Algorithm algorithm(kReadingSpace);
  World world = make_world(
      algorithm, std::move(readings), std::make_unique<NoCm>(),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                       make_truthful_policy()),
      std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
          UnrestrictedLoss::Mode::kRandom, 0.25, seed}),
      std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 4000);
  return {s.verdict.solved(), s.verdict.decided_values.empty()
                                  ? kNoValue
                                  : s.verdict.decided_values[0],
          s.verdict.last_decision_round};
}

}  // namespace

int main() {
  using namespace ccd;

  // Three sibling clusters reporting to one parent.  Each cluster's
  // members propose their median reading; consensus picks the cluster's
  // single "vote".
  const std::vector<std::vector<Value>> clusters = {
      {1207, 1211, 1198, 1207, 1215},   // interior
      {873, 880, 869, 873},             // interior
      {2051, 2048, 2060, 2051, 2048, 2055},  // noisy edge, NoCF
  };

  AsciiTable table({"cluster", "members", "regime", "algorithm",
                    "agreed vote", "rounds"});
  std::vector<Value> votes;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const bool edge = c == 2;
    const ClusterResult result =
        edge ? run_edge_cluster(clusters[c], 40 + c)
             : run_interior_cluster(clusters[c], 40 + c);
    if (!result.solved) {
      std::cout << "cluster " << c << " failed to agree\n";
      return 1;
    }
    votes.push_back(result.agreed);
    table.add(c, clusters[c].size(), edge ? "NoCF (interference)" : "ECF",
              edge ? "Alg3 (0-AC)" : "Alg2 (0-<>AC)", result.agreed,
              result.rounds);
  }
  table.print(std::cout);

  Value aggregate = 0;
  for (Value v : votes) aggregate += v;
  std::cout << "\nparent aggregates " << votes.size()
            << " cluster votes -> sum = " << aggregate
            << " (every cluster contributed exactly one agreed value; no "
               "reading was silently lost)\n";
  return 0;
}
