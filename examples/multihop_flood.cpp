// Multihop flooding demo: disseminate a firmware-update announcement from
// one corner of a 6x6 sensor grid using collision-detector-assisted
// flooding (the multihop extension module).
//
// Watch the wavefront: the per-node reception round is printed as a map;
// it grows roughly with hop distance from the source, and the CD-backoff
// policy keeps dense neighbourhoods from jamming themselves.
#include <cstdio>
#include <iostream>

#include "multihop/flood.hpp"
#include "multihop/mh_executor.hpp"

int main() {
  using namespace ccd;

  const std::size_t width = 6, height = 6;
  Topology topo = Topology::grid(width, height);

  std::vector<std::unique_ptr<Process>> nodes;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    FloodProcess::Options o;
    o.is_source = i == 0;  // top-left corner
    o.policy = FloodPolicy::kCdBackoff;
    o.p_broadcast = 0.5;
    o.fresh_rounds = 400;
    o.seed = 100 + i;
    nodes.push_back(std::make_unique<FloodProcess>(o));
  }

  MultihopExecutor ex(topo, std::move(nodes), DetectorSpec::ZeroAC(),
                      make_truthful_policy(),
                      /*link=*/{0.95, 0.1}, /*seed=*/4);

  Round completed = 0;
  for (Round r = 1; r <= 2000; ++r) {
    ex.step();
    bool all = true;
    for (std::size_t i = 0; i < ex.size(); ++i) {
      if (!static_cast<FloodProcess&>(ex.process(i)).has_message()) {
        all = false;
        break;
      }
    }
    if (all) {
      completed = r;
      break;
    }
  }

  if (completed == 0) {
    std::cout << "flood did not complete within 2000 rounds\n";
    return 1;
  }

  std::cout << "firmware announcement reached all " << topo.size()
            << " nodes in " << completed << " rounds (grid diameter "
            << topo.diameter() << ")\n\nreception round per node:\n";
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto& node = static_cast<FloodProcess&>(
          ex.process(y * width + x));
      std::printf("%5u", node.received_at());
    }
    std::printf("\n");
  }
  std::cout << "\n(source at top-left received in round 0; the wavefront "
               "tracks hop distance)\n";
  return 0;
}
