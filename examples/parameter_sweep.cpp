// Example: driving the exp/ experiment-orchestration engine from code.
//
// Builds an ad-hoc grid -- two algorithms crossed with two detector
// classes and two network adversaries -- runs every cell in parallel, and
// reads the per-cell aggregates.  The same grid is reachable from the
// command line:
//
//   ccd_sweep --algs alg1,alg2 --detectors maj-oac,zero-oac
//       --losses ecf,prob --n 8 --values 64 --csts 6 --seeds 5
#include <iostream>

#include "exp/aggregator.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

int main() {
  using namespace ccd;
  using namespace ccd::exp;

  SweepGrid grid;
  grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2};
  grid.detectors = {DetectorKind::kMajOAC, DetectorKind::kZeroOAC};
  grid.losses = {LossKind::kEcf, LossKind::kProbabilistic};
  grid.base.n = 8;
  grid.base.num_values = 64;
  grid.base.cst_target = 6;
  grid.seeds_per_cell = 5;
  grid.grid_seed = 7;

  std::cout << "Running " << grid.num_cells() << " cells x "
            << grid.seeds_per_cell << " seeds...\n\n";

  // Every ScenarioSpec is serializable; grids and reports are
  // self-describing on disk.
  std::cout << "cell 0 spec: " << grid.spec_for_cell(0).to_json() << "\n\n";

  SweepOptions options;
  options.threads = 0;  // all cores
  const auto records = run_sweep(grid, options);
  const auto cells = aggregate(grid, records);

  print_summary(std::cout, grid, cells);

  // Aggregates are plain data -- pick out whatever the experiment needs.
  std::cout << "\nAlgorithm 1 under its own class (maj-<>AC + ECF) decided "
            << "in mean round "
            << (cells[0].decision_round.empty()
                    ? 0.0
                    : cells[0].decision_round.mean())
            << "\n";
  return 0;
}
