// Clusterhead election (the paper's second motivating scenario, Section
// 1.4): a cluster needs one agreed-upon head; "consensus run on unique
// identifiers is an obvious, reliable solution".
//
// We use the non-anonymous Section 7.3 protocol (Algorithm 4) with a huge
// value space (devices propose their own 48-bit MAC-style addresses) and a
// small ID space, so the protocol takes its leader-election path and pays
// only O(lg|I|) rounds.  Mid-run the elected head crashes AFTER partially
// announcing -- the exact hazard the hardened decision rule exists for --
// and the cluster converges anyway.
#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "cd/oracle_detector.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"

int main() {
  using namespace ccd;

  // Each device proposes itself (its MAC address) as clusterhead.
  const std::vector<Value> mac_addresses = {
      0xA4B1C2000001ull, 0xA4B1C2000002ull, 0xA4B1C2000003ull,
      0xA4B1C2000004ull, 0xA4B1C2000005ull, 0xA4B1C2000006ull,
  };

  // 48-bit value space, 64-element ID space: lg|I| = 6 << lg|V| = 48, so
  // electing on IDs and announcing the winner's address is ~8x cheaper
  // than bit-by-bit agreement on addresses.
  Alg4Algorithm algorithm(/*num_values=*/1ull << 48, /*id_space=*/64,
                          Alg4DecisionRule::kHardened);

  WakeupService::Options ws;
  ws.r_wake = 6;

  EcfAdversary::Options radio;
  radio.r_cf = 6;
  radio.pre = EcfAdversary::PreMode::kRandom;
  radio.p_deliver = 0.5;
  radio.contention = EcfAdversary::ContentionMode::kCapture;
  radio.seed = 3;

  // Crash the would-be head (lowest ID, process 0) mid-protocol.
  World world = make_world(
      algorithm, mac_addresses, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(6),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(radio),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {40, 0, CrashPoint::kBeforeSend}}));

  const RunSummary summary = run_consensus(std::move(world), 2000);

  if (!summary.verdict.solved()) {
    std::cout << "cluster failed to elect a head (agreement="
              << summary.verdict.agreement << ")\n";
    return 1;
  }
  std::printf("clusterhead elected: %012" PRIx64 "\n",
              summary.verdict.decided_values[0]);
  std::printf("rounds used:         %u (leader crash at round 40 included)\n",
              summary.verdict.last_decision_round);
  std::printf("survivors agreeing:  %zu of %zu\n",
              mac_addresses.size() - 1, mac_addresses.size());
  std::cout << "\nThe cluster detected the head's silence (zero-complete "
               "carrier sensing), re-elected on the ID space, and every "
               "survivor adopted the same head.\n";
  return 0;
}
