// Sensor calibration (the paper's first motivating scenario, Section 1.4):
// devices in one region of a sensor network must agree on a calibration
// offset, or their readings become incomparable and aggregation breaks.
//
// This example runs a realistic stack end to end:
//   * the radio is a capture-effect channel (20-50% loss under contention,
//     as the empirical studies in Section 1.1 report),
//   * contention is managed by the concrete randomized backoff protocol,
//   * the collision detector is the practically-measured one of Section
//     1.3: zero-complete in 100% of rounds, majority-complete in ~90%,
//   * two motes crash mid-protocol.
// Algorithm 2 only requires zero completeness, so the flaky majority
// reports are gravy; safety is deterministic, liveness rides on backoff.
#include <iostream>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/capture_effect.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccd;

  // Calibration offsets are fixed-point: offset = value / 100 - 5.0 (range
  // -5.00 .. +5.23 over a 10-bit value space).
  constexpr std::uint64_t kOffsetSpace = 1 << 10;
  auto to_offset = [](Value v) {
    return static_cast<double>(v) / 100.0 - 5.0;
  };

  // Twelve motes, each proposing the offset its own sensor estimated.
  const std::vector<Value> proposals = {512, 498, 505, 512, 523, 489,
                                        512, 515, 501, 512, 508, 495};

  Alg2Algorithm algorithm(kOffsetSpace);

  CaptureEffectLoss::Options radio;
  radio.p_capture = 0.6;         // heavy contention loss
  radio.p_single_deliver = 0.8;  // even lone broadcasts drop 20%
  radio.r_cf = 40;               // neighbours quiet down by round 40
  radio.seed = 7;

  World world = make_world(
      algorithm, proposals,
      std::make_unique<BackoffCm>(BackoffCm::Options{.seed = 11}),
      std::make_unique<OracleDetector>(
          DetectorSpec::ZeroOAC(40),
          std::make_unique<FlakyMajorityPolicy>(0.9, 13)),
      std::make_unique<CaptureEffectLoss>(radio),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {9, 2, CrashPoint::kAfterSend},
          {21, 7, CrashPoint::kBeforeSend}}));

  const RunSummary summary = run_consensus(std::move(world), 2000);

  AsciiTable table({"metric", "value"});
  table.add("motes", proposals.size());
  table.add("crashed mid-run", 2);
  table.add("terminated", summary.verdict.termination);
  table.add("agreement", summary.verdict.agreement);
  table.add("decision round", summary.verdict.last_decision_round);
  if (!summary.verdict.decided_values.empty()) {
    table.add("agreed offset", to_offset(summary.verdict.decided_values[0]));
  }
  table.print(std::cout);

  std::cout << "\nEvery surviving mote now applies the same calibration "
               "offset; aggregated readings stay comparable.\n";
  return summary.verdict.solved() ? 0 : 1;
}
