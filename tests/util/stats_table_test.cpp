#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace ccd {
namespace {

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.41421, 1e-4);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Stats, PercentileInterpolation) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(Stats, SingleSample) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(37), 42.0);
}

TEST(Stats, AddAfterQueryResorts) {
  Stats s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t({"name", "rounds"});
  t.add("alg1", 2);
  t.add("alg2-with-long-name", 12);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alg2-with-long-name"), std::string::npos);
  // All lines equal width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(AsciiTable, FormatsBoolAndDouble) {
  AsciiTable t({"flag", "num"});
  t.add(true, 3.14159);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace ccd
