#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace ccd {
namespace {

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.41421, 1e-4);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Stats, PercentileInterpolation) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(Stats, SingleSample) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(37), 42.0);
}

TEST(Stats, AddAfterQueryResorts) {
  Stats s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(Stats, CachedSortPinsPercentileValuesAcrossInterleavedAdds) {
  // The sorted buffer is cached between queries and invalidated on add();
  // the values the Aggregator reports (min/mean/p50/p99/max pairs per
  // cell) must be exactly what a freshly-sorted computation yields, no
  // matter how adds and queries interleave.
  auto fresh = [](const std::vector<double>& xs, double p) {
    Stats s;
    for (double x : xs) s.add(x);
    return s.percentile(p);
  };
  const std::vector<double> values = {7, 1, 9, 3, 3, 8, 2, 6, 4, 5,
                                      0, 12, -3, 8.5, 2.25, 11};
  Stats s;
  std::vector<double> so_far;
  for (double x : values) {
    s.add(x);
    so_far.push_back(x);
    for (double p : {0.0, 37.0, 50.0, 99.0, 100.0}) {
      // Query twice: the second hit is served from the cache.
      const double first = s.percentile(p);
      EXPECT_DOUBLE_EQ(first, s.percentile(p)) << "p=" << p;
      EXPECT_DOUBLE_EQ(first, fresh(so_far, p)) << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(s.min(),
                     *std::min_element(so_far.begin(), so_far.end()));
    EXPECT_DOUBLE_EQ(s.max(),
                     *std::max_element(so_far.begin(), so_far.end()));
  }
  // Pin the headline numbers so a future Stats rewrite cannot drift.
  EXPECT_DOUBLE_EQ(s.percentile(50), 4.5);
  EXPECT_NEAR(s.percentile(99), 11.85, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 12.0);
}

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t({"name", "rounds"});
  t.add("alg1", 2);
  t.add("alg2-with-long-name", 12);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alg2-with-long-name"), std::string::npos);
  // All lines equal width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(AsciiTable, FormatsBoolAndDouble) {
  AsciiTable t({"flag", "num"});
  t.add(true, 3.14159);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace ccd
