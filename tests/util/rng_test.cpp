#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.between(5, 8);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 8u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit over 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, RoughUniformityOfBelow) {
  Rng rng(29);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) EXPECT_NEAR(count, 10000, 600);
}

TEST(HashMix, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(hash_mix(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

}  // namespace
}  // namespace ccd
