#include "util/bitcodec.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccd {
namespace {

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(1ull << 20), 20u);
  EXPECT_EQ(ceil_log2((1ull << 20) + 1), 21u);
}

TEST(BitCodec, WidthMatchesCeilLog) {
  EXPECT_EQ(BitCodec(2).width(), 1u);
  EXPECT_EQ(BitCodec(16).width(), 4u);
  EXPECT_EQ(BitCodec(17).width(), 5u);
  EXPECT_EQ(BitCodec(1).width(), 1u);  // degenerate singleton still 1 bit
}

TEST(BitCodec, MsbFirstIndexing) {
  // v = 0b1010 over |V| = 16: bit 1 (MSB) = 1, bit 2 = 0, bit 3 = 1, bit 4 = 0.
  BitCodec codec(16);
  EXPECT_TRUE(codec.bit(0b1010, 1));
  EXPECT_FALSE(codec.bit(0b1010, 2));
  EXPECT_TRUE(codec.bit(0b1010, 3));
  EXPECT_FALSE(codec.bit(0b1010, 4));
}

TEST(BitCodec, RoundTripsAllValuesSmallSpace) {
  for (std::uint64_t m : {2ull, 3ull, 7ull, 16ull, 31ull, 64ull}) {
    BitCodec codec(m);
    for (Value v = 0; v < m; ++v) {
      std::vector<char> bits(codec.width());
      for (std::uint32_t b = 1; b <= codec.width(); ++b) {
        bits[b - 1] = codec.bit(v, b) ? 1 : 0;
      }
      EXPECT_EQ(codec.from_bits(reinterpret_cast<bool*>(bits.data())), v)
          << "m=" << m;
    }
  }
}

TEST(BitCodec, DistinctValuesDistinctCodewords) {
  BitCodec codec(100);
  for (Value a = 0; a < 100; ++a) {
    for (Value b = a + 1; b < 100; ++b) {
      bool differ = false;
      for (std::uint32_t bit = 1; bit <= codec.width(); ++bit) {
        if (codec.bit(a, bit) != codec.bit(b, bit)) differ = true;
      }
      ASSERT_TRUE(differ) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace ccd
