// ExactHistogram and the histogram-backed Stats mode: merge laws
// (associativity, commutativity over random splits) and exact equivalence
// with the raw sample-buffer path over randomized integer/real mixes.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ccd {
namespace {

TEST(ExactHistogram, AddAndRankedAccess) {
  ExactHistogram h;
  EXPECT_TRUE(h.empty());
  h.add(5);
  h.add(-3, 2);
  h.add(5, 3);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.min_key(), -3);
  EXPECT_EQ(h.max_key(), 5);
  // Sorted multiset view: -3,-3,5,5,5,5.
  EXPECT_EQ(h.value_at_rank(0), -3);
  EXPECT_EQ(h.value_at_rank(1), -3);
  EXPECT_EQ(h.value_at_rank(2), 5);
  EXPECT_EQ(h.value_at_rank(5), 5);
  EXPECT_EQ(h.bins(),
            (std::vector<ExactHistogram::Bin>{{-3, 2}, {5, 4}}));
}

TEST(ExactHistogram, BytesRetainedTracksDistinctKeys) {
  ExactHistogram h;
  for (int i = 0; i < 100000; ++i) h.add(i % 7);
  EXPECT_EQ(h.total(), 100000u);
  EXPECT_EQ(h.bytes_retained(), 7 * sizeof(ExactHistogram::Bin));
}

TEST(ExactHistogram, SelfMergeDoubles) {
  ExactHistogram h;
  h.add(1, 2);
  h.add(9, 5);
  h.merge_from(h);
  EXPECT_EQ(h.bins(), (std::vector<ExactHistogram::Bin>{{1, 4}, {9, 10}}));
  EXPECT_EQ(h.total(), 14u);
}

/// Random key stream, split into parts, merged in every grouping/order:
/// the result must be one exact multiset, independent of the split.
TEST(ExactHistogram, MergeIsAssociativeAndCommutativeOverRandomSplits) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(400);
    std::vector<std::int64_t> keys(n);
    ExactHistogram whole;
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<std::int64_t>(rng.below(50)) - 25;
      whole.add(keys[i]);
    }
    // Random 3-way split.
    ExactHistogram part[3];
    for (std::size_t i = 0; i < n; ++i) {
      part[rng.below(3)].add(keys[i]);
    }
    // (0+1)+2
    ExactHistogram left = part[0];
    left.merge_from(part[1]);
    left.merge_from(part[2]);
    // 0+(1+2), built right-to-left
    ExactHistogram right = part[2];
    right.merge_from(part[1]);
    right.merge_from(part[0]);
    EXPECT_EQ(left.bins(), whole.bins());
    EXPECT_EQ(right.bins(), whole.bins());
    EXPECT_EQ(left.total(), whole.total());
  }
}

/// The heart of the tentpole: over randomized integer streams, the
/// histogram-backed Stats must agree BIT-IDENTICALLY with a raw
/// sample-buffer Stats on every rendered quantity.
TEST(StatsHistogram, ExactlyMatchesRawPathOnIntegerStreams) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Stats hist_mode;  // default: histogram until a non-integer arrives
    Stats raw_mode{Stats::Mode::kRawSamples};
    const std::size_t n = 1 + rng.below(3000);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(
          static_cast<std::int64_t>(rng.below(1000)) - 500);
      hist_mode.add(x);
      raw_mode.add(x);
    }
    ASSERT_TRUE(hist_mode.histogram_active());
    EXPECT_EQ(hist_mode.count(), raw_mode.count());
    EXPECT_EQ(hist_mode.min(), raw_mode.min());
    EXPECT_EQ(hist_mode.max(), raw_mode.max());
    EXPECT_EQ(hist_mode.mean(), raw_mode.mean());
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_EQ(hist_mode.percentile(p), raw_mode.percentile(p))
          << "p" << p << " trial " << trial;
    }
  }
}

/// Mixed integer/real streams force a mid-stream demotion to the raw
/// buffer; the demoted Stats must still agree exactly with an
/// always-raw Stats fed the same values in the same order.
TEST(StatsHistogram, DemotionMatchesRawPathOnMixedStreams) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Stats auto_mode;
    Stats raw_mode{Stats::Mode::kRawSamples};
    const std::size_t n = 1 + rng.below(500);
    for (std::size_t i = 0; i < n; ++i) {
      double x = static_cast<double>(
          static_cast<std::int64_t>(rng.below(100)) - 50);
      if (rng.below(4) == 0) x += 0.5;  // sprinkle non-integers
      auto_mode.add(x);
      raw_mode.add(x);
    }
    EXPECT_EQ(auto_mode.count(), raw_mode.count());
    EXPECT_EQ(auto_mode.min(), raw_mode.min());
    EXPECT_EQ(auto_mode.max(), raw_mode.max());
    // Mean/percentiles: bit-identical while histogram-backed; after a
    // demotion the replay is the sorted multiset, so order-sensitive
    // float sums can differ in the last ulp -- rendered values (%.4f)
    // cannot.  Demand near-equality at far below rendering precision.
    EXPECT_NEAR(auto_mode.mean(), raw_mode.mean(),
                1e-9 * std::abs(raw_mode.mean()) + 1e-12);
    for (double p : {0.0, 50.0, 99.0, 100.0}) {
      EXPECT_EQ(auto_mode.percentile(p), raw_mode.percentile(p));
    }
  }
}

/// Histogram-mode merge equals the single-pass fold exactly, over random
/// splits of random integer streams (the shard-merge byte-identity law,
/// at the Stats level).
TEST(StatsHistogram, MergeEqualsSinglePassFoldOnRandomSplits) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng.below(2000);
    std::vector<double> values(n);
    Stats whole;
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<double>(rng.below(64));
      whole.add(values[i]);
    }
    Stats parts[4];
    for (std::size_t i = 0; i < n; ++i) {
      parts[rng.below(4)].add(values[i]);
    }
    Stats merged;
    for (Stats& part : parts) merged.merge_from(part);
    ASSERT_TRUE(merged.histogram_active());
    EXPECT_EQ(stats_to_json(merged), stats_to_json(whole));
    EXPECT_EQ(merged.mean(), whole.mean());
    EXPECT_EQ(merged.percentile(99), whole.percentile(99));
  }
}

/// Serialization round trip in both modes, plus the legacy v1 bare-array
/// form that pre-v2 shard reports used.
TEST(StatsHistogram, JsonRoundTripAndLegacyV1) {
  Stats hist;
  for (double x : {4.0, 4.0, 7.0, -2.0}) hist.add(x);
  EXPECT_EQ(stats_to_json(hist), "{\"h\":[-2,1,4,2,7,1]}");
  Stats hist_back;
  std::string error;
  ASSERT_TRUE(stats_from_json(stats_to_json(hist), &hist_back, &error))
      << error;
  EXPECT_EQ(stats_to_json(hist_back), stats_to_json(hist));

  Stats raw;
  for (double x : {0.25, 4.0}) raw.add(x);
  EXPECT_EQ(stats_to_json(raw), "{\"raw\":[0.25,4]}");
  Stats raw_back;
  ASSERT_TRUE(stats_from_json(stats_to_json(raw), &raw_back, &error))
      << error;
  EXPECT_FALSE(raw_back.histogram_active());
  EXPECT_EQ(stats_to_json(raw_back), stats_to_json(raw));

  // Legacy v1: a bare sample array.  Integer-only arrays rebuild into
  // histogram mode; the rendered statistics are what the old reader
  // produced from the same samples.
  Stats legacy;
  ASSERT_TRUE(stats_from_json("[3,1,2,2]", &legacy, &error)) << error;
  EXPECT_TRUE(legacy.histogram_active());
  EXPECT_EQ(legacy.count(), 4u);
  EXPECT_EQ(legacy.median(), 2.0);
  EXPECT_EQ(stats_to_json(legacy), "{\"h\":[1,1,2,2,3,1]}");

  Stats legacy_real;
  ASSERT_TRUE(stats_from_json("[0.5,2]", &legacy_real, &error)) << error;
  EXPECT_FALSE(legacy_real.histogram_active());
  EXPECT_EQ(legacy_real.count(), 2u);
  EXPECT_EQ(legacy_real.min(), 0.5);
}

/// Out-of-window and signed-zero values must demote rather than corrupt
/// the integer key space.
TEST(StatsHistogram, EdgeValuesDemote) {
  Stats s;
  s.add(1.0);
  ASSERT_TRUE(s.histogram_active());
  s.add(-0.0);  // signbit must not be erased by an integer key
  EXPECT_FALSE(s.histogram_active());
  EXPECT_TRUE(std::signbit(s.samples()[1]));

  Stats big;
  big.add(18446744073709551616.0);  // 2^64: outside the exact window
  EXPECT_FALSE(big.histogram_active());
  EXPECT_EQ(big.max(), 18446744073709551616.0);
}

}  // namespace
}  // namespace ccd
