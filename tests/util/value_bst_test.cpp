#include "util/value_bst.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/bitcodec.hpp"

namespace ccd {
namespace {

TEST(ValueBst, RootOfSeven) {
  // {0..6}: root value 3, left subtree {0,1,2}, right {4,5,6}.
  ValueBstCursor c(7);
  EXPECT_TRUE(c.is_root());
  EXPECT_EQ(c.value(), 3u);
  EXPECT_TRUE(c.left_contains(0));
  EXPECT_TRUE(c.left_contains(2));
  EXPECT_FALSE(c.left_contains(3));
  EXPECT_TRUE(c.right_contains(4));
  EXPECT_TRUE(c.right_contains(6));
  EXPECT_FALSE(c.right_contains(3));
}

TEST(ValueBst, SingletonTree) {
  ValueBstCursor c(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(c.is_leaf());
  EXPECT_FALSE(c.has_left());
  EXPECT_FALSE(c.has_right());
  EXPECT_EQ(c.tree_height(), 0u);
}

TEST(ValueBst, DescendAscendRoundTrip) {
  ValueBstCursor c(15);
  const ValueBstCursor root = c;
  c.descend_left();
  EXPECT_EQ(c.depth(), 1u);
  c.descend_right();
  EXPECT_EQ(c.depth(), 2u);
  c.ascend();
  c.ascend();
  EXPECT_EQ(c, root);
}

TEST(ValueBst, AscendFromRootIsNoOp) {
  ValueBstCursor c(7);
  const ValueBstCursor root = c;
  c.ascend();
  EXPECT_EQ(c, root);
}

TEST(ValueBst, EveryValueReachableBySearch) {
  for (std::uint64_t m : {1ull, 2ull, 5ull, 16ull, 33ull, 100ull}) {
    std::set<Value> found;
    for (Value target = 0; target < m; ++target) {
      ValueBstCursor c(m);
      while (c.value() != target) {
        if (c.left_contains(target)) {
          c.descend_left();
        } else {
          ASSERT_TRUE(c.right_contains(target));
          c.descend_right();
        }
      }
      found.insert(c.value());
    }
    EXPECT_EQ(found.size(), m);
  }
}

TEST(ValueBst, BstOrderingInvariant) {
  // At every node, left subtree values < node value < right subtree values.
  const std::uint64_t m = 31;
  ValueBstCursor c(m);
  // DFS via explicit recursion on cursors.
  auto check = [](auto&& self, ValueBstCursor node) -> void {
    const Value v = node.value();
    for (Value x = 0; x < 31; ++x) {
      if (node.left_contains(x)) {
        EXPECT_LT(x, v);
      }
      if (node.right_contains(x)) {
        EXPECT_GT(x, v);
      }
    }
    if (node.has_left()) {
      ValueBstCursor l = node;
      l.descend_left();
      self(self, l);
    }
    if (node.has_right()) {
      ValueBstCursor r = node;
      r.descend_right();
      self(self, r);
    }
  };
  check(check, c);
}

TEST(ValueBst, HeightIsLogarithmic) {
  // Theorem 3 charges 4 rounds per tree edge; the height must be ~lg|V|.
  for (std::uint64_t m : {2ull, 4ull, 15ull, 16ull, 17ull, 1023ull, 1024ull}) {
    ValueBstCursor c(m);
    EXPECT_LE(c.tree_height(), ceil_log2(m + 1));
  }
}

TEST(ValueBst, SearchDepthBoundedByHeight) {
  const std::uint64_t m = 1000;
  ValueBstCursor probe(m);
  const std::uint32_t height = probe.tree_height();
  for (Value target = 0; target < m; target += 7) {
    ValueBstCursor c(m);
    std::uint32_t depth = 0;
    while (c.value() != target) {
      if (c.left_contains(target)) {
        c.descend_left();
      } else {
        c.descend_right();
      }
      ++depth;
    }
    EXPECT_LE(depth, height);
  }
}

}  // namespace
}  // namespace ccd
