#include "sync/round_synchronizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sync/drifting_clock.hpp"

namespace ccd {
namespace {

TEST(DriftingClock, LinearModel) {
  DriftingClock clock(1.0001, 3.5);
  EXPECT_DOUBLE_EQ(clock.local_time(0.0), 3.5);
  EXPECT_NEAR(clock.local_time(10.0), 13.5010, 1e-9);
  EXPECT_NEAR(clock.real_time(clock.local_time(42.0)), 42.0, 1e-9);
  EXPECT_NEAR(clock.local_elapsed(100.0), 100.01, 1e-9);
}

TEST(DriftingClock, FastAndSlowClocksDiverge) {
  DriftingClock fast(1.0 + 1e-4, 0.0);
  DriftingClock slow(1.0 - 1e-4, 0.0);
  // After 1000s of real time, 0.2s apart: unsynchronized clocks cannot
  // support a round abstraction on their own.
  EXPECT_NEAR(fast.local_time(1000.0) - slow.local_time(1000.0), 0.2, 1e-9);
}

RoundSynchronizer::Options default_options() {
  RoundSynchronizer::Options o;
  o.n = 8;
  o.rho = 1e-4;
  o.epoch = 1.0;
  o.jitter = 1e-5;
  o.beacon_loss = 0.2;
  o.round_length = 0.05;
  o.horizon = 120.0;
  o.seed = 7;
  return o;
}

TEST(RoundSynchronizer, SkewWithinAnalyticBound) {
  RoundSynchronizer sync(default_options());
  EXPECT_LE(sync.measured_max_skew(), sync.skew_bound() + 1e-12);
}

TEST(RoundSynchronizer, SkewBoundIsTightUpToSmallFactor) {
  // The bound should not be wildly loose: measured skew reaches at least a
  // tenth of it (both scale with rho*E + J).
  RoundSynchronizer sync(default_options());
  EXPECT_GE(sync.measured_max_skew(), sync.skew_bound() / 20.0);
}

TEST(RoundSynchronizer, RoundAgreementOutsideGuardWindows) {
  RoundSynchronizer sync(default_options());
  EXPECT_DOUBLE_EQ(sync.round_agreement_fraction(), 1.0);
}

TEST(RoundSynchronizer, AgreementAcrossSeedsAndLossRates) {
  for (double loss : {0.0, 0.3, 0.6}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto o = default_options();
      o.beacon_loss = loss;
      o.seed = seed;
      RoundSynchronizer sync(o);
      EXPECT_DOUBLE_EQ(sync.round_agreement_fraction(), 1.0)
          << "loss=" << loss << " seed=" << seed;
      EXPECT_LE(sync.measured_max_skew(), sync.skew_bound() + 1e-12);
    }
  }
}

TEST(RoundSynchronizer, HigherLossWidensTheBound) {
  auto lossy = default_options();
  lossy.beacon_loss = 0.6;
  auto clean = default_options();
  clean.beacon_loss = 0.0;
  RoundSynchronizer sync_lossy(lossy);
  RoundSynchronizer sync_clean(clean);
  EXPECT_GT(sync_lossy.skew_bound(), sync_clean.skew_bound());
}

TEST(RoundSynchronizer, RoundsAdvanceMonotonically) {
  RoundSynchronizer sync(default_options());
  const double start = sync.bootstrap_time() + 0.01;
  for (std::size_t device = 0; device < sync.num_devices(); ++device) {
    std::int64_t prev = sync.round_at(device, start);
    for (double t = start; t < 110.0; t += 0.37) {
      const std::int64_t r = sync.round_at(device, t);
      EXPECT_GE(r, prev);
      prev = r;
    }
  }
}

TEST(RoundSynchronizer, RoundLengthSetsRoundRate) {
  auto o = default_options();
  o.round_length = 0.1;
  RoundSynchronizer sync(o);
  const double t0 = sync.bootstrap_time() + 1.0;
  const double t1 = t0 + 10.0;
  const auto advanced = sync.round_at(0, t1) - sync.round_at(0, t0);
  // ~100 rounds in 10 seconds at L = 0.1 (within drift slack).
  EXPECT_NEAR(static_cast<double>(advanced), 100.0, 2.0);
}

TEST(RoundSynchronizer, UnsynchronizedClocksWouldDisagree) {
  // Control experiment: raw hardware clocks (pre-bootstrap behaviour)
  // disagree about the round number essentially always, demonstrating the
  // synchronizer is doing real work.
  auto o = default_options();
  o.seed = 9;
  RoundSynchronizer sync(o);
  // Query BEFORE the first beacon: free-running clocks with offsets up to
  // +-5s and L = 0.05 -> rounds differ by hundreds.
  const double t = 0.5;
  bool all_same = true;
  const std::int64_t r0 = sync.round_at(0, t);
  for (std::size_t i = 1; i < sync.num_devices(); ++i) {
    if (sync.round_at(i, t) != r0) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

}  // namespace
}  // namespace ccd
