#include "cd/detector_spec.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccd {
namespace {

TEST(DetectorSpec, CompleteForcesOnAnyLoss) {
  const auto spec = DetectorSpec::AC();
  EXPECT_TRUE(spec.collision_forced(3, 2));
  EXPECT_TRUE(spec.collision_forced(1, 0));
  EXPECT_FALSE(spec.collision_forced(3, 3));
  EXPECT_FALSE(spec.collision_forced(0, 0));
}

TEST(DetectorSpec, MajorityForcesWithoutStrictMajority) {
  const auto spec = DetectorSpec::MajAC();
  // c = 4: receiving 2 of 4 is NOT a strict majority -> forced.
  EXPECT_TRUE(spec.collision_forced(4, 2));
  EXPECT_TRUE(spec.collision_forced(4, 0));
  // 3 of 4 is a strict majority -> not forced.
  EXPECT_FALSE(spec.collision_forced(4, 3));
  EXPECT_FALSE(spec.collision_forced(4, 4));
  // c = 1: receiving it is a strict majority; losing it is not.
  EXPECT_TRUE(spec.collision_forced(1, 0));
  EXPECT_FALSE(spec.collision_forced(1, 1));
}

TEST(DetectorSpec, HalfVsMajorityDifferByExactlyOneMessage) {
  // The single case separating the two properties (and, per Theorems 1 vs
  // 6, constant-round from logarithmic consensus): receiving EXACTLY half.
  const auto maj = DetectorSpec::MajAC();
  const auto half = DetectorSpec::HalfAC();
  for (std::uint32_t c = 2; c <= 40; c += 2) {
    const std::uint32_t t = c / 2;
    EXPECT_TRUE(maj.collision_forced(c, t)) << "c=" << c;
    EXPECT_FALSE(half.collision_forced(c, t)) << "c=" << c;
    // Everywhere below half they agree...
    if (t > 0) {
      EXPECT_TRUE(maj.collision_forced(c, t - 1));
      EXPECT_TRUE(half.collision_forced(c, t - 1));
    }
    // ...and everywhere above they agree.
    EXPECT_FALSE(maj.collision_forced(c, t + 1));
    EXPECT_FALSE(half.collision_forced(c, t + 1));
  }
}

TEST(DetectorSpec, ZeroForcesOnlyOnTotalLoss) {
  const auto spec = DetectorSpec::ZeroAC();
  EXPECT_TRUE(spec.collision_forced(3, 0));
  EXPECT_TRUE(spec.collision_forced(1, 0));
  EXPECT_FALSE(spec.collision_forced(3, 1));
  EXPECT_FALSE(spec.collision_forced(0, 0));
}

TEST(DetectorSpec, AccuracyForcesNullOnCleanReception) {
  const auto spec = DetectorSpec::ZeroAC();
  EXPECT_TRUE(spec.null_forced(1, 3, 3));
  EXPECT_TRUE(spec.null_forced(1, 0, 0));
  EXPECT_FALSE(spec.null_forced(1, 3, 2));  // loss: accuracy says nothing
}

TEST(DetectorSpec, EventualAccuracyKicksInAtRacc) {
  const auto spec = DetectorSpec::ZeroOAC(10);
  EXPECT_FALSE(spec.null_forced(9, 2, 2));  // false positives still legal
  EXPECT_TRUE(spec.null_forced(10, 2, 2));
  EXPECT_TRUE(spec.null_forced(11, 2, 2));
}

TEST(DetectorSpec, NoCdAlwaysForcesCollision) {
  const auto spec = DetectorSpec::NoCD();
  EXPECT_TRUE(spec.collision_forced(0, 0));
  EXPECT_TRUE(spec.collision_forced(5, 5));
  EXPECT_FALSE(spec.null_forced(100, 5, 5));
  EXPECT_FALSE(spec.advice_legal(1, 0, 0, CdAdvice::kNull));
  EXPECT_TRUE(spec.advice_legal(1, 0, 0, CdAdvice::kCollision));
}

TEST(DetectorSpec, AdviceLegalityEnvelope) {
  const auto spec = DetectorSpec::HalfOAC(5);
  // Forced collision: t < c/2.
  EXPECT_FALSE(spec.advice_legal(1, 4, 1, CdAdvice::kNull));
  EXPECT_TRUE(spec.advice_legal(1, 4, 1, CdAdvice::kCollision));
  // Free region before r_acc: exactly half, or clean reception.
  EXPECT_TRUE(spec.advice_legal(1, 4, 2, CdAdvice::kNull));
  EXPECT_TRUE(spec.advice_legal(1, 4, 2, CdAdvice::kCollision));
  EXPECT_TRUE(spec.advice_legal(4, 4, 4, CdAdvice::kCollision));
  // After r_acc clean reception forces null.
  EXPECT_FALSE(spec.advice_legal(5, 4, 4, CdAdvice::kCollision));
  EXPECT_TRUE(spec.advice_legal(5, 4, 4, CdAdvice::kNull));
  // Exactly half is still free after r_acc (loss happened).
  EXPECT_TRUE(spec.advice_legal(9, 4, 2, CdAdvice::kCollision));
}

TEST(DetectorSpec, Figure1Lattice) {
  const Round r = 7;
  const std::vector<DetectorSpec> accurate = {
      DetectorSpec::AC(), DetectorSpec::MajAC(), DetectorSpec::HalfAC(),
      DetectorSpec::ZeroAC()};
  const std::vector<DetectorSpec> eventual = {
      DetectorSpec::OAC(r), DetectorSpec::MajOAC(r), DetectorSpec::HalfOAC(r),
      DetectorSpec::ZeroOAC(r)};
  // Completeness weakens left to right within each row.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) {
      EXPECT_TRUE(accurate[i].subclass_of(accurate[j]));
      EXPECT_TRUE(eventual[i].subclass_of(eventual[j]));
      if (i != j) {
        EXPECT_FALSE(accurate[j].subclass_of(accurate[i]));
        EXPECT_FALSE(eventual[j].subclass_of(eventual[i]));
      }
    }
  }
  // Accurate row is contained in the eventually-accurate row.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(accurate[i].subclass_of(eventual[i]));
    EXPECT_FALSE(eventual[i].subclass_of(accurate[i]));
  }
  // The paper's Section 7.1 remark: AC, <>AC, maj-AC all within maj-<>AC.
  EXPECT_TRUE(DetectorSpec::AC().subclass_of(DetectorSpec::MajOAC(r)));
  EXPECT_TRUE(DetectorSpec::OAC(r).subclass_of(DetectorSpec::MajOAC(r)));
  EXPECT_TRUE(DetectorSpec::MajAC().subclass_of(DetectorSpec::MajOAC(r)));
  // And every class we use sits inside 0-<>AC (Section 7.2 remark).
  for (const auto& s : accurate) {
    EXPECT_TRUE(s.subclass_of(DetectorSpec::ZeroOAC(r)));
  }
  for (const auto& s : eventual) {
    EXPECT_TRUE(s.subclass_of(DetectorSpec::ZeroOAC(r)));
  }
}

TEST(DetectorSpec, Lemma1NoCdSubsetOfNoAcc) {
  EXPECT_TRUE(DetectorSpec::NoCD().subclass_of(DetectorSpec::NoAcc()));
  EXPECT_FALSE(DetectorSpec::NoAcc().subclass_of(DetectorSpec::NoCD()));
  // NoCD violates both accuracy properties.
  EXPECT_FALSE(DetectorSpec::NoCD().subclass_of(DetectorSpec::ZeroAC()));
  EXPECT_FALSE(DetectorSpec::NoCD().subclass_of(DetectorSpec::ZeroOAC(3)));
}

TEST(DetectorSpec, ClassNames) {
  EXPECT_EQ(DetectorSpec::AC().class_name(), "AC");
  EXPECT_EQ(DetectorSpec::MajAC().class_name(), "maj-AC");
  EXPECT_EQ(DetectorSpec::HalfOAC(2).class_name(), "half-<>AC");
  EXPECT_EQ(DetectorSpec::ZeroOAC(2).class_name(), "0-<>AC");
  EXPECT_EQ(DetectorSpec::NoCD().class_name(), "NoCD");
  EXPECT_EQ(DetectorSpec::NoAcc().class_name(), "NoACC");
}

// Property sweep: completeness monotonicity -- a stronger spec forces a
// report whenever a weaker one does.
class CompletenessOrder
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompletenessOrder, StrongerForcesWheneverWeakerDoes) {
  const auto [ci, ti] = GetParam();
  const auto c = static_cast<std::uint32_t>(ci);
  const auto t = static_cast<std::uint32_t>(ti);
  if (t > c) return;  // invalid transmission data
  const DetectorSpec order[] = {DetectorSpec::AC(), DetectorSpec::MajAC(),
                                DetectorSpec::HalfAC(),
                                DetectorSpec::ZeroAC()};
  for (int s = 0; s < 3; ++s) {
    if (order[s + 1].collision_forced(c, t)) {
      EXPECT_TRUE(order[s].collision_forced(c, t))
          << order[s].class_name() << " should force when "
          << order[s + 1].class_name() << " does (c=" << c << ",t=" << t
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCounts, CompletenessOrder,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Range(0, 12)));

}  // namespace
}  // namespace ccd
