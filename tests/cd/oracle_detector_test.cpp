#include "cd/oracle_detector.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

std::vector<CdAdvice> advise_once(OracleDetector& det, Round r,
                                  std::uint32_t c,
                                  std::vector<std::uint32_t> t) {
  std::vector<CdAdvice> out;
  det.advise(r, c, t, out);
  return out;
}

TEST(OracleDetector, TruthfulReportsExactlyLoss) {
  OracleDetector det(DetectorSpec::AC(), make_truthful_policy());
  const auto advice = advise_once(det, 1, 3, {3, 2, 0});
  EXPECT_EQ(advice[0], CdAdvice::kNull);
  EXPECT_EQ(advice[1], CdAdvice::kCollision);
  EXPECT_EQ(advice[2], CdAdvice::kCollision);
}

TEST(OracleDetector, PreferNullHidesEverythingNotForced) {
  OracleDetector det(DetectorSpec::HalfAC(), make_prefer_null_policy());
  // c=2: one of two received (exactly half) -> legal null; zero -> forced.
  const auto advice = advise_once(det, 1, 2, {1, 1, 0});
  EXPECT_EQ(advice[0], CdAdvice::kNull);
  EXPECT_EQ(advice[1], CdAdvice::kNull);
  EXPECT_EQ(advice[2], CdAdvice::kCollision);
}

TEST(OracleDetector, PreferNullCannotHideFromMajorityComplete) {
  OracleDetector det(DetectorSpec::MajAC(), make_prefer_null_policy());
  // The same exactly-half situation IS forced under majority completeness.
  const auto advice = advise_once(det, 1, 2, {1, 1});
  EXPECT_EQ(advice[0], CdAdvice::kCollision);
  EXPECT_EQ(advice[1], CdAdvice::kCollision);
}

TEST(OracleDetector, PreferCollisionSpamsUntilAccuracyForbids) {
  OracleDetector det(DetectorSpec::OAC(5), make_prefer_collision_policy());
  // Before r_acc a clean receiver may still be told +-.
  EXPECT_EQ(advise_once(det, 4, 1, {1})[0], CdAdvice::kCollision);
  // From r_acc on accuracy forces null for clean receivers.
  EXPECT_EQ(advise_once(det, 5, 1, {1})[0], CdAdvice::kNull);
  // Lossy receivers may always be told +-.
  EXPECT_EQ(advise_once(det, 9, 2, {1})[0], CdAdvice::kCollision);
}

TEST(OracleDetector, NoCdAlwaysCollision) {
  OracleDetector det(DetectorSpec::NoCD(), make_prefer_null_policy());
  EXPECT_EQ(advise_once(det, 1, 0, {0})[0], CdAdvice::kCollision);
  EXPECT_EQ(advise_once(det, 2, 3, {3})[0], CdAdvice::kCollision);
}

TEST(OracleDetector, SpuriousPolicyTruthfulAfterWindow) {
  OracleDetector det(DetectorSpec::ZeroOAC(20),
                     std::make_unique<SpuriousPolicy>(1.0, 20, 99));
  // p = 1.0: every legal opportunity before round 20 is a false positive.
  EXPECT_EQ(advise_once(det, 3, 0, {0})[0], CdAdvice::kCollision);
  EXPECT_EQ(advise_once(det, 19, 2, {2})[0], CdAdvice::kCollision);
  // After the window: truthful (and accuracy-forced anyway).
  EXPECT_EQ(advise_once(det, 20, 2, {2})[0], CdAdvice::kNull);
  EXPECT_EQ(advise_once(det, 25, 0, {0})[0], CdAdvice::kNull);
}

TEST(OracleDetector, FlakyMajorityNeverMissesTotalLoss) {
  // Zero completeness is enforced by the envelope regardless of the policy:
  // the Section 1.3 "100% of rounds zero complete" measurement.
  OracleDetector det(DetectorSpec::ZeroOAC(1000),
                     std::make_unique<FlakyMajorityPolicy>(0.0, 7));
  for (Round r = 1; r <= 50; ++r) {
    EXPECT_EQ(advise_once(det, r, 4, {0})[0], CdAdvice::kCollision);
  }
}

TEST(OracleDetector, FlakyMajorityHitsConfiguredRate) {
  OracleDetector det(DetectorSpec::ZeroOAC(100000),
                     std::make_unique<FlakyMajorityPolicy>(0.9, 7));
  int reported = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    // 1 of 4 received: majority lost but not everything, so the report is
    // up to the policy.
    if (advise_once(det, static_cast<Round>(i + 1), 4, {1})[0] ==
        CdAdvice::kCollision) {
      ++reported;
    }
  }
  EXPECT_NEAR(reported / static_cast<double>(trials), 0.9, 0.03);
}

TEST(CdTraceLegal, AcceptsTruthfulTrace) {
  TransmissionTrace tt;
  CdTrace cd;
  tt.push({2, {2, 1, 0}});
  cd.push({CdAdvice::kNull, CdAdvice::kCollision, CdAdvice::kCollision});
  EXPECT_TRUE(cd_trace_legal(DetectorSpec::AC(), tt, cd));
}

TEST(CdTraceLegal, RejectsCompletenessViolation) {
  TransmissionTrace tt;
  CdTrace cd;
  tt.push({2, {0, 2}});
  cd.push({CdAdvice::kNull, CdAdvice::kNull});  // process 0 lost all: 0-AC
                                                // requires a report
  EXPECT_FALSE(cd_trace_legal(DetectorSpec::ZeroAC(), tt, cd));
}

TEST(CdTraceLegal, RejectsAccuracyViolation) {
  TransmissionTrace tt;
  CdTrace cd;
  tt.push({1, {1, 1}});
  cd.push({CdAdvice::kCollision, CdAdvice::kNull});  // false positive
  EXPECT_FALSE(cd_trace_legal(DetectorSpec::ZeroAC(), tt, cd));
  // But legal for an eventually-accurate detector before r_acc...
  EXPECT_TRUE(cd_trace_legal(DetectorSpec::ZeroOAC(5), tt, cd));
  // ...and illegal once accuracy must hold. (Round 1 >= r_acc = 1.)
  EXPECT_FALSE(cd_trace_legal(DetectorSpec::ZeroOAC(1), tt, cd));
}

TEST(CdTraceLegal, RejectsSizeMismatch) {
  TransmissionTrace tt;
  CdTrace cd;
  tt.push({1, {1, 1}});
  cd.push({CdAdvice::kNull});
  EXPECT_FALSE(cd_trace_legal(DetectorSpec::ZeroOAC(5), tt, cd));
}

// Property: every policy, run against every spec, emits only legal advice
// (the OracleDetector envelope guarantee), across a sweep of (c, t).
class PolicyEnvelope : public ::testing::TestWithParam<int> {};

TEST_P(PolicyEnvelope, AllAdviceLegal) {
  const int which = GetParam();
  const DetectorSpec specs[] = {
      DetectorSpec::AC(),      DetectorSpec::MajAC(),
      DetectorSpec::HalfAC(),  DetectorSpec::ZeroAC(),
      DetectorSpec::OAC(4),    DetectorSpec::MajOAC(4),
      DetectorSpec::HalfOAC(4), DetectorSpec::ZeroOAC(4),
      DetectorSpec::NoCD(),    DetectorSpec::NoAcc()};
  for (const DetectorSpec& spec : specs) {
    auto make_policy = [&]() -> std::unique_ptr<AdvicePolicy> {
      switch (which) {
        case 0:
          return make_truthful_policy();
        case 1:
          return make_prefer_null_policy();
        case 2:
          return make_prefer_collision_policy();
        case 3:
          return std::make_unique<SpuriousPolicy>(0.5, 6, 31);
        case 4:
          return std::make_unique<FlakyMajorityPolicy>(0.6, 37);
        default:
          return std::make_unique<RandomLegalPolicy>(41);
      }
    };
    OracleDetector det(spec, make_policy());
    for (Round r = 1; r <= 8; ++r) {
      for (std::uint32_t c = 0; c <= 6; ++c) {
        std::vector<std::uint32_t> t;
        for (std::uint32_t ti = 0; ti <= c; ++ti) t.push_back(ti);
        std::vector<CdAdvice> advice;
        det.advise(r, c, t, advice);
        for (std::size_t i = 0; i < t.size(); ++i) {
          ASSERT_TRUE(spec.advice_legal(r, c, t[i], advice[i]))
              << spec.class_name() << " policy=" << which << " r=" << r
              << " c=" << c << " t=" << t[i];
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEnvelope, ::testing::Range(0, 6));

}  // namespace
}  // namespace ccd
