#include <gtest/gtest.h>

#include "cm/adversarial_cm.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/leader_election.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"

namespace ccd {
namespace {

std::uint32_t active_count(const std::vector<CmAdvice>& advice) {
  std::uint32_t n = 0;
  for (CmAdvice a : advice) n += a == CmAdvice::kActive ? 1 : 0;
  return n;
}

TEST(NoCm, EveryoneActiveAlways) {
  NoCm cm;
  std::vector<bool> alive(5, true);
  std::vector<CmAdvice> advice;
  for (Round r = 1; r <= 20; ++r) {
    cm.advise(r, alive, advice);
    EXPECT_EQ(active_count(advice), 5u);
  }
  EXPECT_EQ(cm.stabilization_round(), kNeverRound);
}

TEST(WakeupService, ExactlyOneActiveAfterRwake) {
  WakeupService::Options opts;
  opts.r_wake = 10;
  opts.pre = WakeupService::PreStabilization::kAllActive;
  WakeupService cm(opts);
  std::vector<bool> alive(6, true);
  std::vector<CmAdvice> advice;
  for (Round r = 1; r <= 50; ++r) {
    cm.advise(r, alive, advice);
    if (r >= 10) {
      EXPECT_EQ(active_count(advice), 1u) << "round " << r;
    } else {
      EXPECT_EQ(active_count(advice), 6u);
    }
  }
}

TEST(WakeupService, RotationIsWsButNotLs) {
  WakeupService::Options opts;
  opts.r_wake = 1;
  opts.post = WakeupService::PostStabilization::kRotateAlive;
  WakeupService cm(opts);
  std::vector<bool> alive(3, true);
  std::vector<CmAdvice> advice;
  std::vector<int> chosen;
  for (Round r = 1; r <= 6; ++r) {
    cm.advise(r, alive, advice);
    ASSERT_EQ(active_count(advice), 1u);
    for (int i = 0; i < 3; ++i) {
      if (advice[i] == CmAdvice::kActive) chosen.push_back(i);
    }
  }
  // Round-robin: 0,1,2,0,1,2.
  EXPECT_EQ(chosen, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(WakeupService, MinAliveAdaptsToCrashes) {
  WakeupService::Options opts;
  opts.r_wake = 1;
  WakeupService cm(opts);
  std::vector<bool> alive = {true, true, true};
  std::vector<CmAdvice> advice;
  cm.advise(1, alive, advice);
  EXPECT_EQ(advice[0], CmAdvice::kActive);
  alive[0] = false;
  cm.advise(2, alive, advice);
  EXPECT_EQ(advice[0], CmAdvice::kPassive);
  EXPECT_EQ(advice[1], CmAdvice::kActive);
}

TEST(WakeupService, FixedMinIgnoresCrashes) {
  WakeupService::Options opts;
  opts.r_wake = 1;
  opts.post = WakeupService::PostStabilization::kFixedMin;
  WakeupService cm(opts);
  std::vector<bool> alive = {false, true};
  std::vector<CmAdvice> advice;
  cm.advise(5, alive, advice);
  // Legal per the formal WS definition, deadly for liveness: the dead
  // process keeps the slot.
  EXPECT_EQ(advice[0], CmAdvice::kActive);
  EXPECT_EQ(advice[1], CmAdvice::kPassive);
}

TEST(WakeupService, AllPassivePreStabilization) {
  WakeupService::Options opts;
  opts.r_wake = 4;
  opts.pre = WakeupService::PreStabilization::kAllPassive;
  WakeupService cm(opts);
  std::vector<bool> alive(4, true);
  std::vector<CmAdvice> advice;
  for (Round r = 1; r <= 3; ++r) {
    cm.advise(r, alive, advice);
    EXPECT_EQ(active_count(advice), 0u);
  }
}

TEST(LeaderElection, SameLeaderForever) {
  LeaderElectionService::Options opts;
  opts.r_lead = 5;
  LeaderElectionService cm(opts);
  std::vector<bool> alive(4, true);
  std::vector<CmAdvice> advice;
  for (Round r = 5; r <= 30; ++r) {
    cm.advise(r, alive, advice);
    ASSERT_EQ(active_count(advice), 1u);
    EXPECT_EQ(advice[0], CmAdvice::kActive);
  }
  EXPECT_EQ(cm.current_leader(), 0u);
}

TEST(LeaderElection, ReelectsOnCrashWhenAdaptive) {
  LeaderElectionService::Options opts;
  opts.r_lead = 1;
  opts.adapt_on_crash = true;
  LeaderElectionService cm(opts);
  std::vector<bool> alive = {true, true};
  std::vector<CmAdvice> advice;
  cm.advise(1, alive, advice);
  EXPECT_EQ(cm.current_leader(), 0u);
  alive[0] = false;
  cm.advise(2, alive, advice);
  EXPECT_EQ(cm.current_leader(), 1u);
  EXPECT_EQ(advice[1], CmAdvice::kActive);
}

TEST(LeaderElection, StrictVariantKeepsDeadLeader) {
  LeaderElectionService::Options opts;
  opts.r_lead = 1;
  opts.adapt_on_crash = false;
  LeaderElectionService cm(opts);
  std::vector<bool> alive = {true, true};
  std::vector<CmAdvice> advice;
  cm.advise(1, alive, advice);
  alive[0] = false;
  cm.advise(2, alive, advice);
  EXPECT_EQ(advice[0], CmAdvice::kActive);  // formally legal LS behaviour
  EXPECT_EQ(advice[1], CmAdvice::kPassive);
}

TEST(ScriptedCm, ReplaysScriptThenLastEntry) {
  std::vector<std::vector<CmAdvice>> script = {
      {CmAdvice::kActive, CmAdvice::kActive},
      {CmAdvice::kPassive, CmAdvice::kActive}};
  ScriptedCm cm(script, 2);
  std::vector<bool> alive(2, true);
  std::vector<CmAdvice> advice;
  cm.advise(1, alive, advice);
  EXPECT_EQ(active_count(advice), 2u);
  cm.advise(2, alive, advice);
  EXPECT_EQ(advice[0], CmAdvice::kPassive);
  cm.advise(99, alive, advice);  // beyond script: replay final entry
  EXPECT_EQ(advice[1], CmAdvice::kActive);
}

TEST(TwoGroupMaxLs, TwoMinimaThenOne) {
  TwoGroupMaxLs cm(/*split=*/3, /*k=*/4);
  std::vector<bool> alive(6, true);
  std::vector<CmAdvice> advice;
  for (Round r = 1; r <= 4; ++r) {
    cm.advise(r, alive, advice);
    EXPECT_EQ(active_count(advice), 2u);
    EXPECT_EQ(advice[0], CmAdvice::kActive);
    EXPECT_EQ(advice[3], CmAdvice::kActive);
  }
  cm.advise(5, alive, advice);
  EXPECT_EQ(active_count(advice), 1u);
  EXPECT_EQ(advice[0], CmAdvice::kActive);
  EXPECT_EQ(cm.stabilization_round(), 5u);
}

TEST(BackoffCm, EventuallyLocksOntoOneProcess) {
  BackoffCm cm(BackoffCm::Options{.seed = 5});
  std::vector<bool> alive(16, true);
  std::vector<CmAdvice> advice;
  Round r = 1;
  for (; r <= 2000; ++r) {
    cm.advise(r, alive, advice);
    if (cm.stabilized_at() != kNeverRound) break;
  }
  ASSERT_NE(cm.stabilized_at(), kNeverRound) << "never locked";
  // After locking, always the same single process.
  int locked = -1;
  for (Round rr = r + 1; rr <= r + 50; ++rr) {
    cm.advise(rr, alive, advice);
    ASSERT_EQ(active_count(advice), 1u);
    for (int i = 0; i < 16; ++i) {
      if (advice[i] == CmAdvice::kActive) {
        if (locked < 0) locked = i;
        EXPECT_EQ(i, locked);
      }
    }
  }
}

TEST(BackoffCm, RelocksAfterLeaderCrash) {
  BackoffCm cm(BackoffCm::Options{.seed = 6});
  std::vector<bool> alive(8, true);
  std::vector<CmAdvice> advice;
  Round r = 1;
  for (; r <= 2000 && cm.stabilized_at() == kNeverRound; ++r) {
    cm.advise(r, alive, advice);
  }
  ASSERT_NE(cm.stabilized_at(), kNeverRound);
  int locked = -1;
  cm.advise(++r, alive, advice);
  for (int i = 0; i < 8; ++i) {
    if (advice[i] == CmAdvice::kActive) locked = i;
  }
  ASSERT_GE(locked, 0);
  alive[locked] = false;
  bool relocked = false;
  for (Round rr = r + 1; rr <= r + 2000; ++rr) {
    cm.advise(rr, alive, advice);
    if (active_count(advice) == 1) {
      int current = -1;
      for (int i = 0; i < 8; ++i) {
        if (advice[i] == CmAdvice::kActive) current = i;
      }
      if (current != locked) {
        relocked = true;
        break;
      }
    }
  }
  EXPECT_TRUE(relocked);
}

}  // namespace
}  // namespace ccd
