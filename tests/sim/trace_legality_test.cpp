// Property sweep: every execution the simulator produces satisfies the
// formal model's constraints (Definition 11), and every recorded CD trace
// is legal for the configured detector class -- across all adversary
// combinations.  This is the "the substrate is the model" guarantee that
// makes the bench results meaningful.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/capture_effect.hpp"
#include "net/ecf_adversary.hpp"
#include "net/partition_adversary.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"
#include "sim/executor.hpp"

namespace ccd {
namespace {

struct LegalityParams {
  int loss_kind;
  int spec_kind;
  std::uint64_t seed;
};

std::unique_ptr<LossAdversary> make_loss(int kind, std::uint64_t seed) {
  switch (kind) {
    case 0: {
      EcfAdversary::Options o;
      o.r_cf = 10;
      o.seed = seed;
      return std::make_unique<EcfAdversary>(o);
    }
    case 1:
      return std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
          UnrestrictedLoss::Mode::kRandom, 0.5, seed});
    case 2: {
      CaptureEffectLoss::Options o;
      o.seed = seed;
      return std::make_unique<CaptureEffectLoss>(o);
    }
    case 3:
      return std::make_unique<PartitionAdversary>(
          PartitionAdversary::Options{3, 15});
    default: {
      ProbabilisticLoss::Options o;
      o.seed = seed;
      return std::make_unique<ProbabilisticLoss>(o);
    }
  }
}

DetectorSpec make_spec(int kind) {
  switch (kind) {
    case 0:
      return DetectorSpec::AC();
    case 1:
      return DetectorSpec::MajOAC(12);
    case 2:
      return DetectorSpec::HalfAC();
    case 3:
      return DetectorSpec::ZeroOAC(12);
    default:
      return DetectorSpec::NoCD();
  }
}

class LegalitySweep : public ::testing::TestWithParam<LegalityParams> {};

TEST_P(LegalitySweep, ExecutionSatisfiesModelConstraints) {
  const LegalityParams p = GetParam();
  const std::size_t n = 6;
  Alg2Algorithm alg(32);
  const DetectorSpec spec = make_spec(p.spec_kind);
  WakeupService::Options ws;
  ws.r_wake = 10;
  ws.pre = WakeupService::PreStabilization::kRandomSubset;
  ws.seed = p.seed;
  RandomCrash::Options crash;
  crash.p = 0.02;
  crash.stop_after = 20;
  crash.seed = p.seed * 7;
  World world = make_world(
      alg, random_initial_values(n, 32, p.seed),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          spec, std::make_unique<RandomLegalPolicy>(p.seed * 11)),
      make_loss(p.loss_kind, p.seed * 13),
      std::make_unique<RandomCrash>(crash));

  ExecutorOptions options;
  options.stop_when_all_decided = false;
  Executor executor(std::move(world), options);
  const Round rounds = 40;
  for (Round r = 0; r < rounds; ++r) executor.step();
  const ExecutionLog& log = executor.log();

  // Constraint 4 (integrity / no duplication): receive counts bounded by
  // broadcaster counts.
  for (Round r = 1; r <= rounds; ++r) {
    const auto& tr = log.transmission().at(r);
    EXPECT_LE(tr.broadcaster_count, n);
    for (std::uint32_t t : tr.receive_count) {
      EXPECT_LE(t, tr.broadcaster_count);
    }
  }

  // Constraint 5 (self-delivery): every sender's view contains its own
  // message.
  for (ProcessId i = 0; i < n; ++i) {
    const ProcessView& view = log.view(i);
    for (const RoundView& rv : view.rounds) {
      if (rv.sent.has_value() && !rv.crashed) {
        bool found = false;
        for (const Message& m : rv.received) {
          if (m == *rv.sent) found = true;
        }
        EXPECT_TRUE(found);
      }
    }
  }

  // Constraint 6: the CD trace is inside the configured class envelope.
  EXPECT_TRUE(cd_trace_legal(spec, log.transmission(), log.cd_trace()))
      << spec.class_name() << " loss=" << p.loss_kind
      << " seed=" << p.seed;

  // Crash absorption: once a process crashes it never broadcasts again.
  for (const CrashRecord& c : log.crashes()) {
    const ProcessView& view = log.view(c.process);
    for (std::size_t r = c.round; r < view.rounds.size(); ++r) {
      EXPECT_FALSE(view.rounds[r].sent.has_value());
    }
  }
}

std::vector<LegalityParams> legality_matrix() {
  std::vector<LegalityParams> out;
  for (int loss = 0; loss < 5; ++loss) {
    for (int spec = 0; spec < 5; ++spec) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({loss, spec, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, LegalitySweep,
                         ::testing::ValuesIn(legality_matrix()));

TEST(TraceLegality, NoiseLemmaHoldsOnRecordedTraces) {
  // Lemma 2 / Corollary 1 as a trace property: with a zero-complete
  // detector, whenever someone broadcast, every process either received
  // something or was told +-.
  Alg2Algorithm alg(32);
  WakeupService::Options ws;
  ws.r_wake = 5;
  EcfAdversary::Options ecf;
  ecf.r_cf = 5;
  ecf.seed = 3;
  World world = make_world(
      alg, random_initial_values(5, 32, 3),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(5),
                                       make_prefer_null_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  ExecutorOptions options;
  options.stop_when_all_decided = false;
  Executor executor(std::move(world), options);
  for (Round r = 0; r < 30; ++r) executor.step();
  const ExecutionLog& log = executor.log();
  for (Round r = 1; r <= 30; ++r) {
    const auto& tr = log.transmission().at(r);
    if (tr.broadcaster_count == 0) continue;
    const auto& advice = log.cd_trace().at(r);
    for (std::size_t i = 0; i < advice.size(); ++i) {
      EXPECT_TRUE(tr.receive_count[i] > 0 ||
                  advice[i] == CdAdvice::kCollision)
          << "round " << r << " process " << i;
    }
  }
}

}  // namespace
}  // namespace ccd
