#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "fault/failure_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

/// Broadcasts its value every round while active; counts what it saw.
class ChattyProcess final : public Process {
 public:
  explicit ChattyProcess(Value v) : value_(v) {}

  std::optional<Message> on_send(Round, CmAdvice cm) override {
    if (cm == CmAdvice::kActive) {
      ++sends_;
      return Message{Message::Kind::kPayload, value_, 0};
    }
    return std::nullopt;
  }
  void on_receive(Round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice) override {
    ++transitions_;
    last_received_ = static_cast<int>(received.size());
    last_cd_ = cd;
    bool own = false;
    for (const Message& m : received) {
      if (m.value == value_) own = true;
    }
    saw_own_ = own;
  }

  int sends() const { return sends_; }
  int transitions() const { return transitions_; }
  int last_received() const { return last_received_; }
  CdAdvice last_cd() const { return last_cd_; }
  bool saw_own() const { return saw_own_; }

 private:
  Value value_;
  int sends_ = 0;
  int transitions_ = 0;
  int last_received_ = -1;
  CdAdvice last_cd_ = CdAdvice::kNull;
  bool saw_own_ = false;
};

/// Decides its own value after `delay` rounds, then halts.
class TimerDecider final : public Process {
 public:
  TimerDecider(Value v, Round delay) : value_(v), delay_(delay) {}
  std::optional<Message> on_send(Round, CmAdvice) override {
    ++sends_;
    return Message{Message::Kind::kPayload, value_, 0};
  }
  void on_receive(Round round, std::span<const Message>, CdAdvice,
                  CmAdvice) override {
    if (round >= delay_) {
      decided_ = true;
      halted_ = true;
    }
  }
  bool decided() const override { return decided_; }
  Value decision() const override { return decided_ ? value_ : kNoValue; }
  bool halted() const override { return halted_; }
  int sends() const { return sends_; }

 private:
  Value value_;
  Round delay_;
  bool decided_ = false;
  bool halted_ = false;
  int sends_ = 0;
};

World chatty_world(std::size_t n, std::unique_ptr<LossAdversary> loss,
                   std::unique_ptr<FailureAdversary> fault) {
  World w;
  for (std::size_t i = 0; i < n; ++i) {
    w.processes.push_back(std::make_unique<ChattyProcess>(i));
    w.initial_values.push_back(i);
  }
  w.cm = std::make_unique<NoCm>();
  w.cd = std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                          make_truthful_policy());
  w.loss = std::move(loss);
  w.fault = std::move(fault);
  return w;
}

TEST(Executor, SelfDeliveryEnforcedUnderTotalLoss) {
  auto world = chatty_world(
      3,
      std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
          UnrestrictedLoss::Mode::kDropOthers, 0.0, 1}),
      std::make_unique<NoFailures>());
  std::vector<ChattyProcess*> procs;
  for (auto& p : world.processes) {
    procs.push_back(static_cast<ChattyProcess*>(p.get()));
  }
  Executor ex(std::move(world));
  ex.step();
  for (ChattyProcess* p : procs) {
    EXPECT_EQ(p->last_received(), 1);  // exactly its own message
    EXPECT_TRUE(p->saw_own());
    EXPECT_EQ(p->last_cd(), CdAdvice::kCollision);  // lost 2 of 3
  }
}

TEST(Executor, PerfectChannelDeliversAll) {
  auto world = chatty_world(4, std::make_unique<NoLoss>(),
                            std::make_unique<NoFailures>());
  std::vector<ChattyProcess*> procs;
  for (auto& p : world.processes) {
    procs.push_back(static_cast<ChattyProcess*>(p.get()));
  }
  Executor ex(std::move(world));
  ex.step();
  for (ChattyProcess* p : procs) {
    EXPECT_EQ(p->last_received(), 4);
    EXPECT_EQ(p->last_cd(), CdAdvice::kNull);
  }
}

TEST(Executor, CrashBeforeSendSilencesImmediately) {
  auto world = chatty_world(
      2, std::make_unique<NoLoss>(),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {1, 0, CrashPoint::kBeforeSend}}));
  auto* survivor = static_cast<ChattyProcess*>(world.processes[1].get());
  auto* victim = static_cast<ChattyProcess*>(world.processes[0].get());
  Executor ex(std::move(world));
  ex.step();
  EXPECT_EQ(victim->sends(), 0);
  EXPECT_EQ(survivor->last_received(), 1);  // only its own message
  EXPECT_FALSE(ex.alive(0));
  ASSERT_EQ(ex.log().crashes().size(), 1u);
  EXPECT_EQ(ex.log().crashes()[0].round, 1u);
}

TEST(Executor, CrashAfterSendLetsFinalMessageOut) {
  auto world = chatty_world(
      2, std::make_unique<NoLoss>(),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {1, 0, CrashPoint::kAfterSend}}));
  auto* survivor = static_cast<ChattyProcess*>(world.processes[1].get());
  auto* victim = static_cast<ChattyProcess*>(world.processes[0].get());
  Executor ex(std::move(world));
  ex.step();
  // The formal Definition 11 semantics: the round-r message goes out...
  EXPECT_EQ(victim->sends(), 1);
  EXPECT_EQ(survivor->last_received(), 2);
  // ...but the victim's transition is skipped.
  EXPECT_EQ(victim->transitions(), 0);
  ex.step();
  EXPECT_EQ(victim->sends(), 1);  // silent from round 2 on
  EXPECT_EQ(survivor->last_received(), 1);
}

TEST(Executor, HaltedProcessesGoSilent) {
  World w;
  w.processes.push_back(std::make_unique<TimerDecider>(7, 2));
  w.processes.push_back(std::make_unique<TimerDecider>(8, 5));
  w.initial_values = {7, 8};
  w.cm = std::make_unique<NoCm>();
  w.cd = std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                          make_truthful_policy());
  w.loss = std::make_unique<NoLoss>();
  w.fault = std::make_unique<NoFailures>();
  auto* first = static_cast<TimerDecider*>(w.processes[0].get());
  Executor ex(std::move(w));
  for (int i = 0; i < 5; ++i) ex.step();
  EXPECT_EQ(first->sends(), 2);  // halted at end of round 2
  EXPECT_TRUE(ex.decided(0));
  EXPECT_TRUE(ex.decided(1));
  EXPECT_TRUE(ex.all_correct_decided());
}

TEST(Executor, DecisionsRecordedOnce) {
  World w;
  w.processes.push_back(std::make_unique<TimerDecider>(3, 1));
  w.initial_values = {3};
  w.cm = std::make_unique<NoCm>();
  w.cd = std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                          make_truthful_policy());
  w.loss = std::make_unique<NoLoss>();
  w.fault = std::make_unique<NoFailures>();
  Executor ex(std::move(w));
  for (int i = 0; i < 4; ++i) ex.step();
  ASSERT_EQ(ex.log().decisions().size(), 1u);
  EXPECT_EQ(ex.log().decisions()[0].round, 1u);
  EXPECT_EQ(ex.log().decisions()[0].value, 3u);
}

TEST(Executor, RunStopsWhenAllDecided) {
  World w;
  w.processes.push_back(std::make_unique<TimerDecider>(1, 4));
  w.initial_values = {1};
  w.cm = std::make_unique<NoCm>();
  w.cd = std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                          make_truthful_policy());
  w.loss = std::make_unique<NoLoss>();
  w.fault = std::make_unique<NoFailures>();
  Executor ex(std::move(w));
  RunResult result = ex.run(100);
  EXPECT_TRUE(result.all_correct_decided);
  EXPECT_EQ(result.last_decision_round, 4u);
  EXPECT_LE(result.rounds_executed, 5u);
}

TEST(Executor, RecordedTracesSatisfyModelInvariants) {
  auto world = chatty_world(3, std::make_unique<NoLoss>(),
                            std::make_unique<NoFailures>());
  Executor ex(std::move(world));
  for (int i = 0; i < 10; ++i) ex.step();
  const ExecutionLog& log = ex.log();
  // Receive counts never exceed broadcaster counts (Definition 11 c.4) and
  // the recorded CD trace is legal for the configured spec.
  for (Round r = 1; r <= 10; ++r) {
    const auto& tr = log.transmission().at(r);
    for (std::uint32_t t : tr.receive_count) {
      EXPECT_LE(t, tr.broadcaster_count);
    }
  }
  EXPECT_TRUE(
      cd_trace_legal(DetectorSpec::AC(), log.transmission(), log.cd_trace()));
}

TEST(Executor, ViewsMatchProcessObservations) {
  auto world = chatty_world(2, std::make_unique<NoLoss>(),
                            std::make_unique<NoFailures>());
  Executor ex(std::move(world));
  ex.step();
  const ProcessView& view = ex.log().view(0);
  ASSERT_EQ(view.rounds.size(), 1u);
  EXPECT_TRUE(view.rounds[0].sent.has_value());
  EXPECT_EQ(view.rounds[0].received.size(), 2u);
  EXPECT_EQ(view.rounds[0].cm, CmAdvice::kActive);
}

}  // namespace
}  // namespace ccd
