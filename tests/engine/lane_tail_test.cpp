// Tail and degenerate-shape coverage for the lane path: cell sizes that
// land exactly on, just under, and just over the 64-lane block width; the
// n = 0 scalar fallback; schedules that crash EVERY process; and cells
// where a single survivor must still decide.  Each case runs the sweep
// with lanes on and off and demands byte-identical reports plus exactly
// equal per-run EngineCounters -- the same contract as the differential
// test, aimed at the boundaries where block partitioning and lane
// retirement logic could plausibly diverge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/lane_engine.hpp"
#include "exp/aggregator.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

namespace ccd::exp {
namespace {

struct SweepResult {
  std::string json;
  std::string csv;
  std::vector<obs::EngineCounters> counters;
};

SweepResult run(const SweepGrid& grid, bool lanes, unsigned threads) {
  SweepOptions options;
  options.threads = threads;
  options.lanes = lanes;
  const std::vector<RunRecord> records = run_sweep(grid, options);
  SweepResult result;
  const auto cells = aggregate(grid, records);
  result.json = aggregates_to_json(grid, cells);
  result.csv = aggregates_to_csv(cells);
  for (const RunRecord& record : records) {
    result.counters.push_back(record.perf.engine);
  }
  return result;
}

void expect_identical(const SweepGrid& grid, unsigned threads,
                      const char* what) {
  const SweepResult lane = run(grid, /*lanes=*/true, threads);
  const SweepResult scalar = run(grid, /*lanes=*/false, threads);
  EXPECT_EQ(lane.json, scalar.json) << what << ": JSON diverged";
  EXPECT_EQ(lane.csv, scalar.csv) << what << ": CSV diverged";
  ASSERT_EQ(lane.counters.size(), scalar.counters.size()) << what;
  for (std::size_t r = 0; r < lane.counters.size(); ++r) {
    EXPECT_EQ(lane.counters[r], scalar.counters[r])
        << what << ": counters diverged at run " << r;
  }
}

SweepGrid base_grid(std::uint32_t seeds_per_cell) {
  SweepGrid grid;
  grid.base.n = 6;
  grid.base.fault = FaultKind::kRandomCrash;
  grid.base.crash_p = 0.05;
  grid.base.max_rounds = 40;
  grid.seeds_per_cell = seeds_per_cell;
  grid.grid_seed = 0x7a11u;
  return grid;
}

TEST(LaneTail, BlockBoundaryCellSizes) {
  // 1 (single-lane block), 63/64 (just under / exactly one full block),
  // 65 (full block + 1-lane tail), 130 (two full blocks + 2-lane tail).
  for (std::uint32_t seeds : {1u, 63u, 64u, 65u, 130u}) {
    SweepGrid grid = base_grid(seeds);
    ASSERT_FALSE(grid.validate().has_value());
    expect_identical(grid, /*threads=*/2,
                     ("seeds_per_cell=" + std::to_string(seeds)).c_str());
  }
}

TEST(LaneTail, TailStraddlesCellsAndAxes) {
  // Two axes x 65 seeds: every cell contributes a full block plus a
  // 1-lane tail, and blocks must never bridge a cell boundary.
  SweepGrid grid = base_grid(65);
  grid.detectors = {DetectorKind::kAC, DetectorKind::kNoCd};
  grid.topologies = {TopologyKind::kSingleHop, TopologyKind::kRing};
  ASSERT_FALSE(grid.validate().has_value());
  expect_identical(grid, /*threads=*/3, "two axes x 65 seeds");
}

TEST(LaneTail, EmptyWorldFallsBackToScalar) {
  SweepGrid grid = base_grid(8);
  grid.base.n = 0;
  grid.base.fault = FaultKind::kNone;
  ASSERT_FALSE(grid.validate().has_value());
  expect_identical(grid, /*threads=*/2, "n=0");
}

TEST(LaneTail, AllProcessesCrash) {
  // Every process is scheduled to die -- a mix of both crash points --
  // so lanes reach zero survivors and must retire with the scalar
  // engine's exact counters and (empty) decision set.
  SweepGrid grid = base_grid(65);
  grid.base.fault = FaultKind::kScheduled;
  for (ProcessId p = 0; p < grid.base.n; ++p) {
    grid.base.crash_schedule.push_back(
        {static_cast<Round>(1 + p % 3), p,
         p % 2 == 0 ? CrashPoint::kBeforeSend : CrashPoint::kAfterSend});
  }
  ASSERT_FALSE(grid.validate().has_value());
  expect_identical(grid, /*threads=*/2, "all-crash schedule");
}

TEST(LaneTail, SingleSurvivorDecides) {
  // All but process 0 crash in the first rounds; the lone survivor must
  // still run the full protocol to its decision on both paths.
  SweepGrid grid = base_grid(65);
  grid.base.fault = FaultKind::kScheduled;
  for (ProcessId p = 1; p < grid.base.n; ++p) {
    grid.base.crash_schedule.push_back(
        {static_cast<Round>(p), p, CrashPoint::kBeforeSend});
  }
  ASSERT_FALSE(grid.validate().has_value());
  expect_identical(grid, /*threads=*/2, "single survivor");

  // Same shape on a multihop workload: the survivor's flood trivially
  // covers the surviving subgraph.
  SweepGrid flood = grid;
  flood.base.workload = WorkloadKind::kFlood;
  flood.base.topology = TopologyKind::kLine;
  ASSERT_FALSE(flood.validate().has_value());
  expect_identical(flood, /*threads=*/2, "single survivor flood");
}

TEST(LaneTail, StridedSubsetDegradesToScalarBlocks) {
  // run_subset with a stride breaks global-index consecutiveness, so the
  // lane partition must fall back to 1-run blocks -- and still match the
  // scalar path byte for byte.
  SweepGrid grid = base_grid(64);
  std::vector<std::size_t> indices;
  for (std::size_t j = 0; j < grid.num_runs(); j += 2) indices.push_back(j);
  SweepOptions lanes_on;
  lanes_on.lanes = true;
  SweepOptions lanes_off;
  lanes_off.lanes = false;
  const auto a = run_subset(grid, indices, lanes_on);
  const auto b = run_subset(grid, indices, lanes_off);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].run_index, b[k].run_index);
    EXPECT_EQ(a[k].perf.engine, b[k].perf.engine) << "run " << k;
    EXPECT_EQ(a[k].summary.verdict.agreement, b[k].summary.verdict.agreement);
  }
}

}  // namespace
}  // namespace ccd::exp
