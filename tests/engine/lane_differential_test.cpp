// Lane/scalar differential property test: the batched LaneEngine's
// acceptance gate.  A seeded random-ScenarioSpec generator draws specs
// across every axis the engine executes (topology x workload x channel x
// scope x fault x CM/CD x loss x policy x chaos), builds a single-cell
// sweep around each, and runs it with lanes ON and lanes OFF.  The two
// result sets must be indistinguishable:
//
//   * the JSON and CSV reports are byte-identical, and
//   * every run's EngineCounters are exactly equal
//
// -- i.e. the lane path is not "statistically equivalent", it is the SAME
// execution.  Any divergence in RNG stream discipline, component call
// order, crash-point semantics, delivery multiset order, termination
// accounting or counter increment sites shows up here as a spec JSON the
// failure message prints verbatim for replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/lane_executor.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"
#include "util/rng.hpp"

namespace ccd::exp {
namespace {

template <typename E>
E pick(Rng& rng, std::initializer_list<E> choices) {
  return *(choices.begin() + rng.below(choices.size()));
}

/// Draw a random but valid spec.  Axis weights keep the sweep broad while
/// bounding runtime: small n dominates, the occasional 33/64 exercises
/// multi-word process masks.
ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.workload =
      pick(rng, {WorkloadKind::kConsensus, WorkloadKind::kConsensus,
                 WorkloadKind::kConsensus, WorkloadKind::kFlood,
                 WorkloadKind::kMis, WorkloadKind::kMisThenConsensus});
  if (spec.workload == WorkloadKind::kConsensus) {
    spec.topology =
        pick(rng, {TopologyKind::kSingleHop, TopologyKind::kSingleHop,
                   TopologyKind::kSingleHop, TopologyKind::kLine,
                   TopologyKind::kRing, TopologyKind::kGrid,
                   TopologyKind::kRandomGeometric});
  } else {
    spec.topology = pick(rng, {TopologyKind::kLine, TopologyKind::kRing,
                               TopologyKind::kGrid, TopologyKind::kGrid,
                               TopologyKind::kRandomGeometric});
  }
  spec.n = pick(rng, {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 12u, 16u, 33u,
                      64u});
  spec.alg = pick(rng, {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg3,
                        AlgKind::kAlg4, AlgKind::kNaive});
  spec.detector =
      pick(rng, {DetectorKind::kAC, DetectorKind::kMajAC,
                 DetectorKind::kHalfAC, DetectorKind::kZeroAC,
                 DetectorKind::kOAC, DetectorKind::kMajOAC,
                 DetectorKind::kHalfOAC, DetectorKind::kZeroOAC,
                 DetectorKind::kNoCd, DetectorKind::kNoAcc});
  spec.policy =
      pick(rng, {PolicyKind::kTruthful, PolicyKind::kPreferNull,
                 PolicyKind::kPreferCollision, PolicyKind::kSpurious,
                 PolicyKind::kFlakyMajority, PolicyKind::kRandomLegal});
  spec.cm = pick(rng, {CmKind::kNoCm, CmKind::kWakeup, CmKind::kLeader,
                       CmKind::kBackoff});
  spec.loss = pick(rng, {LossKind::kNoLoss, LossKind::kEcf,
                         LossKind::kProbabilistic, LossKind::kUnrestricted});
  spec.fault = pick(rng, {FaultKind::kNone, FaultKind::kRandomCrash,
                          FaultKind::kRandomCrash, FaultKind::kScheduled});
  if (spec.fault == FaultKind::kScheduled) {
    // Both crash points in one deterministic schedule; process ids are
    // reduced mod n at factory time by the named generators, but an
    // explicit list must stay in range itself.
    spec.crash_schedule = {
        {2, static_cast<ProcessId>(rng.below(spec.n)),
         CrashPoint::kAfterSend},
        {4, static_cast<ProcessId>(rng.below(spec.n)),
         CrashPoint::kBeforeSend},
    };
  }
  spec.init = pick(rng, {InitKind::kRandom, InitKind::kSplit,
                         InitKind::kAllSame});
  spec.chaos = pick(rng, {ChaosKind::kCalm, ChaosKind::kChaotic});
  spec.num_values = pick(rng, {2ull, 4ull, 16ull, 32ull});
  spec.cst_target = static_cast<Round>(1 + rng.below(10));
  spec.p_deliver = 0.3 + 0.1 * static_cast<double>(rng.below(8));
  spec.spurious_p = 0.1 * static_cast<double>(rng.below(9));
  spec.crash_p = 0.02 + 0.02 * static_cast<double>(rng.below(5));
  // Cap never-deciding cells (NoCD / naive / unrestricted) well below the
  // derived default budget; equivalence is just as observable at 60 rounds.
  spec.max_rounds = static_cast<Round>(30 + rng.below(31));
  return spec;
}

struct SweepResult {
  std::string json;
  std::string csv;
  std::vector<obs::EngineCounters> counters;
};

SweepResult run(const SweepGrid& grid, bool lanes, unsigned threads) {
  SweepOptions options;
  options.threads = threads;
  options.lanes = lanes;
  const std::vector<RunRecord> records = run_sweep(grid, options);
  SweepResult result;
  const auto cells = aggregate(grid, records);
  result.json = aggregates_to_json(grid, cells);
  result.csv = aggregates_to_csv(cells);
  result.counters.reserve(records.size());
  for (const RunRecord& record : records) {
    result.counters.push_back(record.perf.engine);
  }
  return result;
}

TEST(LaneDifferential, RandomSpecsLaneVsScalarByteIdentical) {
  constexpr int kSpecs = 220;
  Rng rng(0x1a9e5u);
  for (int i = 0; i < kSpecs; ++i) {
    SweepGrid grid;
    grid.base = random_spec(rng);
    // Mostly small cells; occasionally straddle the 64-lane block boundary.
    const std::uint32_t seeds =
        pick(rng, {1u, 2u, 3u, 4u, 5u, 6u, 8u, 8u, 13u, 65u});
    grid.seeds_per_cell = seeds;
    grid.grid_seed = rng();
    ASSERT_FALSE(grid.validate().has_value())
        << *grid.validate() << "\nspec: " << grid.base.to_json();
    // Alternate single- and multi-threaded pools: lane blocks must be
    // byte-stable under work stealing exactly like scalar runs.
    const unsigned threads = (i % 3 == 0) ? 3 : 1;
    const SweepResult lane = run(grid, /*lanes=*/true, threads);
    const SweepResult scalar = run(grid, /*lanes=*/false, threads);
    ASSERT_EQ(lane.json, scalar.json)
        << "lane/scalar JSON diverged for spec " << i << ":\n"
        << grid.base.to_json() << "\nseeds_per_cell=" << seeds
        << " grid_seed=" << grid.grid_seed;
    ASSERT_EQ(lane.csv, scalar.csv)
        << "lane/scalar CSV diverged for spec " << i << ":\n"
        << grid.base.to_json();
    ASSERT_EQ(lane.counters.size(), scalar.counters.size());
    for (std::size_t r = 0; r < lane.counters.size(); ++r) {
      ASSERT_EQ(lane.counters[r], scalar.counters[r])
          << "EngineCounters diverged at run " << r << " for spec " << i
          << ":\n"
          << grid.base.to_json() << "\nseeds_per_cell=" << seeds
          << " grid_seed=" << grid.grid_seed;
    }
  }
}

TEST(LaneDifferential, NamedGridsLaneVsScalarByteIdentical) {
  // The shipped grids end to end -- including the 432-cell multihop grid
  // and the loss-on-topology composition -- through real multi-threaded
  // pools on both paths.
  for (const char* name : {"smoke", "crash", "multihop", "mhloss"}) {
    auto grid = SweepGrid::named(name);
    ASSERT_TRUE(grid.has_value()) << name;
    const SweepResult lane = run(*grid, /*lanes=*/true, 4);
    const SweepResult scalar = run(*grid, /*lanes=*/false, 4);
    EXPECT_EQ(lane.json, scalar.json) << name << " JSON diverged";
    EXPECT_EQ(lane.csv, scalar.csv) << name << " CSV diverged";
    ASSERT_EQ(lane.counters.size(), scalar.counters.size());
    for (std::size_t r = 0; r < lane.counters.size(); ++r) {
      ASSERT_EQ(lane.counters[r], scalar.counters[r])
          << name << " counters diverged at run " << r;
    }
  }
}

TEST(LaneDifferential, EligibilityRoutesTheScalarOnlyShapes) {
  RunScenarioOptions plain;
  ScenarioSpec spec;  // defaults: consensus / singlehop / n=8
  EXPECT_TRUE(LaneExecutor::eligible(spec, plain));

  ScenarioSpec rgg = spec;
  rgg.topology = TopologyKind::kRandomGeometric;
  rgg.workload = WorkloadKind::kFlood;
  EXPECT_FALSE(LaneExecutor::eligible(rgg, plain));

  ScenarioSpec empty = spec;
  empty.n = 0;
  EXPECT_FALSE(LaneExecutor::eligible(empty, plain));

  ScenarioSpec sync = spec;
  sync.workload = WorkloadKind::kRoundSync;
  EXPECT_FALSE(LaneExecutor::eligible(sync, plain));

  RunScenarioOptions capture;
  capture.capture_log = true;
  EXPECT_FALSE(LaneExecutor::eligible(spec, capture));
  RunScenarioOptions views;
  views.record_views = true;
  EXPECT_FALSE(LaneExecutor::eligible(spec, views));
}

}  // namespace
}  // namespace ccd::exp
