// RoundEngine semantics: the configuration axes (channel, scope) and their
// interaction with topology and crash points.  The byte-level equivalence
// with the pre-refactor executors is pinned by exp/golden_report_test; the
// adapter-level behaviour by the existing executor/mh_executor tests
// (which now drive the engine through sim::Executor / MultihopExecutor).
#include "engine/round_engine.hpp"

#include <gtest/gtest.h>

#include "cm/no_cm.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/harness.hpp"
#include "net/no_loss.hpp"

namespace ccd {
namespace {

/// Broadcasts every round (or never); records its observations.
class BeaconProcess final : public Process {
 public:
  explicit BeaconProcess(bool talk) : talk_(talk) {}
  std::optional<Message> on_send(Round, CmAdvice) override {
    if (talk_) return Message{Message::Kind::kPayload, 7, 0};
    return std::nullopt;
  }
  void on_receive(Round, std::span<const Message> received, CdAdvice,
                  CmAdvice) override {
    last_count_ = received.size();
    ++transitions_;
  }
  std::size_t last_count_ = 0;
  std::uint32_t transitions_ = 0;

 private:
  bool talk_;
};

EngineWorld beacon_world(Topology topo, std::vector<bool> talk,
                         ChannelModel channel, CollisionScope scope,
                         std::unique_ptr<FailureAdversary> fault = nullptr) {
  EngineWorld ew;
  for (bool b : talk) {
    ew.world.processes.push_back(std::make_unique<BeaconProcess>(b));
  }
  // Pin the detector: the engine's null-substitution default is NoCD (the
  // constant "+-" detector), which would drown the advice assertions.
  ew.world.cd = std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                                 make_truthful_policy());
  ew.world.fault = std::move(fault);
  ew.topology = std::move(topo);
  ew.channel = channel;
  ew.scope = scope;
  ew.link = {1.0, 1.0};
  return ew;
}

EngineOptions quiet_options() {
  EngineOptions options;
  options.record_views = false;
  options.record_rounds = false;
  options.stop_when_all_decided = false;
  return options;
}

TEST(RoundEngine, MatrixChannelMasksDeliveryByAdjacency) {
  // Line 0-1-2, perfect matrix channel (NoLoss fills the whole matrix):
  // node 0 broadcasts; node 1 is adjacent and receives, node 2 is NOT
  // adjacent -- the adjacency mask must drop the matrix entry, and its
  // local c must be 0 (accuracy: no collision to report two hops away).
  auto ew = beacon_world(Topology::line(3), {true, false, false},
                         ChannelModel::kMatrix, CollisionScope::kLocal);
  RoundEngine engine(std::move(ew), quiet_options());
  engine.step();
  EXPECT_EQ(engine.last_receive_count(0), 1u);  // self-delivery
  EXPECT_EQ(engine.last_local_broadcasters(0), 1u);
  EXPECT_EQ(engine.last_receive_count(1), 1u);
  EXPECT_EQ(engine.last_local_broadcasters(1), 1u);
  EXPECT_EQ(engine.last_receive_count(2), 0u);
  EXPECT_EQ(engine.last_local_broadcasters(2), 0u);
  EXPECT_EQ(engine.last_cd(2), CdAdvice::kNull);
}

TEST(RoundEngine, GlobalAndLocalScopeAgreeOnACliqueDeterministically) {
  // On a clique, per-neighborhood counts degenerate to the global count,
  // so with RNG-free components (truthful detector, NoLoss, NoCm) the two
  // scopes must produce the SAME consensus execution.
  auto build = [](CollisionScope scope) {
    Alg2Algorithm alg(16);
    EngineWorld ew;
    ew.world = make_world(alg, {3, 9, 9, 3, 7, 1},
                          std::make_unique<NoCm>(),
                          std::make_unique<OracleDetector>(
                              DetectorSpec::ZeroAC(), make_truthful_policy()),
                          std::make_unique<NoLoss>(),
                          std::make_unique<NoFailures>());
    ew.topology = Topology::clique(6);
    ew.channel = ChannelModel::kMatrix;
    ew.scope = scope;
    return RoundEngine(std::move(ew), EngineOptions{});
  };
  RoundEngine global = build(CollisionScope::kGlobal);
  RoundEngine local = build(CollisionScope::kLocal);
  const RunResult rg = global.run(500);
  const RunResult rl = local.run(500);
  EXPECT_EQ(rg.all_correct_decided, rl.all_correct_decided);
  EXPECT_EQ(rg.rounds_executed, rl.rounds_executed);
  EXPECT_EQ(rg.last_decision_round, rl.last_decision_round);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(global.decision(i), local.decision(i)) << i;
  }
}

TEST(RoundEngine, AfterSendCrashVisibilityFollowsScope) {
  // Process 0 broadcasts and crashes after its round-1 send.  Both scopes
  // deliver the message and skip the crasher's transition; they differ in
  // whether the corpse's own view still forms (kGlobal: Definition 11's
  // literal reading) or it leaves the channel immediately (kLocal).
  auto crash0 = [] {
    return std::make_unique<ScheduledCrash>(
        std::vector<CrashEvent>{{1, 0, CrashPoint::kAfterSend}});
  };
  for (CollisionScope scope :
       {CollisionScope::kGlobal, CollisionScope::kLocal}) {
    auto ew = beacon_world(Topology::clique(2), {true, false},
                           ChannelModel::kMatrix, scope, crash0());
    RoundEngine engine(std::move(ew), quiet_options());
    BeaconProcess& crasher = static_cast<BeaconProcess&>(engine.process(0));
    BeaconProcess& survivor = static_cast<BeaconProcess&>(engine.process(1));
    engine.step();
    EXPECT_FALSE(engine.alive(0));
    EXPECT_EQ(engine.num_alive(), 1u);
    EXPECT_EQ(engine.crashes_applied(), 1u);
    // The round-1 message went out either way (Definition 11: the message
    // derives from the pre-crash state)...
    EXPECT_EQ(survivor.last_count_, 1u);
    EXPECT_EQ(survivor.transitions_, 1u);
    // ...and the crasher never takes its round-1 transition.
    EXPECT_EQ(crasher.transitions_, 0u);
    // Scope-dependent: does the crasher's round-1 view still form?
    if (scope == CollisionScope::kGlobal) {
      EXPECT_EQ(engine.last_receive_count(0), 1u);  // self-delivery observed
    } else {
      EXPECT_EQ(engine.last_receive_count(0), 0u);  // out of the channel
    }
  }
}

TEST(RoundEngine, CaptureChannelCountsBroadcastsAndKeepsTopology) {
  auto ew = beacon_world(Topology::ring(5), {true, true, false, false, false},
                         ChannelModel::kCapture, CollisionScope::kLocal);
  ew.link_seed = 42;
  RoundEngine engine(std::move(ew), quiet_options());
  for (int r = 0; r < 3; ++r) engine.step();
  EXPECT_EQ(engine.total_broadcasts(), 6u);  // 2 talkers x 3 rounds
  EXPECT_EQ(engine.topology().size(), 5u);
  EXPECT_EQ(engine.current_round(), 3u);
  EXPECT_TRUE(engine.all_correct_decided() == false ||
              engine.size() == 0);  // beacons never decide
}

TEST(RoundEngine, RecordsRoundsOnlyWhenAsked) {
  auto make = [](bool record_rounds) {
    auto ew = beacon_world(Topology::clique(3), {true, false, false},
                           ChannelModel::kMatrix, CollisionScope::kGlobal);
    EngineOptions options;
    options.record_views = record_rounds;
    options.record_rounds = record_rounds;
    options.stop_when_all_decided = false;
    return RoundEngine(std::move(ew), options);
  };
  RoundEngine quiet = make(false);
  RoundEngine logged = make(true);
  for (int r = 0; r < 4; ++r) {
    quiet.step();
    logged.step();
  }
  EXPECT_EQ(quiet.log().num_rounds(), 0u);
  EXPECT_EQ(logged.log().num_rounds(), 4u);
  EXPECT_EQ(logged.log().transmission().at(2).broadcaster_count, 1u);
  EXPECT_TRUE(logged.log().views_recorded());
}

}  // namespace
}  // namespace ccd
