#include "consensus/harness.hpp"

#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

TEST(Harness, RandomInitialValuesDeterministicPerSeed) {
  const auto a = random_initial_values(10, 100, 5);
  const auto b = random_initial_values(10, 100, 5);
  const auto c = random_initial_values(10, 100, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (Value v : a) EXPECT_LT(v, 100u);
}

TEST(Harness, SplitInitialValues) {
  const auto values = split_initial_values(5, 1, 9);
  EXPECT_EQ(values, (std::vector<Value>{1, 1, 9, 9, 9}));
  const auto even = split_initial_values(4, 0, 7);
  EXPECT_EQ(even, (std::vector<Value>{0, 0, 7, 7}));
}

TEST(Harness, InstantiateAssignsSequentialIds) {
  Alg1Algorithm alg;
  const std::vector<Value> initials = {1, 2, 3};
  const auto processes = instantiate(alg, initials, /*id_base=*/100);
  EXPECT_EQ(processes.size(), 3u);
  for (const auto& p : processes) EXPECT_FALSE(p->decided());
}

TEST(Harness, WorldCstIsMaxOfComponents) {
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 7;
  EcfAdversary::Options ecf;
  ecf.r_cf = 19;
  World world = make_world(
      alg, {1, 2}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajOAC(13),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  EXPECT_EQ(world.cst(), 19u);  // max{19, 13, 7}
}

TEST(Harness, AccurateDetectorContributesRoundOne) {
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 3;
  World world = make_world(
      alg, {1, 2}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajAC(),
                                       make_truthful_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  EXPECT_EQ(world.cst(), 3u);  // max{1, 1, 3}
}

TEST(Harness, NoGuaranteeComponentsYieldNoCst) {
  Alg1Algorithm alg;
  // NoCM contributes kNeverRound.
  World w1 = make_world(
      alg, {1, 2}, std::make_unique<NoCm>(),
      std::make_unique<OracleDetector>(DetectorSpec::MajAC(),
                                       make_truthful_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  EXPECT_EQ(w1.cst(), kNeverRound);
  // NoCF loss contributes kNeverRound.
  WakeupService::Options ws;
  World w2 = make_world(
      alg, {1, 2}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajAC(),
                                       make_truthful_policy()),
      std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{}),
      std::make_unique<NoFailures>());
  EXPECT_EQ(w2.cst(), kNeverRound);
  // No-accuracy detector contributes kNeverRound.
  World w3 = make_world(
      alg, {1, 2}, std::make_unique<WakeupService>(WakeupService::Options{}),
      std::make_unique<OracleDetector>(DetectorSpec::NoAcc(),
                                       make_truthful_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  EXPECT_EQ(w3.cst(), kNeverRound);
}

TEST(Harness, RunSummaryRoundsAfterCst) {
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 10;
  EcfAdversary::Options ecf;
  ecf.r_cf = 10;
  ecf.pre = EcfAdversary::PreMode::kDropOthers;
  World world = make_world(
      alg, {4, 4, 4}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajOAC(10),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 100);
  ASSERT_TRUE(s.verdict.solved());
  EXPECT_EQ(s.cst, 10u);
  EXPECT_EQ(s.rounds_after_cst,
            s.verdict.last_decision_round - s.cst);
  EXPECT_LE(s.rounds_after_cst, 2u);
}

TEST(Harness, MaxRoundsCapsNonTerminatingRuns) {
  Alg1Algorithm alg;
  WakeupService::Options ws;
  World world = make_world(
      alg, {1, 2}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 77);
  EXPECT_FALSE(s.verdict.termination);
  EXPECT_EQ(s.result.rounds_executed, 77u);
}

}  // namespace
}  // namespace ccd
