// Cross-algorithm edge cases: degenerate sizes, adversarial contention
// schedules, mass crashes.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

World ecf_world(const ConsensusAlgorithm& alg, std::vector<Value> initials,
                std::unique_ptr<FailureAdversary> fault, Round cst = 1,
                std::uint64_t seed = 1) {
  WakeupService::Options ws;
  ws.r_wake = cst;
  EcfAdversary::Options ecf;
  ecf.r_cf = cst;
  ecf.seed = seed;
  return make_world(alg, std::move(initials),
                    std::make_unique<WakeupService>(ws),
                    std::make_unique<OracleDetector>(
                        DetectorSpec::ZeroOAC(cst), make_truthful_policy()),
                    std::make_unique<EcfAdversary>(ecf), std::move(fault));
}

TEST(EdgeCases, EmptyWorldIsVacuouslySolved) {
  // n = 0: no sends, no decisions, no crashes; every property holds
  // vacuously and run_consensus returns without executing a round.
  Alg1Algorithm alg;
  auto s = run_consensus(ecf_world(alg, {}, std::make_unique<NoFailures>()),
                         100);
  EXPECT_TRUE(s.result.all_correct_decided);
  EXPECT_EQ(s.result.rounds_executed, 0u);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_TRUE(s.verdict.termination);
  EXPECT_TRUE(s.verdict.decided_values.empty());
}

TEST(EdgeCases, EmptyWorldWithoutEarlyStopDoesNotSpin) {
  Alg2Algorithm alg(16);
  ExecutorOptions options;
  options.stop_when_all_decided = false;
  auto s = run_consensus(ecf_world(alg, {}, std::make_unique<NoFailures>()),
                         1000, options);
  EXPECT_EQ(s.result.rounds_executed, 0u);
  EXPECT_TRUE(s.verdict.termination);
}

TEST(EdgeCases, WorldWithMissingComponentsGetsNeutralDefaults) {
  // A caller-assembled World may omit components; the Executor substitutes
  // NoCM / NoCD / NoLoss / NoFailures instead of dereferencing null.
  Alg1Algorithm alg;
  World world;
  world.processes = instantiate(alg, {3, 3});
  world.initial_values = {3, 3};
  // cm, cd, loss, fault all left null.
  auto s = run_consensus(std::move(world), 50);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_TRUE(s.verdict.strong_validity);
  // With the NoCD default the detector reports +- forever, so Algorithm 1
  // never passes a veto round: safety intact, no termination.
  EXPECT_FALSE(s.verdict.termination);
}

TEST(EdgeCases, EveryProcessCrashesInOpeningRound) {
  // All crash before their first send: nobody ever broadcasts or decides.
  // Termination is vacuous (no correct process), safety holds, and the run
  // stops immediately instead of burning max_rounds.
  Alg1Algorithm alg;
  std::vector<CrashEvent> events;
  for (ProcessId i = 0; i < 4; ++i) {
    events.push_back({1, i, CrashPoint::kBeforeSend});
  }
  auto s = run_consensus(
      ecf_world(alg, random_initial_values(4, 8, 2),
                std::make_unique<ScheduledCrash>(events)),
      500);
  EXPECT_EQ(s.result.num_crashed, 4u);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_TRUE(s.verdict.termination);  // vacuous: no correct process
  EXPECT_TRUE(s.verdict.decided_values.empty());
  EXPECT_LE(s.result.rounds_executed, 2u);
}

TEST(EdgeCases, SingleProcessEveryAlgorithm) {
  // n = 1: a lone device must still decide its own value.
  {
    Alg1Algorithm alg;
    auto s = run_consensus(
        ecf_world(alg, {7}, std::make_unique<NoFailures>()), 100);
    ASSERT_TRUE(s.verdict.solved());
    EXPECT_EQ(s.verdict.decided_values[0], 7u);
  }
  {
    Alg2Algorithm alg(16);
    auto s = run_consensus(
        ecf_world(alg, {7}, std::make_unique<NoFailures>()), 100);
    ASSERT_TRUE(s.verdict.solved());
    EXPECT_EQ(s.verdict.decided_values[0], 7u);
  }
  {
    Alg3Algorithm alg(16);
    World world = make_world(
        alg, {7}, std::make_unique<NoCm>(),
        std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                         make_truthful_policy()),
        std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{}),
        std::make_unique<NoFailures>());
    auto s = run_consensus(std::move(world), 200);
    ASSERT_TRUE(s.verdict.solved());
    EXPECT_EQ(s.verdict.decided_values[0], 7u);
  }
  {
    Alg4Algorithm alg(1 << 20, 16);
    auto s = run_consensus(
        ecf_world(alg, {7}, std::make_unique<NoFailures>()), 300);
    ASSERT_TRUE(s.verdict.solved());
    EXPECT_EQ(s.verdict.decided_values[0], 7u);
  }
}

TEST(EdgeCases, BinaryValueSpace) {
  // |V| = 2 (commit/abort): the smallest interesting instance, called out
  // in the paper's conclusion ("deciding to commit or abort").
  Alg2Algorithm alg(2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto s = run_consensus(
        ecf_world(alg, split_initial_values(6, 0, 1),
                  std::make_unique<NoFailures>(), 5, seed),
        200);
    EXPECT_TRUE(s.verdict.solved());
    EXPECT_LE(s.rounds_after_cst, Alg2Algorithm::round_bound_after_cst(2));
  }
}

TEST(EdgeCases, AllButOneCrash) {
  Alg1Algorithm alg;
  std::vector<CrashEvent> events;
  for (ProcessId i = 1; i < 8; ++i) {
    events.push_back({static_cast<Round>(i), i, CrashPoint::kBeforeSend});
  }
  auto s = run_consensus(
      ecf_world(alg, random_initial_values(8, 16, 3),
                std::make_unique<ScheduledCrash>(events), 12),
      200);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_TRUE(s.verdict.termination);  // the lone survivor decides
}

TEST(EdgeCases, MassSimultaneousCrash) {
  Alg2Algorithm alg(64);
  std::vector<CrashEvent> events;
  for (ProcessId i = 0; i < 6; ++i) {
    events.push_back({4, i, CrashPoint::kAfterSend});
  }
  // 6 of 10 die in the same round, messages in flight.
  auto s = run_consensus(
      ecf_world(alg, random_initial_values(10, 64, 4),
                std::make_unique<ScheduledCrash>(events), 10),
      400);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_TRUE(s.verdict.strong_validity);
  EXPECT_TRUE(s.verdict.termination);
}

TEST(EdgeCases, DeadFixedLeaderForfeitsLivenessNotSafety) {
  // The formally-legal WS that pins a crashed process active forever: the
  // algorithm must hang (no lone broadcaster ever) but never misbehave.
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 1;
  ws.post = WakeupService::PostStabilization::kFixedMin;
  EcfAdversary::Options ecf;
  ecf.r_cf = 1;
  World world = make_world(
      alg, {3, 5, 5}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajOAC(1),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {1, 0, CrashPoint::kBeforeSend}}));
  auto s = run_consensus(std::move(world), 500);
  EXPECT_TRUE(s.verdict.agreement);
  EXPECT_FALSE(s.verdict.termination);
}

TEST(EdgeCases, MaxValueInLargeSpace) {
  // The largest codeword (all-ones bits) exercises every propose round.
  const std::uint64_t space = 1ull << 20;
  Alg2Algorithm alg(space);
  auto s = run_consensus(
      ecf_world(alg, {space - 1, space - 1, space - 1},
                std::make_unique<NoFailures>()),
      300);
  ASSERT_TRUE(s.verdict.solved());
  EXPECT_EQ(s.verdict.decided_values[0], space - 1);
}

TEST(EdgeCases, Alg3ExtremeLeafValues) {
  // Min and max leaves of the BST: deepest descents on both flanks.
  const std::uint64_t space = 1ull << 10;
  Alg3Algorithm alg(space);
  for (Value v : {Value{0}, space - 1}) {
    World world = make_world(
        alg, {v, v}, std::make_unique<NoCm>(),
        std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                         make_truthful_policy()),
        std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{}),
        std::make_unique<NoFailures>());
    auto s = run_consensus(std::move(world), 2000);
    ASSERT_TRUE(s.verdict.solved()) << v;
    EXPECT_EQ(s.verdict.decided_values[0], v);
  }
}

TEST(EdgeCases, LateStabilizationStressesPreCstPhase) {
  // CST = 200: hundreds of chaotic rounds before the guarantees kick in.
  Alg1Algorithm alg;
  auto s = run_consensus(
      ecf_world(alg, random_initial_values(8, 32, 9),
                std::make_unique<NoFailures>(), 200, 9),
      400);
  EXPECT_TRUE(s.verdict.solved());
  EXPECT_LE(s.rounds_after_cst, 2u);
}

TEST(EdgeCases, PerfectChannelIsAlsoLegal) {
  // Loss is never FORCED by the model; a perfect channel is one legal
  // behaviour and everything still works (trivially).
  Alg2Algorithm alg(32);
  WakeupService::Options ws;
  ws.r_wake = 1;
  World world = make_world(
      alg, random_initial_values(6, 32, 11),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(1),
                                       make_truthful_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  auto s = run_consensus(std::move(world), 100);
  EXPECT_TRUE(s.verdict.solved());
}

}  // namespace
}  // namespace ccd
