// Algorithm 2 (0-<>AC, WS, ECF): Theorem 2 says consensus is solved and
// every correct process decides by CST + 2*(ceil(lg|V|) + 1).
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "lowerbound/composition.hpp"
#include "net/ecf_adversary.hpp"
#include "util/bitcodec.hpp"

namespace ccd {
namespace {

struct Alg2Params {
  std::size_t n;
  std::uint64_t num_values;
  Round cst_target;
  std::uint64_t seed;
};

class Alg2Sweep : public ::testing::TestWithParam<Alg2Params> {};

TEST_P(Alg2Sweep, DecidesWithinTheoremTwoBound) {
  const Alg2Params p = GetParam();
  Alg2Algorithm alg(p.num_values);

  WakeupService::Options ws;
  ws.r_wake = p.cst_target;
  ws.pre = WakeupService::PreStabilization::kRandomSubset;
  ws.seed = p.seed;

  EcfAdversary::Options ecf;
  ecf.r_cf = p.cst_target;
  ecf.pre = EcfAdversary::PreMode::kRandom;
  ecf.contention = EcfAdversary::ContentionMode::kCapture;
  ecf.p_deliver = 0.5;
  ecf.seed = p.seed + 1;

  World world = make_world(
      alg, random_initial_values(p.n, p.num_values, p.seed + 2),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          DetectorSpec::ZeroOAC(p.cst_target),
          std::make_unique<SpuriousPolicy>(0.3, p.cst_target, p.seed + 3)),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());

  const Round bound = Alg2Algorithm::round_bound_after_cst(p.num_values);
  const RunSummary summary =
      run_consensus(std::move(world), p.cst_target + 4 * bound + 20);
  EXPECT_TRUE(summary.verdict.solved());
  EXPECT_LE(summary.rounds_after_cst, bound)
      << "Theorem 2 bound violated: |V|=" << p.num_values
      << " CST=" << summary.cst;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg2Sweep,
    ::testing::Values(Alg2Params{2, 2, 1, 21}, Alg2Params{4, 2, 10, 22},
                      Alg2Params{4, 16, 1, 23}, Alg2Params{8, 16, 13, 24},
                      Alg2Params{8, 256, 7, 25},
                      Alg2Params{16, 1u << 12, 9, 26},
                      Alg2Params{32, 1u << 20, 15, 27},
                      Alg2Params{3, 5, 30, 28}, Alg2Params{6, 1000, 2, 29},
                      Alg2Params{12, 33, 21, 30}));

TEST(Alg2, WorksWithWeakestDetectorInItsClass) {
  // 0-<>AC with a prefer-null policy: the detector reports ONLY what zero
  // completeness forces.  Algorithm 2 is designed for exactly this.
  Alg2Algorithm alg(64);
  WakeupService::Options ws;
  ws.r_wake = 8;
  EcfAdversary::Options ecf;
  ecf.r_cf = 8;
  ecf.seed = 5;
  World world = make_world(
      alg, random_initial_values(8, 64, 5),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(8),
                                       make_prefer_null_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 300);
  EXPECT_TRUE(summary.verdict.solved());
  EXPECT_LE(summary.rounds_after_cst,
            Alg2Algorithm::round_bound_after_cst(64));
}

TEST(Alg2, WorksWithFlakyMajorityDetector) {
  // The practically-measured detector of Section 1.3: always zero
  // complete, majority complete "most of the time".  That extra (legal)
  // information can only help.
  Alg2Algorithm alg(128);
  WakeupService::Options ws;
  ws.r_wake = 6;
  EcfAdversary::Options ecf;
  ecf.r_cf = 6;
  ecf.seed = 6;
  World world = make_world(
      alg, random_initial_values(10, 128, 6),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          DetectorSpec::ZeroOAC(6),
          std::make_unique<FlakyMajorityPolicy>(0.9, 7)),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 300);
  EXPECT_TRUE(summary.verdict.solved());
}

TEST(Alg2, ToleratesCrashesIncludingActiveProcess) {
  Alg2Algorithm alg(32);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    WakeupService::Options ws;
    ws.r_wake = 20;
    EcfAdversary::Options ecf;
    ecf.r_cf = 20;
    ecf.seed = seed;
    RandomCrash::Options crash;
    crash.p = 0.04;
    crash.stop_after = 18;
    crash.seed = seed * 13;
    World world = make_world(
        alg, random_initial_values(9, 32, seed),
        std::make_unique<WakeupService>(ws),
        std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(20),
                                         make_truthful_policy()),
        std::make_unique<EcfAdversary>(ecf),
        std::make_unique<RandomCrash>(crash));
    const RunSummary summary = run_consensus(std::move(world), 400);
    EXPECT_TRUE(summary.verdict.agreement) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.strong_validity) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.termination) << "seed " << seed;
  }
}

TEST(Alg2, RunsOverConcreteBackoffContentionManager) {
  // Replace the abstract wake-up service with the concrete randomized
  // backoff protocol: safety is unconditional, liveness emerges once the
  // backoff locks onto a single broadcaster.
  Alg2Algorithm alg(64);
  EcfAdversary::Options ecf;
  ecf.r_cf = 1;
  ecf.seed = 8;
  World world = make_world(
      alg, random_initial_values(12, 64, 8),
      std::make_unique<BackoffCm>(BackoffCm::Options{.seed = 8}),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(1),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 2000);
  EXPECT_TRUE(summary.verdict.agreement);
  EXPECT_TRUE(summary.verdict.termination);
}

TEST(Alg2, StaysSafeUnderHalfAcPartition) {
  // Under the Lemma 23 composition adversary Algorithm 2 must NOT decide
  // during the partition -- deciding would violate agreement, as the
  // theorem's indistinguishability argument shows.  Its bit-broadcast
  // pattern detects the other group through the zero-complete reports.
  Alg2Algorithm alg(16);
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 3;
  config.value_b = 12;
  config.k = 30;
  config.spec = DetectorSpec::HalfAC();
  config.max_rounds = 300;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
  EXPECT_GT(outcome.summary.verdict.first_decision_round, config.k)
      << "no decision may precede the heal";
}

TEST(Alg2, BoundScalesLogarithmically) {
  // Doubling |V| adds 2 rounds to the bound: 2*(lg|V|+1).
  EXPECT_EQ(Alg2Algorithm::round_bound_after_cst(2), 4u);
  EXPECT_EQ(Alg2Algorithm::round_bound_after_cst(4), 6u);
  EXPECT_EQ(Alg2Algorithm::round_bound_after_cst(1024), 22u);
  EXPECT_EQ(Alg2Algorithm::round_bound_after_cst(1u << 20), 42u);
}

TEST(Alg2, SingleProcessDecidesAlone) {
  Alg2Algorithm alg(8);
  WakeupService::Options ws;
  ws.r_wake = 1;
  EcfAdversary::Options ecf;
  ecf.r_cf = 1;
  World world = make_world(
      alg, {5}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroOAC(1),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 100);
  ASSERT_TRUE(summary.verdict.solved());
  EXPECT_EQ(summary.verdict.decided_values[0], 5u);
}

}  // namespace
}  // namespace ccd
