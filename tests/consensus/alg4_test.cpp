// The non-anonymous Section 7.3 protocol: CST + O(min{lg|V|, lg|I|}), with
// leader-failure recovery.  Includes the reproduction of the literal
// decision rule's unsafety and the hardened rule's fix (see the header of
// consensus/alg4_non_anonymous.hpp).
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"

namespace ccd {
namespace {

/// Perfect channel except for an explicit per-round drop list; r_cf is the
/// round after the last drop, so ECF holds.
class ScriptedDropLoss final : public LossAdversary {
 public:
  struct Drop {
    Round round;
    std::uint32_t receiver;
    std::uint32_t sender;
  };
  ScriptedDropLoss(std::vector<Drop> drops, Round r_cf)
      : drops_(std::move(drops)), r_cf_(r_cf) {}

  void decide_delivery(Round round, const std::vector<bool>& sent,
                       DeliveryMatrix& out) override {
    const std::size_t n = sent.size();
    for (std::size_t j = 0; j < n; ++j) {
      if (!sent[j]) continue;
      for (std::size_t i = 0; i < n; ++i) out.set(i, j, true);
    }
    for (const Drop& d : drops_) {
      if (d.round == round) out.set(d.receiver, d.sender, false);
    }
  }
  Round r_cf() const override { return r_cf_; }
  const char* name() const override { return "ScriptedDropLoss"; }

 private:
  std::vector<Drop> drops_;
  Round r_cf_;
};

World alg4_world(const Alg4Algorithm& alg, std::vector<Value> initials,
                 std::unique_ptr<LossAdversary> loss,
                 std::unique_ptr<FailureAdversary> fault, Round cst = 1) {
  WakeupService::Options ws;
  ws.r_wake = cst;
  return make_world(alg, std::move(initials),
                    std::make_unique<WakeupService>(ws),
                    std::make_unique<OracleDetector>(
                        DetectorSpec::ZeroOAC(cst), make_truthful_policy()),
                    std::move(loss), std::move(fault));
}

TEST(Alg4, DirectModeWhenValuesFitIdSpace) {
  // |V| <= |I|: the protocol is exactly Algorithm 2 over the values.
  Alg4Algorithm alg(/*num_values=*/16, /*id_space=*/1 << 20);
  EcfAdversary::Options ecf;
  ecf.r_cf = 4;
  ecf.seed = 2;
  World world = alg4_world(alg, random_initial_values(6, 16, 2),
                           std::make_unique<EcfAdversary>(ecf),
                           std::make_unique<NoFailures>(), 4);
  const RunSummary summary = run_consensus(std::move(world), 200);
  EXPECT_TRUE(summary.verdict.solved());
  // Direct mode pays lg|V|, not lg|I|.
  EXPECT_LE(summary.rounds_after_cst, 2u * (4 + 1));
}

TEST(Alg4, LeaderModeDecidesFast) {
  // |V| >> |I|: elect on the 16-element ID space (lg = 4), then one
  // announce/confirm exchange -- O(lg|I|), not O(lg|V|).
  Alg4Algorithm alg(/*num_values=*/1 << 20, /*id_space=*/16);
  World world = alg4_world(alg, {5000, 70000, 123456, 999999},
                           std::make_unique<NoLoss>(),
                           std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 300);
  ASSERT_TRUE(summary.verdict.solved());
  // Leader is the min ID (process 0), announcing its own value.
  EXPECT_EQ(summary.verdict.decided_values[0], 5000u);
  // 6 election steps * 3 rounds/step + announce + veto + slack.
  EXPECT_LE(summary.verdict.last_decision_round, 30u);
}

TEST(Alg4, LeaderModeSurvivesCleanLeaderCrash) {
  // The benign failure pattern the paper considers: the leader dies before
  // ANY announcement.  Detection (silent phase 2) and re-election handle
  // it under both decision rules.
  for (const auto rule :
       {Alg4DecisionRule::kHardened, Alg4DecisionRule::kLiteral}) {
    Alg4Algorithm alg(1 << 20, 16, rule);
    // Election decides at round 16 (see timeline in the sibling test);
    // kill the leader before its first announcement at round 17.
    World world = alg4_world(
        alg, {100, 200, 300, 400}, std::make_unique<NoLoss>(),
        std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
            {17, 0, CrashPoint::kBeforeSend}}));
    const RunSummary summary = run_consensus(std::move(world), 500);
    EXPECT_TRUE(summary.verdict.agreement);
    EXPECT_TRUE(summary.verdict.strong_validity);
    EXPECT_TRUE(summary.verdict.termination);
    // The re-elected leader announces a survivor's value.
    EXPECT_NE(summary.verdict.decided_values[0], 100u);
  }
}

// ---- The partial-delivery crash: literal rule breaks, hardened holds ----
//
// Timeline (n = 4, ids 0..3, id space 16, election cycle = 6 election
// rounds at global rounds 1,4,7,10,13,16):
//   round 16  election decides leader = id 0
//   round 17  leader announces; the adversary delivers ONLY to process 1
//             (processes 2,3 get the zero-completeness-forced +- instead)
//   round 20  leader crashes before its re-announcement -> silent phase 2
//             -> survivors detect the failure and re-elect.
// Under the literal rule process 1 decided the leader's value at round 17
// and halted; the re-elected leader announces its OWN value -> violation.
// Under the hardened rule process 1 only ADOPTED the value; the re-elected
// leader (process 1, min alive id) re-announces the adopted value.

ScriptedDropLoss::Drop drop(Round r, std::uint32_t recv, std::uint32_t send) {
  return {r, recv, send};
}

TEST(Alg4, LiteralRuleViolatesAgreementUnderPartialDeliveryCrash) {
  Alg4Algorithm alg(1 << 20, 16, Alg4DecisionRule::kLiteral);
  World world = alg4_world(
      alg, {100, 200, 300, 400},
      std::make_unique<ScriptedDropLoss>(
          std::vector<ScriptedDropLoss::Drop>{drop(17, 2, 0), drop(17, 3, 0)},
          /*r_cf=*/21),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {20, 0, CrashPoint::kBeforeSend}}));
  const RunSummary summary = run_consensus(std::move(world), 500);
  EXPECT_FALSE(summary.verdict.agreement)
      << "the literal Section 7.3 rule should split the decision here";
  ASSERT_GE(summary.verdict.decided_values.size(), 2u);
  // Process 1 decided the dead leader's value...
  EXPECT_EQ(summary.verdict.decided_values[0], 100u);
  // ...while the survivors decided the new leader's value.
  EXPECT_EQ(summary.verdict.decided_values[1], 300u);
}

TEST(Alg4, HardenedRuleSurvivesPartialDeliveryCrash) {
  Alg4Algorithm alg(1 << 20, 16, Alg4DecisionRule::kHardened);
  World world = alg4_world(
      alg, {100, 200, 300, 400},
      std::make_unique<ScriptedDropLoss>(
          std::vector<ScriptedDropLoss::Drop>{drop(17, 2, 0), drop(17, 3, 0)},
          /*r_cf=*/21),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {20, 0, CrashPoint::kBeforeSend}}));
  const RunSummary summary = run_consensus(std::move(world), 500);
  EXPECT_TRUE(summary.verdict.agreement);
  EXPECT_TRUE(summary.verdict.termination);
  ASSERT_EQ(summary.verdict.decided_values.size(), 1u);
  // The adopted announcement (the dead leader's value) is re-broadcast by
  // the re-elected leader, preserving the possibly-decided value.
  EXPECT_EQ(summary.verdict.decided_values[0], 100u);
}

TEST(Alg4, HardenedSafeUnderRandomChaos) {
  // Fuzz: random loss before CST, spurious detector reports, random
  // crashes.  Safety must hold for every seed; termination whenever the
  // run ends with at least one correct process and stabilization happened.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Alg4Algorithm alg(1 << 16, 32);
    EcfAdversary::Options ecf;
    ecf.r_cf = 40;
    ecf.p_deliver = 0.6;
    ecf.seed = seed;
    RandomCrash::Options crash;
    crash.p = 0.01;
    crash.stop_after = 35;
    crash.seed = seed * 3;
    WakeupService::Options ws;
    ws.r_wake = 40;
    World world = make_world(
        alg, random_initial_values(8, 1 << 16, seed),
        std::make_unique<WakeupService>(ws),
        std::make_unique<OracleDetector>(
            DetectorSpec::ZeroOAC(40),
            std::make_unique<SpuriousPolicy>(0.2, 40, seed * 5)),
        std::make_unique<EcfAdversary>(ecf),
        std::make_unique<RandomCrash>(crash));
    const RunSummary summary = run_consensus(std::move(world), 1500);
    EXPECT_TRUE(summary.verdict.agreement) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.strong_validity) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.termination) << "seed " << seed;
  }
}

TEST(Alg4, ScalesWithMinOfLogVLogI) {
  // Leader mode beats direct Algorithm 2 once |I| << |V|: compare decision
  // rounds on a huge value space with a tiny ID space.
  Alg4Algorithm small_ids(1ull << 40, 16);
  World w1 = alg4_world(small_ids, {1ull << 35, 1ull << 36, 7, 9},
                        std::make_unique<NoLoss>(),
                        std::make_unique<NoFailures>());
  const RunSummary leader_mode = run_consensus(std::move(w1), 500);
  ASSERT_TRUE(leader_mode.verdict.solved());

  Alg4Algorithm huge_ids(1ull << 40, 1ull << 60);  // direct mode
  World w2 = alg4_world(huge_ids, {1ull << 35, 1ull << 36, 7, 9},
                        std::make_unique<NoLoss>(),
                        std::make_unique<NoFailures>());
  const RunSummary direct_mode = run_consensus(std::move(w2), 500);
  ASSERT_TRUE(direct_mode.verdict.solved());

  // lg|I| = 4 vs lg|V| = 40: the election path is much faster.
  EXPECT_LT(leader_mode.verdict.last_decision_round,
            direct_mode.verdict.last_decision_round);
}

}  // namespace
}  // namespace ccd
