// Algorithm 1 (maj-<>AC, WS, ECF): Theorem 1 says consensus is solved and
// every correct process decides by CST + 2, for ANY legal detector in
// maj-<>AC, any wake-up service, any ECF loss pattern and any crash
// pattern.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "lowerbound/composition.hpp"
#include "net/capture_effect.hpp"
#include "net/ecf_adversary.hpp"

namespace ccd {
namespace {

struct Alg1Params {
  std::size_t n;
  std::uint64_t num_values;
  Round cst_target;
  std::uint64_t seed;
};

class Alg1Sweep : public ::testing::TestWithParam<Alg1Params> {};

TEST_P(Alg1Sweep, DecidesByCstPlusTwo) {
  const Alg1Params p = GetParam();
  Alg1Algorithm alg;

  WakeupService::Options ws;
  ws.r_wake = p.cst_target;
  ws.pre = WakeupService::PreStabilization::kRandomSubset;
  ws.post = WakeupService::PostStabilization::kRotateAlive;
  ws.seed = p.seed;

  EcfAdversary::Options ecf;
  ecf.r_cf = p.cst_target;
  ecf.pre = EcfAdversary::PreMode::kCapture;
  ecf.contention = EcfAdversary::ContentionMode::kCapture;
  ecf.seed = p.seed + 1;

  World world = make_world(
      alg, random_initial_values(p.n, p.num_values, p.seed + 2),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          DetectorSpec::MajOAC(p.cst_target),
          std::make_unique<SpuriousPolicy>(0.4, p.cst_target, p.seed + 3)),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());

  const RunSummary summary =
      run_consensus(std::move(world), p.cst_target + 50);
  EXPECT_TRUE(summary.verdict.solved());
  EXPECT_LE(summary.rounds_after_cst, 2u)
      << "Theorem 1 bound violated (CST=" << summary.cst << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg1Sweep,
    ::testing::Values(Alg1Params{2, 2, 1, 11}, Alg1Params{2, 2, 9, 12},
                      Alg1Params{4, 8, 1, 13}, Alg1Params{4, 8, 17, 14},
                      Alg1Params{8, 1024, 5, 15},
                      Alg1Params{16, 1u << 16, 25, 16},
                      Alg1Params{32, 3, 40, 17}, Alg1Params{64, 7, 12, 18},
                      Alg1Params{5, 5, 33, 19}, Alg1Params{23, 100, 8, 20}));

TEST(Alg1, ToleratesCrashes) {
  Alg1Algorithm alg;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    WakeupService::Options ws;
    ws.r_wake = 30;
    EcfAdversary::Options ecf;
    ecf.r_cf = 30;
    ecf.seed = seed;
    RandomCrash::Options crash;
    crash.p = 0.05;
    crash.stop_after = 25;
    crash.seed = seed * 7;

    World world = make_world(
        alg, random_initial_values(10, 64, seed),
        std::make_unique<WakeupService>(ws),
        std::make_unique<OracleDetector>(DetectorSpec::MajOAC(30),
                                         make_truthful_policy()),
        std::make_unique<EcfAdversary>(ecf),
        std::make_unique<RandomCrash>(crash));
    const RunSummary summary = run_consensus(std::move(world), 200);
    EXPECT_TRUE(summary.verdict.agreement) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.strong_validity) << "seed " << seed;
    EXPECT_TRUE(summary.verdict.termination) << "seed " << seed;
  }
}

TEST(Alg1, UniformValidityWhenAllStartEqual) {
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 5;
  EcfAdversary::Options ecf;
  ecf.r_cf = 5;
  World world = make_world(
      alg, std::vector<Value>(6, 42),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajOAC(5),
                                       make_truthful_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 100);
  ASSERT_TRUE(summary.verdict.solved());
  ASSERT_EQ(summary.verdict.decided_values.size(), 1u);
  EXPECT_EQ(summary.verdict.decided_values[0], 42u);
}

TEST(Alg1, SafeUnderAdversarialPreferCollisionDetector) {
  // A maximally noisy (but legal) maj-<>AC detector can only delay
  // Algorithm 1, never break it.
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 12;
  EcfAdversary::Options ecf;
  ecf.r_cf = 12;
  World world = make_world(
      alg, split_initial_values(8, 3, 9),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::MajOAC(12),
                                       make_prefer_collision_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 100);
  EXPECT_TRUE(summary.verdict.solved());
  EXPECT_LE(summary.rounds_after_cst, 2u);
}

// ---- The majority/half boundary (Lemma 5 vs Lemma 23) ------------------

TEST(Alg1, ViolatesAgreementUnderHalfCompleteDetector) {
  // Algorithm 1 REQUIRES majority completeness.  Handing it a merely
  // half-complete detector lets the Lemma 23 adversary partition the
  // network into two groups that each decide their own value: the
  // "exactly half received" rounds pass unreported.
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 1;
  config.value_b = 2;
  config.k = 20;
  config.spec = DetectorSpec::HalfAC();
  config.max_rounds = 100;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.groups_disagree)
      << "expected the half-AC adversary to split the decision";
  EXPECT_FALSE(outcome.summary.verdict.agreement);
  // The split happens fast: both groups decide by round 2 (the first
  // proposal/veto cycle), well inside the partition window.
  EXPECT_LE(outcome.group_a_last_decision, config.k);
  EXPECT_LE(outcome.group_b_last_decision, config.k);
}

TEST(Alg1, SameAdversaryIsHarmlessWithMajorityCompleteness) {
  // Identical execution, but the detector must satisfy MAJORITY
  // completeness: the one extra forced report (exactly half lost) blocks
  // every premature decision, and agreement survives the partition.
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 1;
  config.value_b = 2;
  config.k = 20;
  config.spec = DetectorSpec::MajAC();
  config.max_rounds = 300;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
  // No decision can precede the heal: the groups are indistinguishable
  // from their solo executions until round k.
  EXPECT_GT(outcome.summary.verdict.first_decision_round, config.k);
}

TEST(Alg1, NeverTerminatesWithNoCdDetector) {
  // Theorem 4's liveness half: with a NoCD detector (always +-) the decide
  // guard can never pass, so Algorithm 1 simply never decides.
  Alg1Algorithm alg;
  WakeupService::Options ws;
  ws.r_wake = 1;
  EcfAdversary::Options ecf;
  ecf.r_cf = 1;
  World world = make_world(
      alg, random_initial_values(4, 4, 3),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<EcfAdversary>(ecf), std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 500);
  EXPECT_FALSE(summary.verdict.termination);
  EXPECT_TRUE(summary.verdict.decided_values.empty());
}

}  // namespace
}  // namespace ccd
