// White-box tests for Alg2Core: the prepare/propose/accept phase machine
// that both Algorithm 2 and the Section 7.3 election embed.
#include <gtest/gtest.h>

#include "consensus/alg2_zero_oac.hpp"

namespace ccd {
namespace {

constexpr auto kActive = CmAdvice::kActive;
constexpr auto kPassive = CmAdvice::kPassive;
constexpr auto kNull = CdAdvice::kNull;
constexpr auto kColl = CdAdvice::kCollision;

std::vector<Message> no_messages() { return {}; }

TEST(Alg2Core, PrepareBroadcastsEstimateWhenActive) {
  Alg2Core core(16, 9);
  const auto msg = core.step_send(kActive);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, Message::Kind::kEstimate);
  EXPECT_EQ(msg->value, 9u);
}

TEST(Alg2Core, PrepareSilentWhenPassiveOrMuted) {
  Alg2Core a(16, 9), b(16, 9);
  EXPECT_FALSE(a.step_send(kPassive).has_value());
  EXPECT_FALSE(b.step_send(kActive, /*muted=*/true).has_value());
}

TEST(Alg2Core, PrepareAdoptsMinimumReceived) {
  Alg2Core core(16, 9);
  core.step_send(kPassive);
  std::vector<Message> recv = {{Message::Kind::kEstimate, 12, 0},
                               {Message::Kind::kEstimate, 4, 0}};
  core.step_receive(recv, kNull);
  EXPECT_EQ(core.estimate(), 4u);
}

TEST(Alg2Core, PrepareIgnoresReceivedOnCollision) {
  Alg2Core core(16, 9);
  core.step_send(kPassive);
  std::vector<Message> recv = {{Message::Kind::kEstimate, 4, 0}};
  core.step_receive(recv, kColl);
  EXPECT_EQ(core.estimate(), 9u);  // line 11's guard
}

TEST(Alg2Core, ProposeBroadcastsExactlyOnOneBits) {
  // estimate 0b1010 over |V| = 16: broadcast in propose rounds 1 and 3.
  Alg2Core core(16, 0b1010);
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);  // through prepare
  std::vector<bool> pattern;
  for (int bit = 1; bit <= 4; ++bit) {
    pattern.push_back(core.step_send(kPassive).has_value());
    core.step_receive(no_messages(), kNull);
  }
  EXPECT_EQ(pattern, (std::vector<bool>{true, false, true, false}));
}

TEST(Alg2Core, HearingOnZeroBitClearsDecideFlag) {
  Alg2Core core(4, 0b00);  // both bits zero: always listening
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);  // prepare (nothing heard)
  core.step_send(kPassive);
  std::vector<Message> veto = {{Message::Kind::kVeto, 0, 0}};
  core.step_receive(veto, kNull);  // propose bit 1: heard someone
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);  // propose bit 2
  // Accept: decide flag cleared => broadcasts a veto.
  EXPECT_TRUE(core.step_send(kPassive).has_value());
  core.step_receive(veto, kNull);  // hears own veto: no decision
  EXPECT_FALSE(core.decided());
}

TEST(Alg2Core, CollisionOnZeroBitAlsoClears) {
  Alg2Core core(4, 0b00);
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);
  core.step_send(kPassive);
  core.step_receive(no_messages(), kColl);  // collision counts as hearing
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);
  EXPECT_TRUE(core.step_send(kPassive).has_value());  // veto in accept
}

TEST(Alg2Core, CleanCycleDecides) {
  Alg2Core core(4, 0b10);
  // prepare: hears own broadcast.
  auto m = core.step_send(kActive);
  ASSERT_TRUE(m.has_value());
  std::vector<Message> own = {*m};
  core.step_receive(own, kNull);
  // propose bit 1 (one): broadcasts, hears itself -- fine, it's a 1 bit.
  m = core.step_send(kPassive);
  ASSERT_TRUE(m.has_value());
  own = {*m};
  core.step_receive(own, kNull);
  // propose bit 2 (zero): silence.
  EXPECT_FALSE(core.step_send(kPassive).has_value());
  core.step_receive(no_messages(), kNull);
  // accept: no veto, silence, decide.
  EXPECT_FALSE(core.step_send(kPassive).has_value());
  core.step_receive(no_messages(), kNull);
  ASSERT_TRUE(core.decided());
  EXPECT_EQ(core.decision(), 0b10u);
}

TEST(Alg2Core, CollisionInAcceptBlocksDecision) {
  Alg2Core core(4, 0b10);
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);
  for (int bit = 0; bit < 2; ++bit) {
    core.step_send(kPassive);
    core.step_receive(no_messages(), kNull);
  }
  core.step_send(kPassive);
  core.step_receive(no_messages(), kColl);  // accept with spurious +-
  EXPECT_FALSE(core.decided());
  // Next round is prepare again: cycle restarted.
  EXPECT_TRUE(core.in_prepare());
}

TEST(Alg2Core, ResetRestartsCleanly) {
  Alg2Core core(16, 3);
  core.step_send(kActive);
  std::vector<Message> recv = {{Message::Kind::kEstimate, 1, 0}};
  core.step_receive(recv, kNull);
  EXPECT_FALSE(core.in_prepare());
  core.reset(14);
  EXPECT_TRUE(core.in_prepare());
  EXPECT_EQ(core.estimate(), 14u);
  EXPECT_FALSE(core.decided());
}

TEST(Alg2Core, TaggedMessagesCarryTag) {
  Alg2Core core(16, 3, Message::Kind::kEstimate, /*tag=*/42);
  const auto msg = core.step_send(kActive);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 42u);
}

TEST(Alg2Core, SingletonValueSpaceStillCycles) {
  Alg2Core core(1, 0);
  core.step_send(kActive);
  std::vector<Message> own = {{Message::Kind::kEstimate, 0, 0}};
  core.step_receive(own, kNull);
  // width forced to 1: one propose round (bit of 0 is 0, silent).
  EXPECT_FALSE(core.step_send(kPassive).has_value());
  core.step_receive(no_messages(), kNull);
  core.step_send(kPassive);
  core.step_receive(no_messages(), kNull);  // accept
  EXPECT_TRUE(core.decided());
  EXPECT_EQ(core.decision(), 0u);
}

}  // namespace
}  // namespace ccd
