#include "consensus/checker.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

ExecutionLog log_with(std::size_t n, std::vector<DecisionRecord> decisions,
                      std::vector<CrashRecord> crashes = {}) {
  ExecutionLog log(n, /*record_views=*/false);
  for (const auto& d : decisions) log.record_decision(d.process, d.round, d.value);
  for (const auto& c : crashes) log.record_crash(c.process, c.round);
  return log;
}

TEST(Checker, SolvedWhenAllAgree) {
  auto log = log_with(3, {{0, 4, 7}, {1, 4, 7}, {2, 5, 7}});
  const auto verdict = check_consensus(log, {7, 9, 7});
  EXPECT_TRUE(verdict.solved());
  EXPECT_EQ(verdict.first_decision_round, 4u);
  EXPECT_EQ(verdict.last_decision_round, 5u);
}

TEST(Checker, AgreementViolationDetected) {
  auto log = log_with(2, {{0, 1, 3}, {1, 1, 4}});
  const auto verdict = check_consensus(log, {3, 4});
  EXPECT_FALSE(verdict.agreement);
  EXPECT_FALSE(verdict.solved());
  EXPECT_EQ(verdict.decided_values.size(), 2u);
}

TEST(Checker, StrongValidityViolationDetected) {
  auto log = log_with(2, {{0, 1, 99}, {1, 1, 99}});
  const auto verdict = check_consensus(log, {3, 4});
  EXPECT_TRUE(verdict.agreement);
  EXPECT_FALSE(verdict.strong_validity);
}

TEST(Checker, UniformValidityOnlyBindsWhenAllEqual) {
  // All start with 5 but decide 6 (some process's value... no, 6 is not
  // any initial value here, but uniform validity is the property that
  // fires first).
  auto log = log_with(2, {{0, 1, 6}, {1, 1, 6}});
  const auto verdict = check_consensus(log, {5, 5});
  EXPECT_FALSE(verdict.uniform_validity);
  // Mixed initial values: uniform validity is vacuous.
  const auto verdict2 = check_consensus(log, {5, 6});
  EXPECT_TRUE(verdict2.uniform_validity);
}

TEST(Checker, TerminationIgnoresCrashedProcesses) {
  auto log = log_with(3, {{0, 2, 1}, {2, 3, 1}}, {{1, 1}});
  const auto verdict = check_consensus(log, {1, 1, 1});
  EXPECT_TRUE(verdict.termination);  // process 1 crashed; others decided
}

TEST(Checker, MissingCorrectDecisionFailsTermination) {
  auto log = log_with(3, {{0, 2, 1}});
  const auto verdict = check_consensus(log, {1, 1, 1});
  EXPECT_FALSE(verdict.termination);
  EXPECT_FALSE(verdict.solved());
}

TEST(Checker, CrashedDeciderStillCountsForAgreement) {
  // A process that decided v then crashed binds all later decisions.
  auto log = log_with(2, {{0, 1, 3}, {1, 9, 4}}, {{0, 2}});
  const auto verdict = check_consensus(log, {3, 4});
  EXPECT_FALSE(verdict.agreement);
}

TEST(Checker, LastDecisionRoundExcludesCrashedDeciders) {
  auto log = log_with(2, {{0, 8, 3}, {1, 2, 3}}, {{0, 9}});
  const auto verdict = check_consensus(log, {3, 3});
  // Process 0 decided at 8 but later crashed; the bound tracked for the
  // theorems is over correct processes.
  EXPECT_EQ(verdict.last_decision_round, 2u);
}

TEST(Checker, NoDecisionsAtAll) {
  auto log = log_with(2, {});
  const auto verdict = check_consensus(log, {1, 2});
  EXPECT_TRUE(verdict.agreement);  // vacuously
  EXPECT_FALSE(verdict.termination);
  EXPECT_TRUE(verdict.decided_values.empty());
}

}  // namespace
}  // namespace ccd
