// Cross-cutting property sweeps: SAFETY (agreement + strong validity) must
// hold for every algorithm under EVERY legal combination of detector
// policy, loss adversary, contention schedule, crash schedule and seed --
// even combinations under which liveness is forfeited.  This is the
// paper's safety/liveness separation (Section 1.3): the contention manager
// and the stabilization assumptions are liveness-only.
#include <gtest/gtest.h>

#include <memory>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/capture_effect.hpp"
#include "net/ecf_adversary.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

constexpr std::uint64_t kNumValues = 64;

enum class AlgKind { kAlg1, kAlg2, kAlg4 };
enum class LossKind { kEcfCapture, kEcfRandom, kCaptureEffect, kProbabilistic };
enum class PolicyKind { kTruthful, kPreferNull, kPreferCollision, kSpurious,
                        kRandomLegal };

struct SafetyParams {
  AlgKind alg;
  LossKind loss;
  PolicyKind policy;
  std::uint64_t seed;
};

std::unique_ptr<ConsensusAlgorithm> make_algorithm(AlgKind kind) {
  switch (kind) {
    case AlgKind::kAlg1:
      return std::make_unique<Alg1Algorithm>();
    case AlgKind::kAlg2:
      return std::make_unique<Alg2Algorithm>(kNumValues);
    case AlgKind::kAlg4:
      return std::make_unique<Alg4Algorithm>(kNumValues, 1 << 10);
  }
  return nullptr;
}

// Each algorithm is exercised against the weakest detector CLASS its
// theorem admits; policies then roam that class's envelope.
DetectorSpec spec_for(AlgKind kind, Round r_acc) {
  switch (kind) {
    case AlgKind::kAlg1:
      return DetectorSpec::MajOAC(r_acc);
    case AlgKind::kAlg2:
    case AlgKind::kAlg4:
      return DetectorSpec::ZeroOAC(r_acc);
  }
  return DetectorSpec::AC();
}

std::unique_ptr<AdvicePolicy> make_policy(PolicyKind kind, Round r_acc,
                                          std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kTruthful:
      return make_truthful_policy();
    case PolicyKind::kPreferNull:
      return make_prefer_null_policy();
    case PolicyKind::kPreferCollision:
      return make_prefer_collision_policy();
    case PolicyKind::kSpurious:
      return std::make_unique<SpuriousPolicy>(0.5, r_acc, seed);
    case PolicyKind::kRandomLegal:
      return std::make_unique<RandomLegalPolicy>(seed);
  }
  return nullptr;
}

std::unique_ptr<LossAdversary> make_loss(LossKind kind, Round r_cf,
                                         std::uint64_t seed) {
  switch (kind) {
    case LossKind::kEcfCapture: {
      EcfAdversary::Options o;
      o.r_cf = r_cf;
      o.pre = EcfAdversary::PreMode::kCapture;
      o.contention = EcfAdversary::ContentionMode::kCapture;
      o.seed = seed;
      return std::make_unique<EcfAdversary>(o);
    }
    case LossKind::kEcfRandom: {
      EcfAdversary::Options o;
      o.r_cf = r_cf;
      o.pre = EcfAdversary::PreMode::kRandom;
      o.contention = EcfAdversary::ContentionMode::kRandom;
      o.p_deliver = 0.4;
      o.seed = seed;
      return std::make_unique<EcfAdversary>(o);
    }
    case LossKind::kCaptureEffect: {
      CaptureEffectLoss::Options o;
      o.r_cf = r_cf;
      o.seed = seed;
      return std::make_unique<CaptureEffectLoss>(o);
    }
    case LossKind::kProbabilistic: {
      ProbabilisticLoss::Options o;
      o.p_deliver = 0.5;
      o.r_cf = r_cf;
      o.seed = seed;
      return std::make_unique<ProbabilisticLoss>(o);
    }
  }
  return nullptr;
}

class SafetySweep : public ::testing::TestWithParam<SafetyParams> {};

TEST_P(SafetySweep, SafetyHoldsAndEcfRunsTerminate) {
  const SafetyParams p = GetParam();
  const Round stabilize = 25;
  auto algorithm = make_algorithm(p.alg);

  WakeupService::Options ws;
  ws.r_wake = stabilize;
  ws.pre = WakeupService::PreStabilization::kRandomSubset;
  ws.seed = p.seed;

  RandomCrash::Options crash;
  crash.p = 0.01;
  crash.stop_after = stabilize - 2;
  crash.seed = p.seed * 17;

  World world = make_world(
      *algorithm, random_initial_values(8, kNumValues, p.seed),
      std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(
          spec_for(p.alg, stabilize),
          make_policy(p.policy, stabilize, p.seed * 29)),
      make_loss(p.loss, stabilize, p.seed * 31),
      std::make_unique<RandomCrash>(crash));

  const RunSummary summary = run_consensus(std::move(world), 3000);
  EXPECT_TRUE(summary.verdict.agreement)
      << algorithm->name() << " seed=" << p.seed;
  EXPECT_TRUE(summary.verdict.strong_validity)
      << algorithm->name() << " seed=" << p.seed;
  // All four loss kinds used here satisfy ECF with r_cf = stabilize, all
  // policies respect the class envelope, and the wake-up service
  // stabilizes -- so the theorems ALSO promise termination.
  EXPECT_TRUE(summary.verdict.termination)
      << algorithm->name() << " seed=" << p.seed;
}

std::vector<SafetyParams> sweep_matrix() {
  std::vector<SafetyParams> params;
  for (AlgKind alg : {AlgKind::kAlg1, AlgKind::kAlg2, AlgKind::kAlg4}) {
    for (LossKind loss :
         {LossKind::kEcfCapture, LossKind::kEcfRandom,
          LossKind::kCaptureEffect, LossKind::kProbabilistic}) {
      for (PolicyKind policy :
           {PolicyKind::kTruthful, PolicyKind::kPreferNull,
            PolicyKind::kPreferCollision, PolicyKind::kSpurious,
            PolicyKind::kRandomLegal}) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
          params.push_back({alg, loss, policy, seed});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SafetySweep,
                         ::testing::ValuesIn(sweep_matrix()));

// Algorithm 3 has its own matrix: NoCF loss, always-accurate detector.
class Alg3SafetySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Alg3SafetySweep, SolvedUnderAnyNocfLoss) {
  const auto [loss_kind, seed] = GetParam();
  Alg3Algorithm alg(kNumValues);
  std::unique_ptr<LossAdversary> loss;
  if (loss_kind == 0) {
    loss = std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
        UnrestrictedLoss::Mode::kDropOthers, 0.0, seed});
  } else if (loss_kind == 1) {
    loss = std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
        UnrestrictedLoss::Mode::kRandom, 0.3, seed});
  } else {
    loss = std::make_unique<ProbabilisticLoss>(ProbabilisticLoss::Options{
        0.6, kNeverRound, seed});
  }
  RandomCrash::Options crash;
  crash.p = 0.02;
  crash.stop_after = 30;
  crash.seed = seed * 11;
  World world = make_world(
      alg, random_initial_values(6, kNumValues, seed),
      std::make_unique<NoCm>(),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                       make_truthful_policy()),
      std::move(loss), std::make_unique<RandomCrash>(crash));
  const RunSummary summary = run_consensus(std::move(world), 2000);
  EXPECT_TRUE(summary.verdict.agreement) << "seed " << seed;
  EXPECT_TRUE(summary.verdict.strong_validity) << "seed " << seed;
  EXPECT_TRUE(summary.verdict.termination) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Alg3SafetySweep,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

// Anonymity self-check: anonymous algorithms must behave identically under
// identifier relabeling (Lemma 20's premise).  We run the same world twice
// with different id_base offsets; anonymous algorithms never read the id,
// so the executions must produce identical decisions at identical rounds.
class AnonymitySweep : public ::testing::TestWithParam<int> {};

TEST_P(AnonymitySweep, DecisionsInvariantUnderRelabeling) {
  const int which = GetParam();
  std::unique_ptr<ConsensusAlgorithm> alg =
      which == 0 ? std::unique_ptr<ConsensusAlgorithm>(
                       std::make_unique<Alg1Algorithm>())
      : which == 1 ? std::unique_ptr<ConsensusAlgorithm>(
                         std::make_unique<Alg2Algorithm>(kNumValues))
                   : std::unique_ptr<ConsensusAlgorithm>(
                         std::make_unique<Alg3Algorithm>(kNumValues));
  ASSERT_TRUE(alg->anonymous());

  auto build = [&](std::uint64_t id_base) {
    WakeupService::Options ws;
    ws.r_wake = 6;
    EcfAdversary::Options ecf;
    ecf.r_cf = 6;
    ecf.seed = 99;  // identical loss randomness in both runs
    return make_world(*alg, random_initial_values(5, kNumValues, 4),
                      std::make_unique<WakeupService>(ws),
                      std::make_unique<OracleDetector>(
                          DetectorSpec::ZeroOAC(6), make_truthful_policy()),
                      std::make_unique<EcfAdversary>(ecf),
                      std::make_unique<NoFailures>(), id_base);
  };
  const RunSummary a = run_consensus(build(0), 2000);
  const RunSummary b = run_consensus(build(1'000'000), 2000);
  EXPECT_EQ(a.verdict.decided_values, b.verdict.decided_values);
  EXPECT_EQ(a.verdict.last_decision_round, b.verdict.last_decision_round);
}

INSTANTIATE_TEST_SUITE_P(AnonAlgs, AnonymitySweep, ::testing::Range(0, 3));

}  // namespace
}  // namespace ccd
