// The naive no-detector protocol: behaviourally correct in friendly
// conditions, provably breakable -- the Theorem 4 foil.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/harness.hpp"
#include "consensus/naive_no_cd.hpp"
#include "fault/failure_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/partition_adversary.hpp"

namespace ccd {
namespace {

TEST(NaiveNoCd, WorksOnAPerfectChannel) {
  NaiveNoCdAlgorithm alg(/*patience=*/50);
  WakeupService::Options ws;
  ws.r_wake = 1;
  World world = make_world(
      alg, {4, 9, 9}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 100);
  EXPECT_TRUE(s.verdict.solved());
  // Everyone decides the leader's (process 0's) value.
  EXPECT_EQ(s.verdict.decided_values[0], 4u);
}

TEST(NaiveNoCd, TimesOutToOwnValueInIsolation) {
  NaiveNoCdAlgorithm alg(/*patience=*/10);
  WakeupService::Options ws;
  ws.r_wake = 1;
  ws.pre = WakeupService::PreStabilization::kAllPassive;
  // Partition that never heals and never delivers: patience expires.
  World world = make_world(
      alg, {4, 9}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<PartitionAdversary>(
          PartitionAdversary::Options{1, kNeverRound}),
      std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 100);
  // Both decide... their own values: agreement violated.  This is the
  // forced trade-off of Theorem 4: without detection, a timeout is the
  // only way to terminate, and timeouts guess wrong.
  EXPECT_TRUE(s.verdict.termination);
  EXPECT_FALSE(s.verdict.agreement);
}

TEST(NaiveNoCd, UniformValidityHolds) {
  NaiveNoCdAlgorithm alg(5);
  WakeupService::Options ws;
  World world = make_world(
      alg, {6, 6, 6, 6}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 100);
  ASSERT_TRUE(s.verdict.termination);
  EXPECT_TRUE(s.verdict.uniform_validity);
  EXPECT_EQ(s.verdict.decided_values[0], 6u);
}

TEST(NaiveNoCd, DecidesMinimumOfSimultaneousProposals) {
  NaiveNoCdAlgorithm alg(50);
  WakeupService::Options ws;
  ws.r_wake = 100;  // never stabilizes within the run: everyone active
  World world = make_world(
      alg, {8, 3, 5}, std::make_unique<WakeupService>(ws),
      std::make_unique<OracleDetector>(DetectorSpec::NoCD(),
                                       make_prefer_null_policy()),
      std::make_unique<NoLoss>(), std::make_unique<NoFailures>());
  const RunSummary s = run_consensus(std::move(world), 100);
  ASSERT_TRUE(s.verdict.termination);
  ASSERT_EQ(s.verdict.decided_values.size(), 1u);
  EXPECT_EQ(s.verdict.decided_values[0], 3u);
}

}  // namespace
}  // namespace ccd
