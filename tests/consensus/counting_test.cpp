// The Section 4.1 remark, executable: anonymous counting works with a
// k-wake-up service and fails with a leader election service.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/k_wakeup.hpp"
#include "cm/leader_election.hpp"
#include "consensus/counting.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "sim/executor.hpp"

namespace ccd {
namespace {

World counting_world(std::size_t n, std::unique_ptr<ContentionManager> cm) {
  World w;
  for (std::size_t i = 0; i < n; ++i) {
    w.processes.push_back(std::make_unique<CountingProcess>());
    w.initial_values.push_back(0);
  }
  w.cm = std::move(cm);
  w.cd = std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                          make_truthful_policy());
  EcfAdversary::Options ecf;
  ecf.r_cf = 1;
  w.loss = std::make_unique<EcfAdversary>(ecf);
  w.fault = std::make_unique<NoFailures>();
  return w;
}

std::vector<std::uint64_t> run_counting(World world, Round rounds) {
  ExecutorOptions options;
  options.record_views = false;
  options.stop_when_all_decided = false;
  Executor executor(std::move(world), options);
  for (Round r = 0; r < rounds; ++r) executor.step();
  std::vector<std::uint64_t> counts;
  for (const auto& p : executor.world().processes) {
    counts.push_back(static_cast<const CountingProcess&>(*p).count());
  }
  return counts;
}

class KWakeupCounting
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KWakeupCounting, EveryProcessConvergesToN) {
  const auto [ni, ki] = GetParam();
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::uint32_t>(ki);
  KWakeupService::Options opts;
  opts.r_wake = 1;
  opts.k = k;
  KWakeupService reference(opts);
  const Round needed = reference.rotation_complete(n) + 2;
  auto counts = run_counting(
      counting_world(n, std::make_unique<KWakeupService>(opts)), needed);
  for (std::uint64_t c : counts) EXPECT_EQ(c, n) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KWakeupCounting,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 9,
                                                              17),
                                            ::testing::Values(1, 2, 4)));

TEST(KWakeupCounting, CountStaysStableAfterRotation) {
  KWakeupService::Options opts;
  opts.r_wake = 1;
  opts.k = 2;
  auto counts = run_counting(
      counting_world(6, std::make_unique<KWakeupService>(opts)), 200);
  for (std::uint64_t c : counts) EXPECT_EQ(c, 6u);
}

TEST(LeaderElectionCounting, UndercountsForever) {
  // The leader election service never schedules anyone but the leader: a
  // network of 6 anonymous processes is indistinguishable from a network
  // of 1, so every counter sticks at 1 -- the impossibility half of the
  // remark.
  LeaderElectionService::Options opts;
  opts.r_lead = 1;
  opts.pre_all_active = false;
  auto counts = run_counting(
      counting_world(6, std::make_unique<LeaderElectionService>(opts)), 300);
  for (std::uint64_t c : counts) EXPECT_EQ(c, 1u);
}

TEST(KWakeupService, RotationScheduleIsFair) {
  KWakeupService::Options opts;
  opts.r_wake = 1;
  opts.k = 3;
  KWakeupService cm(opts);
  std::vector<bool> alive(4, true);
  std::vector<CmAdvice> advice;
  std::vector<int> windows(4, 0);
  for (Round r = 1; r <= 24; ++r) {  // two full rotations
    cm.advise(r, alive, advice);
    int active = -1, count = 0;
    for (int i = 0; i < 4; ++i) {
      if (advice[i] == CmAdvice::kActive) {
        active = i;
        ++count;
      }
    }
    ASSERT_EQ(count, 1);
    ++windows[active];
  }
  for (int w : windows) EXPECT_EQ(w, 6);  // 2 rotations x k = 3
}

TEST(KWakeupService, NonRepeatingVariantGoesQuiet) {
  KWakeupService::Options opts;
  opts.r_wake = 1;
  opts.k = 1;
  opts.repeat = false;
  KWakeupService cm(opts);
  std::vector<bool> alive(3, true);
  std::vector<CmAdvice> advice;
  cm.advise(4, alive, advice);  // past the 3-round rotation
  for (CmAdvice a : advice) EXPECT_EQ(a, CmAdvice::kPassive);
}

}  // namespace
}  // namespace ccd
