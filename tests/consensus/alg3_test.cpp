// Algorithm 3 (0-AC, NoCM, NOCF): Theorem 3 says consensus is solved in
// executions with NO delivery guarantee whatsoever, within 8*lg|V| rounds
// after failures cease.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"
#include "util/bitcodec.hpp"

namespace ccd {
namespace {

World alg3_world(const Alg3Algorithm& alg, std::vector<Value> initials,
                 std::unique_ptr<LossAdversary> loss,
                 std::unique_ptr<FailureAdversary> fault) {
  return make_world(alg, std::move(initials), std::make_unique<NoCm>(),
                    std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                                     make_truthful_policy()),
                    std::move(loss), std::move(fault));
}

struct Alg3Params {
  std::size_t n;
  std::uint64_t num_values;
  std::uint64_t seed;
};

class Alg3Sweep : public ::testing::TestWithParam<Alg3Params> {};

TEST_P(Alg3Sweep, FailureFreeRunsDecideWithinBound) {
  const Alg3Params p = GetParam();
  Alg3Algorithm alg(p.num_values);
  UnrestrictedLoss::Options loss;
  loss.mode = UnrestrictedLoss::Mode::kDropOthers;
  World world = alg3_world(alg,
                           random_initial_values(p.n, p.num_values, p.seed),
                           std::make_unique<UnrestrictedLoss>(loss),
                           std::make_unique<NoFailures>());
  const Round bound = alg.round_bound_after_failures(p.num_values);
  const RunSummary summary = run_consensus(std::move(world), bound + 10);
  EXPECT_TRUE(summary.verdict.agreement);
  EXPECT_TRUE(summary.verdict.strong_validity);
  EXPECT_TRUE(summary.verdict.termination);
  EXPECT_LE(summary.verdict.last_decision_round, bound)
      << "|V|=" << p.num_values;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg3Sweep,
    ::testing::Values(Alg3Params{2, 2, 31}, Alg3Params{4, 4, 32},
                      Alg3Params{4, 16, 33}, Alg3Params{8, 64, 34},
                      Alg3Params{8, 100, 35}, Alg3Params{16, 1024, 36},
                      Alg3Params{32, 1u << 14, 37}, Alg3Params{3, 7, 38},
                      Alg3Params{6, 1u << 20, 39}, Alg3Params{24, 17, 40}));

TEST(Alg3, DecidesMinimumValueFailureFree) {
  // The tree walk tests vote-val, then prefers left: the smallest initial
  // value present wins a failure-free run.
  Alg3Algorithm alg(64);
  UnrestrictedLoss::Options loss;
  World world =
      alg3_world(alg, {9, 23, 41, 17}, std::make_unique<UnrestrictedLoss>(loss),
                 std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 400);
  ASSERT_TRUE(summary.verdict.solved());
  EXPECT_EQ(summary.verdict.decided_values[0], 9u);
}

TEST(Alg3, WorstCaseCrashForcesFullReclimb) {
  // The Theorem 3 discussion scenario: the process with the smallest value
  // drags everyone deep into the left subtree, then dies just before it
  // would vote for its own value.  Everyone must climb all the way back up
  // and descend the other side -- still within 8*lg|V| of the crash.
  const std::uint64_t num_values = 256;
  Alg3Algorithm alg(num_values);
  // Value 0 lives at the far-left leaf (depth = height of tree); the
  // killer: crash its owner after it has cast the last vote-left.
  const std::uint32_t depth = ValueBstCursor(num_values).tree_height();
  const Round crash_round = 4 * depth;  // after leading to the leaf
  World world = alg3_world(
      alg, {0, 200, 220, 240},
      std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{}),
      std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
          {crash_round, 0, CrashPoint::kBeforeSend}}));
  const Round bound = alg.round_bound_after_failures(num_values);
  const RunSummary summary =
      run_consensus(std::move(world), crash_round + bound + 50);
  EXPECT_TRUE(summary.verdict.agreement);
  EXPECT_TRUE(summary.verdict.termination);
  // Survivors decide one of THEIR values (0's owner is gone).
  ASSERT_EQ(summary.verdict.decided_values.size(), 1u);
  EXPECT_GE(summary.verdict.decided_values[0], 200u);
  EXPECT_LE(summary.verdict.last_decision_round, crash_round + bound);
}

TEST(Alg3, CrashAfterSendVariantAlsoSafe) {
  Alg3Algorithm alg(64);
  for (Round crash_round = 1; crash_round <= 24; ++crash_round) {
    World world = alg3_world(
        alg, {3, 40, 50},
        std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{}),
        std::make_unique<ScheduledCrash>(std::vector<CrashEvent>{
            {crash_round, 0, CrashPoint::kAfterSend}}));
    const RunSummary summary = run_consensus(std::move(world), 500);
    EXPECT_TRUE(summary.verdict.agreement) << "crash@" << crash_round;
    EXPECT_TRUE(summary.verdict.strong_validity) << "crash@" << crash_round;
    EXPECT_TRUE(summary.verdict.termination) << "crash@" << crash_round;
  }
}

TEST(Alg3, RandomLossyChannelIsFine) {
  // Algorithm 3 never relies on delivery, so ANY loss pattern works --
  // including one that randomly lets messages through (received votes and
  // collision reports are interchangeable evidence).
  Alg3Algorithm alg(128);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ProbabilisticLoss::Options loss;
    loss.p_deliver = 0.4;
    loss.r_cf = kNeverRound;
    loss.seed = seed;
    World world = alg3_world(alg, random_initial_values(6, 128, seed),
                             std::make_unique<ProbabilisticLoss>(loss),
                             std::make_unique<NoFailures>());
    const RunSummary summary = run_consensus(std::move(world), 500);
    EXPECT_TRUE(summary.verdict.solved()) << "seed " << seed;
  }
}

TEST(Alg3, FoldedRecurseVariantSavesAQuarterOfTheRounds) {
  // The paper notes the recurse phase needs no round of its own; folding
  // it turns the 8*lg|V| bound into 6*lg|V|.
  const std::uint64_t num_values = 1024;
  Alg3Algorithm folded(num_values, /*fold_recurse_round=*/true);
  Alg3Algorithm plain(num_values, /*fold_recurse_round=*/false);
  UnrestrictedLoss::Options loss;

  World wf = alg3_world(folded, {1000, 1001},
                        std::make_unique<UnrestrictedLoss>(loss),
                        std::make_unique<NoFailures>());
  World wp = alg3_world(plain, {1000, 1001},
                        std::make_unique<UnrestrictedLoss>(loss),
                        std::make_unique<NoFailures>());
  const RunSummary sf = run_consensus(std::move(wf), 2000);
  const RunSummary sp = run_consensus(std::move(wp), 2000);
  ASSERT_TRUE(sf.verdict.solved());
  ASSERT_TRUE(sp.verdict.solved());
  EXPECT_EQ(sf.verdict.decided_values, sp.verdict.decided_values);
  // Folded uses 3 rounds per tree move instead of 4.
  EXPECT_EQ(sp.verdict.last_decision_round % 4, 0u);
  EXPECT_LT(sf.verdict.last_decision_round, sp.verdict.last_decision_round);
  EXPECT_NEAR(static_cast<double>(sf.verdict.last_decision_round) /
                  static_cast<double>(sp.verdict.last_decision_round),
              0.75, 0.05);
}

TEST(Alg3, BreaksWithMerelyEventuallyAccurateDetector) {
  // Theorem 8's boundary: without ECF, a detector that is complete but
  // only EVENTUALLY accurate is not enough.  Spurious pre-r_acc reports
  // desynchronize the joint tree walk; some seed yields disagreement or a
  // wrong decision.  (With the always-accurate detector of the other tests
  // this can never happen.)
  Alg3Algorithm alg(64);
  bool any_violation = false;
  for (std::uint64_t seed = 1; seed <= 40 && !any_violation; ++seed) {
    UnrestrictedLoss::Options loss;
    World world = make_world(
        alg, split_initial_values(4, 10, 50), std::make_unique<NoCm>(),
        std::make_unique<OracleDetector>(
            DetectorSpec::OAC(60),
            std::make_unique<SpuriousPolicy>(0.5, 60, seed)),
        std::make_unique<UnrestrictedLoss>(loss),
        std::make_unique<NoFailures>());
    const RunSummary summary = run_consensus(std::move(world), 400);
    if (!summary.verdict.agreement || !summary.verdict.strong_validity) {
      any_violation = true;
    }
  }
  EXPECT_TRUE(any_violation)
      << "expected some seed to break Algorithm 3 under <>AC without ECF";
}

TEST(Alg3, SingletonValueSpace) {
  Alg3Algorithm alg(1);
  UnrestrictedLoss::Options loss;
  World world = alg3_world(alg, {0, 0, 0},
                           std::make_unique<UnrestrictedLoss>(loss),
                           std::make_unique<NoFailures>());
  const RunSummary summary = run_consensus(std::move(world), 50);
  ASSERT_TRUE(summary.verdict.solved());
  EXPECT_EQ(summary.verdict.decided_values[0], 0u);
  EXPECT_LE(summary.verdict.last_decision_round, 4u);
}

}  // namespace
}  // namespace ccd
