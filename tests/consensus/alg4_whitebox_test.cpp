// White-box tests of Alg4Process's leader-mode state machine: the
// rounds-of-three schedule, announce adoption, heard-invalidation, and
// failure detection gating.
#include <gtest/gtest.h>

#include "consensus/alg4_non_anonymous.hpp"

namespace ccd {
namespace {

constexpr auto kActive = CmAdvice::kActive;
constexpr auto kPassive = CmAdvice::kPassive;
constexpr auto kNull = CdAdvice::kNull;
constexpr auto kColl = CdAdvice::kCollision;

Message announce(Value v) { return {Message::Kind::kLeaderValue, v, 0}; }

/// Drive a process to the point where its embedded election has decided
/// leader id 0 (by feeding it the election traffic a solo id-0 run makes):
/// prepare (hears id), |I|=4 -> 2 propose bits, accept -- at rounds
/// 1,4,7,10 -- with empty phase-2/3 rounds interleaved.
void run_election_to_leader0(Alg4Process& p, bool i_am_leader) {
  // Round 1 (election prepare).
  const auto m = p.on_send(1, i_am_leader ? kActive : kPassive);
  std::vector<Message> prep;
  if (i_am_leader) {
    ASSERT_TRUE(m.has_value());
    prep.push_back(*m);
  } else {
    prep.push_back(Message{Message::Kind::kEstimate, 0, 1});
  }
  p.on_receive(1, prep, kNull, kPassive);
  // Rounds 2,3: empty announce/veto slots (the process itself may veto in
  // slot 3; feed it its own veto back if it sends one).
  auto pump_slots_23 = [&p](Round base) {
    // Announce slot: a leader hears its own announcement; a follower is
    // fed an AMBIGUOUS round (collision) rather than silence -- synthetic
    // silence after the election would (correctly) trigger the leader
    // failure detector, which these tests exercise separately.
    const auto ann = p.on_send(base, kPassive);
    std::vector<Message> recv;
    CdAdvice cd = kNull;
    if (ann.has_value()) {
      recv.push_back(*ann);
    } else {
      cd = kColl;
    }
    p.on_receive(base, recv, cd, kPassive);
    const auto veto = p.on_send(base + 1, kPassive);
    recv.clear();
    if (veto.has_value()) recv.push_back(*veto);
    p.on_receive(base + 1, recv, kNull, kPassive);
  };
  pump_slots_23(2);
  // Election propose bits for estimate 0 (all zero bits: silence) at
  // rounds 4, 7; accept at round 10.
  for (Round r : {4u, 7u, 10u}) {
    EXPECT_FALSE(p.on_send(r, kPassive).has_value());
    p.on_receive(r, {}, kNull, kPassive);
    pump_slots_23(r + 1);
  }
  EXPECT_TRUE(p.believes_leader());
  EXPECT_EQ(p.leader_id(), 0u);
}

TEST(Alg4Whitebox, ElectionDecidesLeaderZero) {
  Alg4Process leader(1 << 20, 4, 0, 100, Alg4DecisionRule::kHardened);
  run_election_to_leader0(leader, true);
  Alg4Process follower(1 << 20, 4, 2, 300, Alg4DecisionRule::kHardened);
  run_election_to_leader0(follower, false);
}

TEST(Alg4Whitebox, LeaderAnnouncesItsValueEveryPhase2) {
  Alg4Process leader(1 << 20, 4, 0, 100, Alg4DecisionRule::kHardened);
  run_election_to_leader0(leader, true);
  const auto m = leader.on_send(14, kPassive);  // round 14 = slot 2 = announce
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, Message::Kind::kLeaderValue);
  EXPECT_EQ(m->value, 100u);
}

TEST(Alg4Whitebox, FollowerAdoptsAnnouncementAndStopsVetoing) {
  Alg4Process p(1 << 20, 4, 2, 300, Alg4DecisionRule::kHardened);
  run_election_to_leader0(p, false);
  // Not yet heard: vetoes in phase 3.
  EXPECT_TRUE(p.on_send(15, kPassive).has_value());
  std::vector<Message> own_veto = {*Alg4Process(1 << 20, 4, 2, 300,
                                                Alg4DecisionRule::kHardened)
                                        .on_send(3, kPassive)};
  p.on_receive(15, own_veto, kNull, kPassive);
  // Clean announcement arrives in the next phase 2.
  p.on_send(17, kPassive);
  std::vector<Message> ann = {announce(100)};
  p.on_receive(17, ann, kNull, kPassive);
  // Heard: no phase-3 veto any more.
  EXPECT_FALSE(p.on_send(18, kPassive).has_value());
  // Silent phase 3 -> decide the ADOPTED value.
  p.on_receive(18, {}, kNull, kPassive);
  ASSERT_TRUE(p.decided());
  EXPECT_EQ(p.decision(), 100u);
}

TEST(Alg4Whitebox, CollisionInAnnounceRoundInvalidatesHeard) {
  Alg4Process p(1 << 20, 4, 2, 300, Alg4DecisionRule::kHardened);
  run_election_to_leader0(p, false);
  // Hear cleanly once...
  p.on_send(14, kPassive);
  std::vector<Message> ann = {announce(100)};
  p.on_receive(14, ann, kNull, kPassive);
  // ...then MISS the next announcement (collision): a newer value may
  // have slipped by, so the process must veto again.
  p.on_send(17, kPassive);
  p.on_receive(17, {}, kColl, kPassive);
  EXPECT_TRUE(p.on_send(18, kPassive).has_value());
}

TEST(Alg4Whitebox, SilentPhase2AfterElectionTriggersReset) {
  Alg4Process p(1 << 20, 4, 2, 300, Alg4DecisionRule::kHardened);
  run_election_to_leader0(p, false);
  // Silent announce round: the leader did not broadcast => crashed/halted.
  p.on_send(14, kPassive);
  p.on_receive(14, {}, kNull, kPassive);
  // At the next election prepare round, the process rejoins contention
  // with its own ID.
  const auto m = p.on_send(16, kActive);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, Message::Kind::kEstimate);
  EXPECT_EQ(m->value, 2u);  // its own ID
  EXPECT_FALSE(p.believes_leader());
}

TEST(Alg4Whitebox, AmbiguousPhase2DoesNotTriggerReset) {
  Alg4Process p(1 << 20, 4, 2, 300, Alg4DecisionRule::kHardened);
  run_election_to_leader0(p, false);
  // Collision in the announce round: the leader may be alive (its message
  // was merely lost), so no failure detection -- but also no heard flag.
  p.on_send(14, kPassive);
  p.on_receive(14, {}, kColl, kPassive);
  EXPECT_TRUE(p.believes_leader());
  EXPECT_FALSE(p.on_send(16, kActive).has_value());  // stays out of prepare
}

TEST(Alg4Whitebox, LiteralRuleDecidesOnFirstReceipt) {
  Alg4Process p(1 << 20, 4, 2, 300, Alg4DecisionRule::kLiteral);
  run_election_to_leader0(p, false);
  p.on_send(14, kPassive);
  std::vector<Message> ann = {announce(100)};
  p.on_receive(14, ann, kNull, kPassive);
  EXPECT_TRUE(p.decided());  // no silent-phase-3 confirmation
  EXPECT_EQ(p.decision(), 100u);
}

}  // namespace
}  // namespace ccd
