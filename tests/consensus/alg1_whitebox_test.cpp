// White-box tests driving Alg1Process directly through its proposal/veto
// phase machine (pseudocode of Algorithm 1, Section 7.1).
#include <gtest/gtest.h>

#include "consensus/alg1_maj_oac.hpp"

namespace ccd {
namespace {

constexpr auto kActive = CmAdvice::kActive;
constexpr auto kPassive = CmAdvice::kPassive;
constexpr auto kNull = CdAdvice::kNull;
constexpr auto kColl = CdAdvice::kCollision;

Message est(Value v) { return {Message::Kind::kEstimate, v, 0}; }
Message veto() { return {Message::Kind::kVeto, 0, 0}; }

TEST(Alg1Whitebox, ProposalBroadcastsOnlyWhenActive) {
  Alg1Process p(5);
  EXPECT_FALSE(p.on_send(1, kPassive).has_value());
  Alg1Process q(5);
  const auto msg = q.on_send(1, kActive);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, Message::Kind::kEstimate);
  EXPECT_EQ(msg->value, 5u);
}

TEST(Alg1Whitebox, AdoptsMinimumOnCleanProposal) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4), est(7)};
  p.on_receive(1, recv, kNull, kPassive);
  EXPECT_EQ(p.estimate(), 4u);
}

TEST(Alg1Whitebox, KeepsEstimateOnCollision) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4)};
  p.on_receive(1, recv, kColl, kPassive);
  EXPECT_EQ(p.estimate(), 9u);  // line 10's guard
}

TEST(Alg1Whitebox, VetoesAfterCollision) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4)};
  p.on_receive(1, recv, kColl, kPassive);
  const auto msg = p.on_send(2, kPassive);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->kind, Message::Kind::kVeto);
}

TEST(Alg1Whitebox, VetoesAfterMultipleDistinctValues) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4), est(7)};
  p.on_receive(1, recv, kNull, kPassive);
  EXPECT_TRUE(p.on_send(2, kPassive).has_value());
}

TEST(Alg1Whitebox, DuplicateValuesAreOneUniqueValue) {
  // SET(recv): two copies of the same estimate are a single value, so no
  // complaint (multiset->set semantics of line 8).
  Alg1Process p(9);
  std::vector<Message> recv = {est(4), est(4), est(4)};
  p.on_receive(1, recv, kNull, kPassive);
  EXPECT_FALSE(p.on_send(2, kPassive).has_value());
}

TEST(Alg1Whitebox, DecidesAfterSilentVetoRound) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4)};
  p.on_receive(1, recv, kNull, kPassive);   // clean single value
  EXPECT_FALSE(p.on_send(2, kPassive).has_value());
  p.on_receive(2, {}, kNull, kPassive);     // silent veto round
  ASSERT_TRUE(p.decided());
  EXPECT_EQ(p.decision(), 4u);
  EXPECT_TRUE(p.halted());
}

TEST(Alg1Whitebox, VetoMessageBlocksDecision) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4)};
  p.on_receive(1, recv, kNull, kPassive);
  std::vector<Message> vr = {veto()};
  p.on_receive(2, vr, kNull, kPassive);
  EXPECT_FALSE(p.decided());
}

TEST(Alg1Whitebox, CollisionInVetoRoundBlocksDecision) {
  Alg1Process p(9);
  std::vector<Message> recv = {est(4)};
  p.on_receive(1, recv, kNull, kPassive);
  p.on_receive(2, {}, kColl, kPassive);
  EXPECT_FALSE(p.decided());
}

TEST(Alg1Whitebox, NoDecisionWithoutAnyProposal) {
  // |messages| = 0 in the proposal round: the decide guard (line 18)
  // requires exactly one unique value.
  Alg1Process p(9);
  p.on_receive(1, {}, kNull, kPassive);
  p.on_receive(2, {}, kNull, kPassive);
  EXPECT_FALSE(p.decided());
}

TEST(Alg1Whitebox, OwnVetoPreventsOwnDecision) {
  // A process that complains hears its own veto (model: self-delivery),
  // so it can never decide in the same cycle it vetoed.
  Alg1Process p(9);
  std::vector<Message> recv = {est(4), est(7)};
  p.on_receive(1, recv, kNull, kPassive);
  const auto v = p.on_send(2, kPassive);
  ASSERT_TRUE(v.has_value());
  std::vector<Message> vr = {*v};
  p.on_receive(2, vr, kNull, kPassive);
  EXPECT_FALSE(p.decided());
  // Next cycle is a fresh proposal phase.
  EXPECT_FALSE(p.on_send(3, kPassive).has_value());
}

TEST(Alg1Whitebox, CyclesForeverUnderPermanentVetoes) {
  Alg1Process p(9);
  for (Round r = 1; r <= 100; r += 2) {
    std::vector<Message> recv = {est(4)};
    p.on_receive(r, recv, kNull, kPassive);
    std::vector<Message> vr = {veto()};
    p.on_receive(r + 1, vr, kNull, kPassive);
  }
  EXPECT_FALSE(p.decided());
  EXPECT_EQ(p.estimate(), 4u);  // estimate stable once adopted
}

}  // namespace
}  // namespace ccd
