#include "multihop/topology.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

TEST(Topology, CliqueEveryoneAdjacent) {
  const Topology t = Topology::clique(5);
  EXPECT_EQ(t.size(), 5u);
  for (std::size_t a = 0; a < 5; ++a) {
    EXPECT_EQ(t.degree(a), 4u);
    for (std::size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(t.adjacent(a, b), a != b);
    }
  }
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(Topology, LineDistancesAndDiameter) {
  const Topology t = Topology::line(10);
  EXPECT_EQ(t.distance(0, 9), 9u);
  EXPECT_EQ(t.distance(3, 7), 4u);
  EXPECT_EQ(t.diameter(), 9u);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(5), 2u);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, GridStructure) {
  const Topology t = Topology::grid(4, 3);
  EXPECT_EQ(t.size(), 12u);
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 3u);
  EXPECT_EQ(t.degree(5), 4u);
  // Manhattan distances.
  EXPECT_EQ(t.distance(0, 11), 3u + 2u);
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(Topology, RingStructure) {
  const Topology t = Topology::ring(8);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 4u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(t.degree(i), 2u);
  EXPECT_TRUE(t.adjacent(7, 0));
  EXPECT_EQ(t.distance(0, 5), 3u);  // the wrap-around is shorter
}

TEST(Topology, RingDegeneratesToLineBelowThree) {
  EXPECT_EQ(Topology::ring(2).diameter(), 1u);
  EXPECT_EQ(Topology::ring(1).diameter(), 0u);
  EXPECT_TRUE(Topology::ring(0).connected());
}

TEST(Topology, GridNCoversExactlyNNodes) {
  for (std::size_t n : {1u, 2u, 5u, 8u, 9u, 12u, 17u, 36u}) {
    const Topology t = Topology::grid_n(n);
    EXPECT_EQ(t.size(), n) << n;
    EXPECT_TRUE(t.connected()) << n;
  }
  // A perfect square matches the rectangular generator.
  const Topology square = Topology::grid_n(9);
  const Topology rect = Topology::grid(3, 3);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(square.neighbors(i), rect.neighbors(i));
  }
  // Partial last row: n=8, width 3 -> rows {0,1,2},{3,4,5},{6,7}.
  const Topology partial = Topology::grid_n(8);
  EXPECT_TRUE(partial.adjacent(6, 7));
  EXPECT_TRUE(partial.adjacent(4, 7));
  EXPECT_FALSE(partial.adjacent(5, 7));
  EXPECT_EQ(partial.degree(7), 2u);
}

TEST(Topology, SingletonAndEmpty) {
  const Topology one = Topology::line(1);
  EXPECT_TRUE(one.connected());
  EXPECT_EQ(one.diameter(), 0u);
  const Topology two = Topology::line(2);
  EXPECT_EQ(two.diameter(), 1u);
}

TEST(Topology, DisconnectedGeometricDetected) {
  // Tiny radius: n isolated points.
  const Topology t = Topology::random_geometric(20, 1e-6, 3);
  EXPECT_FALSE(t.connected());
  EXPECT_EQ(t.diameter(), Topology::kUnreachable);
  EXPECT_EQ(t.distance(0, 1), Topology::kUnreachable);
}

TEST(Topology, DenseGeometricConnected) {
  // Radius ~ full square: a clique.
  const Topology t = Topology::random_geometric(20, 2.0, 3);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_EQ(t.max_degree(), 19u);
}

TEST(Topology, GeometricDeterministicPerSeed) {
  const Topology a = Topology::random_geometric(30, 0.3, 7);
  const Topology b = Topology::random_geometric(30, 0.3, 7);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.neighbors(i), b.neighbors(i));
  }
}

TEST(Topology, EccentricityConsistentWithDiameter) {
  const Topology t = Topology::grid(5, 5);
  std::uint32_t worst = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    worst = std::max(worst, t.eccentricity(i));
  }
  EXPECT_EQ(worst, t.diameter());
  // Center of the grid has the smallest eccentricity.
  EXPECT_EQ(t.eccentricity(12), 4u);
  EXPECT_EQ(t.eccentricity(0), 8u);
}

TEST(Topology, ArticulationPointsOnStandardShapes) {
  // Line: every interior node is a cut vertex (the Omega(D) worst case is
  // also the partition worst case).
  const Topology line = Topology::line(5);
  EXPECT_EQ(line.articulation_points(),
            (std::vector<std::uint32_t>{1, 2, 3}));
  // Ring and clique: 2-connected, no cut vertex anywhere.
  EXPECT_TRUE(Topology::ring(6).articulation_points().empty());
  EXPECT_TRUE(Topology::clique(5).articulation_points().empty());
  // 2xN grid: 2-connected as well.
  EXPECT_TRUE(Topology::grid(2, 4).articulation_points().empty());
  // Degenerate sizes.
  EXPECT_TRUE(Topology::line(1).articulation_points().empty());
  EXPECT_TRUE(Topology::line(2).articulation_points().empty());
}

TEST(Topology, LargestComponentWithoutRanksCutDamage) {
  const Topology line = Topology::line(5);
  // Removing node 1 leaves {0} and {2,3,4}; removing the middle node 2
  // leaves two pairs -- the most balanced (worst) partition.
  EXPECT_EQ(line.largest_component_without(1), 3u);
  EXPECT_EQ(line.largest_component_without(2), 2u);
  // Removing a ring node leaves one path of n-1.
  EXPECT_EQ(Topology::ring(6).largest_component_without(0), 5u);
  EXPECT_EQ(Topology::line(1).largest_component_without(0), 0u);
}

}  // namespace
}  // namespace ccd
