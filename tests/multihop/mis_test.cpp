#include "multihop/mis.hpp"

#include <gtest/gtest.h>

#include "multihop/mh_executor.hpp"

namespace ccd {
namespace {

struct MisRun {
  std::vector<MisProcess::State> states;
  bool all_settled = false;
  Round settled_at = 0;
};

MisRun run_mis(const Topology& topo, DetectorSpec spec,
               std::unique_ptr<AdvicePolicy> policy, MhLinkModel link,
               std::uint64_t seed, Round max_rounds = 4000) {
  std::vector<std::unique_ptr<Process>> procs;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    MisProcess::Options o;
    o.seed = seed * 1000 + i;
    procs.push_back(std::make_unique<MisProcess>(o));
  }
  MultihopExecutor ex(topo, std::move(procs), spec, std::move(policy), link,
                      seed);
  MisRun run;
  for (Round r = 1; r <= max_rounds; ++r) {
    ex.step();
    bool all = true;
    for (std::size_t i = 0; i < ex.size(); ++i) {
      if (!static_cast<MisProcess&>(ex.process(i)).settled()) all = false;
    }
    if (all) {
      run.all_settled = true;
      run.settled_at = r;
      break;
    }
  }
  for (std::size_t i = 0; i < ex.size(); ++i) {
    run.states.push_back(static_cast<MisProcess&>(ex.process(i)).state());
  }
  return run;
}

bool independent(const Topology& topo,
                 const std::vector<MisProcess::State>& states) {
  for (std::size_t a = 0; a < topo.size(); ++a) {
    if (states[a] != MisProcess::State::kHead) continue;
    for (std::uint32_t b : topo.neighbors(a)) {
      if (states[b] == MisProcess::State::kHead) return false;
    }
  }
  return true;
}

bool dominating(const Topology& topo,
                const std::vector<MisProcess::State>& states) {
  for (std::size_t a = 0; a < topo.size(); ++a) {
    if (states[a] == MisProcess::State::kHead) continue;
    bool covered = false;
    for (std::uint32_t b : topo.neighbors(a)) {
      if (states[b] == MisProcess::State::kHead) covered = true;
    }
    if (!covered) return false;
  }
  return true;
}

struct MisParams {
  int topo_kind;
  std::uint64_t seed;
};

Topology make_topo(int kind) {
  switch (kind) {
    case 0:
      return Topology::line(12);
    case 1:
      return Topology::grid(5, 5);
    case 2:
      return Topology::clique(10);
    default:
      return Topology::random_geometric(30, 0.35, 11);
  }
}

class MisSweep : public ::testing::TestWithParam<MisParams> {};

TEST_P(MisSweep, CompleteDetectorGivesMaximalIndependentSet) {
  const MisParams p = GetParam();
  const Topology topo = make_topo(p.topo_kind);
  const MisRun run = run_mis(topo, DetectorSpec::AC(),
                             make_truthful_policy(), {0.9, 0.3}, p.seed);
  ASSERT_TRUE(run.all_settled)
      << "topo=" << p.topo_kind << " seed=" << p.seed;
  EXPECT_TRUE(independent(topo, run.states));
  EXPECT_TRUE(dominating(topo, run.states));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MisSweep,
    ::testing::Values(MisParams{0, 1}, MisParams{0, 2}, MisParams{1, 1},
                      MisParams{1, 2}, MisParams{2, 1}, MisParams{2, 2},
                      MisParams{3, 1}, MisParams{3, 2}, MisParams{0, 3},
                      MisParams{1, 3}, MisParams{2, 3}, MisParams{3, 3}));

TEST(Mis, CliqueElectsExactlyOneHead) {
  const Topology topo = Topology::clique(10);
  const MisRun run = run_mis(topo, DetectorSpec::AC(),
                             make_truthful_policy(), {0.9, 0.3}, 5);
  ASSERT_TRUE(run.all_settled);
  int heads = 0;
  for (auto s : run.states) heads += s == MisProcess::State::kHead ? 1 : 0;
  EXPECT_EQ(heads, 1);
}

TEST(Mis, LineHeadsRoughlyEveryOtherNode) {
  const Topology topo = Topology::line(20);
  const MisRun run = run_mis(topo, DetectorSpec::AC(),
                             make_truthful_policy(), {0.9, 0.3}, 6);
  ASSERT_TRUE(run.all_settled);
  int heads = 0;
  for (auto s : run.states) heads += s == MisProcess::State::kHead ? 1 : 0;
  // An MIS on a 20-path has between ceil(20/3) = 7 and 10 nodes.
  EXPECT_GE(heads, 7);
  EXPECT_LE(heads, 10);
}

TEST(Mis, IsolatedNodesAlwaysBecomeHeads) {
  const Topology topo = Topology::random_geometric(8, 1e-6, 2);  // isolated
  const MisRun run = run_mis(topo, DetectorSpec::AC(),
                             make_truthful_policy(), {0.9, 0.3}, 7);
  ASSERT_TRUE(run.all_settled);
  for (auto s : run.states) EXPECT_EQ(s, MisProcess::State::kHead);
}

TEST(Mis, ZeroCompletenessAlonePermitsAdjacentHeads) {
  // The ablation: hand the protocol a detector that may legally stay
  // silent when only SOME messages are lost (zero-complete, prefer-null)
  // and make simultaneous candidates never capture each other's marks.
  // Adjacent candidates then both see clean silence and both elect --
  // independence collapses.  Completeness, not carrier sensing, is what
  // the safety of the silence test rests on (the paper's theme, one hop
  // out).
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 30 && !violated; ++seed) {
    const Topology topo = Topology::clique(6);
    const MisRun run =
        run_mis(topo, DetectorSpec::ZeroAC(), make_prefer_null_policy(),
                {0.9, 0.0}, seed, 600);
    if (!independent(topo, run.states)) violated = true;
  }
  EXPECT_TRUE(violated)
      << "expected some seed to elect adjacent heads under 0-AC";
}

}  // namespace
}  // namespace ccd
