#include "multihop/mh_executor.hpp"

#include <gtest/gtest.h>

#include "multihop/flood.hpp"

namespace ccd {
namespace {

/// Broadcasts every round; records its observations.
class BeaconProcess final : public Process {
 public:
  explicit BeaconProcess(bool talk) : talk_(talk) {}
  std::optional<Message> on_send(Round, CmAdvice) override {
    if (talk_) return Message{Message::Kind::kPayload, 7, 0};
    return std::nullopt;
  }
  void on_receive(Round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice) override {
    last_count_ = received.size();
    last_cd_ = cd;
  }
  std::size_t last_count_ = 0;
  CdAdvice last_cd_ = CdAdvice::kNull;

 private:
  bool talk_;
};

MultihopExecutor make_beacon_executor(Topology topo, std::vector<bool> talk,
                                      MhLinkModel link) {
  std::vector<std::unique_ptr<Process>> procs;
  for (bool b : talk) procs.push_back(std::make_unique<BeaconProcess>(b));
  return MultihopExecutor(std::move(topo), std::move(procs),
                          DetectorSpec::ZeroAC(), make_truthful_policy(),
                          link, 5);
}

TEST(MultihopExecutor, LoneNeighborDeliveredOnReliableLinks) {
  // Line 0-1-2: only node 0 talks.  Node 1 hears it; node 2 (not
  // adjacent) hears nothing and must not get a collision report
  // (accuracy: c_2 = 0).
  auto ex = make_beacon_executor(Topology::line(3), {true, false, false},
                                 {1.0, 1.0});
  ex.step();
  EXPECT_EQ(ex.last_local_broadcasters(1), 1u);
  EXPECT_EQ(ex.last_receive_count(1), 1u);
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kNull);
  EXPECT_EQ(ex.last_local_broadcasters(2), 0u);
  EXPECT_EQ(ex.last_receive_count(2), 0u);
  EXPECT_EQ(ex.last_cd(2), CdAdvice::kNull);
}

TEST(MultihopExecutor, ContentionCapturesAtMostOne) {
  // Star-ish: nodes 0 and 2 both adjacent to 1, both talk; p_capture = 1:
  // node 1 receives exactly one of the two.
  auto ex = make_beacon_executor(Topology::line(3), {true, false, true},
                                 {1.0, 1.0});
  for (int i = 0; i < 20; ++i) {
    ex.step();
    EXPECT_EQ(ex.last_local_broadcasters(1), 2u);
    EXPECT_EQ(ex.last_receive_count(1), 1u);
    // Lost one of two: zero completeness forces nothing, truthful policy
    // reports the loss.
    EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
  }
}

TEST(MultihopExecutor, ZeroCompletenessForcedOnTotalLocalLoss) {
  // Both neighbors of node 1 talk, p_capture = 0: node 1 hears nothing
  // but MUST be told +- (local c = 2, t = 0).
  auto ex = make_beacon_executor(Topology::line(3), {true, false, true},
                                 {1.0, 0.0});
  ex.step();
  EXPECT_EQ(ex.last_receive_count(1), 0u);
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
}

TEST(MultihopExecutor, SelfDeliveryForBroadcasters) {
  auto ex = make_beacon_executor(Topology::line(2), {true, true}, {1.0, 0.0});
  ex.step();
  // Each broadcaster hears at least itself.
  EXPECT_GE(ex.last_receive_count(0), 1u);
  EXPECT_GE(ex.last_receive_count(1), 1u);
  // Own broadcast counts toward the local c.
  EXPECT_EQ(ex.last_local_broadcasters(0), 2u);
}

TEST(MultihopExecutor, CliqueMatchesSingleHopSemantics) {
  // On a clique, local counts equal global counts: one talker, everyone
  // hears it, nobody gets a report -- the single-hop model's behaviour.
  auto ex = make_beacon_executor(Topology::clique(5),
                                 {true, false, false, false, false},
                                 {1.0, 1.0});
  ex.step();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ex.last_local_broadcasters(i), 1u);
    EXPECT_EQ(ex.last_receive_count(i), 1u);
    EXPECT_EQ(ex.last_cd(i), CdAdvice::kNull);
  }
}

TEST(MultihopExecutor, InterferenceWithoutReceptionIsDetected) {
  // The paper's multihop motivation for eventual (not immediate) collision
  // freedom: node 1 sits between two talkers it cannot decode (p_capture
  // 0) -- pure interference, reliably flagged by zero completeness.
  auto ex = make_beacon_executor(Topology::grid(3, 1), {true, false, true},
                                 {1.0, 0.0});
  for (int i = 0; i < 5; ++i) ex.step();
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
  EXPECT_EQ(ex.last_receive_count(1), 0u);
}

// ---- flooding -----------------------------------------------------------

struct FloodRun {
  bool completed = false;
  Round completion_round = 0;
};

FloodRun run_flood(const Topology& topo, FloodPolicy policy, Round max_rounds,
                   std::uint64_t seed) {
  std::vector<std::unique_ptr<Process>> procs;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    FloodProcess::Options o;
    o.is_source = i == 0;
    o.policy = policy;
    o.fresh_rounds = max_rounds;
    o.seed = seed * 1000 + i;
    procs.push_back(std::make_unique<FloodProcess>(o));
  }
  MultihopExecutor ex(topo, std::move(procs), DetectorSpec::ZeroAC(),
                      make_truthful_policy(), {0.9, 0.5}, seed);
  for (Round r = 1; r <= max_rounds; ++r) {
    ex.step();
    bool all = true;
    for (std::size_t i = 0; i < ex.size(); ++i) {
      if (!static_cast<FloodProcess&>(ex.process(i)).has_message()) {
        all = false;
      }
    }
    if (all) return {true, r};
  }
  return {false, max_rounds};
}

TEST(Flood, CoversConnectedTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(run_flood(Topology::line(12), FloodPolicy::kFixed, 3000,
                          seed)
                    .completed);
    EXPECT_TRUE(run_flood(Topology::grid(5, 4), FloodPolicy::kCdBackoff,
                          3000, seed)
                    .completed);
    EXPECT_TRUE(run_flood(Topology::clique(10), FloodPolicy::kCdBackoff,
                          3000, seed)
                    .completed);
  }
}

TEST(Flood, NeverCrossesDisconnection) {
  const Topology t = Topology::random_geometric(12, 1e-6, 4);  // isolated
  const FloodRun run = run_flood(t, FloodPolicy::kFixed, 500, 1);
  EXPECT_FALSE(run.completed);
}

TEST(Flood, CompletionGrowsWithDiameter) {
  // Longer lines take longer -- the D factor of the broadcast bounds in
  // Section 1.1 (in expectation; use the median over seeds).
  auto median_completion = [](std::size_t len) {
    std::vector<Round> rounds;
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      const FloodRun run =
          run_flood(Topology::line(len), FloodPolicy::kCdBackoff, 5000, seed);
      EXPECT_TRUE(run.completed);
      rounds.push_back(run.completion_round);
    }
    std::sort(rounds.begin(), rounds.end());
    return rounds[rounds.size() / 2];
  };
  EXPECT_LT(median_completion(4), median_completion(24));
}

}  // namespace
}  // namespace ccd
