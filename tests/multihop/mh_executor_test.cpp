#include "multihop/mh_executor.hpp"

#include <gtest/gtest.h>

#include "multihop/flood.hpp"

namespace ccd {
namespace {

/// Broadcasts every round; records its observations.
class BeaconProcess final : public Process {
 public:
  explicit BeaconProcess(bool talk) : talk_(talk) {}
  std::optional<Message> on_send(Round, CmAdvice) override {
    if (talk_) return Message{Message::Kind::kPayload, 7, 0};
    return std::nullopt;
  }
  void on_receive(Round, std::span<const Message> received, CdAdvice cd,
                  CmAdvice) override {
    last_count_ = received.size();
    last_cd_ = cd;
  }
  std::size_t last_count_ = 0;
  CdAdvice last_cd_ = CdAdvice::kNull;

 private:
  bool talk_;
};

MultihopExecutor make_beacon_executor(Topology topo, std::vector<bool> talk,
                                      MhLinkModel link) {
  std::vector<std::unique_ptr<Process>> procs;
  for (bool b : talk) procs.push_back(std::make_unique<BeaconProcess>(b));
  return MultihopExecutor(std::move(topo), std::move(procs),
                          DetectorSpec::ZeroAC(), make_truthful_policy(),
                          link, 5);
}

TEST(MultihopExecutor, LoneNeighborDeliveredOnReliableLinks) {
  // Line 0-1-2: only node 0 talks.  Node 1 hears it; node 2 (not
  // adjacent) hears nothing and must not get a collision report
  // (accuracy: c_2 = 0).
  auto ex = make_beacon_executor(Topology::line(3), {true, false, false},
                                 {1.0, 1.0});
  ex.step();
  EXPECT_EQ(ex.last_local_broadcasters(1), 1u);
  EXPECT_EQ(ex.last_receive_count(1), 1u);
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kNull);
  EXPECT_EQ(ex.last_local_broadcasters(2), 0u);
  EXPECT_EQ(ex.last_receive_count(2), 0u);
  EXPECT_EQ(ex.last_cd(2), CdAdvice::kNull);
}

TEST(MultihopExecutor, ContentionCapturesAtMostOne) {
  // Star-ish: nodes 0 and 2 both adjacent to 1, both talk; p_capture = 1:
  // node 1 receives exactly one of the two.
  auto ex = make_beacon_executor(Topology::line(3), {true, false, true},
                                 {1.0, 1.0});
  for (int i = 0; i < 20; ++i) {
    ex.step();
    EXPECT_EQ(ex.last_local_broadcasters(1), 2u);
    EXPECT_EQ(ex.last_receive_count(1), 1u);
    // Lost one of two: zero completeness forces nothing, truthful policy
    // reports the loss.
    EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
  }
}

TEST(MultihopExecutor, ZeroCompletenessForcedOnTotalLocalLoss) {
  // Both neighbors of node 1 talk, p_capture = 0: node 1 hears nothing
  // but MUST be told +- (local c = 2, t = 0).
  auto ex = make_beacon_executor(Topology::line(3), {true, false, true},
                                 {1.0, 0.0});
  ex.step();
  EXPECT_EQ(ex.last_receive_count(1), 0u);
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
}

TEST(MultihopExecutor, SelfDeliveryForBroadcasters) {
  auto ex = make_beacon_executor(Topology::line(2), {true, true}, {1.0, 0.0});
  ex.step();
  // Each broadcaster hears at least itself.
  EXPECT_GE(ex.last_receive_count(0), 1u);
  EXPECT_GE(ex.last_receive_count(1), 1u);
  // Own broadcast counts toward the local c.
  EXPECT_EQ(ex.last_local_broadcasters(0), 2u);
}

TEST(MultihopExecutor, CliqueMatchesSingleHopSemantics) {
  // On a clique, local counts equal global counts: one talker, everyone
  // hears it, nobody gets a report -- the single-hop model's behaviour.
  auto ex = make_beacon_executor(Topology::clique(5),
                                 {true, false, false, false, false},
                                 {1.0, 1.0});
  ex.step();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ex.last_local_broadcasters(i), 1u);
    EXPECT_EQ(ex.last_receive_count(i), 1u);
    EXPECT_EQ(ex.last_cd(i), CdAdvice::kNull);
  }
}

TEST(MultihopExecutor, InterferenceWithoutReceptionIsDetected) {
  // The paper's multihop motivation for eventual (not immediate) collision
  // freedom: node 1 sits between two talkers it cannot decode (p_capture
  // 0) -- pure interference, reliably flagged by zero completeness.
  auto ex = make_beacon_executor(Topology::grid(3, 1), {true, false, true},
                                 {1.0, 0.0});
  for (int i = 0; i < 5; ++i) ex.step();
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kCollision);
  EXPECT_EQ(ex.last_receive_count(1), 0u);
}

// ---- crash failures -----------------------------------------------------

MultihopExecutor make_crashing_executor(Topology topo, std::vector<bool> talk,
                                        std::vector<CrashEvent> events,
                                        MhLinkModel link = {1.0, 1.0}) {
  std::vector<std::unique_ptr<Process>> procs;
  for (bool b : talk) procs.push_back(std::make_unique<BeaconProcess>(b));
  return MultihopExecutor(std::move(topo), std::move(procs),
                          DetectorSpec::ZeroAC(), make_truthful_policy(),
                          link, 5,
                          std::make_unique<ScheduledCrash>(std::move(events)));
}

TEST(MultihopExecutorCrash, BeforeSendCrashFiresAtTheExactRound) {
  // Line 0-1-2, everyone talks.  Node 2 crashes before its round-3 send:
  // through round 2 node 1 sees c = 3 (both neighbors + itself); from
  // round 3 on, c = 2 and node 2 is dead.
  auto ex = make_crashing_executor(
      Topology::line(3), {true, true, true},
      {{/*round=*/3, /*process=*/2, CrashPoint::kBeforeSend}});
  for (Round r = 1; r <= 2; ++r) {
    ex.step();
    EXPECT_EQ(ex.last_local_broadcasters(1), 3u) << "round " << r;
    EXPECT_TRUE(ex.alive(2));
    EXPECT_EQ(ex.crashes_applied(), 0u);
  }
  ex.step();  // round 3: the crash lands before the send
  EXPECT_EQ(ex.last_local_broadcasters(1), 2u);
  EXPECT_FALSE(ex.alive(2));
  EXPECT_EQ(ex.num_alive(), 2u);
  EXPECT_EQ(ex.crashes_applied(), 1u);
  // Dead processes receive nothing and get no further advice.
  EXPECT_EQ(ex.last_receive_count(2), 0u);
  EXPECT_EQ(ex.last_local_broadcasters(2), 0u);
  EXPECT_EQ(ex.last_cd(2), CdAdvice::kNull);
}

TEST(MultihopExecutorCrash, AfterSendCrashDeliversTheFinalMessage) {
  // Definition 11's literal semantics: node 0 crashes after its round-2
  // send.  Its round-2 message still goes out (node 1 counts it in c),
  // but node 0 takes no round-2 transition and is silent from round 3.
  auto ex = make_crashing_executor(
      Topology::line(3), {true, true, true},
      {{/*round=*/2, /*process=*/0, CrashPoint::kAfterSend}});
  ex.step();  // round 1
  auto& p0 = static_cast<BeaconProcess&>(ex.process(0));
  const std::size_t count_after_round1 = p0.last_count_;
  EXPECT_GE(count_after_round1, 1u);  // own broadcast self-delivers

  ex.step();  // round 2: message out, then death
  EXPECT_FALSE(ex.alive(0));
  EXPECT_EQ(ex.crashes_applied(), 1u);
  // The dying broadcast still counted toward node 1's local c...
  EXPECT_EQ(ex.last_local_broadcasters(1), 3u);
  // ...but node 0 skipped its round-2 transition: its last observation is
  // still the round-1 one.
  EXPECT_EQ(p0.last_count_, count_after_round1);

  ex.step();  // round 3: dead nodes drop out of c entirely
  EXPECT_EQ(ex.last_local_broadcasters(1), 2u);
}

TEST(MultihopExecutorCrash, DeadNeighborsLeaveTheBroadcasterCount) {
  // Both neighbors of node 1 die in round 1; from round 2 node 1 is a
  // lone broadcaster with c = 1 and null advice (accuracy must hold: no
  // phantom collisions from the dead).
  auto ex = make_crashing_executor(
      Topology::line(3), {true, true, true},
      {{1, 0, CrashPoint::kBeforeSend}, {1, 2, CrashPoint::kBeforeSend}});
  ex.step();
  EXPECT_EQ(ex.num_alive(), 1u);
  EXPECT_EQ(ex.crashes_applied(), 2u);
  ex.step();
  EXPECT_EQ(ex.last_local_broadcasters(1), 1u);
  EXPECT_EQ(ex.last_receive_count(1), 1u);  // self-delivery only
  EXPECT_EQ(ex.last_cd(1), CdAdvice::kNull);
}

TEST(MultihopExecutorCrash, EventsForDeadOrOutOfRangeProcessesAreIgnored) {
  auto ex = make_crashing_executor(
      Topology::line(2), {true, true},
      {{1, 0, CrashPoint::kBeforeSend},
       {2, 0, CrashPoint::kAfterSend},    // already dead: must not recount
       {1, 9, CrashPoint::kBeforeSend}});  // out of range: ignored
  ex.step();
  ex.step();
  EXPECT_EQ(ex.crashes_applied(), 1u);
  EXPECT_EQ(ex.num_alive(), 1u);
  EXPECT_FALSE(ex.alive(0));
  EXPECT_TRUE(ex.alive(1));
}

TEST(MultihopExecutorCrash, NoAdversaryMatchesNoFailuresByteForByte) {
  // A null fault and an empty ScheduledCrash must produce identical
  // executions (same RNG draw sequence, same observations).
  auto a = make_beacon_executor(Topology::line(3), {true, false, true},
                                {0.9, 0.4});
  auto b = make_crashing_executor(Topology::line(3), {true, false, true}, {},
                                  {0.9, 0.4});
  for (int i = 0; i < 50; ++i) {
    a.step();
    b.step();
    for (std::size_t p = 0; p < 3; ++p) {
      ASSERT_EQ(a.last_receive_count(p), b.last_receive_count(p));
      ASSERT_EQ(a.last_cd(p), b.last_cd(p));
    }
  }
}

// ---- flooding -----------------------------------------------------------

struct FloodRun {
  bool completed = false;
  Round completion_round = 0;
};

FloodRun run_flood(const Topology& topo, FloodPolicy policy, Round max_rounds,
                   std::uint64_t seed) {
  std::vector<std::unique_ptr<Process>> procs;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    FloodProcess::Options o;
    o.is_source = i == 0;
    o.policy = policy;
    o.fresh_rounds = max_rounds;
    o.seed = seed * 1000 + i;
    procs.push_back(std::make_unique<FloodProcess>(o));
  }
  MultihopExecutor ex(topo, std::move(procs), DetectorSpec::ZeroAC(),
                      make_truthful_policy(), {0.9, 0.5}, seed);
  for (Round r = 1; r <= max_rounds; ++r) {
    ex.step();
    bool all = true;
    for (std::size_t i = 0; i < ex.size(); ++i) {
      if (!static_cast<FloodProcess&>(ex.process(i)).has_message()) {
        all = false;
      }
    }
    if (all) return {true, r};
  }
  return {false, max_rounds};
}

TEST(Flood, CoversConnectedTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(run_flood(Topology::line(12), FloodPolicy::kFixed, 3000,
                          seed)
                    .completed);
    EXPECT_TRUE(run_flood(Topology::grid(5, 4), FloodPolicy::kCdBackoff,
                          3000, seed)
                    .completed);
    EXPECT_TRUE(run_flood(Topology::clique(10), FloodPolicy::kCdBackoff,
                          3000, seed)
                    .completed);
  }
}

TEST(Flood, NeverCrossesDisconnection) {
  const Topology t = Topology::random_geometric(12, 1e-6, 4);  // isolated
  const FloodRun run = run_flood(t, FloodPolicy::kFixed, 500, 1);
  EXPECT_FALSE(run.completed);
}

TEST(Flood, CompletionGrowsWithDiameter) {
  // Longer lines take longer -- the D factor of the broadcast bounds in
  // Section 1.1 (in expectation; use the median over seeds).
  auto median_completion = [](std::size_t len) {
    std::vector<Round> rounds;
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      const FloodRun run =
          run_flood(Topology::line(len), FloodPolicy::kCdBackoff, 5000, seed);
      EXPECT_TRUE(run.completed);
      rounds.push_back(run.completion_round);
    }
    std::sort(rounds.begin(), rounds.end());
    return rounds[rounds.size() / 2];
  };
  EXPECT_LT(median_completion(4), median_completion(24));
}

}  // namespace
}  // namespace ccd
