// Topology::min_vertex_cut: the BFS max-flow implementation (split-vertex
// graph, Even's construction) against the original brute-force
// combination search, pinned EQUAL on every graph the old code could
// handle -- same cut, same damage ranking, same lexicographic tie-break.
// Then the lifted limits: cuts of size >= 2 on graphs larger than the old
// 64-node cap, which the brute force priced out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "multihop/topology.hpp"

namespace ccd {
namespace {

/// The pre-max-flow reference implementation, verbatim minus the n > 64
/// single-vertex cap (tests only call it where enumeration is affordable).
std::vector<std::uint32_t> reference_cut(const Topology& topo,
                                         std::size_t max_size) {
  const std::size_t n = topo.size();
  if (n < 3) return {};

  std::vector<bool> removed(n, false);
  std::vector<bool> seen(n, false);
  std::deque<std::uint32_t> queue;
  auto damage = [&](const std::vector<std::uint32_t>& cut) -> std::size_t {
    std::fill(removed.begin(), removed.end(), false);
    for (std::uint32_t v : cut) removed[v] = true;
    std::fill(seen.begin(), seen.end(), false);
    std::size_t components = 0, survivors = 0, largest = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (removed[s] || seen[s]) continue;
      ++components;
      std::size_t count = 0;
      seen[s] = true;
      queue.push_back(static_cast<std::uint32_t>(s));
      while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        ++count;
        for (std::uint32_t w : topo.neighbors(u)) {
          if (!removed[w] && !seen[w]) {
            seen[w] = true;
            queue.push_back(w);
          }
        }
      }
      survivors += count;
      largest = std::max(largest, count);
    }
    if (components < 2 || survivors < 2) return n;
    return largest;
  };

  std::vector<std::uint32_t> best;
  for (std::size_t k = 1; k <= max_size && k + 2 <= n; ++k) {
    std::size_t best_damage = n;
    std::vector<std::uint32_t> pick(k);
    for (std::size_t i = 0; i < k; ++i) {
      pick[i] = static_cast<std::uint32_t>(i);
    }
    while (true) {
      const std::size_t d = damage(pick);
      if (d < best_damage) {
        best_damage = d;
        best = pick;
      }
      bool advanced = false;
      for (std::size_t i = k; i-- > 0;) {
        if (pick[i] + (k - i) < n) {
          ++pick[i];
          for (std::size_t j = i + 1; j < k; ++j) {
            pick[j] = pick[j - 1] + 1;
          }
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
    if (!best.empty()) return best;
  }
  return best;
}

void expect_matches_reference(const Topology& topo, const char* what) {
  for (std::size_t max_size : {1, 2, 3}) {
    EXPECT_EQ(topo.min_vertex_cut(max_size), reference_cut(topo, max_size))
        << what << " n=" << topo.size() << " max_size=" << max_size;
  }
}

/// Largest surviving component after removing `cut`, or n when the
/// removal does not separate -- the ranking metric, re-derived here so the
/// capability tests don't trust the implementation under test.
std::size_t damage_of(const Topology& topo,
                      const std::vector<std::uint32_t>& cut) {
  const std::size_t n = topo.size();
  std::vector<bool> removed(n, false), seen(n, false);
  for (std::uint32_t v : cut) removed[v] = true;
  std::size_t components = 0, survivors = 0, largest = 0;
  std::deque<std::uint32_t> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (removed[s] || seen[s]) continue;
    ++components;
    std::size_t count = 0;
    seen[s] = true;
    queue.push_back(static_cast<std::uint32_t>(s));
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      ++count;
      for (std::uint32_t w : topo.neighbors(u)) {
        if (!removed[w] && !seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    survivors += count;
    largest = std::max(largest, count);
  }
  if (components < 2 || survivors < 2) return n;
  return largest;
}

TEST(MinVertexCutTest, MatchesBruteForceOnLines) {
  for (std::size_t n = 3; n <= 12; ++n) {
    expect_matches_reference(Topology::line(n), "line");
  }
}

TEST(MinVertexCutTest, MatchesBruteForceOnRings) {
  for (std::size_t n = 3; n <= 12; ++n) {
    expect_matches_reference(Topology::ring(n), "ring");
  }
}

TEST(MinVertexCutTest, MatchesBruteForceOnGrids) {
  for (std::size_t n : {4, 6, 9, 12, 16, 20, 25}) {
    expect_matches_reference(Topology::grid_n(n), "grid_n");
  }
  expect_matches_reference(Topology::grid(5, 3), "grid5x3");
  expect_matches_reference(Topology::grid(2, 7), "grid2x7");
}

TEST(MinVertexCutTest, MatchesBruteForceOnCliques) {
  // No cut exists: every removal leaves one component.
  for (std::size_t n = 3; n <= 8; ++n) {
    expect_matches_reference(Topology::clique(n), "clique");
  }
}

TEST(MinVertexCutTest, MatchesBruteForceOnRandomGeometric) {
  // Radii span disconnected dust through near-clique; the disconnected
  // instances exercise the size-1 fast path on both sides.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (double radius : {0.25, 0.4, 0.6}) {
      expect_matches_reference(Topology::random_geometric(16, radius, seed),
                               "rgg16");
      expect_matches_reference(Topology::random_geometric(24, radius, seed),
                               "rgg24");
    }
  }
}

TEST(MinVertexCutTest, MatchesBruteForceAtTheOldSizeCap) {
  // n = 48..64 was the upper end of the brute-force regime; the max-flow
  // path must agree there too (the enumeration budget covers C(64, 3)).
  expect_matches_reference(Topology::ring(48), "ring48");
  expect_matches_reference(Topology::grid_n(49), "grid49");
  expect_matches_reference(Topology::ring(64), "ring64");
}

TEST(MinVertexCutTest, FindsSize2CutsPastTheOldCap) {
  // The old implementation capped graphs over 64 nodes to single-vertex
  // cuts, so a 128-ring -- vertex connectivity exactly 2 -- came back
  // empty.  The max-flow search finds the cut, and the damage ranking
  // still picks the most balanced, lexicographically-first split.
  const auto cut = Topology::ring(128).min_vertex_cut();
  EXPECT_EQ(cut, (std::vector<std::uint32_t>{0, 64}));
  EXPECT_EQ(damage_of(Topology::ring(128), cut), 63u);
}

TEST(MinVertexCutTest, LargeLadderHasBalancedRungCut) {
  // 2 x 100 ladder: connectivity 2, and C(200, 2) is still inside the
  // enumeration budget, so the selection matches what the brute force
  // WOULD have chosen if it could run.
  const Topology ladder = Topology::grid(2, 100);
  const auto cut = ladder.min_vertex_cut();
  ASSERT_EQ(cut.size(), 2u);
  const std::size_t d = damage_of(ladder, cut);
  EXPECT_LT(d, ladder.size());
  EXPECT_LE(d, 100u);  // within 2 nodes of the perfect 99/99 split
  // Minimality: no single vertex disconnects a ladder.
  EXPECT_TRUE(ladder.min_vertex_cut(1).empty());
}

TEST(MinVertexCutTest, LargeCliqueStaysEmptyCheaply) {
  // No non-adjacent pair exists, so the flow search proves "no cut" with
  // zero flow computations -- the old code burned C(70, 1) damage sweeps
  // to conclude the same.
  EXPECT_TRUE(Topology::clique(70).min_vertex_cut().empty());
}

TEST(MinVertexCutTest, BudgetExceededStillReturnsAMinimumCut) {
  // 2 x 400 ladder: C(800, 2) overflows the enumeration budget, so the
  // result comes from the flow's own min-cut certificates.  It must still
  // be a genuine minimum cut: size 2, separating, and no size-1 cut
  // exists.
  const Topology ladder = Topology::grid(2, 400);
  const auto cut = ladder.min_vertex_cut();
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_LT(damage_of(ladder, cut), ladder.size());
  EXPECT_TRUE(ladder.min_vertex_cut(1).empty());
}

TEST(MinVertexCutTest, MaxSizeZeroAndTinyGraphsAreEmpty) {
  EXPECT_TRUE(Topology::line(2).min_vertex_cut().empty());
  EXPECT_TRUE(Topology::ring(10).min_vertex_cut(0).empty());
  // Ring connectivity is 2: a budget of 1 must return empty, not a
  // "best effort" single vertex.
  EXPECT_TRUE(Topology::ring(10).min_vertex_cut(1).empty());
}

}  // namespace
}  // namespace ccd
