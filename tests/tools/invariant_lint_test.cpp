// Fixture tests for ccd_invariant_lint: every rule R1-R4 is proven live
// by a violating fixture that must fail with the expected keyed
// diagnostic, a clean fixture that must pass (including forbidden tokens
// hidden in comments/strings/raw strings), plus the allowlist workflow
// (suppression, stale entries, missing justifications) and exit codes.
//
// The lint binary path and fixture directory are injected by CMake as
// CCD_LINT_BIN / CCD_LINT_FIXTURES / CCD_REPO_ROOT.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(CCD_LINT_BIN) + " " + args + " 2>&1";
  LintResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (!pipe) return r;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.output.append(buf, got);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixtures() { return CCD_LINT_FIXTURES; }

}  // namespace

TEST(InvariantLint, BadTreeFailsWithKeyedDiagnosticsForEveryRule) {
  const LintResult r = run_lint("--root " + fixtures() + "/bad");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // R1: nondeterminism sources.
  EXPECT_NE(r.output.find("src/exp/r1_rand.cpp:6: error: [R1.rand]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/exp/r1_rand.cpp:7: error: [R1.rand]"),
            std::string::npos);
  EXPECT_NE(r.output.find("src/exp/r1_rand.cpp:8: error: [R1.rand]"),
            std::string::npos);
  EXPECT_NE(r.output.find("src/model/r1_time.cpp:6: error: [R1.wall_clock]"),
            std::string::npos);
  EXPECT_NE(r.output.find("src/model/r1_time.cpp:7: error: [R1.wall_clock]"),
            std::string::npos);
  EXPECT_NE(
      r.output.find("src/exp/r1_unordered.cpp:5: error: [R1.unordered]"),
      std::string::npos);
  // R2: raw engine outside util/.
  EXPECT_NE(r.output.find("src/net/r2_engine.cpp:5: error: [R2.raw_engine]"),
            std::string::npos);
  // R3: layering, both the obs-isolation edge and a generic up-include.
  EXPECT_NE(r.output.find("src/obs/r3_obs.cpp:3: error: [R3.layering]"),
            std::string::npos);
  EXPECT_NE(r.output.find("obs/ must never feed back into execution"),
            std::string::npos);
  EXPECT_NE(r.output.find("src/model/r3_up.hpp:3: error: [R3.layering]"),
            std::string::npos);
  EXPECT_NE(
      r.output.find("src/weird/r3_unknown.cpp:1: error: [R3.unknown_layer]"),
      std::string::npos);
  // R3: dispatcher sub-layer isolation (a plain up-DAG check would miss
  // this -- exp outranks engine, so only the dispatch rule fires).
  EXPECT_NE(r.output.find(
                "src/exp/dispatch/r3_dispatch.cpp:3: error: [R3.dispatch]"),
            std::string::npos)
      << r.output;
  // R4: float accumulation in a report path.
  EXPECT_NE(r.output.find("src/exp/r4_acc.cpp:5: error: [R4.float_accum]"),
            std::string::npos);
  EXPECT_NE(r.output.find("13 error(s)"), std::string::npos) << r.output;
}

TEST(InvariantLint, GoodTreeIsClean) {
  // Forbidden tokens in comments/strings/raw strings, wall clock in obs/,
  // unordered containers outside report paths, raw engines inside util/:
  // all must pass.
  const LintResult r = run_lint("--root " + fixtures() + "/good");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s)"), std::string::npos) << r.output;
}

TEST(InvariantLint, AllowlistSuppressesPerRuleAndFile) {
  const LintResult r =
      run_lint("--root " + fixtures() + "/bad --allow " + fixtures() +
               "/allow_r1_rand.txt src/exp/r1_rand.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 3 suppressed by allowlist"),
            std::string::npos)
      << r.output;
}

TEST(InvariantLint, StaleAllowlistEntryIsAnError) {
  // Same allowlist, but scanning a file it does not apply to: the unused
  // entry must fail the run so the allowlist can only shrink.
  const LintResult r =
      run_lint("--root " + fixtures() + "/bad --allow " + fixtures() +
               "/allow_r1_rand.txt src/model/r1_time.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[allowlist.stale]"), std::string::npos)
      << r.output;
}

TEST(InvariantLint, AllowlistEntryWithoutJustificationIsAnError) {
  const LintResult r =
      run_lint("--root " + fixtures() + "/bad --allow " + fixtures() +
               "/allow_nojust.txt src/exp/r1_rand.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[allowlist.missing_justification]"),
            std::string::npos)
      << r.output;
  // The malformed entry must NOT suppress the findings it names.
  EXPECT_NE(r.output.find("src/exp/r1_rand.cpp:8: error: [R1.rand]"),
            std::string::npos);
}

TEST(InvariantLint, AllowlistEntryWithUnknownRuleIsAnError) {
  const LintResult r =
      run_lint("--root " + fixtures() + "/bad --allow " + fixtures() +
               "/allow_unknown_rule.txt src/exp/r1_rand.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[allowlist.unknown_rule]"), std::string::npos)
      << r.output;
}

TEST(InvariantLint, ListRulesPrintsCatalog) {
  const LintResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* key :
       {"R1.rand", "R1.wall_clock", "R1.unordered", "R2.raw_engine",
        "R3.layering", "R3.dispatch", "R4.float_accum"}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key;
  }
}

TEST(InvariantLint, UnknownFlagExitsTwo) {
  const LintResult r = run_lint("--bogus-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(InvariantLint, RealTreeRunsClean) {
  // The acceptance criterion, enforced as a test: the shipped tree (with
  // its checked-in allowlist) must lint clean.
  const LintResult r = run_lint("--root " + std::string(CCD_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(" 0 error(s)"), std::string::npos) << r.output;
}
