// R2.raw_engine fixture: raw std:: engine seeded outside src/util/.
#include <random>

unsigned fixture_draw(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<unsigned>(gen());
}
