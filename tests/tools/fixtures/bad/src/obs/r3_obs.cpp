// R3.layering fixture: obs/ including an engine decision header would let
// telemetry feed back into execution.
#include "engine/round_engine.hpp"

int fixture_peek() { return 0; }
