// R3.unknown_layer fixture: src/weird/ is not in the declared DAG.
int fixture_unknown() { return 1; }
