// R1.wall_clock fixture: wall-clock reads outside src/obs/.
#include <chrono>
#include <ctime>

long long fixture_stamp() {
  const long long t = static_cast<long long>(std::time(nullptr));
  const auto now = std::chrono::system_clock::now();
  return t + now.time_since_epoch().count();
}
