// R3.layering fixture: a low layer including up into exp/.
#pragma once
#include "exp/scenario_spec.hpp"
