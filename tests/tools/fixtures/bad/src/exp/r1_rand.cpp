// R1.rand fixture: libc/std nondeterministic randomness in a report path.
#include <cstdlib>
#include <random>

int fixture_noise() {
  std::random_device dev;
  srand(42);
  return rand() + static_cast<int>(dev());
}
