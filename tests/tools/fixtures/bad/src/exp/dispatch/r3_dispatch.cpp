// R3.dispatch: the dispatcher may not include compute-layer headers --
// execution reaches it only through worker processes and shard files.
#include "engine/round_engine.hpp"

void dispatch_computing_in_process() {}
