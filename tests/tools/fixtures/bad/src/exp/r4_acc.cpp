// R4.float_accum fixture: order-sensitive float fold in a report path.
double fixture_total = 0.0;

void fixture_fold(const double* xs, int n) {
  for (int i = 0; i < n; ++i) fixture_total += xs[i];
}
