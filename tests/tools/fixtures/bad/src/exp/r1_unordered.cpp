// R1.unordered fixture: address-ordered iteration in a serialization path.
#include <string>
#include <unordered_map>

std::string fixture_emit(const std::unordered_map<int, int>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) out += std::to_string(k + v);
  return out;
}
