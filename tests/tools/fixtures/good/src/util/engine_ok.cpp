// Good fixture: src/util/ is the one place raw std:: engines may appear
// (the hash(seed, salt) helpers themselves are built here).
#include <random>

unsigned fixture_reference_draw(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<unsigned>(gen());
}
