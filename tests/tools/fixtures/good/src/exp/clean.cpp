// Good fixture: forbidden tokens in comments, strings and raw strings
// must never fire: rand() srand(1) std::random_device std::mt19937
// time(nullptr) std::chrono::system_clock std::unordered_map
// #include "exp/does_not_exist.hpp"
#include <map>
#include <string>

namespace fixture {

const char* kDoc = "rand() and std::mt19937 and time(0) in a string";
const char* kRaw = R"lint(
  std::random_device inside a raw string; system_clock too
  #include "engine/round_engine.hpp"
  std::unordered_map<int, int> ghosts;
)lint";

// Integer folds are fine anywhere; only float/double ones are flagged.
long long accumulate_runs(const long long* xs, int n) {
  long long total = 0;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

// Declaring a double without accumulating into it is fine.
double scaled_mean(double mean) { return mean * 0.5; }

// Sorted emission: std::map iteration order is deterministic.
std::string emit(const std::map<int, int>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) out += std::to_string(k + v);
  return out;
}

}  // namespace fixture
