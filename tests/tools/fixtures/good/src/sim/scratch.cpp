// Good fixture: unordered containers are allowed OUTSIDE
// serialization/report paths (engine-internal scratch state whose
// iteration order never reaches emitted bytes).
#include <unordered_map>

int fixture_count_distinct(const int* xs, int n) {
  std::unordered_map<int, int> seen;
  for (int i = 0; i < n; ++i) ++seen[xs[i]];
  return static_cast<int>(seen.size());
}
