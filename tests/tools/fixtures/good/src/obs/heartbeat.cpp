// Good fixture: wall clock is permitted in src/obs/ heartbeat code, and
// obs/ may reach DOWN the DAG into util/.
#include "util/flat_json.hpp"

#include <chrono>

long long fixture_wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
