#include "fault/failure_adversary.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

TEST(NoFailures, NeverCrashesAnyone) {
  NoFailures fault;
  std::vector<bool> alive(4, true);
  std::vector<bool> out(4, false);
  for (Round r = 1; r <= 10; ++r) {
    fault.crash_before_send(r, alive, out);
    fault.crash_after_send(r, alive, out);
  }
  for (bool b : out) EXPECT_FALSE(b);
  EXPECT_EQ(fault.last_crash_round(), 0u);
}

TEST(ScheduledCrash, FiresAtExactRoundAndPoint) {
  ScheduledCrash fault({{3, 1, CrashPoint::kBeforeSend},
                        {5, 2, CrashPoint::kAfterSend}});
  std::vector<bool> alive(4, true);
  std::vector<bool> out(4, false);

  fault.crash_before_send(3, alive, out);
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);

  out.assign(4, false);
  fault.crash_after_send(3, alive, out);
  EXPECT_FALSE(out[1]);  // wrong point

  out.assign(4, false);
  fault.crash_after_send(5, alive, out);
  EXPECT_TRUE(out[2]);

  EXPECT_EQ(fault.last_crash_round(), 5u);
}

TEST(ScheduledCrash, IgnoresAlreadyDeadTargets) {
  ScheduledCrash fault({{2, 0, CrashPoint::kBeforeSend}});
  std::vector<bool> alive = {false, true};
  std::vector<bool> out(2, false);
  fault.crash_before_send(2, alive, out);
  EXPECT_FALSE(out[0]);
}

TEST(RandomCrash, NeverKillsLastSurvivor) {
  RandomCrash fault({.p = 1.0, .stop_after = 100, .max_crashes = 100,
                     .seed = 3});
  std::vector<bool> alive(5, true);
  for (Round r = 1; r <= 100; ++r) {
    std::vector<bool> out(5, false);
    fault.crash_before_send(r, alive, out);
    for (std::size_t i = 0; i < 5; ++i) {
      if (out[i]) alive[i] = false;
    }
    int survivors = 0;
    for (bool a : alive) survivors += a ? 1 : 0;
    ASSERT_GE(survivors, 1);
  }
  int survivors = 0;
  for (bool a : alive) survivors += a ? 1 : 0;
  EXPECT_EQ(survivors, 1);  // p = 1.0 kills everyone else immediately
}

TEST(RandomCrash, RespectsMaxCrashes) {
  RandomCrash fault({.p = 1.0, .stop_after = 100, .max_crashes = 2,
                     .seed = 4});
  std::vector<bool> alive(6, true);
  int total = 0;
  for (Round r = 1; r <= 100; ++r) {
    std::vector<bool> out(6, false);
    fault.crash_before_send(r, alive, out);
    for (std::size_t i = 0; i < 6; ++i) {
      if (out[i]) {
        alive[i] = false;
        ++total;
      }
    }
  }
  EXPECT_EQ(total, 2);
}

TEST(RandomCrash, StopsAfterConfiguredRound) {
  RandomCrash fault({.p = 0.5, .stop_after = 3, .max_crashes = 100,
                     .seed = 5});
  std::vector<bool> alive(4, true);
  std::vector<bool> out(4, false);
  fault.crash_before_send(4, alive, out);
  for (bool b : out) EXPECT_FALSE(b);
  EXPECT_EQ(fault.last_crash_round(), 3u);
}

}  // namespace
}  // namespace ccd
