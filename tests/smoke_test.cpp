// Smoke test: each algorithm solves consensus in a friendly world.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/ecf_adversary.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

World friendly_world(const ConsensusAlgorithm& alg, std::size_t n,
                     std::uint64_t num_values, std::uint64_t seed) {
  WakeupService::Options ws;
  ws.r_wake = 5;
  EcfAdversary::Options ecf;
  ecf.r_cf = 5;
  ecf.seed = seed;
  return make_world(alg, random_initial_values(n, num_values, seed),
                    std::make_unique<WakeupService>(ws),
                    std::make_unique<OracleDetector>(
                        DetectorSpec::MajOAC(5), make_truthful_policy()),
                    std::make_unique<EcfAdversary>(ecf),
                    std::make_unique<NoFailures>());
}

TEST(Smoke, Alg1Decides) {
  Alg1Algorithm alg;
  auto summary = run_consensus(friendly_world(alg, 8, 16, 42), 500);
  EXPECT_TRUE(summary.verdict.solved());
  EXPECT_LE(summary.rounds_after_cst, 2u);
}

TEST(Smoke, Alg2Decides) {
  Alg2Algorithm alg(16);
  auto summary = run_consensus(friendly_world(alg, 8, 16, 43), 500);
  EXPECT_TRUE(summary.verdict.solved());
}

TEST(Smoke, Alg3DecidesUnderTotalLoss) {
  Alg3Algorithm alg(16);
  UnrestrictedLoss::Options loss;
  World world = make_world(
      alg, random_initial_values(8, 16, 44), std::make_unique<NoCm>(),
      std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                       make_truthful_policy()),
      std::make_unique<UnrestrictedLoss>(loss),
      std::make_unique<NoFailures>());
  auto summary = run_consensus(std::move(world), 500);
  EXPECT_TRUE(summary.verdict.solved());
}

TEST(Smoke, Alg4Decides) {
  Alg4Algorithm alg(/*num_values=*/1 << 10, /*id_space=*/64);
  auto summary = run_consensus(friendly_world(alg, 8, 1 << 10, 45), 2000);
  EXPECT_TRUE(summary.verdict.solved());
}

}  // namespace
}  // namespace ccd
