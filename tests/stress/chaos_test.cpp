// Chaos stress: long randomized campaigns over every algorithm with
// randomly drawn (legal) environments.  Safety must survive everything;
// liveness must hold whenever the drawn environment satisfies the
// algorithm's theorem preconditions.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/backoff_cm.hpp"
#include "cm/no_cm.hpp"
#include "cm/wakeup_service.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/alg4_non_anonymous.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "net/capture_effect.hpp"
#include "net/ecf_adversary.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"
#include "util/rng.hpp"

namespace ccd {
namespace {

struct DrawnEnv {
  std::size_t n;
  std::uint64_t num_values;
  Round cst;
  std::unique_ptr<ContentionManager> cm;
  std::unique_ptr<LossAdversary> loss;
  std::unique_ptr<FailureAdversary> fault;
};

DrawnEnv draw_env(Rng& rng, bool need_ecf) {
  DrawnEnv env;
  env.n = 2 + rng.below(14);
  env.num_values = 2 + rng.below(1 << 12);
  env.cst = 1 + static_cast<Round>(rng.below(40));

  WakeupService::Options ws;
  ws.r_wake = env.cst;
  ws.pre = static_cast<WakeupService::PreStabilization>(rng.below(4));
  ws.post = rng.chance(0.5)
                ? WakeupService::PostStabilization::kMinAlive
                : WakeupService::PostStabilization::kRotateAlive;
  ws.seed = rng();
  env.cm = std::make_unique<WakeupService>(ws);

  const int loss_kind = static_cast<int>(rng.below(need_ecf ? 3 : 4));
  switch (loss_kind) {
    case 0: {
      EcfAdversary::Options o;
      o.r_cf = env.cst;
      o.pre = static_cast<EcfAdversary::PreMode>(rng.below(3));
      o.contention = static_cast<EcfAdversary::ContentionMode>(rng.below(4));
      o.p_deliver = 0.2 + 0.6 * rng.uniform();
      o.seed = rng();
      env.loss = std::make_unique<EcfAdversary>(o);
      break;
    }
    case 1: {
      CaptureEffectLoss::Options o;
      o.r_cf = env.cst;
      o.p_capture = 0.2 + 0.7 * rng.uniform();
      o.p_single_deliver = 0.5 + 0.4 * rng.uniform();
      o.seed = rng();
      env.loss = std::make_unique<CaptureEffectLoss>(o);
      break;
    }
    case 2: {
      ProbabilisticLoss::Options o;
      o.p_deliver = 0.3 + 0.6 * rng.uniform();
      o.r_cf = env.cst;
      o.seed = rng();
      env.loss = std::make_unique<ProbabilisticLoss>(o);
      break;
    }
    default: {
      env.loss = std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
          UnrestrictedLoss::Mode::kRandom, 0.4, rng()});
      break;
    }
  }

  if (rng.chance(0.5)) {
    RandomCrash::Options o;
    o.p = 0.03 * rng.uniform();
    o.stop_after = env.cst > 2 ? env.cst - 2 : 1;
    o.seed = rng();
    env.fault = std::make_unique<RandomCrash>(o);
  } else {
    env.fault = std::make_unique<NoFailures>();
  }
  return env;
}

TEST(Chaos, Alg1Campaign) {
  Rng rng(0xA151);
  for (int trial = 0; trial < 60; ++trial) {
    DrawnEnv env = draw_env(rng, /*need_ecf=*/true);
    Alg1Algorithm alg;
    World world = make_world(
        alg, random_initial_values(env.n, env.num_values, rng()),
        std::move(env.cm),
        std::make_unique<OracleDetector>(
            DetectorSpec::MajOAC(env.cst),
            std::make_unique<RandomLegalPolicy>(rng())),
        std::move(env.loss), std::move(env.fault));
    const RunSummary s = run_consensus(std::move(world), env.cst + 100);
    ASSERT_TRUE(s.verdict.agreement) << "trial " << trial;
    ASSERT_TRUE(s.verdict.strong_validity) << "trial " << trial;
    ASSERT_TRUE(s.verdict.termination) << "trial " << trial;
    ASSERT_LE(s.rounds_after_cst, 2u) << "trial " << trial;
  }
}

TEST(Chaos, Alg2Campaign) {
  Rng rng(0xA152);
  for (int trial = 0; trial < 60; ++trial) {
    DrawnEnv env = draw_env(rng, /*need_ecf=*/true);
    Alg2Algorithm alg(env.num_values);
    const Round bound = Alg2Algorithm::round_bound_after_cst(env.num_values);
    World world = make_world(
        alg, random_initial_values(env.n, env.num_values, rng()),
        std::move(env.cm),
        std::make_unique<OracleDetector>(
            DetectorSpec::ZeroOAC(env.cst),
            std::make_unique<RandomLegalPolicy>(rng())),
        std::move(env.loss), std::move(env.fault));
    const RunSummary s =
        run_consensus(std::move(world), env.cst + 4 * bound + 60);
    ASSERT_TRUE(s.verdict.agreement) << "trial " << trial;
    ASSERT_TRUE(s.verdict.strong_validity) << "trial " << trial;
    ASSERT_TRUE(s.verdict.termination) << "trial " << trial;
    ASSERT_LE(s.rounds_after_cst, bound) << "trial " << trial;
  }
}

TEST(Chaos, Alg3Campaign) {
  Rng rng(0xA153);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.below(10);
    const std::uint64_t num_values = 2 + rng.below(1 << 10);
    Alg3Algorithm alg(num_values);
    std::unique_ptr<LossAdversary> loss;
    if (rng.chance(0.5)) {
      loss = std::make_unique<UnrestrictedLoss>(UnrestrictedLoss::Options{
          rng.chance(0.5) ? UnrestrictedLoss::Mode::kDropOthers
                          : UnrestrictedLoss::Mode::kRandom,
          0.4, rng()});
    } else {
      ProbabilisticLoss::Options o;
      o.p_deliver = rng.uniform();
      o.r_cf = kNeverRound;
      o.seed = rng();
      loss = std::make_unique<ProbabilisticLoss>(o);
    }
    RandomCrash::Options crash;
    crash.p = 0.02 * rng.uniform();
    crash.stop_after = 30;
    crash.seed = rng();
    World world = make_world(
        alg, random_initial_values(n, num_values, rng()),
        std::make_unique<NoCm>(),
        std::make_unique<OracleDetector>(DetectorSpec::ZeroAC(),
                                         make_truthful_policy()),
        std::move(loss), std::make_unique<RandomCrash>(crash));
    const RunSummary s = run_consensus(std::move(world), 3000);
    ASSERT_TRUE(s.verdict.agreement) << "trial " << trial;
    ASSERT_TRUE(s.verdict.strong_validity) << "trial " << trial;
    ASSERT_TRUE(s.verdict.termination) << "trial " << trial;
  }
}

TEST(Chaos, Alg4Campaign) {
  Rng rng(0xA154);
  for (int trial = 0; trial < 40; ++trial) {
    DrawnEnv env = draw_env(rng, /*need_ecf=*/true);
    const std::uint64_t id_space =
        rng.chance(0.5) ? 64 : (1ull << 40);  // both protocol modes
    Alg4Algorithm alg(1ull << 20, id_space);
    World world = make_world(
        alg, random_initial_values(env.n, 1ull << 20, rng()),
        std::move(env.cm),
        std::make_unique<OracleDetector>(
            DetectorSpec::ZeroOAC(env.cst),
            std::make_unique<SpuriousPolicy>(0.2, env.cst, rng())),
        std::move(env.loss), std::move(env.fault));
    const RunSummary s = run_consensus(std::move(world), env.cst + 1200);
    ASSERT_TRUE(s.verdict.agreement) << "trial " << trial;
    ASSERT_TRUE(s.verdict.strong_validity) << "trial " << trial;
    ASSERT_TRUE(s.verdict.termination) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ccd
