// Parameterized matrix over the Lemma 23 composition: the half/majority
// boundary must behave identically at every group size and partition
// length.
#include <gtest/gtest.h>

#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "lowerbound/composition.hpp"

namespace ccd {
namespace {

struct MatrixParams {
  std::size_t group_size;
  Round k;
};

class CompositionMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(CompositionMatrix, HalfAcSplitsAlgorithm1Always) {
  const MatrixParams p = GetParam();
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = p.group_size;
  config.value_a = 1;
  config.value_b = 2;
  config.k = p.k;
  config.spec = DetectorSpec::HalfAC();
  config.max_rounds = p.k + 100;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.groups_disagree)
      << "g=" << p.group_size << " k=" << p.k;
  // The split completes within the first proposal/veto cycle.
  EXPECT_LE(outcome.group_a_last_decision, 2u);
  EXPECT_LE(outcome.group_b_last_decision, 2u);
}

TEST_P(CompositionMatrix, MajAcProtectsAlgorithm1Always) {
  const MatrixParams p = GetParam();
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = p.group_size;
  config.value_a = 1;
  config.value_b = 2;
  config.k = p.k;
  config.spec = DetectorSpec::MajAC();
  config.max_rounds = p.k + 100;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
  EXPECT_GT(outcome.summary.verdict.first_decision_round, p.k);
}

TEST_P(CompositionMatrix, ZeroCompletenessProtectsAlgorithm2Always) {
  const MatrixParams p = GetParam();
  Alg2Algorithm alg(64);
  CompositionConfig config;
  config.group_size = p.group_size;
  config.value_a = 5;
  config.value_b = 60;
  config.k = p.k;
  config.spec = DetectorSpec::HalfAC();  // >= zero completeness
  config.max_rounds = p.k + 200;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
  EXPECT_GT(outcome.summary.verdict.first_decision_round, p.k);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CompositionMatrix,
    ::testing::Values(MatrixParams{2, 4}, MatrixParams{2, 30},
                      MatrixParams{3, 10}, MatrixParams{5, 4},
                      MatrixParams{5, 30}, MatrixParams{8, 10},
                      MatrixParams{12, 20}));

// The value choice cannot rescue Algorithm 1: ANY pair of distinct values
// splits, because its broadcast pattern is value-independent (Corollary 2
// bites hard).
class ValuePairSweep
    : public ::testing::TestWithParam<std::pair<Value, Value>> {};

TEST_P(ValuePairSweep, EveryValuePairSplits) {
  const auto [va, vb] = GetParam();
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = va;
  config.value_b = vb;
  config.k = 10;
  config.spec = DetectorSpec::HalfAC();
  config.max_rounds = 50;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.groups_disagree);
  EXPECT_EQ(outcome.group_a_value, va);
  EXPECT_EQ(outcome.group_b_value, vb);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValuePairSweep,
    ::testing::Values(std::pair<Value, Value>{0, 1},
                      std::pair<Value, Value>{0, 1000000},
                      std::pair<Value, Value>{42, 43},
                      std::pair<Value, Value>{999, 7}));

}  // namespace
}  // namespace ccd
