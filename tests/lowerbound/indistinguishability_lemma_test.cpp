// The literal Lemma 23 indistinguishability check, at the level of
// Definition 12 process views: through round k, every process of group R
// in the composed gamma execution has EXACTLY the view it has in its solo
// alpha execution -- same sends, same receive multisets, same detector
// advice, same contention advice.  This is the machine-checked core of
// Theorems 4, 6 and 7.
#include <gtest/gtest.h>

#include "cd/oracle_detector.hpp"
#include "cm/adversarial_cm.hpp"
#include "cm/leader_election.hpp"
#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/harness.hpp"
#include "fault/failure_adversary.hpp"
#include "model/indistinguishability.hpp"
#include "net/partition_adversary.hpp"
#include "sim/executor.hpp"

namespace ccd {
namespace {

/// Solo alpha_P(v) with |P| = n, recording views.
Executor make_alpha_executor(const ConsensusAlgorithm& alg, std::size_t n,
                             Value v) {
  PartitionAdversary::Options loss;
  loss.split = static_cast<std::uint32_t>(n);
  loss.heal_round = kNeverRound;
  LeaderElectionService::Options cm;
  cm.r_lead = 1;
  cm.leader = 0;
  // Definition 24 fixes the advice trace obliviously (min(P) active in
  // every round); the adaptive variant would diverge once processes halt.
  cm.adapt_on_crash = false;
  World world = make_world(
      alg, std::vector<Value>(n, v),
      std::make_unique<LeaderElectionService>(cm),
      std::make_unique<OracleDetector>(DetectorSpec::AC(),
                                       make_truthful_policy()),
      std::make_unique<PartitionAdversary>(loss),
      std::make_unique<NoFailures>());
  ExecutorOptions options;
  options.stop_when_all_decided = false;
  return Executor(std::move(world), options);
}

/// Composed gamma over groups of size n with values (va, vb), half-AC
/// prefer-null detector, partition through round k.
Executor make_gamma_executor(const ConsensusAlgorithm& alg, std::size_t n,
                             Value va, Value vb, Round k) {
  std::vector<Value> initials(2 * n, va);
  for (std::size_t i = n; i < 2 * n; ++i) initials[i] = vb;
  PartitionAdversary::Options loss;
  loss.split = static_cast<std::uint32_t>(n);
  loss.heal_round = k + 1;
  World world = make_world(
      alg, std::move(initials),
      std::make_unique<TwoGroupMaxLs>(static_cast<std::uint32_t>(n), k),
      std::make_unique<OracleDetector>(DetectorSpec::HalfAC(),
                                       make_prefer_null_policy()),
      std::make_unique<PartitionAdversary>(loss),
      std::make_unique<NoFailures>());
  ExecutorOptions options;
  options.stop_when_all_decided = false;
  return Executor(std::move(world), options);
}

void check_lemma23(const ConsensusAlgorithm& alg, std::size_t n, Value va,
                   Value vb, Round k) {
  Executor alpha_a = make_alpha_executor(alg, n, va);
  Executor alpha_b = make_alpha_executor(alg, n, vb);
  Executor gamma = make_gamma_executor(alg, n, va, vb, k);
  for (Round r = 0; r < k; ++r) {
    alpha_a.step();
    alpha_b.step();
    gamma.step();
  }
  // The lemma's premise: identical basic broadcast count sequences.
  const auto bbc_a =
      alpha_a.log().transmission().basic_broadcast_sequence(k);
  const auto bbc_b =
      alpha_b.log().transmission().basic_broadcast_sequence(k);
  ASSERT_EQ(bbc_a, bbc_b) << "premise violated: pick colliding values";

  // The conclusion: per-process view equality through round k.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(indistinguishable_through(
        alpha_a.log().view(static_cast<ProcessId>(i)),
        gamma.log().view(static_cast<ProcessId>(i)), k))
        << "group R process " << i;
    EXPECT_TRUE(indistinguishable_through(
        alpha_b.log().view(static_cast<ProcessId>(i)),
        gamma.log().view(static_cast<ProcessId>(n + i)), k))
        << "group R' process " << i;
  }
}

TEST(Lemma23, Algorithm1ViewsMatchThroughK) {
  // Any two values collide for Algorithm 1 (its broadcast pattern is
  // value-independent): 1 broadcaster in round 1, none in round 2, ...
  Alg1Algorithm alg;
  check_lemma23(alg, 4, 1, 2, 8);
}

TEST(Lemma23, Algorithm1LargerGroupsAndLongerPrefix) {
  Alg1Algorithm alg;
  check_lemma23(alg, 9, 0, 7, 20);
}

TEST(Lemma23, Algorithm2ViewsMatchForBitSharingValues) {
  // Algorithm 2's bbc depends on the estimate's bits; 0b0101 and 0b0100
  // share their first three propose bits, so their alpha executions agree
  // through prepare + 3 propose rounds = 4 rounds.
  Alg2Algorithm alg(16);
  check_lemma23(alg, 4, 0b0101, 0b0100, 4);
}

TEST(Lemma23, Theorem6Consequence) {
  // The composed execution of two DECIDED alpha prefixes violates
  // agreement: Algorithm 1 decides by round 2 < k in its alphas, so gamma
  // must contain both decisions.
  Alg1Algorithm alg;
  Executor gamma = make_gamma_executor(alg, 4, 3, 9, 10);
  for (Round r = 0; r < 10; ++r) gamma.step();
  const auto verdict =
      check_consensus(gamma.log(), gamma.world().initial_values);
  EXPECT_FALSE(verdict.agreement);
}

TEST(Lemma23, ViewsDivergeAfterTheHeal) {
  // Sanity: the indistinguishability is exactly k rounds long; once the
  // partition heals the groups see each other and views split from the
  // solo executions.  (Halted processes stay halted, so probe with
  // Algorithm 2 and values that keep it cycling.)
  Alg2Algorithm alg(16);
  const Round k = 4;
  Executor alpha = make_alpha_executor(alg, 4, 0b0101);
  Executor gamma = make_gamma_executor(alg, 4, 0b0101, 0b0100, k);
  for (Round r = 0; r < k + 6; ++r) {
    alpha.step();
    gamma.step();
  }
  const Round prefix = indistinguishable_prefix(alpha.log().view(0),
                                                gamma.log().view(0));
  EXPECT_GE(prefix, k);
  EXPECT_LT(prefix, k + 6);
}

}  // namespace
}  // namespace ccd
