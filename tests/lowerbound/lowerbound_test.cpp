// Executable versions of the Section 8 lower-bound constructions.
#include <gtest/gtest.h>

#include "consensus/alg1_maj_oac.hpp"
#include "consensus/alg2_zero_oac.hpp"
#include "consensus/alg3_zero_ac_nocf.hpp"
#include "consensus/naive_no_cd.hpp"
#include "lowerbound/alpha_execution.hpp"
#include "lowerbound/broadcast_sequence.hpp"
#include "lowerbound/composition.hpp"
#include "util/bitcodec.hpp"

namespace ccd {
namespace {

TEST(AlphaExecution, Alg1DecidesByRoundTwo) {
  // In alpha_P(v): CST = 1, so Theorem 1 promises a decision by round 3
  // (CST + 2); in fact the first proposal/veto cycle suffices.
  Alg1Algorithm alg;
  const AlphaResult result = run_alpha(alg, 4, 7, 10);
  EXPECT_TRUE(result.all_decided);
  EXPECT_EQ(result.decided_value, 7u);
  EXPECT_LE(result.last_decision_round, 3u);
}

TEST(AlphaExecution, BbcReflectsLoneLeader) {
  Alg1Algorithm alg;
  const AlphaResult result = run_alpha(alg, 4, 3, 6);
  ASSERT_GE(result.bbc.size(), 2u);
  // Round 1: only the leader proposes.  Round 2: nobody vetoes.
  EXPECT_EQ(result.bbc[0], BroadcastCount::kOne);
  EXPECT_EQ(result.bbc[1], BroadcastCount::kZero);
}

TEST(AlphaExecution, AnonymousAlgorithmsYieldIdenticalBbcAcrossIndexSets) {
  // Corollary 2: alpha_P(v) and alpha_P'(v) share their basic broadcast
  // count sequence for anonymous algorithms.  We emulate disjoint index
  // sets with different identifier bases.
  Alg2Algorithm alg(32);
  const AlphaResult a = run_alpha(alg, 5, 19, 30, /*id_base=*/0);
  const AlphaResult b = run_alpha(alg, 5, 19, 30, /*id_base=*/5000);
  EXPECT_EQ(a.bbc, b.bbc);
}

TEST(AlphaCollision, PigeonholeFindsCollidingPairForAlg2) {
  // Lemma 21: for k rounds there are at most 3^k distinct sequences.  With
  // |V| = 1024 and k = 4 a collision must exist among <= 82 candidates
  // (3^4 + 1); Algorithm 2's value-dependent bit pattern makes collisions
  // appear exactly among values sharing their first propose bits.
  Alg2Algorithm alg(1024);
  const auto pair = find_alpha_collision(alg, 4, 1024, 4, 100);
  ASSERT_TRUE(pair.has_value());
  EXPECT_NE(pair->v1, pair->v2);
  // Verify the collision really holds.
  const AlphaResult a = run_alpha(alg, 4, pair->v1, 4);
  const AlphaResult b = run_alpha(alg, 4, pair->v2, 4);
  EXPECT_EQ(a.bbc, b.bbc);
}

TEST(AlphaCollision, LongPrefixNeedsMoreValues) {
  // With only 4 values and Algorithm 2's 2-bit patterns, all four
  // sequences differ within the first full cycle: no collision at k = 8.
  Alg2Algorithm alg(4);
  const auto pair = find_alpha_collision(alg, 4, 4, 8, 4);
  EXPECT_FALSE(pair.has_value());
}

TEST(BetaExecution, TotalLossKeepsAllProcessesInLockstep) {
  Alg3Algorithm alg(16);
  const BetaResult result = run_beta(alg, 4, 5, 64);
  // Anonymous + same value + total loss => identical behaviour; the run
  // still decides because collision reports substitute for messages.
  EXPECT_TRUE(result.all_decided);
  EXPECT_EQ(result.decided_value, 5u);
}

TEST(BetaCollision, Theorem9PigeonholeOnBinarySequences) {
  // 2^k binary sequences of length k: with |V| = 64 and k = 4 at most 16
  // distinct prefixes exist among 17+ candidates.
  Alg3Algorithm alg(64);
  const auto pair = find_beta_collision(alg, 3, 64, 4, 64);
  ASSERT_TRUE(pair.has_value());
  const BetaResult a = run_beta(alg, 3, pair->v1, 4);
  const BetaResult b = run_beta(alg, 3, pair->v2, 4);
  EXPECT_EQ(a.binary_broadcast, b.binary_broadcast);
}

TEST(BetaExecution, Alg3NeedsLogVRounds) {
  // Theorem 9 floor: no decision before lg|V| - 1 rounds.  Algorithm 3's
  // 8*lg|V| behaviour sits comfortably above it; check both directions.
  for (std::uint64_t num_values : {4ull, 16ull, 256ull, 4096ull}) {
    Alg3Algorithm alg(num_values);
    const Round bound = 8 * ceil_log2(num_values) + 8;
    const BetaResult result = run_beta(alg, 3, num_values - 1, bound);
    EXPECT_TRUE(result.all_decided) << num_values;
    const Round floor_bound = ceil_log2(num_values) - 1;
    EXPECT_GE(result.last_decision_round, floor_bound) << num_values;
  }
}

TEST(Composition, Theorem4NaiveNoCdProtocolSplitsDecision) {
  // The Theorem 4 execution: two groups, partitioned through round k with
  // double leaders, healed afterwards.  A protocol that ignores collision
  // detection decides within its own group and violates agreement.
  NaiveNoCdAlgorithm alg(/*patience=*/50);
  CompositionConfig config;
  config.group_size = 3;
  config.value_a = 11;
  config.value_b = 22;
  config.k = 10;
  config.spec = DetectorSpec::NoCD();
  config.max_rounds = 100;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.groups_disagree);
  EXPECT_EQ(outcome.group_a_value, 11u);
  EXPECT_EQ(outcome.group_b_value, 22u);
}

TEST(Composition, Theorem6HalfAcSplitsAlgorithm1) {
  // Lemma 23 in executable form (also asserted from Algorithm 1's side in
  // alg1_test): the half-AC prefer-null detector hides the partition.
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 5;
  config.value_a = 0;
  config.value_b = 9;
  config.k = 12;
  config.spec = DetectorSpec::HalfAC();
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.groups_disagree);
}

TEST(Composition, GroupsIndistinguishableFromSoloRunsDuringPartition) {
  // The heart of Lemma 23: during the partition each group's bbc matches
  // its solo alpha execution's bbc.  We check via the composed run's
  // transmission trace: with Alg1, both groups run proposal(1)/veto(0)
  // cycles, so the composed trace shows 2,0,2,0,... broadcasters.
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 2;
  config.value_b = 5;
  config.k = 6;
  config.spec = DetectorSpec::HalfAC();
  config.max_rounds = 4;  // stop inside the partition window
  const CompositionOutcome outcome = run_composition(alg, config);
  // Both groups decided by round 2 (their alpha executions decide by 2).
  EXPECT_EQ(outcome.group_a_value, 2u);
  EXPECT_EQ(outcome.group_b_value, 5u);
  EXPECT_LE(outcome.group_a_last_decision, 2u);
  EXPECT_LE(outcome.group_b_last_decision, 2u);
}

TEST(Composition, MajorityCompletenessBlocksTheSplit) {
  Alg1Algorithm alg;
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 2;
  config.value_b = 5;
  config.k = 15;
  config.spec = DetectorSpec::MajAC();
  config.max_rounds = 200;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_FALSE(outcome.groups_disagree);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
}

TEST(Composition, Alg2SurvivesEvenZeroCompletePreferNull) {
  // Algorithm 2 needs only zero completeness; the prefer-null adversary
  // over 0-AC cannot trick it into a pre-heal decision.
  Alg2Algorithm alg(64);
  CompositionConfig config;
  config.group_size = 4;
  config.value_a = 1;
  config.value_b = 62;
  config.k = 25;
  config.spec = DetectorSpec::ZeroAC();
  config.max_rounds = 400;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_TRUE(outcome.summary.verdict.termination);
  EXPECT_GT(outcome.summary.verdict.first_decision_round, config.k);
}

TEST(Composition, UnhealedPartitionStallsSafeAlgorithms)
{
  // Theorem 8 flavour: if the partition NEVER heals and the detector is
  // only eventually accurate, no safe algorithm can terminate -- Algorithm
  // 2 stays safe by never deciding.
  Alg2Algorithm alg(16);
  CompositionConfig config;
  config.group_size = 3;
  config.value_a = 4;
  config.value_b = 11;
  config.k = 50;
  config.heal = false;
  config.spec = DetectorSpec::ZeroOAC(1);
  config.max_rounds = 300;
  const CompositionOutcome outcome = run_composition(alg, config);
  EXPECT_TRUE(outcome.summary.verdict.agreement);
  EXPECT_FALSE(outcome.summary.verdict.termination);
}

}  // namespace
}  // namespace ccd
