#include <gtest/gtest.h>

#include "net/capture_effect.hpp"
#include "net/ecf_adversary.hpp"
#include "net/no_loss.hpp"
#include "net/partition_adversary.hpp"
#include "net/probabilistic_loss.hpp"
#include "net/unrestricted_loss.hpp"

namespace ccd {
namespace {

std::uint32_t received_count(const DeliveryMatrix& m,
                             const std::vector<bool>& sent,
                             std::size_t receiver) {
  std::uint32_t n = 0;
  for (std::size_t j = 0; j < sent.size(); ++j) {
    if (sent[j] && m.delivered(receiver, j)) ++n;
  }
  return n;
}

TEST(NoLoss, DeliversEverythingToEveryone) {
  NoLoss loss;
  std::vector<bool> sent = {true, false, true, true};
  DeliveryMatrix m;
  m.reset(4, false);
  loss.decide_delivery(1, sent, m);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(received_count(m, sent, i), 3u);
  }
  EXPECT_EQ(loss.r_cf(), 1u);
}

TEST(EcfAdversary, HonorsEcfObligationAfterRcf) {
  EcfAdversary::Options opts;
  opts.r_cf = 10;
  opts.pre = EcfAdversary::PreMode::kDropOthers;
  EcfAdversary loss(opts);
  std::vector<bool> sent = {false, true, false};
  DeliveryMatrix m;
  // Before r_cf a lone broadcast may vanish entirely.
  m.reset(3, false);
  loss.decide_delivery(9, sent, m);
  EXPECT_EQ(received_count(m, sent, 0), 0u);
  // From r_cf on everyone hears the lone broadcaster.
  m.reset(3, false);
  loss.decide_delivery(10, sent, m);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(m.delivered(i, 1));
  }
}

TEST(EcfAdversary, ContentionRemainsUnconstrainedAfterRcf) {
  EcfAdversary::Options opts;
  opts.r_cf = 1;
  opts.contention = EcfAdversary::ContentionMode::kOwnOnly;
  EcfAdversary loss(opts);
  std::vector<bool> sent = {true, true, false};
  DeliveryMatrix m;
  m.reset(3, false);
  loss.decide_delivery(5, sent, m);
  // Two broadcasters: adversary may drop everything (executor adds
  // self-delivery afterwards).
  EXPECT_EQ(received_count(m, sent, 2), 0u);
}

TEST(EcfAdversary, DeliverAllContentionMode) {
  EcfAdversary::Options opts;
  opts.r_cf = 1;
  opts.contention = EcfAdversary::ContentionMode::kDeliverAll;
  EcfAdversary loss(opts);
  std::vector<bool> sent = {true, true, true};
  DeliveryMatrix m;
  m.reset(3, false);
  loss.decide_delivery(2, sent, m);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(received_count(m, sent, i), 3u);
  }
}

TEST(UnrestrictedLoss, DropOthersNeverDelivers) {
  UnrestrictedLoss loss({UnrestrictedLoss::Mode::kDropOthers, 0.5, 1});
  std::vector<bool> sent = {true, true};
  DeliveryMatrix m;
  for (Round r = 1; r <= 100; ++r) {
    m.reset(2, false);
    loss.decide_delivery(r, sent, m);
    EXPECT_FALSE(m.delivered(0, 1));
    EXPECT_FALSE(m.delivered(1, 0));
  }
  EXPECT_EQ(loss.r_cf(), kNeverRound);
}

TEST(UnrestrictedLoss, RandomModeDeliversSelfAlways) {
  UnrestrictedLoss loss({UnrestrictedLoss::Mode::kRandom, 0.5, 2});
  std::vector<bool> sent = {true, true, true};
  DeliveryMatrix m;
  m.reset(3, false);
  loss.decide_delivery(1, sent, m);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(m.delivered(i, i));
}

TEST(PartitionAdversary, CrossGroupAlwaysLostBeforeHeal) {
  PartitionAdversary loss({.split = 2, .heal_round = 10});
  std::vector<bool> sent = {true, false, true, false};
  DeliveryMatrix m;
  m.reset(4, false);
  loss.decide_delivery(5, sent, m);
  // Lone broadcaster per group: delivered within the group only.
  EXPECT_TRUE(m.delivered(0, 0));
  EXPECT_TRUE(m.delivered(1, 0));
  EXPECT_FALSE(m.delivered(2, 0));
  EXPECT_FALSE(m.delivered(3, 0));
  EXPECT_TRUE(m.delivered(2, 2));
  EXPECT_TRUE(m.delivered(3, 2));
  EXPECT_FALSE(m.delivered(0, 2));
}

TEST(PartitionAdversary, ContentionWithinGroupOnlySelf) {
  PartitionAdversary loss({.split = 2, .heal_round = kNeverRound});
  std::vector<bool> sent = {true, true, false, false};
  DeliveryMatrix m;
  m.reset(4, false);
  loss.decide_delivery(3, sent, m);
  // Two broadcasters in group A: nothing delivered (self-delivery is the
  // executor's job).
  EXPECT_FALSE(m.delivered(1, 0));
  EXPECT_FALSE(m.delivered(0, 1));
}

TEST(PartitionAdversary, HealedChannelIsPerfect) {
  PartitionAdversary loss({.split = 2, .heal_round = 4});
  std::vector<bool> sent = {true, true, true, true};
  DeliveryMatrix m;
  m.reset(4, false);
  loss.decide_delivery(4, sent, m);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(received_count(m, sent, i), 4u);
  }
  EXPECT_EQ(loss.r_cf(), 4u);
}

TEST(CaptureEffect, AtMostOneCaptureUnderContention) {
  CaptureEffectLoss loss({.p_capture = 1.0, .p_single_deliver = 1.0,
                          .r_cf = 1, .seed = 3});
  std::vector<bool> sent = {true, true, true, false};
  DeliveryMatrix m;
  for (Round r = 1; r <= 50; ++r) {
    m.reset(4, false);
    loss.decide_delivery(r, sent, m);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(received_count(m, sent, i), 1u) << "receiver " << i;
    }
  }
}

TEST(CaptureEffect, LoneBroadcastGuaranteedAfterRcf) {
  CaptureEffectLoss loss({.p_capture = 0.5, .p_single_deliver = 0.0,
                          .r_cf = 7, .seed = 4});
  std::vector<bool> sent = {true, false};
  DeliveryMatrix m;
  m.reset(2, false);
  loss.decide_delivery(6, sent, m);
  EXPECT_FALSE(m.delivered(1, 0));  // p_single_deliver = 0 before r_cf
  m.reset(2, false);
  loss.decide_delivery(7, sent, m);
  EXPECT_TRUE(m.delivered(1, 0));
}

TEST(ProbabilisticLoss, RateRoughlyMatchesP) {
  ProbabilisticLoss loss({.p_deliver = 0.7, .r_cf = kNeverRound, .seed = 9});
  std::vector<bool> sent = {true, false};
  DeliveryMatrix m;
  int delivered = 0;
  const int trials = 5000;
  for (int r = 1; r <= trials; ++r) {
    m.reset(2, false);
    loss.decide_delivery(static_cast<Round>(r), sent, m);
    delivered += m.delivered(1, 0) ? 1 : 0;
  }
  EXPECT_NEAR(delivered / static_cast<double>(trials), 0.7, 0.03);
}

TEST(ProbabilisticLoss, EcfVariantGuaranteesLoneBroadcast) {
  ProbabilisticLoss loss({.p_deliver = 0.0, .r_cf = 3, .seed = 10});
  std::vector<bool> sent = {true, false};
  DeliveryMatrix m;
  m.reset(2, false);
  loss.decide_delivery(3, sent, m);
  EXPECT_TRUE(m.delivered(1, 0));
}

}  // namespace
}  // namespace ccd
