#include "model/traces.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

TransmissionRound make_round(std::uint32_t c, std::vector<std::uint32_t> t) {
  TransmissionRound r;
  r.broadcaster_count = c;
  r.receive_count = std::move(t);
  return r;
}

TEST(TransmissionTrace, BroadcastCountClassification) {
  TransmissionTrace tt;
  tt.push(make_round(0, {0, 0}));
  tt.push(make_round(1, {1, 1}));
  tt.push(make_round(2, {1, 2}));
  tt.push(make_round(5, {0, 3}));
  EXPECT_EQ(tt.broadcast_count(1), BroadcastCount::kZero);
  EXPECT_EQ(tt.broadcast_count(2), BroadcastCount::kOne);
  EXPECT_EQ(tt.broadcast_count(3), BroadcastCount::kTwoPlus);
  EXPECT_EQ(tt.broadcast_count(4), BroadcastCount::kTwoPlus);
}

TEST(TransmissionTrace, BasicBroadcastSequencePrefix) {
  TransmissionTrace tt;
  tt.push(make_round(1, {1}));
  tt.push(make_round(0, {0}));
  tt.push(make_round(3, {1}));
  const auto seq = tt.basic_broadcast_sequence(2);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], BroadcastCount::kOne);
  EXPECT_EQ(seq[1], BroadcastCount::kZero);
  // Asking beyond the recorded rounds truncates rather than throws.
  EXPECT_EQ(tt.basic_broadcast_sequence(10).size(), 3u);
}

TEST(CmTrace, ActiveCount) {
  CmTrace cm;
  cm.push({CmAdvice::kActive, CmAdvice::kPassive, CmAdvice::kActive});
  cm.push({CmAdvice::kPassive, CmAdvice::kPassive, CmAdvice::kPassive});
  EXPECT_EQ(cm.active_count(1), 2u);
  EXPECT_EQ(cm.active_count(2), 0u);
}

TEST(RoundView, StructuralEquality) {
  RoundView a;
  a.sent = Message{Message::Kind::kEstimate, 3, 0};
  a.received = {Message{Message::Kind::kEstimate, 3, 0}};
  a.cd = CdAdvice::kNull;
  a.cm = CmAdvice::kActive;
  RoundView b = a;
  EXPECT_EQ(a, b);
  b.cd = CdAdvice::kCollision;
  EXPECT_NE(a, b);
  b = a;
  b.received.clear();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ccd
