#include "model/indistinguishability.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

RoundView view(CdAdvice cd, CmAdvice cm) {
  RoundView v;
  v.cd = cd;
  v.cm = cm;
  return v;
}

TEST(Indistinguishability, IdenticalViewsFullPrefix) {
  ProcessView a, b;
  a.initial_value = b.initial_value = 4;
  for (int i = 0; i < 5; ++i) {
    a.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
    b.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
  }
  EXPECT_EQ(indistinguishable_prefix(a, b), 5u);
  EXPECT_TRUE(indistinguishable_through(a, b, 5));
}

TEST(Indistinguishability, DifferentInitialValueIsZero) {
  ProcessView a, b;
  a.initial_value = 1;
  b.initial_value = 2;
  a.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
  b.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
  EXPECT_EQ(indistinguishable_prefix(a, b), 0u);
  EXPECT_FALSE(indistinguishable_through(a, b, 1));
}

TEST(Indistinguishability, DivergenceCutsPrefix) {
  ProcessView a, b;
  a.initial_value = b.initial_value = 0;
  for (int i = 0; i < 3; ++i) {
    a.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kPassive));
    b.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kPassive));
  }
  a.rounds.push_back(view(CdAdvice::kCollision, CmAdvice::kPassive));
  b.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kPassive));
  EXPECT_EQ(indistinguishable_prefix(a, b), 3u);
  EXPECT_TRUE(indistinguishable_through(a, b, 3));
  EXPECT_FALSE(indistinguishable_through(a, b, 4));
}

TEST(Indistinguishability, MessageContentMatters) {
  ProcessView a, b;
  a.initial_value = b.initial_value = 0;
  RoundView ra, rb;
  ra.received = {Message{Message::Kind::kEstimate, 1, 0}};
  rb.received = {Message{Message::Kind::kEstimate, 2, 0}};
  a.rounds.push_back(ra);
  b.rounds.push_back(rb);
  EXPECT_EQ(indistinguishable_prefix(a, b), 0u);
}

TEST(Indistinguishability, ThroughBeyondRecordedRoundsIsFalse) {
  ProcessView a, b;
  a.initial_value = b.initial_value = 0;
  a.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
  b.rounds.push_back(view(CdAdvice::kNull, CmAdvice::kActive));
  EXPECT_FALSE(indistinguishable_through(a, b, 2));
}

}  // namespace
}  // namespace ccd
