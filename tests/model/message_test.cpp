#include "model/message.hpp"

#include <gtest/gtest.h>

namespace ccd {
namespace {

TEST(Message, UniqueValuesSortedAndDeduped) {
  std::vector<Message> recv = {
      {Message::Kind::kEstimate, 5, 0}, {Message::Kind::kEstimate, 2, 0},
      {Message::Kind::kEstimate, 5, 0}, {Message::Kind::kVeto, 0, 0},
      {Message::Kind::kEstimate, 9, 0}};
  const auto values = unique_values(recv, Message::Kind::kEstimate);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 2u);  // front() is the min the algorithms take
  EXPECT_EQ(values[1], 5u);
  EXPECT_EQ(values[2], 9u);
}

TEST(Message, UniqueValuesFiltersByKind) {
  std::vector<Message> recv = {{Message::Kind::kLeaderValue, 7, 0},
                               {Message::Kind::kEstimate, 3, 0}};
  EXPECT_EQ(unique_values(recv, Message::Kind::kLeaderValue),
            std::vector<Value>{7});
  EXPECT_EQ(unique_values(recv, Message::Kind::kEstimate),
            std::vector<Value>{3});
  EXPECT_TRUE(unique_values(recv, Message::Kind::kVote).empty());
}

TEST(Message, CountKind) {
  std::vector<Message> recv = {{Message::Kind::kVeto, 0, 0},
                               {Message::Kind::kVeto, 0, 0},
                               {Message::Kind::kVote, 0, 0}};
  EXPECT_EQ(count_kind(recv, Message::Kind::kVeto), 2u);
  EXPECT_EQ(count_kind(recv, Message::Kind::kVote), 1u);
  EXPECT_EQ(count_kind(recv, Message::Kind::kEstimate), 0u);
}

TEST(Message, EmptyMultiset) {
  std::vector<Message> recv;
  EXPECT_TRUE(unique_values(recv, Message::Kind::kEstimate).empty());
  EXPECT_EQ(count_kind(recv, Message::Kind::kVeto), 0u);
}

TEST(Message, OrderingIsStructural) {
  const Message a{Message::Kind::kEstimate, 1, 0};
  const Message b{Message::Kind::kEstimate, 2, 0};
  const Message c{Message::Kind::kVeto, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // kind is the most significant field
  EXPECT_EQ(a, (Message{Message::Kind::kEstimate, 1, 0}));
}

TEST(Message, ToStringCoversKinds) {
  EXPECT_EQ(to_string(Message{Message::Kind::kEstimate, 4, 0}), "est(4)");
  EXPECT_EQ(to_string(Message{Message::Kind::kVeto, 0, 0}), "veto");
  EXPECT_EQ(to_string(Message{Message::Kind::kVote, 0, 0}), "vote");
  EXPECT_EQ(to_string(Message{Message::Kind::kLeaderValue, 8, 0}),
            "leader(8)");
}

}  // namespace
}  // namespace ccd
