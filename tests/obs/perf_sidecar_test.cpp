// Perf sidecar tests: build from spans, JSON round-trip, K-shard merge
// (counter sums exact, disjoint cell union, fingerprint guard), and the
// Chrome trace export's required keys.
#include <gtest/gtest.h>

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/perf_sidecar.hpp"

namespace ccd::obs {
namespace {

SweepPerf sample_perf(std::uint32_t workers, std::uint64_t first_cell) {
  SweepPerf perf;
  perf.wall_ns = 5000;
  perf.threads = workers;
  perf.drain_ns = 700;
  perf.counters.rounds = 40;
  perf.counters.messages_sent = 10;
  perf.counters.collisions = 3;
  // Two cells x two seeds, alternating workers.
  for (std::uint64_t s = 0; s < 4; ++s) {
    RunSpan span;
    span.run_index = first_cell * 2 + s;
    span.cell_index = first_cell + s / 2;
    span.worker = static_cast<std::uint32_t>(s % workers);
    span.start_ns = s * 1000;
    span.end_ns = s * 1000 + 800 + 10 * s;
    perf.spans.push_back(span);
  }
  perf.runs = perf.spans.size();
  return perf;
}

TEST(PerfSidecarTest, BuildGroupsSpansByCellAndWorker) {
  const SweepPerf perf = sample_perf(2, 0);
  const PerfSidecar sidecar = build_perf_sidecar(0xabcdef, 0, 1, perf);
  EXPECT_EQ(sidecar.runs, 4u);
  EXPECT_EQ(sidecar.counters, perf.counters);
  ASSERT_EQ(sidecar.shards.size(), 1u);
  ASSERT_EQ(sidecar.shards[0].workers.size(), 2u);
  EXPECT_EQ(sidecar.shards[0].workers[0].runs, 2u);
  EXPECT_EQ(sidecar.shards[0].workers[1].runs, 2u);
  EXPECT_EQ(sidecar.shards[0].drain_ns, 700u);
  ASSERT_EQ(sidecar.cells.size(), 2u);
  EXPECT_EQ(sidecar.cells[0].cell_index, 0u);
  EXPECT_EQ(sidecar.cells[0].runs, 2u);
  EXPECT_LE(sidecar.cells[0].min_ns, sidecar.cells[0].p50_ns);
  EXPECT_LE(sidecar.cells[0].p50_ns, sidecar.cells[0].p95_ns);
  EXPECT_LE(sidecar.cells[0].p95_ns, sidecar.cells[0].max_ns);
}

TEST(PerfSidecarTest, JsonRoundTripIsLossless) {
  const PerfSidecar sidecar =
      build_perf_sidecar(0x123456789abcdef0ull, 2, 4, sample_perf(2, 6));
  std::string error;
  auto parsed = PerfSidecar::from_json(sidecar.to_json(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->grid_fingerprint, sidecar.grid_fingerprint);
  EXPECT_EQ(parsed->runs, sidecar.runs);
  EXPECT_EQ(parsed->counters, sidecar.counters);
  ASSERT_EQ(parsed->shards.size(), 1u);
  EXPECT_EQ(parsed->shards[0].shard_index, 2u);
  EXPECT_EQ(parsed->shards[0].shard_count, 4u);
  EXPECT_EQ(parsed->shards[0].wall_ns, sidecar.shards[0].wall_ns);
  ASSERT_EQ(parsed->shards[0].workers.size(),
            sidecar.shards[0].workers.size());
  EXPECT_EQ(parsed->shards[0].workers[1].busy_ns,
            sidecar.shards[0].workers[1].busy_ns);
  ASSERT_EQ(parsed->cells.size(), sidecar.cells.size());
  for (std::size_t i = 0; i < sidecar.cells.size(); ++i) {
    EXPECT_EQ(parsed->cells[i].cell_index, sidecar.cells[i].cell_index);
    EXPECT_EQ(parsed->cells[i].total_ns, sidecar.cells[i].total_ns);
    EXPECT_EQ(parsed->cells[i].p95_ns, sidecar.cells[i].p95_ns);
  }
  // Re-serialization is byte-stable (merge tooling relies on it).
  EXPECT_EQ(parsed->to_json(), sidecar.to_json());
}

TEST(PerfSidecarTest, FromJsonRejectsGarbageWithKeyedErrors) {
  std::string error;
  EXPECT_FALSE(PerfSidecar::from_json("not json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      PerfSidecar::from_json("{\"format\":\"ccd-perf-sidecar-v9\"}", &error));
  EXPECT_NE(error.find("format"), std::string::npos);
}

TEST(PerfSidecarTest, MergeSumsCountersAndUnionsCells) {
  const PerfSidecar a = build_perf_sidecar(0xfeed, 0, 2, sample_perf(2, 0));
  const PerfSidecar b = build_perf_sidecar(0xfeed, 1, 2, sample_perf(1, 2));
  std::string error;
  auto merged = merge_perf_sidecars({b, a}, &error);  // order-insensitive
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->runs, a.runs + b.runs);
  EXPECT_EQ(merged->counters.rounds,
            a.counters.rounds + b.counters.rounds);
  EXPECT_EQ(merged->counters.collisions,
            a.counters.collisions + b.counters.collisions);
  ASSERT_EQ(merged->shards.size(), 2u);
  EXPECT_EQ(merged->shards[0].shard_index, 0u);  // sorted by identity
  EXPECT_EQ(merged->shards[1].shard_index, 1u);
  ASSERT_EQ(merged->cells.size(), 4u);
  EXPECT_EQ(merged->cells[0].cell_index, 0u);
  EXPECT_EQ(merged->cells[3].cell_index, 3u);
}

TEST(PerfSidecarTest, MergeRejectsFingerprintMismatch) {
  const PerfSidecar a = build_perf_sidecar(0x1, 0, 2, sample_perf(1, 0));
  const PerfSidecar b = build_perf_sidecar(0x2, 1, 2, sample_perf(1, 2));
  std::string error;
  EXPECT_FALSE(merge_perf_sidecars({a, b}, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos);
}

TEST(PerfSidecarTest, MergeRejectsDuplicateCellOwnership) {
  const PerfSidecar a = build_perf_sidecar(0x1, 0, 2, sample_perf(1, 0));
  const PerfSidecar b = build_perf_sidecar(0x1, 1, 2, sample_perf(1, 0));
  std::string error;
  EXPECT_FALSE(merge_perf_sidecars({a, b}, &error));
  EXPECT_NE(error.find("cell"), std::string::npos);
}

TEST(ChromeTraceTest, EmitsMetadataAndCompleteEvents) {
  const SweepPerf perf = sample_perf(2, 0);
  const std::string json = sweep_trace_json(perf, 3, 2);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cell 0 seed 0\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

}  // namespace
}  // namespace ccd::obs
