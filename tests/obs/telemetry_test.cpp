// Telemetry registry tests: per-thread sinks accumulate without losing
// counts across concurrent writers, totals merge all sinks (including
// those of exited threads), reset zeroes everything, and the RunTimer is
// monotonic.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/telemetry.hpp"

namespace ccd::obs {
namespace {

TEST(EngineCountersTest, AddAccumulatesEveryField) {
  EngineCounters a;
  a.rounds = 1;
  a.messages_sent = 2;
  a.messages_delivered = 3;
  a.collisions = 4;
  a.crashes_before_send = 5;
  a.crashes_after_send = 6;
  a.cm_advice_calls = 7;
  a.cd_advice_calls = 8;
  EngineCounters b = a;
  b.add(a);
  EXPECT_EQ(b.rounds, 2u);
  EXPECT_EQ(b.messages_sent, 4u);
  EXPECT_EQ(b.messages_delivered, 6u);
  EXPECT_EQ(b.collisions, 8u);
  EXPECT_EQ(b.crashes_before_send, 10u);
  EXPECT_EQ(b.crashes_after_send, 12u);
  EXPECT_EQ(b.cm_advice_calls, 14u);
  EXPECT_EQ(b.cd_advice_calls, 16u);
}

TEST(EngineCountersTest, FieldTableCoversEveryMember) {
  // The JSON writers iterate kEngineCounterFields; a field added to the
  // struct but not the table would silently vanish from every sidecar.
  EngineCounters c;
  for (const EngineCounterField& f : kEngineCounterFields) {
    c.*(f.member) = 1;
  }
  EngineCounters expect;
  expect.rounds = expect.messages_sent = expect.messages_delivered = 1;
  expect.collisions = 1;
  expect.crashes_before_send = expect.crashes_after_send = 1;
  expect.cm_advice_calls = expect.cd_advice_calls = 1;
  EXPECT_EQ(c, expect);
}

TEST(TelemetryTest, SinksSumAcrossThreads) {
  Telemetry telemetry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&telemetry] {
      Telemetry::Sink& sink = telemetry.create_sink();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sink.add(Counter::kRunsExecuted, 1);
      }
      EngineCounters ec;
      ec.rounds = 3;
      sink.add_engine(ec);
    });
  }
  for (std::thread& t : pool) t.join();
  // Counts survive thread exit: sinks are owned by the registry.
  EXPECT_EQ(telemetry.total(Counter::kRunsExecuted), kThreads * kPerThread);
  EXPECT_EQ(telemetry.total(Counter::kRoundsExecuted), kThreads * 3u);
}

TEST(TelemetryTest, ResetZeroesAllSinks) {
  Telemetry telemetry;
  Telemetry::Sink& sink = telemetry.create_sink();
  sink.add(Counter::kCellsCompleted, 42);
  EXPECT_EQ(telemetry.total(Counter::kCellsCompleted), 42u);
  telemetry.reset();
  EXPECT_EQ(telemetry.total(Counter::kCellsCompleted), 0u);
  sink.add(Counter::kCellsCompleted, 1);  // sinks stay usable after reset
  EXPECT_EQ(telemetry.total(Counter::kCellsCompleted), 1u);
}

TEST(TelemetryTest, ThreadSinkReachesGlobalRegistry) {
  Telemetry::global().reset();
  Telemetry::thread_sink().add(Counter::kRunsExecuted, 5);
  EXPECT_GE(Telemetry::global().total(Counter::kRunsExecuted), 5u);
  Telemetry::global().reset();
}

TEST(RunTimerTest, MonotonicAndRestartable) {
  RunTimer timer;
  const std::uint64_t a = timer.elapsed_ns();
  const std::uint64_t b = timer.elapsed_ns();
  EXPECT_GE(b, a);
  timer.restart();
  // A restarted timer measures from now, not process start: a fresh
  // reading cannot exceed the pre-restart total plus the time this test
  // itself burned -- in particular it must be small, not cumulative.
  EXPECT_LT(timer.elapsed_ns(), 1'000'000'000ull);
  EXPECT_GT(RunTimer::now_ns(), 0u);
}

}  // namespace
}  // namespace ccd::obs
