// Report inspector tests: show/diff on dist and shard artifacts, the
// trace-diff round alignment, and the bench-diff regression gate -- all on
// inline fixtures shaped exactly like the emitters' output.
#include "obs/report_inspect.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ccd::obs {
namespace {

const char kDistA[] =
    R"({"format":"ccd-dist-v1","grid_fingerprint":"00000000deadbeef",)"
    R"("grid_seed":1,"seeds_per_cell":4,"num_cells":2,"cells":[)"
    R"({"cell":0,"spec":{"alg":"alg1","n":4},"runs":4,"metrics":{)"
    R"("decision_round":{"h":[3,1,5,2,9,1]},)"
    R"("surviving_fraction":{"raw":[1,0.75,1,1]}}},)"
    R"({"cell":1,"spec":{"alg":"alg1","n":8},"runs":4,"metrics":{)"
    R"("decision_round":{"h":[4,4]}}}]})";

// Same grid, one bin shifted in cell 1.
const char kDistB[] =
    R"({"format":"ccd-dist-v1","grid_fingerprint":"00000000deadbeef",)"
    R"("grid_seed":1,"seeds_per_cell":4,"num_cells":2,"cells":[)"
    R"({"cell":0,"spec":{"alg":"alg1","n":4},"runs":4,"metrics":{)"
    R"("decision_round":{"h":[3,1,5,2,9,1]},)"
    R"("surviving_fraction":{"raw":[1,0.75,1,1]}}},)"
    R"({"cell":1,"spec":{"alg":"alg1","n":8},"runs":4,"metrics":{)"
    R"("decision_round":{"h":[4,3,6,1]}}}]})";

TEST(ReportInspect, ShowRendersDistWithExactPercentiles) {
  InspectOptions options;
  std::string out, error;
  ASSERT_TRUE(render_report(kDistA, options, &out, &error)) << error;
  // Multiset for cell 0 decision_round: {3,5,5,9}.  Linear-interp p50 = 5.
  EXPECT_NE(out.find("decision_round  n=4"), std::string::npos) << out;
  EXPECT_NE(out.find("p50=5.0000"), std::string::npos) << out;
  EXPECT_NE(out.find("min=3.0000"), std::string::npos) << out;
  EXPECT_NE(out.find("max=9.0000"), std::string::npos) << out;
  // Histogram bars for the integer metric; none for the raw fraction.
  EXPECT_NE(out.find("|#"), std::string::npos) << out;
  EXPECT_NE(out.find("surviving_fraction  n=4"), std::string::npos) << out;
}

TEST(ReportInspect, ShowFiltersByCellAndMetricAndTail) {
  InspectOptions options;
  options.only_cell = 1;
  options.only_metric = "decision_round";
  options.tail_over = 3.5;
  std::string out, error;
  ASSERT_TRUE(render_report(kDistA, options, &out, &error)) << error;
  EXPECT_EQ(out.find("cell 0"), std::string::npos) << out;
  EXPECT_NE(out.find("cell 1"), std::string::npos) << out;
  // Cell 1 is four samples of 4: everything is above 3.5.
  EXPECT_NE(out.find("tail > 3.5: 4 (100.0%)"), std::string::npos) << out;
}

TEST(ReportInspect, DiffFindsShiftedBin) {
  std::string out, error;
  bool differs = false;
  ASSERT_TRUE(diff_reports(kDistA, kDistB, &out, &differs, &error)) << error;
  EXPECT_TRUE(differs);
  // Keyed output: the changed cell/metric/bin, not a blob.
  EXPECT_NE(out.find("cell 1 decision_round."), std::string::npos) << out;
  EXPECT_NE(out.find("bin[4]: -1"), std::string::npos) << out;
  EXPECT_NE(out.find("bin[6]: +1"), std::string::npos) << out;
  // Cell 0 is identical and must not appear.
  EXPECT_EQ(out.find("cell 0"), std::string::npos) << out;
}

TEST(ReportInspect, DiffIdenticalIsClean) {
  std::string out, error;
  bool differs = true;
  ASSERT_TRUE(diff_reports(kDistA, kDistA, &out, &differs, &error)) << error;
  EXPECT_FALSE(differs);
  EXPECT_NE(out.find("identical"), std::string::npos) << out;
}

TEST(ReportInspect, ExportCanonicalizesShardReportToDist) {
  // A v2 shard report cell (flat counters + stats objects).
  const std::string shard =
      R"({"format":"ccd-shard-report-v2","grid_fingerprint":"00000000deadbeef",)"
      R"("shard_index":0,"shard_count":2,"grid_seed":1,"seeds_per_cell":4,)"
      R"("cells":[{"cell":3,"runs":4,"solved":4,)"
      R"("decision_round":{"h":[7,4]}}]})";
  std::string out, error;
  ASSERT_TRUE(export_dist(shard, &out, &error)) << error;
  EXPECT_NE(out.find("\"format\":\"ccd-dist-v1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"cell\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"decision_round\":{\"h\":[7,4]}"), std::string::npos)
      << out;
  // The export itself parses and round-trips byte-identically.
  std::string again;
  ASSERT_TRUE(export_dist(out, &again, &error)) << error;
  EXPECT_EQ(out, again);
}

TEST(ReportInspect, LegacyV1ShardArraysParse) {
  // Pre-v2 shard reports serialized stats as bare sample arrays.
  const std::string legacy =
      R"({"format":"ccd-shard-report-v1","grid_fingerprint":"00000000deadbeef",)"
      R"("cells":[{"cell":0,"runs":2,"decision_round":[6,4]}]})";
  InspectOptions options;
  std::string out, error;
  ASSERT_TRUE(render_report(legacy, options, &out, &error)) << error;
  EXPECT_NE(out.find("decision_round  n=2"), std::string::npos) << out;
  EXPECT_NE(out.find("min=4.0000"), std::string::npos) << out;
}

TEST(ReportInspect, RejectsMismatchedKindsAndGarbage) {
  std::string out, error;
  bool differs = false;
  EXPECT_FALSE(render_report("not json", {}, &out, &error));
  EXPECT_FALSE(error.empty());
  const std::string sidecar =
      R"({"format":"ccd-perf-sidecar-v1","grid_fingerprint":"aa","runs":1,)"
      R"("cells":[{"cell":0,"runs":1,"total_ns":5,"min_ns":5,"max_ns":5,)"
      R"("p50_ns":5,"p95_ns":5}]})";
  error.clear();
  EXPECT_FALSE(diff_reports(kDistA, sidecar, &out, &differs, &error));
  EXPECT_NE(error.find("cannot diff"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(export_dist(sidecar, &out, &error));
  EXPECT_NE(error.find("summaries"), std::string::npos) << error;
}

// ---- trace diff ------------------------------------------------------------

std::string trace_doc(const char* round2_cd, const char* decisions) {
  std::string out =
      R"({"format":"ccd-cell-trace-v1","cell":0,"spec":{"n":4},"runs":[)"
      R"({"run_index":0,"seed":11,"solved":true,"rounds_executed":2,"log":{)"
      R"("num_processes":4,"num_rounds":2,"views_recorded":true,)"
      R"("decisions":)";
  out += decisions;
  out += R"(,"crashes":[],"rounds":[)"
         R"({"round":1,"broadcasters":2,"receive_counts":[2,2,2,2],)"
         R"("cd":"++..","cm":"AAAA"},)";
  out += R"({"round":2,"broadcasters":1,"receive_counts":[1,1,1,1],"cd":")";
  out += round2_cd;
  out += R"(","cm":"AAAA"}]}}]})";
  return out;
}

TEST(ReportInspect, TraceDiffFindsFirstDivergentRound) {
  const std::string a =
      trace_doc("+...", R"([{"process":0,"value":3,"round":2}])");
  const std::string b =
      trace_doc(".+..", R"([{"process":0,"value":5,"round":2}])");
  std::string out, error;
  bool differs = false;
  ASSERT_TRUE(diff_traces(a, b, &out, &differs, &error)) << error;
  EXPECT_TRUE(differs);
  EXPECT_NE(out.find("first divergent round: 2"), std::string::npos) << out;
  EXPECT_NE(out.find("cd advice: +... vs .+.."), std::string::npos) << out;
  EXPECT_NE(out.find("decisions: p0=v3@r2  vs  p0=v5@r2"), std::string::npos)
      << out;

  differs = true;
  out.clear();
  ASSERT_TRUE(diff_traces(a, a, &out, &differs, &error)) << error;
  EXPECT_FALSE(differs);
  EXPECT_NE(out.find("1/1 aligned runs identical"), std::string::npos) << out;
}

// ---- bench diff ------------------------------------------------------------

std::string sweep_bench(double runs_per_sec) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"format\":\"ccd-bench-v1\",\"bench\":\"sweep_throughput\","
                "\"grid\":\"smoke\",\"threads\":4,\"runs\":18,"
                "\"wall_ns\":1000,\"runs_per_sec\":%.3f,\"rounds\":100,"
                "\"rounds_per_sec\":50000.000}",
                runs_per_sec);
  return buffer;
}

TEST(ReportInspect, BenchDiffGatesRegressions) {
  std::string out, error;
  bool regressed = true;
  // 10% drop under a 20% gate: reported, not a regression.
  ASSERT_TRUE(diff_bench(sweep_bench(1000.0), sweep_bench(900.0), 20.0, &out,
                         &regressed, &error))
      << error;
  EXPECT_FALSE(regressed);
  EXPECT_NE(out.find("runs_per_sec: 1000.0 -> 900.0 (-10.0%)"),
            std::string::npos)
      << out;

  // 50% drop trips the gate.
  out.clear();
  ASSERT_TRUE(diff_bench(sweep_bench(1000.0), sweep_bench(500.0), 20.0, &out,
                         &regressed, &error))
      << error;
  EXPECT_TRUE(regressed);
  EXPECT_NE(out.find("REGRESSION"), std::string::npos) << out;

  // Improvements never trip it.
  out.clear();
  ASSERT_TRUE(diff_bench(sweep_bench(1000.0), sweep_bench(5000.0), 20.0, &out,
                         &regressed, &error))
      << error;
  EXPECT_FALSE(regressed);
}

TEST(ReportInspect, BenchDiffAcceptsArraysAndGatesLaneSpeedupOnly) {
  // The CI's BENCH_sweep_throughput.json is a JSON array of bench objects.
  auto bench_array = [](double runs_per_sec, const char* scalar_rate,
                        const char* lane_rate) {
    std::string out = "[";
    out += sweep_bench(runs_per_sec);
    out += ",\n ";
    out += R"({"format":"ccd-bench-v1","bench":"engine_lanes",)";
    out += R"("lane_width":64,"rounds":200,"entries":[)";
    out += R"({"config":"consensus_clique","n":16,)";
    out += std::string("\"scalar_rounds_per_sec\":") + scalar_rate + ",";
    out += std::string("\"lane_rounds_per_sec\":") + lane_rate + ",";
    out += R"("speedup":4.00}]}])";
    return out;
  };
  const std::string old_array = bench_array(1000.0, "100000.0", "400000.0");
  // New run: absolute lane rates halve (slower machine) but speedup holds;
  // must NOT regress.
  const std::string new_array = bench_array(950.0, "50000.0", "200000.0");
  std::string out, error;
  bool regressed = true;
  ASSERT_TRUE(
      diff_bench(old_array, new_array, 20.0, &out, &regressed, &error))
      << error;
  EXPECT_FALSE(regressed) << out;
  EXPECT_NE(out.find("lanes:consensus_clique/n16"), std::string::npos) << out;
  EXPECT_NE(out.find("[not gated]"), std::string::npos) << out;

  // A benchmark disappearing from the new artifact IS gated.
  out.clear();
  ASSERT_TRUE(diff_bench(old_array, sweep_bench(1000.0), 20.0, &out,
                         &regressed, &error))
      << error;
  EXPECT_TRUE(regressed);
  EXPECT_NE(out.find("disappeared"), std::string::npos) << out;
}

}  // namespace
}  // namespace ccd::obs
