// Dispatcher unit contracts: batch-size decay, explicit-cell shard specs
// (the assignment format), ledger JSON, the keyed run_dispatch failure
// modes that need no real worker, and the LocalProcessTransport
// spawn/poll/kill lifecycle the scheduler is built on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/dispatch/dispatcher.hpp"
#include "exp/dispatch/worker_transport.hpp"
#include "exp/shard/shard_plan.hpp"
#include "exp/shard/shard_report.hpp"
#include "exp/shard/shard_runner.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

namespace ccd::exp {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2};
  grid.ns = {2, 4, 5};
  grid.value_spaces = {4, 16};  // 12 cells
  grid.base.cst_target = 3;
  grid.seeds_per_cell = 2;
  grid.grid_seed = 99;
  return grid;
}

/// Scratch directory for dispatch runs; removes known batch files on exit.
struct WorkDir {
  WorkDir() {
    char tmpl[] = "disp-unit-XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made) path = made;
  }
  ~WorkDir() {
    for (int id = 0; id < 128; ++id) {
      const std::string base = path + "/batch-" + std::to_string(id);
      std::remove((base + ".spec.json").c_str());
      std::remove((base + ".report.json").c_str());
      std::remove((base + ".ckpt.jsonl").c_str());
      std::remove((base + ".perf.json").c_str());
    }
    rmdir(path.c_str());
  }
  std::string path;
};

/// Poll until the worker exits, with a hard cap so a broken transport
/// fails the test instead of hanging ctest.
WorkerStatus wait_exit(WorkerTransport& transport, int handle) {
  for (int i = 0; i < 5000; ++i) {
    const WorkerStatus status = transport.poll(handle);
    if (!status.running) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return WorkerStatus{};
}

TEST(DispatchTest, BatchSizeDecaysToSingleCellTail) {
  // pending / 2N, floor 1: coarse while the queue is deep, single cells
  // at the tail where stealing granularity matters.
  EXPECT_EQ(next_batch_size(432, 4), 54u);
  EXPECT_EQ(next_batch_size(54, 4), 6u);
  EXPECT_EQ(next_batch_size(48, 4), 6u);
  EXPECT_EQ(next_batch_size(8, 4), 1u);
  EXPECT_EQ(next_batch_size(7, 4), 1u);
  EXPECT_EQ(next_batch_size(1, 4), 1u);
  EXPECT_EQ(next_batch_size(1000, 1), 500u);
  EXPECT_EQ(next_batch_size(5, 0), 2u);  // workers clamped to 1, not / 0

  // The decay never hands out zero and never exceeds the queue's own
  // half-share, so N workers always leave work for the other N - 1.
  for (std::size_t pending = 1; pending <= 200; ++pending) {
    const std::size_t size = next_batch_size(pending, 4);
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, std::max<std::size_t>(1, pending / 8));
  }
}

TEST(DispatchTest, LedgerJsonPinsTheFormat) {
  std::vector<DispatchLedgerEntry> ledger = {{0, 2, 1}, {1, 0, 3}};
  EXPECT_EQ(ledger_to_json(ledger),
            "{\"format\":\"ccd-dispatch-ledger-v1\",\"cells\":["
            "{\"cell\":0,\"batch\":2,\"slot\":1},"
            "{\"cell\":1,\"batch\":0,\"slot\":3}]}");
  EXPECT_EQ(ledger_to_json({}),
            "{\"format\":\"ccd-dispatch-ledger-v1\",\"cells\":[]}");
}

TEST(DispatchTest, ExplicitSpecOwnsExactlyItsCellsThroughJson) {
  const SweepGrid grid = small_grid();
  const ShardSpec spec = ShardPlanner::plan_cells(grid, {0, 3, 5, 11}, 7);
  EXPECT_EQ(spec.mode, ShardMode::kExplicit);
  EXPECT_EQ(spec.shard_index, 7u);  // batch id rides in shard_index
  EXPECT_EQ(spec.cell_indices(), (std::vector<std::size_t>{0, 3, 5, 11}));
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    EXPECT_EQ(spec.owns_cell(c), c == 0 || c == 3 || c == 5 || c == 11);
  }

  std::string error;
  auto parsed = ShardSpec::from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->mode, ShardMode::kExplicit);
  EXPECT_EQ(parsed->shard_index, 7u);
  EXPECT_EQ(parsed->cell_indices(), spec.cell_indices());
  EXPECT_EQ(parsed->to_json(), spec.to_json());
}

TEST(DispatchTest, MalformedExplicitSpecsAreRejected) {
  const SweepGrid grid = small_grid();
  const ShardSpec spec = ShardPlanner::plan_cells(grid, {0, 3, 5}, 0);
  std::string error;

  // Non-ascending cell list.
  std::string json = spec.to_json();
  const auto at = json.find("[0,3,5]");
  ASSERT_NE(at, std::string::npos);
  std::string swapped = json;
  swapped.replace(at, 7, "[3,0,5]");
  EXPECT_FALSE(ShardSpec::from_json(swapped, &error).has_value());
  EXPECT_NE(error.find("ascending"), std::string::npos) << error;

  // Cell index out of the grid's range.
  std::string out_of_range = json;
  out_of_range.replace(at, 7, "[0,3,12]");
  EXPECT_FALSE(ShardSpec::from_json(out_of_range, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // A 'cells' array on a derived mode is a contradiction, not a hint.
  std::string derived = ShardPlanner::plan(grid, 2)[0].to_json();
  ASSERT_NE(derived.back(), '\0');
  derived.insert(derived.size() - 1, ",\"cells\":[0,1]");
  EXPECT_FALSE(ShardSpec::from_json(derived, &error).has_value());
  EXPECT_NE(error.find("only valid with mode explicit"), std::string::npos)
      << error;

  // Explicit mode without the cell list.
  std::string missing = json;
  const auto cells_at = missing.find(",\"cells\":[0,3,5]");
  ASSERT_NE(cells_at, std::string::npos);
  missing.erase(cells_at, std::strlen(",\"cells\":[0,3,5]"));
  EXPECT_FALSE(ShardSpec::from_json(missing, &error).has_value());
  EXPECT_NE(error.find("needs a 'cells' array"), std::string::npos) << error;
}

TEST(DispatchTest, ExplicitShardsRunAndMergeToTheExactFullReport) {
  // Interleaved explicit batches (the dispatcher's assignment shape) must
  // merge to the same bytes as one full-grid run -- the determinism fact
  // that makes work stealing free.
  const SweepGrid grid = small_grid();
  std::vector<std::size_t> evens, odds;
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    (c % 2 == 0 ? evens : odds).push_back(c);
  }
  std::vector<ShardReport> reports;
  std::size_t batch_id = 0;
  for (const auto& cells : {evens, odds}) {
    const ShardSpec spec = ShardPlanner::plan_cells(grid, cells, batch_id++);
    std::string error;
    auto parsed = ShardSpec::from_json(spec.to_json(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    auto report = run_shard(*parsed, {}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    auto round_tripped = ShardReport::from_json(report->to_json(), &error);
    ASSERT_TRUE(round_tripped.has_value()) << error;
    reports.push_back(std::move(*round_tripped));
  }
  std::string error;
  auto merged = merge_shard_reports(reports, &error);
  ASSERT_TRUE(merged.has_value()) << error;

  SweepOptions options;
  options.threads = 1;
  const auto cells = aggregate(grid, run_sweep(grid, options));
  EXPECT_EQ(aggregates_to_json(merged->grid, merged->cells),
            aggregates_to_json(grid, cells));
  EXPECT_EQ(aggregates_to_csv(merged->cells), aggregates_to_csv(cells));
}

TEST(DispatchTest, RunDispatchRejectsUnusableSetups) {
  std::string error;

  SweepGrid no_runs = small_grid();
  no_runs.seeds_per_cell = 0;
  DispatchOptions options;
  options.worker_bin = "/bin/true";
  options.work_dir = ".";
  EXPECT_FALSE(run_dispatch(no_runs, options, &error).has_value());
  EXPECT_NE(error.find("seeds_per_cell 0"), std::string::npos) << error;

  const SweepGrid grid = small_grid();
  DispatchOptions no_workers = options;
  no_workers.workers = 0;
  EXPECT_FALSE(run_dispatch(grid, no_workers, &error).has_value());
  EXPECT_NE(error.find("at least one worker"), std::string::npos) << error;

  DispatchOptions no_bin = options;
  no_bin.worker_bin.clear();
  EXPECT_FALSE(run_dispatch(grid, no_bin, &error).has_value());
  EXPECT_NE(error.find("worker binary"), std::string::npos) << error;

  DispatchOptions no_dir = options;
  no_dir.work_dir.clear();
  EXPECT_FALSE(run_dispatch(grid, no_dir, &error).has_value());
  EXPECT_NE(error.find("work directory"), std::string::npos) << error;
}

TEST(DispatchTest, DeterministicallyCrashingWorkerHitsTheAssignmentCap) {
  // A binary that can never run (exec fails -> exit 127) crashes every
  // batch; the requeue loop must end in the keyed max-assignments error,
  // not spin forever.
  WorkDir work;
  DispatchOptions options;
  options.workers = 2;
  options.poll_ms = 1;
  options.max_assignments_per_cell = 2;
  options.worker_bin = work.path + "/no-such-binary";
  options.work_dir = work.path;
  std::string error;
  EXPECT_FALSE(run_dispatch(small_grid(), options, &error).has_value());
  EXPECT_NE(error.find("assigned 2 times"), std::string::npos) << error;
}

TEST(LocalProcessTransportTest, ExitCodesAndEnvPlumbThrough) {
  LocalProcessTransport transport;
  const int ok = transport.spawn({"/bin/sh", "-c", "exit 0"}, {});
  const int fail = transport.spawn({"/bin/sh", "-c", "exit 3"}, {});
  const int env = transport.spawn(
      {"/bin/sh", "-c", "test \"$CCD_TEST_VALUE\" = yes"},
      {"CCD_TEST_VALUE=yes"});
  ASSERT_GE(ok, 0);
  ASSERT_GE(fail, 0);
  ASSERT_GE(env, 0);
  EXPECT_EQ(wait_exit(transport, ok).exit_code, 0);
  EXPECT_EQ(wait_exit(transport, fail).exit_code, 3);
  EXPECT_EQ(wait_exit(transport, env).exit_code, 0);

  // Status is latched: polling a reaped handle stays stable.
  const WorkerStatus again = transport.poll(fail);
  EXPECT_FALSE(again.running);
  EXPECT_EQ(again.exit_code, 3);
}

TEST(LocalProcessTransportTest, KillReportsTheShellSignalConvention) {
  LocalProcessTransport transport;
  const int handle = transport.spawn({"/bin/sh", "-c", "sleep 30"}, {});
  ASSERT_GE(handle, 0);
  EXPECT_TRUE(transport.poll(handle).running);
  transport.kill_worker(handle);
  EXPECT_EQ(wait_exit(transport, handle).exit_code, 137);  // 128 + SIGKILL
  transport.kill_worker(handle);  // idempotent after exit
  EXPECT_EQ(transport.poll(handle).exit_code, 137);
}

TEST(LocalProcessTransportTest, SpawnFailureIsAChildExit127) {
  // fork succeeds, execve fails, the child reports 127 (the shell's
  // "command not found") -- this is the path the dispatcher's crash
  // handling turns into requeues.
  LocalProcessTransport transport;
  const int handle = transport.spawn({"/no/such/binary-xyz"}, {});
  ASSERT_GE(handle, 0);
  EXPECT_EQ(wait_exit(transport, handle).exit_code, 127);
}

}  // namespace
}  // namespace ccd::exp
