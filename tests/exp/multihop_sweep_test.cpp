// Tests for the multihop dimension of the experiment engine: topology
// generation determinism, connectivity at the documented RGG density
// floor, JSON round-trip of the topology/workload/density spec fields,
// keyed parse errors, and thread-count invariance of multihop sweeps.
#include <gtest/gtest.h>

#include "exp/aggregator.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/world_factory.hpp"

namespace ccd::exp {
namespace {

ScenarioSpec rgg_spec(std::uint32_t n, double density, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRandomGeometric;
  spec.workload = WorkloadKind::kFlood;
  spec.n = n;
  spec.density = density;
  spec.seed = seed;
  return spec;
}

TEST(MakeTopology, DeterministicAcrossCalls) {
  const ScenarioSpec spec = rgg_spec(40, 2.5, 0xfeedULL);
  const Topology a = WorldFactory::make_topology(spec);
  const Topology b = WorldFactory::make_topology(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.neighbors(i), b.neighbors(i));
  }
}

TEST(MakeTopology, SeedChangesRggButNotFixedShapes) {
  ScenarioSpec spec = rgg_spec(40, 2.5, 1);
  ScenarioSpec other = spec;
  other.seed = 2;
  const Topology a = WorldFactory::make_topology(spec);
  const Topology b = WorldFactory::make_topology(other);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.neighbors(i) != b.neighbors(i)) differs = true;
  }
  EXPECT_TRUE(differs);  // astronomically unlikely to coincide

  // Non-random topologies ignore the seed entirely.
  spec.topology = TopologyKind::kRing;
  other.topology = TopologyKind::kRing;
  const Topology ra = WorldFactory::make_topology(spec);
  const Topology rb = WorldFactory::make_topology(other);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra.neighbors(i), rb.neighbors(i));
  }
}

TEST(MakeTopology, RggConnectedAtTheDocumentedDensityFloor) {
  // density >= 2.0 is the documented floor; the factory's bounded seed
  // retries must deliver a connected instance for every run seed.
  for (std::uint32_t n : {16u, 32u, 64u}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const Topology t =
          WorldFactory::make_topology(rgg_spec(n, 2.0, seed));
      EXPECT_TRUE(t.connected()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(MakeTopology, EveryKindMatchesItsShape) {
  ScenarioSpec spec;
  spec.n = 9;
  spec.topology = TopologyKind::kSingleHop;
  EXPECT_EQ(WorldFactory::make_topology(spec).diameter(), 1u);
  spec.topology = TopologyKind::kLine;
  EXPECT_EQ(WorldFactory::make_topology(spec).diameter(), 8u);
  spec.topology = TopologyKind::kRing;
  EXPECT_EQ(WorldFactory::make_topology(spec).diameter(), 4u);
  spec.topology = TopologyKind::kGrid;
  EXPECT_EQ(WorldFactory::make_topology(spec).diameter(), 4u);  // 3x3
}

TEST(ScenarioSpecJson, MultihopFieldsRoundTrip) {
  for (auto t : {TopologyKind::kSingleHop, TopologyKind::kLine,
                 TopologyKind::kRing, TopologyKind::kGrid,
                 TopologyKind::kRandomGeometric}) {
    for (auto w : {WorkloadKind::kConsensus, WorkloadKind::kFlood,
                   WorkloadKind::kMis, WorkloadKind::kMisThenConsensus}) {
      ScenarioSpec spec;
      spec.topology = t;
      spec.workload = w;
      spec.density = 3.25;
      auto parsed = ScenarioSpec::from_json(spec.to_json());
      ASSERT_TRUE(parsed.has_value()) << spec.to_json();
      EXPECT_EQ(spec, *parsed);
    }
  }
}

TEST(ScenarioSpecJson, OmittedMultihopFieldsKeepDefaults) {
  // PR-1 era reports (no topology/workload/density members) must still
  // parse, as single-hop consensus.
  auto parsed = ScenarioSpec::from_json("{\"alg\":\"alg2\",\"n\":4}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->topology, TopologyKind::kSingleHop);
  EXPECT_EQ(parsed->workload, WorkloadKind::kConsensus);
  EXPECT_EQ(parsed->density, ScenarioSpec{}.density);
}

TEST(ScenarioSpecJson, RejectsUnknownTopologyNamingTheKey) {
  std::string error;
  auto parsed =
      ScenarioSpec::from_json("{\"topology\":\"torus\"}", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("topology"), std::string::npos) << error;
  EXPECT_NE(error.find("torus"), std::string::npos) << error;
}

TEST(ScenarioSpecJson, ErrorNamesTheOffendingKeyAndValue) {
  struct Case {
    const char* json;
    const char* key;
    const char* value;
  };
  const Case cases[] = {
      {"{\"alg\":\"alg9\"}", "alg", "alg9"},
      {"{\"detector\":\"psychic\"}", "detector", "psychic"},
      {"{\"workload\":\"gossip\"}", "workload", "gossip"},
      {"{\"n\":\"eight\"}", "n", "eight"},
      {"{\"density\":\"thick\"}", "density", "thick"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_FALSE(ScenarioSpec::from_json(c.json, &error).has_value())
        << c.json;
    EXPECT_NE(error.find(std::string("'") + c.key + "'"), std::string::npos)
        << c.json << " -> " << error;
    EXPECT_NE(error.find(c.value), std::string::npos)
        << c.json << " -> " << error;
  }
  // Structural failures still produce a message (no key to blame).
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(RunMultihop, FloodCoversAConnectedLine) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kLine;
  spec.workload = WorkloadKind::kFlood;
  spec.detector = DetectorKind::kZeroAC;
  spec.loss = LossKind::kNoLoss;
  spec.n = 8;
  spec.seed = 11;
  const MultihopSummary s = WorldFactory::run_multihop(spec);
  EXPECT_TRUE(s.ran);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 7u);
  EXPECT_EQ(s.covered, 8u);
  ASSERT_NE(s.full_coverage_round, kNeverRound);
  EXPECT_GE(s.full_coverage_round, 7u);  // at least one round per hop
  EXPECT_GT(s.messages_per_node, 0.0);
}

TEST(RunMultihop, MisIsIndependentAndMaximalWithAccurateDetector) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kGrid;
  spec.workload = WorkloadKind::kMis;
  spec.detector = DetectorKind::kZeroAC;
  spec.loss = LossKind::kEcf;
  spec.n = 25;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    spec.seed = seed;
    const MultihopSummary s = WorldFactory::run_multihop(spec);
    EXPECT_TRUE(s.mis_independent) << seed;
    EXPECT_TRUE(s.mis_maximal) << seed;
    EXPECT_GE(s.mis_size, 1u) << seed;
    EXPECT_NE(s.mis_settle_round, kNeverRound) << seed;
  }
}

TEST(RunMultihop, MisThenConsensusRunsBothPhases) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.workload = WorkloadKind::kMisThenConsensus;
  spec.detector = DetectorKind::kZeroAC;
  spec.loss = LossKind::kNoLoss;
  spec.n = 16;
  spec.seed = 3;
  const MultihopSummary s = WorldFactory::run_multihop(spec);
  EXPECT_GE(s.mis_size, 1u);
  ASSERT_TRUE(s.consensus.has_value());
  EXPECT_TRUE(s.consensus->verdict.solved());
}

TEST(SweepRunner, MultihopGridIsThreadCountInvariant) {
  SweepGrid grid;
  grid.workloads = {WorkloadKind::kFlood, WorkloadKind::kMis};
  grid.topologies = {TopologyKind::kLine, TopologyKind::kRandomGeometric};
  grid.losses = {LossKind::kNoLoss, LossKind::kEcf};
  grid.base.detector = DetectorKind::kZeroAC;
  grid.base.n = 12;
  grid.base.density = 2.5;
  grid.seeds_per_cell = 2;
  grid.grid_seed = 77;

  std::string baseline;
  for (unsigned threads : {1u, 4u}) {
    SweepOptions options;
    options.threads = threads;
    const auto records = run_sweep(grid, options);
    const std::string json =
        aggregates_to_json(grid, aggregate(grid, records));
    if (threads == 1) {
      baseline = json;
      // Multihop metrics must actually be populated in the report.
      EXPECT_NE(baseline.find("\"mh\""), std::string::npos);
      EXPECT_NE(baseline.find("\"coverage_rounds\""), std::string::npos);
      EXPECT_NE(baseline.find("\"mis_size\""), std::string::npos);
    } else {
      EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
  }
}

TEST(SweepGrid, ValidateAcceptsConsensusOnMultihopTopologies) {
  // Before the RoundEngine unification a consensus workload on a
  // non-singlehop topology was rejected (two executors, one of which
  // ignored the topology axis).  With one engine it is a first-class
  // combination -- the mhloss named grid is built on it.
  SweepGrid grid;  // base: consensus workload, singlehop topology
  EXPECT_FALSE(grid.validate().has_value());

  grid.topologies = {TopologyKind::kLine, TopologyKind::kGrid};
  EXPECT_FALSE(grid.validate().has_value());
  grid.workloads = {WorkloadKind::kFlood, WorkloadKind::kMisThenConsensus,
                    WorkloadKind::kConsensus};
  EXPECT_FALSE(grid.validate().has_value());

  // Every named grid must be well-formed.
  for (const std::string& name : SweepGrid::grid_names()) {
    auto named = SweepGrid::named(name);
    ASSERT_TRUE(named.has_value()) << name;
    EXPECT_FALSE(named->validate().has_value()) << name;
  }
}

TEST(SweepGrid, MultihopNamedGridResolvesAndKeepsLegacyNumbering) {
  auto grid = SweepGrid::named("multihop");
  ASSERT_TRUE(grid.has_value());
  EXPECT_GT(grid->num_runs(), 0u);
  // Every cell of the multihop grid is a multihop workload.
  for (std::size_t c = 0; c < grid->num_cells(); ++c) {
    EXPECT_NE(grid->spec_for_cell(c).workload, WorkloadKind::kConsensus);
  }
  // Grids without the new axes enumerate exactly as before (empty axis =
  // radix 1): cell 0 of "default" is still its base product corner.
  auto legacy = SweepGrid::named("default");
  ASSERT_TRUE(legacy.has_value());
  const ScenarioSpec first = legacy->spec_for_cell(0);
  EXPECT_EQ(first.alg, legacy->algs.front());
  EXPECT_EQ(first.detector, legacy->detectors.front());
  EXPECT_EQ(first.topology, TopologyKind::kSingleHop);
  EXPECT_EQ(first.workload, WorkloadKind::kConsensus);
}

}  // namespace
}  // namespace ccd::exp
