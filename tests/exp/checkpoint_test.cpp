// Checkpoint JSONL contract: torn-final-line amnesty (the crash artifact a
// SIGKILLed worker leaves) covers the tail AND a lone torn header, while
// malformation anywhere else stays a hard keyed error.  The dispatcher's
// harvest-and-requeue path leans on exactly this split: every byte-level
// truncation of a valid checkpoint must load as a clean prefix of the
// completed cells, never as garbage and never as a crash of the loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/shard/checkpoint.hpp"
#include "exp/shard/shard_plan.hpp"
#include "exp/shard/shard_report.hpp"
#include "exp/sweep_grid.hpp"
#include "exp/sweep_runner.hpp"

namespace ccd::exp {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.algs = {AlgKind::kAlg1, AlgKind::kAlg2};
  grid.ns = {2, 4, 5};
  grid.value_spaces = {4, 16};  // 12 cells
  grid.base.cst_target = 3;
  grid.seeds_per_cell = 2;
  grid.grid_seed = 99;
  return grid;
}

struct TempFile {
  explicit TempFile(const char* name) : path(name) {}
  ~TempFile() { std::remove(path.c_str()); }
  void write(const std::string& content) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  std::string path;
};

/// A checkpoint exactly as a worker writes it: header, then one marker per
/// completed cell in completion order.
std::string valid_checkpoint(const ShardSpec& shard,
                             const std::vector<CellAggregate>& cells,
                             std::size_t completed) {
  std::string out = checkpoint_header(shard) + "\n";
  const std::uint32_t worker = 0;
  for (std::size_t i = 0; i < completed; ++i) {
    out += checkpoint_cell_marker(cells[i], &worker) + "\n";
  }
  return out;
}

std::vector<CellAggregate> grid_cells(const SweepGrid& grid) {
  SweepOptions options;
  options.threads = 1;
  return aggregate(grid, run_sweep(grid, options));
}

TEST(CheckpointTest, RoundTripLoadsEveryCellBitIdentically) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  const auto cells = grid_cells(grid);
  TempFile file("ckpt_roundtrip.jsonl");
  file.write(valid_checkpoint(shard, cells, cells.size()));

  CheckpointContents contents;
  std::string error;
  ASSERT_TRUE(load_checkpoint(shard, file.path, &contents, &error)) << error;
  EXPECT_FALSE(contents.missing);
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_GT(contents.last_ts_ms, 0u);
  ASSERT_EQ(contents.cells.size(), cells.size());
  for (const CellAggregate& cell : cells) {
    auto it = contents.cells.find(cell.cell_index);
    ASSERT_NE(it, contents.cells.end()) << "cell " << cell.cell_index;
    // The marker splices heartbeat fields into the aggregate JSON; loading
    // must strip them back out to the worker's exact accumulator state.
    EXPECT_EQ(cell_aggregate_to_json(it->second),
              cell_aggregate_to_json(cell));
  }
}

TEST(CheckpointTest, MarkerWithoutWorkerLoadsIdentically) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  const auto cells = grid_cells(grid);
  const std::uint32_t worker = 7;
  const std::string with = checkpoint_cell_marker(cells[0], &worker);
  const std::string without = checkpoint_cell_marker(cells[0], nullptr);
  EXPECT_NE(with.find("\"worker\":7"), std::string::npos);
  EXPECT_EQ(without.find("\"worker\""), std::string::npos);

  TempFile file("ckpt_noworker.jsonl");
  file.write(checkpoint_header(shard) + "\n" + without + "\n");
  CheckpointContents contents;
  std::string error;
  ASSERT_TRUE(load_checkpoint(shard, file.path, &contents, &error)) << error;
  ASSERT_EQ(contents.cells.size(), 1u);
  EXPECT_EQ(cell_aggregate_to_json(contents.cells.begin()->second),
            cell_aggregate_to_json(cells[0]));
}

TEST(CheckpointTest, MissingFileIsEmptySuccess) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  CheckpointContents contents;
  std::string error;
  ASSERT_TRUE(load_checkpoint(shard, "ckpt_never_written.jsonl", &contents,
                              &error))
      << error;
  EXPECT_TRUE(contents.missing);
  EXPECT_TRUE(contents.cells.empty());
}

TEST(CheckpointTest, EveryTruncationLoadsAsACleanPrefix) {
  // Chop a 4-cell checkpoint at EVERY byte boundary: each prefix is a
  // state some crash could leave behind, and each must load as exactly
  // the fully-written markers -- with torn_tail flagged iff the final
  // line was cut.  This is the harvest path's whole safety argument.
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  const auto cells = grid_cells(grid);
  const std::string full = valid_checkpoint(shard, cells, 4);

  // Map each byte offset to how many markers are complete at that point.
  std::vector<std::size_t> line_ends;  // offset just past each '\n'
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') line_ends.push_back(i + 1);
  }
  ASSERT_EQ(line_ends.size(), 5u);  // header + 4 markers

  TempFile file("ckpt_truncation.jsonl");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    file.write(full.substr(0, len));
    CheckpointContents contents;
    std::string error;
    ASSERT_TRUE(load_checkpoint(shard, file.path, &contents, &error))
        << "prefix length " << len << ": " << error;
    // A line is parseable once its CONTENT is fully present -- the final
    // newline is not needed (getline yields the unterminated line whole).
    std::size_t parseable = 0;
    while (parseable < line_ends.size() &&
           line_ends[parseable] - 1 <= len) {
      ++parseable;
    }
    const std::size_t expect_cells =
        parseable > 0 ? parseable - 1 : 0;  // header is not a cell
    EXPECT_EQ(contents.cells.size(), expect_cells) << "prefix length " << len;
    for (std::size_t i = 0; i < expect_cells; ++i) {
      EXPECT_EQ(contents.cells.count(cells[i].cell_index), 1u)
          << "prefix length " << len << " cell " << i;
    }
    // torn_tail iff bytes remain past the last parseable line that do not
    // themselves form one -- a genuine mid-line cut.
    const std::size_t consumed = parseable > 0 ? line_ends[parseable - 1] : 0;
    EXPECT_EQ(contents.torn_tail, len > consumed) << "prefix length " << len;
  }
}

TEST(CheckpointTest, ContentAfterATornHeaderIsAHardError) {
  // The lone-header amnesty is only for a file that IS a torn header; a
  // garbage first line followed by more content was never a checkpoint.
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  TempFile file("ckpt_badheader.jsonl");
  file.write("{\"format\":\"ccd-shard-chec\n{\"cell\":0}\n");
  CheckpointContents contents;
  std::string error;
  EXPECT_FALSE(load_checkpoint(shard, file.path, &contents, &error));
  EXPECT_NE(error.find("unparseable header"), std::string::npos) << error;
}

TEST(CheckpointTest, MalformedMiddleLineIsAHardError) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  const auto cells = grid_cells(grid);
  const std::uint32_t worker = 0;
  TempFile file("ckpt_midgarbage.jsonl");
  file.write(checkpoint_header(shard) + "\n" + "not json\n" +
             checkpoint_cell_marker(cells[0], &worker) + "\n");
  CheckpointContents contents;
  std::string error;
  EXPECT_FALSE(load_checkpoint(shard, file.path, &contents, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(CheckpointTest, WrongFormatAndFingerprintAreKeyedErrors) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  TempFile file("ckpt_badmeta.jsonl");

  file.write("{\"format\":\"something-else\"}\n");
  CheckpointContents contents;
  std::string error;
  EXPECT_FALSE(load_checkpoint(shard, file.path, &contents, &error));
  EXPECT_NE(error.find("ccd-shard-checkpoint-v1"), std::string::npos)
      << error;

  // Header written against a different grid: stale checkpoint, rejected.
  SweepGrid other = grid;
  other.grid_seed = 100;
  file.write(checkpoint_header(ShardPlanner::plan(other, 1)[0]) + "\n");
  EXPECT_FALSE(load_checkpoint(shard, file.path, &contents, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(CheckpointTest, MarkerForUnownedCellIsAHardError) {
  const SweepGrid grid = small_grid();
  const auto cells = grid_cells(grid);
  const ShardSpec shard = ShardPlanner::plan_cells(grid, {0, 1}, 0);
  const std::uint32_t worker = 0;
  TempFile file("ckpt_unowned.jsonl");
  file.write(checkpoint_header(shard) + "\n" +
             checkpoint_cell_marker(cells[5], &worker) + "\n");
  CheckpointContents contents;
  std::string error;
  EXPECT_FALSE(load_checkpoint(shard, file.path, &contents, &error));
  EXPECT_NE(error.find("not owned"), std::string::npos) << error;
}

TEST(CheckpointTest, TailCheckpointIsLenientAndCheap) {
  const SweepGrid grid = small_grid();
  const ShardSpec shard = ShardPlanner::plan(grid, 1)[0];
  const auto cells = grid_cells(grid);
  TempFile file("ckpt_tail.jsonl");

  // Mid-append torn tail: the tailer skips it and reports what's whole.
  std::string content = valid_checkpoint(shard, cells, 3);
  content += checkpoint_cell_marker(cells[3], nullptr).substr(0, 20);
  file.write(content);
  std::vector<std::size_t> done;
  std::uint64_t last_ts = 0;
  ASSERT_TRUE(tail_checkpoint(file.path, &done, &last_ts));
  EXPECT_EQ(done, (std::vector<std::size_t>{cells[0].cell_index,
                                            cells[1].cell_index,
                                            cells[2].cell_index}));
  EXPECT_GT(last_ts, 0u);

  // No validation at all: a foreign-grid checkpoint still tails fine
  // (the dispatcher only wants liveness, load_checkpoint does the vetting).
  EXPECT_FALSE(tail_checkpoint("ckpt_never_written.jsonl", &done, &last_ts));
}

}  // namespace
}  // namespace ccd::exp
